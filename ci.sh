#!/bin/sh
# Local CI: every gate a change must pass, in order, fail-fast.
# Mirrors what reviewers run by hand; see README "Build, test, reproduce".
set -eu

cd "$(dirname "$0")"

run() {
  echo "==> $*"
  "$@"
}

run dune build @check
run dune build           # dev profile, full build
run dune runtest
run dune build @fmt      # dune-file formatting
run dune build @fault    # fault-injection corpus
run dune build @analysis # static-analyzer suite
run dune build @workload # sweep-runner suite
run dune build --profile release  # warnings are errors here

# Certify gate: the shipped feasible solution must prove (exit 0) and
# the deliberately infeasible one must refute with exactly exit 8.
CLI=_build/default/bin/spv_cli.exe
run "$CLI" certify -s examples/solutions/pipe3_t700.solution
echo "==> $CLI certify -s examples/solutions/pipe3_t520_infeasible.solution (expect exit 8)"
rc=0
"$CLI" certify -s examples/solutions/pipe3_t520_infeasible.solution || rc=$?
if [ "$rc" -ne 8 ]; then
  echo "ci.sh: infeasible certificate was not refuted (exit $rc, want 8)" >&2
  exit 1
fi

# Sweep gate: the built-in smoke grid must produce schema-valid JSONL
# that is bit-identical across --jobs 1/2/4 (the sweep binary checks
# both and exits nonzero on any mismatch).
run "$CLI" sweep --smoke

# Hierarchical gates: the macro-layer test suite, then the smoke grid
# re-run in hierarchical mode — the binary additionally runs the flat
# smoke sweep and asserts every hierarchical row agrees with its flat
# counterpart within the row's reported error bound.
run dune build @hier     # hierarchical-SSTA suite
run "$CLI" sweep --smoke --hier

# Serve gate: the evaluation daemon replays a golden transcript through
# two fresh daemons and asserts byte-identical responses, served rows
# independent of --jobs, honest LRU cache counters (cold misses, warm
# hits) and a structured parse-error row for a truncated request.
run "$CLI" serve --smoke

# Analyzer gate: the JSON report must carry the current schema version
# plus the failure-cone and sensitivity passes on both a gate-level
# and a moments-only context.
echo "==> $CLI analyze --format json: schema_version 4 + cones + sensitivity"
for args in "-c c432 -t 900" "--mu 100 --mu 95 --sigma 5 --sigma 4 -t 130"; do
  # shellcheck disable=SC2086
  out=$("$CLI" analyze $args --format json)
  echo "$out" | grep -q '"schema_version": 4' || {
    echo "ci.sh: analyze $args JSON missing schema_version 4" >&2
    exit 1
  }
  echo "$out" | grep -q '"pass": "cones"' || {
    echo "ci.sh: analyze $args JSON missing the cones pass" >&2
    exit 1
  }
  echo "$out" | grep -q '"pass": "sensitivity"' || {
    echo "ci.sh: analyze $args JSON missing the sensitivity pass" >&2
    exit 1
  }
done

# Sizer gate: the greedy sizer smoke run must report its dominance
# pruning counters (result-transparent pruning; the deriv fuzz-oracle
# invariant below guards the enclosures it relies on).
echo "==> $CLI size -c c432 -t 560 --sizer greedy: pruned-move counters"
out=$("$CLI" size -c c432 -t 560 --sizer greedy)
echo "$out" | grep -q 'sensitivity pruning: .* evaluated, .* pruned' || {
  echo "ci.sh: greedy size run missing the sensitivity pruning counters" >&2
  exit 1
}
case "$out" in
*"0 move(s) evaluated"*)
  echo "ci.sh: greedy smoke run evaluated no moves (target too loose?)" >&2
  exit 1 ;;
esac

# Proposal gate: cone-guided importance sampling must select the cone
# proposal on the smoke fixture and agree with adaptive MC (the binary
# exits 5 on disagreement or an unselected proposal).
run "$CLI" mc --smoke

# Fuzz gates: the budgeted smoke campaign must find nothing (exit 0,
# bit-identical across two runs — the binary checks that itself), and
# a deliberately zeroed tolerance must surface as a counterexample
# with exactly the oracle-violation exit code 9.
run dune build @fuzz     # fuzzer test suite
run "$CLI" fuzz --smoke
echo "==> $CLI fuzz --trials 2 --seed 42 --clark-tol 0 --agree-z 0 (expect exit 9)"
rc=0
"$CLI" fuzz --trials 2 --seed 42 --clark-tol 0 --agree-z 0 >/dev/null || rc=$?
if [ "$rc" -ne 9 ]; then
  echo "ci.sh: zeroed-tolerance fuzz run did not report a counterexample (exit $rc, want 9)" >&2
  exit 1
fi

echo "ci.sh: all gates passed"
