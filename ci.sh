#!/bin/sh
# Local CI: every gate a change must pass, in order, fail-fast.
# Mirrors what reviewers run by hand; see README "Build, test, reproduce".
set -eu

cd "$(dirname "$0")"

run() {
  echo "==> $*"
  "$@"
}

run dune build @check
run dune build           # dev profile, full build
run dune runtest
run dune build @fmt      # dune-file formatting
run dune build @fault    # fault-injection corpus
run dune build @analysis # static-analyzer suite
run dune build --profile release  # warnings are errors here

echo "ci.sh: all gates passed"
