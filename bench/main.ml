(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section as labelled plain-text data, then runs Bechamel
   micro-benchmarks of the core analysis kernels.

   Usage:
     main.exe                 run everything
     main.exe fig2 table1     run selected experiments
     main.exe --no-perf       skip the Bechamel section
     main.exe --jobs N        widen the engine scaling sweep to N domains
     main.exe --list          list experiment ids *)

module E = Spv_experiments
module Engine = Spv_engine.Engine

(* --- engine parallel-scaling study ----------------------------------- *)

(* Parallel throughput needs wall-clock time: Sys.time counts CPU
   seconds summed over domains, which stays flat (or grows) as workers
   are added even when elapsed time shrinks. *)
let wall f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* Number-or-null: every float that lands in a BENCH_*.json file goes
   through this one encoder (the JSONL twin is [Sweep.json_float]).
   [p] renders a finite value at the writer's precision; a NaN or
   infinite timing/ratio must become null, never a bare nan/inf token
   that would corrupt the file for every downstream parser. *)
let json_float p x = if Float.is_finite x then p x else "null"
let f1 = Printf.sprintf "%.1f"
let f2 = Printf.sprintf "%.2f"
let f3 = Printf.sprintf "%.3f"
let f4 = Printf.sprintf "%.4f"
let f6 = Printf.sprintf "%.6f"
let g3 = Printf.sprintf "%.3g"
let g6 = Printf.sprintf "%.6g"
let g17 = Printf.sprintf "%.17g"

let jobs_sweep = ref [| 1; 2; 4 |]

type scaling_row = { jobs : int; seconds : float; trials_per_sec : float }

type scaling_workload = {
  w_name : string;
  w_trials : int;
  w_rows : scaling_row list;
}

let scale_workload ~name ~trials run =
  run ~jobs:1 ~n:(min 512 trials);
  let w_rows =
    Array.to_list
      (Array.map
         (fun jobs ->
           let seconds = wall (fun () -> run ~jobs ~n:trials) in
           { jobs; seconds; trials_per_sec = float_of_int trials /. seconds })
         !jobs_sweep)
  in
  { w_name = name; w_trials = trials; w_rows }

let engine_workloads () =
  let tech = E.Common.base_tech in
  let ff = Spv_process.Flipflop.default tech in
  let moments_ctx =
    let stages =
      Array.init 12 (fun i ->
          Spv_core.Stage.of_moments ~mu:(100.0 +. float_of_int i) ~sigma:5.0 ())
    in
    Engine.Ctx.of_pipeline
      (Spv_core.Pipeline.make stages
         ~corr:(Spv_stats.Correlation.uniform ~n:12 ~rho:0.3))
  in
  let gate_ctx depths =
    Engine.Ctx.of_circuits ~ff tech
      (Spv_circuit.Generators.variable_depth_pipeline ~depths ())
  in
  let ctx_8x5 = gate_ctx (Array.make 8 5) in
  let ctx_5x8 = gate_ctx (Array.make 5 8) in
  [
    scale_workload ~name:"mc-moments-12stage" ~trials:100_000
      (fun ~jobs ~n ->
        ignore
          (Engine.yield ~method_:Engine.Mc ~jobs ~n moments_ctx
             ~t_target:115.0));
    scale_workload ~name:"gate-level-8x5" ~trials:4_000 (fun ~jobs ~n ->
        ignore (Engine.gate_level_delays ~jobs ctx_8x5 ~n));
    scale_workload ~name:"gate-level-5x8" ~trials:4_000 (fun ~jobs ~n ->
        ignore (Engine.gate_level_delays ~jobs ctx_5x8 ~n));
  ]

let write_engine_json path workloads =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"recommended_domains\": %d,\n"
    (Domain.recommended_domain_count ());
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun i w ->
      let base = (List.hd w.w_rows).trials_per_sec in
      Printf.bprintf b "    {\"name\": %S, \"trials\": %d, \"rows\": [\n"
        w.w_name w.w_trials;
      List.iteri
        (fun j r ->
          Printf.bprintf b
            "      {\"jobs\": %d, \"seconds\": %s, \"trials_per_sec\": \
             %s, \"speedup_vs_jobs1\": %s}%s\n"
            r.jobs
            (json_float f6 r.seconds)
            (json_float f1 r.trials_per_sec)
            (json_float f3 (r.trials_per_sec /. base))
            (if j = List.length w.w_rows - 1 then "" else ","))
        w.w_rows;
      Printf.bprintf b "    ]}%s\n"
        (if i = List.length workloads - 1 then "" else ","))
    workloads;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc

let run_engine_scaling () =
  E.Common.section
    "Engine parallel scaling: deterministic shards over worker domains";
  Printf.printf "  runtime-recommended domain count: %d\n"
    (Domain.recommended_domain_count ());
  let ws = engine_workloads () in
  List.iter
    (fun w ->
      Printf.printf "  %s (%d trials):\n" w.w_name w.w_trials;
      let base = (List.hd w.w_rows).trials_per_sec in
      List.iter
        (fun r ->
          Printf.printf
            "    jobs=%-2d %8.3f s %12.0f trials/s   speedup x%.2f\n" r.jobs
            r.seconds r.trials_per_sec
            (r.trials_per_sec /. base))
        w.w_rows)
    ws;
  write_engine_json "BENCH_engine.json" ws;
  Printf.printf "  wrote BENCH_engine.json\n"

(* --- static-pruning study -------------------------------------------- *)

(* A stage with one deep chain and many short side branches: the shape
   where the criticality pass can prove most gates never-critical.  At
   the analyzer's default k = 6 the lo corner of the factor box is
   vacuously small and nothing prunes (reported honestly below); k = 3
   tightens the box enough for the proof to go through. *)
let imbalanced_stage ~depth ~side =
  let b = Buffer.create 1024 in
  Buffer.add_string b "INPUT(a)\nINPUT(b)\n";
  Buffer.add_string b "n1 = INV(a)\n";
  for i = 2 to depth do
    Printf.bprintf b "n%d = INV(n%d)\n" i (i - 1)
  done;
  for s = 1 to side do
    Printf.bprintf b "s%d_1 = INV(b)\ns%d_2 = INV(s%d_1)\n" s s s
  done;
  Printf.bprintf b "OUTPUT(n%d)\n" depth;
  for s = 1 to side do
    Printf.bprintf b "OUTPUT(s%d_2)\n" s
  done;
  match Spv_circuit.Bench_format.of_string_result (Buffer.contents b) with
  | Ok net -> net
  | Error _ -> failwith "imbalanced_stage: bad generated bench"

let run_pruning_study () =
  E.Common.section
    "Static criticality pruning: pruned vs unpruned gate-level MC";
  let tech = E.Common.base_tech in
  let ff = Spv_process.Flipflop.default tech in
  let module Cr = Spv_analysis.Static_criticality in
  let nets = Array.init 4 (fun _ -> imbalanced_stage ~depth:40 ~side:40) in
  let ctx = Engine.Ctx.of_circuits ~ff tech nets in
  let k = 3.0 in
  let masks = Cr.masks_for_ctx ~k ctx in
  Array.iteri
    (fun i net ->
      let total = Spv_circuit.Netlist.n_gates net in
      let active =
        Array.fold_left
          (fun acc id -> if masks.(i).(id) then acc + 1 else acc)
          0
          (Spv_circuit.Netlist.gate_ids net)
      in
      Printf.printf
        "  stage %d: %d/%d gates possibly critical (%.0f%% prunable, k=%g)\n"
        i active total
        (100.0 *. float_of_int (total - active) /. float_of_int total)
        k)
    nets;
  let pctx = Engine.Ctx.with_prune ctx masks in
  let n = 20_000 in
  let full = ref [||] and pruned = ref [||] in
  let t_full = wall (fun () -> full := Engine.gate_level_delays ctx ~n) in
  let t_pruned =
    wall (fun () -> pruned := Engine.gate_level_delays pctx ~n)
  in
  let identical =
    Array.for_all2
      (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
      !full !pruned
  in
  Printf.printf
    "  %d trials: unpruned %.3f s, pruned %.3f s  -> speedup x%.2f \
     (bit-identical: %b)\n"
    n t_full t_pruned (t_full /. t_pruned) identical;
  (* The honest negative result: ISCAS-profile logic at the default
     k = 6 keeps every gate possibly-critical. *)
  let iscas_ctx =
    Engine.Ctx.of_circuits ~ff tech [| Spv_circuit.Generators.c432 () |]
  in
  let f = Cr.prunable_fraction (Cr.analyse tech (Engine.Ctx.netlist iscas_ctx 0)) in
  Printf.printf
    "  c432 at default k=6: prunable fraction %.3f (deep reconvergent \
     logic; the k-sigma box proves almost nothing never-critical)\n"
    f

(* --- affine-vs-interval tightness study ------------------------------ *)

module An = Spv_analysis.Affine_sta
module Iv = Spv_analysis.Interval

type affine_row = {
  a_name : string;
  a_stage_ratios : float array;  (* affine/interval width per stage *)
  a_delay_ratio : float;
  a_yield_ratio : float;
  a_t_target : float;
  a_escape : float;  (* analytic escape budget of the enclosures *)
  a_trials : int;
  a_model_escapes : int;  (* MC samples outside the delay enclosure *)
  a_gate_escapes : int;
}

let median xs =
  let s = Array.copy xs in
  Array.sort compare s;
  let n = Array.length s in
  if n = 0 then Float.nan
  else if n mod 2 = 1 then s.(n / 2)
  else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

let count_escapes enclosure samples =
  Array.fold_left
    (fun acc x -> if Iv.contains enclosure x then acc else acc + 1)
    0 samples

let affine_row ~k ~trials name ctx =
  let a = An.of_ctx ~k ctx in
  let d = Engine.Ctx.delay_distribution ctx in
  let t_target =
    d.Spv_stats.Gaussian.mu +. (2.0 *. d.Spv_stats.Gaussian.sigma)
  in
  let yield_affine = An.yield_bounds a ~t_target in
  let yield_frechet =
    Spv_analysis.Bounds.yield_bounds a.An.bounds ~t_target
  in
  let ratio tight wide =
    let wt = Iv.width tight and ww = Iv.width wide in
    if Float.is_finite wt && Float.is_finite ww && ww > 0.0 then wt /. ww
    else 1.0
  in
  let model_escapes =
    count_escapes a.An.delay (Engine.sample_delays ctx ~n:trials)
  in
  let gate_escapes =
    if Engine.Ctx.gate_level ctx then
      count_escapes a.An.delay
        (Engine.gate_level_delays ~exact:false ctx ~n:trials)
    else 0
  in
  {
    a_name = name;
    a_stage_ratios = Array.map (fun s -> s.An.width_ratio) a.An.stages;
    a_delay_ratio = a.An.delay_ratio;
    a_yield_ratio = ratio yield_affine yield_frechet;
    a_t_target = t_target;
    a_escape = a.An.escape;
    a_trials = trials;
    a_model_escapes = model_escapes;
    a_gate_escapes = gate_escapes;
  }

let affine_rows () =
  let tech = E.Common.base_tech in
  let ff = Spv_process.Flipflop.default tech in
  let gate name nets = (name, Engine.Ctx.of_circuits ~ff tech nets) in
  let k = 6.0 and trials = 10_000 in
  List.map
    (fun (name, ctx) -> affine_row ~k ~trials name ctx)
    [
      gate "chain10x4"
        (Spv_circuit.Generators.inverter_chain_pipeline ~stages:4 ~depth:10 ());
      gate "rca8+chain10"
        [|
          Spv_circuit.Generators.ripple_carry_adder ~bits:8;
          Spv_circuit.Generators.inverter_chain ~depth:10 ();
        |];
      gate "c432" [| Spv_circuit.Generators.c432 () |];
      ( "moments-12stage",
        Engine.Ctx.of_pipeline
          (Spv_core.Pipeline.make
             (Array.init 12 (fun i ->
                  Spv_core.Stage.of_moments ~mu:(100.0 +. float_of_int i)
                    ~sigma:5.0 ()))
             ~corr:(Spv_stats.Correlation.uniform ~n:12 ~rho:0.3)) );
    ]

let write_affine_json path rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"k\": 6.0,\n  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"name\": %S, \"median_stage_ratio\": %s, \"delay_ratio\": \
         %s, \"yield_ratio\": %s, \"t_target\": %s, \"escape\": %s, \
         \"trials\": %d, \"model_escapes\": %d, \"gate_escapes\": %d}%s\n"
        r.a_name
        (json_float f4 (median r.a_stage_ratios))
        (json_float f4 r.a_delay_ratio)
        (json_float f4 r.a_yield_ratio)
        (json_float f3 r.a_t_target)
        (json_float g3 r.a_escape)
        r.a_trials r.a_model_escapes r.a_gate_escapes
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc

let run_affine_study () =
  E.Common.section
    "Affine vs interval enclosures: width ratios and MC containment (k=6)";
  let rows = affine_rows () in
  List.iter
    (fun r ->
      Printf.printf
        "  %-16s stage ratio (median) %.3f  delay ratio %.3f  yield ratio \
         %.3f  escapes %d+%d/%d (budget %.2g)\n"
        r.a_name (median r.a_stage_ratios) r.a_delay_ratio r.a_yield_ratio
        r.a_model_escapes r.a_gate_escapes r.a_trials r.a_escape)
    rows;
  (match
     List.filter (fun r -> r.a_model_escapes + r.a_gate_escapes > 0) rows
   with
  | [] -> Printf.printf "  all sampled delays inside the affine enclosures\n"
  | bad ->
      List.iter
        (fun r -> Printf.printf "  WARNING: %s had MC escapes\n" r.a_name)
        bad);
  write_affine_json "BENCH_affine.json" rows;
  Printf.printf "  wrote BENCH_affine.json\n"

(* --- sweep shared-context caching study ------------------------------ *)

module Grid = Spv_workload.Grid
module Sweep = Spv_workload.Sweep

let sweep_tech = Spv_process.Tech.bptm70

let sweep_grid () =
  (* the CLI smoke grid with the MC draw count raised so per-scenario
     sampling is visible against the context-build cost *)
  { (Grid.smoke ()) with Grid.n = 20_000 }

(* The pre-`sweep` baseline: one engine call per scenario, each
   rebuilding its context (Cholesky factorisation, Clark recursion,
   SSTA) from scratch — exactly what scripting the single-scenario CLI
   in a loop costs. *)
let sweep_cold ~jobs (grid : Grid.t) =
  let seed = Engine.default_seed and n = grid.Grid.n in
  let shards = grid.Grid.shards in
  let rows = ref [] in
  List.iter
    (fun source ->
      let processes =
        match source with
        | Grid.Moments _ -> [ Grid.nominal ]
        | Grid.Circuit _ -> grid.Grid.processes
      in
      List.iter
        (fun process ->
          List.iter
            (fun method_ ->
              Array.iter
                (fun t_target ->
                  let ctx = Sweep.ctx_for ~tech:sweep_tech source process in
                  let e =
                    Engine.yield ~method_ ~jobs ~shards ~seed ~n ctx ~t_target
                  in
                  rows := e.Engine.value :: !rows)
                grid.Grid.targets)
            grid.Grid.methods)
        processes)
    grid.Grid.sources;
  Array.of_list (List.rev !rows)

type sweep_bench_row = {
  s_jobs : int;
  s_cold : float;
  s_cached : float;
  s_identical : bool;
}

let write_sweep_json path (grid : Grid.t) n_contexts rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Printf.bprintf b
    "  \"scenarios\": %d, \"contexts\": %d, \"mc_samples\": %d,\n"
    (Grid.n_scenarios grid) n_contexts grid.Grid.n;
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"jobs\": %d, \"cold_seconds\": %s, \"cached_seconds\": \
         %s, \"speedup\": %s, \"identical_results\": %b}%s\n"
        r.s_jobs
        (json_float f6 r.s_cold)
        (json_float f6 r.s_cached)
        (json_float f3 (r.s_cold /. r.s_cached))
        r.s_identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc

let run_sweep_study () =
  E.Common.section
    "Scenario sweep: shared-context caching vs per-scenario rebuilds";
  let grid = sweep_grid () in
  let n_scen = Grid.n_scenarios grid in
  let n_contexts = ref 0 in
  let rows =
    Array.to_list
      (Array.map
         (fun jobs ->
           let cold = ref [||] and cached = ref None in
           let s_cold = wall (fun () -> cold := sweep_cold ~jobs grid) in
           let s_cached =
             wall (fun () ->
                 cached := Some (Sweep.run ~jobs ~tech:sweep_tech grid))
           in
           let r = Option.get !cached in
           n_contexts := r.Sweep.n_contexts;
           (* the whole point of the cached path is that sharing never
              changes an answer: yields must match the per-scenario
              engine calls bit for bit *)
           let s_identical =
             Array.length !cold = Array.length r.Sweep.rows
             && Array.for_all2
                  (fun v (row : Sweep.row) ->
                    v = row.Sweep.estimate.Engine.value)
                  !cold r.Sweep.rows
           in
           { s_jobs = jobs; s_cold; s_cached; s_identical })
         !jobs_sweep)
  in
  Printf.printf "  %d scenarios share %d contexts (MC n = %d)\n" n_scen
    !n_contexts grid.Grid.n;
  List.iter
    (fun r ->
      Printf.printf
        "    jobs=%-2d cold %7.3f s   cached %7.3f s   speedup x%.2f   %s\n"
        r.s_jobs r.s_cold r.s_cached (r.s_cold /. r.s_cached)
        (if r.s_identical then "results identical"
         else "RESULTS DIFFER (bug!)"))
    rows;
  write_sweep_json "BENCH_sweep.json" grid !n_contexts rows;
  Printf.printf "  wrote BENCH_sweep.json\n"

(* --- hierarchical SSTA study ----------------------------------------- *)

module Macro = Spv_circuit.Macro
module Netlist = Spv_circuit.Netlist

(* A 64-stage pipeline instantiating one ~15.6k-gate block 64 times —
   1M gates total, the ROADMAP's north-star shape.  The scenario grid
   walks a sizing trajectory under process corners (the paper's design
   loop): every probe resizes one gate of the shared block, which
   invalidates all 64 flat stage analyses but exactly one band of the
   macro table.  Flat and hierarchical evaluation see the identical
   trajectory; each scenario's |flat - hier| gap is checked against
   the hierarchical estimate's own reported error bound. *)

let hier_stages = 64
let hier_gates_per_stage = 15_625
let hier_block_gates = 512
let hier_processes = 2
let hier_sizing_states = 50
let hier_targets_per_state = 10

type hier_result = {
  hb_flat_seconds : float;
  hb_hier_seconds : float;
  hb_scenarios : int;
  hb_n_blocks : int;
  hb_max_bound : float;
  hb_max_gap : float;
  hb_violations : int;
  hb_macro_hits : int;
  hb_macro_misses : int;
}

let run_hier_grid () =
  let net =
    Spv_circuit.Generators.random_logic ~name:"macroblock" ~inputs:32
      ~gates:hier_gates_per_stage ~depth:64 ~seed:1
  in
  let nets = Array.make hier_stages net in
  let gate_ids = Netlist.gate_ids net in
  let n_gates = Array.length gate_ids in
  let processes =
    [|
      sweep_tech;
      Spv_process.Tech.with_inter_vth sweep_tech ~sigma_mv:55.0;
    |]
  in
  let table = Macro.Table.create () in
  let flat_s = ref 0.0 and hier_s = ref 0.0 in
  let max_bound = ref 0.0 and max_gap = ref 0.0 in
  let violations = ref 0 and scenarios = ref 0 and n_blocks = ref 0 in
  let targets = ref [||] in
  Array.iter
    (fun tech ->
      for state = 0 to hier_sizing_states - 1 do
        (* state 0 keeps the current sizes; each later state resizes
           one deterministic gate of the shared block *)
        if state > 0 then begin
          let g = gate_ids.(state * 7919 mod n_gates) in
          let f = if state mod 2 = 0 then 1.25 else 0.8 in
          Netlist.set_size net g (Netlist.size net g *. f)
        end;
        let flat_ctx = ref None and hier_ctx = ref None in
        flat_s :=
          !flat_s +. wall (fun () -> flat_ctx := Some (Engine.Ctx.of_circuits tech nets));
        hier_s :=
          !hier_s
          +. wall (fun () ->
                 hier_ctx :=
                   Some
                     (Engine.Ctx.of_circuits ~mode:Engine.Hierarchical
                        ~macro_table:table ~block_gates:hier_block_gates tech
                        nets));
        let fc = Option.get !flat_ctx and hc = Option.get !hier_ctx in
        n_blocks := Engine.Ctx.n_blocks hc 0;
        if Array.length !targets = 0 then begin
          let d = Engine.Ctx.delay_distribution fc in
          let mu = d.Spv_stats.Gaussian.mu
          and sg = d.Spv_stats.Gaussian.sigma in
          targets :=
            Array.init hier_targets_per_state (fun i ->
                mu
                +. 3.0 *. sg
                   *. ((float_of_int i /. float_of_int (hier_targets_per_state - 1) *. 2.0)
                      -. 1.0))
        end;
        Array.iter
          (fun t_target ->
            incr scenarios;
            let fe = ref None and he = ref None in
            flat_s :=
              !flat_s
              +. wall (fun () ->
                     fe :=
                       Some
                         (Engine.yield ~method_:Engine.Analytic_clark fc
                            ~t_target));
            hier_s :=
              !hier_s
              +. wall (fun () ->
                     he :=
                       Some
                         (Engine.yield ~method_:Engine.Analytic_clark hc
                            ~t_target));
            let fe = Option.get !fe and he = Option.get !he in
            let bound =
              match he.Engine.hier_bound with
              | Some b -> b
              | None -> failwith "hier estimate lost its bound"
            in
            let gap = Float.abs (fe.Engine.value -. he.Engine.value) in
            if gap > bound +. 1e-9 then incr violations;
            if bound > !max_bound then max_bound := bound;
            if gap > !max_gap then max_gap := gap)
          !targets
      done)
    processes;
  {
    hb_flat_seconds = !flat_s;
    hb_hier_seconds = !hier_s;
    hb_scenarios = !scenarios;
    hb_n_blocks = !n_blocks;
    hb_max_bound = !max_bound;
    hb_max_gap = !max_gap;
    hb_violations = !violations;
    hb_macro_hits = Macro.Table.hits table;
    hb_macro_misses = Macro.Table.misses table;
  }

let write_hier_json path r =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"stages\": %d,\n" hier_stages;
  Printf.bprintf b "  \"gates_per_stage\": %d,\n" hier_gates_per_stage;
  Printf.bprintf b "  \"total_gates\": %d,\n"
    (hier_stages * hier_gates_per_stage);
  Printf.bprintf b "  \"blocks_per_stage\": %d,\n" r.hb_n_blocks;
  Printf.bprintf b "  \"scenarios\": %d,\n" r.hb_scenarios;
  Printf.bprintf b
    "  \"grid\": {\"processes\": %d, \"sizing_states\": %d, \"targets\": %d},\n"
    hier_processes hier_sizing_states hier_targets_per_state;
  Printf.bprintf b "  \"flat_seconds\": %s,\n" (json_float f6 r.hb_flat_seconds);
  Printf.bprintf b "  \"hier_seconds\": %s,\n" (json_float f6 r.hb_hier_seconds);
  Printf.bprintf b "  \"speedup\": %s,\n"
    (json_float f3 (r.hb_flat_seconds /. r.hb_hier_seconds));
  Printf.bprintf b "  \"max_hier_bound\": %s,\n" (json_float g17 r.hb_max_bound);
  Printf.bprintf b "  \"max_flat_hier_gap\": %s,\n" (json_float g17 r.hb_max_gap);
  Printf.bprintf b "  \"bound_violations\": %d,\n" r.hb_violations;
  Printf.bprintf b "  \"macro_hits\": %d,\n" r.hb_macro_hits;
  Printf.bprintf b "  \"macro_misses\": %d\n" r.hb_macro_misses;
  Buffer.add_string b "}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc

let run_hier_study () =
  E.Common.section
    "Hierarchical SSTA: macro-memoised vs flat on a 1M-gate pipeline";
  Printf.printf "  %d stages x %d gates = %d gates, %d scenarios\n"
    hier_stages hier_gates_per_stage
    (hier_stages * hier_gates_per_stage)
    (hier_processes * hier_sizing_states * hier_targets_per_state);
  let r = run_hier_grid () in
  Printf.printf
    "  flat %.2f s, hierarchical %.2f s  -> speedup x%.1f (%d blocks/stage)\n"
    r.hb_flat_seconds r.hb_hier_seconds
    (r.hb_flat_seconds /. r.hb_hier_seconds)
    r.hb_n_blocks;
  Printf.printf
    "  max |flat-hier| gap %.3g within max bound %.3g; %d violation(s)\n"
    r.hb_max_gap r.hb_max_bound r.hb_violations;
  Printf.printf "  macro cache: %d hit(s), %d miss(es)\n" r.hb_macro_hits
    r.hb_macro_misses;
  write_hier_json "BENCH_hier.json" r;
  Printf.printf "  wrote BENCH_hier.json\n"

(* --- fuzz campaign throughput ---------------------------------------- *)

module Fuzz_run = Spv_robust.Fuzz_run

let write_fuzz_json path ~trials ~seconds (s : Fuzz_run.summary) =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"trials\": %d,\n" trials;
  Printf.bprintf b "  \"checks_run\": %d,\n" s.Fuzz_run.checks_run;
  Printf.bprintf b "  \"violations\": %d,\n" s.Fuzz_run.violations;
  Printf.bprintf b "  \"seconds\": %s,\n" (json_float f6 seconds);
  Printf.bprintf b "  \"trials_per_sec\": %s,\n"
    (json_float f3 (float_of_int trials /. seconds));
  Printf.bprintf b "  \"checks_per_sec\": %s\n"
    (json_float f1 (float_of_int s.Fuzz_run.checks_run /. seconds));
  Buffer.add_string b "}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc

let run_fuzz_study () =
  E.Common.section "Fuzz campaign: oracle throughput (trials/sec)";
  let trials = 100 in
  let cfg = { Fuzz_run.default_config with Fuzz_run.trials } in
  (* warm-up so allocator/code paths are hot before timing *)
  ignore (Fuzz_run.run { cfg with Fuzz_run.trials = 8 });
  let summary = ref None in
  let seconds = wall (fun () -> summary := Some (Fuzz_run.run cfg)) in
  let s = Option.get !summary in
  Printf.printf
    "  %d trials, %d oracle checks, %d violation(s) in %.3f s (%.1f \
     trials/s, %.0f checks/s)\n"
    trials s.Fuzz_run.checks_run s.Fuzz_run.violations seconds
    (float_of_int trials /. seconds)
    (float_of_int s.Fuzz_run.checks_run /. seconds);
  write_fuzz_json "BENCH_fuzz.json" ~trials ~seconds s;
  Printf.printf "  wrote BENCH_fuzz.json\n"

(* --- deep-tail importance sampling: cone-guided vs legacy ------------ *)

(* 64-stage moments pipeline with one dominant stage: stage 0
   (mu 100, sigma 5) owns the deep tail while the 63 background stages
   sit 4 sigma lower, so the loss at t = mu_0 + z sigma_0 is
   upper_tail(z) to within a relative whisker and z doubles as the
   whitened crossing depth of the dominant failure mode.  Independence
   keeps the exact loss available in closed form at any depth.

   The legacy mixture caps crossing depth at 6 marginal sigmas and
   floors mode weights at 1e-12: past z ~ 6 the capped shift lands
   short of the barrier, and past z ~ 7 the dominant stage's own
   exceedance underflows the floor, collapsing the mixture to uniform
   over all 64 stages (63 of them useless).  The cone-guided proposal
   shifts to the uncapped design point with criticality-weighted modes
   and is immune to both, which is where the deep-tail ESS gain comes
   from. *)

let tail_sigma = 5.0
let tail_mus = Array.init 64 (fun i -> if i = 0 then 100.0 else 80.0)
let tail_zs = [| 4.0; 5.0; 6.0; 7.0; 7.5; 8.0 |]
let tail_n = 120_000

let tail_ctx () =
  let stages =
    Array.map
      (fun mu -> Spv_core.Stage.of_moments ~mu ~sigma:tail_sigma ())
      tail_mus
  in
  Engine.Ctx.of_pipeline
    (Spv_core.Pipeline.make stages
       ~corr:(Spv_stats.Correlation.independent ~n:(Array.length tail_mus)))

(* Exact P{max_j X_j > t} for the independent fixture; the survival
   product is accumulated in log space so 1e-16-scale tails survive. *)
let tail_closed_loss t =
  let log_pass =
    Array.fold_left
      (fun acc mu ->
        acc
        +. Float.log1p
             (-.Spv_stats.Special.upper_tail ((t -. mu) /. tail_sigma)))
      0.0 tail_mus
  in
  -.Float.expm1 log_pass

type tail_est = {
  te_loss : float;
  te_se : float;
  te_ess : float;
  te_used : string;
  te_covers : bool;  (** closed-form loss within value +- 3 se *)
}

type tail_row = {
  tr_z : float;
  tr_t : float;
  tr_closed : float;
  tr_legacy : tail_est;
  tr_cone : tail_est;
  tr_gain : float;  (** cone ESS / legacy ESS (legacy floored at 1) *)
}

let tail_est ~closed (e : Engine.estimate) =
  {
    te_loss = e.Engine.value;
    te_se = e.Engine.std_error;
    te_ess = (match e.Engine.ess with Some s -> s | None -> 0.0);
    te_used =
      (match e.Engine.proposal with
      | Some p -> Engine.proposal_used_name p
      | None -> "-");
    te_covers =
      Float.abs (e.Engine.value -. closed) <= (3.0 *. e.Engine.std_error) +. 1e-18;
  }

let run_tail_row ctx z =
  let t = tail_mus.(0) +. (z *. tail_sigma) in
  let closed = tail_closed_loss t in
  let run proposal =
    tail_est ~closed
      (Engine.yield_loss ~method_:Engine.Importance ~proposal ~n:tail_n
         ~seed:Engine.default_seed ctx ~t_target:t)
  in
  let legacy = run Engine.Legacy in
  let cone = run Engine.Cone_guided in
  {
    tr_z = z;
    tr_t = t;
    tr_closed = closed;
    tr_legacy = legacy;
    tr_cone = cone;
    tr_gain = cone.te_ess /. Float.max legacy.te_ess 1.0;
  }

(* Single-stage fixture: the pipeline max is exactly Gaussian, so the
   cone-guided 6-sigma loss must agree with Special.upper_tail 6. *)
let run_tail_closed_form () =
  let ctx =
    Engine.Ctx.of_pipeline
      (Spv_core.Pipeline.make
         [| Spv_core.Stage.of_moments ~mu:100.0 ~sigma:tail_sigma () |]
         ~corr:(Spv_stats.Correlation.independent ~n:1))
  in
  let e =
    Engine.yield_loss ~method_:Engine.Importance ~proposal:Engine.Cone_guided
      ~n:tail_n ~seed:Engine.default_seed ctx
      ~t_target:(100.0 +. (6.0 *. tail_sigma))
  in
  let exact = Spv_stats.Special.upper_tail 6.0 in
  let agrees =
    Float.abs (e.Engine.value -. exact) <= (3.0 *. e.Engine.std_error) +. 1e-18
  in
  (e, exact, agrees)

let write_tail_json path rows ~closed_est ~closed_exact ~closed_agrees =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"stages\": %d,\n" (Array.length tail_mus);
  Printf.bprintf b "  \"dominant\": {\"mu\": %s, \"sigma\": %s},\n"
    (json_float f1 tail_mus.(0))
    (json_float f1 tail_sigma);
  Printf.bprintf b
    "  \"background\": {\"mu\": %s, \"sigma\": %s, \"count\": %d},\n"
    (json_float f1 tail_mus.(1))
    (json_float f1 tail_sigma)
    (Array.length tail_mus - 1);
  Printf.bprintf b "  \"n_per_run\": %d,\n" tail_n;
  Buffer.add_string b "  \"rows\": [\n";
  let emit_est b e =
    Printf.bprintf b
      "{\"loss\": %s, \"se\": %s, \"ess\": %s, \"proposal\": %S, \
       \"ci_covers_closed_form\": %b}"
      (json_float g6 e.te_loss)
      (json_float g6 e.te_se)
      (json_float f1 e.te_ess)
      e.te_used e.te_covers
  in
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"z\": %s, \"t\": %s, \"loss_closed\": %s,\n\
        \     \"legacy\": "
        (json_float f2 r.tr_z)
        (json_float f2 r.tr_t)
        (json_float g6 r.tr_closed);
      emit_est b r.tr_legacy;
      Buffer.add_string b ",\n     \"cone\": ";
      emit_est b r.tr_cone;
      Printf.bprintf b ",\n     \"ess_gain\": %s}%s\n"
        (json_float f1 r.tr_gain)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ],\n";
  let gain_max =
    List.fold_left (fun acc r -> Float.max acc r.tr_gain) 0.0 rows
  in
  Printf.bprintf b "  \"ess_gain_max\": %s,\n" (json_float f1 gain_max);
  Printf.bprintf b "  \"deep_gain_at_least_100x\": %b,\n" (gain_max >= 100.0);
  Printf.bprintf b
    "  \"closed_form_6sigma\": {\"exact\": %s, \"estimate\": %s, \"se\": \
     %s, \"agrees_within_3se\": %b},\n"
    (json_float g6 closed_exact)
    (json_float g6 closed_est.Engine.value)
    (json_float g6 closed_est.Engine.std_error)
    closed_agrees;
  Printf.bprintf b
    "  \"note\": \"legacy mixture caps crossing depth at 6 sigma and floors \
     mode weights at 1e-12; past ~6 sigma the capped shift strands short of \
     the barrier and past ~7 sigma the weight floor collapses the mixture to \
     uniform over all stages, which is where the cone-guided ESS gain \
     comes from\"\n";
  Buffer.add_string b "}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc

let run_tail_study () =
  E.Common.section
    "Deep-tail importance sampling: cone-guided vs legacy mixture ESS";
  Spv_analysis.Cones.install_engine_proposal ();
  let ctx = tail_ctx () in
  Printf.printf
    "  %d stages (dominant mu %.0f sigma %.0f), %d draws per estimator\n"
    (Array.length tail_mus) tail_mus.(0) tail_sigma tail_n;
  let rows = Array.to_list (Array.map (run_tail_row ctx) tail_zs) in
  List.iter
    (fun r ->
      Printf.printf
        "  z=%.1f  loss %.3g  legacy ess %8.1f (%s)  cone ess %8.1f (%s)  \
         gain x%.1f\n"
        r.tr_z r.tr_closed r.tr_legacy.te_ess r.tr_legacy.te_used
        r.tr_cone.te_ess r.tr_cone.te_used r.tr_gain)
    rows;
  let gain_max =
    List.fold_left (fun acc r -> Float.max acc r.tr_gain) 0.0 rows
  in
  if gain_max < 100.0 then
    Printf.printf
      "  WARNING: max ESS gain x%.1f below the expected 100x deep-tail gain\n"
      gain_max;
  let closed_est, closed_exact, closed_agrees = run_tail_closed_form () in
  Printf.printf
    "  closed-form 6-sigma: exact %.4g, cone-guided %.4g +- %.2g -> %s\n"
    closed_exact closed_est.Engine.value closed_est.Engine.std_error
    (if closed_agrees then "agrees within 3 se" else "DISAGREES");
  write_tail_json "BENCH_tail.json" rows ~closed_est ~closed_exact
    ~closed_agrees;
  Printf.printf "  wrote BENCH_tail.json\n"

(* --- certified sensitivity pruning in the sizers --------------------- *)

(* Sizer work with dominance pruning off vs on, at 4 and 64 stages.
   Pruning is required to be result-transparent, so the study asserts
   byte-identical reports alongside the saved-work counters.  Two
   integrations are measured: the greedy per-stage sizer (candidate
   moves pruned by certified stat-delay sensitivity) and the global
   Lagrangian-based yield optimiser (stage probes skipped by a
   certified yield upper bound over the sizing box). *)

module Sens_hook = Spv_sizing.Sens_hook
module Greedy = Spv_sizing.Greedy
module Lagr = Spv_sizing.Lagrangian
module Global_opt = Spv_sizing.Global_opt
module Gen = Spv_circuit.Generators
module Netl = Spv_circuit.Netlist

type sens_side = {
  sb_seconds : float;
  sb_evaluated : int;  (** greedy trial evaluations / global probes run *)
  sb_skipped : int;  (** moves pruned / probes skipped *)
}

type sens_row = {
  sr_stages : int;
  sr_greedy_off : sens_side;
  sr_greedy_on : sens_side;
  sr_greedy_identical : bool;
  sr_global_off : sens_side;
  sr_global_on : sens_side;
  sr_global_identical : bool;
}

(* Deliberately unbalanced depths (2..10): the deep chains are the
   yield bottleneck while the shortest ones saturate their stage CDF
   at the pipeline target — the probes the certified skip proves
   away. *)
let sens_nets n_stages =
  Array.init n_stages (fun i ->
      Gen.inverter_chain
        ~name:(Printf.sprintf "chain%d" i)
        ~depth:(2 + (2 * (i mod 5)))
        ())

let sens_z = Spv_stats.Special.big_phi_inv 0.9457

let run_sens_config n_stages =
  let tech = E.Common.base_tech in
  let ff = Spv_process.Flipflop.default tech in
  let nets = sens_nets n_stages in
  let targets =
    Array.map
      (fun net ->
        let slow = Lagr.relaxed_delay ~ff tech net ~z:sens_z in
        let fast = Lagr.minimum_achievable_delay ~ff tech net ~z:sens_z in
        fast +. (0.5 *. (slow -. fast)))
      nets
  in
  let greedy_run enabled =
    Sens_hook.set_enabled enabled;
    Sens_hook.reset_stats ();
    let reports = ref [] in
    let seconds =
      wall (fun () ->
          Array.iteri
            (fun i net ->
              let r =
                Greedy.size_stage ~ff tech (Netl.copy net)
                  ~t_target:targets.(i) ~z:sens_z
              in
              reports := r :: !reports)
            nets)
    in
    ( {
        sb_seconds = seconds;
        sb_evaluated = Sens_hook.stats.Sens_hook.moves_evaluated;
        sb_skipped = Sens_hook.stats.Sens_hook.moves_pruned;
      },
      List.rev !reports )
  in
  (* Pitch the pipeline target just below the bottleneck stage's
     minimum achievable stat delay at the per-stage yield budget: the
     bottleneck then misses its budget, the baseline pipeline yield
     starts below target, and ensure_yield has tightening probes to
     run on the stages with headroom — including saturated fast
     stages whose probes the certified skip can prove away. *)
  let z_budget =
    Spv_stats.Special.big_phi_inv
      (Spv_core.Yield.per_stage_yield_target ~yield:0.8 ~n_stages)
  in
  let t_target =
    0.9
    *. Array.fold_left
         (fun acc net ->
           Float.max acc
             (Lagr.minimum_achievable_delay ~ff tech net ~z:z_budget))
         0.0 nets
  in
  let global_run enabled =
    Sens_hook.set_enabled enabled;
    Sens_hook.reset_stats ();
    let result = ref None in
    let seconds =
      wall (fun () ->
          result :=
            Some
              (Global_opt.ensure_yield ~ff ~max_rounds:200 tech
                 (Array.map Netl.copy nets)
                 ~t_target ~yield_target:0.8))
    in
    ( {
        sb_seconds = seconds;
        sb_evaluated = Sens_hook.stats.Sens_hook.probes_run;
        sb_skipped = Sens_hook.stats.Sens_hook.probes_skipped;
      },
      Option.get !result )
  in
  let greedy_off, reports_off = greedy_run false in
  let greedy_on, reports_on = greedy_run true in
  let global_off, res_off = global_run false in
  let global_on, res_on = global_run true in
  Sens_hook.set_enabled true;
  {
    sr_stages = n_stages;
    sr_greedy_off = greedy_off;
    sr_greedy_on = greedy_on;
    sr_greedy_identical = reports_off = reports_on;
    sr_global_off = global_off;
    sr_global_on = global_on;
    sr_global_identical =
      res_off.Global_opt.stage_targets = res_on.Global_opt.stage_targets
      && res_off.Global_opt.stage_areas = res_on.Global_opt.stage_areas
      && res_off.Global_opt.pipeline_yield = res_on.Global_opt.pipeline_yield;
  }

let write_sens_json path rows =
  let b = Buffer.create 512 in
  let side b s =
    Printf.bprintf b
      "{\"seconds\": %s, \"evaluated\": %d, \"skipped\": %d}"
      (json_float f6 s.sb_seconds)
      s.sb_evaluated s.sb_skipped
  in
  Buffer.add_string b "{\n  \"configs\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf b "    {\"stages\": %d,\n" r.sr_stages;
      Printf.bprintf b "     \"greedy\": {\"pruning_off\": ";
      side b r.sr_greedy_off;
      Printf.bprintf b ", \"pruning_on\": ";
      side b r.sr_greedy_on;
      Printf.bprintf b ", \"reports_identical\": %b},\n"
        r.sr_greedy_identical;
      Printf.bprintf b "     \"global\": {\"pruning_off\": ";
      side b r.sr_global_off;
      Printf.bprintf b ", \"pruning_on\": ";
      side b r.sr_global_on;
      Printf.bprintf b ", \"results_identical\": %b}}%s\n"
        r.sr_global_identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc

let run_sens_study () =
  E.Common.section
    "Certified sensitivity pruning: sizer work with dominance pruning off \
     vs on";
  Spv_analysis.Dominance.install_sizing_prune ();
  let rows = List.map run_sens_config [ 4; 64 ] in
  List.iter
    (fun r ->
      Printf.printf
        "  %2d stages  greedy: %d eval / %d pruned (%.3f s -> %.3f s) %s\n"
        r.sr_stages r.sr_greedy_on.sb_evaluated r.sr_greedy_on.sb_skipped
        r.sr_greedy_off.sb_seconds r.sr_greedy_on.sb_seconds
        (if r.sr_greedy_identical then "identical"
         else "REPORTS DIVERGED");
      Printf.printf
        "             global: %d probes / %d skipped (%.3f s -> %.3f s) %s\n"
        r.sr_global_on.sb_evaluated r.sr_global_on.sb_skipped
        r.sr_global_off.sb_seconds r.sr_global_on.sb_seconds
        (if r.sr_global_identical then "identical"
         else "RESULTS DIVERGED"))
    rows;
  write_sens_json "BENCH_sens.json" rows;
  Printf.printf "  wrote BENCH_sens.json\n"

(* --- serve daemon study ---------------------------------------------- *)

module Serve = Spv_workload.Serve

(* Context-heavy, evaluation-light: two real circuits under a process
   override with the closed-form estimator only, so the (source,
   process) context builds (SSTA + Cholesky) dominate a cold request
   and the LRU cache is what a warm request measures. *)
let serve_grid_text =
  "circuit c3540\n\
   circuit c1908\n\
   inter_vth_mv 60\n\
   targets 300:400:5\n\
   method clark\n\
   samples 1000\n\
   shards 4\n"

let serve_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let write_serve_json path ~rows ~contexts ~cold ~warm ~workers_rows
    ~throughput_requests ~throughput_seconds ~identical cache_stats =
  let hits, misses, evictions = cache_stats in
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"rows_per_request\": %d, \"contexts\": %d,\n" rows
    contexts;
  Printf.bprintf b "  \"cold_seconds\": %s,\n" (json_float f6 cold);
  Printf.bprintf b "  \"warm_seconds\": %s,\n" (json_float f6 warm);
  Printf.bprintf b "  \"warm_speedup\": %s,\n" (json_float f3 (cold /. warm));
  Printf.bprintf b "  \"rows_identical_cold_warm\": %b,\n" identical;
  Buffer.add_string b "  \"workers\": [\n";
  List.iteri
    (fun i (w, s) ->
      Printf.bprintf b "    {\"workers\": %d, \"warm_seconds\": %s}%s\n" w
        (json_float f6 s)
        (if i = List.length workers_rows - 1 then "" else ","))
    workers_rows;
  Buffer.add_string b "  ],\n";
  Printf.bprintf b
    "  \"throughput\": {\"requests\": %d, \"seconds\": %s, \
     \"requests_per_sec\": %s},\n"
    throughput_requests
    (json_float f6 throughput_seconds)
    (json_float f1 (float_of_int throughput_requests /. throughput_seconds));
  Printf.bprintf b
    "  \"cache\": {\"hits\": %d, \"misses\": %d, \"evictions\": %d}\n" hits
    misses evictions;
  Buffer.add_string b "}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc

let run_serve_study () =
  E.Common.section
    "Serve daemon: cold vs warm context cache, request throughput";
  let request ?workers id =
    Serve.request_line ?workers ~request_id:id ~seed:7 ~grid:serve_grid_text ()
  in
  let rows_of out =
    List.filter (fun l -> serve_contains l "\"kind\":\"row\"") out
  in
  let min_of times = List.fold_left min infinity times in
  let reps = 5 in
  (* Cold: fresh daemon per repetition so every (source, process)
     context is rebuilt.  Warm: one primed daemon, every context an LRU
     hit.  Same request_id on both so the row lines (which embed it)
     can be compared byte-for-byte; only the cache temperature differs. *)
  let cold_out = ref [] in
  let cold =
    min_of
      (List.init reps (fun _ ->
           let fresh = Serve.create () in
           wall (fun () -> cold_out := Serve.handle_line fresh (request "r"))))
  in
  let d = Serve.create () in
  ignore (Serve.handle_line d (request "r"));
  let warm_out = ref [] in
  let warm =
    min_of
      (List.init reps (fun _ ->
           wall (fun () -> warm_out := Serve.handle_line d (request "r"))))
  in
  let identical = rows_of !cold_out = rows_of !warm_out in
  let workers_rows =
    List.map
      (fun w ->
        let s =
          wall (fun () ->
              ignore (Serve.handle_line d (request ~workers:w "wk")))
        in
        (w, s))
      [ 1; 2; 4 ]
  in
  let throughput_requests = 16 in
  let throughput_seconds =
    wall (fun () ->
        for i = 1 to throughput_requests do
          ignore (Serve.handle_line d (request (Printf.sprintf "t%d" i)))
        done)
  in
  let rows = List.length (rows_of !cold_out) in
  let c = Serve.cache d in
  let contexts = Serve.Cache.length c in
  let cache_stats =
    (Serve.Cache.hits c, Serve.Cache.misses c, Serve.Cache.evictions c)
  in
  Printf.printf "  %d rows/request over %d contexts\n" rows contexts;
  Printf.printf
    "  cold %.4f s   warm %.4f s   -> warm-cache speedup x%.2f   %s\n" cold
    warm (cold /. warm)
    (if identical then "rows identical" else "ROWS DIFFER (bug!)");
  List.iter
    (fun (w, s) -> Printf.printf "  workers=%-2d warm %.4f s\n" w s)
    workers_rows;
  Printf.printf "  throughput: %d warm requests in %.3f s (%.1f req/s)\n"
    throughput_requests throughput_seconds
    (float_of_int throughput_requests /. throughput_seconds);
  let hits, misses, evictions = cache_stats in
  Printf.printf "  cache: %d hit(s), %d miss(es), %d eviction(s)\n" hits
    misses evictions;
  write_serve_json "BENCH_serve.json" ~rows ~contexts ~cold ~warm
    ~workers_rows ~throughput_requests ~throughput_seconds ~identical
    cache_stats;
  Printf.printf "  wrote BENCH_serve.json\n"

(* --- experiment registry --------------------------------------------- *)

let experiments =
  [
    ("fig2", "Fig. 2: MC vs analytic delay distributions", E.Fig2.run);
    ("fig3", "Fig. 3: Clark model error trends", E.Fig3.run);
    ("fig4", "Fig. 4: (mu, sigma) design space", E.Fig4.run);
    ("fig5", "Fig. 5: variability vs depth / stage count", E.Fig5.run);
    ("table1", "Table I: model vs MC across configurations", E.Table1.run);
    ("fig7", "Figs. 7-8: balanced vs unbalanced ALU-decoder", E.Fig7_8.run);
    ( "table2",
      "Table II: ensure yield with small area penalty",
      fun () ->
        E.Common.section
          "Table II: ensuring the 80% yield target with small area penalty";
        E.Table2_3.print_table (E.Table2_3.compute E.Table2_3.Ensure_yield) );
    ( "table3",
      "Table III: area reduction under a yield constraint",
      fun () ->
        E.Common.section "Table III: area reduction at the 80% yield target";
        E.Table2_3.print_table (E.Table2_3.compute E.Table2_3.Minimise_area) );
    ( "ablations",
      "Extensions: criticality, correlation length, sizer policy, leakage",
      E.Ablations.run );
    ( "engine",
      "Engine scaling: parallel MC trials/sec vs domains (writes \
       BENCH_engine.json)",
      run_engine_scaling );
    ( "pruning",
      "Static criticality pruning: pruned vs unpruned gate-level MC",
      run_pruning_study );
    ( "affine",
      "Affine vs interval enclosure tightness + MC containment (writes \
       BENCH_affine.json)",
      run_affine_study );
    ( "sweep",
      "Scenario sweep: shared-context caching vs cold per-scenario runs \
       (writes BENCH_sweep.json)",
      run_sweep_study );
    ( "hier",
      "Hierarchical SSTA: macro-memoised vs flat evaluation of a 1M-gate \
       pipeline (writes BENCH_hier.json)",
      run_hier_study );
    ( "fuzz",
      "Fuzz campaign: differential-oracle throughput (writes \
       BENCH_fuzz.json)",
      run_fuzz_study );
    ( "tail",
      "Deep-tail importance sampling: cone-guided vs legacy mixture ESS at \
       4-8 sigma (writes BENCH_tail.json)",
      run_tail_study );
    ( "sens",
      "Certified sensitivity pruning: sizer wall-time and evaluation counts \
       with pruning off vs on (writes BENCH_sens.json)",
      run_sens_study );
    ( "serve",
      "Evaluation daemon: cold vs warm context-cache latency and request \
       throughput (writes BENCH_serve.json)",
      run_serve_study );
  ]

(* --- Bechamel micro-benchmarks of the analysis kernels -------------- *)

let perf_tests () =
  let open Bechamel in
  let tech = E.Common.base_tech in
  let ff = Spv_process.Flipflop.default tech in
  let stages12 =
    Array.init 12 (fun i ->
        Spv_stats.Gaussian.make ~mu:(100.0 +. float_of_int i) ~sigma:5.0)
  in
  let corr12 = Spv_stats.Correlation.uniform ~n:12 ~rho:0.3 in
  let stage_objs =
    Array.init 12 (fun i ->
        Spv_core.Stage.of_moments ~mu:(100.0 +. float_of_int i) ~sigma:5.0
          ~name:(string_of_int i) ())
  in
  let pipeline = Spv_core.Pipeline.make stage_objs ~corr:corr12 in
  let c432 = Spv_circuit.Generators.c432 () in
  let chain = Spv_circuit.Generators.inverter_chain ~depth:10 () in
  let rng = Spv_stats.Rng.create ~seed:99 in
  [
    Test.make ~name:"clark_max12_corr"
      (Staged.stage (fun () ->
           ignore (Spv_core.Clark.max_n stages12 ~corr:corr12)));
    Test.make ~name:"yield_clark_gaussian"
      (Staged.stage (fun () ->
           ignore (Spv_core.Yield.clark_gaussian pipeline ~t_target:115.0)));
    Test.make ~name:"yield_independent_exact"
      (Staged.stage (fun () ->
           ignore (Spv_core.Yield.independent_exact pipeline ~t_target:115.0)));
    Test.make ~name:"pipeline_mc_100"
      (Staged.stage (fun () ->
           ignore (Spv_core.Yield.monte_carlo pipeline rng ~n:100 ~t_target:115.0)));
    Test.make ~name:"sta_c432"
      (Staged.stage (fun () -> ignore (Spv_circuit.Sta.run tech c432)));
    Test.make ~name:"ssta_stage_chain10"
      (Staged.stage (fun () ->
           ignore (Spv_circuit.Ssta.analyse_stage ~ff tech chain)));
    Test.make ~name:"big_phi_inv"
      (Staged.stage (fun () -> ignore (Spv_stats.Special.big_phi_inv 0.8)));
    (let ectx = Engine.Ctx.of_pipeline pipeline in
     let mc jobs () =
       ignore (Engine.yield ~method_:Engine.Mc ~jobs ~n:512 ectx ~t_target:115.0)
     in
     Test.make_grouped ~name:"engine_seq_vs_par"
       [
         Test.make ~name:"mc512_jobs1" (Staged.stage (mc 1));
         Test.make ~name:"mc512_jobs2" (Staged.stage (mc 2));
         Test.make ~name:"mc512_jobs4" (Staged.stage (mc 4));
       ]);
  ]

let run_perf () =
  let open Bechamel in
  E.Common.section "Micro-benchmarks (Bechamel): core analysis kernels";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let tests = Test.make_grouped ~name:"spv" (perf_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Printf.sprintf "%12.1f ns/run" t
        | Some [] | None -> "     (no est.)"
      in
      Printf.printf "  %-28s %s\n" name ns)
    (List.sort compare rows)

let () =
  let argv = Array.to_list Sys.argv in
  let rec parse_args acc = function
    | [] -> List.rev acc
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            jobs_sweep :=
              Array.of_list (List.sort_uniq compare [ 1; 2; 4; n ]);
            parse_args acc rest
        | _ ->
            Printf.eprintf "--jobs expects a positive integer\n";
            exit 2)
    | "--jobs" :: [] ->
        Printf.eprintf "--jobs expects a positive integer\n";
        exit 2
    | a :: rest -> parse_args (a :: acc) rest
  in
  let args = parse_args [] (List.tl argv) in
  if List.mem "--list" args then begin
    List.iter
      (fun (id, descr, _) -> Printf.printf "%-8s %s\n" id descr)
      experiments;
    exit 0
  end;
  let no_perf = List.mem "--no-perf" args in
  let selected = List.filter (fun a -> a <> "--no-perf") args in
  let to_run =
    if selected = [] then experiments
    else
      List.map
        (fun id ->
          match List.find_opt (fun (i, _, _) -> i = id) experiments with
          | Some e -> e
          | None ->
              Printf.eprintf "unknown experiment %S (try --list)\n" id;
              exit 2)
        selected
  in
  let t0 = Sys.time () in
  List.iter
    (fun (id, _descr, run) ->
      let t = Sys.time () in
      run ();
      Printf.printf "\n[%s done in %.1fs]\n" id (Sys.time () -. t))
    to_run;
  if not no_perf then run_perf ();
  Printf.printf "\nTotal bench time: %.1fs\n" (Sys.time () -. t0)
