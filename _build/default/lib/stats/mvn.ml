type t = {
  mus : float array;
  sigmas : float array;
  corr : Correlation.t;
  chol : Matrix.t;
}

let create ~mus ~sigmas ~corr =
  let n = Array.length mus in
  if Array.length sigmas <> n then invalid_arg "Mvn.create: sigmas length mismatch";
  if Matrix.rows corr <> n || Matrix.cols corr <> n then
    invalid_arg "Mvn.create: correlation dimension mismatch";
  Array.iter
    (fun s -> if s < 0.0 then invalid_arg "Mvn.create: negative sigma")
    sigmas;
  let cov =
    Matrix.init ~rows:n ~cols:n (fun i j ->
        Matrix.get corr i j *. sigmas.(i) *. sigmas.(j))
  in
  (* Degenerate covariances (zero sigma, rho = 1) are routine here, so
     use the jitter-tolerant factorisation. *)
  let chol =
    if Array.for_all (fun s -> s = 0.0) sigmas then Matrix.create ~rows:n ~cols:n
    else Matrix.cholesky_psd cov
  in
  { mus = Array.copy mus; sigmas = Array.copy sigmas; corr; chol }

let dim t = Array.length t.mus

let transform t z =
  let n = dim t in
  if Array.length z <> n then invalid_arg "Mvn.transform: dimension mismatch";
  let correlated = Matrix.mat_vec t.chol z in
  Array.init n (fun i -> t.mus.(i) +. correlated.(i))

let whiten t x =
  let n = dim t in
  if Array.length x <> n then invalid_arg "Mvn.whiten: dimension mismatch";
  Matrix.solve_lower t.chol (Array.init n (fun i -> x.(i) -. t.mus.(i)))

let sample t rng =
  transform t (Array.init (dim t) (fun _ -> Rng.gaussian rng))

let sample_many t rng ~n = Array.init n (fun _ -> sample t rng)

let sample_max t rng =
  let x = sample t rng in
  Array.fold_left Float.max neg_infinity x

let cholesky_row t i =
  let n = dim t in
  if i < 0 || i >= n then invalid_arg "Mvn.cholesky_row: index out of range";
  Array.init n (fun j -> Matrix.get t.chol i j)

let mean t i = t.mus.(i)
let marginal t i = Gaussian.make ~mu:t.mus.(i) ~sigma:t.sigmas.(i)
let covariance t i j = Matrix.get t.corr i j *. t.sigmas.(i) *. t.sigmas.(j)
