(** Binary max-heap with float priorities (used by the k-longest-path
    enumeration; generic enough to reuse). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Removes and returns the highest-priority entry. *)

val peek : 'a t -> (float * 'a) option
