(** Multivariate normal sampling.

    Used by the pipeline-level Monte-Carlo reference: stage delays are
    drawn jointly from N(mu, Sigma) where Sigma is assembled from the
    per-stage sigmas and a correlation matrix. *)

type t

val create : mus:float array -> sigmas:float array -> corr:Correlation.t -> t
(** Precomputes the Cholesky factor of the covariance.  [sigmas] must
    be non-negative; [corr] must be a valid [n x n] correlation matrix
    matching the length of [mus]. *)

val dim : t -> int
val sample : t -> Rng.t -> float array
(** One joint draw. *)

val transform : t -> float array -> float array
(** Push a vector of standard normals through the distribution:
    [mu + L z] with [L] the Cholesky factor.  Requires [dim t]
    entries.  The basis for stratified designs ({!Sampling}). *)

val whiten : t -> float array -> float array
(** Inverse of {!transform}: the z-vector with [transform t z = x]
    (forward substitution against the Cholesky factor).  Fails on a
    degenerate (jitter-rescued singular) covariance only within the
    jitter's numerical noise. *)

val sample_many : t -> Rng.t -> n:int -> float array array
(** [n] joint draws (rows). *)

val sample_max : t -> Rng.t -> float
(** Max component of one joint draw — a pipeline-delay sample. *)

val cholesky_row : t -> int -> float array
(** Row [i] of the covariance's Cholesky factor L (so component i is
    [mu_i + row_i . z]); the geometry rare-event shifts need. *)

val mean : t -> int -> float
val marginal : t -> int -> Gaussian.t
val covariance : t -> int -> int -> float
