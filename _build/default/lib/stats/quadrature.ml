let simpson ~f ~lo ~hi ~n =
  if n <= 0 then invalid_arg "Quadrature.simpson: n <= 0";
  let n = if n mod 2 = 0 then n else n + 1 in
  let h = (hi -. lo) /. float_of_int n in
  let sum = ref (f lo +. f hi) in
  for i = 1 to n - 1 do
    let x = lo +. (float_of_int i *. h) in
    sum := !sum +. ((if i mod 2 = 1 then 4.0 else 2.0) *. f x)
  done;
  !sum *. h /. 3.0

let adaptive_simpson ?(eps = 1e-10) ?(max_depth = 50) ~f ~lo ~hi () =
  let simpson3 a b =
    let c = (a +. b) /. 2.0 in
    ((b -. a) /. 6.0) *. (f a +. (4.0 *. f c) +. f b)
  in
  let rec go a b whole eps depth =
    let c = (a +. b) /. 2.0 in
    let left = simpson3 a c and right = simpson3 c b in
    let diff = left +. right -. whole in
    if depth <= 0 || abs_float diff <= 15.0 *. eps then
      left +. right +. (diff /. 15.0)
    else
      go a c left (eps /. 2.0) (depth - 1)
      +. go c b right (eps /. 2.0) (depth - 1)
  in
  go lo hi (simpson3 lo hi) eps max_depth

(* Nodes/weights for the positive half of the 32-point rule. *)
let gl32_nodes =
  [| 0.0483076656877383162; 0.1444719615827964934; 0.2392873622521370745;
     0.3318686022821276497; 0.4213512761306353453; 0.5068999089322293900;
     0.5877157572407623290; 0.6630442669302152009; 0.7321821187402896803;
     0.7944837959679424069; 0.8493676137325699701; 0.8963211557660521240;
     0.9349060759377396891; 0.9647622555875064307; 0.9856115115452683354;
     0.9972638618494815635 |]

let gl32_weights =
  [| 0.0965400885147278006; 0.0956387200792748594; 0.0938443990808045654;
     0.0911738786957638847; 0.0876520930044038111; 0.0833119242269467552;
     0.0781938957870703065; 0.0723457941088485062; 0.0658222227763618468;
     0.0586840934785355471; 0.0509980592623761762; 0.0428358980222266807;
     0.0342738629130214331; 0.0253920653092620595; 0.0162743947309056706;
     0.0070186100094700966 |]

let gauss_legendre_32 ~f ~lo ~hi =
  let mid = (lo +. hi) /. 2.0 and half = (hi -. lo) /. 2.0 in
  let acc = ref 0.0 in
  for i = 0 to 15 do
    let dx = half *. gl32_nodes.(i) in
    acc := !acc +. (gl32_weights.(i) *. (f (mid +. dx) +. f (mid -. dx)))
  done;
  !acc *. half

let expectation_of_max2 ~mu1 ~sigma1 ~mu2 ~sigma2 ~rho =
  assert (sigma1 > 0.0 && sigma2 > 0.0);
  assert (rho > -1.0 && rho < 1.0);
  (* E[g(max)] = int phi(z1) int g(...) phi over the conditional:
     write X1 = mu1 + s1 Z, X2 | Z ~ N(mu2 + rho s2 Z, s2 sqrt(1-rho^2)).
     Then E[g(max(X1,X2))] = E_Z E[g(max(x1(Z), X2))|Z], and the inner
     expectation over a scalar Gaussian is a 1-D integral. *)
  let s2c = sigma2 *. sqrt (1.0 -. (rho *. rho)) in
  let inner g z =
    let x1 = mu1 +. (sigma1 *. z) in
    let m2 = mu2 +. (rho *. sigma2 *. z) in
    let h u =
      let x2 = m2 +. (s2c *. u) in
      g (Float.max x1 x2) *. Special.phi u
    in
    (* The integrand has a kink where x2 = x1; split there so each
       Gauss-Legendre panel sees a smooth function. *)
    let kink = Float.max (-8.0) (Float.min 8.0 ((x1 -. m2) /. s2c)) in
    gauss_legendre_32 ~f:h ~lo:(-8.0) ~hi:kink
    +. gauss_legendre_32 ~f:h ~lo:kink ~hi:8.0
  in
  let outer g =
    gauss_legendre_32
      ~f:(fun z -> inner g z *. Special.phi z)
      ~lo:(-8.0) ~hi:8.0
  in
  (outer (fun x -> x), outer (fun x -> x *. x))
