(** Variance-reduction designs for Monte-Carlo estimation.

    Plain Monte-Carlo yield estimates have standard error
    [sqrt(y(1-y)/n)]; stratifying the underlying normals cuts the error
    substantially for the smooth functionals used here (yield, moments
    of the pipeline delay).  Two classic schemes:

    - {b antithetic variates}: draws come in (z, -z) pairs, cancelling
      the odd part of the integrand;
    - {b Latin hypercube sampling}: each marginal is stratified into n
      equiprobable cells with exactly one draw per cell, randomly
      permuted across dimensions. *)

val antithetic_gaussians : Rng.t -> n_pairs:int -> float array
(** [2 * n_pairs] standard normals in (z, -z) pairs. *)

val latin_hypercube : Rng.t -> dims:int -> n:int -> float array array
(** [n] points in [0,1)^dims; each coordinate hits each of the [n]
    equal strata exactly once (jittered within the stratum). *)

val latin_hypercube_gaussians : Rng.t -> dims:int -> n:int -> float array array
(** LHS mapped through the normal quantile: [n] stratified standard
    normal vectors. *)

val mvn_lhs : Mvn.t -> Rng.t -> n:int -> float array array
(** [n] stratified draws from a multivariate normal: an LHS design in
    z-space pushed through the distribution's Cholesky transform.
    Marginals remain stratified; the correlation structure is exact. *)

val mvn_antithetic : Mvn.t -> Rng.t -> n_pairs:int -> float array array
(** [2 * n_pairs] draws in antithetic pairs around the mean vector. *)
