lib/stats/heap.ml: Array Stdlib
