lib/stats/kstest.ml: Array Float Gaussian
