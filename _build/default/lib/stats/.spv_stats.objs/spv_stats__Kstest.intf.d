lib/stats/kstest.mli: Gaussian
