lib/stats/quadrature.mli:
