lib/stats/histogram.ml: Array Descriptive Float Format Stdlib String
