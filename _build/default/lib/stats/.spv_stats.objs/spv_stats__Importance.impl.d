lib/stats/importance.ml: Array Descriptive Float Gaussian Mvn Rng
