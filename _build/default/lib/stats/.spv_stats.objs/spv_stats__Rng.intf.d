lib/stats/rng.mli:
