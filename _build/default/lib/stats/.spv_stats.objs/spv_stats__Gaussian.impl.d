lib/stats/gaussian.ml: Array Float Format Rng Special
