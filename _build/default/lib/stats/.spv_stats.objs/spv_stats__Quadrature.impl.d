lib/stats/quadrature.ml: Array Float Special
