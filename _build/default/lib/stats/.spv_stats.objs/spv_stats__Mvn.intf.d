lib/stats/mvn.mli: Correlation Gaussian Rng
