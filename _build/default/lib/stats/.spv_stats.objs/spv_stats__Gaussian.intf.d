lib/stats/gaussian.mli: Format Rng
