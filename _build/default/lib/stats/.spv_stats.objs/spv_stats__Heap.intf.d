lib/stats/heap.mli:
