lib/stats/importance.mli: Mvn Rng
