lib/stats/sampling.ml: Array Float Mvn Rng Special
