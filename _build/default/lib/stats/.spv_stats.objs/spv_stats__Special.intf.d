lib/stats/special.mli:
