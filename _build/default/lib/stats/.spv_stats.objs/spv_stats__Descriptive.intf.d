lib/stats/descriptive.mli:
