lib/stats/correlation.mli: Matrix
