lib/stats/mvn.ml: Array Correlation Float Gaussian Matrix Rng
