lib/stats/correlation.ml: Array Descriptive Matrix
