lib/stats/sampling.mli: Mvn Rng
