(** Numerical integration, used as an independent oracle for the Clark
    moment formulas in tests (E[max] as an integral against the joint
    density). *)

val simpson : f:(float -> float) -> lo:float -> hi:float -> n:int -> float
(** Composite Simpson rule with [n] (forced even) panels. *)

val adaptive_simpson :
  ?eps:float -> ?max_depth:int -> f:(float -> float) -> lo:float -> hi:float ->
  unit -> float
(** Adaptive Simpson with absolute tolerance [eps] (default 1e-10). *)

val gauss_legendre_32 : f:(float -> float) -> lo:float -> hi:float -> float
(** 32-point Gauss–Legendre on [\[lo, hi\]]. *)

val expectation_of_max2 :
  mu1:float -> sigma1:float -> mu2:float -> sigma2:float -> rho:float ->
  float * float
(** (E[max(X1,X2)], E[max(X1,X2)^2]) by 2-D numerical integration over
    the joint Gaussian density — slow but independent of Clark's
    closed forms. *)
