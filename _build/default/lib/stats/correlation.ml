type t = Matrix.t

let of_function ~n f =
  Matrix.init ~rows:n ~cols:n (fun i j ->
      if i = j then 1.0
      else
        let v = if i < j then f i j else f j i in
        if v < -1.0 || v > 1.0 then
          invalid_arg "Correlation.of_function: entry outside [-1,1]";
        v)

let uniform ~n ~rho =
  if n <= 0 then invalid_arg "Correlation.uniform: n <= 0";
  let lo = if n > 1 then -1.0 /. float_of_int (n - 1) else -1.0 in
  if rho < lo || rho > 1.0 then
    invalid_arg "Correlation.uniform: rho outside valid range";
  of_function ~n (fun _ _ -> rho)

let independent ~n = uniform ~n ~rho:0.0
let perfectly_correlated ~n = uniform ~n ~rho:1.0

let exponential_decay ~n ~positions ~length =
  if length <= 0.0 then invalid_arg "Correlation.exponential_decay: length <= 0";
  if Array.length positions <> n then
    invalid_arg "Correlation.exponential_decay: positions length mismatch";
  of_function ~n (fun i j ->
      exp (-.abs_float (positions.(i) -. positions.(j)) /. length))

let blend ~weight a b =
  if weight < 0.0 || weight > 1.0 then
    invalid_arg "Correlation.blend: weight outside [0,1]";
  if Matrix.rows a <> Matrix.rows b then
    invalid_arg "Correlation.blend: dimension mismatch";
  Matrix.add (Matrix.scale a weight) (Matrix.scale b (1.0 -. weight))

let get = Matrix.get

let is_valid ?(eps = 1e-9) t =
  Matrix.rows t = Matrix.cols t
  && Matrix.is_symmetric ~eps t
  &&
  let n = Matrix.rows t in
  let entries_ok = ref true in
  for i = 0 to n - 1 do
    if abs_float (Matrix.get t i i -. 1.0) > eps then entries_ok := false;
    for j = 0 to n - 1 do
      let v = Matrix.get t i j in
      if v < -1.0 -. eps || v > 1.0 +. eps then entries_ok := false
    done
  done;
  !entries_ok
  && (try ignore (Matrix.cholesky_psd t); true with Failure _ -> false)

let sample_correlation xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then
    invalid_arg "Correlation.sample_correlation: length mismatch";
  if n < 2 then invalid_arg "Correlation.sample_correlation: need >= 2";
  let mx = Descriptive.mean xs and my = Descriptive.mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 || !syy = 0.0 then
    invalid_arg "Correlation.sample_correlation: degenerate sample";
  !sxy /. sqrt (!sxx *. !syy)
