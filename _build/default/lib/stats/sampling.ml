let antithetic_gaussians rng ~n_pairs =
  if n_pairs <= 0 then invalid_arg "Sampling.antithetic_gaussians: n_pairs <= 0";
  let out = Array.make (2 * n_pairs) 0.0 in
  for i = 0 to n_pairs - 1 do
    let z = Rng.gaussian rng in
    out.(2 * i) <- z;
    out.((2 * i) + 1) <- -.z
  done;
  out

let latin_hypercube rng ~dims ~n =
  if dims <= 0 || n <= 0 then invalid_arg "Sampling.latin_hypercube: bad dims/n";
  let points = Array.make_matrix n dims 0.0 in
  let strata = Array.init n (fun i -> i) in
  for d = 0 to dims - 1 do
    Rng.shuffle rng strata;
    for i = 0 to n - 1 do
      let u = Rng.float rng in
      points.(i).(d) <- (float_of_int strata.(i) +. u) /. float_of_int n
    done
  done;
  points

let latin_hypercube_gaussians rng ~dims ~n =
  let pts = latin_hypercube rng ~dims ~n in
  Array.map
    (Array.map (fun u ->
         (* u in [0,1); keep strictly inside the quantile's domain. *)
         Special.big_phi_inv (Float.max 1e-12 (Float.min (1.0 -. 1e-12) u))))
    pts

let mvn_lhs mvn rng ~n =
  let dims = Mvn.dim mvn in
  let zs = latin_hypercube_gaussians rng ~dims ~n in
  Array.map (Mvn.transform mvn) zs

let mvn_antithetic mvn rng ~n_pairs =
  if n_pairs <= 0 then invalid_arg "Sampling.mvn_antithetic: n_pairs <= 0";
  let dims = Mvn.dim mvn in
  let out = Array.make (2 * n_pairs) [||] in
  for i = 0 to n_pairs - 1 do
    let z = Array.init dims (fun _ -> Rng.gaussian rng) in
    out.(2 * i) <- Mvn.transform mvn z;
    out.((2 * i) + 1) <- Mvn.transform mvn (Array.map (fun v -> -.v) z)
  done;
  out
