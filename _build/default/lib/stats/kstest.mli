(** One-sample Kolmogorov–Smirnov test.

    Quantifies the paper's working assumption that the max of Gaussian
    stage delays is itself approximately Gaussian (Section 2.4). *)

type result = {
  statistic : float;  (** sup |F_emp - F_ref| *)
  p_value : float;    (** asymptotic Kolmogorov p-value *)
  n : int;
}

val against_cdf : float array -> cdf:(float -> float) -> result
(** KS distance of a sample against an arbitrary reference CDF.
    Requires a non-empty sample. *)

val against_gaussian : float array -> Gaussian.t -> result

val kolmogorov_sf : float -> float
(** Survival function Q_KS(lambda) = 2 sum_{k>=1} (-1)^{k-1}
    exp(-2 k^2 lambda^2). *)
