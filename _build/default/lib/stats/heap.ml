type 'a entry = { priority : float; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.data.(i).priority > t.data.(parent).priority then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < t.size && t.data.(l).priority > t.data.(!largest).priority then
    largest := l;
  if r < t.size && t.data.(r).priority > t.data.(!largest).priority then
    largest := r;
  if !largest <> i then begin
    swap t i !largest;
    sift_down t !largest
  end

let push t ~priority value =
  let entry = { priority; value } in
  let capacity = Array.length t.data in
  if t.size >= capacity then begin
    (* The fresh slots are filled with [entry] itself, which keeps the
       array total without a dummy element. *)
    let data = Array.make (Stdlib.max 8 (2 * capacity)) entry in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.priority, top.value)
  end

let peek t = if t.size = 0 then None else Some (t.data.(0).priority, t.data.(0).value)
