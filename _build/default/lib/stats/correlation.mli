(** Correlation-matrix construction and validation.

    The paper's stage delays are correlated Gaussians; these helpers
    build the common correlation structures (uniform rho, spatial
    exponential decay, inter+intra mixtures) and check validity. *)

type t = Matrix.t
(** Symmetric matrix with unit diagonal. *)

val uniform : n:int -> rho:float -> t
(** All off-diagonal entries equal to [rho].  Valid for
    [-1/(n-1) <= rho <= 1]. Raises [Invalid_argument] otherwise. *)

val independent : n:int -> t
val perfectly_correlated : n:int -> t

val exponential_decay : n:int -> positions:float array -> length:float -> t
(** [rho_ij = exp (-|x_i - x_j| / length)] — the standard spatial
    correlation model for systematic intra-die variation.  [length]
    must be positive. *)

val of_function : n:int -> (int -> int -> float) -> t
(** Builds the matrix from a pairwise function (symmetrised, unit
    diagonal forced). *)

val blend : weight:float -> t -> t -> t
(** Convex combination [weight * a + (1-weight) * b]; models mixing a
    fully-correlated (inter-die) component with an independent
    (random) one.  [weight] in [0,1]. *)

val is_valid : ?eps:float -> t -> bool
(** Symmetric, unit diagonal, entries in [-1,1], positive
    semi-definite (checked via jittered Cholesky). *)

val get : t -> int -> int -> float

val sample_correlation : float array -> float array -> float
(** Pearson correlation of two equal-length sample arrays
    (length >= 2, non-degenerate). *)
