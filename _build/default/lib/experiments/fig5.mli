(** Fig. 5: variability (sigma/mu) trends — (a) of a stage with logic
    depth, (b) of the pipeline delay with the number of stages, (c) of
    the pipeline delay when stages x depth is fixed at 120. *)

val panel_a :
  ?depths:int array -> unit -> float array * (string * float array) list
(** Normalised stage sigma/mu per depth for: only-random, intra+inter
    20 mV, intra+inter 40 mV, only-inter 40 mV.  Returns the depth axis
    and one labelled normalised series per setting. *)

val panel_b :
  ?stage_counts:int array -> unit -> float array * (string * float array) list
(** Normalised pipeline sigma/mu per stage count for uniform stage
    correlations 0.0, 0.2, 0.5. *)

val panel_c :
  ?total_levels:int -> ?stage_counts:int array -> unit ->
  float array * (string * float array) list
(** Raw (un-normalised) pipeline sigma/mu per stage count with
    stages x depth = [total_levels] (default 120), for inter-die Vth
    sigma 0, 20, 40 mV. *)

val run : unit -> unit
