module G = Spv_stats.Gaussian
module Clark = Spv_core.Clark

type point = { x : float; mean_err_pct : float; std_err_pct : float }

let pct_err approx reference =
  if reference = 0.0 then invalid_arg "Fig3: zero reference";
  abs_float (approx -. reference) /. reference *. 100.0

let error_vs_stages ?(mu = 100.0) ?(sigma = 10.0) ?stage_counts () =
  let stage_counts =
    match stage_counts with
    | Some cs -> cs
    | None -> Array.init 29 (fun i -> i + 2)
  in
  Array.map
    (fun n ->
      let gs = Array.make n (G.make ~mu ~sigma) in
      let approx = Clark.max_n_independent gs in
      let ref_mu, ref_std = Clark.exact_max_moments_independent gs in
      {
        x = float_of_int n;
        mean_err_pct = pct_err (G.mu approx) ref_mu;
        std_err_pct = pct_err (G.sigma approx) ref_std;
      })
    stage_counts

let error_vs_correlation ?(mu = 100.0) ?(sigma = 10.0) ?(n_stages = 8)
    ?(mc_samples = 400_000) ?rhos () =
  let rhos =
    match rhos with
    | Some r -> r
    | None -> Array.init 9 (fun i -> 0.1 *. float_of_int i)
  in
  Array.map
    (fun rho ->
      let gs = Array.make n_stages (G.make ~mu ~sigma) in
      let corr = Spv_stats.Correlation.uniform ~n:n_stages ~rho in
      let approx = Clark.max_n gs ~corr in
      let mvn =
        Spv_stats.Mvn.create
          ~mus:(Array.make n_stages mu)
          ~sigmas:(Array.make n_stages sigma)
          ~corr
      in
      let rng = Common.rng () in
      let samples =
        Array.init mc_samples (fun _ -> Spv_stats.Mvn.sample_max mvn rng)
      in
      let ref_mu = Spv_stats.Descriptive.mean samples in
      let ref_std = Spv_stats.Descriptive.std samples in
      {
        x = rho;
        mean_err_pct = pct_err (G.mu approx) ref_mu;
        std_err_pct = pct_err (G.sigma approx) ref_std;
      })
    rhos

let ordering_ablation ?(mu_spread = 20.0) ?(sigma = 8.0) ?(n_stages = 8) () =
  let gs =
    Array.init n_stages (fun i ->
        G.make
          ~mu:(100.0 +. (mu_spread *. float_of_int i /. float_of_int n_stages))
          ~sigma)
  in
  (* Shuffle deterministically so As_given is neither sorted order. *)
  let shuffled = Array.copy gs in
  Spv_stats.Rng.shuffle (Common.rng ()) shuffled;
  let ref_mu, ref_std = Clark.exact_max_moments_independent shuffled in
  List.map
    (fun order ->
      let approx = Clark.max_n_independent ~order shuffled in
      ( order,
        pct_err (G.mu approx) ref_mu,
        pct_err (G.sigma approx) ref_std ))
    [ Clark.Increasing_mean; Clark.Decreasing_mean; Clark.As_given ]

let order_name = function
  | Clark.Increasing_mean -> "increasing-mean"
  | Clark.Decreasing_mean -> "decreasing-mean"
  | Clark.As_given -> "as-given"

let print_points header pts =
  Common.multi_series ~header
    ~labels:[| "mean-err-%"; "std-err-%" |]
    ~x:(Array.map (fun p -> p.x) pts)
    [| Array.map (fun p -> p.mean_err_pct) pts;
       Array.map (fun p -> p.std_err_pct) pts |]

let run () =
  Common.section "Figure 3: Clark-model error trends";
  Common.subsection "(a) error vs number of stages (independent, equal stages)";
  print_points "stages vs % error" (error_vs_stages ());
  Common.subsection "(b) error vs correlation coefficient (8 stages, MC ref)";
  print_points "rho vs % error" (error_vs_correlation ());
  Common.subsection "ablation: variable folding order (distinct means)";
  List.iter
    (fun (order, mean_err, std_err) ->
      Printf.printf "  %-16s  mean err %.4f%%   std err %.4f%%\n"
        (order_name order) mean_err std_err)
    (ordering_ablation ())
