(** Table I: modelling vs gate-level Monte-Carlo for several pipeline
    configurations (stages x logic depth, and variation mixes). *)

type config = {
  label : string;
  depths : int array;  (** one entry per stage *)
  tech : Spv_process.Tech.t;
}

val default_configs : unit -> config list
(** The paper's five rows: 8x5, 5x8, 5x(variable), 5x8 inter-only,
    5x8 inter+intra. *)

type row = {
  config : config;
  t_target : float;
  mc_mu : float;
  mc_sigma : float;
  mc_yield : float;
  model_mu : float;
  model_sigma : float;
  model_yield : float;
}

val compute : ?n_samples:int -> config -> row
(** The delay target is set at the analytic 90% quantile rounded to
    5 ps (the paper likewise reports targets near the upper tail). *)

val run : unit -> unit
