(** Fig. 2: pipeline delay distribution, gate-level Monte-Carlo vs the
    analytical model, for a 12-stage inverter-chain pipeline with logic
    depth 10 under (a) random intra-die only, (b) inter-die only,
    (c) inter + intra with spatial correlation. *)

type variant = Random_only | Inter_only | Mixed

val variant_name : variant -> string

type result = {
  variant : variant;
  samples : float array;  (** gate-level Monte-Carlo pipeline delays *)
  mc_mean : float;
  mc_std : float;
  model : Spv_stats.Gaussian.t;  (** Clark-propagated analytic distribution *)
  ks : Spv_stats.Kstest.result;  (** MC sample vs the analytic Gaussian *)
}

val compute :
  ?stages:int -> ?depth:int -> ?n_samples:int -> variant -> result
(** Defaults: 12 stages, depth 10, 4000 samples. *)

val run : unit -> unit
(** Print all three panels as histogram-vs-pdf series plus summary
    moments. *)
