(** Fig. 4: permissible (mu, sigma) design region of a pipe stage for a
    target delay and yield — the relaxed bound (eq. 11), equality
    bounds for two stage counts (eq. 12) and the realizable
    inverter-chain corridor (eq. 13). *)

val default_t_target : float
val default_yield : float

val compute :
  ?t_target:float -> ?yield:float -> ?stage_counts:int list -> unit ->
  Spv_core.Design_space.curves

val run : unit -> unit
