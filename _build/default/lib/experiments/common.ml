module Tech = Spv_process.Tech

let base_tech = Tech.bptm70

let random_only_tech =
  let t = Tech.with_inter_vth base_tech ~sigma_mv:0.0 in
  let t = Tech.with_sys_vth t ~sigma_mv:0.0 in
  { t with Tech.sigma_leff_rel_inter = 0.0; sigma_leff_rel_sys = 0.0 }

let inter_only_tech ?(sigma_mv = 40.0) () =
  let t = Tech.with_random_vth base_tech ~sigma_mv:0.0 in
  let t = Tech.with_sys_vth t ~sigma_mv:0.0 in
  let t = Tech.with_inter_vth t ~sigma_mv in
  { t with Tech.sigma_leff_rel_sys = 0.0 }

let mixed_tech ?(inter_mv = 40.0) () = Tech.with_inter_vth base_tech ~sigma_mv:inter_mv

let optimisation_tech =
  let t = Tech.with_inter_vth base_tech ~sigma_mv:10.0 in
  let t = Tech.with_sys_vth t ~sigma_mv:10.0 in
  let t = Tech.with_random_vth t ~sigma_mv:45.0 in
  { t with Tech.sigma_leff_rel_inter = 0.01; sigma_leff_rel_sys = 0.005 }

let seed = 20050307 (* DATE'05 session date *)

let rng () = Spv_stats.Rng.create ~seed

(* Printing ---------------------------------------------------------- *)

let section title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 72 '=') title (String.make 72 '=')

let subsection title =
  Printf.printf "\n-- %s --\n" title

let series ~header pts =
  Printf.printf "%s\n" header;
  Array.iter (fun (x, y) -> Printf.printf "  %12.4f  %12.6f\n" x y) pts

let multi_series ~header ~labels ~x ys =
  Printf.printf "%s\n" header;
  Printf.printf "  %12s" "x";
  Array.iter (fun l -> Printf.printf "  %12s" l) labels;
  print_newline ();
  Array.iteri
    (fun i xi ->
      Printf.printf "  %12.4f" xi;
      Array.iter (fun col -> Printf.printf "  %12.6f" col.(i)) ys;
      print_newline ())
    x

let row s = print_string s; print_newline ()

let cell s = Printf.sprintf "%14s" s

let table_header cells =
  row (String.concat " | " (List.map cell cells));
  row (String.make ((17 * List.length cells) - 3) '-')

let table_row cells = row (String.concat " | " (List.map cell cells))

let histogram_vs_pdf ?(bins = 30) ~samples ~pdf () =
  let h = Spv_stats.Histogram.of_samples ~bins samples in
  Printf.printf "  %12s  %12s  %12s\n" "delay(ps)" "mc-density" "model-pdf";
  for i = 0 to Spv_stats.Histogram.bins h - 1 do
    let c = Spv_stats.Histogram.bin_center h i in
    Printf.printf "  %12.2f  %12.6f  %12.6f\n" c
      (Spv_stats.Histogram.density h i)
      (pdf c)
  done

let pct p = Printf.sprintf "%.1f" (100.0 *. p)
