(** Tables II and III: global pipeline sizing on the 4-stage ISCAS85
    pipeline (c3540, c2670, c1908, c432).

    Table II: ensure the 80% pipeline yield target that the
    conventionally (per-stage) optimised design misses, at a small area
    penalty.  Table III: recover area while holding the 80% target. *)

type scenario = Ensure_yield | Minimise_area

type table = {
  scenario : scenario;
  t_target : float;
  yield_target : float;
  baseline : Spv_sizing.Global_opt.result;
  proposed : Spv_sizing.Global_opt.result;
  mc_yield_baseline : float;  (** Monte-Carlo check of the joint model *)
  mc_yield_proposed : float;
}

val compute : ?yield_target:float -> scenario -> table
(** The delay target is derived from the critical stage (c3540):
    0.985x its fastest achievable statistical delay for
    [Ensure_yield] (so the conventional flow misses the target), and
    1.02x for [Minimise_area] (so the conventional flow meets it with
    recoverable slack). *)

val print_table : table -> unit
val run : unit -> unit
