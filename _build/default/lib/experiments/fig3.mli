(** Fig. 3: trend of the Clark-model error (a) with the number of
    pipeline stages and (b) with the stage-delay correlation
    coefficient.

    Error references: the exact independent-max moments (numerical
    integration) for panel (a), and a large fixed-seed Monte-Carlo of
    the joint Gaussian for panel (b). *)

type point = {
  x : float;  (** stage count or correlation coefficient *)
  mean_err_pct : float;  (** |mu_clark - mu_ref| / mu_ref * 100 *)
  std_err_pct : float;
}

val error_vs_stages :
  ?mu:float -> ?sigma:float -> ?stage_counts:int array -> unit -> point array
(** Equal independent stages (defaults mu = 100, sigma = 10,
    counts 2..30). *)

val error_vs_correlation :
  ?mu:float -> ?sigma:float -> ?n_stages:int -> ?mc_samples:int ->
  ?rhos:float array -> unit -> point array
(** Equal stages under uniform correlation (defaults: 8 stages,
    rho in 0..0.8, 400k MC samples as reference). *)

val ordering_ablation :
  ?mu_spread:float -> ?sigma:float -> ?n_stages:int -> unit ->
  (Spv_core.Clark.order * float * float) list
(** Extension: Clark mean/std error (% vs exact independent) for the
    three fold orders on stages with distinct means — demonstrates the
    paper's claim that increasing-mean ordering minimises the error. *)

val run : unit -> unit
