module Ds = Spv_core.Design_space

let default_t_target = 120.0
let default_yield = 0.8

let compute ?(t_target = default_t_target) ?(yield = default_yield)
    ?(stage_counts = [ 4; 12 ]) () =
  Ds.curves ~tech:Common.base_tech ~t_target ~yield ~stage_counts
    ~n_points:40 ()

let run () =
  Common.section
    "Figure 4: permissible mean/sigma design space per stage \
     (T_target, yield constraint)";
  let c = compute () in
  Printf.printf
    "  T_target = %.0f ps, yield = %.0f%%; minimum stage mean %.2f ps \
     (sigma floor %.3f ps)\n"
    default_t_target (100.0 *. default_yield) c.Ds.mu_min c.Ds.sigma_min;
  let labels =
    Array.of_list
      ([ "relaxed(11)" ]
      @ List.map (fun (n, _) -> Printf.sprintf "equality(Ns=%d)" n) c.Ds.equality
      @ [ "realiz-min(13)"; "realiz-max(13)" ])
  in
  let columns =
    Array.of_list
      ([ c.Ds.relaxed ]
      @ List.map snd c.Ds.equality
      @ [ c.Ds.realizable_min; c.Ds.realizable_max ])
  in
  Common.multi_series ~header:"mu (ps) vs sigma bounds (ps)" ~labels
    ~x:c.Ds.mus columns
