(** Figs. 6–8: the 3-stage ALU–decoder pipeline — balanced vs
    unbalanced designs at constant area (Fig. 7), and the per-stage
    area-vs-delay curves with the eq. 14 slope heuristic (Fig. 8). *)

type setup = {
  models : Spv_core.Balance.stage_model array;  (** ALU-I, decoder, ALU-II *)
  t_target : float;  (** pipeline delay target, ps *)
  z : float;  (** per-stage sizing z for the 80% pipeline target *)
  tech : Spv_process.Tech.t;
}

val setup : ?bits:int -> unit -> setup
(** Builds the three stage netlists (ALU slice width [bits], default 8),
    extracts their area-delay curves with the statistical sizer and
    picks a feasible common delay target. *)

type comparison = {
  balanced : Spv_core.Balance.solution;
  unbalanced_best : Spv_core.Balance.solution;
  unbalanced_worst : Spv_core.Balance.solution;
  ri : float array;  (** eq. 14 slope per stage at the balanced point *)
}

val compare_at : setup -> target_yield:float -> comparison
(** Balanced design tuned (by bisection on the common stage delay) to
    achieve exactly [target_yield] at the setup's delay target; best
    and worst constant-area imbalances of the same total area. *)

val delay_samples :
  setup -> Spv_core.Balance.solution -> n:int -> float array
(** Monte-Carlo pipeline-delay samples of a solution (Fig. 7a's
    histograms). *)

val run : unit -> unit
