(** Ablation and extension studies beyond the paper's figures.

    - {b criticality}: quantifies the paper's §3.2 argument — a
      balanced pipeline spreads the probability of being the critical
      stage (high entropy), the yield-optimal unbalanced design
      concentrates it;
    - {b correlation length}: how the spatial-correlation length of the
      systematic component moves pipeline sigma and yield (the paper
      fixes one value);
    - {b sizer policy}: sensitivity of the Lagrangian sizer's area and
      iteration count to its criticality temperature;
    - {b leakage tax}: mean-vs-nominal leakage ratio as random Vth
      sigma grows (the "power" half of the paper's area/power claim). *)

val criticality_study :
  unit ->
  (string * float array * float) list
(** For balanced / best-unbalanced ALU-decoder designs: label,
    per-stage criticality probabilities, entropy. *)

val correlation_length_sweep :
  ?lengths:float array -> unit -> (float * float * float) array
(** (corr_length, pipeline sigma, yield at a fixed target) for the
    5x8 inverter-chain pipeline under mixed variation. *)

val sizer_policy_sweep :
  ?thetas:float array -> unit -> (float * float * int * bool) array
(** (theta_fraction, area, iterations, converged) sizing c432 to a
    fixed mid-range target. *)

val ssta_method_study :
  unit -> (string * Spv_stats.Gaussian.t * Spv_stats.Gaussian.t * float * float) list
(** Per benchmark: (name, path-based stage Gaussian, block-based stage
    Gaussian, MC mean, MC std) — quantifies what the canonical-form max
    buys over critical-path composition. *)

val leakage_tax_sweep :
  ?sigmas_mv:float array -> unit -> (float * float * float) array
(** (sigma_vth_rand in mV, analytic mean/nominal leakage ratio,
    MC mean/nominal ratio) for c432. *)

val dual_vth_study :
  unit -> (float * int * float) list
(** For timing-slack factors 1.00 / 1.05 / 1.15 over the all-low-Vth
    c432 design: (slack factor, gates moved to high Vth out of 160,
    leakage saving fraction). *)

val node_scaling_study :
  unit -> (string * float * float * float) list
(** Per technology node (130/90/70/45 nm-like): (name, stage sigma/mu %,
    pipeline sigma/mu %, yield % at a 5%-guardband clock) for the same
    5x8 inverter-chain pipeline — the title's "sub-100nm" motivation
    quantified. *)

val run : unit -> unit
