lib/experiments/table1.mli: Spv_process
