lib/experiments/table2_3.mli: Spv_sizing
