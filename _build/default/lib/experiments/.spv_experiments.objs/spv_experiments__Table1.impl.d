lib/experiments/table1.ml: Array Common Float List Printf Spv_circuit Spv_core Spv_process Spv_stats
