lib/experiments/ablations.ml: Array Common Fig7_8 Format List Printf Spv_circuit Spv_core Spv_process Spv_sizing Spv_stats String
