lib/experiments/fig7_8.ml: Array Common Float List Printf Spv_circuit Spv_core Spv_process Spv_sizing Spv_stats String
