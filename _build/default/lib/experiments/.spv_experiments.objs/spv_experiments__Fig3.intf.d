lib/experiments/fig3.mli: Spv_core
