lib/experiments/fig5.ml: Array Common List Printf Spv_core Spv_process Spv_stats
