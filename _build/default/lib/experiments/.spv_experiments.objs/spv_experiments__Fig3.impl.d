lib/experiments/fig3.ml: Array Common List Printf Spv_core Spv_stats
