lib/experiments/fig2.ml: Array Common List Printf Spv_circuit Spv_core Spv_process Spv_stats
