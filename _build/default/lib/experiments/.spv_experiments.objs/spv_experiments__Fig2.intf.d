lib/experiments/fig2.mli: Spv_stats
