lib/experiments/common.mli: Spv_process Spv_stats
