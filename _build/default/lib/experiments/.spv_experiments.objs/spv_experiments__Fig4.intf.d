lib/experiments/fig4.mli: Spv_core
