lib/experiments/table2_3.ml: Array Common Printf Spv_circuit Spv_core Spv_process Spv_sizing Spv_stats
