lib/experiments/fig7_8.mli: Spv_core Spv_process
