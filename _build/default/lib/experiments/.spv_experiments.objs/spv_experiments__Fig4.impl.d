lib/experiments/fig4.ml: Array Common List Printf Spv_core
