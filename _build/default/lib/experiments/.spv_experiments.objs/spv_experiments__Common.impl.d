lib/experiments/common.ml: Array List Printf Spv_process Spv_stats String
