lib/experiments/ablations.mli: Spv_stats
