(** Shared experiment infrastructure: calibrated technology settings,
    fixed seeds, and plain-text table/series printers used by the bench
    harness and the CLI. *)

val base_tech : Spv_process.Tech.t
(** The default 70nm-like node (all three variation components). *)

val random_only_tech : Spv_process.Tech.t
(** Only intra-die random variation (Fig. 2a / Fig. 5a "only random"). *)

val inter_only_tech : ?sigma_mv:float -> unit -> Spv_process.Tech.t
(** Only inter-die variation (Fig. 2b), default 40 mV. *)

val mixed_tech : ?inter_mv:float -> unit -> Spv_process.Tech.t
(** Inter + intra (random and systematic) — Fig. 2c and the Fig. 5
    sweeps; [inter_mv] defaults to 40. *)

val optimisation_tech : Spv_process.Tech.t
(** Random-dominant setting used for the Table II/III sizing
    experiments (the paper's per-stage yield arithmetic assumes weakly
    correlated stages). *)

val seed : int
(** Global experiment seed (every experiment derives sub-seeds from
    it, so the whole harness is deterministic). *)

val rng : unit -> Spv_stats.Rng.t

(* Printing helpers ------------------------------------------------- *)

val section : string -> unit
(** Prints a banner for one table/figure. *)

val subsection : string -> unit

val series : header:string -> (float * float) array -> unit
(** Two-column numeric series with a labelled header. *)

val multi_series : header:string -> labels:string array -> x:float array ->
  float array array -> unit
(** x plus one column per label. *)

val row : string -> unit
val table_header : string list -> unit
val table_row : string list -> unit
(** Pipe-separated fixed-width table cells. *)

val histogram_vs_pdf :
  ?bins:int -> samples:float array -> pdf:(float -> float) -> unit -> unit
(** Prints bin centers with the empirical density next to the analytic
    density (the Fig. 2 / Fig. 7a comparison format). *)

val pct : float -> string
(** Format a probability as a percentage with one decimal. *)
