(** Process corners, and what they cost relative to statistical design.

    Corner methodology slows {e every} device by k sigma of {e all} its
    variation simultaneously — including the random component that in
    reality averages out along a logic path.  Statistical design needs
    only [mu + z * sigma_actual] of the path.  The gap between the two
    is the clock-period guardband the paper's methodology recovers. *)

type corner = Typical | Fast | Slow

val corner_name : corner -> string

val corner_shift : ?sigma_level:float -> Tech.t -> corner -> Variation.shift
(** Parameter displacement of a corner: every sigma source (inter-die,
    systematic, and the minimum-size random) stacked at [sigma_level]
    (default 3.0) in the slow (+) or fast (-) direction. *)

val delay_factor : ?sigma_level:float -> Tech.t -> corner -> float
(** Relative gate-delay multiplier at a corner (linearised model,
    matching the SSTA engine). [Typical] is 1.0. *)

val guardband_ratio : ?sigma_level:float -> Tech.t -> path_depth:int -> float
(** [slow-corner path delay / statistical path delay] for a path of
    [path_depth] minimum-size gates at the yield implied by
    [sigma_level] (e.g. 3 sigma ~ 99.87%): the corner's overhead
    factor.  Always >= 1, for two stacked reasons: the corner adds
    independent sigma sources linearly where the statistical path
    combines them in quadrature (depth-independent pessimism), and it
    refuses to let the random component average along the path
    (pessimism growing with depth). *)
