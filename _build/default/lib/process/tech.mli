(** Technology-node description.

    Stand-in for the paper's BPTM 70 nm SPICE decks: the handful of
    device parameters the alpha-power delay model and the variation
    model consume.  [bptm70] is calibrated so that nominal inverter
    delays and sigma/mu ratios land in the same range as the paper's
    SPICE Monte-Carlo numbers. *)

type t = {
  name : string;
  vdd : float;  (** supply voltage, V *)
  vth0 : float;  (** nominal threshold voltage, V *)
  alpha : float;  (** alpha-power-law velocity-saturation exponent *)
  tau : float;
      (** ps; delay unit of a minimum inverter (logical-effort tau) *)
  leff0 : float;  (** nominal effective channel length, nm *)
  sigma_vth_inter : float;  (** inter-die Vth sigma, V *)
  sigma_vth_rand : float;
      (** intra-die random (RDF) Vth sigma for a minimum-size device, V.
          Scales as 1/sqrt(size) for wider devices. *)
  sigma_vth_sys : float;  (** intra-die systematic (spatial) Vth sigma, V *)
  sigma_leff_rel_inter : float;  (** inter-die relative Leff sigma *)
  sigma_leff_rel_sys : float;  (** systematic relative Leff sigma *)
  vth_leff_coupling : float;
      (** Vth roll-off coupling: dVth per unit relative Leff deviation
          (a longer channel raises Vth), V *)
  corr_length : float;
      (** spatial correlation length of the systematic component, in the
          same abstract die units as gate positions *)
}

val bptm70 : t
(** Default 70 nm-like node: Vdd 1.0 V, Vth 0.20 V, alpha 1.3,
    sigma_Vth inter 40 mV / random 30 mV / systematic 20 mV. *)

val node_130 : t
val node_90 : t
val node_45 : t
(** Companion nodes for scaling studies.  Nominal parameters follow the
    usual constant-field trends (Vdd, tau shrink with the node); the
    variation sigmas grow as features shrink — random Vth as
    1/sqrt(W L) (RDF), the shared components more slowly.  Values are
    calibrated to the published BPTM/ITRS ballpark, not to a specific
    foundry kit. *)

val scaling_nodes : t list
(** [node_130; node_90; bptm70; node_45] — descending feature size. *)

val with_inter_vth : t -> sigma_mv:float -> t
(** Override the inter-die Vth sigma (given in mV) — the knob swept in
    Figs. 2 and 5. *)

val with_random_vth : t -> sigma_mv:float -> t
val with_sys_vth : t -> sigma_mv:float -> t

val no_variation : t -> t
(** All variation sigmas forced to zero (deterministic corner). *)

val delay_sensitivity_vth : t -> float
(** d(ln delay)/dVth = alpha / (Vdd - Vth0), in 1/V, from the
    alpha-power law. *)

val delay_sensitivity_leff : t -> float
(** d(ln delay)/d(ln Leff): the direct 1/Leff current dependence plus
    the roll-off-induced Vth shift, i.e.
    [1 + vth_leff_coupling * delay_sensitivity_vth]. *)

val pp : Format.formatter -> t -> unit
