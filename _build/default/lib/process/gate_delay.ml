type t = {
  nominal : float;
  sigma_inter : float;
  sigma_sys : float;
  sigma_rand : float;
}

let zero = { nominal = 0.0; sigma_inter = 0.0; sigma_sys = 0.0; sigma_rand = 0.0 }

let make ~nominal ~sigma_inter ~sigma_sys ~sigma_rand =
  let check name v =
    if not (Float.is_finite v) then
      invalid_arg ("Gate_delay.make: non-finite " ^ name)
  in
  check "nominal" nominal;
  check "sigma_inter" sigma_inter;
  check "sigma_sys" sigma_sys;
  check "sigma_rand" sigma_rand;
  if sigma_inter < 0.0 || sigma_sys < 0.0 || sigma_rand < 0.0 then
    invalid_arg "Gate_delay.make: negative sigma";
  { nominal; sigma_inter; sigma_sys; sigma_rand }

let of_nominal tech ~nominal ~size =
  make ~nominal
    ~sigma_inter:(nominal *. Variation.rel_sigma_inter tech)
    ~sigma_sys:(nominal *. Variation.rel_sigma_sys tech)
    ~sigma_rand:(nominal *. Variation.rel_sigma_rand tech ~size)

let total_sigma t =
  sqrt
    ((t.sigma_inter *. t.sigma_inter)
    +. (t.sigma_sys *. t.sigma_sys)
    +. (t.sigma_rand *. t.sigma_rand))

let to_gaussian t = Spv_stats.Gaussian.make ~mu:t.nominal ~sigma:(total_sigma t)

let variability t =
  if t.nominal = 0.0 then invalid_arg "Gate_delay.variability: zero nominal";
  total_sigma t /. t.nominal

let add a b =
  {
    nominal = a.nominal +. b.nominal;
    sigma_inter = a.sigma_inter +. b.sigma_inter;
    sigma_sys = a.sigma_sys +. b.sigma_sys;
    sigma_rand =
      sqrt ((a.sigma_rand *. a.sigma_rand) +. (b.sigma_rand *. b.sigma_rand));
  }

let sum ts = List.fold_left add zero ts

let scale t k =
  if k < 0.0 then invalid_arg "Gate_delay.scale: negative factor";
  {
    nominal = t.nominal *. k;
    sigma_inter = t.sigma_inter *. k;
    sigma_sys = t.sigma_sys *. k;
    sigma_rand = t.sigma_rand *. k;
  }

let correlation a b ~sys_rho =
  if sys_rho < -1.0 || sys_rho > 1.0 then
    invalid_arg "Gate_delay.correlation: sys_rho outside [-1,1]";
  let sa = total_sigma a and sb = total_sigma b in
  if sa = 0.0 || sb = 0.0 then 0.0
  else
    let cov =
      (a.sigma_inter *. b.sigma_inter)
      +. (sys_rho *. a.sigma_sys *. b.sigma_sys)
    in
    (* Numerical guard: the ratio is a correlation by construction. *)
    Float.max (-1.0) (Float.min 1.0 (cov /. (sa *. sb)))

let pp fmt t =
  Format.fprintf fmt "%.3gps (inter %.3g, sys %.3g, rand %.3g)" t.nominal
    t.sigma_inter t.sigma_sys t.sigma_rand
