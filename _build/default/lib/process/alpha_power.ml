(* A shorter channel lowers Vth through roll-off/DIBL, so Vth moves
   *with* the relative Leff deviation. *)
let drive_current_rel (tech : Tech.t) ~dvth ~dleff_rel =
  let vth = tech.vth0 +. dvth +. (tech.vth_leff_coupling *. dleff_rel) in
  let overdrive = tech.vdd -. vth in
  if overdrive <= 0.0 then 0.0
  else
    let nominal = (tech.vdd -. tech.vth0) ** tech.alpha in
    (overdrive ** tech.alpha) /. ((1.0 +. dleff_rel) *. nominal)

let delay_factor tech ~dvth ~dleff_rel =
  let i_rel = drive_current_rel tech ~dvth ~dleff_rel in
  if i_rel <= 0.0 then infinity else 1.0 /. i_rel

let delay_factor_linear (tech : Tech.t) ~dvth ~dleff_rel =
  1.0
  +. (Tech.delay_sensitivity_vth tech *. dvth)
  +. (Tech.delay_sensitivity_leff tech *. dleff_rel)

let linearisation_error tech ~dvth =
  abs_float
    (delay_factor tech ~dvth ~dleff_rel:0.0
    -. delay_factor_linear tech ~dvth ~dleff_rel:0.0)
