type t = {
  name : string;
  vdd : float;
  vth0 : float;
  alpha : float;
  tau : float;
  leff0 : float;
  sigma_vth_inter : float;
  sigma_vth_rand : float;
  sigma_vth_sys : float;
  sigma_leff_rel_inter : float;
  sigma_leff_rel_sys : float;
  vth_leff_coupling : float;
  corr_length : float;
}

let bptm70 =
  {
    name = "bptm70";
    vdd = 1.0;
    vth0 = 0.20;
    alpha = 1.3;
    tau = 5.0;
    leff0 = 45.0;
    sigma_vth_inter = 0.040;
    sigma_vth_rand = 0.030;
    sigma_vth_sys = 0.020;
    sigma_leff_rel_inter = 0.04;
    sigma_leff_rel_sys = 0.02;
    vth_leff_coupling = 0.08;
    corr_length = 2.0;
  }

let node_130 =
  {
    name = "node130";
    vdd = 1.3;
    vth0 = 0.33;
    alpha = 1.4;
    tau = 11.0;
    leff0 = 80.0;
    sigma_vth_inter = 0.015;
    sigma_vth_rand = 0.012;
    sigma_vth_sys = 0.008;
    sigma_leff_rel_inter = 0.025;
    sigma_leff_rel_sys = 0.012;
    vth_leff_coupling = 0.05;
    corr_length = 2.0;
  }

let node_90 =
  {
    name = "node90";
    vdd = 1.2;
    vth0 = 0.26;
    alpha = 1.35;
    tau = 7.0;
    leff0 = 60.0;
    sigma_vth_inter = 0.025;
    sigma_vth_rand = 0.020;
    sigma_vth_sys = 0.013;
    sigma_leff_rel_inter = 0.03;
    sigma_leff_rel_sys = 0.015;
    vth_leff_coupling = 0.06;
    corr_length = 2.0;
  }

let node_45 =
  {
    name = "node45";
    vdd = 0.9;
    vth0 = 0.18;
    alpha = 1.25;
    tau = 3.5;
    leff0 = 30.0;
    sigma_vth_inter = 0.055;
    sigma_vth_rand = 0.045;
    sigma_vth_sys = 0.028;
    sigma_leff_rel_inter = 0.05;
    sigma_leff_rel_sys = 0.025;
    vth_leff_coupling = 0.10;
    corr_length = 2.0;
  }

let scaling_nodes = [ node_130; node_90; bptm70; node_45 ]

let with_inter_vth t ~sigma_mv =
  if sigma_mv < 0.0 then invalid_arg "Tech.with_inter_vth: negative sigma";
  { t with sigma_vth_inter = sigma_mv /. 1000.0 }

let with_random_vth t ~sigma_mv =
  if sigma_mv < 0.0 then invalid_arg "Tech.with_random_vth: negative sigma";
  { t with sigma_vth_rand = sigma_mv /. 1000.0 }

let with_sys_vth t ~sigma_mv =
  if sigma_mv < 0.0 then invalid_arg "Tech.with_sys_vth: negative sigma";
  { t with sigma_vth_sys = sigma_mv /. 1000.0 }

let no_variation t =
  {
    t with
    sigma_vth_inter = 0.0;
    sigma_vth_rand = 0.0;
    sigma_vth_sys = 0.0;
    sigma_leff_rel_inter = 0.0;
    sigma_leff_rel_sys = 0.0;
  }

let delay_sensitivity_vth t = t.alpha /. (t.vdd -. t.vth0)

let delay_sensitivity_leff t =
  1.0 +. (t.vth_leff_coupling *. delay_sensitivity_vth t)

let pp fmt t =
  Format.fprintf fmt
    "%s: Vdd=%gV Vth=%gV alpha=%g tau=%gps sigmaVth(inter/rand/sys)=%g/%g/%g mV"
    t.name t.vdd t.vth0 t.alpha t.tau
    (t.sigma_vth_inter *. 1000.0)
    (t.sigma_vth_rand *. 1000.0)
    (t.sigma_vth_sys *. 1000.0)
