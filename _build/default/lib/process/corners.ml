type corner = Typical | Fast | Slow

let corner_name = function
  | Typical -> "TT"
  | Fast -> "FF"
  | Slow -> "SS"

let corner_shift ?(sigma_level = 3.0) (tech : Tech.t) corner =
  let sign = match corner with Typical -> 0.0 | Slow -> 1.0 | Fast -> -1.0 in
  let k = sign *. sigma_level in
  {
    Variation.dvth =
      k
      *. (tech.Tech.sigma_vth_inter +. tech.Tech.sigma_vth_sys
        +. tech.Tech.sigma_vth_rand);
    dleff_rel =
      k *. (tech.Tech.sigma_leff_rel_inter +. tech.Tech.sigma_leff_rel_sys);
  }

let delay_factor ?sigma_level tech corner =
  Variation.delay_factor_linear tech (corner_shift ?sigma_level tech corner)

let guardband_ratio ?(sigma_level = 3.0) tech ~path_depth =
  if path_depth <= 0 then invalid_arg "Corners.guardband_ratio: depth <= 0";
  let n = float_of_int path_depth in
  (* Per-gate relative sigmas at minimum size. *)
  let s_inter = Variation.rel_sigma_inter tech in
  let s_sys = Variation.rel_sigma_sys tech in
  let s_rand = Variation.rel_sigma_rand tech ~size:1.0 in
  (* Path of n nominally-identical gates: shared parts scale the whole
     path; the random part averages as 1/sqrt(n). *)
  let path_sigma_rel =
    sqrt ((s_inter ** 2.0) +. (s_sys ** 2.0) +. (s_rand *. s_rand /. n))
  in
  let statistical = 1.0 +. (sigma_level *. path_sigma_rel) in
  let corner = delay_factor ~sigma_level tech Slow in
  corner /. statistical
