type shift = { dvth : float; dleff_rel : float }

let zero_shift = { dvth = 0.0; dleff_rel = 0.0 }

let add_shift a b =
  { dvth = a.dvth +. b.dvth; dleff_rel = a.dleff_rel +. b.dleff_rel }

let sample_inter (tech : Tech.t) rng =
  {
    dvth = Spv_stats.Rng.gaussian_mu_sigma rng ~mu:0.0 ~sigma:tech.sigma_vth_inter;
    dleff_rel =
      Spv_stats.Rng.gaussian_mu_sigma rng ~mu:0.0 ~sigma:tech.sigma_leff_rel_inter;
  }

(* The systematic Vth and Leff deviations track the same underlying
   spatial disturbance (focus/dose), hence a single field value. *)
let sample_sys_scaled (tech : Tech.t) ~field =
  {
    dvth = tech.sigma_vth_sys *. field;
    dleff_rel = tech.sigma_leff_rel_sys *. field;
  }

let sample_rand (tech : Tech.t) ~size rng =
  assert (size > 0.0);
  let sigma = tech.sigma_vth_rand /. sqrt size in
  { dvth = Spv_stats.Rng.gaussian_mu_sigma rng ~mu:0.0 ~sigma; dleff_rel = 0.0 }

let quadrature a b = sqrt ((a *. a) +. (b *. b))

let rel_sigma_inter (tech : Tech.t) =
  quadrature
    (Tech.delay_sensitivity_vth tech *. tech.sigma_vth_inter)
    (Tech.delay_sensitivity_leff tech *. tech.sigma_leff_rel_inter)

let rel_sigma_sys (tech : Tech.t) =
  (* Vth and Leff systematic shifts share one field, so their delay
     contributions add linearly, not in quadrature. *)
  (Tech.delay_sensitivity_vth tech *. tech.sigma_vth_sys)
  +. (Tech.delay_sensitivity_leff tech *. tech.sigma_leff_rel_sys)

let rel_sigma_rand (tech : Tech.t) ~size =
  assert (size > 0.0);
  Tech.delay_sensitivity_vth tech *. tech.sigma_vth_rand /. sqrt size

let delay_factor_linear tech { dvth; dleff_rel } =
  Alpha_power.delay_factor_linear tech ~dvth ~dleff_rel

let delay_factor_exact tech { dvth; dleff_rel } =
  Alpha_power.delay_factor tech ~dvth ~dleff_rel
