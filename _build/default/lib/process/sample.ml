type world = { inter : Variation.shift; sys_field : float array }

type t = {
  tech : Tech.t;
  field_sampler : Spatial.field_sampler;
  n : int;
}

let create tech ~positions =
  {
    tech;
    field_sampler = Spatial.make_sampler tech positions;
    n = Array.length positions;
  }

let tech t = t.tech
let n_locations t = t.n

let draw t rng =
  {
    inter = Variation.sample_inter t.tech rng;
    sys_field = Spatial.sample_field t.field_sampler rng;
  }

let shift_at t world ~location ~size rng =
  if location < 0 || location >= t.n then
    invalid_arg "Sample.shift_at: location out of range";
  let sys =
    Variation.sample_sys_scaled t.tech ~field:world.sys_field.(location)
  in
  let rand = Variation.sample_rand t.tech ~size rng in
  Variation.(add_shift world.inter (add_shift sys rand))

let delay_factor ?(exact = false) t world ~location ~size rng =
  let shift = shift_at t world ~location ~size rng in
  if exact then Variation.delay_factor_exact t.tech shift
  else Variation.delay_factor_linear t.tech shift
