lib/process/flipflop.ml: Gate_delay Tech
