lib/process/alpha_power.ml: Tech
