lib/process/flipflop.mli: Gate_delay Tech
