lib/process/sample.ml: Array Spatial Tech Variation
