lib/process/variation.ml: Alpha_power Spv_stats Tech
