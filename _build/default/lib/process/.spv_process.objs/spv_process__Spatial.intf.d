lib/process/spatial.mli: Spv_stats Tech
