lib/process/gate_delay.mli: Format Spv_stats Tech
