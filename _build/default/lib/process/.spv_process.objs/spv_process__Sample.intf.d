lib/process/sample.mli: Spatial Spv_stats Tech Variation
