lib/process/alpha_power.mli: Tech
