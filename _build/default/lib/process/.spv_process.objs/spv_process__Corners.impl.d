lib/process/corners.ml: Tech Variation
