lib/process/gate_delay.ml: Float Format List Spv_stats Variation
