lib/process/spatial.ml: Array Spv_stats Tech
