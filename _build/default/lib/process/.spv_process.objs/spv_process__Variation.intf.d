lib/process/variation.mli: Spv_stats Tech
