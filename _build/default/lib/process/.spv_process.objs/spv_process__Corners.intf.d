lib/process/corners.mli: Tech Variation
