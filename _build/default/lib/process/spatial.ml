type position = { x : float; y : float }

let position ~x ~y = { x; y }

let distance a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let row_positions ~n ~pitch =
  if n <= 0 then invalid_arg "Spatial.row_positions: n <= 0";
  Array.init n (fun i -> { x = float_of_int i *. pitch; y = 0.0 })

let correlation (tech : Tech.t) a b =
  exp (-.distance a b /. tech.corr_length)

let correlation_matrix tech positions =
  let n = Array.length positions in
  Spv_stats.Correlation.of_function ~n (fun i j ->
      correlation tech positions.(i) positions.(j))

type field_sampler = { chol : Spv_stats.Matrix.t; n : int }

let make_sampler tech positions =
  let corr = correlation_matrix tech positions in
  {
    chol = Spv_stats.Matrix.cholesky_psd corr;
    n = Array.length positions;
  }

let sample_field fs rng =
  let z = Array.init fs.n (fun _ -> Spv_stats.Rng.gaussian rng) in
  Spv_stats.Matrix.mat_vec fs.chol z
