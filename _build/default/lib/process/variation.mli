(** Decomposition of process variation into the paper's three
    components:

    - {b inter-die}: one draw per die, shifts every gate the same way;
    - {b intra-die random}: independent per device (random dopant
      fluctuation); its sigma shrinks as 1/sqrt(size) for wider gates;
    - {b intra-die systematic}: spatially correlated across the die
      (lithography, lens aberration), handled jointly with {!Spatial}.

    Each component perturbs both Vth and Leff; the linearised
    alpha-power model turns a parameter shift into a relative delay
    shift, so each component contributes a {e relative delay sigma}. *)

type shift = { dvth : float; dleff_rel : float }
(** A joint parameter displacement. *)

val zero_shift : shift
val add_shift : shift -> shift -> shift

val sample_inter : Tech.t -> Spv_stats.Rng.t -> shift
(** One inter-die draw (shared by the whole die). *)

val sample_sys_scaled : Tech.t -> field:float -> shift
(** Systematic shift at a die location whose unit-variance spatial
    field value is [field]. *)

val sample_rand : Tech.t -> size:float -> Spv_stats.Rng.t -> shift
(** Per-device random draw; RDF sigma scales as 1/sqrt(size). *)

val rel_sigma_inter : Tech.t -> float
(** Relative delay sigma of the inter-die component (linearised,
    Vth and Leff contributions combined in quadrature). *)

val rel_sigma_sys : Tech.t -> float
val rel_sigma_rand : Tech.t -> size:float -> float

val delay_factor_linear : Tech.t -> shift -> float
(** Linearised relative delay multiplier for a shift. *)

val delay_factor_exact : Tech.t -> shift -> float
(** Exact alpha-power relative delay multiplier. *)
