(** Monte-Carlo sampling of whole-die variation assignments.

    One [world] is one fabricated die: a shared inter-die shift plus a
    realisation of the systematic spatial field over a set of
    locations.  Per-device random shifts are drawn on demand because
    they are independent. *)

type world = {
  inter : Variation.shift;  (** common to every gate on the die *)
  sys_field : float array;  (** unit-variance field value per location *)
}

type t
(** A sampler bound to a technology and a fixed set of die locations. *)

val create : Tech.t -> positions:Spatial.position array -> t
val tech : t -> Tech.t
val n_locations : t -> int

val draw : t -> Spv_stats.Rng.t -> world
(** Sample one die. *)

val shift_at :
  t -> world -> location:int -> size:float -> Spv_stats.Rng.t ->
  Variation.shift
(** Total parameter shift of one device: inter + systematic (at its
    location) + a fresh random draw scaled to its size. *)

val delay_factor :
  ?exact:bool -> t -> world -> location:int -> size:float ->
  Spv_stats.Rng.t -> float
(** Relative delay multiplier for a device on this die.  [exact]
    selects the exact alpha-power evaluation instead of the linearised
    one (default false, matching the SSTA Gaussian model). *)
