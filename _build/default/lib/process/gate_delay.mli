(** Component-decomposed Gaussian delays.

    A delay is carried as a nominal value plus one sigma per variation
    component.  The decomposition composes along a path (nominal and
    the correlated components add linearly, the random component in
    quadrature) and yields the stage-to-stage correlation coefficients
    the paper's pipeline model needs. *)

type t = {
  nominal : float;  (** ps *)
  sigma_inter : float;  (** inter-die contribution, perfectly correlated die-wide *)
  sigma_sys : float;  (** systematic contribution, spatially correlated *)
  sigma_rand : float;  (** random contribution, independent per device *)
}

val zero : t

val make :
  nominal:float -> sigma_inter:float -> sigma_sys:float -> sigma_rand:float -> t
(** All fields must be finite; sigmas non-negative. *)

val of_nominal : Tech.t -> nominal:float -> size:float -> t
(** Decomposed delay of a gate with the given nominal delay and size
    factor, using the technology's relative sigmas. *)

val total_sigma : t -> float
(** sqrt(inter^2 + sys^2 + rand^2). *)

val to_gaussian : t -> Spv_stats.Gaussian.t

val variability : t -> float
(** total_sigma / nominal. *)

val add : t -> t -> t
(** Series composition along one path at one die locale: nominals,
    inter and sys sigmas add linearly; random sigmas in quadrature. *)

val sum : t list -> t

val scale : t -> float -> t
(** Multiply every field by a non-negative factor. *)

val correlation : t -> t -> sys_rho:float -> float
(** Correlation coefficient between two decomposed delays whose
    systematic fields are correlated with [sys_rho] (e.g. two pipeline
    stages at distance d):
    [(si_a * si_b + sys_rho * ss_a * ss_b) / (sigma_a * sigma_b)].
    Returns 0 when either total sigma is 0. *)

val pp : Format.formatter -> t -> unit
