type t = { clk_to_q : Gate_delay.t; setup : Gate_delay.t }

let make tech ~clk_to_q_ps ~setup_ps ~size =
  if clk_to_q_ps < 0.0 || setup_ps < 0.0 then
    invalid_arg "Flipflop.make: negative timing";
  if size <= 0.0 then invalid_arg "Flipflop.make: non-positive size";
  {
    clk_to_q = Gate_delay.of_nominal tech ~nominal:clk_to_q_ps ~size;
    setup = Gate_delay.of_nominal tech ~nominal:setup_ps ~size;
  }

let default (tech : Tech.t) =
  make tech ~clk_to_q_ps:(4.0 *. tech.tau) ~setup_ps:(2.0 *. tech.tau) ~size:2.0

let overhead t = Gate_delay.add t.clk_to_q t.setup
let nominal_overhead t = (overhead t).Gate_delay.nominal
