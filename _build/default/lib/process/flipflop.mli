(** Sequencing-element timing (transmission-gate master–slave flip-flop
    stand-in).

    Eq. (1) of the paper: a stage delay is
    [T_C-Q + T_comb + T_setup]; this module supplies the two latch
    terms, subject to the same variation model as logic gates. *)

type t = {
  clk_to_q : Gate_delay.t;
  setup : Gate_delay.t;
}

val default : Tech.t -> t
(** Transmission-gate MSFF: clk-to-Q ≈ 4 tau, setup ≈ 2 tau, at size 2
    (flip-flops are built from larger-than-minimum devices). *)

val make : Tech.t -> clk_to_q_ps:float -> setup_ps:float -> size:float -> t

val overhead : t -> Gate_delay.t
(** [clk_to_q + setup] composed as one decomposed delay (they sit in
    the same die locale). *)

val nominal_overhead : t -> float
