(** Spatially correlated systematic variation.

    Die locations carry a zero-mean, unit-variance Gaussian field with
    exponentially decaying correlation [exp(-d / corr_length)]; stage
    or gate systematic shifts are this field scaled by the technology's
    systematic sigmas. *)

type position = { x : float; y : float }

val position : x:float -> y:float -> position
val distance : position -> position -> float

val row_positions : n:int -> pitch:float -> position array
(** [n] locations in a row at the given pitch — how pipeline stages are
    laid out across the die in the experiments. *)

val correlation : Tech.t -> position -> position -> float
(** [exp (-distance / corr_length)]. *)

val correlation_matrix : Tech.t -> position array -> Spv_stats.Correlation.t

type field_sampler
(** Precomputed Cholesky factor for repeated field draws. *)

val make_sampler : Tech.t -> position array -> field_sampler
val sample_field : field_sampler -> Spv_stats.Rng.t -> float array
(** Unit-variance correlated normals, one per position. *)
