(** Alpha-power-law MOSFET delay model (Sakurai–Newton).

    The saturation drain current of a short-channel device is
    [I_d ∝ (W / Leff) * (Vdd - Vth)^alpha] and a gate delay is
    [d ∝ C_L * Vdd / I_d].  This module evaluates relative delay as a
    function of the varying parameters (Vth, Leff) around the nominal
    point — exactly the dependence the paper extracts from SPICE
    Monte-Carlo. *)

val drive_current_rel : Tech.t -> dvth:float -> dleff_rel:float -> float
(** Drain current relative to nominal for a threshold shift [dvth] (V)
    and a relative channel-length deviation [dleff_rel]. *)

val delay_factor : Tech.t -> dvth:float -> dleff_rel:float -> float
(** Multiplicative delay factor relative to nominal delay: exact
    alpha-power evaluation, including the Leff-induced Vth shift
    (DIBL/roll-off, first order). [= 1.0] at [dvth = 0, dleff_rel = 0]. *)

val delay_factor_linear : Tech.t -> dvth:float -> dleff_rel:float -> float
(** First-order (linearised) delay factor
    [1 + S_vth * dvth + S_leff * dleff_rel]; the SSTA engine uses this
    form to keep gate delays Gaussian. *)

val linearisation_error : Tech.t -> dvth:float -> float
(** |exact - linear| delay-factor discrepancy at a given Vth shift —
    used in tests to confirm the Gaussian approximation is adequate
    over +-3 sigma. *)
