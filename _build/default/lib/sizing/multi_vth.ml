module Net = Spv_circuit.Netlist
module Sta = Spv_circuit.Sta
module Gd = Spv_process.Gate_delay

type assignment = {
  high_vth : bool array;
  delay_penalty : float;
  vth_offset : float;
}

let all_low net ~delay_penalty ~vth_offset =
  if delay_penalty < 1.0 then invalid_arg "Multi_vth: delay_penalty < 1";
  if vth_offset <= 0.0 then invalid_arg "Multi_vth: vth_offset <= 0";
  {
    high_vth = Array.make (Net.n_nodes net) false;
    delay_penalty;
    vth_offset;
  }

let n_high a = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a.high_vth

let delay_factors net a =
  if Array.length a.high_vth <> Net.n_nodes net then
    invalid_arg "Multi_vth.delay_factors: assignment size mismatch";
  Array.map (fun h -> if h then a.delay_penalty else 1.0) a.high_vth

let stat_delay ?(output_load = 4.0) ?ff tech net a ~z =
  let sta =
    Sta.run_with_factors ~output_load tech net ~factors:(delay_factors net a)
  in
  let comb =
    List.fold_left
      (fun acc i ->
        Gd.add acc
          (Gd.of_nominal tech ~nominal:sta.Sta.gate_delays.(i)
             ~size:(Net.size net i)))
      Gd.zero sta.Sta.critical_path
  in
  let total =
    match ff with
    | None -> comb
    | Some ff -> Gd.add comb (Spv_process.Flipflop.overhead ff)
  in
  total.Gd.nominal +. (z *. Gd.total_sigma total)

(* Expected gate leakage: area proxy x lognormal random-Vth mean,
   x the high-Vth suppression where assigned. *)
let leakage (tech : Spv_process.Tech.t) net a =
  let nvt =
    Spv_circuit.Power.subthreshold_slope_factor
    *. Spv_circuit.Power.thermal_voltage
  in
  let acc = ref 0.0 in
  Array.iter
    (fun i ->
      match Net.node net i with
      | Net.Primary_input _ -> ()
      | Net.Gate { kind; _ } ->
          let size = Net.size net i in
          let s_r = tech.Spv_process.Tech.sigma_vth_rand /. sqrt size /. nvt in
          let base =
            Spv_circuit.Cell.area_per_size kind *. size
            *. exp (s_r *. s_r /. 2.0)
          in
          let supp =
            if a.high_vth.(i) then
              Spv_circuit.Power.leakage_factor tech ~dvth:a.vth_offset
            else 1.0
          in
          acc := !acc +. (base *. supp))
    (Net.gate_ids net);
  !acc

type result = {
  assignment : assignment;
  swapped : int;
  leakage_before : float;
  leakage_after : float;
  stat_delay_after : float;
}

let optimise ?(output_load = 4.0) ?ff ?(delay_penalty = 1.15)
    ?(vth_offset = 0.08) tech net ~t_target ~z =
  let a = all_low net ~delay_penalty ~vth_offset in
  let leakage_before = leakage tech net a in
  if stat_delay ~output_load ?ff tech net a ~z > t_target then
    invalid_arg "Multi_vth.optimise: all-low design misses the target";
  (* Visit gates in ascending criticality: the most off-path gates have
     the most slack to sell. *)
  let block = Spv_circuit.Block_ssta.run ~output_load tech net in
  let order = Array.copy (Net.gate_ids net) in
  Array.sort
    (fun i j ->
      compare block.Spv_circuit.Block_ssta.criticality.(i)
        block.Spv_circuit.Block_ssta.criticality.(j))
    order;
  let swapped = ref 0 in
  Array.iter
    (fun i ->
      a.high_vth.(i) <- true;
      if stat_delay ~output_load ?ff tech net a ~z <= t_target then incr swapped
      else a.high_vth.(i) <- false)
    order;
  {
    assignment = a;
    swapped = !swapped;
    leakage_before;
    leakage_after = leakage tech net a;
    stat_delay_after = stat_delay ~output_load ?ff tech net a ~z;
  }
