(** Area-vs-delay curve extraction (Fig. 8).

    Sweeps the statistical sizer over a grid of delay targets between
    the fastest achievable design and the all-minimum-size design, and
    packages the result as a {!Spv_core.Balance.stage_model} so the
    balance/imbalance machinery can interpolate on it. *)

val curve_points :
  ?options:Lagrangian.options -> ?ff:Spv_process.Flipflop.t -> ?n_points:int ->
  Spv_process.Tech.t -> Spv_circuit.Netlist.t -> z:float ->
  Spv_core.Balance.curve_point array
(** [n_points] (default 9) sizing runs; each point carries the achieved
    nominal stage delay, the area, and the decomposed delay.  Points
    are strictly monotone (non-monotone sizer artefacts are dropped);
    at least 2 points are guaranteed or [Failure] is raised. *)

val stage_model :
  ?options:Lagrangian.options -> ?ff:Spv_process.Flipflop.t -> ?n_points:int ->
  Spv_process.Tech.t -> Spv_circuit.Netlist.t -> z:float ->
  Spv_core.Balance.stage_model

val normalised :
  Spv_core.Balance.curve_point array -> (float * float) array
(** (delay, area) pairs, each normalised to the slowest point — the
    form Fig. 8 plots. *)
