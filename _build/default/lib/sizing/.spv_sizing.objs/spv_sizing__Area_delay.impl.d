lib/sizing/area_delay.ml: Array Lagrangian List Spv_circuit Spv_core Spv_process
