lib/sizing/lagrangian.mli: Spv_circuit Spv_process
