lib/sizing/global_opt.ml: Area_delay Array Float Lagrangian List Logs Option Spv_circuit Spv_core Spv_process Spv_stats
