lib/sizing/lagrangian.ml: Array Float List Option Spv_circuit Spv_process
