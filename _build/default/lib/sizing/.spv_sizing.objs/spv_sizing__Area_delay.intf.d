lib/sizing/area_delay.mli: Lagrangian Spv_circuit Spv_core Spv_process
