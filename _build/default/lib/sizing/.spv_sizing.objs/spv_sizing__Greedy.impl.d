lib/sizing/greedy.ml: Array Float Hashtbl Lagrangian List Option Spv_circuit Spv_process
