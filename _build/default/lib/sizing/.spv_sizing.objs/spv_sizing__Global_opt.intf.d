lib/sizing/global_opt.mli: Lagrangian Spv_circuit Spv_core Spv_process
