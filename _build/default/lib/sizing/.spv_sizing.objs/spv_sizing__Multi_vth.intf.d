lib/sizing/multi_vth.mli: Spv_circuit Spv_process
