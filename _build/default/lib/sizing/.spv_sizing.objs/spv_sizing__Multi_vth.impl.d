lib/sizing/multi_vth.ml: Array List Spv_circuit Spv_process
