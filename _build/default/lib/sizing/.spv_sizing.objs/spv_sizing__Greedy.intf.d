lib/sizing/greedy.mli: Lagrangian Spv_circuit Spv_process
