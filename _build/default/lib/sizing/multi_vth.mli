(** Dual-Vth assignment: trade leakage for delay on non-critical gates.

    The standard companion of sizing in leakage-constrained sub-100nm
    flows (and a staple of the paper's research group): every gate can
    be implemented with the nominal low-Vth device (fast, leaky) or a
    high-Vth variant (slower by a known factor, exponentially less
    leaky).  Starting from all-low-Vth, greedily swap the gates with
    the most leakage saved per picosecond of statistical slack consumed
    to high-Vth while the stage still meets
    [mu + z sigma <= t_target].

    Assignments live outside the netlist (a per-node flag array), so
    the same netlist can be evaluated under different assignments; the
    timing engine is {!Spv_circuit.Sta.run_with_factors}. *)

type assignment = {
  high_vth : bool array;  (** per node; input entries are meaningless *)
  delay_penalty : float;  (** multiplicative slow-down of high-Vth gates *)
  vth_offset : float;  (** Vth increase of the high-Vth device, V *)
}

val all_low : Spv_circuit.Netlist.t -> delay_penalty:float -> vth_offset:float ->
  assignment
(** Every gate on the fast device. Defaults for the 70nm-like node:
    penalty 1.15, offset 80 mV (a standard dual-Vth menu). *)

val n_high : assignment -> int

val delay_factors : Spv_circuit.Netlist.t -> assignment -> float array
(** Per-node delay multipliers for {!Spv_circuit.Sta.run_with_factors}. *)

val stat_delay :
  ?output_load:float -> ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
  Spv_circuit.Netlist.t -> assignment -> z:float -> float
(** [mu + z sigma] of the stage under the assignment (critical-path
    composition on the factored timing). *)

val leakage :
  Spv_process.Tech.t -> Spv_circuit.Netlist.t -> assignment -> float
(** Expected die leakage under the assignment (lognormal means per
    gate, high-Vth gates scaled by [exp(-vth_offset / (n vT))]). *)

type result = {
  assignment : assignment;
  swapped : int;  (** gates moved to high-Vth *)
  leakage_before : float;
  leakage_after : float;
  stat_delay_after : float;
}

val optimise :
  ?output_load:float -> ?ff:Spv_process.Flipflop.t ->
  ?delay_penalty:float -> ?vth_offset:float -> Spv_process.Tech.t ->
  Spv_circuit.Netlist.t -> t_target:float -> z:float -> result
(** Greedy criticality-guided assignment under the statistical delay
    budget.  Gates are visited in ascending block-SSTA criticality;
    each trial swap is kept only if the stage still meets the target.
    Raises [Invalid_argument] if the all-low design already misses the
    target. *)
