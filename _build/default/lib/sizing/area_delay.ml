module Balance = Spv_core.Balance
module Gd = Spv_process.Gate_delay

let curve_points ?options ?ff ?(n_points = 9) tech net ~z =
  if n_points < 2 then invalid_arg "Area_delay.curve_points: n_points < 2";
  let snapshot = Spv_circuit.Netlist.sizes_snapshot net in
  let d_fast = Lagrangian.minimum_achievable_delay ?options ?ff tech net ~z in
  let d_slow = Lagrangian.relaxed_delay ?options ?ff tech net ~z in
  if d_fast >= d_slow then
    failwith "Area_delay.curve_points: sizing has no delay range to trade";
  (* Slight inset so every grid target is actually reachable. *)
  let lo = d_fast *. 1.01 and hi = d_slow *. 0.995 in
  let targets =
    Array.init n_points (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n_points - 1)))
  in
  let raw =
    Array.map
      (fun t_target ->
        let report = Lagrangian.size_stage ?options ?ff tech net ~t_target ~z in
        {
          Balance.delay = report.Lagrangian.achieved.Gd.nominal;
          area = report.Lagrangian.area;
          decomposed = report.Lagrangian.achieved;
        })
      targets
  in
  Spv_circuit.Netlist.restore_sizes net snapshot;
  (* Keep a strictly monotone frontier: increasing delay must come with
     strictly decreasing area. *)
  let sorted = Array.copy raw in
  Array.sort (fun a b -> compare a.Balance.delay b.Balance.delay) sorted;
  let frontier =
    Array.fold_left
      (fun acc p ->
        match acc with
        | [] -> [ p ]
        | last :: _ ->
            if
              p.Balance.delay > last.Balance.delay +. 1e-9
              && p.Balance.area < last.Balance.area -. 1e-9
            then p :: acc
            else acc)
      [] sorted
  in
  let pts = Array.of_list (List.rev frontier) in
  if Array.length pts < 2 then
    failwith "Area_delay.curve_points: degenerate curve (fewer than 2 points)";
  pts

let stage_model ?options ?ff ?n_points tech net ~z =
  let pts = curve_points ?options ?ff ?n_points tech net ~z in
  Balance.stage_model ~name:(Spv_circuit.Netlist.name net) pts

let normalised pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Area_delay.normalised: empty";
  let ref_p = pts.(n - 1) in
  Array.map
    (fun p ->
      (p.Balance.delay /. ref_p.Balance.delay, p.Balance.area /. ref_p.Balance.area))
    pts
