(** Global pipeline optimisation (Fig. 9, Tables II and III).

    Conventional flow: each stage is sized independently for the
    pipeline delay target at the per-stage yield budget
    [Y0 = Y^(1/N)] ({!individually_optimised}).  Under variation some
    stage may be unable to reach its budget and the pipeline misses Y.

    The global algorithm sizes {e one stage at a time} while evaluating
    the statistical delay of the {e whole} pipeline (Clark), processing
    stages in the eq. 14 slope order:

    - {!ensure_yield} (Table II): tighten the cheap-delay stages
      (low R_i) beyond their individual budgets until the pipeline
      yield target is met, at minimal area increase;
    - {!minimise_area} (Table III): relax the cheap-area stages
      (high R_i) while the pipeline yield target is still met. *)

type yield_model =
  | Independent  (** eq. 8 product of stage yields — the arithmetic the
                     paper's Tables II/III report *)
  | Clark_gaussian  (** eq. 9 Gaussian approximation of the pipeline max *)

type result = {
  nets : Spv_circuit.Netlist.t array;  (** sized netlists, in stage order *)
  pipeline : Spv_core.Pipeline.t;
  stage_targets : float array;  (** per-stage stat-delay targets, ps *)
  stage_areas : float array;
  stage_yields : float array;
      (** standalone per-stage yields at the pipeline delay target *)
  total_area : float;
  pipeline_yield : float;  (** yield at the pipeline delay target,
                               under the chosen [yield_model] *)
  order : int array;  (** R_i processing order used *)
}

val individually_optimised :
  ?options:Lagrangian.options -> ?ff:Spv_process.Flipflop.t ->
  ?pitch:float -> ?yield_model:yield_model -> Spv_process.Tech.t ->
  Spv_circuit.Netlist.t array -> t_target:float -> yield_target:float -> result
(** The conventional baseline: every stage independently sized for
    [mu + z Y0 sigma <= t_target], [Y0 = yield_target^(1/N)]. *)

val ensure_yield :
  ?options:Lagrangian.options -> ?ff:Spv_process.Flipflop.t -> ?pitch:float ->
  ?max_rounds:int -> ?tighten:float -> ?yield_model:yield_model ->
  Spv_process.Tech.t -> Spv_circuit.Netlist.t array -> t_target:float ->
  yield_target:float -> result
(** Start from the baseline; while the pipeline yield is below target,
    walk stages in ascending-R_i order and tighten each one's stat
    target by the fraction [tighten] (default 0.03), re-sizing it and
    re-evaluating the full pipeline.  Stops when the target is met, no
    stage can improve, or [max_rounds] (default 25) passes elapse. *)

val minimise_area :
  ?options:Lagrangian.options -> ?ff:Spv_process.Flipflop.t -> ?pitch:float ->
  ?max_rounds:int -> ?relax:float -> ?yield_model:yield_model ->
  Spv_process.Tech.t -> Spv_circuit.Netlist.t array -> t_target:float ->
  yield_target:float -> result

(** Start from {!ensure_yield}'s design; walk stages in descending-R_i
    order relaxing each one's stat target by the fraction [relax]
    (default 0.03) as long as the pipeline yield stays at or above
    target; revert moves that break it.

    The default [yield_model] everywhere is [Independent]: it matches
    the paper's Table II/III arithmetic and is the conservative choice
    (correlation only raises the joint yield). *)
