(** Incremental netlist construction.

    Nodes are appended in topological order; each combinator returns
    the node id, which later gates reference.  [finish] freezes the
    builder into a validated {!Netlist.t}. *)

type t

val create : name:string -> t

val input : t -> string -> int
(** Declare a primary input. *)

val gate : ?size:float -> t -> Cell.kind -> int list -> int
(** Append a gate (default size 1.0). Fanin ids must already exist. *)

val inv : ?size:float -> t -> int -> int
val buf : ?size:float -> t -> int -> int
val nand2 : ?size:float -> t -> int -> int -> int
val nor2 : ?size:float -> t -> int -> int -> int
val and2 : ?size:float -> t -> int -> int -> int
val or2 : ?size:float -> t -> int -> int -> int
val xor2 : ?size:float -> t -> int -> int -> int
val xnor2 : ?size:float -> t -> int -> int -> int
val mux2 : ?size:float -> t -> sel:int -> a:int -> b:int -> int

val output : t -> int -> unit
(** Mark a node as a primary output. *)

val n_nodes : t -> int

val finish : t -> Netlist.t
(** Raises [Invalid_argument] if no output was declared or validation
    fails. *)
