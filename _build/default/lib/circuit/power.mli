(** Power estimation under process variation.

    The paper optimises area "(hence power)"; this module makes the
    link explicit and extends it statistically:

    - {b dynamic} power is proportional to switched capacitance, i.e.
      to the sizes the optimiser controls — so minimising area at a
      yield target also minimises dynamic power;
    - {b leakage} is exponential in -Vth/(n vT), so under Gaussian Vth
      variation each gate's leakage is {e lognormal} and the die
      leakage mean exceeds the nominal-Vth leakage (the classic
      variation tax).  Both the analytic lognormal moments and a
      Monte-Carlo are provided. *)

type t = {
  dynamic : float;
      (** switched-capacitance proxy: sum over gates of
          activity * Cin * Vdd^2, in arbitrary consistent units *)
  leakage_nominal : float;
      (** leakage at nominal Vth, arbitrary units (1.0 = one
          minimum inverter at nominal Vth) *)
  leakage_mean : float;
      (** expected leakage under Vth variation (lognormal mean) *)
  leakage_sigma : float;
      (** standard deviation of die leakage under variation *)
}

val subthreshold_slope_factor : float
(** n in exp(-Vth / (n vT)); 1.5, typical for sub-100nm bulk. *)

val thermal_voltage : float
(** vT at 300 K, volts. *)

val leakage_factor : Spv_process.Tech.t -> dvth:float -> float
(** Leakage multiplier for a threshold shift:
    [exp (-dvth / (n vT))]. Halves roughly every 26 mV of Vth
    increase. *)

val estimated_activity :
  Netlist.t -> Spv_stats.Rng.t -> vectors:int -> float array
(** Per-node toggle probability from random-vector simulation: the
    fraction of successive random input pairs on which the node's value
    flips.  Primary-input entries reflect the (0.5) source activity. *)

val analyse :
  ?activity:float -> Spv_process.Tech.t -> Netlist.t -> t
(** Analytic power view of a netlist under its current sizes.
    [activity] is the mean switching activity per gate (default 0.1;
    use the mean of {!estimated_activity} for a simulated figure).
    Leakage moments treat per-gate random Vth as independent and the
    inter-die component as shared (both lognormal contributions are
    composed exactly). *)

val leakage_mc :
  Spv_process.Tech.t -> Netlist.t -> Spv_stats.Rng.t -> n:int -> float array
(** Monte-Carlo die-leakage samples (relative to the same unit as
    [leakage_nominal]); inter-die shared + per-gate random Vth. *)

val leakage_yield :
  Spv_process.Tech.t -> Netlist.t -> Spv_stats.Rng.t -> n:int ->
  budget:float -> float
(** Fraction of dies whose total leakage stays within [budget]. *)
