module Tech = Spv_process.Tech

type t = {
  dynamic : float;
  leakage_nominal : float;
  leakage_mean : float;
  leakage_sigma : float;
}

let subthreshold_slope_factor = 1.5
let thermal_voltage = 0.02585

let nvt = subthreshold_slope_factor *. thermal_voltage

let leakage_factor _tech ~dvth = exp (-.dvth /. nvt)

(* Per-gate leakage scale: proportional to total transistor width,
   for which area is the proxy. *)
let gate_leakage_scale kind ~size = Cell.area_per_size kind *. size

(* The inter-die and (within one stage netlist) systematic Vth shifts
   are shared by every gate; the random component is per gate with
   sigma shrinking as 1/sqrt(size). *)
let shared_sigma (tech : Tech.t) =
  sqrt
    ((tech.Tech.sigma_vth_inter *. tech.Tech.sigma_vth_inter)
    +. (tech.Tech.sigma_vth_sys *. tech.Tech.sigma_vth_sys))

let estimated_activity net rng ~vectors =
  if vectors <= 0 then invalid_arg "Power.estimated_activity: vectors <= 0";
  let n_in = Array.length (Netlist.input_ids net) in
  let n = Netlist.n_nodes net in
  let toggles = Array.make n 0 in
  let random_inputs () =
    Array.init n_in (fun _ -> Spv_stats.Rng.float rng < 0.5)
  in
  let previous = ref (Netlist.eval net ~inputs:(random_inputs ())) in
  for _ = 1 to vectors do
    let current = Netlist.eval net ~inputs:(random_inputs ()) in
    for i = 0 to n - 1 do
      if current.(i) <> !previous.(i) then toggles.(i) <- toggles.(i) + 1
    done;
    previous := current
  done;
  Array.map (fun t -> float_of_int t /. float_of_int vectors) toggles

let analyse ?(activity = 0.1) (tech : Tech.t) net =
  if activity < 0.0 || activity > 1.0 then
    invalid_arg "Power.analyse: activity outside [0,1]";
  let dynamic = ref 0.0 in
  let nominal = ref 0.0 in
  let mean_random = ref 0.0 in
  (* E[(sum_g L_g e^{-dR_g/nvt})^2] second-moment bookkeeping. *)
  let sq_cross = ref 0.0 in
  let sq_diag = ref 0.0 in
  Array.iter
    (fun i ->
      match Netlist.node net i with
      | Netlist.Primary_input _ -> ()
      | Netlist.Gate { kind; _ } ->
          let size = Netlist.size net i in
          dynamic :=
            !dynamic
            +. (activity *. Cell.input_cap kind ~size *. tech.Tech.vdd
              *. tech.Tech.vdd);
          let l0 = gate_leakage_scale kind ~size in
          nominal := !nominal +. l0;
          let s_r = tech.Tech.sigma_vth_rand /. sqrt size /. nvt in
          let m = l0 *. exp (s_r *. s_r /. 2.0) in
          mean_random := !mean_random +. m;
          sq_cross := !sq_cross +. m;
          sq_diag :=
            !sq_diag
            +. (l0 *. l0
              *. (exp (2.0 *. s_r *. s_r) -. exp (s_r *. s_r))))
    (Netlist.gate_ids net);
  let s_i = shared_sigma tech /. nvt in
  let mean = exp (s_i *. s_i /. 2.0) *. !mean_random in
  let second_random = (!sq_cross *. !sq_cross) +. !sq_diag in
  let second = exp (2.0 *. s_i *. s_i) *. second_random in
  let variance = Float.max 0.0 (second -. (mean *. mean)) in
  {
    dynamic = !dynamic;
    leakage_nominal = !nominal;
    leakage_mean = mean;
    leakage_sigma = sqrt variance;
  }

let leakage_mc (tech : Tech.t) net rng ~n =
  if n <= 0 then invalid_arg "Power.leakage_mc: n <= 0";
  let s_shared = shared_sigma tech in
  Array.init n (fun _ ->
      let shared =
        Spv_stats.Rng.gaussian_mu_sigma rng ~mu:0.0 ~sigma:s_shared
      in
      let total = ref 0.0 in
      Array.iter
        (fun i ->
          match Netlist.node net i with
          | Netlist.Primary_input _ -> ()
          | Netlist.Gate { kind; _ } ->
              let size = Netlist.size net i in
              let dr =
                Spv_stats.Rng.gaussian_mu_sigma rng ~mu:0.0
                  ~sigma:(tech.Tech.sigma_vth_rand /. sqrt size)
              in
              total :=
                !total
                +. (gate_leakage_scale kind ~size
                  *. leakage_factor tech ~dvth:(shared +. dr)))
        (Netlist.gate_ids net);
      !total)

let leakage_yield tech net rng ~n ~budget =
  let samples = leakage_mc tech net rng ~n in
  Spv_stats.Descriptive.fraction_below samples ~threshold:budget
