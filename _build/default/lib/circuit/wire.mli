(** RC interconnect model.

    Sub-100nm delays are not gate-only: each net adds wire capacitance
    to its driver's load and an Elmore RC delay towards its sinks.
    Net length is estimated from fanout (a placement-free half-
    perimeter-style heuristic): [length = length_per_fanout * fanout].

    The model plugs into {!Sta} as an optional parameter; with no model
    the engine reduces exactly to the gate-only formulation, so the
    paper's experiments are unchanged unless wires are asked for. *)

type model = {
  r_per_unit : float;
      (** wire resistance per length unit, in (ps per cap-unit) —
          i.e. already normalised so that r*c products are ps *)
  c_per_unit : float;  (** wire capacitance per length unit, cap units *)
  length_per_fanout : float;  (** estimated net length per sink *)
}

val default : Spv_process.Tech.t -> model
(** 70nm-like global-ish wiring: r 0.08 ps/cap-unit, c 0.5 cap-units,
    0.8 length units per sink — a 4-sink net roughly doubles a
    minimum gate's load. *)

val no_wires : model
(** All-zero model (identity behaviour). *)

val net_length : model -> fanout:int -> float
(** Estimated routed length of a net with [fanout] sinks (0 for a
    dangling or single-sink-output net still gets one segment). *)

val wire_cap : model -> fanout:int -> float
(** Capacitance the net adds to its driver's load. *)

val elmore_delay : model -> fanout:int -> sink_cap:float -> float
(** Distributed RC Elmore delay of the net:
    [r L (c L / 2 + sink_cap)]. *)

val pp : Format.formatter -> model -> unit
