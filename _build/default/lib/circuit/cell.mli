(** Standard-cell library: logical-effort parameters and area.

    The timing model is the classic logical-effort formulation.  A gate
    of drive [x] (in minimum-inverter units) presents input capacitance
    [g * x] per pin and has absolute delay
    [tau * (p + load / x)] where [load] is the sum of the input
    capacitances it drives.  Area is [area_per_size * x]. *)

type kind =
  | Inv
  | Buf
  | Nand2
  | Nand3
  | Nand4
  | Nor2
  | Nor3
  | Nor4
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Aoi21
  | Oai21
  | Mux2

val all : kind list

val arity : kind -> int
(** Number of logic inputs ([Mux2] counts its select). *)

val logical_effort : kind -> float
(** Logical effort g per input, relative to an inverter. *)

val parasitic : kind -> float
(** Parasitic delay p in tau units. *)

val area_per_size : kind -> float
(** Layout area per unit drive, in minimum-inverter-area units. *)

val input_cap : kind -> size:float -> float
(** Input capacitance per pin = [logical_effort * size]. *)

val name : kind -> string
val of_name : string -> kind
(** Raises [Invalid_argument] on an unknown name. *)

val is_inverting : kind -> bool

val eval : kind -> bool array -> bool
(** Boolean function of the cell, for functional simulation tests.
    The array length must equal [arity]. [Mux2] input order is
    [|sel; a; b|] (selects [a] when [sel] is false). *)
