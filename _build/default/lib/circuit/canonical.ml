module Gd = Spv_process.Gate_delay
module Special = Spv_stats.Special

type t = {
  nominal : float;
  s_inter : float;
  s_sys : float;
  s_rand : float;
}

let zero = { nominal = 0.0; s_inter = 0.0; s_sys = 0.0; s_rand = 0.0 }
let deterministic nominal = { zero with nominal }

let of_gate_delay (d : Gd.t) =
  {
    nominal = d.Gd.nominal;
    s_inter = d.Gd.sigma_inter;
    s_sys = d.Gd.sigma_sys;
    s_rand = d.Gd.sigma_rand;
  }

let to_gate_delay t =
  if t.s_inter < 0.0 || t.s_sys < 0.0 then
    invalid_arg "Canonical.to_gate_delay: negative shared sensitivity";
  Gd.make ~nominal:t.nominal ~sigma_inter:t.s_inter ~sigma_sys:t.s_sys
    ~sigma_rand:t.s_rand

let mean t = t.nominal

let variance t =
  (t.s_inter *. t.s_inter) +. (t.s_sys *. t.s_sys) +. (t.s_rand *. t.s_rand)

let sigma t = sqrt (variance t)

let to_gaussian t = Spv_stats.Gaussian.make ~mu:t.nominal ~sigma:(sigma t)

let covariance a b = (a.s_inter *. b.s_inter) +. (a.s_sys *. b.s_sys)

let correlation a b =
  let sa = sigma a and sb = sigma b in
  if sa = 0.0 || sb = 0.0 then 0.0
  else Float.max (-1.0) (Float.min 1.0 (covariance a b /. (sa *. sb)))

let add a b =
  {
    nominal = a.nominal +. b.nominal;
    s_inter = a.s_inter +. b.s_inter;
    s_sys = a.s_sys +. b.s_sys;
    s_rand = sqrt ((a.s_rand *. a.s_rand) +. (b.s_rand *. b.s_rand));
  }

let add_delay t d = add t (of_gate_delay d)

let tightness a b =
  let var_diff =
    variance a +. variance b -. (2.0 *. covariance a b)
  in
  if var_diff <= 1e-24 then if a.nominal >= b.nominal then 1.0 else 0.0
  else Special.big_phi ((a.nominal -. b.nominal) /. sqrt var_diff)

let max a b =
  let ga = to_gaussian a and gb = to_gaussian b in
  let rho = correlation a b in
  let sa = sigma a and sb = sigma b in
  let a2 = (sa *. sa) +. (sb *. sb) -. (2.0 *. rho *. sa *. sb) in
  if a2 < 1e-24 then if a.nominal >= b.nominal then a else b
  else begin
    let spread = sqrt a2 in
    let alpha = (a.nominal -. b.nominal) /. spread in
    let t_prob = Special.big_phi alpha in
    let t_prob' = Special.big_phi (-.alpha) in
    let pdf = Special.phi alpha in
    let mean_max =
      (a.nominal *. t_prob) +. (b.nominal *. t_prob') +. (spread *. pdf)
    in
    let second =
      ((Spv_stats.Gaussian.mu ga ** 2.0) +. (sa *. sa)) *. t_prob
      +. ((Spv_stats.Gaussian.mu gb ** 2.0) +. (sb *. sb)) *. t_prob'
      +. ((a.nominal +. b.nominal) *. spread *. pdf)
    in
    let var_max = Float.max 0.0 (second -. (mean_max *. mean_max)) in
    (* Tightness-weighted blend keeps the covariance with the global
       parameters first-order exact. *)
    let s_inter = (t_prob *. a.s_inter) +. (t_prob' *. b.s_inter) in
    let s_sys = (t_prob *. a.s_sys) +. (t_prob' *. b.s_sys) in
    let shared = (s_inter *. s_inter) +. (s_sys *. s_sys) in
    let s_rand = sqrt (Float.max 0.0 (var_max -. shared)) in
    { nominal = mean_max; s_inter; s_sys; s_rand }
  end

let pp fmt t =
  Format.fprintf fmt "%.3g (+inter %.3g, +sys %.3g, +rand %.3g)" t.nominal
    t.s_inter t.s_sys t.s_rand
