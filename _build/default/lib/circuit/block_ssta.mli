(** Block-based statistical static timing analysis.

    Propagates {!Canonical} arrival forms through the netlist in
    topological order: gate delays add, reconverging arrivals combine
    with the canonical Clark max.  Unlike the critical-path composition
    in {!Ssta.analyse_stage}, this captures the max over {e all} paths
    — on multi-path circuits the block mean sits above the single-path
    mean, matching gate-level Monte-Carlo much more closely.

    All gates of one netlist share the same inter-die and systematic
    parameters (one stage = one die locale), matching
    {!Ssta.mc_stage_delays}'s sampling scheme. *)

type result = {
  arrivals : Canonical.t array;  (** per node *)
  output : Canonical.t;  (** canonical max over primary outputs *)
  criticality : float array;
      (** per node: probability mass with which the node's arrival
          dominated each [max] it entered on the way to the latest
          output — 1.0 along a deterministic critical path, fractional
          where paths compete.  Heuristic (tightness-product), used for
          diagnostics and sizing weights. *)
}

val run :
  ?output_load:float -> Spv_process.Tech.t -> Netlist.t -> result
(** Block SSTA of the combinational netlist under its current sizes. *)

val stage_delay :
  ?output_load:float -> ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
  Netlist.t -> Spv_process.Gate_delay.t
(** Stage delay (combinational output max + optional flip-flop
    overhead) as a decomposed delay, ready for {!Spv_core.Stage}. *)

val compare_with_path_based :
  ?output_load:float -> ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
  Netlist.t -> Spv_stats.Gaussian.t * Spv_stats.Gaussian.t
(** (path-based, block-based) stage Gaussians for the same netlist —
    the accuracy-ablation helper. *)
