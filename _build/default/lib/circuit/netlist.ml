type node =
  | Primary_input of string
  | Gate of { kind : Cell.kind; fanin : int array }

type t = {
  name : string;
  nodes : node array;
  outputs : int array;
  sizes : float array;
  fanouts : int list array;
  gate_ids : int array;
  input_ids : int array;
}

let make ~name ~nodes ~outputs ~sizes =
  let n = Array.length nodes in
  if Array.length sizes <> n then
    invalid_arg "Netlist.make: sizes length mismatch";
  Array.iteri
    (fun i node ->
      match node with
      | Primary_input _ -> ()
      | Gate { kind; fanin } ->
          if Array.length fanin <> Cell.arity kind then
            invalid_arg
              (Printf.sprintf "Netlist.make: node %d: %s expects %d inputs" i
                 (Cell.name kind) (Cell.arity kind));
          Array.iter
            (fun f ->
              if f < 0 || f >= i then
                invalid_arg
                  (Printf.sprintf
                     "Netlist.make: node %d references %d (not topological)" i f))
            fanin;
          if sizes.(i) <= 0.0 then
            invalid_arg (Printf.sprintf "Netlist.make: node %d: size <= 0" i))
    nodes;
  Array.iter
    (fun o ->
      if o < 0 || o >= n then invalid_arg "Netlist.make: bad output id")
    outputs;
  if Array.length outputs = 0 then invalid_arg "Netlist.make: no outputs";
  let fanouts = Array.make n [] in
  Array.iteri
    (fun i node ->
      match node with
      | Primary_input _ -> ()
      | Gate { fanin; _ } ->
          Array.iter (fun f -> fanouts.(f) <- i :: fanouts.(f)) fanin)
    nodes;
  let ids pred =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if pred nodes.(i) then acc := i :: !acc
    done;
    Array.of_list !acc
  in
  let gate_ids = ids (function Gate _ -> true | Primary_input _ -> false) in
  let input_ids = ids (function Primary_input _ -> true | Gate _ -> false) in
  {
    name;
    nodes = Array.copy nodes;
    outputs = Array.copy outputs;
    sizes = Array.copy sizes;
    fanouts;
    gate_ids;
    input_ids;
  }

let name t = t.name
let n_nodes t = Array.length t.nodes
let node t i = t.nodes.(i)
let outputs t = t.outputs
let fanouts t i = t.fanouts.(i)

let is_gate t i =
  match t.nodes.(i) with Gate _ -> true | Primary_input _ -> false

let gate_ids t = t.gate_ids
let input_ids t = t.input_ids
let n_gates t = Array.length t.gate_ids

let size t i = t.sizes.(i)

let set_size t i v =
  if not (is_gate t i) then invalid_arg "Netlist.set_size: not a gate";
  if v <= 0.0 then invalid_arg "Netlist.set_size: size <= 0";
  t.sizes.(i) <- v

let sizes_snapshot t = Array.copy t.sizes
let restore_sizes t snapshot =
  if Array.length snapshot <> Array.length t.sizes then
    invalid_arg "Netlist.restore_sizes: length mismatch";
  Array.blit snapshot 0 t.sizes 0 (Array.length snapshot)

let area t =
  Array.fold_left
    (fun acc i ->
      match t.nodes.(i) with
      | Gate { kind; _ } -> acc +. (Cell.area_per_size kind *. t.sizes.(i))
      | Primary_input _ -> acc)
    0.0 t.gate_ids

let copy t = { t with sizes = Array.copy t.sizes }

let eval t ~inputs =
  if Array.length inputs <> Array.length t.input_ids then
    invalid_arg "Netlist.eval: wrong number of input values";
  let values = Array.make (n_nodes t) false in
  let input_rank = Hashtbl.create 16 in
  Array.iteri (fun rank id -> Hashtbl.add input_rank id rank) t.input_ids;
  Array.iteri
    (fun i node ->
      match node with
      | Primary_input _ -> values.(i) <- inputs.(Hashtbl.find input_rank i)
      | Gate { kind; fanin } ->
          values.(i) <- Cell.eval kind (Array.map (fun f -> values.(f)) fanin))
    t.nodes;
  values

let pp_stats fmt t =
  Format.fprintf fmt "%s: %d inputs, %d gates, %d outputs, area %.1f"
    t.name
    (Array.length t.input_ids)
    (n_gates t)
    (Array.length t.outputs)
    (area t)
