(** Statistical static timing analysis over netlists.

    Two complementary engines:

    - {b analytic}: compose decomposed per-gate delay Gaussians along
      the nominal critical path (plus flip-flop overhead) into a
      per-stage {!Spv_process.Gate_delay.t} — this is what the paper
      feeds its pipeline model with (their SPICE-extracted mu_i,
      sigma_i);
    - {b Monte-Carlo}: sample whole-die variation worlds, re-run STA
      with per-gate delay factors and collect stage or pipeline delay
      samples — this is the paper's verification reference. *)

type stage_analysis = {
  comb : Spv_process.Gate_delay.t;  (** combinational critical path *)
  total : Spv_process.Gate_delay.t;  (** comb + clk-to-Q + setup *)
  nominal : Sta.result;
}

val analyse_stage :
  ?output_load:float -> ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
  Netlist.t -> stage_analysis
(** Analytic per-stage delay decomposition. Flip-flop overhead is
    included when [ff] is given. *)

val stage_gaussian :
  ?output_load:float -> ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
  Netlist.t -> Spv_stats.Gaussian.t
(** Convenience: total stage delay as N(mu, sigma). *)

val mc_stage_delays :
  ?output_load:float -> ?exact:bool -> ?ff:Spv_process.Flipflop.t ->
  Spv_process.Tech.t -> Netlist.t -> Spv_stats.Rng.t -> n:int -> float array
(** [n] Monte-Carlo samples of one stage's delay (the stage sits at a
    single die location). *)

val mc_pipeline_delays :
  ?output_load:float -> ?exact:bool -> ?pitch:float ->
  ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t -> Netlist.t array ->
  Spv_stats.Rng.t -> n:int -> float array
(** [n] Monte-Carlo samples of the pipeline delay
    [max_i (Tcq + comb_i + Tsetup)].  Stages are laid out in a row at
    [pitch] (default 1.0) die units, so their systematic components are
    spatially correlated; the inter-die component is shared. *)

val mc_per_stage_samples :
  ?output_load:float -> ?exact:bool -> ?pitch:float ->
  ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t -> Netlist.t array ->
  Spv_stats.Rng.t -> n:int -> float array array
(** Same sampling scheme, but returns the per-stage delay matrix
    [stage][trial] (used to measure empirical stage correlations). *)
