(** ISCAS `.bench`-style netlist text format.

    Grammar (one statement per line, `#` comments):
    {v
    INPUT(a)
    OUTPUT(n5)
    n3 = NAND2(a, b)        # cell names as in Cell.of_name, upper/lower
    n4 = INV(n3) [size=2.5] # optional drive annotation
    v}

    Cells are resolved through {!Cell.of_name} (case-insensitive);
    `NAND`/`NOR`/`AND`/`OR` without an arity suffix resolve by fanin
    count.  Statements may appear in any order — the reader
    topologically sorts them — but combinational cycles are rejected. *)

val to_string : Netlist.t -> string
(** Render a netlist (stable: inputs, then gates in id order with
    non-default sizes annotated, then outputs). *)

val of_string : ?name:string -> string -> Netlist.t
(** Parse. Raises [Failure] with a line-numbered message on syntax
    errors, unknown cells, undefined signals, arity mismatches,
    duplicate definitions or cycles. *)

val write_file : string -> Netlist.t -> unit
val read_file : string -> Netlist.t
(** [read_file path] names the netlist after the file's basename. *)

val roundtrip_equal : Netlist.t -> Netlist.t -> bool
(** Structural equality (same nodes, fanins, sizes, outputs) up to node
    renumbering induced by topological order — used by tests. *)
