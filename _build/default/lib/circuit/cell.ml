type kind =
  | Inv
  | Buf
  | Nand2
  | Nand3
  | Nand4
  | Nor2
  | Nor3
  | Nor4
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Aoi21
  | Oai21
  | Mux2

let all =
  [ Inv; Buf; Nand2; Nand3; Nand4; Nor2; Nor3; Nor4; And2; Or2; Xor2; Xnor2;
    Aoi21; Oai21; Mux2 ]

let arity = function
  | Inv | Buf -> 1
  | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 -> 2
  | Nand3 | Nor3 | Aoi21 | Oai21 | Mux2 -> 3
  | Nand4 | Nor4 -> 4

(* Standard logical-effort values for gamma = 1 CMOS; composite cells
   (And2/Or2/Buf) carry the effective effort of their two-stage
   realisation. *)
let logical_effort = function
  | Inv -> 1.0
  | Buf -> 1.0
  | Nand2 -> 4.0 /. 3.0
  | Nand3 -> 5.0 /. 3.0
  | Nand4 -> 2.0
  | Nor2 -> 5.0 /. 3.0
  | Nor3 -> 7.0 /. 3.0
  | Nor4 -> 3.0
  | And2 -> 4.0 /. 3.0
  | Or2 -> 5.0 /. 3.0
  | Xor2 -> 4.0
  | Xnor2 -> 4.0
  | Aoi21 -> 2.0
  | Oai21 -> 2.0
  | Mux2 -> 2.0

let parasitic = function
  | Inv -> 1.0
  | Buf -> 2.0
  | Nand2 -> 2.0
  | Nand3 -> 3.0
  | Nand4 -> 4.0
  | Nor2 -> 2.0
  | Nor3 -> 3.0
  | Nor4 -> 4.0
  | And2 -> 3.0
  | Or2 -> 3.0
  | Xor2 -> 4.0
  | Xnor2 -> 4.0
  | Aoi21 -> 7.0 /. 3.0
  | Oai21 -> 7.0 /. 3.0
  | Mux2 -> 2.0

(* Transistor count / 2, as a proxy for layout area per drive unit. *)
let area_per_size = function
  | Inv -> 1.0
  | Buf -> 2.0
  | Nand2 -> 2.0
  | Nand3 -> 3.0
  | Nand4 -> 4.0
  | Nor2 -> 2.0
  | Nor3 -> 3.0
  | Nor4 -> 4.0
  | And2 -> 3.0
  | Or2 -> 3.0
  | Xor2 -> 5.0
  | Xnor2 -> 5.0
  | Aoi21 -> 3.0
  | Oai21 -> 3.0
  | Mux2 -> 4.0

let input_cap kind ~size = logical_effort kind *. size

let name = function
  | Inv -> "inv"
  | Buf -> "buf"
  | Nand2 -> "nand2"
  | Nand3 -> "nand3"
  | Nand4 -> "nand4"
  | Nor2 -> "nor2"
  | Nor3 -> "nor3"
  | Nor4 -> "nor4"
  | And2 -> "and2"
  | Or2 -> "or2"
  | Xor2 -> "xor2"
  | Xnor2 -> "xnor2"
  | Aoi21 -> "aoi21"
  | Oai21 -> "oai21"
  | Mux2 -> "mux2"

let of_name s =
  match List.find_opt (fun k -> name k = s) all with
  | Some k -> k
  | None -> invalid_arg ("Cell.of_name: unknown cell " ^ s)

let is_inverting = function
  | Inv | Nand2 | Nand3 | Nand4 | Nor2 | Nor3 | Nor4 | Xnor2 | Aoi21 | Oai21 ->
      true
  | Buf | And2 | Or2 | Xor2 | Mux2 -> false

let eval kind inputs =
  if Array.length inputs <> arity kind then
    invalid_arg "Cell.eval: wrong input count";
  let allv = Array.for_all (fun b -> b) in
  let anyv = Array.exists (fun b -> b) in
  match kind with
  | Inv -> not inputs.(0)
  | Buf -> inputs.(0)
  | Nand2 | Nand3 | Nand4 -> not (allv inputs)
  | Nor2 | Nor3 | Nor4 -> not (anyv inputs)
  | And2 -> allv inputs
  | Or2 -> anyv inputs
  | Xor2 -> inputs.(0) <> inputs.(1)
  | Xnor2 -> inputs.(0) = inputs.(1)
  | Aoi21 -> not ((inputs.(0) && inputs.(1)) || inputs.(2))
  | Oai21 -> not ((inputs.(0) || inputs.(1)) && inputs.(2))
  | Mux2 -> if inputs.(0) then inputs.(2) else inputs.(1)
