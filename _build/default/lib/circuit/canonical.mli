(** Canonical first-order statistical delay/arrival forms.

    The block-based SSTA representation (Visweswariah et al., DAC'04
    style, specialised to this library's variation model): a timing
    quantity is

    [ d = nominal + s_inter * X_inter + s_sys * X_sys + s_rand * X_r ]

    where [X_inter], [X_sys] are global standard normals shared by
    every form on the die (inter-die shift, and the stage's systematic
    field) and [X_r] is an independent standard normal private to this
    form (the aggregated random contribution).

    [add] is exact.  [max] uses Clark's moments and re-expresses the
    result in canonical form: the shared sensitivities are blended with
    the tightness probability (preserving covariance with the global
    parameters) and the independent part absorbs the residual variance,
    so the total variance is exactly Clark's. *)

type t = {
  nominal : float;
  s_inter : float;  (** sensitivity to the shared inter-die normal *)
  s_sys : float;  (** sensitivity to the shared systematic normal *)
  s_rand : float;  (** aggregated independent sigma (>= 0) *)
}

val zero : t
val deterministic : float -> t

val of_gate_delay : Spv_process.Gate_delay.t -> t
(** A gate's decomposed delay as a canonical form (component sigmas map
    one-to-one onto sensitivities). *)

val to_gate_delay : t -> Spv_process.Gate_delay.t
(** Inverse of {!of_gate_delay}; sensitivities must be non-negative
    (arrival forms produced by [add]/[max] of gate delays always are). *)

val mean : t -> float
val variance : t -> float
val sigma : t -> float
val to_gaussian : t -> Spv_stats.Gaussian.t

val covariance : t -> t -> float
(** Covariance through the shared parameters only (the independent
    parts never correlate). *)

val correlation : t -> t -> float

val add : t -> t -> t
(** Sum of two forms (shared sensitivities add; independent parts add
    in quadrature). Exact. *)

val add_delay : t -> Spv_process.Gate_delay.t -> t
(** [add] with a gate's decomposed delay — the arrival propagation
    step. *)

val max : t -> t -> t
(** Clark max re-canonicalised.  The result's mean and variance are
    Clark's; shared sensitivities are the tightness-weighted blend
    [T s_a + (1-T) s_b] with [T = Phi(alpha)]; the independent sigma
    absorbs the remaining variance (clamped at zero if the blend
    already overshoots, which only happens within rounding). *)

val tightness : t -> t -> float
(** Pr{first >= second} under the joint model — the blending weight
    used by {!max}. *)

val pp : Format.formatter -> t -> unit
