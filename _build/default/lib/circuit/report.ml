module Gd = Spv_process.Gate_delay

type path = {
  gates : int list;
  nominal : float;
  statistical : Gd.t;
}

(* Best-first enumeration states: [Extend] is a prefix about to absorb
   its head gate; [Emit] is a complete path queued at its exact total
   delay so that paths pop in exact descending order. *)
type state =
  | Extend of { rev_gates : int list; acc : float; head : int }
  | Emit of { rev_gates : int list; total : float }

let k_longest_paths ?(output_load = 4.0) tech net ~k =
  if k <= 0 then invalid_arg "Report.k_longest_paths: k <= 0";
  let sta = Sta.run ~output_load tech net in
  let delays = sta.Sta.gate_delays in
  let n = Netlist.n_nodes net in
  let is_output =
    let flags = Array.make n false in
    Array.iter (fun o -> flags.(o) <- true) (Netlist.outputs net);
    flags
  in
  (* suffix.(v): largest achievable remaining delay from v (inclusive of
     v's own delay) to some primary output, following gate fanouts. *)
  let suffix = Array.make n neg_infinity in
  for v = n - 1 downto 0 do
    if Netlist.is_gate net v then begin
      let best_fanout =
        List.fold_left
          (fun acc f -> Float.max acc suffix.(f))
          neg_infinity (Netlist.fanouts net v)
      in
      let continue_ = if best_fanout = neg_infinity then None else Some best_fanout in
      suffix.(v) <-
        (match (is_output.(v), continue_) with
        | true, Some c -> delays.(v) +. Float.max 0.0 c
        | true, None -> delays.(v)
        | false, Some c -> delays.(v) +. c
        | false, None -> neg_infinity)
    end
  done;
  (* Entry gates: gates with at least one primary-input fanin (a path
     begins where data enters the cloud). *)
  let heap = Spv_stats.Heap.create () in
  Array.iter
    (fun v ->
      match Netlist.node net v with
      | Netlist.Primary_input _ -> ()
      | Netlist.Gate { fanin; _ } ->
          if
            Array.exists (fun f -> not (Netlist.is_gate net f)) fanin
            && suffix.(v) > neg_infinity
          then
            Spv_stats.Heap.push heap ~priority:suffix.(v)
              (Extend { rev_gates = []; acc = 0.0; head = v }))
    (Netlist.gate_ids net);
  let results = ref [] in
  let count = ref 0 in
  while !count < k && not (Spv_stats.Heap.is_empty heap) do
    match Spv_stats.Heap.pop heap with
    | None -> ()
    | Some (_, Emit { rev_gates; total }) ->
        incr count;
        let gates = List.rev rev_gates in
        let statistical =
          List.fold_left
            (fun sacc i ->
              Gd.add sacc
                (Gd.of_nominal tech ~nominal:delays.(i)
                   ~size:(Netlist.size net i)))
            Gd.zero gates
        in
        results := { gates; nominal = total; statistical } :: !results
    | Some (_, Extend { rev_gates; acc; head }) ->
        let acc = acc +. delays.(head) in
        let rev_gates = head :: rev_gates in
        (* Ending at an output and continuing through fanouts are
           distinct paths; schedule both. *)
        if is_output.(head) then
          Spv_stats.Heap.push heap ~priority:acc (Emit { rev_gates; total = acc });
        List.iter
          (fun f ->
            if suffix.(f) > neg_infinity then
              Spv_stats.Heap.push heap
                ~priority:(acc +. suffix.(f))
                (Extend { rev_gates; acc; head = f }))
          (Netlist.fanouts net head)
  done;
  Array.of_list (List.rev !results)

let path_yield path ~t_target =
  Spv_stats.Gaussian.cdf (Gd.to_gaussian path.statistical) t_target

let render ?(output_load = 4.0) ?(k = 5) ?t_target tech net =
  let buf = Buffer.create 1024 in
  let sta = Sta.run ~output_load tech net in
  Buffer.add_string buf
    (Format.asprintf "%a@." Netlist.pp_stats net);
  Buffer.add_string buf
    (Printf.sprintf "critical delay %.1f ps, logic depth %d\n" sta.Sta.delay
       (Topo.depth net));
  let paths = k_longest_paths ~output_load tech net ~k in
  Buffer.add_string buf (Printf.sprintf "top %d paths:\n" (Array.length paths));
  Array.iteri
    (fun rank p ->
      let g = Gd.to_gaussian p.statistical in
      let yield_txt =
        match t_target with
        | None -> ""
        | Some t ->
            Printf.sprintf "  P(<= %.0f ps) = %5.1f%%" t
              (100.0 *. path_yield p ~t_target:t)
      in
      Buffer.add_string buf
        (Printf.sprintf "  #%d %8.1f ps  ~N(%.1f, %.2f)  %d gates%s\n"
           (rank + 1) p.nominal (Spv_stats.Gaussian.mu g)
           (Spv_stats.Gaussian.sigma g) (List.length p.gates) yield_txt))
    paths;
  let block = Block_ssta.run ~output_load tech net in
  let ranked =
    Array.to_list (Netlist.gate_ids net)
    |> List.map (fun i -> (i, block.Block_ssta.criticality.(i)))
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  Buffer.add_string buf "most critical gates (block SSTA):\n";
  List.iteri
    (fun rank (i, c) ->
      if rank < 5 then
        match Netlist.node net i with
        | Netlist.Gate { kind; _ } ->
            Buffer.add_string buf
              (Printf.sprintf "  n%d (%s, size %.2g): criticality %.3f\n" i
                 (Cell.name kind) (Netlist.size net i) c)
        | Netlist.Primary_input _ -> ())
    ranked;
  Buffer.contents buf
