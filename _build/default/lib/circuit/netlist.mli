(** Gate-level netlists.

    A netlist is a DAG of primary inputs and cells.  Nodes are stored
    in topological order by construction (a gate may only reference
    lower node ids), which keeps every traversal a single array scan.
    Drive sizes are mutable so the sizing optimiser can update them in
    place without rebuilding fanout structure. *)

type node =
  | Primary_input of string
  | Gate of { kind : Cell.kind; fanin : int array }

type t

val make :
  name:string -> nodes:node array -> outputs:int array -> sizes:float array -> t
(** Validates: every gate's fanins reference strictly lower ids, fanin
    counts match cell arity, outputs are valid ids, sizes are positive
    and as many as nodes.  Raises [Invalid_argument] on violation.
    Prefer {!Builder} for construction. *)

val name : t -> string
val n_nodes : t -> int
val node : t -> int -> node
val outputs : t -> int array
val fanouts : t -> int -> int list
(** Gate ids consuming this node's output (precomputed). *)

val is_gate : t -> int -> bool
val gate_ids : t -> int array
val input_ids : t -> int array
val n_gates : t -> int

val size : t -> int -> float
val set_size : t -> int -> float -> unit
(** Raises [Invalid_argument] for a non-gate node or non-positive size. *)

val sizes_snapshot : t -> float array
val restore_sizes : t -> float array -> unit

val area : t -> float
(** Sum over gates of [Cell.area_per_size * size]. *)

val copy : t -> t
(** Deep copy (sizes independent). *)

val eval : t -> inputs:bool array -> bool array
(** Functional simulation: returns the value at every node given
    primary-input values in id order of [input_ids]. *)

val pp_stats : Format.formatter -> t -> unit
