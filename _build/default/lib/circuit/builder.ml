type t = {
  name : string;
  mutable nodes : Netlist.node list;  (* reversed *)
  mutable sizes : float list;  (* reversed *)
  mutable outputs : int list;  (* reversed *)
  mutable count : int;
}

let create ~name = { name; nodes = []; sizes = []; outputs = []; count = 0 }

let push t node size =
  t.nodes <- node :: t.nodes;
  t.sizes <- size :: t.sizes;
  let id = t.count in
  t.count <- t.count + 1;
  id

let input t label = push t (Netlist.Primary_input label) 1.0

let gate ?(size = 1.0) t kind fanin =
  List.iter
    (fun f ->
      if f < 0 || f >= t.count then invalid_arg "Builder.gate: unknown fanin id")
    fanin;
  push t (Netlist.Gate { kind; fanin = Array.of_list fanin }) size

let inv ?size t a = gate ?size t Cell.Inv [ a ]
let buf ?size t a = gate ?size t Cell.Buf [ a ]
let nand2 ?size t a b = gate ?size t Cell.Nand2 [ a; b ]
let nor2 ?size t a b = gate ?size t Cell.Nor2 [ a; b ]
let and2 ?size t a b = gate ?size t Cell.And2 [ a; b ]
let or2 ?size t a b = gate ?size t Cell.Or2 [ a; b ]
let xor2 ?size t a b = gate ?size t Cell.Xor2 [ a; b ]
let xnor2 ?size t a b = gate ?size t Cell.Xnor2 [ a; b ]
let mux2 ?size t ~sel ~a ~b = gate ?size t Cell.Mux2 [ sel; a; b ]

let output t id =
  if id < 0 || id >= t.count then invalid_arg "Builder.output: unknown id";
  t.outputs <- id :: t.outputs

let n_nodes t = t.count

let finish t =
  if t.outputs = [] then invalid_arg "Builder.finish: no outputs declared";
  Netlist.make ~name:t.name
    ~nodes:(Array.of_list (List.rev t.nodes))
    ~outputs:(Array.of_list (List.rev t.outputs))
    ~sizes:(Array.of_list (List.rev t.sizes))
