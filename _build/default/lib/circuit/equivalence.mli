(** Random-vector functional equivalence checking.

    Sizing, dual-Vth assignment and netlist round-trips must never
    change a circuit's logic function; this is the cheap guard.  Two
    netlists are compared on their primary-output values over random
    input vectors (inputs are matched by label, outputs by position).
    Random simulation is a probabilistic check, not a proof — but a
    single differing vector is a definite counterexample. *)

val compatible : Netlist.t -> Netlist.t -> bool
(** Same input labels (as sets) and the same output count. *)

val check :
  ?vectors:int -> Netlist.t -> Netlist.t -> Spv_stats.Rng.t ->
  (unit, bool array) result
(** [Ok ()] if all [vectors] (default 256) random input assignments
    agree on every output; [Error v] returns the first distinguishing
    input vector (in the first netlist's input order).  Raises
    [Invalid_argument] if the interfaces are incompatible. *)
