(** Levelisation and depth measures over netlists (ids are already in
    topological order by construction). *)

val levels : Netlist.t -> int array
(** Level per node: primary inputs are 0, a gate is
    1 + max level of its fanins. *)

val depth : Netlist.t -> int
(** Maximum logic level over all nodes (the paper's "logic depth"). *)

val nodes_at_level : Netlist.t -> int -> int list

val longest_path_lengths : Netlist.t -> int array
(** For each node, the number of gates on the longest gate-path ending
    at that node (inputs count 0). *)

val transitive_fanin_count : Netlist.t -> int -> int
(** Number of distinct nodes in the cone of a node (excluding itself). *)
