module Gd = Spv_process.Gate_delay
module Variation = Spv_process.Variation

type stage_analysis = {
  comb : Gd.t;
  total : Gd.t;
  nominal : Sta.result;
}

let analyse_stage ?(output_load = 4.0) ?ff tech net =
  let nominal = Sta.run ~output_load tech net in
  let comb =
    List.fold_left
      (fun acc i ->
        let d = nominal.Sta.gate_delays.(i) in
        Gd.add acc (Gd.of_nominal tech ~nominal:d ~size:(Netlist.size net i)))
      Gd.zero nominal.Sta.critical_path
  in
  let total =
    match ff with
    | None -> comb
    | Some ff -> Gd.add comb (Spv_process.Flipflop.overhead ff)
  in
  { comb; total; nominal }

let stage_gaussian ?output_load ?ff tech net =
  Gd.to_gaussian (analyse_stage ?output_load ?ff tech net).total

(* Per-trial machinery shared by the stage and pipeline samplers: one
   delay factor per node from (inter + systematic at the stage's
   location + fresh per-gate random). *)
let fill_factors ?(exact = false) tech net ~inter ~sys_field rng factors =
  let f_of shift =
    if exact then Variation.delay_factor_exact tech shift
    else Variation.delay_factor_linear tech shift
  in
  Array.iter
    (fun i ->
      let rand = Variation.sample_rand tech ~size:(Netlist.size net i) rng in
      let sys = Variation.sample_sys_scaled tech ~field:sys_field in
      let shift = Variation.(add_shift inter (add_shift sys rand)) in
      factors.(i) <- f_of shift)
    (Netlist.gate_ids net)

let ff_overhead_sample ?(exact = false) tech ff ~inter ~sys_field rng =
  match ff with
  | None -> 0.0
  | Some ff ->
      let nominal = Spv_process.Flipflop.nominal_overhead ff in
      let rand = Variation.sample_rand tech ~size:2.0 rng in
      let sys = Variation.sample_sys_scaled tech ~field:sys_field in
      let shift = Variation.(add_shift inter (add_shift sys rand)) in
      let f =
        if exact then Variation.delay_factor_exact tech shift
        else Variation.delay_factor_linear tech shift
      in
      nominal *. f

let mc_stage_delays ?(output_load = 4.0) ?(exact = false) ?ff tech net rng ~n =
  if n <= 0 then invalid_arg "Ssta.mc_stage_delays: n <= 0";
  let positions = Spv_process.Spatial.row_positions ~n:1 ~pitch:1.0 in
  let sampler = Spv_process.Sample.create tech ~positions in
  let factors = Array.make (Netlist.n_nodes net) 1.0 in
  Array.init n (fun _ ->
      let world = Spv_process.Sample.draw sampler rng in
      let inter = world.Spv_process.Sample.inter in
      let sys_field = world.Spv_process.Sample.sys_field.(0) in
      fill_factors ~exact tech net ~inter ~sys_field rng factors;
      let sta = Sta.run_with_factors ~output_load tech net ~factors in
      sta.Sta.delay +. ff_overhead_sample ~exact tech ff ~inter ~sys_field rng)

let mc_per_stage_samples ?(output_load = 4.0) ?(exact = false) ?(pitch = 1.0)
    ?ff tech nets rng ~n =
  let n_stages = Array.length nets in
  if n_stages = 0 then invalid_arg "Ssta.mc_per_stage_samples: no stages";
  if n <= 0 then invalid_arg "Ssta.mc_per_stage_samples: n <= 0";
  let positions = Spv_process.Spatial.row_positions ~n:n_stages ~pitch in
  let sampler = Spv_process.Sample.create tech ~positions in
  let factors =
    Array.map (fun net -> Array.make (Netlist.n_nodes net) 1.0) nets
  in
  let samples = Array.make_matrix n_stages n 0.0 in
  for trial = 0 to n - 1 do
    let world = Spv_process.Sample.draw sampler rng in
    let inter = world.Spv_process.Sample.inter in
    for s = 0 to n_stages - 1 do
      let sys_field = world.Spv_process.Sample.sys_field.(s) in
      fill_factors ~exact tech nets.(s) ~inter ~sys_field rng factors.(s);
      let sta =
        Sta.run_with_factors ~output_load tech nets.(s) ~factors:factors.(s)
      in
      samples.(s).(trial) <-
        sta.Sta.delay +. ff_overhead_sample ~exact tech ff ~inter ~sys_field rng
    done
  done;
  samples

let mc_pipeline_delays ?output_load ?exact ?pitch ?ff tech nets rng ~n =
  let per_stage = mc_per_stage_samples ?output_load ?exact ?pitch ?ff tech nets rng ~n in
  Array.init n (fun trial ->
      Array.fold_left
        (fun acc stage -> Float.max acc stage.(trial))
        neg_infinity per_stage)
