let levels net =
  let n = Netlist.n_nodes net in
  let levels = Array.make n 0 in
  for i = 0 to n - 1 do
    match Netlist.node net i with
    | Netlist.Primary_input _ -> levels.(i) <- 0
    | Netlist.Gate { fanin; _ } ->
        levels.(i) <-
          1 + Array.fold_left (fun acc f -> Stdlib.max acc levels.(f)) 0 fanin
  done;
  levels

let depth net = Array.fold_left Stdlib.max 0 (levels net)

let nodes_at_level net lvl =
  let ls = levels net in
  let acc = ref [] in
  for i = Netlist.n_nodes net - 1 downto 0 do
    if ls.(i) = lvl then acc := i :: !acc
  done;
  !acc

let longest_path_lengths net =
  let n = Netlist.n_nodes net in
  let len = Array.make n 0 in
  for i = 0 to n - 1 do
    match Netlist.node net i with
    | Netlist.Primary_input _ -> len.(i) <- 0
    | Netlist.Gate { fanin; _ } ->
        len.(i) <-
          1 + Array.fold_left (fun acc f -> Stdlib.max acc len.(f)) 0 fanin
  done;
  len

let transitive_fanin_count net id =
  let seen = Hashtbl.create 64 in
  let rec visit i =
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.add seen i ();
      match Netlist.node net i with
      | Netlist.Primary_input _ -> ()
      | Netlist.Gate { fanin; _ } -> Array.iter visit fanin
    end
  in
  (match Netlist.node net id with
  | Netlist.Primary_input _ -> ()
  | Netlist.Gate { fanin; _ } -> Array.iter visit fanin);
  Hashtbl.length seen
