module Gd = Spv_process.Gate_delay

type result = {
  arrivals : Canonical.t array;
  output : Canonical.t;
  criticality : float array;
}

let run ?(output_load = 4.0) tech net =
  let n = Netlist.n_nodes net in
  let loads = Sta.loads net ~output_load in
  let arrivals = Array.make n Canonical.zero in
  (* Forward propagation: arrival = max over fanin arrivals + own
     delay.  Tightness of each max is recorded for the backward
     criticality pass. *)
  let fanin_tightness : (int, (int * float) list) Hashtbl.t = Hashtbl.create n in
  for i = 0 to n - 1 do
    match Netlist.node net i with
    | Netlist.Primary_input _ -> arrivals.(i) <- Canonical.zero
    | Netlist.Gate { kind; fanin } ->
        let nominal =
          tech.Spv_process.Tech.tau
          *. (Cell.parasitic kind +. (loads.(i) /. Netlist.size net i))
        in
        let own =
          Canonical.of_gate_delay
            (Gd.of_nominal tech ~nominal ~size:(Netlist.size net i))
        in
        (* Fold fanins with Clark max, tracking per-fanin dominance. *)
        let weights = Array.make (Array.length fanin) 0.0 in
        let acc = ref arrivals.(fanin.(0)) in
        weights.(0) <- 1.0;
        for k = 1 to Array.length fanin - 1 do
          let b = arrivals.(fanin.(k)) in
          let t = Canonical.tightness !acc b in
          (* Previous contributors share t; the newcomer gets 1-t. *)
          for k' = 0 to k - 1 do
            weights.(k') <- weights.(k') *. t
          done;
          weights.(k) <- 1.0 -. t;
          acc := Canonical.max !acc b
        done;
        Hashtbl.replace fanin_tightness i
          (Array.to_list (Array.mapi (fun k f -> (f, weights.(k))) fanin));
        arrivals.(i) <- Canonical.add !acc own
  done;
  (* Max over primary outputs, with the same dominance bookkeeping. *)
  let outputs = Netlist.outputs net in
  let out_weights = Array.make (Array.length outputs) 0.0 in
  let output = ref arrivals.(outputs.(0)) in
  out_weights.(0) <- 1.0;
  for k = 1 to Array.length outputs - 1 do
    let b = arrivals.(outputs.(k)) in
    let t = Canonical.tightness !output b in
    for k' = 0 to k - 1 do
      out_weights.(k') <- out_weights.(k') *. t
    done;
    out_weights.(k) <- 1.0 -. t;
    output := Canonical.max !output b
  done;
  (* Backward criticality: distribute each node's criticality over its
     fanins with the recorded tightness weights. *)
  let criticality = Array.make n 0.0 in
  Array.iteri (fun k o -> criticality.(o) <- criticality.(o) +. out_weights.(k)) outputs;
  for i = n - 1 downto 0 do
    if criticality.(i) > 0.0 then
      match Hashtbl.find_opt fanin_tightness i with
      | None -> ()
      | Some contributions ->
          List.iter
            (fun (f, w) -> criticality.(f) <- criticality.(f) +. (criticality.(i) *. w))
            contributions
  done;
  { arrivals; output = !output; criticality }

let stage_delay ?output_load ?ff tech net =
  let r = run ?output_load tech net in
  let comb = Canonical.to_gate_delay r.output in
  match ff with
  | None -> comb
  | Some ff -> Gd.add comb (Spv_process.Flipflop.overhead ff)

let compare_with_path_based ?output_load ?ff tech net =
  let path = Ssta.stage_gaussian ?output_load ?ff tech net in
  let block = Gd.to_gaussian (stage_delay ?output_load ?ff tech net) in
  (path, block)
