(** Timing reports: exact k-longest path enumeration and an STA-style
    text report with per-path statistical delays.

    Path enumeration is best-first over path prefixes: the
    priority of a prefix ending at node v is its accumulated delay plus
    the exact best completion [suffix v] (longest remaining gate-path
    to any primary output), so paths pop in exact descending order of
    total delay and only O(k x fanout) states are expanded. *)

type path = {
  gates : int list;  (** gate ids, input side first *)
  nominal : float;  (** sum of gate delays along the path, ps *)
  statistical : Spv_process.Gate_delay.t;
      (** decomposed delay of the path under the variation model *)
}

val k_longest_paths :
  ?output_load:float -> Spv_process.Tech.t -> Netlist.t -> k:int -> path array
(** The [k] slowest input-to-output paths in exact descending nominal
    order (fewer if the circuit has fewer distinct paths).  Requires
    [k > 0]. *)

val path_yield : path -> t_target:float -> float
(** Pr{this path meets the target} under its decomposed Gaussian. *)

val render :
  ?output_load:float -> ?k:int -> ?t_target:float -> Spv_process.Tech.t ->
  Netlist.t -> string
(** Multi-line report: circuit summary, the top-[k] (default 5) paths
    with nominal and mu/sigma delays (plus per-path yield when
    [t_target] is given), and the five most criticality-weighted gates
    from the block SSTA. *)
