lib/circuit/block_ssta.mli: Canonical Netlist Spv_process Spv_stats
