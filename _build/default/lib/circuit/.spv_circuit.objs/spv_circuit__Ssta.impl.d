lib/circuit/ssta.ml: Array Float List Netlist Spv_process Sta
