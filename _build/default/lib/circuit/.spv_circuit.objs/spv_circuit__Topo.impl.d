lib/circuit/topo.ml: Array Hashtbl Netlist Stdlib
