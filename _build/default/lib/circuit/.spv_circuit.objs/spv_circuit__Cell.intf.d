lib/circuit/cell.mli:
