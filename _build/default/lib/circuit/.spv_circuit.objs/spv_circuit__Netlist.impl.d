lib/circuit/netlist.ml: Array Cell Format Hashtbl Printf
