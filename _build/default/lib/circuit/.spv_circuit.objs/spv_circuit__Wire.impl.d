lib/circuit/wire.ml: Format Spv_process Stdlib
