lib/circuit/report.ml: Array Block_ssta Buffer Cell Float Format List Netlist Printf Spv_process Spv_stats Sta Topo
