lib/circuit/wire.mli: Format Spv_process
