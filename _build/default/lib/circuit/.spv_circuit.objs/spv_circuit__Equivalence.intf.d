lib/circuit/equivalence.mli: Netlist Spv_stats
