lib/circuit/canonical.mli: Format Spv_process Spv_stats
