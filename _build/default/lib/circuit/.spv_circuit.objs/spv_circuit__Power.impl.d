lib/circuit/power.ml: Array Cell Float Netlist Spv_process Spv_stats
