lib/circuit/equivalence.ml: Array Hashtbl List Netlist Spv_stats
