lib/circuit/cell.ml: Array List
