lib/circuit/builder.ml: Array Cell List Netlist
