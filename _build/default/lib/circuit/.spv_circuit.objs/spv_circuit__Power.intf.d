lib/circuit/power.mli: Netlist Spv_process Spv_stats
