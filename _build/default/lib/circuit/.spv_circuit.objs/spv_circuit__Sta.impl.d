lib/circuit/sta.ml: Array Cell Float List Netlist Spv_process Wire
