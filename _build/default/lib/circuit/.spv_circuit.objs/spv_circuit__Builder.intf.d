lib/circuit/builder.mli: Cell Netlist
