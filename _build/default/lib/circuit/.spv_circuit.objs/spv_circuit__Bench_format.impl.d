lib/circuit/bench_format.ml: Array Buffer Builder Cell Filename Fun Hashtbl List Netlist Option Printf String
