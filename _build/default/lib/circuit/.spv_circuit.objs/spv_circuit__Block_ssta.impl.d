lib/circuit/block_ssta.ml: Array Canonical Cell Hashtbl List Netlist Spv_process Ssta Sta
