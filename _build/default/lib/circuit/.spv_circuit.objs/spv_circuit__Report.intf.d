lib/circuit/report.mli: Netlist Spv_process
