lib/circuit/canonical.ml: Float Format Spv_process Spv_stats
