lib/circuit/ssta.mli: Netlist Spv_process Spv_stats Sta
