lib/circuit/sta.mli: Netlist Spv_process Wire
