lib/circuit/generators.ml: Array Builder Cell List Netlist Printf Spv_stats Stdlib Topo
