type model = {
  r_per_unit : float;
  c_per_unit : float;
  length_per_fanout : float;
}

let default (_tech : Spv_process.Tech.t) =
  { r_per_unit = 0.08; c_per_unit = 0.5; length_per_fanout = 0.8 }

let no_wires = { r_per_unit = 0.0; c_per_unit = 0.0; length_per_fanout = 0.0 }

let check m =
  if m.r_per_unit < 0.0 || m.c_per_unit < 0.0 || m.length_per_fanout < 0.0 then
    invalid_arg "Wire: negative model parameter"

let net_length m ~fanout =
  check m;
  if fanout < 0 then invalid_arg "Wire.net_length: negative fanout";
  m.length_per_fanout *. float_of_int (Stdlib.max 1 fanout)

let wire_cap m ~fanout = m.c_per_unit *. net_length m ~fanout

let elmore_delay m ~fanout ~sink_cap =
  if sink_cap < 0.0 then invalid_arg "Wire.elmore_delay: negative sink cap";
  let len = net_length m ~fanout in
  m.r_per_unit *. len *. ((m.c_per_unit *. len /. 2.0) +. sink_cap)

let pp fmt m =
  Format.fprintf fmt "wire(r=%g, c=%g, l/fo=%g)" m.r_per_unit m.c_per_unit
    m.length_per_fanout
