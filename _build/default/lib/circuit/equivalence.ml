let input_labels net =
  Array.map
    (fun i ->
      match Netlist.node net i with
      | Netlist.Primary_input label -> label
      | Netlist.Gate _ -> assert false)
    (Netlist.input_ids net)

let compatible a b =
  let la = List.sort compare (Array.to_list (input_labels a)) in
  let lb = List.sort compare (Array.to_list (input_labels b)) in
  la = lb
  && Array.length (Netlist.outputs a) = Array.length (Netlist.outputs b)

let outputs_on net ~inputs =
  let values = Netlist.eval net ~inputs in
  Array.map (fun o -> values.(o)) (Netlist.outputs net)

let check ?(vectors = 256) a b rng =
  if vectors <= 0 then invalid_arg "Equivalence.check: vectors <= 0";
  if not (compatible a b) then
    invalid_arg "Equivalence.check: incompatible interfaces";
  let labels_a = input_labels a in
  let labels_b = input_labels b in
  (* Permutation mapping a-input order onto b-input order. *)
  let index_b = Hashtbl.create 16 in
  Array.iteri (fun k l -> Hashtbl.replace index_b l k) labels_b;
  let to_b inputs =
    let out = Array.make (Array.length inputs) false in
    Array.iteri
      (fun k l -> out.(Hashtbl.find index_b l) <- inputs.(k))
      labels_a;
    out
  in
  let n_in = Array.length labels_a in
  let rec go remaining =
    if remaining = 0 then Ok ()
    else begin
      let inputs = Array.init n_in (fun _ -> Spv_stats.Rng.float rng < 0.5) in
      if outputs_on a ~inputs = outputs_on b ~inputs:(to_b inputs) then
        go (remaining - 1)
      else Error inputs
    end
  in
  go vectors
