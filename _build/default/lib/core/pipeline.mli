(** A pipeline as the max of N correlated Gaussian stage delays
    (eq. 1), with the Clark-approximated overall delay distribution
    (eqs. 4–6) and the Jensen lower bound (eq. 3). *)

type t

val make : Stage.t array -> corr:Spv_stats.Correlation.t -> t
(** Pipeline with an explicit stage-delay correlation matrix (the mode
    used when mu/sigma/rho come from outside, as in the paper's
    SPICE-fed experiments).  Requires a valid matrix of matching
    dimension and at least one stage. *)

val of_stages : ?corr_length:float -> Stage.t array -> t
(** Derive the correlation matrix from the stages' variation
    decomposition and die positions: shared inter-die variance plus
    spatially-decaying systematic covariance ([corr_length] defaults to
    {!Spv_process.Tech.bptm70}'s). *)

val of_circuits :
  ?output_load:float -> ?pitch:float -> ?ff:Spv_process.Flipflop.t ->
  Spv_process.Tech.t -> Spv_circuit.Netlist.t array -> t
(** Analytic SSTA on each netlist, stages laid out in a row at [pitch]
    (default 1.0) die units. *)

val n_stages : t -> int
val stage : t -> int -> Stage.t
val stages : t -> Stage.t array
val correlation : t -> Spv_stats.Correlation.t
val stage_gaussians : t -> Spv_stats.Gaussian.t array

val delay_distribution : ?order:Clark.order -> t -> Spv_stats.Gaussian.t
(** The paper's (mu_T, sigma_T): Clark-iterated max over the stages. *)

val jensen_lower_bound : t -> float
(** Eq. 3: mu_T >= max_i mu_i. *)

val slowest_stage : t -> int
(** Index of the stage with the largest nominal delay. *)

val nominal_delay : t -> float
(** max_i mu_i — the deterministic designer's view (Fig. 1a). *)

val mvn : t -> Spv_stats.Mvn.t
(** Joint stage-delay sampler consistent with the model (for
    Monte-Carlo verification). *)

val with_stage : t -> int -> Stage.t -> t
(** Functional update of one stage; correlations are recomputed when
    the pipeline was built by decomposition ([of_stages]/[of_circuits])
    and kept otherwise. *)

val map_stages : t -> (Stage.t -> Stage.t) -> t

val pp : Format.formatter -> t -> unit
