(** One pipeline stage: eq. 1's [SD = T_C-Q + T_comb + T_setup] carried
    as a component-decomposed Gaussian, plus a die position for the
    spatial correlation model. *)

type t = {
  name : string;
  delay : Spv_process.Gate_delay.t;  (** total stage delay (with latch overhead) *)
  position : Spv_process.Spatial.position;
}

val make :
  ?name:string -> ?position:Spv_process.Spatial.position ->
  Spv_process.Gate_delay.t -> t

val of_moments :
  ?name:string -> ?position:Spv_process.Spatial.position -> mu:float ->
  sigma:float -> unit -> t
(** Stage from plain (mu, sigma) with the whole sigma treated as
    independent random — the mode in which the paper consumes
    SPICE-extracted numbers with an explicit correlation matrix. *)

type timing_method =
  | Path_based  (** critical-path composition ({!Spv_circuit.Ssta}) *)
  | Block_based  (** canonical-form block SSTA ({!Spv_circuit.Block_ssta}),
                     which also counts near-critical paths *)

val of_circuit :
  ?output_load:float -> ?ff:Spv_process.Flipflop.t ->
  ?position:Spv_process.Spatial.position -> ?timing:timing_method ->
  Spv_process.Tech.t -> Spv_circuit.Netlist.t -> t
(** Stage from a gate-level netlist (default timing: [Path_based],
    matching the paper's critical-path framing). *)

val gaussian : t -> Spv_stats.Gaussian.t
val mu : t -> float
val sigma : t -> float

val variability : t -> float
(** sigma / mu. *)

val scale_delay : t -> float -> t
(** Scale nominal and all sigma components by a non-negative factor —
    the budget-rebalancing primitive used by the balance experiments. *)

val yield_alone : t -> t_target:float -> float
(** Pr{SD <= t_target} for this stage in isolation. *)

val pp : Format.formatter -> t -> unit
