(** Variability (sigma/mu) studies — Section 3.1 / Fig. 5.

    The paper's question: given a 120-level logic budget, is it better
    (for yield) to cut it into many shallow stages or few deep ones?
    The answer flips with the inter-die / intra-die balance, which these
    sweeps expose. *)

val stage_sigma_mu_vs_depth :
  ?size:float -> ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
  depths:int array -> float array
(** Fig. 5(a): sigma/mu of a single inverter-chain stage at each logic
    depth.  With only random variation this falls like 1/sqrt(depth)
    (cancellation); correlated components flatten it. *)

val pipeline_sigma_mu_vs_stages :
  stage:Spv_stats.Gaussian.t -> rho:float -> stage_counts:int array ->
  float array
(** Fig. 5(b): sigma/mu of the Clark max of N copies of a fixed stage
    Gaussian under uniform correlation [rho], per stage count. *)

val fixed_total_levels :
  ?size:float -> ?ff:Spv_process.Flipflop.t -> ?pitch:float ->
  Spv_process.Tech.t -> total_levels:int -> stage_counts:int array ->
  float array
(** Fig. 5(c): sigma/mu of the whole pipeline delay when
    [stages x depth = total_levels], per stage count (each count must
    divide [total_levels]). *)

val normalise : float array -> float array
(** Divide by the first element (the paper plots normalised ratios).
    Requires a non-zero first element. *)

val divisors : int -> int list
(** All positive divisors, ascending (handy for the Fig. 5(c) sweep). *)
