module Special = Spv_stats.Special

type point = { mu : float; sigma : float }

let check_yield yield =
  if not (yield > 0.5 && yield < 1.0) then
    invalid_arg "Design_space: yield must lie in (0.5, 1)"

let mu_t_upper_bound ~t_target ~yield ~sigma_t =
  check_yield yield;
  if sigma_t < 0.0 then invalid_arg "Design_space.mu_t_upper_bound: sigma_t < 0";
  t_target -. (sigma_t *. Special.big_phi_inv yield)

let relaxed_sigma_bound ~t_target ~yield ~mu =
  check_yield yield;
  (t_target -. mu) /. Special.big_phi_inv yield

let equality_sigma_bound ~t_target ~yield ~n_stages ~mu =
  check_yield yield;
  if n_stages <= 0 then invalid_arg "Design_space.equality_sigma_bound: n <= 0";
  let per_stage = yield ** (1.0 /. float_of_int n_stages) in
  (t_target -. mu) /. Special.big_phi_inv per_stage

let realizable_sigma ~mu_ref ~sigma_ref ~mu =
  if mu_ref <= 0.0 || sigma_ref < 0.0 then
    invalid_arg "Design_space.realizable_sigma: bad reference";
  if mu < 0.0 then invalid_arg "Design_space.realizable_sigma: mu < 0";
  sigma_ref *. sqrt (mu /. mu_ref)

let inverter_reference ?(load = 4.0) ?(random_only = true) tech ~size =
  if size <= 0.0 then invalid_arg "Design_space.inverter_reference: size <= 0";
  let mu =
    tech.Spv_process.Tech.tau
    *. (Spv_circuit.Cell.parasitic Spv_circuit.Cell.Inv +. (load /. size))
  in
  let d = Spv_process.Gate_delay.of_nominal tech ~nominal:mu ~size in
  let sigma =
    if random_only then d.Spv_process.Gate_delay.sigma_rand
    else Spv_process.Gate_delay.total_sigma d
  in
  { mu; sigma }

type curves = {
  mus : float array;
  relaxed : float array;
  equality : (int * float array) list;
  realizable_min : float array;
  realizable_max : float array;
  mu_min : float;
  sigma_min : float;
}

let curves ?(tech = Spv_process.Tech.bptm70) ?(min_size = 1.0)
    ?(max_size = 16.0) ?(n_points = 100) ~t_target ~yield ~stage_counts () =
  check_yield yield;
  if t_target <= 0.0 then invalid_arg "Design_space.curves: t_target <= 0";
  if n_points < 2 then invalid_arg "Design_space.curves: n_points < 2";
  let mus =
    Array.init n_points (fun i ->
        t_target *. float_of_int (i + 1) /. float_of_int n_points)
  in
  let clamp0 v = Float.max 0.0 v in
  let relaxed =
    Array.map (fun mu -> clamp0 (relaxed_sigma_bound ~t_target ~yield ~mu)) mus
  in
  let equality =
    List.map
      (fun n ->
        ( n,
          Array.map
            (fun mu ->
              clamp0 (equality_sigma_bound ~t_target ~yield ~n_stages:n ~mu))
            mus ))
      stage_counts
  in
  let ref_min = inverter_reference tech ~size:min_size in
  let ref_max = inverter_reference tech ~size:max_size in
  let realizable_min =
    Array.map
      (fun mu -> realizable_sigma ~mu_ref:ref_min.mu ~sigma_ref:ref_min.sigma ~mu)
      mus
  in
  let realizable_max =
    Array.map
      (fun mu -> realizable_sigma ~mu_ref:ref_max.mu ~sigma_ref:ref_max.sigma ~mu)
      mus
  in
  {
    mus;
    relaxed;
    equality;
    realizable_min;
    realizable_max;
    mu_min = ref_max.mu;
    sigma_min = ref_max.sigma;
  }

let admissible ~t_target ~yield ~n_stages point =
  point.sigma >= 0.0
  && point.mu <= t_target
  && point.sigma <= equality_sigma_bound ~t_target ~yield ~n_stages ~mu:point.mu

let realizable ?(tech = Spv_process.Tech.bptm70) ?(min_size = 1.0)
    ?(max_size = 16.0) point =
  let ref_min = inverter_reference tech ~size:min_size in
  let ref_max = inverter_reference tech ~size:max_size in
  point.mu >= ref_max.mu
  && point.sigma
     <= realizable_sigma ~mu_ref:ref_min.mu ~sigma_ref:ref_min.sigma ~mu:point.mu
  && point.sigma
     >= realizable_sigma ~mu_ref:ref_max.mu ~sigma_ref:ref_max.sigma ~mu:point.mu
