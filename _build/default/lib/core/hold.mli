(** Hold-time (race) analysis under variation — the early-mode
    companion of the paper's setup-time yield.

    A pipeline stage races when its {e fastest} path delivers new data
    before the receiving latch's hold window closes:
    the check is [T_C-Q + D_min >= T_hold], clock-period independent.
    Since [min_i X_i = -max_i (-X_i)], all the Clark machinery reuses
    directly.

    Extension beyond the paper (which treats only the setup side), but
    a pipeline "design for yield" flow is incomplete without it: fixing
    setup yield by downsizing non-critical gates shortens the short
    paths too, and this module prices that risk. *)

val min2 :
  Spv_stats.Gaussian.t -> Spv_stats.Gaussian.t -> rho:float ->
  Spv_stats.Gaussian.t
(** Clark-style moments of [min(X1, X2)] (exact for two variables). *)

val min_n :
  ?order:Clark.order -> Spv_stats.Gaussian.t array ->
  corr:Spv_stats.Correlation.t -> Spv_stats.Gaussian.t
(** Approximate distribution of [min_i X_i]. *)

val short_path_delay :
  ?output_load:float -> Spv_process.Tech.t -> Spv_circuit.Netlist.t ->
  Spv_process.Gate_delay.t
(** Decomposed delay of the netlist's shortest input-to-output path
    (early-mode composition, mirroring
    {!Spv_circuit.Ssta.analyse_stage}). *)

val hold_yield_stage :
  ?output_load:float -> Spv_process.Tech.t -> ff:Spv_process.Flipflop.t ->
  hold_ps:float -> Spv_circuit.Netlist.t -> float
(** Pr{T_C-Q + D_min >= hold_ps} for one stage.  The clk-to-Q and the
    data path share the die's variation components, so their shared
    parts add coherently — the race margin's fast tail is fatter than
    an independence assumption would give. *)

val hold_yield_pipeline :
  ?output_load:float -> ?corr_length:float -> ?pitch:float ->
  Spv_process.Tech.t -> ff:Spv_process.Flipflop.t -> hold_ps:float ->
  Spv_circuit.Netlist.t array -> float
(** Pr{every stage passes its hold check}: the min over stages of the
    per-stage race margins, via {!min_n} with the spatial correlation
    of the margins. *)

val combined_yield :
  setup:float -> hold:float -> float
(** First-order combination of a setup yield and a hold yield under
    independence of the failure mechanisms (an upper bound on the true
    joint yield; the two share inter-die variation, which only raises
    it). *)
