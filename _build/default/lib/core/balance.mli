(** Balanced vs. unbalanced pipelines (Section 3.2, Figs. 6–8).

    A [stage_model] is a sampled area-vs-delay trade-off curve for one
    stage (produced by the sizing layer, or synthetic in tests), each
    sample carrying the stage's decomposed delay.  On top of it:
    balanced-design construction, the eq. 14 slope heuristic
    [R_i = -(dA/dD) * (D/A)], and a constant-area imbalance search that
    reproduces the paper's yield-improvement observation. *)

type curve_point = {
  delay : float;  (** nominal total stage delay, ps *)
  area : float;
  decomposed : Spv_process.Gate_delay.t;  (** stage delay at this point *)
}

type stage_model

val stage_model : name:string -> curve_point array -> stage_model
(** Points must be sorted by strictly increasing delay, with strictly
    decreasing area (faster costs more area), length >= 2. *)

val name : stage_model -> string
val points : stage_model -> curve_point array
val delay_bounds : stage_model -> float * float

val area_at : stage_model -> delay:float -> float
(** Piecewise-linear interpolation; clamps outside the sampled range. *)

val decomposed_at : stage_model -> delay:float -> Spv_process.Gate_delay.t
(** Component-wise interpolated stage delay at a delay budget. *)

val delay_at_area : stage_model -> area:float -> float
(** Inverse of [area_at] (the curve is monotone). *)

val ri : stage_model -> delay:float -> float
(** Eq. 14's slope measure: [-(dA/dD) * (D/A)] by central differencing.
    [R > 1]: area moves faster than delay (cheap to save area there);
    [R < 1]: delay is cheap to buy with area. *)

val pipeline_of :
  ?corr_length:float -> ?pitch:float -> stage_model array ->
  delays:float array -> Pipeline.t
(** Pipeline with stage i at delay budget [delays.(i)], stages in a row
    at [pitch] (default 1.0). *)

val total_area : stage_model array -> delays:float array -> float

val balanced_delays : stage_model array -> total_area:float -> float array
(** Equal-delay design consuming exactly [total_area]: the common delay
    D with [sum_i A_i(D) = total_area] (bisection).  Raises
    [Invalid_argument] if unreachable within every stage's bounds. *)

type solution = {
  delays : float array;
  area : float;
  yield : float;
}

val evaluate :
  ?corr_length:float -> ?pitch:float -> stage_model array ->
  delays:float array -> t_target:float -> solution

val optimise_constant_area :
  ?corr_length:float -> ?pitch:float -> ?sweeps:int -> ?initial_step:float ->
  stage_model array -> total_area:float -> t_target:float -> solution
(** Constant-area imbalance search: pairwise area exchanges between
    stages, keeping an exchange when the Clark yield at [t_target]
    improves; the step shrinks geometrically over [sweeps] (default 8)
    passes.  Starts from the balanced design. *)

val pessimise_constant_area :
  ?corr_length:float -> ?pitch:float -> ?sweeps:int -> ?initial_step:float ->
  stage_model array -> total_area:float -> t_target:float -> solution
(** Same search minimising yield — the paper's "unbalanced (worst)"
    reference of Fig. 7(b). *)

val order_by_ri : stage_model array -> delays:float array -> int array
(** Stage indices sorted by ascending [ri] — the Fig. 9 processing
    order (cheap-delay stages first). *)
