module Gd = Spv_process.Gate_delay

type curve_point = { delay : float; area : float; decomposed : Gd.t }

type stage_model = { model_name : string; pts : curve_point array }

let stage_model ~name pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Balance.stage_model: need >= 2 points";
  for i = 1 to n - 1 do
    if pts.(i).delay <= pts.(i - 1).delay then
      invalid_arg "Balance.stage_model: delays not strictly increasing";
    if pts.(i).area >= pts.(i - 1).area then
      invalid_arg "Balance.stage_model: area not strictly decreasing"
  done;
  { model_name = name; pts = Array.copy pts }

let name m = m.model_name
let points m = Array.copy m.pts

let delay_bounds m =
  (m.pts.(0).delay, m.pts.(Array.length m.pts - 1).delay)

(* Locate the segment containing [delay] and its interpolation weight;
   clamps outside the sampled range. *)
let locate m delay =
  let n = Array.length m.pts in
  if delay <= m.pts.(0).delay then (0, 0.0)
  else if delay >= m.pts.(n - 1).delay then (n - 2, 1.0)
  else begin
    let rec bisect lo hi =
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if m.pts.(mid).delay <= delay then bisect mid hi else bisect lo mid
    in
    let i = bisect 0 (n - 1) in
    let d0 = m.pts.(i).delay and d1 = m.pts.(i + 1).delay in
    (i, (delay -. d0) /. (d1 -. d0))
  end

let lerp a b w = a +. ((b -. a) *. w)

let area_at m ~delay =
  let i, w = locate m delay in
  lerp m.pts.(i).area m.pts.(i + 1).area w

let decomposed_at m ~delay =
  let i, w = locate m delay in
  let a = m.pts.(i).decomposed and b = m.pts.(i + 1).decomposed in
  Gd.make
    ~nominal:(lerp a.Gd.nominal b.Gd.nominal w)
    ~sigma_inter:(lerp a.Gd.sigma_inter b.Gd.sigma_inter w)
    ~sigma_sys:(lerp a.Gd.sigma_sys b.Gd.sigma_sys w)
    ~sigma_rand:(lerp a.Gd.sigma_rand b.Gd.sigma_rand w)

let delay_at_area m ~area =
  let n = Array.length m.pts in
  if area >= m.pts.(0).area then m.pts.(0).delay
  else if area <= m.pts.(n - 1).area then m.pts.(n - 1).delay
  else begin
    (* Areas are strictly decreasing with delay. *)
    let rec bisect lo hi =
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if m.pts.(mid).area >= area then bisect mid hi else bisect lo mid
    in
    let i = bisect 0 (n - 1) in
    let a0 = m.pts.(i).area and a1 = m.pts.(i + 1).area in
    let w = (a0 -. area) /. (a0 -. a1) in
    lerp m.pts.(i).delay m.pts.(i + 1).delay w
  end

let ri m ~delay =
  let lo, hi = delay_bounds m in
  let h = (hi -. lo) /. 50.0 in
  let d0 = Float.max lo (delay -. h) and d1 = Float.min hi (delay +. h) in
  let a0 = area_at m ~delay:d0 and a1 = area_at m ~delay:d1 in
  let slope = (a1 -. a0) /. (d1 -. d0) in
  let a = area_at m ~delay in
  if a <= 0.0 then invalid_arg "Balance.ri: non-positive area";
  -.slope *. delay /. a

let pipeline_of ?corr_length ?(pitch = 1.0) models ~delays =
  let n = Array.length models in
  if Array.length delays <> n then
    invalid_arg "Balance.pipeline_of: delays length mismatch";
  let positions = Spv_process.Spatial.row_positions ~n ~pitch in
  let stages =
    Array.mapi
      (fun i m ->
        Stage.make ~name:m.model_name ~position:positions.(i)
          (decomposed_at m ~delay:delays.(i)))
      models
  in
  Pipeline.of_stages ?corr_length stages

let total_area models ~delays =
  if Array.length models <> Array.length delays then
    invalid_arg "Balance.total_area: length mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i m -> acc := !acc +. area_at m ~delay:delays.(i)) models;
  !acc

let balanced_delays models ~total_area:budget =
  if Array.length models = 0 then invalid_arg "Balance.balanced_delays: empty";
  let lo =
    Array.fold_left (fun acc m -> Float.max acc (fst (delay_bounds m))) neg_infinity models
  in
  let hi =
    Array.fold_left (fun acc m -> Float.min acc (snd (delay_bounds m))) infinity models
  in
  if lo >= hi then
    invalid_arg "Balance.balanced_delays: stage delay ranges do not overlap";
  let area_of d =
    Array.fold_left (fun acc m -> acc +. area_at m ~delay:d) 0.0 models
  in
  (* Area decreases with delay: the fastest common delay costs the most. *)
  if budget > area_of lo +. 1e-9 || budget < area_of hi -. 1e-9 then
    invalid_arg "Balance.balanced_delays: budget outside reachable range";
  let rec bisect lo hi iters =
    if iters = 0 then (lo +. hi) /. 2.0
    else
      let mid = (lo +. hi) /. 2.0 in
      if area_of mid > budget then bisect mid hi (iters - 1)
      else bisect lo mid (iters - 1)
  in
  let d = bisect lo hi 80 in
  Array.make (Array.length models) d

type solution = { delays : float array; area : float; yield : float }

let evaluate ?corr_length ?pitch models ~delays ~t_target =
  let pipeline = pipeline_of ?corr_length ?pitch models ~delays in
  {
    delays = Array.copy delays;
    area = total_area models ~delays;
    yield = Yield.clark_gaussian pipeline ~t_target;
  }

(* Constant-area pairwise exchange: moving [step] area units out of
   stage i (slowing it) and into stage j (speeding it).  [sense] = 1
   maximises yield, -1 minimises it. *)
let exchange_search ?corr_length ?pitch ?(sweeps = 8) ?(initial_step = 0.05)
    ~sense models ~total_area:budget ~t_target =
  let n = Array.length models in
  let delays = balanced_delays models ~total_area:budget in
  let score ds =
    let s = (evaluate ?corr_length ?pitch models ~delays:ds ~t_target).yield in
    sense *. s
  in
  let best = ref (Array.copy delays) in
  let best_score = ref (score delays) in
  let step = ref (initial_step *. budget /. float_of_int n) in
  for _sweep = 1 to sweeps do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then begin
          let trial = Array.copy !best in
          let area_i = area_at models.(i) ~delay:trial.(i) -. !step in
          let area_j = area_at models.(j) ~delay:trial.(j) +. !step in
          trial.(i) <- delay_at_area models.(i) ~area:area_i;
          trial.(j) <- delay_at_area models.(j) ~area:area_j;
          (* Clamping at curve ends can leak area; only accept
             area-neutral (or better) moves. *)
          if total_area models ~delays:trial <= budget +. 1e-9 then begin
            let s = score trial in
            if s > !best_score then begin
              best := trial;
              best_score := s
            end
          end
        end
      done
    done;
    step := !step /. 2.0
  done;
  evaluate ?corr_length ?pitch models ~delays:!best ~t_target

let optimise_constant_area ?corr_length ?pitch ?sweeps ?initial_step models
    ~total_area ~t_target =
  exchange_search ?corr_length ?pitch ?sweeps ?initial_step ~sense:1.0 models
    ~total_area ~t_target

let pessimise_constant_area ?corr_length ?pitch ?sweeps ?initial_step models
    ~total_area ~t_target =
  exchange_search ?corr_length ?pitch ?sweeps ?initial_step ~sense:(-1.0)
    models ~total_area ~t_target

let order_by_ri models ~delays =
  let n = Array.length models in
  if Array.length delays <> n then
    invalid_arg "Balance.order_by_ri: length mismatch";
  let idx = Array.init n (fun i -> i) in
  let r = Array.mapi (fun i m -> ri m ~delay:delays.(i)) models in
  Array.sort (fun i j -> compare r.(i) r.(j)) idx;
  idx
