(** Admissible (mu_i, sigma_i) design space of a stage under a target
    yield (Section 2.5, eqs. 10–13, Fig. 4).

    All bounds require [yield] in (0.5, 1) — a useful pipeline targets
    better-than-even yield, and the inverse CDF changes sign below
    0.5, which would flip the inequalities. *)

type point = { mu : float; sigma : float }

val mu_t_upper_bound : t_target:float -> yield:float -> sigma_t:float -> float
(** Eq. 10's right side: the largest admissible overall mean
    [mu_T <= T - sigma_T * Phi^-1(P_D)]; every stage mean must sit
    below it (Jensen). *)

val relaxed_sigma_bound : t_target:float -> yield:float -> mu:float -> float
(** Eq. 11: largest sigma_i admissible for a stage of mean [mu]
    assuming every other stage passes with probability 1:
    [(T - mu) / Phi^-1(P_D)].  Negative result means the mean alone
    already violates the bound. *)

val equality_sigma_bound :
  t_target:float -> yield:float -> n_stages:int -> mu:float -> float
(** Eq. 12: bound when all [n_stages] stages are independent with equal
    delay targets, i.e. each must reach yield [P_D^(1/Ns)]:
    [(T - mu) / Phi^-1(P_D^(1/Ns))]. *)

val realizable_sigma : mu_ref:float -> sigma_ref:float -> mu:float -> float
(** Eq. 13: along an inverter chain built from a reference inverter
    with (mu_ref, sigma_ref) under random variation,
    [mu = N_L * mu_ref] and [sigma = sqrt(N_L) * sigma_ref], hence
    [sigma(mu) = sigma_ref * sqrt(mu / mu_ref)]. *)

val inverter_reference :
  ?load:float -> ?random_only:bool -> Spv_process.Tech.t -> size:float -> point
(** (mu, sigma) of one inverter of drive [size] driving a fixed [load]
    (default 4.0 cap units).  [random_only] (default true, matching the
    paper's eq. 13 derivation) keeps only the random component in
    sigma. *)

type curves = {
  mus : float array;
  relaxed : float array;  (** eq. 11 sigma bound per mu *)
  equality : (int * float array) list;  (** eq. 12, per stage count *)
  realizable_min : float array;
      (** eq. 13 from the minimum-size inverter (upper realizable curve) *)
  realizable_max : float array;
      (** eq. 13 from the maximum-size inverter (lower realizable curve) *)
  mu_min : float;  (** smallest realizable stage mean (one max-size inverter) *)
  sigma_min : float;  (** sigma floor at mu_min *)
}

val curves :
  ?tech:Spv_process.Tech.t -> ?min_size:float -> ?max_size:float ->
  ?n_points:int -> t_target:float -> yield:float -> stage_counts:int list ->
  unit -> curves
(** All Fig. 4 curves over a mu grid spanning (0, T_target]. *)

val admissible :
  t_target:float -> yield:float -> n_stages:int -> point -> bool
(** Point satisfies the eq. 12 equality bound for [n_stages]. *)

val realizable :
  ?tech:Spv_process.Tech.t -> ?min_size:float -> ?max_size:float -> point ->
  bool
(** Point lies between the two eq. 13 inverter-chain curves and above
    the single-inverter minimum. *)
