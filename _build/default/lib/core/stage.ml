module Gd = Spv_process.Gate_delay

type t = {
  name : string;
  delay : Gd.t;
  position : Spv_process.Spatial.position;
}

let origin = Spv_process.Spatial.position ~x:0.0 ~y:0.0

let make ?(name = "stage") ?(position = origin) delay =
  { name; delay; position }

let of_moments ?name ?position ~mu ~sigma () =
  if sigma < 0.0 then invalid_arg "Stage.of_moments: sigma < 0";
  make ?name ?position
    (Gd.make ~nominal:mu ~sigma_inter:0.0 ~sigma_sys:0.0 ~sigma_rand:sigma)

type timing_method = Path_based | Block_based

let of_circuit ?output_load ?ff ?position ?(timing = Path_based) tech net =
  let total =
    match timing with
    | Path_based ->
        (Spv_circuit.Ssta.analyse_stage ?output_load ?ff tech net)
          .Spv_circuit.Ssta.total
    | Block_based -> Spv_circuit.Block_ssta.stage_delay ?output_load ?ff tech net
  in
  make ~name:(Spv_circuit.Netlist.name net) ?position total

let gaussian t = Gd.to_gaussian t.delay
let mu t = t.delay.Gd.nominal
let sigma t = Gd.total_sigma t.delay

let variability t = Gd.variability t.delay

let scale_delay t k = { t with delay = Gd.scale t.delay k }

let yield_alone t ~t_target = Spv_stats.Gaussian.cdf (gaussian t) t_target

let pp fmt t =
  Format.fprintf fmt "%s: %a @@(%g,%g)" t.name Gd.pp t.delay
    t.position.Spv_process.Spatial.x t.position.Spv_process.Spatial.y
