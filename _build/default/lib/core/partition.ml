type candidate = {
  n_stages : int;
  depth : int;
  pipeline : Pipeline.t;
  nominal_clock : float;
  statistical_clock : float;
  throughput : float;
  latency : float;
}

let candidates ?(size = 1.0) ?(pitch = 1.0) ?ff tech ~total_levels ~yield
    ~stage_counts =
  if not (yield > 0.0 && yield < 1.0) then
    invalid_arg "Partition.candidates: yield outside (0,1)";
  let ff =
    match ff with Some ff -> ff | None -> Spv_process.Flipflop.default tech
  in
  Array.map
    (fun n_stages ->
      if n_stages <= 0 || total_levels mod n_stages <> 0 then
        invalid_arg
          (Printf.sprintf "Partition.candidates: %d does not divide %d"
             n_stages total_levels);
      let depth = total_levels / n_stages in
      let nets =
        Spv_circuit.Generators.inverter_chain_pipeline ~size ~stages:n_stages
          ~depth ()
      in
      let pipeline = Pipeline.of_circuits ~pitch ~ff tech nets in
      let nominal_clock = Pipeline.nominal_delay pipeline in
      let statistical_clock = Yield.target_delay_for_yield pipeline ~yield in
      {
        n_stages;
        depth;
        pipeline;
        nominal_clock;
        statistical_clock;
        throughput = 1.0 /. statistical_clock;
        latency = float_of_int n_stages *. statistical_clock;
      })
    stage_counts

let all_divisor_candidates ?size ?pitch ?ff ?(min_stages = 1) ?max_stages tech
    ~total_levels ~yield =
  let max_stages = Option.value max_stages ~default:total_levels in
  let stage_counts =
    Variability.divisors total_levels
    |> List.filter (fun d -> d >= min_stages && d <= max_stages)
    |> Array.of_list
  in
  candidates ?size ?pitch ?ff tech ~total_levels ~yield ~stage_counts

let best_by metric cands =
  if Array.length cands = 0 then invalid_arg "Partition: empty candidates";
  Array.fold_left
    (fun best c ->
      if
        metric c > metric best
        || (metric c = metric best && c.n_stages < best.n_stages)
      then c
      else best)
    cands.(0) cands

let best_throughput cands = best_by (fun c -> c.throughput) cands

let best_nominal_throughput cands =
  best_by (fun c -> 1.0 /. c.nominal_clock) cands

let throughput_gain_over_nominal_choice cands =
  let statistical = best_throughput cands in
  let nominal = best_nominal_throughput cands in
  (statistical.throughput -. nominal.throughput) /. nominal.throughput
