(** Pipeline partitioning: choosing the number of stages under
    variation.

    Section 3.1 of the paper analyses how the sigma/mu of the pipeline
    delay moves with the stage count; this module turns the analysis
    into the design decision it implies.  For a logic budget of
    [total_levels] gate levels cut into equal stages (plus a flip-flop
    per stage), it evaluates every candidate stage count and reports
    the clock period that meets a yield target, the resulting
    throughput, and the latency.

    Deterministically, more stages always shortens the clock (until
    flip-flop overhead dominates); under intra-die variation the
    statistical clock penalises deep pipelines further (eq. 12's
    per-stage budget tightens with N while shallow stages lose the
    depth-averaging of random variation), so the yield-aware optimum
    sits at fewer stages — and moves back up when inter-die variation
    dominates. *)

type candidate = {
  n_stages : int;
  depth : int;  (** logic levels per stage *)
  pipeline : Pipeline.t;
  nominal_clock : float;  (** deterministic designer's clock: max stage nominal *)
  statistical_clock : float;  (** smallest T with the target yield *)
  throughput : float;  (** 1 / statistical_clock, per ps *)
  latency : float;  (** n_stages * statistical_clock *)
}

val candidates :
  ?size:float -> ?pitch:float -> ?ff:Spv_process.Flipflop.t ->
  Spv_process.Tech.t -> total_levels:int -> yield:float ->
  stage_counts:int array -> candidate array
(** Evaluate each stage count (each must divide [total_levels]).
    [ff] defaults to the technology's default flip-flop.  [yield] in
    (0,1). *)

val all_divisor_candidates :
  ?size:float -> ?pitch:float -> ?ff:Spv_process.Flipflop.t ->
  ?min_stages:int -> ?max_stages:int -> Spv_process.Tech.t ->
  total_levels:int -> yield:float -> candidate array
(** [candidates] over every divisor of [total_levels] within
    [min_stages]..[max_stages] (defaults 1..total_levels). *)

val best_throughput : candidate array -> candidate
(** Candidate with the highest statistical throughput (ties: fewest
    stages). Requires a non-empty array. *)

val best_nominal_throughput : candidate array -> candidate
(** What a deterministic designer would pick — for comparing against
    {!best_throughput}. *)

val throughput_gain_over_nominal_choice : candidate array -> float
(** Relative throughput improvement from choosing the stage count with
    the statistical rather than the nominal clock: both candidates are
    evaluated at their {e statistical} clock.  >= 0 by construction. *)
