module G = Spv_stats.Gaussian

type model = { sigma_ps : float; corr_length : float }

let default_model (tech : Spv_process.Tech.t) =
  { sigma_ps = tech.Spv_process.Tech.tau;
    corr_length = tech.Spv_process.Tech.corr_length }

let check model =
  if model.sigma_ps < 0.0 then invalid_arg "Skew: negative sigma";
  if model.corr_length <= 0.0 then invalid_arg "Skew: non-positive corr length"

(* Endpoint correlation at a boundary distance of [k] stage pitches. *)
let rho model ~pitch k =
  exp (-.(float_of_int (abs k) *. pitch) /. model.corr_length)

(* ds_i = s_(i+1) - s_i;
   Cov(ds_i, ds_j) = sigma^2 (2 rho(|i-j|) - rho(|i-j+1|) - rho(|i-j-1|)). *)
let delta_covariance model ~pitch i j =
  check model;
  if pitch < 0.0 then invalid_arg "Skew.delta_covariance: negative pitch";
  let d = i - j in
  let s2 = model.sigma_ps *. model.sigma_ps in
  s2
  *. ((2.0 *. rho model ~pitch d)
     -. rho model ~pitch (d + 1)
     -. rho model ~pitch (d - 1))

let apply ?(pitch = 1.0) pipeline model =
  check model;
  let n = Pipeline.n_stages pipeline in
  let gs = Pipeline.stage_gaussians pipeline in
  let corr = Pipeline.correlation pipeline in
  let sigmas' =
    Array.mapi
      (fun i g ->
        sqrt (G.variance g +. delta_covariance model ~pitch i i))
      gs
  in
  let stages' =
    Array.mapi
      (fun i g ->
        let original = Pipeline.stage pipeline i in
        Stage.of_moments ~name:original.Stage.name
          ~position:original.Stage.position ~mu:(G.mu g) ~sigma:sigmas'.(i) ())
      gs
  in
  let corr' =
    Spv_stats.Correlation.of_function ~n (fun i j ->
        let cov_stage =
          Spv_stats.Correlation.get corr i j *. G.sigma gs.(i) *. G.sigma gs.(j)
        in
        let cov = cov_stage +. delta_covariance model ~pitch i j in
        let denom = sigmas'.(i) *. sigmas'.(j) in
        if denom = 0.0 then 0.0
        else Float.max (-1.0) (Float.min 1.0 (cov /. denom)))
  in
  Pipeline.make stages' ~corr:corr'

let yield_penalty ?pitch pipeline model ~t_target =
  let before = Yield.clark_gaussian pipeline ~t_target in
  let after = Yield.clark_gaussian (apply ?pitch pipeline model) ~t_target in
  before -. after
