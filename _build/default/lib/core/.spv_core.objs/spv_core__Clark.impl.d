lib/core/clark.ml: Array Float Spv_stats
