lib/core/variance_budget.mli: Format Pipeline
