lib/core/balance.mli: Pipeline Spv_process
