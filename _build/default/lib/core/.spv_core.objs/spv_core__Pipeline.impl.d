lib/core/pipeline.ml: Array Clark Float Format Spv_process Spv_stats Stage
