lib/core/balance.ml: Array Float Pipeline Spv_process Stage Yield
