lib/core/design_space.ml: Array Float List Spv_circuit Spv_process Spv_stats
