lib/core/variance_budget.ml: Float Format Pipeline Spv_process Spv_stats Stage
