lib/core/yield.mli: Clark Pipeline Spv_stats
