lib/core/variability.ml: Array Clark List Pipeline Printf Spv_circuit Spv_stats Stage
