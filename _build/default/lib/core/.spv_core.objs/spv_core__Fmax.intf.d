lib/core/fmax.mli: Pipeline Spv_stats
