lib/core/pipeline.mli: Clark Format Spv_circuit Spv_process Spv_stats Stage
