lib/core/adaptive.ml: Array Clark Float Pipeline Spv_circuit Spv_process Spv_stats Stage Yield
