lib/core/skew.mli: Pipeline Spv_process
