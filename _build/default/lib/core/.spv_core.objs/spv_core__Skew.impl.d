lib/core/skew.ml: Array Float Pipeline Spv_process Spv_stats Stage Yield
