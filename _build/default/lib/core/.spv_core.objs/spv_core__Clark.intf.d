lib/core/clark.mli: Spv_stats
