lib/core/stage.ml: Format Spv_circuit Spv_process Spv_stats
