lib/core/hold.ml: Array Clark List Option Spv_circuit Spv_process Spv_stats
