lib/core/design_space.mli: Spv_process
