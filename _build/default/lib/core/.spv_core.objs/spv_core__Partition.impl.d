lib/core/partition.ml: Array List Option Pipeline Printf Spv_circuit Spv_process Variability Yield
