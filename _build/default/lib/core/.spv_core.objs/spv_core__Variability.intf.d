lib/core/variability.mli: Spv_process Spv_stats
