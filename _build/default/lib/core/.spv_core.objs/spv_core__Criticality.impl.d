lib/core/criticality.ml: Array Float List Pipeline Spv_stats
