lib/core/hold.mli: Clark Spv_circuit Spv_process Spv_stats
