lib/core/stage.mli: Format Spv_circuit Spv_process Spv_stats
