lib/core/criticality.mli: Pipeline Spv_stats
