lib/core/fmax.ml: Array Float Pipeline Spv_stats Yield
