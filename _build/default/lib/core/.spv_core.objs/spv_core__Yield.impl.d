lib/core/yield.ml: Array Float Pipeline Spv_stats
