lib/core/partition.mli: Pipeline Spv_process
