lib/core/adaptive.mli: Pipeline Spv_process Spv_stats
