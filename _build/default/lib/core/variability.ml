module G = Spv_stats.Gaussian

let stage_sigma_mu_vs_depth ?(size = 1.0) ?ff tech ~depths =
  Array.map
    (fun depth ->
      let net = Spv_circuit.Generators.inverter_chain ~size ~depth () in
      let stage = Stage.of_circuit ?ff tech net in
      Stage.variability stage)
    depths

let pipeline_sigma_mu_vs_stages ~stage ~rho ~stage_counts =
  Array.map
    (fun n ->
      if n <= 0 then invalid_arg "Variability: stage count <= 0";
      let gs = Array.make n stage in
      let corr = Spv_stats.Correlation.uniform ~n ~rho in
      let tp = Clark.max_n gs ~corr in
      G.sigma tp /. G.mu tp)
    stage_counts

let fixed_total_levels ?(size = 1.0) ?ff ?(pitch = 1.0) tech ~total_levels
    ~stage_counts =
  Array.map
    (fun n_stages ->
      if n_stages <= 0 || total_levels mod n_stages <> 0 then
        invalid_arg
          (Printf.sprintf
             "Variability.fixed_total_levels: %d does not divide %d" n_stages
             total_levels);
      let depth = total_levels / n_stages in
      let nets =
        Spv_circuit.Generators.inverter_chain_pipeline ~size ~stages:n_stages
          ~depth ()
      in
      let pipeline = Pipeline.of_circuits ~pitch ?ff tech nets in
      let tp = Pipeline.delay_distribution pipeline in
      G.sigma tp /. G.mu tp)
    stage_counts

let normalise values =
  if Array.length values = 0 then invalid_arg "Variability.normalise: empty";
  if values.(0) = 0.0 then invalid_arg "Variability.normalise: zero first element";
  Array.map (fun v -> v /. values.(0)) values

let divisors n =
  if n <= 0 then invalid_arg "Variability.divisors: n <= 0";
  let rec go d acc =
    if d > n then List.rev acc
    else go (d + 1) (if n mod d = 0 then d :: acc else acc)
  in
  go 1 []
