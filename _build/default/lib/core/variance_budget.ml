module G = Spv_stats.Gaussian
module Gd = Spv_process.Gate_delay

type t = {
  total_variance : float;
  inter : float;
  systematic : float;
  random : float;
  interaction : float;
}

type component = Inter | Systematic | Random

let zero_component comp (d : Gd.t) =
  match comp with
  | Inter ->
      Gd.make ~nominal:d.Gd.nominal ~sigma_inter:0.0 ~sigma_sys:d.Gd.sigma_sys
        ~sigma_rand:d.Gd.sigma_rand
  | Systematic ->
      Gd.make ~nominal:d.Gd.nominal ~sigma_inter:d.Gd.sigma_inter
        ~sigma_sys:0.0 ~sigma_rand:d.Gd.sigma_rand
  | Random ->
      Gd.make ~nominal:d.Gd.nominal ~sigma_inter:d.Gd.sigma_inter
        ~sigma_sys:d.Gd.sigma_sys ~sigma_rand:0.0

(* map_stages preserves the pipeline's correlation semantics: derived
   pipelines re-derive with their own correlation length, explicit
   matrices are kept (where zeroing shared components is only exact for
   moments-only stages, whose shared sigmas are zero anyway). *)
let variance_without pipeline comp =
  let p =
    Pipeline.map_stages pipeline (fun s ->
        Stage.make ~name:s.Stage.name ~position:s.Stage.position
          (zero_component comp s.Stage.delay))
  in
  G.variance (Pipeline.delay_distribution p)

let of_pipeline pipeline =
  let total_variance = G.variance (Pipeline.delay_distribution pipeline) in
  let contribution comp =
    Float.max 0.0 (total_variance -. variance_without pipeline comp)
  in
  let inter = contribution Inter in
  let systematic = contribution Systematic in
  let random = contribution Random in
  {
    total_variance;
    inter;
    systematic;
    random;
    interaction = total_variance -. (inter +. systematic +. random);
  }

let fractions t =
  let attributed = t.inter +. t.systematic +. t.random in
  if attributed <= 0.0 then (0.0, 0.0, 0.0)
  else (t.inter /. attributed, t.systematic /. attributed, t.random /. attributed)

let pp fmt t =
  let i, s, r = fractions t in
  Format.fprintf fmt
    "sigma_T^2 = %.4g (inter %.0f%%, systematic %.0f%%, random %.0f%%, \
     interaction %.2g)"
    t.total_variance (100.0 *. i) (100.0 *. s) (100.0 *. r) t.interaction
