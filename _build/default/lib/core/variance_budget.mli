(** Variance budgeting: which variation source owns the pipeline sigma.

    The decomposed stage model carries inter-die, systematic and random
    sigmas separately, but the pipeline max mixes them nonlinearly, so
    the attribution is computed by {e leave-one-out}: the contribution
    of a component is the drop in the pipeline delay variance when that
    component is zeroed in every stage.  (Attributions need not sum
    exactly to the total variance — the interaction remainder is
    reported explicitly.)

    The classic use: before spending area on yield, know whether sigma
    is even sizeable-away (random averages with depth, inter-die only
    yields to post-silicon tuning like {!Adaptive}). *)

type t = {
  total_variance : float;
  inter : float;  (** leave-one-out share of the inter-die component *)
  systematic : float;
  random : float;
  interaction : float;  (** total - (inter + systematic + random) *)
}

val of_pipeline : Pipeline.t -> t
(** Requires decomposed stages ({!Pipeline.of_stages} /
    {!Pipeline.of_circuits}); a moments-only pipeline reports all of
    its variance as random. *)

val fractions : t -> float * float * float
(** (inter, systematic, random) shares of the attributed variance
    (normalised to exclude the interaction term); all in [0,1],
    summing to 1 when any variance exists. *)

val pp : Format.formatter -> t -> unit
