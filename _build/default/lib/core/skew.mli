(** Clock skew in the statistical pipeline model.

    Eq. 1 assumes ideal clocking.  With a skewed clock the stage-i
    constraint becomes
    [T >= SD_i + (s_(i+1) - s_i)] where [s_k] is the clock arrival at
    boundary k — so the pipeline delay is the max of {e skew-adjusted}
    stage delays.  Modelling the [s_k] as zero-mean Gaussians with
    exponentially decaying spatial correlation along the stage row:

    - each stage's variance grows by
      [var(ds) = 2 sigma_s^2 (1 - rho(pitch))];
    - adjacent stages become {e negatively} correlated through the
      shared boundary (the same clock edge captures stage i and
      launches stage i+1), which the plain stage-delay model cannot
      express — skew is not just extra noise.

    Extension beyond the paper; exact within the jointly-Gaussian
    model. *)

type model = {
  sigma_ps : float;  (** skew sigma per clock endpoint, ps *)
  corr_length : float;  (** spatial correlation length of the clock
                            arrivals, die units *)
}

val default_model : Spv_process.Tech.t -> model
(** sigma = tech tau (5 ps at the default node), correlation length
    from the technology. *)

val delta_covariance : model -> pitch:float -> int -> int -> float
(** Cov(ds_i, ds_j) of the boundary-difference terms for stages [i],
    [j] at the given stage pitch (exact under the endpoint model). *)

val apply : ?pitch:float -> Pipeline.t -> model -> Pipeline.t
(** Pipeline whose stage delays are skew-adjusted: same means, inflated
    sigmas, and a correlation matrix combining the original stage
    correlations with the skew-difference covariances.  The result
    carries an explicit correlation matrix (the component decomposition
    cannot express the negative neighbour terms). *)

val yield_penalty :
  ?pitch:float -> Pipeline.t -> model -> t_target:float -> float
(** [yield without skew - yield with skew] at a target (>= 0 in
    practice at above-median targets). *)
