(** Maximum clock frequency (FMAX) distribution and speed binning.

    The paper's opening concern — the pipeline's operating frequency
    under variation — phrased the way its reference [1] (Bowman et al.,
    JSSC 2002) does: the distribution of [f_max = 1 / T_P] and the
    fraction of dies landing in each frequency bin.  Extension beyond
    the paper's own figures; built directly on {!Pipeline} and
    {!Yield}. *)

val mean_std : Pipeline.t -> float * float
(** Second-order delta-method moments of [1 / T_P] (frequency in 1/ps
    when delays are in ps):
    [E f ~ (1/mu)(1 + (sigma/mu)^2)], [sd f ~ sigma / mu^2]. *)

val quantile : Pipeline.t -> p:float -> float
(** Exact under the Gaussian-T_P model: the p-quantile of frequency is
    the (1-p)-quantile of delay, inverted.  Requires [p] in (0,1). *)

val cdf : Pipeline.t -> float -> float
(** Pr{f_max <= f} = Pr{T_P >= 1/f}. Requires [f > 0]. *)

type bin = {
  f_lo : float;  (** inclusive lower frequency edge; 0 = "too slow" *)
  f_hi : float;  (** exclusive upper edge; infinity for the top bin *)
  fraction : float;
}

val bin_fractions : Pipeline.t -> edges:float array -> bin array
(** Speed binning: [edges] are strictly increasing positive bin
    boundaries; returns |edges|+1 bins covering (0, inf) whose
    fractions sum to 1.  A die in bin i can be sold at any frequency
    below its measured f_max. *)

val expected_price : Pipeline.t -> edges:float array -> prices:float array -> float
(** Revenue-weighted binning: [prices] has one entry per bin (length
    |edges|+1, slowest bin first).  The classic argument for why sigma
    reduction is worth area. *)

val mc_frequencies :
  Pipeline.t -> Spv_stats.Rng.t -> n:int -> float array
(** Monte-Carlo f_max samples (1 / joint delay draw). *)
