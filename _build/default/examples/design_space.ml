(* Exploring the per-stage (mu, sigma) design space (Section 2.5).

   Given a clock-period target and a yield target, which stage-delay
   distributions are even admissible?  And which of those can an
   inverter chain in this technology actually realise?  This example
   prints the Fig. 4 bounds and classifies a few candidate stages.

   Run with:  dune exec examples/design_space.exe *)

module Ds = Spv_core.Design_space

let () =
  let tech = Spv_process.Tech.bptm70 in
  let t_target = 120.0 in
  let yield = 0.85 in
  Printf.printf "Target: T = %.0f ps at %.0f%% yield\n\n" t_target
    (100.0 *. yield);

  (* Eq. 10: an upper bound for the overall pipeline mean given its
     sigma. *)
  List.iter
    (fun sigma_t ->
      Printf.printf
        "  if sigma_T = %4.1f ps then mu_T must be <= %6.1f ps (eq. 10)\n"
        sigma_t
        (Ds.mu_t_upper_bound ~t_target ~yield ~sigma_t))
    [ 2.0; 5.0; 10.0 ];

  (* Eq. 12: per-stage sigma budget shrinks with the stage count. *)
  Printf.printf "\nPer-stage sigma budget at mu = 100 ps (eq. 12):\n";
  List.iter
    (fun n ->
      Printf.printf "  %2d stages -> sigma_i <= %5.2f ps\n" n
        (Ds.equality_sigma_bound ~t_target ~yield ~n_stages:n ~mu:100.0))
    [ 2; 4; 8; 16 ];

  (* Eq. 13: what an inverter chain can realise. *)
  let p_min = Ds.inverter_reference tech ~size:1.0 in
  let p_max = Ds.inverter_reference tech ~size:16.0 in
  Printf.printf
    "\nInverter references: min-size (mu %.1f, sigma %.2f), max-size \
     (mu %.1f, sigma %.3f)\n"
    p_min.Ds.mu p_min.Ds.sigma p_max.Ds.mu p_max.Ds.sigma;

  Printf.printf "\nClassifying candidate stages (mu, sigma):\n";
  List.iter
    (fun (mu, sigma) ->
      let p = { Ds.mu; sigma } in
      let adm = Ds.admissible ~t_target ~yield ~n_stages:4 p in
      let real = Ds.realizable ~tech p in
      Printf.printf
        "  (%5.1f, %5.2f)  admissible(Ns=4): %-5b  realizable: %b\n" mu sigma
        adm real)
    [ (100.0, 2.0); (100.0, 25.0); (60.0, 1.0); (60.0, 0.2); (119.0, 0.5) ];

  Printf.printf "\nFull Fig. 4 curves: dune exec bench/main.exe -- fig4\n"
