(* Quickstart: the paper's Fig. 1 five-stage pipeline (IF ID EX MEM WB).

   Deterministically the clock period is the slowest stage (6 ns); under
   variation every stage delay is a Gaussian and the pipeline delay is
   their max, so both the expected period and the yield at any target
   change.  This example builds that model in a few lines of the public
   API and prints the statistical picture next to the deterministic one.

   Run with:  dune exec examples/quickstart.exe *)

module G = Spv_stats.Gaussian

let () =
  (* Fig. 1's stage delays, in ps: IF=4000, ID=5000, EX=6000, MEM=5000,
     WB=3000, each with 5% sigma. *)
  let names = [| "IF"; "ID"; "EX"; "MEM"; "WB" |] in
  let nominal = [| 4000.0; 5000.0; 6000.0; 5000.0; 3000.0 |] in
  let stages =
    Array.init 5 (fun i ->
        Spv_core.Stage.of_moments ~name:names.(i) ~mu:nominal.(i)
          ~sigma:(0.05 *. nominal.(i))
          ())
  in
  (* Moderate inter-stage correlation, as inter-die variation induces. *)
  let corr = Spv_stats.Correlation.uniform ~n:5 ~rho:0.3 in
  let pipeline = Spv_core.Pipeline.make stages ~corr in

  Printf.printf "Deterministic view (Fig. 1a):\n";
  Printf.printf "  clock period = max stage delay = %.0f ps\n"
    (Spv_core.Pipeline.nominal_delay pipeline);
  Printf.printf "  throughput   = 1 job / %.0f ps\n\n"
    (Spv_core.Pipeline.nominal_delay pipeline);

  let tp = Spv_core.Pipeline.delay_distribution pipeline in
  Printf.printf "Statistical view (Fig. 1b):\n";
  Printf.printf "  pipeline delay ~ N(mu = %.0f ps, sigma = %.0f ps)\n"
    (G.mu tp) (G.sigma tp);
  Printf.printf "  (Jensen: mu_T >= max_i mu_i = %.0f ps)\n\n"
    (Spv_core.Pipeline.jensen_lower_bound pipeline);

  Printf.printf "Yield vs clock-period target:\n";
  List.iter
    (fun t_target ->
      let y = Spv_core.Yield.clark_gaussian pipeline ~t_target in
      Printf.printf "  T = %5.0f ps  ->  yield = %5.1f%%\n" t_target
        (100.0 *. y))
    [ 6000.0; 6200.0; 6400.0; 6600.0 ];

  let t80 = Spv_core.Yield.target_delay_for_yield pipeline ~yield:0.8 in
  Printf.printf "\nSmallest clock period with 80%% yield: %.0f ps\n" t80;

  (* Cross-check the analytic yield with Monte-Carlo. *)
  let rng = Spv_stats.Rng.create ~seed:1 in
  let mc = Spv_core.Yield.monte_carlo pipeline rng ~n:100000 ~t_target:t80 in
  Printf.printf "Monte-Carlo check at that period: %.1f%% (100k samples)\n"
    (100.0 *. mc)
