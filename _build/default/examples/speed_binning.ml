(* FMAX distribution, speed binning, and yield-aware pipelining depth.

   Two extensions built on the paper's model:

   1. The pipeline delay distribution induces an FMAX distribution (the
      paper's reference [1], Bowman et al.): we bin dies by measured
      frequency and price the bins.
   2. Choosing the number of pipeline stages with the statistical clock
      instead of the nominal one (Section 3.1 turned into a design
      rule).

   Run with:  dune exec examples/speed_binning.exe *)

module F = Spv_core.Fmax
module Partition = Spv_core.Partition

let ghz f_per_ps = 1000.0 *. f_per_ps (* 1/ps -> GHz *)

let () =
  let tech = Spv_process.Tech.bptm70 in

  (* A 10-stage, depth-12 pipeline. *)
  let nets = Spv_circuit.Generators.inverter_chain_pipeline ~stages:10 ~depth:12 () in
  let ff = Spv_process.Flipflop.default tech in
  let pipeline = Spv_core.Pipeline.of_circuits ~ff tech nets in

  let mean_f, std_f = F.mean_std pipeline in
  Printf.printf "FMAX ~ %.3f GHz mean, %.3f GHz sigma\n" (ghz mean_f) (ghz std_f);
  List.iter
    (fun p ->
      Printf.printf "  P%2.0f frequency: %.3f GHz\n" (100.0 *. p)
        (ghz (F.quantile pipeline ~p)))
    [ 0.05; 0.5; 0.95 ];

  (* Three speed bins around the median. *)
  let f_med = F.quantile pipeline ~p:0.5 in
  let edges = [| 0.97 *. f_med; 1.03 *. f_med |] in
  let bins = F.bin_fractions pipeline ~edges in
  Printf.printf "\nSpeed bins:\n";
  Array.iter
    (fun b ->
      let hi =
        if b.F.f_hi = infinity then "inf"
        else Printf.sprintf "%.3f" (ghz b.F.f_hi)
      in
      Printf.printf "  [%.3f, %s) GHz : %5.1f%% of dies\n" (ghz b.F.f_lo) hi
        (100.0 *. b.F.fraction))
    bins;
  let prices = [| 120.0; 180.0; 240.0 |] in
  Printf.printf "Expected selling price: $%.2f\n"
    (F.expected_price pipeline ~edges ~prices);

  (* Yield-aware pipelining depth for a 120-level logic budget: the
     statistical guardband (stat-clk / nominal) grows with the stage
     count when intra-die variation dominates (Section 3.1), and is
     flat when inter-die dominates. *)
  let survey label tech =
    Printf.printf "\n%s - pipelining 120 levels at 90%% yield:\n" label;
    Printf.printf "  %7s %6s %13s %13s %11s %10s\n" "stages" "depth"
      "nominal(ps)" "stat-clk(ps)" "thr (1/ns)" "guardband";
    let cands =
      Partition.all_divisor_candidates ~min_stages:2 ~max_stages:30 tech
        ~total_levels:120 ~yield:0.9
    in
    Array.iter
      (fun c ->
        Printf.printf "  %7d %6d %13.1f %13.1f %11.3f %9.1f%%\n"
          c.Partition.n_stages c.Partition.depth c.Partition.nominal_clock
          c.Partition.statistical_clock
          (1000.0 *. c.Partition.throughput)
          (100.0
          *. ((c.Partition.statistical_clock /. c.Partition.nominal_clock) -. 1.0)))
      cands;
    let best = Partition.best_throughput cands in
    Printf.printf
      "  best statistical throughput: %d stages at %.1f ps (guardband %.1f%%)\n"
      best.Partition.n_stages best.Partition.statistical_clock
      (100.0
      *. ((best.Partition.statistical_clock /. best.Partition.nominal_clock) -. 1.0));
    cands
  in
  let intra = Spv_process.Tech.with_inter_vth tech ~sigma_mv:0.0 in
  let intra = Spv_process.Tech.with_sys_vth intra ~sigma_mv:0.0 in
  let intra = { intra with Spv_process.Tech.sigma_leff_rel_inter = 0.0;
                           sigma_leff_rel_sys = 0.0 } in
  let intra_cands = survey "Intra-die (random) variation only" intra in
  let inter = Spv_process.Tech.with_random_vth tech ~sigma_mv:0.0 in
  let inter_cands = survey "Inter-die variation dominant" inter in
  let guardband_spread cands =
    let g c = (c.Partition.statistical_clock /. c.Partition.nominal_clock) -. 1.0 in
    g cands.(Array.length cands - 1) /. g cands.(0)
  in
  Printf.printf
    "\nDeep pipelining inflates the intra-die guardband %.1fx (first vs last\n\
     row) but the inter-die guardband only %.1fx: exactly the paper's\n\
     Section 3.1 asymmetry, priced in clock periods.\n"
    (guardband_spread intra_cands) (guardband_spread inter_cands)
