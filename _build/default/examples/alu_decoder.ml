(* Balanced vs unbalanced pipeline design (the paper's Section 3.2).

   Builds the 3-stage ALU-decoder pipeline of Fig. 6 at the gate level,
   extracts each stage's area-vs-delay curve with the statistical
   sizer, and shows that deliberately unbalancing the stage delays at
   CONSTANT total area improves yield — the paper's central design
   observation.

   Run with:  dune exec examples/alu_decoder.exe *)

module Balance = Spv_core.Balance

let () =
  let tech = Spv_process.Tech.bptm70 in
  let ff = Spv_process.Flipflop.default tech in
  let yield_target = 0.8 in
  let z =
    Spv_stats.Special.big_phi_inv
      (Spv_core.Yield.per_stage_yield_target ~yield:yield_target ~n_stages:3)
  in
  Printf.printf "Per-stage yield budget: %.2f%% (z = %.3f)\n\n"
    (100.0 *. Spv_core.Yield.per_stage_yield_target ~yield:yield_target ~n_stages:3)
    z;

  let nets = Spv_circuit.Generators.alu_decoder_stages ~bits:8 in
  Array.iter
    (fun net ->
      Printf.printf "  stage %-10s %4d gates, depth %2d\n"
        (Spv_circuit.Netlist.name net)
        (Spv_circuit.Netlist.n_gates net)
        (Spv_circuit.Topo.depth net))
    nets;

  (* Area-delay curve per stage (each point is one run of the
     Lagrangian sizer at a different delay target). *)
  let models =
    Array.map
      (fun net -> Spv_sizing.Area_delay.stage_model ~ff ~n_points:9 tech net ~z)
      nets
  in
  Printf.printf "\nArea-delay trade-off (eq. 14 slope R_i at mid-curve):\n";
  Array.iter
    (fun m ->
      let lo, hi = Balance.delay_bounds m in
      let mid = (lo +. hi) /. 2.0 in
      Printf.printf "  %-10s delay range [%.0f, %.0f] ps, R = %.2f\n"
        (Balance.name m) lo hi (Balance.ri m ~delay:mid))
    models;

  (* Balanced design: equal stage delays; tune the common delay so the
     pipeline achieves exactly the 80% target. *)
  let lo =
    Array.fold_left (fun acc m -> Float.max acc (fst (Balance.delay_bounds m)))
      neg_infinity models
  in
  let hi =
    Array.fold_left (fun acc m -> Float.min acc (snd (Balance.delay_bounds m)))
      infinity models
  in
  (* Put the balanced design a quarter of the way into the common
     range and set the clock so it achieves the 80% target exactly —
     guaranteeing the target is feasible. *)
  let d_bal = lo +. (0.25 *. (hi -. lo)) in
  let t_target =
    Spv_core.Yield.target_delay_for_yield
      (Balance.pipeline_of models ~delays:(Array.make 3 d_bal))
      ~yield:yield_target
  in
  let balanced =
    Balance.evaluate models ~delays:(Array.make 3 d_bal) ~t_target
  in
  Printf.printf
    "\nBalanced design:   delays = [%.0f; %.0f; %.0f] ps, area = %.0f, \
     yield = %.1f%%\n"
    balanced.Balance.delays.(0) balanced.Balance.delays.(1)
    balanced.Balance.delays.(2) balanced.Balance.area
    (100.0 *. balanced.Balance.yield);

  let best =
    Balance.optimise_constant_area models ~total_area:balanced.Balance.area
      ~t_target
  in
  Printf.printf
    "Unbalanced (best): delays = [%.0f; %.0f; %.0f] ps, area = %.0f, \
     yield = %.1f%%\n"
    best.Balance.delays.(0) best.Balance.delays.(1) best.Balance.delays.(2)
    best.Balance.area
    (100.0 *. best.Balance.yield);
  Printf.printf
    "\n=> same area, +%.1f yield points from deliberate imbalance.\n"
    (100.0 *. (best.Balance.yield -. balanced.Balance.yield))
