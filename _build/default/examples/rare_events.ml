(* Estimating deep-tail yield loss, and buying it back after silicon.

   At aggressive clock targets the failure probability is so small that
   plain Monte-Carlo never sees a failing die.  This example compares
   the estimators the library provides (plain MC, Latin-hypercube MC,
   mixture importance sampling, the Clark analytic), then shows how
   adaptive body bias recovers yield post-silicon and what it costs in
   leakage.

   Run with:  dune exec examples/rare_events.exe *)

module Y = Spv_core.Yield
module A = Spv_core.Adaptive
module Rng = Spv_stats.Rng

let () =
  let tech = Spv_process.Tech.bptm70 in
  let ff = Spv_process.Flipflop.default tech in
  let nets = Spv_circuit.Generators.inverter_chain_pipeline ~stages:8 ~depth:10 () in
  let pipeline = Spv_core.Pipeline.of_circuits ~ff tech nets in
  let tp = Spv_core.Pipeline.delay_distribution pipeline in
  Printf.printf "pipeline delay ~ N(%.1f, %.2f) ps\n"
    (Spv_stats.Gaussian.mu tp) (Spv_stats.Gaussian.sigma tp);

  Printf.printf
    "\nYield-loss estimates (40k samples each; failure = delay > T):\n";
  Printf.printf "  %10s %14s %14s %14s %14s\n" "T (ps)" "analytic" "plain MC"
    "LHS MC" "importance";
  List.iter
    (fun k ->
      let t_target =
        Spv_stats.Gaussian.mu tp +. (k *. Spv_stats.Gaussian.sigma tp)
      in
      let analytic = 1.0 -. Y.clark_gaussian pipeline ~t_target in
      let plain =
        1.0 -. Y.monte_carlo pipeline (Rng.create ~seed:1) ~n:40_000 ~t_target
      in
      let lhs =
        1.0 -. Y.monte_carlo_lhs pipeline (Rng.create ~seed:2) ~n:40_000 ~t_target
      in
      let is =
        (Y.failure_importance pipeline (Rng.create ~seed:3) ~n:40_000 ~t_target)
          .Spv_stats.Importance.probability
      in
      Printf.printf "  %10.1f %14.2e %14.2e %14.2e %14.2e\n" t_target analytic
        plain lhs is)
    [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Printf.printf
    "  (plain and LHS read 0.00e+00 beyond ~3.5 sigma: no failing die in\n\
    \   40k draws; importance sampling still resolves the tail.)\n";

  (* Post-silicon recovery. *)
  let t_target = Spv_core.Yield.target_delay_for_yield pipeline ~yield:0.7 in
  Printf.printf
    "\nAdaptive body bias at T = %.1f ps (70%% yield without ABB):\n" t_target;
  List.iter
    (fun range ->
      let policy = { A.range } in
      let y = A.yield_with_abb ~policy pipeline ~t_target in
      let leak = A.leakage_overhead ~policy tech pipeline in
      Printf.printf
        "  bias range +-%3.0f%%: yield %.1f%% (gain %+.1f pts), mean leakage x%.2f\n"
        (100.0 *. range) (100.0 *. y)
        (100.0 *. (y -. 0.7))
        leak)
    [ 0.0; 0.05; 0.10; 0.20 ]
