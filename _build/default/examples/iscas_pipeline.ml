(* Global pipeline optimisation (the paper's Fig. 9 algorithm) on the
   4-stage ISCAS85-scale pipeline used in Tables II and III.

   The conventional flow sizes each stage independently for the
   per-stage yield budget Y^(1/4); when the critical stage (c3540)
   cannot reach its budget the whole pipeline misses the target.  The
   global algorithm spends a little area in the cheap stages to buy the
   pipeline yield back.

   Run with:  dune exec examples/iscas_pipeline.exe *)

module GO = Spv_sizing.Global_opt
module L = Spv_sizing.Lagrangian

let print_design label (r : GO.result) ~base_area =
  Printf.printf "%s\n" label;
  Array.iteri
    (fun i net ->
      Printf.printf "  %-6s area %6.1f%%  standalone yield %5.1f%%\n"
        (Spv_circuit.Netlist.name net)
        (100.0 *. r.GO.stage_areas.(i) /. base_area)
        (100.0 *. r.GO.stage_yields.(i)))
    r.GO.nets;
  Printf.printf "  total  area %6.1f%%  pipeline yield   %5.1f%%\n\n"
    (100.0 *. r.GO.total_area /. base_area)
    (100.0 *. r.GO.pipeline_yield)

let () =
  (* Random-dominant variation: the per-stage yield-budget arithmetic
     of the paper assumes weakly correlated stages. *)
  let tech = Spv_process.Tech.bptm70 in
  let tech = Spv_process.Tech.with_inter_vth tech ~sigma_mv:10.0 in
  let tech = Spv_process.Tech.with_sys_vth tech ~sigma_mv:10.0 in
  let tech = Spv_process.Tech.with_random_vth tech ~sigma_mv:45.0 in
  let tech =
    { tech with Spv_process.Tech.sigma_leff_rel_inter = 0.01;
                sigma_leff_rel_sys = 0.005 }
  in
  let ff = Spv_process.Flipflop.default tech in
  let yield_target = 0.8 in
  let nets = Spv_circuit.Generators.iscas_pipeline () in
  Array.iter
    (fun net ->
      Printf.printf "  stage %-6s %4d gates, depth %2d\n"
        (Spv_circuit.Netlist.name net)
        (Spv_circuit.Netlist.n_gates net)
        (Spv_circuit.Topo.depth net))
    nets;

  let z =
    Spv_stats.Special.big_phi_inv
      (Spv_core.Yield.per_stage_yield_target ~yield:yield_target ~n_stages:4)
  in
  (* A clock target slightly below what the critical stage can reach:
     the conventional flow is doomed to miss the pipeline target. *)
  let t_target = 0.985 *. L.minimum_achievable_delay ~ff tech nets.(0) ~z in
  Printf.printf "\nPipeline delay target: %.0f ps, yield target %.0f%%\n\n"
    t_target (100.0 *. yield_target);

  let baseline =
    GO.individually_optimised ~ff tech nets ~t_target ~yield_target
  in
  let base_area = baseline.GO.total_area in
  print_design "Conventional (per-stage) optimisation:" baseline ~base_area;

  let proposed = GO.ensure_yield ~ff tech nets ~t_target ~yield_target in
  print_design "Global optimisation (Fig. 9 algorithm):" proposed ~base_area;

  Printf.printf
    "=> +%.1f yield points for +%.1f%% area; stages were processed in \
     ascending-R_i order [%s].\n"
    (100.0 *. (proposed.GO.pipeline_yield -. baseline.GO.pipeline_yield))
    (100.0 *. ((proposed.GO.total_area /. base_area) -. 1.0))
    (String.concat "; "
       (Array.to_list
          (Array.map
             (fun i -> Spv_circuit.Netlist.name nets.(i))
             proposed.GO.order)))
