examples/alu_decoder.mli:
