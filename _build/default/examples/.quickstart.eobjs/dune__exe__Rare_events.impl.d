examples/rare_events.ml: List Printf Spv_circuit Spv_core Spv_process Spv_stats
