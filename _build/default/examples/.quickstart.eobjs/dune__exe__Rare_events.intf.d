examples/rare_events.mli:
