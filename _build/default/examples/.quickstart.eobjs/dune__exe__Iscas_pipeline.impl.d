examples/iscas_pipeline.ml: Array Printf Spv_circuit Spv_core Spv_process Spv_sizing Spv_stats String
