examples/alu_decoder.ml: Array Float Printf Spv_circuit Spv_core Spv_process Spv_sizing Spv_stats
