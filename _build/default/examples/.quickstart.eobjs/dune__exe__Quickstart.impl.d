examples/quickstart.ml: Array List Printf Spv_core Spv_stats
