examples/speed_binning.ml: Array List Printf Spv_circuit Spv_core Spv_process
