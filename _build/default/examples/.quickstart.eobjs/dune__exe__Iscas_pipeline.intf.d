examples/iscas_pipeline.mli:
