examples/speed_binning.mli:
