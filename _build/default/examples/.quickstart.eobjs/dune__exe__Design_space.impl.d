examples/design_space.ml: List Printf Spv_core Spv_process
