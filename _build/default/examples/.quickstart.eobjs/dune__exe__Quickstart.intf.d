examples/quickstart.mli:
