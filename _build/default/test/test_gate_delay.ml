open Helpers
module Gd = Spv_process.Gate_delay
module Tech = Spv_process.Tech

let d1 = Gd.make ~nominal:10.0 ~sigma_inter:1.0 ~sigma_sys:0.5 ~sigma_rand:0.3
let d2 = Gd.make ~nominal:20.0 ~sigma_inter:2.0 ~sigma_sys:1.0 ~sigma_rand:0.4

let test_validation () =
  check_raises_invalid "negative sigma" (fun () ->
      Gd.make ~nominal:1.0 ~sigma_inter:(-0.1) ~sigma_sys:0.0 ~sigma_rand:0.0);
  check_raises_invalid "nan" (fun () ->
      Gd.make ~nominal:Float.nan ~sigma_inter:0.0 ~sigma_sys:0.0 ~sigma_rand:0.0)

let test_total_sigma () =
  check_close ~rel:1e-12 "quadrature"
    (sqrt ((1.0 *. 1.0) +. (0.5 *. 0.5) +. (0.3 *. 0.3)))
    (Gd.total_sigma d1)

let test_add_composition () =
  let s = Gd.add d1 d2 in
  check_float "nominal adds" 30.0 s.Gd.nominal;
  check_float "inter adds linearly" 3.0 s.Gd.sigma_inter;
  check_float "sys adds linearly" 1.5 s.Gd.sigma_sys;
  check_close ~rel:1e-12 "rand adds in quadrature" (sqrt (0.09 +. 0.16))
    s.Gd.sigma_rand

let test_sum_matches_folds () =
  let s1 = Gd.sum [ d1; d2; d1 ] in
  let s2 = Gd.add (Gd.add d1 d2) d1 in
  check_close ~rel:1e-12 "nominal" s2.Gd.nominal s1.Gd.nominal;
  check_close ~rel:1e-12 "rand" s2.Gd.sigma_rand s1.Gd.sigma_rand

let test_scale () =
  let s = Gd.scale d1 2.0 in
  check_float "nominal" 20.0 s.Gd.nominal;
  check_float "inter" 2.0 s.Gd.sigma_inter;
  check_float "rand" 0.6 s.Gd.sigma_rand;
  check_raises_invalid "negative factor" (fun () -> Gd.scale d1 (-1.0))

let test_of_nominal () =
  let tech = Tech.bptm70 in
  let d = Gd.of_nominal tech ~nominal:100.0 ~size:4.0 in
  check_close ~rel:1e-12 "inter"
    (100.0 *. Spv_process.Variation.rel_sigma_inter tech)
    d.Gd.sigma_inter;
  check_close ~rel:1e-12 "rand scales with size"
    (100.0 *. Spv_process.Variation.rel_sigma_rand tech ~size:4.0)
    d.Gd.sigma_rand

let test_correlation_structure () =
  (* Same locale, fully shared systematic field. *)
  let rho_same = Gd.correlation d1 d2 ~sys_rho:1.0 in
  let rho_far = Gd.correlation d1 d2 ~sys_rho:0.0 in
  Alcotest.(check bool) "distance lowers correlation" true (rho_same > rho_far);
  check_close ~rel:1e-12 "far keeps inter"
    ((1.0 *. 2.0) /. (Gd.total_sigma d1 *. Gd.total_sigma d2))
    rho_far;
  check_in_range "bounded" ~lo:(-1.0) ~hi:1.0 rho_same

let test_correlation_degenerate () =
  check_float "zero sigma gives zero" 0.0 (Gd.correlation Gd.zero d1 ~sys_rho:0.5)

let test_correlation_cancellation_effect () =
  (* A longer chain has lower variability under random-only variation:
     the paper's logic-depth cancellation (Fig. 5a). *)
  let tech = Tech.no_variation Tech.bptm70 in
  let tech = Tech.with_random_vth tech ~sigma_mv:30.0 in
  let gate = Gd.of_nominal tech ~nominal:10.0 ~size:1.0 in
  let chain n = Gd.sum (List.init n (fun _ -> gate)) in
  let v4 = Gd.variability (chain 4) and v16 = Gd.variability (chain 16) in
  check_close ~rel:1e-9 "1/sqrt(depth) cancellation" 2.0 (v4 /. v16)

let test_no_cancellation_when_correlated () =
  (* Inter-die component does not cancel with depth. *)
  let tech = Tech.no_variation Tech.bptm70 in
  let tech = Tech.with_inter_vth tech ~sigma_mv:40.0 in
  let gate = Gd.of_nominal tech ~nominal:10.0 ~size:1.0 in
  let chain n = Gd.sum (List.init n (fun _ -> gate)) in
  check_close ~rel:1e-9 "flat variability"
    (Gd.variability (chain 4))
    (Gd.variability (chain 16))

let test_to_gaussian () =
  let g = Gd.to_gaussian d1 in
  check_float "mu" 10.0 (Spv_stats.Gaussian.mu g);
  check_close ~rel:1e-12 "sigma" (Gd.total_sigma d1) (Spv_stats.Gaussian.sigma g)

let suite =
  [
    quick "validation" test_validation;
    quick "total sigma" test_total_sigma;
    quick "series composition" test_add_composition;
    quick "sum folds" test_sum_matches_folds;
    quick "scale" test_scale;
    quick "of_nominal" test_of_nominal;
    quick "correlation structure" test_correlation_structure;
    quick "degenerate correlation" test_correlation_degenerate;
    quick "depth cancellation (random)" test_correlation_cancellation_effect;
    quick "no cancellation (inter)" test_no_cancellation_when_correlated;
    quick "to_gaussian" test_to_gaussian;
  ]
