open Helpers
module L = Spv_sizing.Lagrangian
module Ad = Spv_sizing.Area_delay
module GO = Spv_sizing.Global_opt
module Net = Spv_circuit.Netlist
module G = Spv_circuit.Generators
module Gd = Spv_process.Gate_delay

let tech = Spv_process.Tech.bptm70
let ff = Spv_process.Flipflop.default tech
let z = Spv_stats.Special.big_phi_inv 0.9457

(* --- Lagrangian sizer ------------------------------------------------- *)

let test_relaxed_vs_min_delay () =
  let net = G.c432 () in
  let slow = L.relaxed_delay ~ff tech net ~z in
  let fast = L.minimum_achievable_delay ~ff tech net ~z in
  Alcotest.(check bool) "sizing buys speed" true (fast < 0.9 *. slow);
  (* Both helpers must leave sizes untouched. *)
  Array.iter
    (fun i -> check_float "sizes restored" 1.0 (Net.size net i))
    (Net.gate_ids net)

let test_size_to_feasible_target () =
  let net = G.c432 () in
  let slow = L.relaxed_delay ~ff tech net ~z in
  let fast = L.minimum_achievable_delay ~ff tech net ~z in
  let t_target = fast +. (0.4 *. (slow -. fast)) in
  let r = L.size_stage ~ff tech net ~t_target ~z in
  Alcotest.(check bool) "converged" true r.L.converged;
  Alcotest.(check bool) "meets target" true
    (r.L.stat_delay <= t_target *. 1.005);
  check_close ~rel:1e-9 "area matches netlist" (Net.area net) r.L.area;
  (* Statistical delay field is consistent. *)
  check_close ~rel:1e-9 "stat = mu + z sigma"
    (r.L.achieved.Gd.nominal +. (z *. Gd.total_sigma r.L.achieved))
    r.L.stat_delay

let test_tighter_target_costs_area () =
  let net = G.c432 () in
  let slow = L.relaxed_delay ~ff tech net ~z in
  let fast = L.minimum_achievable_delay ~ff tech net ~z in
  let size_to frac =
    let t_target = fast +. (frac *. (slow -. fast)) in
    (L.size_stage ~ff tech net ~t_target ~z).L.area
  in
  let a_tight = size_to 0.15 in
  let a_mid = size_to 0.5 in
  let a_loose = size_to 0.85 in
  Alcotest.(check bool) "monotone trade-off" true
    (a_tight > a_mid && a_mid > a_loose)

let test_unreachable_target_reports () =
  let net = G.inverter_chain ~depth:6 () in
  let r = L.size_stage ~ff tech net ~t_target:1.0 ~z in
  Alcotest.(check bool) "not converged" false r.L.converged;
  Alcotest.(check bool) "still positive delay" true (r.L.stat_delay > 1.0)

let test_sizes_respect_bounds () =
  let options = { L.default_options with L.min_size = 1.0; max_size = 4.0 } in
  let net = G.c432 () in
  ignore (L.size_stage ~options ~ff tech net ~t_target:400.0 ~z);
  Array.iter
    (fun i ->
      check_in_range "within bounds" ~lo:1.0 ~hi:4.0 (Net.size net i))
    (Net.gate_ids net)

let test_statistical_delay_smaller_z () =
  let net = G.c432 () in
  let d0 = L.statistical_delay ~ff tech net ~z:0.0 in
  let d2 = L.statistical_delay ~ff tech net ~z:2.0 in
  Alcotest.(check bool) "z adds guardband" true (d2 > d0)

(* --- Area-delay curves ------------------------------------------------ *)

let test_curve_monotone () =
  let net = G.c432 () in
  let pts = Ad.curve_points ~ff ~n_points:7 tech net ~z in
  Alcotest.(check bool) "at least 4 points" true (Array.length pts >= 4);
  for i = 1 to Array.length pts - 1 do
    Alcotest.(check bool) "delay increases" true
      (pts.(i).Spv_core.Balance.delay > pts.(i - 1).Spv_core.Balance.delay);
    Alcotest.(check bool) "area decreases" true
      (pts.(i).Spv_core.Balance.area < pts.(i - 1).Spv_core.Balance.area)
  done

let test_curve_restores_sizes () =
  let net = G.c432 () in
  let gate0 = (Net.gate_ids net).(0) in
  Net.set_size net gate0 2.5;
  ignore (Ad.curve_points ~ff ~n_points:5 tech net ~z);
  check_float "sizes restored" 2.5 (Net.size net gate0)

let test_normalised () =
  let net = G.c432 () in
  let pts = Ad.curve_points ~ff ~n_points:5 tech net ~z in
  let norm = Ad.normalised pts in
  let last_d, last_a = norm.(Array.length norm - 1) in
  check_float "slowest normalised to 1 (delay)" 1.0 last_d;
  check_float "slowest normalised to 1 (area)" 1.0 last_a

(* --- Global optimisation ---------------------------------------------- *)

let pipeline_fixture () =
  (* A small 3-stage pipeline keeps global-opt tests fast. *)
  [|
    G.random_logic ~name:"sA" ~inputs:12 ~gates:120 ~depth:14 ~seed:1;
    G.random_logic ~name:"sB" ~inputs:12 ~gates:100 ~depth:12 ~seed:2;
    G.random_logic ~name:"sC" ~inputs:12 ~gates:80 ~depth:12 ~seed:3;
  |]

let test_individually_optimised () =
  let nets = pipeline_fixture () in
  let fast = L.minimum_achievable_delay ~ff tech nets.(0) ~z in
  let r =
    GO.individually_optimised ~ff tech nets ~t_target:(fast *. 1.15)
      ~yield_target:0.8
  in
  Alcotest.(check int) "three stages" 3 (Array.length r.GO.nets);
  check_close ~rel:1e-9 "total is the sum"
    (Array.fold_left ( +. ) 0.0 r.GO.stage_areas)
    r.GO.total_area;
  (* Inputs are untouched (we size copies). *)
  Array.iter
    (fun net ->
      Array.iter (fun i -> check_float "input preserved" 1.0 (Net.size net i))
        (Net.gate_ids net))
    nets

let test_ensure_yield_improves () =
  let nets = pipeline_fixture () in
  let fast = L.minimum_achievable_delay ~ff tech nets.(0) ~z in
  let t_target = fast *. 0.99 in
  let base = GO.individually_optimised ~ff tech nets ~t_target ~yield_target:0.8 in
  let ens = GO.ensure_yield ~ff tech nets ~t_target ~yield_target:0.8 in
  Alcotest.(check bool) "yield does not degrade" true
    (ens.GO.pipeline_yield >= base.GO.pipeline_yield -. 1e-9)

let test_minimise_area_keeps_yield () =
  let nets = pipeline_fixture () in
  let fast = L.minimum_achievable_delay ~ff tech nets.(0) ~z in
  let t_target = fast *. 1.1 in
  let base = GO.individually_optimised ~ff tech nets ~t_target ~yield_target:0.8 in
  let mini = GO.minimise_area ~ff tech nets ~t_target ~yield_target:0.8 in
  Alcotest.(check bool) "area not larger" true
    (mini.GO.total_area <= base.GO.total_area +. 1e-6);
  Alcotest.(check bool) "yield at target" true
    (mini.GO.pipeline_yield >= 0.8 -. 1e-9
    || mini.GO.pipeline_yield >= base.GO.pipeline_yield -. 1e-9)

let suite =
  [
    quick "relaxed vs min delay" test_relaxed_vs_min_delay;
    quick "size to feasible target" test_size_to_feasible_target;
    quick "tighter target costs area" test_tighter_target_costs_area;
    quick "unreachable target" test_unreachable_target_reports;
    quick "size bounds respected" test_sizes_respect_bounds;
    quick "z guardband" test_statistical_delay_smaller_z;
    quick "curve monotone" test_curve_monotone;
    quick "curve restores sizes" test_curve_restores_sizes;
    quick "curve normalised" test_normalised;
    slow "individually optimised" test_individually_optimised;
    slow "ensure_yield improves" test_ensure_yield_improves;
    slow "minimise_area keeps yield" test_minimise_area_keeps_yield;
  ]
