open Helpers
module Net = Spv_circuit.Netlist
module B = Spv_circuit.Builder
module Cell = Spv_circuit.Cell

(* A tiny and-or structure used across tests:
   o = (a nand b) nor (inv a). *)
let example () =
  let b = B.create ~name:"example" in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let n1 = B.nand2 b a bb in
  let n2 = B.inv b a in
  let o = B.nor2 b n1 n2 in
  B.output b o;
  B.finish b

let test_structure () =
  let net = example () in
  Alcotest.(check int) "nodes" 5 (Net.n_nodes net);
  Alcotest.(check int) "gates" 3 (Net.n_gates net);
  Alcotest.(check int) "inputs" 2 (Array.length (Net.input_ids net));
  Alcotest.(check int) "outputs" 1 (Array.length (Net.outputs net))

let test_fanouts () =
  let net = example () in
  (* Input a feeds the nand and the inverter. *)
  Alcotest.(check (list int)) "fanouts of a" [ 3; 2 ] (Net.fanouts net 0);
  Alcotest.(check (list int)) "nand feeds nor" [ 4 ] (Net.fanouts net 2);
  Alcotest.(check (list int)) "output has no fanout" [] (Net.fanouts net 4)

let test_eval_functional () =
  let net = example () in
  (* o = not ((a nand b) or (not a)). *)
  let expect a b =
    let n1 = not (a && b) in
    let n2 = not a in
    not (n1 || n2)
  in
  List.iter
    (fun (a, b) ->
      let values = Net.eval net ~inputs:[| a; b |] in
      Alcotest.(check bool)
        (Printf.sprintf "o(%b,%b)" a b)
        (expect a b)
        values.(4))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_sizes () =
  let net = example () in
  check_float "default size" 1.0 (Net.size net 2);
  Net.set_size net 2 3.0;
  check_float "updated size" 3.0 (Net.size net 2);
  check_raises_invalid "sizing an input" (fun () -> Net.set_size net 0 2.0);
  check_raises_invalid "non-positive size" (fun () -> Net.set_size net 2 0.0)

let test_snapshot_restore () =
  let net = example () in
  let snap = Net.sizes_snapshot net in
  Net.set_size net 2 5.0;
  Net.restore_sizes net snap;
  check_float "restored" 1.0 (Net.size net 2)

let test_area () =
  let net = example () in
  (* nand2 (2) + inv (1) + nor2 (2), all at size 1. *)
  check_float "area" 5.0 (Net.area net);
  Net.set_size net 2 2.0;
  check_float "area after sizing" 7.0 (Net.area net)

let test_copy_independent () =
  let net = example () in
  let dup = Net.copy net in
  Net.set_size net 2 4.0;
  check_float "copy unaffected" 1.0 (Net.size dup 2)

let test_validation_topological () =
  check_raises_invalid "forward reference" (fun () ->
      ignore
        (Net.make ~name:"bad"
           ~nodes:
             [|
               Net.Primary_input "a";
               Net.Gate { kind = Cell.Inv; fanin = [| 2 |] };
               Net.Gate { kind = Cell.Inv; fanin = [| 0 |] };
             |]
           ~outputs:[| 2 |] ~sizes:[| 1.0; 1.0; 1.0 |]))

let test_validation_arity () =
  check_raises_invalid "arity mismatch" (fun () ->
      ignore
        (Net.make ~name:"bad"
           ~nodes:
             [|
               Net.Primary_input "a";
               Net.Gate { kind = Cell.Nand2; fanin = [| 0 |] };
             |]
           ~outputs:[| 1 |] ~sizes:[| 1.0; 1.0 |]))

let test_validation_outputs () =
  check_raises_invalid "no outputs" (fun () ->
      ignore
        (Net.make ~name:"bad" ~nodes:[| Net.Primary_input "a" |] ~outputs:[||]
           ~sizes:[| 1.0 |]))

let test_builder_errors () =
  let b = B.create ~name:"x" in
  check_raises_invalid "unknown fanin" (fun () -> ignore (B.inv b 3));
  check_raises_invalid "finish without outputs" (fun () ->
      let b2 = B.create ~name:"y" in
      ignore (B.input b2 "a");
      ignore (B.finish b2))

let test_builder_mux () =
  let b = B.create ~name:"mux" in
  let s = B.input b "s" in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let m = B.mux2 b ~sel:s ~a:x ~b:y in
  B.output b m;
  let net = B.finish b in
  let v = Net.eval net ~inputs:[| false; true; false |] in
  Alcotest.(check bool) "mux selects a" true v.(3);
  let v = Net.eval net ~inputs:[| true; true; false |] in
  Alcotest.(check bool) "mux selects b" false v.(3)

let suite =
  [
    quick "structure" test_structure;
    quick "fanouts" test_fanouts;
    quick "functional eval" test_eval_functional;
    quick "sizes" test_sizes;
    quick "snapshot/restore" test_snapshot_restore;
    quick "area" test_area;
    quick "copy independence" test_copy_independent;
    quick "topological validation" test_validation_topological;
    quick "arity validation" test_validation_arity;
    quick "outputs required" test_validation_outputs;
    quick "builder errors" test_builder_errors;
    quick "builder mux" test_builder_mux;
  ]
