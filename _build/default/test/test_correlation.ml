open Helpers
module C = Spv_stats.Correlation

let test_uniform () =
  let m = C.uniform ~n:4 ~rho:0.3 in
  check_float "diag" 1.0 (C.get m 0 0);
  check_float "off" 0.3 (C.get m 1 3);
  Alcotest.(check bool) "valid" true (C.is_valid m)

let test_uniform_validity_range () =
  (* rho slightly below -1/(n-1) must be rejected. *)
  check_raises_invalid "too negative" (fun () -> C.uniform ~n:4 ~rho:(-0.5));
  ignore (C.uniform ~n:4 ~rho:(-0.33));
  check_raises_invalid "rho > 1" (fun () -> C.uniform ~n:4 ~rho:1.1)

let test_identity_and_full () =
  Alcotest.(check bool) "independent valid" true (C.is_valid (C.independent ~n:5));
  let full = C.perfectly_correlated ~n:3 in
  check_float "full off-diag" 1.0 (C.get full 0 2);
  Alcotest.(check bool) "full valid (PSD)" true (C.is_valid full)

let test_exponential_decay () =
  let positions = [| 0.0; 1.0; 3.0 |] in
  let m = C.exponential_decay ~n:3 ~positions ~length:2.0 in
  check_close ~rel:1e-12 "rho(0,1)" (exp (-0.5)) (C.get m 0 1);
  check_close ~rel:1e-12 "rho(0,2)" (exp (-1.5)) (C.get m 0 2);
  Alcotest.(check bool) "valid" true (C.is_valid m);
  check_raises_invalid "bad length" (fun () ->
      C.exponential_decay ~n:3 ~positions ~length:0.0)

let test_blend () =
  let a = C.perfectly_correlated ~n:3 in
  let b = C.independent ~n:3 in
  let m = C.blend ~weight:0.25 a b in
  check_float "blended off-diag" 0.25 (C.get m 0 1);
  check_float "blended diag" 1.0 (C.get m 1 1);
  Alcotest.(check bool) "valid" true (C.is_valid m)

let test_of_function_symmetrises () =
  let m = C.of_function ~n:3 (fun i j -> if i < j then 0.5 else 0.9) in
  check_float "symmetric" (C.get m 0 1) (C.get m 1 0)

let test_invalid_entry () =
  check_raises_invalid "entry > 1" (fun () -> C.of_function ~n:2 (fun _ _ -> 1.5))

let test_not_psd_detected () =
  (* Three variables pairwise correlation -0.9 is impossible. *)
  let m =
    Spv_stats.Matrix.of_arrays
      [| [| 1.0; -0.9; -0.9 |]; [| -0.9; 1.0; -0.9 |]; [| -0.9; -0.9; 1.0 |] |]
  in
  Alcotest.(check bool) "not valid" false (C.is_valid m)

let test_sample_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close ~rel:1e-12 "self correlation" 1.0 (C.sample_correlation xs xs);
  let ys = Array.map (fun x -> -.x) xs in
  check_close ~rel:1e-12 "anticorrelation" (-1.0) (C.sample_correlation xs ys);
  check_raises_invalid "degenerate" (fun () ->
      C.sample_correlation xs [| 1.0; 1.0; 1.0; 1.0 |])

let test_sample_correlation_recovers_rho () =
  let rho = 0.6 in
  let mvn =
    Spv_stats.Mvn.create ~mus:[| 0.0; 0.0 |] ~sigmas:[| 1.0; 1.0 |]
      ~corr:(C.uniform ~n:2 ~rho)
  in
  let rng = Spv_stats.Rng.create ~seed:50 in
  let draws = Spv_stats.Mvn.sample_many mvn rng ~n:50_000 in
  let xs = Array.map (fun d -> d.(0)) draws in
  let ys = Array.map (fun d -> d.(1)) draws in
  check_in_range "recovered rho" ~lo:(rho -. 0.02) ~hi:(rho +. 0.02)
    (C.sample_correlation xs ys)

let prop_uniform_valid =
  prop "uniform matrices are valid"
    QCheck2.Gen.(pair (int_range 2 8) (float_bound_inclusive 1.0))
    (fun (n, rho) -> C.is_valid (C.uniform ~n ~rho))

let suite =
  [
    quick "uniform" test_uniform;
    quick "uniform validity range" test_uniform_validity_range;
    quick "identity and full" test_identity_and_full;
    quick "exponential decay" test_exponential_decay;
    quick "blend" test_blend;
    quick "of_function symmetrises" test_of_function_symmetrises;
    quick "invalid entry rejected" test_invalid_entry;
    quick "non-PSD detected" test_not_psd_detected;
    quick "sample correlation" test_sample_correlation;
    slow "sample correlation recovers rho" test_sample_correlation_recovers_rho;
    prop_uniform_valid;
  ]
