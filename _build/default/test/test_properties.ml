open Helpers
module G = Spv_stats.Gaussian
module C = Spv_stats.Correlation
module Stage = Spv_core.Stage
module P = Spv_core.Pipeline
module Y = Spv_core.Yield

(* Cross-module invariants, property-tested on random pipelines. *)

let gen_stage_specs =
  QCheck2.Gen.(
    list_size (int_range 2 7)
      (pair (float_range 80.0 120.0) (float_range 0.5 10.0)))

let pipeline_of specs rho =
  let stages =
    Array.of_list (List.map (fun (mu, sigma) -> Stage.of_moments ~mu ~sigma ()) specs)
  in
  P.make stages ~corr:(C.uniform ~n:(Array.length stages) ~rho)

let prop_mu_t_dominates_jensen =
  prop ~count:150 "Clark mu_T >= Jensen bound"
    QCheck2.Gen.(pair gen_stage_specs (float_bound_inclusive 0.9))
    (fun (specs, rho) ->
      let p = pipeline_of specs rho in
      G.mu (P.delay_distribution p) >= P.jensen_lower_bound p -. 1e-6)

let prop_yield_between_bounds =
  (* For the exact independent estimator the joint yield can never
     beat the worst single stage (a theorem; the Gaussian max
     approximation does NOT satisfy it in the deep low tail, where it
     is optimistic against a tight slowest stage). *)
  prop ~count:150 "exact yield bounded by stage yields"
    QCheck2.Gen.(pair gen_stage_specs (float_range 90.0 140.0))
    (fun (specs, t_target) ->
      let p = pipeline_of specs 0.0 in
      let joint = Y.independent_exact p ~t_target in
      let stage_ys = Y.stage_yields p ~t_target in
      let min_y = Array.fold_left Float.min 1.0 stage_ys in
      let clark = Y.clark_gaussian p ~t_target in
      joint >= 0.0 && joint <= min_y +. 1e-12 && clark >= 0.0 && clark <= 1.0)

let prop_yield_monotone_in_correlation =
  (* For equal stages at an above-median target, correlation helps. *)
  prop ~count:60 "correlation raises yield"
    QCheck2.Gen.(pair (int_range 2 6) (pair (float_range 0.0 0.4) (float_range 0.5 0.9)))
    (fun (n, (rho_lo, rho_hi)) ->
      let stages =
        Array.init n (fun _ -> Stage.of_moments ~mu:100.0 ~sigma:5.0 ())
      in
      let y rho =
        Y.clark_gaussian
          (P.make stages ~corr:(C.uniform ~n ~rho))
          ~t_target:108.0
      in
      y rho_lo <= y rho_hi +. 1e-6)

let prop_target_inversion_consistent =
  prop ~count:100 "target_delay_for_yield inverts clark_gaussian"
    QCheck2.Gen.(pair gen_stage_specs (float_range 0.05 0.95))
    (fun (specs, yield) ->
      let p = pipeline_of specs 0.2 in
      let t = Y.target_delay_for_yield p ~yield in
      abs_float (Y.clark_gaussian p ~t_target:t -. yield) < 1e-6)

let prop_scaling_stage_scales_distribution =
  prop ~count:100 "Stage.scale_delay scales both moments"
    QCheck2.Gen.(triple (float_range 10.0 200.0) (float_range 0.0 20.0)
                   (float_range 0.1 3.0))
    (fun (mu, sigma, k) ->
      let s = Stage.scale_delay (Stage.of_moments ~mu ~sigma ()) k in
      abs_float (Stage.mu s -. (k *. mu)) < 1e-9
      && abs_float (Stage.sigma s -. (k *. sigma)) < 1e-9)

let prop_hold_min_below_setup_max =
  prop ~count:80 "min_n <= max_n pointwise in mean"
    QCheck2.Gen.(pair gen_stage_specs (float_bound_inclusive 0.8))
    (fun (specs, rho) ->
      let gs =
        Array.of_list (List.map (fun (mu, sigma) -> G.make ~mu ~sigma) specs)
      in
      let corr = C.uniform ~n:(Array.length gs) ~rho in
      let mx = Spv_core.Clark.max_n gs ~corr in
      let mn = Spv_core.Hold.min_n gs ~corr in
      G.mu mn <= G.mu mx +. 1e-9)

let prop_gate_delay_add_triangle =
  (* Composition never shrinks nominal, and the composed sigma obeys
     the triangle inequality component-wise. *)
  prop ~count:100 "decomposed add triangle"
    QCheck2.Gen.(
      pair
        (QCheck2.Gen.array_size (QCheck2.Gen.return 4) (float_range 0.0 10.0))
        (QCheck2.Gen.array_size (QCheck2.Gen.return 4) (float_range 0.0 10.0)))
    (fun (a, b) ->
      let mk v =
        Spv_process.Gate_delay.make ~nominal:(10.0 +. v.(0)) ~sigma_inter:v.(1)
          ~sigma_sys:v.(2) ~sigma_rand:v.(3)
      in
      let da = mk a and db = mk b in
      let s = Spv_process.Gate_delay.add da db in
      let total d = Spv_process.Gate_delay.total_sigma d in
      total s <= total da +. total db +. 1e-9
      && total s +. 1e-9 >= Float.max (total da) (total db))

let prop_fmax_cdf_duality =
  prop ~count:80 "Fmax cdf duality"
    QCheck2.Gen.(pair gen_stage_specs (float_range 0.1 0.9))
    (fun (specs, q) ->
      let p = pipeline_of specs 0.3 in
      let f = Spv_core.Fmax.quantile p ~p:q in
      abs_float (Spv_core.Fmax.cdf p f -. q) < 1e-6)

let suite =
  [
    prop_mu_t_dominates_jensen;
    prop_yield_between_bounds;
    prop_yield_monotone_in_correlation;
    prop_target_inversion_consistent;
    prop_scaling_stage_scales_distribution;
    prop_hold_min_below_setup_max;
    prop_gate_delay_add_triangle;
    prop_fmax_cdf_duality;
  ]
