open Helpers
module Cell = Spv_circuit.Cell

let test_arity () =
  Alcotest.(check int) "inv" 1 (Cell.arity Cell.Inv);
  Alcotest.(check int) "nand2" 2 (Cell.arity Cell.Nand2);
  Alcotest.(check int) "nand4" 4 (Cell.arity Cell.Nand4);
  Alcotest.(check int) "mux2" 3 (Cell.arity Cell.Mux2);
  Alcotest.(check int) "aoi21" 3 (Cell.arity Cell.Aoi21)

let test_logical_effort_reference () =
  (* Standard logical-effort table values. *)
  check_float "inv g" 1.0 (Cell.logical_effort Cell.Inv);
  check_close ~rel:1e-12 "nand2 g" (4.0 /. 3.0) (Cell.logical_effort Cell.Nand2);
  check_close ~rel:1e-12 "nor2 g" (5.0 /. 3.0) (Cell.logical_effort Cell.Nor2);
  Alcotest.(check bool) "nor worse than nand" true
    (Cell.logical_effort Cell.Nor3 > Cell.logical_effort Cell.Nand3)

let test_parasitic_monotone_in_arity () =
  Alcotest.(check bool) "nand stack" true
    (Cell.parasitic Cell.Nand2 < Cell.parasitic Cell.Nand3
    && Cell.parasitic Cell.Nand3 < Cell.parasitic Cell.Nand4)

let test_input_cap () =
  check_close ~rel:1e-12 "cin = g * size" (4.0 /. 3.0 *. 2.5)
    (Cell.input_cap Cell.Nand2 ~size:2.5)

let test_name_roundtrip () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Cell.name k ^ " roundtrip")
        true
        (Cell.of_name (Cell.name k) = k))
    Cell.all;
  check_raises_invalid "unknown" (fun () -> ignore (Cell.of_name "nand17"))

let test_eval_truth_tables () =
  let t = true and f = false in
  Alcotest.(check bool) "inv" f (Cell.eval Cell.Inv [| t |]);
  Alcotest.(check bool) "nand2 11" f (Cell.eval Cell.Nand2 [| t; t |]);
  Alcotest.(check bool) "nand2 10" t (Cell.eval Cell.Nand2 [| t; f |]);
  Alcotest.(check bool) "nor2 00" t (Cell.eval Cell.Nor2 [| f; f |]);
  Alcotest.(check bool) "nor2 01" f (Cell.eval Cell.Nor2 [| f; t |]);
  Alcotest.(check bool) "xor2" t (Cell.eval Cell.Xor2 [| t; f |]);
  Alcotest.(check bool) "xnor2" t (Cell.eval Cell.Xnor2 [| t; t |]);
  Alcotest.(check bool) "aoi21 110" f (Cell.eval Cell.Aoi21 [| t; t; f |]);
  Alcotest.(check bool) "aoi21 000" t (Cell.eval Cell.Aoi21 [| f; f; f |]);
  Alcotest.(check bool) "oai21 011" f (Cell.eval Cell.Oai21 [| f; t; t |]);
  Alcotest.(check bool) "mux2 sel=0" t (Cell.eval Cell.Mux2 [| f; t; f |]);
  Alcotest.(check bool) "mux2 sel=1" f (Cell.eval Cell.Mux2 [| t; t; f |])

let test_eval_arity_check () =
  check_raises_invalid "wrong arity" (fun () ->
      ignore (Cell.eval Cell.Nand2 [| true |]))

let test_is_inverting () =
  Alcotest.(check bool) "nand inverting" true (Cell.is_inverting Cell.Nand2);
  Alcotest.(check bool) "and2 not" false (Cell.is_inverting Cell.And2);
  (* De Morgan sanity: eval of inverting cells complements the AND/OR
     counterpart. *)
  List.iter
    (fun ins ->
      Alcotest.(check bool) "nand = not and" (not (Cell.eval Cell.And2 ins))
        (Cell.eval Cell.Nand2 ins))
    [ [| true; true |]; [| true; false |]; [| false; false |] ]

let test_all_positive_parameters () =
  List.iter
    (fun k ->
      Alcotest.(check bool) (Cell.name k ^ " positive") true
        (Cell.logical_effort k > 0.0
        && Cell.parasitic k > 0.0
        && Cell.area_per_size k > 0.0))
    Cell.all

let suite =
  [
    quick "arity" test_arity;
    quick "logical effort values" test_logical_effort_reference;
    quick "parasitic monotone" test_parasitic_monotone_in_arity;
    quick "input cap" test_input_cap;
    quick "name roundtrip" test_name_roundtrip;
    quick "truth tables" test_eval_truth_tables;
    quick "eval arity check" test_eval_arity_check;
    quick "inverting classification" test_is_inverting;
    quick "positive parameters" test_all_positive_parameters;
  ]
