open Helpers
module B = Spv_core.Balance
module Gd = Spv_process.Gate_delay

(* Synthetic stage model: area = k / (delay - floor), sigma = 3% of the
   nominal — a convex trade-off like the sizer produces. *)
let synth_model ?(k = 1000.0) ?(floor = 50.0) ?(lo = 80.0) ?(hi = 160.0) name =
  let n = 9 in
  let pts =
    Array.init n (fun i ->
        let delay = lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)) in
        {
          B.delay;
          area = k /. (delay -. floor);
          decomposed =
            Gd.make ~nominal:delay ~sigma_inter:(0.01 *. delay)
              ~sigma_sys:0.0 ~sigma_rand:(0.03 *. delay);
        })
  in
  B.stage_model ~name pts

let models () = [| synth_model "s1"; synth_model ~k:2000.0 "s2"; synth_model "s3" |]

let test_model_validation () =
  let bad_delay =
    [|
      { B.delay = 10.0; area = 5.0; decomposed = Gd.zero };
      { B.delay = 10.0; area = 4.0; decomposed = Gd.zero };
    |]
  in
  check_raises_invalid "non-increasing delay" (fun () ->
      ignore (B.stage_model ~name:"x" bad_delay));
  let bad_area =
    [|
      { B.delay = 10.0; area = 5.0; decomposed = Gd.zero };
      { B.delay = 11.0; area = 5.0; decomposed = Gd.zero };
    |]
  in
  check_raises_invalid "non-decreasing area" (fun () ->
      ignore (B.stage_model ~name:"x" bad_area));
  check_raises_invalid "single point" (fun () ->
      ignore (B.stage_model ~name:"x" [| bad_delay.(0) |]))

let test_interpolation () =
  let m = synth_model "s" in
  (* At sampled points interpolation is exact. *)
  check_close ~rel:1e-9 "exact at sample" (1000.0 /. 30.0) (B.area_at m ~delay:80.0);
  (* Between points: between neighbours. *)
  let a = B.area_at m ~delay:85.0 in
  check_in_range "bracketed" ~lo:(1000.0 /. 40.0) ~hi:(1000.0 /. 30.0) a;
  (* Clamped outside the range. *)
  check_close ~rel:1e-9 "clamped low" (B.area_at m ~delay:80.0) (B.area_at m ~delay:10.0);
  check_close ~rel:1e-9 "clamped high" (B.area_at m ~delay:160.0) (B.area_at m ~delay:500.0)

let test_delay_area_roundtrip () =
  let m = synth_model "s" in
  List.iter
    (fun d ->
      let a = B.area_at m ~delay:d in
      check_close ~rel:1e-6 "roundtrip" d (B.delay_at_area m ~area:a))
    [ 80.0; 97.3; 120.0; 159.9 ]

let test_decomposed_interpolation () =
  let m = synth_model "s" in
  let d = B.decomposed_at m ~delay:100.0 in
  check_close ~rel:1e-6 "nominal follows budget" 100.0 d.Gd.nominal;
  check_close ~rel:1e-6 "sigma follows" 3.0 d.Gd.sigma_rand

let test_ri_reflects_slope () =
  let m = synth_model "s" in
  let lo, hi = B.delay_bounds m in
  (* Hyperbolic area: slope magnitude is much larger at the fast end. *)
  Alcotest.(check bool) "steeper at fast end" true
    (B.ri m ~delay:(lo +. 2.0) > B.ri m ~delay:(hi -. 2.0));
  Alcotest.(check bool) "positive" true (B.ri m ~delay:100.0 > 0.0)

let test_total_area_and_pipeline () =
  let ms = models () in
  let delays = [| 100.0; 100.0; 100.0 |] in
  check_close ~rel:1e-9 "sum of areas"
    ((1000.0 /. 50.0) +. (2000.0 /. 50.0) +. (1000.0 /. 50.0))
    (B.total_area ms ~delays);
  let p = B.pipeline_of ms ~delays in
  Alcotest.(check int) "stages" 3 (Spv_core.Pipeline.n_stages p);
  check_close ~rel:1e-9 "nominal" 100.0 (Spv_core.Pipeline.nominal_delay p)

let test_balanced_delays () =
  let ms = models () in
  let budget = 70.0 in
  let delays = B.balanced_delays ms ~total_area:budget in
  check_close ~rel:1e-9 "equal delays" delays.(0) delays.(1);
  check_close ~rel:1e-4 "consumes the budget" budget (B.total_area ms ~delays);
  check_raises_invalid "budget too large" (fun () ->
      ignore (B.balanced_delays ms ~total_area:1e9))

let test_evaluate () =
  let ms = models () in
  let delays = B.balanced_delays ms ~total_area:70.0 in
  let sol = B.evaluate ms ~delays ~t_target:(delays.(0) *. 1.1) in
  check_in_range "yield sane" ~lo:0.5 ~hi:1.0 sol.B.yield

let test_optimise_improves_yield_at_constant_area () =
  let ms = models () in
  let budget = 70.0 in
  let delays = B.balanced_delays ms ~total_area:budget in
  let t_target = delays.(0) *. 1.04 in
  let balanced = B.evaluate ms ~delays ~t_target in
  let best = B.optimise_constant_area ms ~total_area:budget ~t_target in
  Alcotest.(check bool) "no area growth" true (best.B.area <= budget +. 1e-6);
  Alcotest.(check bool) "yield not worse" true
    (best.B.yield >= balanced.B.yield -. 1e-9)

let test_pessimise_hurts_yield () =
  let ms = models () in
  let budget = 70.0 in
  let delays = B.balanced_delays ms ~total_area:budget in
  let t_target = delays.(0) *. 1.04 in
  let balanced = B.evaluate ms ~delays ~t_target in
  let worst = B.pessimise_constant_area ms ~total_area:budget ~t_target in
  Alcotest.(check bool) "worse or equal" true (worst.B.yield <= balanced.B.yield +. 1e-9)

let test_order_by_ri () =
  (* s2 has double the area scale: at equal delay its |dA/dD| relative
     to area matches s1/s3 (both scale linearly), so craft distinct
     floors instead. *)
  let ms =
    [| synth_model ~floor:50.0 "steep"; synth_model ~floor:20.0 ~lo:80.0 "shallow" |]
  in
  let order = B.order_by_ri ms ~delays:[| 85.0; 85.0 |] in
  (* The shallow stage (farther from its floor) has smaller R. *)
  Alcotest.(check int) "shallow first" 1 order.(0)

let suite =
  [
    quick "model validation" test_model_validation;
    quick "interpolation" test_interpolation;
    quick "delay/area roundtrip" test_delay_area_roundtrip;
    quick "decomposed interpolation" test_decomposed_interpolation;
    quick "ri reflects slope" test_ri_reflects_slope;
    quick "total area and pipeline" test_total_area_and_pipeline;
    quick "balanced delays" test_balanced_delays;
    quick "evaluate" test_evaluate;
    slow "optimise at constant area" test_optimise_improves_yield_at_constant_area;
    slow "pessimise hurts" test_pessimise_hurts_yield;
    quick "order by ri" test_order_by_ri;
  ]
