open Helpers
module G = Spv_stats.Gaussian

let test_make_validation () =
  check_raises_invalid "negative sigma" (fun () -> G.make ~mu:0.0 ~sigma:(-1.0));
  check_raises_invalid "nan mu" (fun () -> G.make ~mu:Float.nan ~sigma:1.0);
  check_raises_invalid "inf sigma" (fun () ->
      G.make ~mu:0.0 ~sigma:Float.infinity)

let test_accessors () =
  let g = G.make ~mu:3.0 ~sigma:2.0 in
  check_float "mu" 3.0 (G.mu g);
  check_float "sigma" 2.0 (G.sigma g);
  check_float "variance" 4.0 (G.variance g);
  check_float "variability" (2.0 /. 3.0) (G.variability g)

let test_cdf_quantile_inverse () =
  let g = G.make ~mu:100.0 ~sigma:7.0 in
  List.iter
    (fun p ->
      check_close ~rel:1e-9 "roundtrip" p (G.cdf g (G.quantile g ~p)))
    [ 0.01; 0.25; 0.5; 0.9283; 0.99 ]

let test_add_independent () =
  let a = G.make ~mu:10.0 ~sigma:3.0 and b = G.make ~mu:20.0 ~sigma:4.0 in
  let s = G.add a b ~rho:0.0 in
  check_float "mu" 30.0 (G.mu s);
  check_float "sigma" 5.0 (G.sigma s)

let test_add_correlated () =
  let a = G.make ~mu:0.0 ~sigma:1.0 and b = G.make ~mu:0.0 ~sigma:1.0 in
  check_float "rho=1" 2.0 (G.sigma (G.add a b ~rho:1.0));
  check_float ~eps:1e-7 "rho=-1" 0.0 (G.sigma (G.add a b ~rho:(-1.0)))

let test_scale_shift () =
  let g = G.make ~mu:10.0 ~sigma:2.0 in
  let s = G.scale g 3.0 in
  check_float "scaled mu" 30.0 (G.mu s);
  check_float "scaled sigma" 6.0 (G.sigma s);
  let sh = G.shift g 5.0 in
  check_float "shifted mu" 15.0 (G.mu sh);
  check_float "shifted sigma" 2.0 (G.sigma sh);
  check_raises_invalid "negative scale" (fun () -> G.scale g (-1.0))

let test_sum_correlated () =
  let gs = Array.init 4 (fun _ -> G.make ~mu:5.0 ~sigma:2.0) in
  (* Fully correlated: sigmas add linearly. *)
  let s1 = G.sum_correlated gs ~rho:(fun _ _ -> 1.0) in
  check_float "full corr mu" 20.0 (G.mu s1);
  check_float ~eps:1e-9 "full corr sigma" 8.0 (G.sigma s1);
  (* Independent: quadrature. *)
  let s0 = G.sum_correlated gs ~rho:(fun _ _ -> 0.0) in
  check_float ~eps:1e-9 "indep sigma" 4.0 (G.sigma s0)

let test_sampling_moments () =
  let g = G.make ~mu:42.0 ~sigma:6.0 in
  let rng = Spv_stats.Rng.create ~seed:20 in
  let xs = Array.init 50_000 (fun _ -> G.sample g rng) in
  check_in_range "mean" ~lo:41.9 ~hi:42.1 (Spv_stats.Descriptive.mean xs);
  check_in_range "std" ~lo:5.9 ~hi:6.1 (Spv_stats.Descriptive.std xs)

let test_equal () =
  let a = G.make ~mu:1.0 ~sigma:2.0 in
  Alcotest.(check bool) "equal" true (G.equal a (G.make ~mu:1.0 ~sigma:2.0));
  Alcotest.(check bool) "not equal" false (G.equal a (G.make ~mu:1.1 ~sigma:2.0))

let prop_add_mu_linear =
  prop "add means are linear"
    QCheck2.Gen.(
      tup4 (float_range (-100.) 100.) (float_range 0. 10.)
        (float_range (-100.) 100.) (float_range 0. 10.))
    (fun (m1, s1, m2, s2) ->
      let g = G.add (G.make ~mu:m1 ~sigma:s1) (G.make ~mu:m2 ~sigma:s2) ~rho:0.5 in
      abs_float (G.mu g -. (m1 +. m2)) < 1e-9)

let prop_cdf_monotone =
  prop "cdf monotone"
    QCheck2.Gen.(pair (float_range (-10.) 10.) (float_range (-10.) 10.))
    (fun (x, y) ->
      let g = G.make ~mu:0.0 ~sigma:2.0 in
      x = y || (x < y) = (G.cdf g x <= G.cdf g y))

let suite =
  [
    quick "validation" test_make_validation;
    quick "accessors" test_accessors;
    quick "cdf/quantile roundtrip" test_cdf_quantile_inverse;
    quick "add independent" test_add_independent;
    quick "add correlated" test_add_correlated;
    quick "scale and shift" test_scale_shift;
    quick "sum correlated" test_sum_correlated;
    slow "sampling moments" test_sampling_moments;
    quick "equal" test_equal;
    prop_add_mu_linear;
    prop_cdf_monotone;
  ]
