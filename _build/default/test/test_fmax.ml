open Helpers
module F = Spv_core.Fmax
module Stage = Spv_core.Stage
module P = Spv_core.Pipeline

let pipeline () =
  P.make
    (Array.init 5 (fun i ->
         Stage.of_moments ~mu:(195.0 +. float_of_int i) ~sigma:5.0 ()))
    ~corr:(Spv_stats.Correlation.uniform ~n:5 ~rho:0.3)

let test_mean_std_delta_method () =
  let p = pipeline () in
  let mean, std = F.mean_std p in
  let rng = Spv_stats.Rng.create ~seed:160 in
  let fs = F.mc_frequencies p rng ~n:100_000 in
  check_in_range "mean vs MC"
    ~lo:(0.999 *. Spv_stats.Descriptive.mean fs)
    ~hi:(1.001 *. Spv_stats.Descriptive.mean fs)
    mean;
  check_in_range "std vs MC"
    ~lo:(0.96 *. Spv_stats.Descriptive.std fs)
    ~hi:(1.04 *. Spv_stats.Descriptive.std fs)
    std

let test_quantile_duality () =
  let p = pipeline () in
  (* Pr{f <= q_p} must equal p. *)
  List.iter
    (fun prob ->
      let q = F.quantile p ~p:prob in
      check_close ~rel:1e-9 "cdf of quantile" prob (F.cdf p q))
    [ 0.1; 0.5; 0.9 ];
  check_raises_invalid "bad p" (fun () -> ignore (F.quantile p ~p:0.0))

let test_cdf_monotone () =
  let p = pipeline () in
  let f1 = F.cdf p 0.004 and f2 = F.cdf p 0.005 and f3 = F.cdf p 0.006 in
  Alcotest.(check bool) "monotone" true (f1 <= f2 && f2 <= f3)

let test_bins_partition () =
  let p = pipeline () in
  let q25 = F.quantile p ~p:0.25 and q75 = F.quantile p ~p:0.75 in
  let bins = F.bin_fractions p ~edges:[| q25; q75 |] in
  Alcotest.(check int) "three bins" 3 (Array.length bins);
  check_close ~rel:1e-9 "fractions sum to 1" 1.0
    (Array.fold_left (fun acc b -> acc +. b.F.fraction) 0.0 bins);
  check_close ~rel:1e-6 "slow bin" 0.25 bins.(0).F.fraction;
  check_close ~rel:1e-6 "middle bin" 0.5 bins.(1).F.fraction;
  check_close ~rel:1e-6 "fast bin" 0.25 bins.(2).F.fraction;
  check_raises_invalid "decreasing edges" (fun () ->
      ignore (F.bin_fractions p ~edges:[| q75; q25 |]))

let test_expected_price () =
  let p = pipeline () in
  let q50 = F.quantile p ~p:0.5 in
  let price = F.expected_price p ~edges:[| q50 |] ~prices:[| 0.0; 100.0 |] in
  check_close ~rel:1e-6 "half the dies sell" 50.0 price;
  check_raises_invalid "price count" (fun () ->
      ignore (F.expected_price p ~edges:[| q50 |] ~prices:[| 1.0 |]))

let test_tighter_sigma_raises_revenue () =
  (* The binning argument: when the nominal design comfortably clears a
     bin edge, sigma only pushes dies below it, so reducing sigma at
     the same mean raises expected revenue.  (If the mean sat *below*
     the edge, variance would have option value — the test pins the
     regime the argument applies to.) *)
  let build sigma =
    P.make
      (Array.init 4 (fun _ -> Stage.of_moments ~mu:200.0 ~sigma ()))
      ~corr:(Spv_stats.Correlation.perfectly_correlated ~n:4)
  in
  let loose = build 12.0 and tight = build 4.0 in
  (* Bin edge at the 210 ps clock: 2.5 sigma of slack for the tight
     design, only 0.83 sigma for the loose one. *)
  let edge = 1.0 /. 210.0 in
  let prices = [| 0.0; 100.0 |] in
  Alcotest.(check bool) "tight sigma earns more" true
    (F.expected_price tight ~edges:[| edge |] ~prices
    > F.expected_price loose ~edges:[| edge |] ~prices)

let suite =
  [
    slow "delta method vs MC" test_mean_std_delta_method;
    quick "quantile/cdf duality" test_quantile_duality;
    quick "cdf monotone" test_cdf_monotone;
    quick "bins partition" test_bins_partition;
    quick "expected price" test_expected_price;
    quick "tight sigma earns more" test_tighter_sigma_raises_revenue;
  ]
