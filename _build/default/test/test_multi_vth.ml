open Helpers
module Mv = Spv_sizing.Multi_vth
module Net = Spv_circuit.Netlist
module G = Spv_circuit.Generators

let tech = Spv_process.Tech.bptm70
let ff = Spv_process.Flipflop.default tech
let z = Spv_stats.Special.big_phi_inv 0.95

let test_all_low_baseline () =
  let net = G.c432 () in
  let a = Mv.all_low net ~delay_penalty:1.15 ~vth_offset:0.08 in
  Alcotest.(check int) "no high-vth gates" 0 (Mv.n_high a);
  (* All-low timing equals the plain STA-based stat delay. *)
  let plain =
    Spv_sizing.Lagrangian.statistical_delay ~ff tech net ~z
  in
  check_close ~rel:1e-9 "matches plain timing" plain
    (Mv.stat_delay ~ff tech net a ~z)

let test_delay_factors () =
  let net = G.inverter_chain ~depth:3 () in
  let a = Mv.all_low net ~delay_penalty:1.2 ~vth_offset:0.08 in
  a.Mv.high_vth.(2) <- true;
  let f = Mv.delay_factors net a in
  check_float "low gate" 1.0 f.(1);
  check_float "high gate" 1.2 f.(2)

let test_high_vth_slows_and_saves () =
  let net = G.inverter_chain ~depth:6 () in
  let low = Mv.all_low net ~delay_penalty:1.15 ~vth_offset:0.08 in
  let high = Mv.all_low net ~delay_penalty:1.15 ~vth_offset:0.08 in
  Array.iter (fun i -> high.Mv.high_vth.(i) <- true) (Net.gate_ids net);
  check_close ~rel:1e-9 "uniform slowdown"
    (1.15 *. Mv.stat_delay tech net low ~z)
    (Mv.stat_delay tech net high ~z);
  let expected_suppression =
    Spv_circuit.Power.leakage_factor tech ~dvth:0.08
  in
  check_close ~rel:1e-9 "uniform leakage suppression"
    (expected_suppression *. Mv.leakage tech net low)
    (Mv.leakage tech net high)

let test_optimise_respects_budget () =
  let net = G.c432 () in
  let a0 = Mv.all_low net ~delay_penalty:1.15 ~vth_offset:0.08 in
  let d0 = Mv.stat_delay ~ff tech net a0 ~z in
  let t_target = 1.05 *. d0 in
  let r = Mv.optimise ~ff tech net ~t_target ~z in
  Alcotest.(check bool) "budget met" true
    (r.Mv.stat_delay_after <= t_target +. 1e-9);
  Alcotest.(check bool) "meaningful swaps" true (r.Mv.swapped > 50);
  Alcotest.(check bool) "leakage saved" true
    (r.Mv.leakage_after < 0.6 *. r.Mv.leakage_before);
  Alcotest.(check int) "assignment consistent" r.Mv.swapped
    (Mv.n_high r.Mv.assignment)

let test_zero_slack_still_saves () =
  (* Even with no timing slack at all, the off-critical-path gates can
     move to high Vth. *)
  let net = G.c432 () in
  let a0 = Mv.all_low net ~delay_penalty:1.15 ~vth_offset:0.08 in
  let t_target = Mv.stat_delay ~ff tech net a0 ~z in
  let r = Mv.optimise ~ff tech net ~t_target ~z in
  Alcotest.(check bool) "off-path gates swapped" true (r.Mv.swapped > 30);
  Alcotest.(check bool) "substantial saving" true
    (r.Mv.leakage_after < 0.7 *. r.Mv.leakage_before)

let test_more_slack_more_saving () =
  let net = G.c432 () in
  let a0 = Mv.all_low net ~delay_penalty:1.15 ~vth_offset:0.08 in
  let d0 = Mv.stat_delay ~ff tech net a0 ~z in
  let leak s = (Mv.optimise ~ff tech net ~t_target:(s *. d0) ~z).Mv.leakage_after in
  Alcotest.(check bool) "monotone" true (leak 1.15 <= leak 1.05 && leak 1.05 <= leak 1.0)

let test_single_path_cannot_swap_at_zero_slack () =
  (* On a chain every gate is critical: no swap fits a zero-slack
     budget. *)
  let net = G.inverter_chain ~depth:8 () in
  let a0 = Mv.all_low net ~delay_penalty:1.15 ~vth_offset:0.08 in
  let t_target = Mv.stat_delay ~ff tech net a0 ~z in
  let r = Mv.optimise ~ff tech net ~t_target ~z in
  Alcotest.(check int) "no swaps" 0 r.Mv.swapped

let test_validation () =
  let net = G.inverter_chain ~depth:4 () in
  check_raises_invalid "penalty < 1" (fun () ->
      ignore (Mv.all_low net ~delay_penalty:0.9 ~vth_offset:0.08));
  check_raises_invalid "infeasible target" (fun () ->
      ignore (Mv.optimise ~ff tech net ~t_target:1.0 ~z))

let suite =
  [
    quick "all-low baseline" test_all_low_baseline;
    quick "delay factors" test_delay_factors;
    quick "uniform high-vth effects" test_high_vth_slows_and_saves;
    quick "optimise respects budget" test_optimise_respects_budget;
    quick "zero slack still saves" test_zero_slack_still_saves;
    quick "more slack more saving" test_more_slack_more_saving;
    quick "chain cannot swap" test_single_path_cannot_swap_at_zero_slack;
    quick "validation" test_validation;
  ]
