open Helpers
module Tech = Spv_process.Tech
module Ap = Spv_process.Alpha_power
module V = Spv_process.Variation

(* --- Tech ----------------------------------------------------------- *)

let test_tech_defaults () =
  let t = Tech.bptm70 in
  check_float "vdd" 1.0 t.Tech.vdd;
  check_float "vth" 0.2 t.Tech.vth0;
  check_close ~rel:1e-12 "vth sensitivity" (1.3 /. 0.8)
    (Tech.delay_sensitivity_vth t);
  Alcotest.(check bool) "leff sensitivity > 1" true
    (Tech.delay_sensitivity_leff t > 1.0)

let test_tech_overrides () =
  let t = Tech.with_inter_vth Tech.bptm70 ~sigma_mv:25.0 in
  check_float "inter override" 0.025 t.Tech.sigma_vth_inter;
  let t = Tech.with_random_vth t ~sigma_mv:0.0 in
  check_float "random zero" 0.0 t.Tech.sigma_vth_rand;
  check_raises_invalid "negative" (fun () ->
      Tech.with_sys_vth Tech.bptm70 ~sigma_mv:(-1.0))

let test_no_variation () =
  let t = Tech.no_variation Tech.bptm70 in
  check_float "inter" 0.0 t.Tech.sigma_vth_inter;
  check_float "rand" 0.0 t.Tech.sigma_vth_rand;
  check_float "sys" 0.0 t.Tech.sigma_vth_sys;
  check_float "leff inter" 0.0 t.Tech.sigma_leff_rel_inter

(* --- Alpha-power ----------------------------------------------------- *)

let test_nominal_point () =
  check_float ~eps:1e-12 "delay factor at nominal" 1.0
    (Ap.delay_factor Tech.bptm70 ~dvth:0.0 ~dleff_rel:0.0);
  check_float ~eps:1e-12 "linear factor at nominal" 1.0
    (Ap.delay_factor_linear Tech.bptm70 ~dvth:0.0 ~dleff_rel:0.0)

let test_monotonicity () =
  let t = Tech.bptm70 in
  Alcotest.(check bool) "higher vth slower" true
    (Ap.delay_factor t ~dvth:0.05 ~dleff_rel:0.0 > 1.0);
  Alcotest.(check bool) "lower vth faster" true
    (Ap.delay_factor t ~dvth:(-0.05) ~dleff_rel:0.0 < 1.0);
  Alcotest.(check bool) "longer channel slower" true
    (Ap.delay_factor t ~dvth:0.0 ~dleff_rel:0.05 > 1.0)

let test_linearisation_error_small () =
  let t = Tech.bptm70 in
  (* Within +-3 sigma of the largest Vth budget (40 mV inter) the
     linearisation should stay within ~4%. *)
  List.iter
    (fun dvth ->
      check_in_range
        (Printf.sprintf "error at %.0f mV" (1000.0 *. dvth))
        ~lo:0.0 ~hi:0.05
        (Ap.linearisation_error t ~dvth))
    [ -0.12; -0.06; 0.0; 0.06; 0.12 ]

let test_current_delay_reciprocal () =
  let t = Tech.bptm70 in
  let i = Ap.drive_current_rel t ~dvth:0.03 ~dleff_rel:0.01 in
  let d = Ap.delay_factor t ~dvth:0.03 ~dleff_rel:0.01 in
  check_close ~rel:1e-12 "d = 1/i" (1.0 /. i) d

(* --- Variation ------------------------------------------------------- *)

let test_rel_sigma_components () =
  let t = Tech.bptm70 in
  Alcotest.(check bool) "inter sigma positive" true (V.rel_sigma_inter t > 0.0);
  Alcotest.(check bool) "sys sigma positive" true (V.rel_sigma_sys t > 0.0);
  (* Random component shrinks as 1/sqrt(size). *)
  check_close ~rel:1e-12 "rdf scaling"
    (V.rel_sigma_rand t ~size:1.0 /. 2.0)
    (V.rel_sigma_rand t ~size:4.0);
  let zero = Tech.no_variation t in
  check_float "no variation inter" 0.0 (V.rel_sigma_inter zero);
  check_float "no variation rand" 0.0 (V.rel_sigma_rand zero ~size:1.0)

let test_sample_inter_moments () =
  let t = Tech.bptm70 in
  let rng = Spv_stats.Rng.create ~seed:80 in
  let xs = Array.init 20_000 (fun _ -> (V.sample_inter t rng).V.dvth) in
  check_in_range "inter dvth std" ~lo:0.038 ~hi:0.042
    (Spv_stats.Descriptive.std xs);
  check_in_range "inter dvth mean" ~lo:(-0.001) ~hi:0.001
    (Spv_stats.Descriptive.mean xs)

let test_sample_rand_size_scaling () =
  let t = Tech.bptm70 in
  let rng = Spv_stats.Rng.create ~seed:81 in
  let std_at size =
    let xs = Array.init 20_000 (fun _ -> (V.sample_rand t ~size rng).V.dvth) in
    Spv_stats.Descriptive.std xs
  in
  let s1 = std_at 1.0 and s4 = std_at 4.0 in
  check_in_range "scaling ratio" ~lo:1.9 ~hi:2.1 (s1 /. s4)

let test_sys_scaled_deterministic () =
  let t = Tech.bptm70 in
  let s = V.sample_sys_scaled t ~field:1.5 in
  check_close ~rel:1e-12 "dvth" (1.5 *. t.Tech.sigma_vth_sys) s.V.dvth;
  check_close ~rel:1e-12 "dleff" (1.5 *. t.Tech.sigma_leff_rel_sys) s.V.dleff_rel

let test_shift_algebra () =
  let a = { V.dvth = 0.01; dleff_rel = 0.02 } in
  let b = { V.dvth = -0.005; dleff_rel = 0.01 } in
  let s = V.add_shift a b in
  check_float "dvth" 0.005 s.V.dvth;
  check_float ~eps:1e-12 "dleff" 0.03 s.V.dleff_rel;
  check_float "zero" 0.0 V.zero_shift.V.dvth

let test_delay_factor_consistency () =
  let t = Tech.bptm70 in
  let shift = { V.dvth = 0.02; dleff_rel = 0.01 } in
  check_close ~rel:1e-12 "linear matches alpha_power"
    (Ap.delay_factor_linear t ~dvth:0.02 ~dleff_rel:0.01)
    (V.delay_factor_linear t shift);
  check_close ~rel:1e-12 "exact matches alpha_power"
    (Ap.delay_factor t ~dvth:0.02 ~dleff_rel:0.01)
    (V.delay_factor_exact t shift)

let suite =
  [
    quick "tech defaults" test_tech_defaults;
    quick "tech overrides" test_tech_overrides;
    quick "no_variation" test_no_variation;
    quick "alpha-power nominal" test_nominal_point;
    quick "alpha-power monotone" test_monotonicity;
    quick "linearisation error" test_linearisation_error_small;
    quick "current/delay reciprocal" test_current_delay_reciprocal;
    quick "relative sigmas" test_rel_sigma_components;
    slow "inter sampling moments" test_sample_inter_moments;
    slow "rdf size scaling" test_sample_rand_size_scaling;
    quick "systematic scaling" test_sys_scaled_deterministic;
    quick "shift algebra" test_shift_algebra;
    quick "delay factor consistency" test_delay_factor_consistency;
  ]
