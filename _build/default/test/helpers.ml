(* Shared test utilities. *)

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

let check_close ?(rel = 1e-6) name expected actual =
  let eps = abs_float expected *. rel in
  Alcotest.(check (float (Float.max eps 1e-12))) name expected actual

let check_in_range name ~lo ~hi actual =
  if actual < lo || actual > hi then
    Alcotest.failf "%s: %g outside [%g, %g]" name actual lo hi

let check_raises_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Invalid_argument, got %s" name
        (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Invalid_argument, got a value" name

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let prop ?(count = 200) name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)
