open Helpers
module A = Spv_core.Adaptive
module P = Spv_core.Pipeline
module Stage = Spv_core.Stage
module Gd = Spv_process.Gate_delay

(* Pipelines with controllable component mixes. *)
let mk_pipeline ~inter ~sys ~rand =
  let stages =
    Array.init 4 (fun i ->
        Stage.make
          ~name:(string_of_int i)
          ~position:(Spv_process.Spatial.position ~x:(float_of_int i) ~y:0.0)
          (Gd.make ~nominal:100.0 ~sigma_inter:inter ~sigma_sys:sys
             ~sigma_rand:rand))
  in
  P.of_stages ~corr_length:2.0 stages

let test_zero_range_is_baseline () =
  let p = mk_pipeline ~inter:6.0 ~sys:2.0 ~rand:2.0 in
  let t_target = 112.0 in
  check_close ~rel:2e-3 "no ABB = plain yield"
    (Spv_core.Yield.clark_gaussian p ~t_target)
    (A.yield_with_abb ~policy:{ A.range = 0.0 } p ~t_target)

let test_abb_rescues_inter_dominated () =
  let p = mk_pipeline ~inter:8.0 ~sys:1.0 ~rand:1.0 in
  let t_target = 108.0 in
  let before = Spv_core.Yield.clark_gaussian p ~t_target in
  let after = A.yield_with_abb p ~t_target in
  Alcotest.(check bool) "substantial gain" true (after > before +. 0.05);
  (* With the inter component cancelled, yield approaches that of the
     residual-only pipeline. *)
  let residual_only = mk_pipeline ~inter:0.0 ~sys:1.0 ~rand:1.0 in
  let ceiling = Spv_core.Yield.clark_gaussian residual_only ~t_target in
  Alcotest.(check bool) "below residual ceiling" true (after <= ceiling +. 1e-3)

let test_abb_useless_for_random_only () =
  let p = mk_pipeline ~inter:0.0 ~sys:0.0 ~rand:6.0 in
  let t_target = 110.0 in
  check_close ~rel:2e-3 "no inter, no gain"
    (Spv_core.Yield.clark_gaussian p ~t_target)
    (A.yield_with_abb p ~t_target)

let test_gain_nonnegative_and_monotone_in_range () =
  let p = mk_pipeline ~inter:6.0 ~sys:2.0 ~rand:2.0 in
  let t_target = 110.0 in
  let y r = A.yield_with_abb ~policy:{ A.range = r } p ~t_target in
  Alcotest.(check bool) "monotone in range" true
    (y 0.02 <= y 0.05 +. 1e-9 && y 0.05 <= y 0.15 +. 1e-9);
  Alcotest.(check bool) "gain nonnegative" true
    (A.yield_gain p ~t_target >= -1e-6)

let test_matches_mc () =
  let p = mk_pipeline ~inter:6.0 ~sys:2.0 ~rand:3.0 in
  let t_target = 109.0 in
  let analytic = A.yield_with_abb p ~t_target in
  let mc =
    A.mc_yield_with_abb p (Spv_stats.Rng.create ~seed:230) ~n:150_000 ~t_target
  in
  check_in_range "analytic vs MC" ~lo:(mc -. 0.01) ~hi:(mc +. 0.01) analytic

let test_leakage_overhead () =
  let tech = Spv_process.Tech.bptm70 in
  let p = mk_pipeline ~inter:6.0 ~sys:2.0 ~rand:2.0 in
  let none = A.leakage_overhead ~policy:{ A.range = 0.0 } tech p in
  check_close ~rel:1e-9 "disabled = 1" 1.0 none;
  let active = A.leakage_overhead tech p in
  (* Bias is applied in both directions; the exponential makes the
     forward-bias (leaky) side dominate slightly. *)
  Alcotest.(check bool) "overhead near but above 1" true
    (active > 1.0 && active < 2.0)

let test_validation () =
  let p = mk_pipeline ~inter:1.0 ~sys:1.0 ~rand:1.0 in
  check_raises_invalid "negative range" (fun () ->
      ignore (A.yield_with_abb ~policy:{ A.range = -0.1 } p ~t_target:100.0))

let suite =
  [
    quick "zero range is baseline" test_zero_range_is_baseline;
    quick "rescues inter-dominated" test_abb_rescues_inter_dominated;
    quick "useless for random-only" test_abb_useless_for_random_only;
    quick "monotone in range" test_gain_nonnegative_and_monotone_in_range;
    slow "matches MC" test_matches_mc;
    quick "leakage overhead" test_leakage_overhead;
    quick "validation" test_validation;
  ]
