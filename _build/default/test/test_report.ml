open Helpers
module R = Spv_circuit.Report
module H = Spv_stats.Heap
module G = Spv_circuit.Generators
module B = Spv_circuit.Builder

let tech = Spv_process.Tech.bptm70

(* --- Heap -------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = H.create () in
  List.iter (fun p -> H.push h ~priority:p p) [ 3.0; 1.0; 4.0; 1.5; 9.0; 2.0 ];
  Alcotest.(check int) "length" 6 (H.length h);
  let rec drain acc =
    match H.pop h with Some (_, v) -> drain (v :: acc) | None -> List.rev acc
  in
  Alcotest.(check (list (float 1e-12))) "descending"
    [ 9.0; 4.0; 3.0; 2.0; 1.5; 1.0 ]
    (drain [])

let test_heap_interleaved () =
  let h = H.create () in
  H.push h ~priority:1.0 "a";
  H.push h ~priority:5.0 "b";
  (match H.pop h with
  | Some (p, v) ->
      check_float "top priority" 5.0 p;
      Alcotest.(check string) "top value" "b" v
  | None -> Alcotest.fail "empty");
  H.push h ~priority:3.0 "c";
  (match H.peek h with
  | Some (_, v) -> Alcotest.(check string) "peek" "c" v
  | None -> Alcotest.fail "empty");
  Alcotest.(check bool) "not empty" false (H.is_empty h)

let prop_heap_sorts =
  prop "heap pops sorted"
    QCheck2.Gen.(list_size (int_range 0 100) (float_range (-100.0) 100.0))
    (fun xs ->
      let h = H.create () in
      List.iter (fun x -> H.push h ~priority:x x) xs;
      let rec drain acc =
        match H.pop h with Some (p, _) -> drain (p :: acc) | None -> acc
      in
      let popped = drain [] in
      popped = List.sort compare xs)

(* --- k-longest paths ----------------------------------------------------- *)

let test_single_path_circuit () =
  let net = G.inverter_chain ~depth:5 () in
  let paths = R.k_longest_paths tech net ~k:10 in
  Alcotest.(check int) "one path" 1 (Array.length paths);
  Alcotest.(check int) "its length" 5 (List.length paths.(0).R.gates);
  check_close ~rel:1e-9 "matches STA" (Spv_circuit.Sta.run tech net).Spv_circuit.Sta.delay
    paths.(0).R.nominal

let test_descending_order_and_top_matches_sta () =
  let net = G.c432 () in
  let paths = R.k_longest_paths tech net ~k:25 in
  Alcotest.(check int) "found 25" 25 (Array.length paths);
  check_close ~rel:1e-9 "top = critical"
    (Spv_circuit.Sta.run tech net).Spv_circuit.Sta.delay
    paths.(0).R.nominal;
  for i = 1 to Array.length paths - 1 do
    Alcotest.(check bool) "descending" true
      (paths.(i).R.nominal <= paths.(i - 1).R.nominal +. 1e-9)
  done

let test_paths_are_connected () =
  let net = G.alu_slice ~bits:4 () in
  let paths = R.k_longest_paths tech net ~k:5 in
  Array.iter
    (fun p ->
      let rec walk = function
        | [] | [ _ ] -> ()
        | x :: (y :: _ as rest) ->
            (match Spv_circuit.Netlist.node net y with
            | Spv_circuit.Netlist.Gate { fanin; _ } ->
                Alcotest.(check bool) "edge exists" true
                  (Array.exists (fun f -> f = x) fanin)
            | Spv_circuit.Netlist.Primary_input _ -> Alcotest.fail "input mid-path");
            walk rest
      in
      walk p.R.gates)
    paths

let test_diamond_counts_both_paths () =
  (* Two parallel branches of different lengths reconverging. *)
  let b = B.create ~name:"diamond" in
  let a = B.input b "a" in
  let slow1 = B.inv b a in
  let slow2 = B.inv b slow1 in
  let fast = B.inv b a in
  let join = B.nand2 b slow2 fast in
  B.output b join;
  let net = B.finish b in
  let paths = R.k_longest_paths tech net ~k:10 in
  Alcotest.(check int) "two distinct paths" 2 (Array.length paths);
  Alcotest.(check int) "slow path longer" 3 (List.length paths.(0).R.gates);
  Alcotest.(check int) "fast path shorter" 2 (List.length paths.(1).R.gates)

let test_path_nominal_matches_statistical () =
  let net = G.c432 () in
  let paths = R.k_longest_paths tech net ~k:3 in
  Array.iter
    (fun p ->
      check_close ~rel:1e-9 "nominal consistent" p.R.nominal
        p.R.statistical.Spv_process.Gate_delay.nominal)
    paths

let test_path_yield_bounds () =
  let net = G.c432 () in
  let paths = R.k_longest_paths tech net ~k:20 in
  let y = R.path_yield paths.(0) ~t_target:600.0 in
  check_in_range "yield" ~lo:0.0 ~hi:1.0 y;
  (* A clearly slower path has lower yield at the same target (the
     top ranks can tie in nominal delay, so compare first vs last). *)
  let last = paths.(Array.length paths - 1) in
  Alcotest.(check bool) "clearly slower, lower yield" true
    (R.path_yield paths.(0) ~t_target:520.0
    < R.path_yield last ~t_target:520.0)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let test_render_contains_sections () =
  let net = G.c432 () in
  let text = R.render ~k:3 ~t_target:600.0 tech net in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains text needle))
    [ "critical delay"; "top 3 paths"; "most critical gates"; "P(<=" ]

let suite =
  [
    quick "heap ordering" test_heap_ordering;
    quick "heap interleaved" test_heap_interleaved;
    prop_heap_sorts;
    quick "single path" test_single_path_circuit;
    quick "descending order" test_descending_order_and_top_matches_sta;
    quick "paths connected" test_paths_are_connected;
    quick "diamond counts both" test_diamond_counts_both_paths;
    quick "nominal vs statistical" test_path_nominal_matches_statistical;
    quick "path yields" test_path_yield_bounds;
    quick "render sections" test_render_contains_sections;
  ]
