open Helpers
module Q = Spv_stats.Quadrature

let test_simpson_polynomial () =
  (* Simpson is exact for cubics. *)
  let f x = (x *. x *. x) -. (2.0 *. x) +. 1.0 in
  check_close ~rel:1e-12 "cubic" (4.0 -. 4.0 +. 2.0)
    (Q.simpson ~f ~lo:(-1.0) ~hi:1.0 ~n:2)

let test_simpson_sin () =
  check_close ~rel:1e-8 "int sin over [0,pi]" 2.0
    (Q.simpson ~f:sin ~lo:0.0 ~hi:Float.pi ~n:200)

let test_adaptive () =
  check_close ~rel:1e-9 "adaptive exp" (exp 1.0 -. 1.0)
    (Q.adaptive_simpson ~f:exp ~lo:0.0 ~hi:1.0 ());
  check_close ~rel:1e-8 "adaptive peaked"
    (atan 50.0 -. atan (-50.0))
    (Q.adaptive_simpson ~f:(fun x -> 1.0 /. (1.0 +. (x *. x))) ~lo:(-50.0)
       ~hi:50.0 ())

let test_gauss_legendre () =
  check_close ~rel:1e-12 "GL32 polynomial"
    (2.0 /. 3.0)
    (Q.gauss_legendre_32 ~f:(fun x -> x *. x) ~lo:(-1.0) ~hi:1.0);
  check_close ~rel:1e-6 "GL32 gaussian integral" 1.0
    (Q.gauss_legendre_32 ~f:Spv_stats.Special.phi ~lo:(-8.0) ~hi:8.0)

let test_expectation_of_max2_vs_clark () =
  (* Clark's 2-variable formulas are exact; quadrature must agree. *)
  List.iter
    (fun (mu1, s1, mu2, s2, rho) ->
      let g1 = Spv_stats.Gaussian.make ~mu:mu1 ~sigma:s1 in
      let g2 = Spv_stats.Gaussian.make ~mu:mu2 ~sigma:s2 in
      let m = Spv_core.Clark.max2_moments g1 g2 ~rho in
      let e1, e2 = Q.expectation_of_max2 ~mu1 ~sigma1:s1 ~mu2 ~sigma2:s2 ~rho in
      check_close ~rel:5e-3 "mean" m.Spv_core.Clark.mean e1;
      check_close ~rel:2e-2 "second moment"
        (m.Spv_core.Clark.variance +. (m.Spv_core.Clark.mean ** 2.0))
        e2)
    [
      (0.0, 1.0, 0.0, 1.0, 0.0);
      (10.0, 2.0, 11.0, 3.0, 0.4);
      (5.0, 1.0, 8.0, 0.5, -0.3);
    ]

let suite =
  [
    quick "simpson cubic exact" test_simpson_polynomial;
    quick "simpson sin" test_simpson_sin;
    quick "adaptive simpson" test_adaptive;
    quick "gauss-legendre" test_gauss_legendre;
    quick "max2 expectation vs Clark" test_expectation_of_max2_vs_clark;
  ]
