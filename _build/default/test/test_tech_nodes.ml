open Helpers
module Tech = Spv_process.Tech

let test_node_list () =
  Alcotest.(check int) "four nodes" 4 (List.length Tech.scaling_nodes);
  Alcotest.(check (list string)) "order"
    [ "node130"; "node90"; "bptm70"; "node45" ]
    (List.map (fun t -> t.Tech.name) Tech.scaling_nodes)

let test_scaling_trends () =
  let pairs l = List.combine (List.filteri (fun i _ -> i < 3) l) (List.tl l) in
  List.iter
    (fun (older, newer) ->
      Alcotest.(check bool) "tau shrinks" true (newer.Tech.tau < older.Tech.tau);
      Alcotest.(check bool) "vdd shrinks" true (newer.Tech.vdd < older.Tech.vdd);
      Alcotest.(check bool) "leff shrinks" true (newer.Tech.leff0 < older.Tech.leff0);
      Alcotest.(check bool) "random vth sigma grows" true
        (newer.Tech.sigma_vth_rand > older.Tech.sigma_vth_rand);
      Alcotest.(check bool) "inter vth sigma grows" true
        (newer.Tech.sigma_vth_inter > older.Tech.sigma_vth_inter))
    (pairs Tech.scaling_nodes)

let test_variability_grows_with_scaling () =
  (* The same circuit gets relatively noisier every node — the paper's
     framing. *)
  let net = Spv_circuit.Generators.inverter_chain ~depth:8 () in
  let variability tech =
    Spv_stats.Gaussian.variability (Spv_circuit.Ssta.stage_gaussian tech net)
  in
  let vs = List.map variability Tech.scaling_nodes in
  match vs with
  | [ v130; v90; v70; v45 ] ->
      Alcotest.(check bool) "monotone" true (v130 < v90 && v90 < v70 && v70 < v45)
  | _ -> Alcotest.fail "expected four nodes"

let test_yield_degrades_with_scaling () =
  let rows = Spv_experiments.Ablations.node_scaling_study () in
  let yields = List.map (fun (_, _, _, y) -> y) rows in
  match yields with
  | [ y130; y90; y70; y45 ] ->
      Alcotest.(check bool) "fixed guardband yield falls" true
        (y130 > y90 && y90 > y70 && y70 > y45)
  | _ -> Alcotest.fail "expected four rows"

let suite =
  [
    quick "node list" test_node_list;
    quick "scaling trends" test_scaling_trends;
    quick "variability grows" test_variability_grows_with_scaling;
    quick "yield degrades" test_yield_degrades_with_scaling;
  ]
