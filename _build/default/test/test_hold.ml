open Helpers
module H = Spv_core.Hold
module G = Spv_stats.Gaussian
module Gen = Spv_circuit.Generators

let tech = Spv_process.Tech.bptm70
let ff = Spv_process.Flipflop.default tech

let test_min2_symmetry_with_max () =
  (* min(X,Y) = -(max(-X,-Y)) and E[min] + E[max] = E[X] + E[Y]. *)
  let a = G.make ~mu:10.0 ~sigma:2.0 and b = G.make ~mu:12.0 ~sigma:3.0 in
  let mn = H.min2 a b ~rho:0.3 in
  let mx = Spv_core.Clark.max2 a b ~rho:0.3 in
  check_close ~rel:1e-9 "mean identity" (10.0 +. 12.0) (G.mu mn +. G.mu mx);
  Alcotest.(check bool) "min below both" true (G.mu mn < 10.0)

let test_min2_standard_value () =
  (* E[min of two iid N(0,1)] = -1/sqrt(pi). *)
  let g = G.make ~mu:0.0 ~sigma:1.0 in
  let mn = H.min2 g g ~rho:0.0 in
  check_close ~rel:1e-9 "closed form" (-1.0 /. sqrt Float.pi) (G.mu mn)

let test_min_n_against_mc () =
  let gs = Array.init 4 (fun i -> G.make ~mu:(100.0 +. float_of_int i) ~sigma:5.0) in
  let corr = Spv_stats.Correlation.uniform ~n:4 ~rho:0.4 in
  let mn = H.min_n gs ~corr in
  let mvn =
    Spv_stats.Mvn.create
      ~mus:(Array.map G.mu gs) ~sigmas:(Array.map G.sigma gs) ~corr
  in
  let rng = Spv_stats.Rng.create ~seed:180 in
  let samples =
    Array.init 100_000 (fun _ ->
        Array.fold_left Float.min infinity (Spv_stats.Mvn.sample mvn rng))
  in
  let mc_mean = Spv_stats.Descriptive.mean samples in
  check_in_range "mean vs MC" ~lo:(mc_mean -. 0.05) ~hi:(mc_mean +. 0.05) (G.mu mn);
  Alcotest.(check bool) "min below every mean" true (G.mu mn < 100.0)

let test_short_path_shorter_than_critical () =
  let net = Gen.c432 () in
  let short = H.short_path_delay tech net in
  let crit = (Spv_circuit.Ssta.analyse_stage tech net).Spv_circuit.Ssta.comb in
  Alcotest.(check bool) "short < critical" true
    (short.Spv_process.Gate_delay.nominal
    < crit.Spv_process.Gate_delay.nominal)

let test_short_path_on_chain () =
  (* A single-path circuit: min path = max path. *)
  let net = Gen.inverter_chain ~depth:6 () in
  let short = H.short_path_delay tech net in
  let crit = (Spv_circuit.Ssta.analyse_stage tech net).Spv_circuit.Ssta.comb in
  check_close ~rel:1e-9 "identical" crit.Spv_process.Gate_delay.nominal
    short.Spv_process.Gate_delay.nominal

let test_hold_yield_monotone_in_requirement () =
  let net = Gen.c432 () in
  let y h = H.hold_yield_stage tech ~ff ~hold_ps:h net in
  Alcotest.(check bool) "harder hold, lower yield" true
    (y 5.0 >= y 30.0 && y 30.0 >= y 80.0);
  (* A trivial hold requirement is always met. *)
  check_close ~rel:1e-9 "trivial hold" 1.0 (y 0.0)

let test_hold_yield_pipeline_below_stage () =
  let nets = Gen.inverter_chain_pipeline ~stages:4 ~depth:5 () in
  let hold_ps = 40.0 in
  let stage_y = H.hold_yield_stage tech ~ff ~hold_ps nets.(0) in
  let pipe_y = H.hold_yield_pipeline tech ~ff ~hold_ps nets in
  Alcotest.(check bool) "pipeline cannot beat a stage" true
    (pipe_y <= stage_y +. 1e-9)

let test_hold_yield_mc_check () =
  (* MC over the joint decomposed model of a 2-stage pipeline. *)
  let nets = Gen.inverter_chain_pipeline ~stages:2 ~depth:5 () in
  let hold_ps = 44.0 in
  let analytic = H.hold_yield_pipeline tech ~ff ~hold_ps nets in
  (* Sample margins per stage jointly. *)
  let positions = Spv_process.Spatial.row_positions ~n:2 ~pitch:1.0 in
  let margins =
    Array.map
      (fun net ->
        Spv_process.Gate_delay.add ff.Spv_process.Flipflop.clk_to_q
          (H.short_path_delay tech net))
      nets
  in
  let corr =
    Spv_stats.Correlation.of_function ~n:2 (fun i j ->
        let sys_rho =
          exp
            (-.Spv_process.Spatial.distance positions.(i) positions.(j)
             /. tech.Spv_process.Tech.corr_length)
        in
        Spv_process.Gate_delay.correlation margins.(i) margins.(j) ~sys_rho)
  in
  let mvn =
    Spv_stats.Mvn.create
      ~mus:(Array.map (fun m -> m.Spv_process.Gate_delay.nominal) margins)
      ~sigmas:(Array.map Spv_process.Gate_delay.total_sigma margins)
      ~corr
  in
  let rng = Spv_stats.Rng.create ~seed:181 in
  let pass = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let d = Spv_stats.Mvn.sample mvn rng in
    if d.(0) >= hold_ps && d.(1) >= hold_ps then incr pass
  done;
  let mc = float_of_int !pass /. float_of_int n in
  check_in_range "analytic vs MC" ~lo:(mc -. 0.01) ~hi:(mc +. 0.01) analytic

let test_combined_yield () =
  check_close ~rel:1e-12 "product" 0.72 (H.combined_yield ~setup:0.9 ~hold:0.8);
  check_raises_invalid "bad setup" (fun () ->
      ignore (H.combined_yield ~setup:1.2 ~hold:0.5))

let suite =
  [
    quick "min2 symmetry" test_min2_symmetry_with_max;
    quick "min2 closed form" test_min2_standard_value;
    slow "min_n vs MC" test_min_n_against_mc;
    quick "short < critical" test_short_path_shorter_than_critical;
    quick "chain degenerate" test_short_path_on_chain;
    quick "hold yield monotone" test_hold_yield_monotone_in_requirement;
    quick "pipeline below stage" test_hold_yield_pipeline_below_stage;
    slow "hold yield vs MC" test_hold_yield_mc_check;
    quick "combined yield" test_combined_yield;
  ]
