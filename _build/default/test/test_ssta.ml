open Helpers
module Ssta = Spv_circuit.Ssta
module G = Spv_circuit.Generators
module Gd = Spv_process.Gate_delay
module Tech = Spv_process.Tech
module D = Spv_stats.Descriptive

let tech = Tech.bptm70
let ff = Spv_process.Flipflop.default tech

let test_analytic_matches_sta () =
  let net = G.inverter_chain ~depth:8 () in
  let an = Ssta.analyse_stage tech net in
  check_close ~rel:1e-12 "comb nominal = critical delay"
    an.Ssta.nominal.Spv_circuit.Sta.delay an.Ssta.comb.Gd.nominal

let test_ff_included () =
  let net = G.inverter_chain ~depth:8 () in
  let without = (Ssta.analyse_stage tech net).Ssta.total in
  let with_ff = (Ssta.analyse_stage ~ff tech net).Ssta.total in
  check_close ~rel:1e-12 "ff adds overhead"
    (without.Gd.nominal +. Spv_process.Flipflop.nominal_overhead ff)
    with_ff.Gd.nominal

let test_mc_agrees_with_analytic_chain () =
  (* Single-path circuit: the analytic critical-path composition is
     exact, so MC must agree on both moments. *)
  let net = G.inverter_chain ~depth:10 () in
  let g = Ssta.stage_gaussian ~ff tech net in
  let rng = Spv_stats.Rng.create ~seed:110 in
  let xs = Ssta.mc_stage_delays ~ff tech net rng ~n:8000 in
  let mu = Spv_stats.Gaussian.mu g and sigma = Spv_stats.Gaussian.sigma g in
  check_in_range "mean" ~lo:(mu -. (0.01 *. mu)) ~hi:(mu +. (0.01 *. mu))
    (D.mean xs);
  check_in_range "std" ~lo:(0.93 *. sigma) ~hi:(1.07 *. sigma) (D.std xs)

let test_mc_mean_dominates_for_multipath () =
  (* With many near-critical paths the true mean exceeds the single
     critical-path estimate (max of several correlated paths). *)
  let net = G.c432 () in
  let g = Ssta.stage_gaussian tech net in
  let rng = Spv_stats.Rng.create ~seed:111 in
  let xs = Ssta.mc_stage_delays tech net rng ~n:2000 in
  Alcotest.(check bool) "MC mean >= analytic mean (within noise)" true
    (D.mean xs >= Spv_stats.Gaussian.mu g *. 0.995)

let test_no_variation_is_deterministic () =
  let t0 = Tech.no_variation tech in
  let net = G.inverter_chain ~depth:6 () in
  let rng = Spv_stats.Rng.create ~seed:112 in
  let xs = Ssta.mc_stage_delays t0 net rng ~n:16 in
  let nominal = (Spv_circuit.Sta.run t0 net).Spv_circuit.Sta.delay in
  Array.iter (fun x -> check_close ~rel:1e-12 "all samples nominal" nominal x) xs

let test_pipeline_max_property () =
  (* Pipeline MC samples must dominate each constituent stage's
     samples drawn under the same seed schedule in expectation. *)
  let nets = G.inverter_chain_pipeline ~stages:4 ~depth:6 () in
  let rng = Spv_stats.Rng.create ~seed:113 in
  let per_stage = Ssta.mc_per_stage_samples ~ff tech nets rng ~n:3000 in
  let tp =
    Array.init 3000 (fun t ->
        Array.fold_left (fun acc s -> Float.max acc s.(t)) neg_infinity per_stage)
  in
  let stage_mean = D.mean per_stage.(0) in
  Alcotest.(check bool) "max mean above stage mean" true
    (D.mean tp >= stage_mean);
  (* And every sample is >= the stage's sample. *)
  let ok = ref true in
  for t = 0 to 2999 do
    if tp.(t) < per_stage.(2).(t) then ok := false
  done;
  Alcotest.(check bool) "pointwise max" true !ok

let test_stage_correlation_from_components () =
  (* Under inter-only variation stages are almost perfectly
     correlated; under random-only they are nearly independent. *)
  let check_tech tech ~lo ~hi label =
    let nets = G.inverter_chain_pipeline ~stages:2 ~depth:8 () in
    let rng = Spv_stats.Rng.create ~seed:114 in
    let per_stage = Ssta.mc_per_stage_samples ~ff:(Spv_process.Flipflop.default tech) tech nets rng ~n:4000 in
    let rho =
      Spv_stats.Correlation.sample_correlation per_stage.(0) per_stage.(1)
    in
    check_in_range label ~lo ~hi rho
  in
  let inter_only =
    let t = Tech.no_variation tech in
    Tech.with_inter_vth t ~sigma_mv:40.0
  in
  let random_only =
    let t = Tech.no_variation tech in
    Tech.with_random_vth t ~sigma_mv:30.0
  in
  check_tech inter_only ~lo:0.97 ~hi:1.0 "inter-only highly correlated";
  check_tech random_only ~lo:(-0.1) ~hi:0.1 "random-only uncorrelated"

let test_exact_factor_mode () =
  (* The exact alpha-power mode must produce slightly different (and
     right-skewed) samples, but similar location. *)
  let net = G.inverter_chain ~depth:8 () in
  let rng1 = Spv_stats.Rng.create ~seed:115 in
  let rng2 = Spv_stats.Rng.create ~seed:115 in
  let lin = Ssta.mc_stage_delays ~ff tech net rng1 ~n:4000 in
  let ext = Ssta.mc_stage_delays ~ff ~exact:true tech net rng2 ~n:4000 in
  check_in_range "means close" ~lo:0.97 ~hi:1.03 (D.mean ext /. D.mean lin);
  Alcotest.(check bool) "exact more right-skewed" true
    (D.skewness ext > D.skewness lin -. 0.05)

let suite =
  [
    quick "analytic matches STA" test_analytic_matches_sta;
    quick "ff overhead included" test_ff_included;
    slow "MC agrees on chain" test_mc_agrees_with_analytic_chain;
    quick "no variation is deterministic" test_no_variation_is_deterministic;
    slow "multipath mean domination" test_mc_mean_dominates_for_multipath;
    slow "pipeline max property" test_pipeline_max_property;
    slow "stage correlation decomposition" test_stage_correlation_from_components;
    slow "exact factor mode" test_exact_factor_mode;
  ]
