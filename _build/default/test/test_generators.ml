open Helpers
module G = Spv_circuit.Generators
module Net = Spv_circuit.Netlist
module Topo = Spv_circuit.Topo

let test_inverter_chain () =
  let net = G.inverter_chain ~depth:7 () in
  Alcotest.(check int) "gates" 7 (Net.n_gates net);
  Alcotest.(check int) "depth" 7 (Topo.depth net);
  (* Functionally: odd chain inverts. *)
  let v = Net.eval net ~inputs:[| true |] in
  Alcotest.(check bool) "odd chain inverts" false v.(7);
  check_raises_invalid "bad depth" (fun () -> ignore (G.inverter_chain ~depth:0 ()))

let test_chain_pipeline () =
  let nets = G.inverter_chain_pipeline ~stages:5 ~depth:3 () in
  Alcotest.(check int) "stages" 5 (Array.length nets);
  Array.iter (fun n -> Alcotest.(check int) "depth" 3 (Topo.depth n)) nets

let test_variable_depths () =
  let nets = G.variable_depth_pipeline ~depths:[| 2; 4; 6 |] () in
  Alcotest.(check int) "depth 1" 4 (Topo.depth nets.(1));
  Alcotest.(check int) "depth 2" 6 (Topo.depth nets.(2))

let eval_adder net ~bits a b cin =
  let inputs = Array.make ((2 * bits) + 1) false in
  for i = 0 to bits - 1 do
    inputs.(i) <- (a lsr i) land 1 = 1;
    inputs.(bits + i) <- (b lsr i) land 1 = 1
  done;
  inputs.(2 * bits) <- cin;
  let values = Net.eval net ~inputs in
  let outs = Net.outputs net in
  (* Outputs are sum bits then carry. *)
  let sum = ref 0 in
  for i = 0 to bits - 1 do
    if values.(outs.(i)) then sum := !sum lor (1 lsl i)
  done;
  let carry = values.(outs.(bits)) in
  (!sum, carry)

let test_ripple_adder_functional () =
  let bits = 4 in
  let net = G.ripple_carry_adder ~bits in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let sum, carry = eval_adder net ~bits a b false in
      let expected = a + b in
      Alcotest.(check int)
        (Printf.sprintf "%d+%d sum" a b)
        (expected land 15) sum;
      Alcotest.(check bool)
        (Printf.sprintf "%d+%d carry" a b)
        (expected > 15) carry
    done
  done;
  let sum, carry = eval_adder net ~bits 15 0 true in
  Alcotest.(check int) "15+0+1 wraps" 0 sum;
  Alcotest.(check bool) "15+0+1 carries" true carry

let test_kogge_stone_functional () =
  let bits = 4 in
  let net = G.kogge_stone_adder ~bits in
  for a = 0 to 15 do
    for b = 0 to 15 do
      List.iter
        (fun cin ->
          let sum, carry = eval_adder net ~bits a b cin in
          let expected = a + b + if cin then 1 else 0 in
          Alcotest.(check int)
            (Printf.sprintf "ks %d+%d+%b sum" a b cin)
            (expected land 15) sum;
          Alcotest.(check bool)
            (Printf.sprintf "ks %d+%d+%b carry" a b cin)
            (expected > 15) carry)
        [ false; true ]
    done
  done

let test_kogge_stone_log_depth () =
  (* The point of the prefix structure: logarithmic depth vs linear. *)
  let ks = G.kogge_stone_adder ~bits:16 in
  let rca = G.ripple_carry_adder ~bits:16 in
  Alcotest.(check bool) "shallower than ripple" true
    (Topo.depth ks < Topo.depth rca / 2)

let eval_multiplier net ~bits a b =
  let inputs = Array.make (2 * bits) false in
  for i = 0 to bits - 1 do
    inputs.(i) <- (a lsr i) land 1 = 1;
    inputs.(bits + i) <- (b lsr i) land 1 = 1
  done;
  let values = Net.eval net ~inputs in
  let outs = Net.outputs net in
  let r = ref 0 in
  for w = 0 to (2 * bits) - 1 do
    if values.(outs.(w)) then r := !r lor (1 lsl w)
  done;
  !r

let test_array_multiplier_functional () =
  let bits = 4 in
  let net = G.array_multiplier ~bits in
  for a = 0 to 15 do
    for b = 0 to 15 do
      Alcotest.(check int)
        (Printf.sprintf "%d*%d" a b)
        (a * b)
        (eval_multiplier net ~bits a b)
    done
  done

let eval_alu net ~bits a b op =
  (* Inputs in declaration order: a bits, b bits, cin, op0, op1. *)
  let inputs = Array.make ((2 * bits) + 3) false in
  for i = 0 to bits - 1 do
    inputs.(i) <- (a lsr i) land 1 = 1;
    inputs.(bits + i) <- (b lsr i) land 1 = 1
  done;
  inputs.((2 * bits) + 1) <- op land 1 = 1;
  inputs.((2 * bits) + 2) <- op land 2 = 2;
  let values = Net.eval net ~inputs in
  let outs = Net.outputs net in
  let r = ref 0 in
  for i = 0 to bits - 1 do
    if values.(outs.(i)) then r := !r lor (1 lsl i)
  done;
  !r

let test_alu_functional () =
  let bits = 4 in
  let net = G.alu_slice ~bits () in
  let mask = 15 in
  List.iter
    (fun (a, b) ->
      Alcotest.(check int) "add" ((a + b) land mask) (eval_alu net ~bits a b 0);
      Alcotest.(check int) "and" (a land b) (eval_alu net ~bits a b 1);
      Alcotest.(check int) "or" (a lor b) (eval_alu net ~bits a b 2);
      Alcotest.(check int) "xor" (a lxor b) (eval_alu net ~bits a b 3))
    [ (3, 5); (15, 1); (0, 0); (9, 6); (12, 10) ]

let test_decoder_functional () =
  let net = G.decoder ~select:3 () in
  for code = 0 to 7 do
    let inputs = Array.init 3 (fun i -> (code lsr i) land 1 = 1) in
    let values = Net.eval net ~inputs in
    let outs = Net.outputs net in
    Array.iteri
      (fun line id ->
        Alcotest.(check bool)
          (Printf.sprintf "code %d line %d" code line)
          (line = code) values.(id))
      outs
  done

let test_decoder_buffered_still_decodes () =
  let net = G.decoder ~input_buffer_depth:4 ~select:2 () in
  Alcotest.(check int) "depth includes buffers" 6 (Topo.depth net);
  let values = Net.eval net ~inputs:[| true; false |] in
  let outs = Net.outputs net in
  Alcotest.(check bool) "line 1 active" true values.(outs.(1));
  Alcotest.(check bool) "line 0 inactive" false values.(outs.(0));
  check_raises_invalid "odd buffer depth" (fun () ->
      ignore (G.decoder ~input_buffer_depth:3 ~select:2 ()))

let test_random_logic_properties () =
  let net = G.random_logic ~name:"r" ~inputs:10 ~gates:200 ~depth:15 ~seed:5 in
  Alcotest.(check int) "gate count exact" 200 (Net.n_gates net);
  Alcotest.(check int) "depth exact" 15 (Topo.depth net);
  (* No dangling logic: every gate either has fanout or is an output. *)
  Array.iter
    (fun id ->
      let has_fanout = Net.fanouts net id <> [] in
      let is_output = Array.exists (fun o -> o = id) (Net.outputs net) in
      Alcotest.(check bool) "no dangling" true (has_fanout || is_output))
    (Net.gate_ids net)

let test_random_logic_deterministic () =
  let a = G.random_logic ~name:"r" ~inputs:8 ~gates:50 ~depth:6 ~seed:42 in
  let b = G.random_logic ~name:"r" ~inputs:8 ~gates:50 ~depth:6 ~seed:42 in
  Alcotest.(check int) "same structure" (Net.n_nodes a) (Net.n_nodes b);
  (* Same functional behaviour on a probe vector. *)
  let inputs = Array.init 8 (fun i -> i mod 2 = 0) in
  Alcotest.(check (array bool)) "same eval" (Net.eval a ~inputs) (Net.eval b ~inputs)

let test_random_logic_seed_matters () =
  let a = G.random_logic ~name:"r" ~inputs:8 ~gates:50 ~depth:6 ~seed:1 in
  let b = G.random_logic ~name:"r" ~inputs:8 ~gates:50 ~depth:6 ~seed:2 in
  let inputs = Array.init 8 (fun i -> i mod 3 = 0) in
  Alcotest.(check bool) "different circuits" true
    (Net.eval a ~inputs <> Net.eval b ~inputs)

let test_iscas_profiles () =
  List.iter
    (fun (p : G.iscas_profile) ->
      let net =
        match p.G.bench_name with
        | "c432" -> G.c432 ()
        | "c1908" -> G.c1908 ()
        | "c2670" -> G.c2670 ()
        | "c3540" -> G.c3540 ()
        | other -> Alcotest.failf "unexpected profile %s" other
      in
      Alcotest.(check int) (p.G.bench_name ^ " gates") p.G.n_gates (Net.n_gates net);
      Alcotest.(check int) (p.G.bench_name ^ " depth") p.G.logic_depth (Topo.depth net))
    G.iscas_profiles

let test_iscas_pipeline_depth_equalised () =
  let nets = G.iscas_pipeline () in
  Alcotest.(check int) "4 stages" 4 (Array.length nets);
  Alcotest.(check string) "critical stage first" "c3540" (Net.name nets.(0));
  let depths = Array.map Topo.depth nets in
  Alcotest.(check bool) "c3540 deepest" true
    (depths.(0) > depths.(1) && depths.(0) > depths.(2) && depths.(0) > depths.(3));
  (* Depth spread compressed to allow a shared delay target. *)
  let lo = Array.fold_left min max_int depths in
  let hi = Array.fold_left max 0 depths in
  Alcotest.(check bool) "spread below 35%" true
    (float_of_int hi /. float_of_int lo < 1.35)

let test_alu_decoder_stages () =
  let stages = G.alu_decoder_stages ~bits:8 in
  Alcotest.(check int) "3 stages" 3 (Array.length stages);
  let d_alu = Topo.depth stages.(0) and d_dec = Topo.depth stages.(1) in
  Alcotest.(check bool) "comparable depths" true
    (abs (d_alu - d_dec) <= d_alu / 2)

let suite =
  [
    quick "inverter chain" test_inverter_chain;
    quick "chain pipeline" test_chain_pipeline;
    quick "variable depths" test_variable_depths;
    quick "ripple adder functional" test_ripple_adder_functional;
    quick "kogge-stone functional" test_kogge_stone_functional;
    quick "kogge-stone log depth" test_kogge_stone_log_depth;
    quick "array multiplier functional" test_array_multiplier_functional;
    quick "alu functional" test_alu_functional;
    quick "decoder functional" test_decoder_functional;
    quick "buffered decoder" test_decoder_buffered_still_decodes;
    quick "random logic invariants" test_random_logic_properties;
    quick "random logic deterministic" test_random_logic_deterministic;
    quick "random logic seed matters" test_random_logic_seed_matters;
    quick "iscas profiles" test_iscas_profiles;
    quick "iscas pipeline depth-equalised" test_iscas_pipeline_depth_equalised;
    quick "alu-decoder stages" test_alu_decoder_stages;
  ]
