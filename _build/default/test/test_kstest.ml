open Helpers
module K = Spv_stats.Kstest

let test_kolmogorov_sf () =
  check_float "sf(0)" 1.0 (K.kolmogorov_sf 0.0);
  (* Known value: Q(1.0) ~ 0.27. *)
  check_in_range "sf(1.0)" ~lo:0.26 ~hi:0.28 (K.kolmogorov_sf 1.0);
  check_in_range "sf(2.0)" ~lo:0.0005 ~hi:0.001 (K.kolmogorov_sf 2.0);
  Alcotest.(check bool) "monotone" true
    (K.kolmogorov_sf 0.5 > K.kolmogorov_sf 1.5)

let test_accepts_matching_distribution () =
  let g = Spv_stats.Gaussian.make ~mu:3.0 ~sigma:2.0 in
  let rng = Spv_stats.Rng.create ~seed:70 in
  let xs = Array.init 5000 (fun _ -> Spv_stats.Gaussian.sample g rng) in
  let r = K.against_gaussian xs g in
  check_in_range "p-value high" ~lo:0.01 ~hi:1.0 r.K.p_value;
  check_in_range "statistic small" ~lo:0.0 ~hi:0.03 r.K.statistic

let test_rejects_shifted_distribution () =
  let g = Spv_stats.Gaussian.make ~mu:3.0 ~sigma:2.0 in
  let wrong = Spv_stats.Gaussian.make ~mu:3.5 ~sigma:2.0 in
  let rng = Spv_stats.Rng.create ~seed:71 in
  let xs = Array.init 5000 (fun _ -> Spv_stats.Gaussian.sample g rng) in
  let r = K.against_gaussian xs wrong in
  check_in_range "p-value tiny" ~lo:0.0 ~hi:1e-6 r.K.p_value

let test_rejects_wrong_shape () =
  (* Uniform sample against a Gaussian reference. *)
  let rng = Spv_stats.Rng.create ~seed:72 in
  let xs = Array.init 3000 (fun _ -> Spv_stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let g = Spv_stats.Gaussian.make ~mu:0.0 ~sigma:(1.0 /. sqrt 3.0) in
  let r = K.against_gaussian xs g in
  check_in_range "p-value tiny" ~lo:0.0 ~hi:1e-4 r.K.p_value

let test_against_cdf_exact () =
  (* Perfect grid against the uniform CDF: statistic = 1/(2n) ideally
     small. *)
  let n = 100 in
  let xs = Array.init n (fun i -> (float_of_int i +. 0.5) /. float_of_int n) in
  let r = K.against_cdf xs ~cdf:(fun x -> Float.max 0.0 (Float.min 1.0 x)) in
  check_in_range "statistic" ~lo:0.0 ~hi:(0.5 /. float_of_int n +. 1e-9) r.K.statistic

let test_empty_rejected () =
  check_raises_invalid "empty" (fun () -> K.against_cdf [||] ~cdf:(fun _ -> 0.5))

let suite =
  [
    quick "kolmogorov survival" test_kolmogorov_sf;
    slow "accepts matching" test_accepts_matching_distribution;
    slow "rejects shifted" test_rejects_shifted_distribution;
    slow "rejects wrong shape" test_rejects_wrong_shape;
    quick "exact grid" test_against_cdf_exact;
    quick "empty rejected" test_empty_rejected;
  ]
