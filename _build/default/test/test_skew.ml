open Helpers
module Sk = Spv_core.Skew
module Stage = Spv_core.Stage
module P = Spv_core.Pipeline
module G = Spv_stats.Gaussian
module C = Spv_stats.Correlation

let model ?(sigma_ps = 5.0) ?(corr_length = 2.0) () = { Sk.sigma_ps; corr_length }

let pipeline () =
  P.make
    (Array.init 4 (fun i ->
         Stage.of_moments
           ~name:(string_of_int i)
           ~position:(Spv_process.Spatial.position ~x:(float_of_int i) ~y:0.0)
           ~mu:100.0 ~sigma:4.0 ()))
    ~corr:(C.independent ~n:4)

let test_delta_covariance_structure () =
  let m = model () in
  let v = Sk.delta_covariance m ~pitch:1.0 0 0 in
  (* var(ds) = 2 sigma^2 (1 - rho(1)). *)
  check_close ~rel:1e-12 "variance"
    (2.0 *. 25.0 *. (1.0 -. exp (-0.5)))
    v;
  (* Shared boundary: adjacent deltas anticorrelate. *)
  Alcotest.(check bool) "adjacent negative" true
    (Sk.delta_covariance m ~pitch:1.0 0 1 < 0.0);
  (* Symmetry. *)
  check_close ~rel:1e-12 "symmetric"
    (Sk.delta_covariance m ~pitch:1.0 2 0)
    (Sk.delta_covariance m ~pitch:1.0 0 2)

let test_perfectly_correlated_clock_is_free () =
  (* corr_length -> infinity: every endpoint moves together, skew
     differences vanish. *)
  let m = model ~corr_length:1e9 () in
  let p = pipeline () in
  let p' = Sk.apply p m in
  let before = P.delay_distribution p and after = P.delay_distribution p' in
  check_close ~rel:1e-6 "same mu" (G.mu before) (G.mu after);
  check_close ~rel:1e-4 "same sigma" (G.sigma before) (G.sigma after)

let test_skew_inflates_stage_sigma () =
  let m = model () in
  let p = pipeline () in
  let p' = Sk.apply p m in
  for i = 0 to 3 do
    Alcotest.(check bool) "sigma grows" true
      (Stage.sigma (P.stage p' i) > Stage.sigma (P.stage p i))
  done;
  check_close ~rel:1e-9 "means preserved" (P.nominal_delay p)
    (P.nominal_delay p')

let test_neighbours_anticorrelated () =
  let m = model ~corr_length:0.1 () in
  (* Nearly independent endpoints: adjacent stage deltas share one
     endpoint -> correlation approaches -1/2 as the stage-delay sigma
     becomes negligible; with sigma 4 vs skew 5 it is clearly negative. *)
  let p = pipeline () in
  let p' = Sk.apply p m in
  let c = P.correlation p' in
  Alcotest.(check bool) "negative neighbour correlation" true
    (C.get c 0 1 < -0.1);
  Alcotest.(check bool) "valid matrix" true (C.is_valid c)

let test_yield_penalty_positive () =
  let m = model () in
  let p = pipeline () in
  let t_target = Spv_core.Yield.target_delay_for_yield p ~yield:0.9 in
  let penalty = Sk.yield_penalty p m ~t_target in
  Alcotest.(check bool) "skew costs yield" true (penalty > 0.0)

let test_yield_penalty_vs_mc () =
  (* MC the skewed model directly: endpoints s_0..s_4 with exponential
     correlation; pipeline delay = max_i (SD_i + s_(i+1) - s_i). *)
  let m = model () in
  let p = pipeline () in
  let t_target = Spv_core.Yield.target_delay_for_yield p ~yield:0.9 in
  let analytic = Spv_core.Yield.clark_gaussian (Sk.apply p m) ~t_target in
  let endpoints = 5 in
  let corr_s =
    C.of_function ~n:endpoints (fun i j ->
        exp (-.(float_of_int (abs (i - j)) *. 1.0) /. m.Sk.corr_length))
  in
  let mvn_s =
    Spv_stats.Mvn.create ~mus:(Array.make endpoints 0.0)
      ~sigmas:(Array.make endpoints m.Sk.sigma_ps)
      ~corr:corr_s
  in
  let rng = Spv_stats.Rng.create ~seed:200 in
  let n = 100_000 in
  let pass = ref 0 in
  for _ = 1 to n do
    let s = Spv_stats.Mvn.sample mvn_s rng in
    let worst = ref neg_infinity in
    for i = 0 to 3 do
      let sd = 100.0 +. (4.0 *. Spv_stats.Rng.gaussian rng) in
      let adjusted = sd +. s.(i + 1) -. s.(i) in
      if adjusted > !worst then worst := adjusted
    done;
    if !worst <= t_target then incr pass
  done;
  let mc = float_of_int !pass /. float_of_int n in
  (* Negatively correlated maxima are the hardest regime for the
     Gaussian max approximation; ~2 yield points of (pessimistic)
     error is expected here. *)
  check_in_range "analytic vs MC" ~lo:(mc -. 0.025) ~hi:(mc +. 0.025) analytic

let test_validation () =
  check_raises_invalid "negative sigma" (fun () ->
      ignore (Sk.apply (pipeline ()) (model ~sigma_ps:(-1.0) ())));
  check_raises_invalid "bad length" (fun () ->
      ignore (Sk.apply (pipeline ()) { Sk.sigma_ps = 1.0; corr_length = 0.0 }))

let suite =
  [
    quick "delta covariance" test_delta_covariance_structure;
    quick "perfect clock is free" test_perfectly_correlated_clock_is_free;
    quick "sigma inflation" test_skew_inflates_stage_sigma;
    quick "neighbour anticorrelation" test_neighbours_anticorrelated;
    quick "yield penalty positive" test_yield_penalty_positive;
    slow "yield penalty vs MC" test_yield_penalty_vs_mc;
    quick "validation" test_validation;
  ]
