open Helpers
module C = Spv_process.Corners
module Tech = Spv_process.Tech

let test_names () =
  Alcotest.(check string) "TT" "TT" (C.corner_name C.Typical);
  Alcotest.(check string) "SS" "SS" (C.corner_name C.Slow);
  Alcotest.(check string) "FF" "FF" (C.corner_name C.Fast)

let test_typical_is_nominal () =
  check_float ~eps:1e-12 "factor 1" 1.0 (C.delay_factor Tech.bptm70 C.Typical);
  let s = C.corner_shift Tech.bptm70 C.Typical in
  check_float "no vth shift" 0.0 s.Spv_process.Variation.dvth

let test_corner_ordering () =
  let t = Tech.bptm70 in
  Alcotest.(check bool) "FF < TT < SS" true
    (C.delay_factor t C.Fast < 1.0 && C.delay_factor t C.Slow > 1.0)

let test_sigma_level_scales () =
  let t = Tech.bptm70 in
  let f3 = C.delay_factor ~sigma_level:3.0 t C.Slow in
  let f1 = C.delay_factor ~sigma_level:1.0 t C.Slow in
  check_close ~rel:1e-9 "linear in sigma level" ((f3 -. 1.0) /. 3.0) (f1 -. 1.0)

let test_guardband_grows_with_depth () =
  let t = Tech.bptm70 in
  let g1 = C.guardband_ratio t ~path_depth:1 in
  let g16 = C.guardband_ratio t ~path_depth:16 in
  let g64 = C.guardband_ratio t ~path_depth:64 in
  Alcotest.(check bool) "ratio >= 1" true (g1 >= 1.0 -. 1e-9);
  Alcotest.(check bool) "grows with depth" true (g16 > g1 && g64 > g16)

let test_guardband_depth_independent_without_random () =
  (* Without a random component nothing averages along the path, so
     the corner's remaining pessimism (stacking independent shared
     sources linearly instead of in quadrature) no longer grows with
     depth. *)
  let t = Tech.with_random_vth Tech.bptm70 ~sigma_mv:0.0 in
  let g1 = C.guardband_ratio t ~path_depth:1 in
  let g32 = C.guardband_ratio t ~path_depth:32 in
  check_close ~rel:1e-9 "depth independent" g1 g32;
  Alcotest.(check bool) "stacking pessimism remains" true (g1 > 1.0)

let test_guardband_matches_mc_path () =
  (* A depth-20 inverter chain: the slow corner delay must land above
     the 99.87% statistical quantile by roughly the predicted ratio. *)
  let tech = Tech.bptm70 in
  let depth = 20 in
  let net = Spv_circuit.Generators.inverter_chain ~depth () in
  let nominal = (Spv_circuit.Sta.run tech net).Spv_circuit.Sta.delay in
  let corner_delay = nominal *. C.delay_factor tech C.Slow in
  let g = Spv_circuit.Ssta.stage_gaussian tech net in
  let stat_delay = Spv_stats.Gaussian.quantile g ~p:0.99865 in
  let predicted = C.guardband_ratio tech ~path_depth:depth in
  check_in_range "ratio matches"
    ~lo:(0.97 *. predicted) ~hi:(1.03 *. predicted)
    (corner_delay /. stat_delay)

let suite =
  [
    quick "corner names" test_names;
    quick "typical nominal" test_typical_is_nominal;
    quick "corner ordering" test_corner_ordering;
    quick "sigma level scaling" test_sigma_level_scales;
    quick "guardband grows with depth" test_guardband_grows_with_depth;
    quick "guardband depth-independent without random"
      test_guardband_depth_independent_without_random;
    quick "guardband matches chain quantile" test_guardband_matches_mc_path;
  ]
