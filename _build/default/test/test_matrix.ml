open Helpers
module M = Spv_stats.Matrix

let check_matrix name expected actual =
  Alcotest.(check int) (name ^ " rows") (M.rows expected) (M.rows actual);
  Alcotest.(check int) (name ^ " cols") (M.cols expected) (M.cols actual);
  for i = 0 to M.rows expected - 1 do
    for j = 0 to M.cols expected - 1 do
      check_float ~eps:1e-9
        (Printf.sprintf "%s[%d,%d]" name i j)
        (M.get expected i j) (M.get actual i j)
    done
  done

let test_identity_mul () =
  let a = M.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_matrix "I*a = a" a (M.mul (M.identity 2) a);
  check_matrix "a*I = a" a (M.mul a (M.identity 2))

let test_mul_known () =
  let a = M.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = M.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let expected = M.of_arrays [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |] in
  check_matrix "a*b" expected (M.mul a b)

let test_transpose () =
  let a = M.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let t = M.transpose a in
  Alcotest.(check int) "rows" 3 (M.rows t);
  check_float "t[2,1]" 6.0 (M.get t 2 1);
  check_matrix "double transpose" a (M.transpose t)

let test_mat_vec () =
  let a = M.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = M.mat_vec a [| 1.0; 1.0 |] in
  check_float "y0" 3.0 y.(0);
  check_float "y1" 7.0 y.(1)

let spd_example =
  M.of_arrays
    [| [| 4.0; 2.0; 0.6 |]; [| 2.0; 5.0; 1.0 |]; [| 0.6; 1.0; 3.0 |] |]

let test_cholesky_reconstruction () =
  let l = M.cholesky spd_example in
  check_matrix "l l^T = a" spd_example (M.mul l (M.transpose l));
  (* Lower triangular: upper entries zero. *)
  check_float "upper zero" 0.0 (M.get l 0 2)

let test_cholesky_rejects_non_spd () =
  let bad = M.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  match M.cholesky bad with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure on indefinite matrix"

let test_cholesky_psd () =
  (* Rank-deficient: perfectly correlated 2x2. *)
  let psd = M.of_arrays [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let l = M.cholesky_psd psd in
  let rebuilt = M.mul l (M.transpose l) in
  check_float ~eps:1e-4 "rebuilt[0,1]" 1.0 (M.get rebuilt 0 1)

let test_solve_spd () =
  let b = [| 1.0; 2.0; 3.0 |] in
  let x = M.solve_spd spd_example b in
  let back = M.mat_vec spd_example x in
  Array.iteri (fun i v -> check_close ~rel:1e-9 "solve residual" b.(i) v) back

let test_triangular_solvers () =
  let l = M.of_arrays [| [| 2.0; 0.0 |]; [| 1.0; 3.0 |] |] in
  let x = M.solve_lower l [| 4.0; 11.0 |] in
  check_float "x0" 2.0 x.(0);
  check_float "x1" 3.0 x.(1);
  let u = M.transpose l in
  let y = M.solve_upper u [| 7.0; 9.0 |] in
  check_float "y1" 3.0 y.(1);
  check_float "y0" 2.0 y.(0)

let test_least_squares () =
  (* Fit y = 2x + 1 exactly. *)
  let a = M.of_arrays [| [| 1.0; 1.0 |]; [| 1.0; 2.0 |]; [| 1.0; 3.0 |] |] in
  let coef = M.least_squares a [| 3.0; 5.0; 7.0 |] in
  check_close ~rel:1e-9 "intercept" 1.0 coef.(0);
  check_close ~rel:1e-9 "slope" 2.0 coef.(1)

let test_is_symmetric () =
  Alcotest.(check bool) "spd symmetric" true (M.is_symmetric spd_example);
  let asym = M.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check bool) "asymmetric" false (M.is_symmetric asym)

let test_dimension_errors () =
  let a = M.of_arrays [| [| 1.0; 2.0 |] |] in
  check_raises_invalid "mul mismatch" (fun () -> M.mul a a);
  check_raises_invalid "mat_vec mismatch" (fun () -> M.mat_vec a [| 1.0 |]);
  check_raises_invalid "ragged" (fun () ->
      M.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |])

let prop_cholesky_roundtrip =
  (* Random SPD matrices built as B B^T + eps I. *)
  prop ~count:50 "cholesky roundtrip"
    QCheck2.Gen.(array_size (return 9) (float_range (-2.0) 2.0))
    (fun entries ->
      let b = M.init ~rows:3 ~cols:3 (fun i j -> entries.((3 * i) + j)) in
      let a =
        M.add (M.mul b (M.transpose b))
          (M.scale (M.identity 3) 0.01)
      in
      let l = M.cholesky a in
      let r = M.mul l (M.transpose l) in
      let ok = ref true in
      for i = 0 to 2 do
        for j = 0 to 2 do
          if abs_float (M.get r i j -. M.get a i j) > 1e-8 then ok := false
        done
      done;
      !ok)

let suite =
  [
    quick "identity multiplication" test_identity_mul;
    quick "known product" test_mul_known;
    quick "transpose" test_transpose;
    quick "mat_vec" test_mat_vec;
    quick "cholesky reconstruction" test_cholesky_reconstruction;
    quick "cholesky rejects non-SPD" test_cholesky_rejects_non_spd;
    quick "cholesky PSD jitter" test_cholesky_psd;
    quick "solve SPD" test_solve_spd;
    quick "triangular solves" test_triangular_solvers;
    quick "least squares" test_least_squares;
    quick "symmetry check" test_is_symmetric;
    quick "dimension errors" test_dimension_errors;
    prop_cholesky_roundtrip;
  ]
