open Helpers
module Vb = Spv_core.Variance_budget
module P = Spv_core.Pipeline
module Stage = Spv_core.Stage
module Gd = Spv_process.Gate_delay

let mk_pipeline ~inter ~sys ~rand =
  P.of_stages ~corr_length:2.0
    (Array.init 4 (fun i ->
         Stage.make
           ~name:(string_of_int i)
           ~position:(Spv_process.Spatial.position ~x:(float_of_int i) ~y:0.0)
           (Gd.make ~nominal:100.0 ~sigma_inter:inter ~sigma_sys:sys
              ~sigma_rand:rand)))

let test_single_component_pipelines () =
  let check_pure label p expected_field =
    let b = Vb.of_pipeline p in
    let i, s, r = Vb.fractions b in
    let got = match expected_field with `I -> i | `S -> s | `R -> r in
    check_in_range (label ^ " pure") ~lo:0.99 ~hi:1.0 got;
    check_close ~rel:1e-6 (label ^ " attribution complete")
      b.Vb.total_variance
      (b.Vb.inter +. b.Vb.systematic +. b.Vb.random +. b.Vb.interaction)
  in
  check_pure "inter-only" (mk_pipeline ~inter:5.0 ~sys:0.0 ~rand:0.0) `I;
  check_pure "sys-only" (mk_pipeline ~inter:0.0 ~sys:5.0 ~rand:0.0) `S;
  check_pure "random-only" (mk_pipeline ~inter:0.0 ~sys:0.0 ~rand:5.0) `R

let test_mixture_ordering () =
  (* A pipeline dominated by inter should attribute most variance
     there. *)
  let b = Vb.of_pipeline (mk_pipeline ~inter:8.0 ~sys:2.0 ~rand:2.0) in
  Alcotest.(check bool) "inter dominates" true
    (b.Vb.inter > b.Vb.systematic && b.Vb.inter > b.Vb.random);
  let i, s, r = Vb.fractions b in
  check_close ~rel:1e-9 "fractions sum to 1" 1.0 (i +. s +. r)

let test_moments_pipeline_is_all_random () =
  let stages =
    Array.init 3 (fun _ -> Stage.of_moments ~mu:100.0 ~sigma:5.0 ())
  in
  let p = P.make stages ~corr:(Spv_stats.Correlation.uniform ~n:3 ~rho:0.6) in
  let b = Vb.of_pipeline p in
  let _, _, r = Vb.fractions b in
  check_close ~rel:1e-9 "all random" 1.0 r

let test_total_matches_pipeline () =
  let p = mk_pipeline ~inter:4.0 ~sys:3.0 ~rand:2.0 in
  let b = Vb.of_pipeline p in
  check_close ~rel:1e-9 "total variance"
    (Spv_stats.Gaussian.variance (P.delay_distribution p))
    b.Vb.total_variance

let test_budget_reflects_abb_opportunity () =
  (* The point of the diagnostic: a high inter share predicts a large
     ABB gain, a high random share predicts none. *)
  let abb_gain p =
    let t = Spv_core.Yield.target_delay_for_yield p ~yield:0.7 in
    Spv_core.Adaptive.yield_gain p ~t_target:t
  in
  let inter_heavy = mk_pipeline ~inter:8.0 ~sys:1.0 ~rand:1.0 in
  let rand_heavy = mk_pipeline ~inter:1.0 ~sys:1.0 ~rand:8.0 in
  let bi = Vb.of_pipeline inter_heavy and br = Vb.of_pipeline rand_heavy in
  let fi, _, _ = Vb.fractions bi and fr, _, _ = Vb.fractions br in
  Alcotest.(check bool) "shares ordered" true (fi > 0.8 && fr < 0.2);
  Alcotest.(check bool) "gains ordered" true
    (abb_gain inter_heavy > 10.0 *. Float.max 1e-6 (abb_gain rand_heavy))

let suite =
  [
    quick "pure components" test_single_component_pipelines;
    quick "mixture ordering" test_mixture_ordering;
    quick "moments pipeline all random" test_moments_pipeline_is_all_random;
    quick "total matches" test_total_matches_pipeline;
    quick "predicts ABB opportunity" test_budget_reflects_abb_opportunity;
  ]
