open Helpers
module P = Spv_circuit.Power
module Tech = Spv_process.Tech
module G = Spv_circuit.Generators

let random_only sigma_mv =
  Tech.with_random_vth (Tech.no_variation Tech.bptm70) ~sigma_mv

let test_leakage_factor () =
  check_float ~eps:1e-12 "nominal" 1.0 (P.leakage_factor Tech.bptm70 ~dvth:0.0);
  Alcotest.(check bool) "higher vth leaks less" true
    (P.leakage_factor Tech.bptm70 ~dvth:0.05 < 1.0);
  (* Exponential: factors multiply. *)
  check_close ~rel:1e-12 "multiplicative"
    (P.leakage_factor Tech.bptm70 ~dvth:0.03
    *. P.leakage_factor Tech.bptm70 ~dvth:0.02)
    (P.leakage_factor Tech.bptm70 ~dvth:0.05)

let test_no_variation_degenerate () =
  let tech = Tech.no_variation Tech.bptm70 in
  let net = G.c432 () in
  let p = P.analyse tech net in
  check_close ~rel:1e-12 "mean = nominal" p.P.leakage_nominal p.P.leakage_mean;
  check_float ~eps:1e-9 "sigma = 0" 0.0 p.P.leakage_sigma

let test_nominal_leakage_equals_area () =
  (* Our leakage scale is the area proxy, so nominal leakage = area. *)
  let tech = Tech.no_variation Tech.bptm70 in
  let net = G.c432 () in
  let p = P.analyse tech net in
  check_close ~rel:1e-12 "leakage proxy" (Spv_circuit.Netlist.area net)
    p.P.leakage_nominal

let test_variation_tax_positive () =
  let net = G.c432 () in
  let p20 = P.analyse (random_only 20.0) net in
  let p60 = P.analyse (random_only 60.0) net in
  Alcotest.(check bool) "mean above nominal" true
    (p20.P.leakage_mean > p20.P.leakage_nominal);
  Alcotest.(check bool) "tax grows with sigma" true
    (p60.P.leakage_mean /. p60.P.leakage_nominal
    > p20.P.leakage_mean /. p20.P.leakage_nominal)

let test_analytic_matches_mc () =
  let net = G.c432 () in
  List.iter
    (fun sigma_mv ->
      let tech = random_only sigma_mv in
      let p = P.analyse tech net in
      let rng = Spv_stats.Rng.create ~seed:140 in
      let mc = P.leakage_mc tech net rng ~n:4000 in
      let mc_mean = Spv_stats.Descriptive.mean mc in
      check_in_range
        (Printf.sprintf "mean at %.0f mV" sigma_mv)
        ~lo:(0.97 *. p.P.leakage_mean) ~hi:(1.03 *. p.P.leakage_mean) mc_mean;
      let mc_std = Spv_stats.Descriptive.std mc in
      check_in_range
        (Printf.sprintf "sigma at %.0f mV" sigma_mv)
        ~lo:(0.85 *. p.P.leakage_sigma) ~hi:(1.15 *. p.P.leakage_sigma) mc_std)
    [ 20.0; 40.0 ]

let test_shared_component_dominates_spread () =
  (* With a shared (inter-die) component the die-to-die spread is much
     wider than with independent randomness of the same magnitude. *)
  let net = G.c432 () in
  let inter = Tech.with_inter_vth (Tech.no_variation Tech.bptm70) ~sigma_mv:40.0 in
  let rand = random_only 40.0 in
  let p_inter = P.analyse inter net and p_rand = P.analyse rand net in
  Alcotest.(check bool) "shared spread wider" true
    (p_inter.P.leakage_sigma > 3.0 *. p_rand.P.leakage_sigma)

let test_dynamic_scales_with_sizes () =
  let tech = Tech.bptm70 in
  let net = G.inverter_chain ~depth:4 () in
  let p1 = P.analyse tech net in
  Array.iter (fun i -> Spv_circuit.Netlist.set_size net i 2.0)
    (Spv_circuit.Netlist.gate_ids net);
  let p2 = P.analyse tech net in
  check_close ~rel:1e-9 "dynamic doubles" (2.0 *. p1.P.dynamic) p2.P.dynamic

let test_leakage_yield () =
  let tech = random_only 40.0 in
  let net = G.inverter_chain ~depth:10 () in
  let rng = Spv_stats.Rng.create ~seed:141 in
  let p = P.analyse tech net in
  let y_tight =
    P.leakage_yield tech net (Spv_stats.Rng.copy rng) ~n:2000
      ~budget:p.P.leakage_nominal
  in
  let y_loose =
    P.leakage_yield tech net rng ~n:2000 ~budget:(3.0 *. p.P.leakage_mean)
  in
  Alcotest.(check bool) "loose budget passes more" true (y_loose > y_tight);
  check_in_range "loose nearly certain" ~lo:0.95 ~hi:1.0 y_loose

let test_activity_validation () =
  check_raises_invalid "activity > 1" (fun () ->
      ignore (P.analyse ~activity:1.5 Tech.bptm70 (G.inverter_chain ~depth:2 ())))

let suite =
  [
    quick "leakage factor" test_leakage_factor;
    quick "no variation degenerate" test_no_variation_degenerate;
    quick "nominal equals area proxy" test_nominal_leakage_equals_area;
    quick "variation tax positive" test_variation_tax_positive;
    slow "analytic matches MC" test_analytic_matches_mc;
    quick "shared component spread" test_shared_component_dominates_spread;
    quick "dynamic scales with size" test_dynamic_scales_with_sizes;
    slow "leakage yield" test_leakage_yield;
    quick "activity validation" test_activity_validation;
  ]
