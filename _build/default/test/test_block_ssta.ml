open Helpers
module Bs = Spv_circuit.Block_ssta
module Can = Spv_circuit.Canonical
module G = Spv_circuit.Generators
module Gd = Spv_process.Gate_delay

let tech = Spv_process.Tech.bptm70
let ff = Spv_process.Flipflop.default tech

(* --- Canonical forms --------------------------------------------------- *)

let d1 = Gd.make ~nominal:10.0 ~sigma_inter:1.0 ~sigma_sys:0.5 ~sigma_rand:0.3
let d2 = Gd.make ~nominal:12.0 ~sigma_inter:0.8 ~sigma_sys:0.2 ~sigma_rand:0.6

let test_canonical_roundtrip () =
  let c = Can.of_gate_delay d1 in
  let back = Can.to_gate_delay c in
  check_close ~rel:1e-12 "nominal" d1.Gd.nominal back.Gd.nominal;
  check_close ~rel:1e-12 "total sigma" (Gd.total_sigma d1) (Can.sigma c)

let test_canonical_add () =
  let s = Can.add (Can.of_gate_delay d1) (Can.of_gate_delay d2) in
  let expected = Gd.add d1 d2 in
  check_close ~rel:1e-12 "nominal" expected.Gd.nominal (Can.mean s);
  check_close ~rel:1e-12 "sigma" (Gd.total_sigma expected) (Can.sigma s)

let test_canonical_max_moments_match_clark () =
  let a = Can.of_gate_delay d1 and b = Can.of_gate_delay d2 in
  let rho = Can.correlation a b in
  let clark =
    Spv_core.Clark.max2_moments (Can.to_gaussian a) (Can.to_gaussian b) ~rho
  in
  let m = Can.max a b in
  check_close ~rel:1e-9 "mean" clark.Spv_core.Clark.mean (Can.mean m);
  check_close ~rel:1e-6 "variance" clark.Spv_core.Clark.variance (Can.variance m)

let test_canonical_max_dominated () =
  let a = Can.deterministic 100.0 in
  let b = Can.of_gate_delay d1 in
  let m = Can.max a b in
  check_close ~rel:1e-6 "dominant wins" 100.0 (Can.mean m)

let test_canonical_max_keeps_shared_correlation () =
  (* The max of two forms with identical shared parts keeps them. *)
  let a = { Can.nominal = 10.0; s_inter = 2.0; s_sys = 0.0; s_rand = 1.0 } in
  let b = { Can.nominal = 10.5; s_inter = 2.0; s_sys = 0.0; s_rand = 1.0 } in
  let m = Can.max a b in
  check_close ~rel:1e-9 "inter preserved" 2.0 m.Can.s_inter

let test_tightness () =
  let a = Can.of_gate_delay d1 and b = Can.of_gate_delay d2 in
  let t = Can.tightness a b in
  check_in_range "probability" ~lo:0.0 ~hi:1.0 t;
  (* d2 is slower on average, so a dominates with < 50%. *)
  Alcotest.(check bool) "slower wins more" true (t < 0.5);
  check_close ~rel:1e-9 "complement" (1.0 -. t) (Can.tightness b a)

(* --- Block SSTA --------------------------------------------------------- *)

let test_single_path_equals_path_based () =
  let net = G.inverter_chain ~depth:10 () in
  let path, block = Bs.compare_with_path_based ~ff tech net in
  check_close ~rel:1e-9 "mu" (Spv_stats.Gaussian.mu path) (Spv_stats.Gaussian.mu block);
  check_close ~rel:1e-9 "sigma" (Spv_stats.Gaussian.sigma path)
    (Spv_stats.Gaussian.sigma block)

let test_multipath_mean_dominates () =
  let net = G.c432 () in
  let path, block = Bs.compare_with_path_based ~ff tech net in
  Alcotest.(check bool) "block mean >= path mean" true
    (Spv_stats.Gaussian.mu block >= Spv_stats.Gaussian.mu path)

let test_block_close_to_mc () =
  let net = G.c432 () in
  let _, block = Bs.compare_with_path_based ~ff tech net in
  let rng = Spv_stats.Rng.create ~seed:170 in
  let mc = Spv_circuit.Ssta.mc_stage_delays ~ff tech net rng ~n:6000 in
  let mc_mean = Spv_stats.Descriptive.mean mc in
  check_in_range "block mean within 1% of MC" ~lo:(0.99 *. mc_mean)
    ~hi:(1.01 *. mc_mean)
    (Spv_stats.Gaussian.mu block);
  let mc_std = Spv_stats.Descriptive.std mc in
  check_in_range "block sigma within 5% of MC" ~lo:(0.95 *. mc_std)
    ~hi:(1.05 *. mc_std)
    (Spv_stats.Gaussian.sigma block)

let test_nominal_matches_sta_without_variation () =
  let t0 = Spv_process.Tech.no_variation tech in
  let net = G.alu_slice ~bits:4 () in
  let r = Bs.run t0 net in
  let sta = Spv_circuit.Sta.run t0 net in
  check_close ~rel:1e-9 "deterministic max" sta.Spv_circuit.Sta.delay
    (Can.mean r.Bs.output);
  check_float ~eps:1e-9 "no spread" 0.0 (Can.sigma r.Bs.output)

let test_criticality_sums () =
  let net = G.c432 () in
  let r = Bs.run tech net in
  (* Primary-input criticalities account for all mass that reached the
     inputs; each lies in [0, 1+eps] and the critical path's nodes
     carry substantial weight. *)
  Array.iter
    (fun c -> check_in_range "bounded" ~lo:0.0 ~hi:1.0001 c)
    r.Bs.criticality;
  let sta = Spv_circuit.Sta.run tech net in
  let on_path =
    List.fold_left
      (fun acc i -> acc +. r.Bs.criticality.(i))
      0.0 sta.Spv_circuit.Sta.critical_path
  in
  Alcotest.(check bool) "deterministic critical path carries weight" true
    (on_path /. float_of_int (List.length sta.Spv_circuit.Sta.critical_path)
    > 0.2)

let test_stage_delay_with_ff () =
  let net = G.inverter_chain ~depth:6 () in
  let without = Bs.stage_delay tech net in
  let with_ff = Bs.stage_delay ~ff tech net in
  check_close ~rel:1e-9 "ff adds overhead"
    (without.Gd.nominal +. Spv_process.Flipflop.nominal_overhead ff)
    with_ff.Gd.nominal

let test_stage_of_circuit_block () =
  let net = G.c432 () in
  let s_path = Spv_core.Stage.of_circuit ~ff ~timing:Spv_core.Stage.Path_based tech net in
  let s_block = Spv_core.Stage.of_circuit ~ff ~timing:Spv_core.Stage.Block_based tech net in
  Alcotest.(check bool) "block mean not below path" true
    (Spv_core.Stage.mu s_block >= Spv_core.Stage.mu s_path)

let suite =
  [
    quick "canonical roundtrip" test_canonical_roundtrip;
    quick "canonical add" test_canonical_add;
    quick "canonical max matches Clark" test_canonical_max_moments_match_clark;
    quick "canonical max dominated" test_canonical_max_dominated;
    quick "max keeps shared sensitivities" test_canonical_max_keeps_shared_correlation;
    quick "tightness" test_tightness;
    quick "single path equals path-based" test_single_path_equals_path_based;
    quick "multipath mean dominates" test_multipath_mean_dominates;
    slow "block close to MC" test_block_close_to_mc;
    quick "deterministic corner" test_nominal_matches_sta_without_variation;
    quick "criticality bounded" test_criticality_sums;
    quick "stage delay with ff" test_stage_delay_with_ff;
    quick "Stage.of_circuit block mode" test_stage_of_circuit_block;
  ]
