open Helpers
module Pt = Spv_core.Partition
module Tech = Spv_process.Tech

let intra_only =
  let t = Tech.no_variation Tech.bptm70 in
  Tech.with_random_vth t ~sigma_mv:30.0

let inter_only =
  let t = Tech.no_variation Tech.bptm70 in
  Tech.with_inter_vth t ~sigma_mv:40.0

let cands tech =
  Pt.candidates tech ~total_levels:60 ~yield:0.9 ~stage_counts:[| 2; 5; 10; 20 |]

let test_structure () =
  let cs = cands intra_only in
  Alcotest.(check int) "four candidates" 4 (Array.length cs);
  Array.iter
    (fun c ->
      Alcotest.(check int) "levels conserved" 60 (c.Pt.n_stages * c.Pt.depth);
      Alcotest.(check bool) "stat clock above nominal" true
        (c.Pt.statistical_clock >= c.Pt.nominal_clock);
      check_close ~rel:1e-9 "throughput consistent"
        (1.0 /. c.Pt.statistical_clock)
        c.Pt.throughput;
      check_close ~rel:1e-9 "latency consistent"
        (float_of_int c.Pt.n_stages *. c.Pt.statistical_clock)
        c.Pt.latency)
    cs

let test_nominal_clock_falls_with_stages () =
  let cs = cands intra_only in
  for i = 1 to Array.length cs - 1 do
    Alcotest.(check bool) "monotone" true
      (cs.(i).Pt.nominal_clock < cs.(i - 1).Pt.nominal_clock)
  done

let test_yield_is_met_at_statistical_clock () =
  let cs = cands intra_only in
  Array.iter
    (fun c ->
      let y =
        Spv_core.Yield.clark_gaussian c.Pt.pipeline
          ~t_target:c.Pt.statistical_clock
      in
      check_close ~rel:1e-6 "yield at stat clock" 0.9 y)
    cs

let test_guardband_asymmetry () =
  (* The paper's 3.1: under intra-only variation the relative guardband
     grows much faster with stage count than under inter-only. *)
  let growth tech =
    let cs = cands tech in
    let g c = (c.Pt.statistical_clock /. c.Pt.nominal_clock) -. 1.0 in
    g cs.(Array.length cs - 1) /. g cs.(0)
  in
  Alcotest.(check bool) "intra guardband grows faster" true
    (growth intra_only > 2.0 *. growth inter_only)

let test_best_selectors () =
  let cs = cands intra_only in
  let best = Pt.best_throughput cs in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "maximal" true (best.Pt.throughput >= c.Pt.throughput))
    cs;
  let gain = Pt.throughput_gain_over_nominal_choice cs in
  Alcotest.(check bool) "gain non-negative" true (gain >= 0.0)

let test_validation () =
  check_raises_invalid "non-divisor" (fun () ->
      ignore
        (Pt.candidates intra_only ~total_levels:60 ~yield:0.9
           ~stage_counts:[| 7 |]));
  check_raises_invalid "bad yield" (fun () ->
      ignore
        (Pt.candidates intra_only ~total_levels:60 ~yield:1.5
           ~stage_counts:[| 2 |]))

let test_all_divisors () =
  let cs =
    Pt.all_divisor_candidates ~min_stages:2 ~max_stages:30 intra_only
      ~total_levels:120 ~yield:0.9
  in
  let counts = Array.map (fun c -> c.Pt.n_stages) cs in
  Alcotest.(check (array int)) "divisors in range"
    [| 2; 3; 4; 5; 6; 8; 10; 12; 15; 20; 24; 30 |]
    counts

let suite =
  [
    quick "structure" test_structure;
    quick "nominal clock monotone" test_nominal_clock_falls_with_stages;
    quick "yield met at stat clock" test_yield_is_met_at_statistical_clock;
    quick "guardband asymmetry" test_guardband_asymmetry;
    quick "best selectors" test_best_selectors;
    quick "validation" test_validation;
    quick "all divisors" test_all_divisors;
  ]
