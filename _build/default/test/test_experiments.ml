open Helpers
module E = Spv_experiments

(* End-to-end checks that each reproduced table/figure has the paper's
   qualitative shape (who wins, which way the trends point). *)

let test_fig2_model_matches_mc () =
  List.iter
    (fun variant ->
      let r = E.Fig2.compute ~n_samples:1500 variant in
      let model_mu = Spv_stats.Gaussian.mu r.E.Fig2.model in
      let model_sigma = Spv_stats.Gaussian.sigma r.E.Fig2.model in
      check_in_range
        (E.Fig2.variant_name variant ^ " mean within 1%")
        ~lo:(0.99 *. model_mu) ~hi:(1.01 *. model_mu) r.E.Fig2.mc_mean;
      check_in_range
        (E.Fig2.variant_name variant ^ " sigma within 25%")
        ~lo:(0.75 *. model_sigma) ~hi:(1.25 *. model_sigma) r.E.Fig2.mc_std)
    [ E.Fig2.Random_only; E.Fig2.Inter_only; E.Fig2.Mixed ]

let test_fig2_variance_ordering () =
  (* Inter-die variation dominates the spread (paper Fig. 2a vs 2b). *)
  let ra = E.Fig2.compute ~n_samples:1000 E.Fig2.Random_only in
  let rb = E.Fig2.compute ~n_samples:1000 E.Fig2.Inter_only in
  Alcotest.(check bool) "inter spread much larger" true
    (rb.E.Fig2.mc_std > 3.0 *. ra.E.Fig2.mc_std)

let test_fig3_error_trends () =
  let pts = E.Fig3.error_vs_stages ~stage_counts:[| 2; 8; 24 |] () in
  (* Mean error stays tiny; sigma error grows with the stage count. *)
  Array.iter
    (fun p ->
      check_in_range "mean error below 0.5%" ~lo:0.0 ~hi:0.5 p.E.Fig3.mean_err_pct)
    pts;
  Alcotest.(check bool) "sigma error grows" true
    (pts.(2).E.Fig3.std_err_pct > pts.(1).E.Fig3.std_err_pct
    && pts.(1).E.Fig3.std_err_pct > pts.(0).E.Fig3.std_err_pct);
  check_float "two stages exact" 0.0 pts.(0).E.Fig3.std_err_pct

let test_fig3_ordering_ablation_runs () =
  let results = E.Fig3.ordering_ablation () in
  Alcotest.(check int) "three orders" 3 (List.length results);
  List.iter
    (fun (_, mean_err, std_err) ->
      check_in_range "mean err sane" ~lo:0.0 ~hi:1.0 mean_err;
      check_in_range "std err sane" ~lo:0.0 ~hi:20.0 std_err)
    results

let test_fig4_curves () =
  let c = E.Fig4.compute () in
  let n = Array.length c.Spv_core.Design_space.mus in
  Alcotest.(check bool) "has points" true (n > 10);
  (* Bounds shrink as mu grows. *)
  Alcotest.(check bool) "relaxed decreasing" true
    (c.Spv_core.Design_space.relaxed.(0) > c.Spv_core.Design_space.relaxed.(n - 1))

let test_fig5_shapes () =
  let _, series_a = E.Fig5.panel_a ~depths:[| 5; 20; 40 |] () in
  let random = List.assoc "random-only" series_a in
  let inter = List.assoc "inter40mV-only" series_a in
  Alcotest.(check bool) "random falls with depth" true
    (random.(2) < 0.5 *. random.(0));
  check_in_range "inter flat" ~lo:0.99 ~hi:1.01 inter.(2);
  let _, series_c = E.Fig5.panel_c ~stage_counts:[| 2; 30 |] () in
  let c0 = List.assoc "interVth=0mV" series_c in
  let c40 = List.assoc "interVth=40mV" series_c in
  Alcotest.(check bool) "intra-only rises with stages" true (c0.(1) > c0.(0));
  Alcotest.(check bool) "inter-dominated falls" true (c40.(1) < c40.(0))

let test_table1_rows () =
  List.iter
    (fun config ->
      let r = E.Table1.compute ~n_samples:1500 config in
      check_in_range
        (r.E.Table1.config.E.Table1.label ^ " model mean within 1%")
        ~lo:(0.99 *. r.E.Table1.mc_mu) ~hi:(1.01 *. r.E.Table1.mc_mu)
        r.E.Table1.model_mu;
      check_in_range
        (r.E.Table1.config.E.Table1.label ^ " yields within 8 points")
        ~lo:(r.E.Table1.mc_yield -. 0.08) ~hi:(r.E.Table1.mc_yield +. 0.08)
        r.E.Table1.model_yield)
    (E.Table1.default_configs ())

let fig7_setup = lazy (E.Fig7_8.setup ())

let test_fig7_unbalancing_helps () =
  let s = Lazy.force fig7_setup in
  let c = E.Fig7_8.compare_at s ~target_yield:0.8 in
  let b = c.E.Fig7_8.balanced and u = c.E.Fig7_8.unbalanced_best in
  check_in_range "balanced hits its target" ~lo:0.795 ~hi:0.81
    b.Spv_core.Balance.yield;
  Alcotest.(check bool) "same area" true
    (u.Spv_core.Balance.area <= b.Spv_core.Balance.area +. 1e-6);
  Alcotest.(check bool) "unbalanced strictly better" true
    (u.Spv_core.Balance.yield > b.Spv_core.Balance.yield +. 0.01);
  Alcotest.(check bool) "worst is worse" true
    (c.E.Fig7_8.unbalanced_worst.Spv_core.Balance.yield
    < b.Spv_core.Balance.yield)

let test_fig7_ri_identifies_cheap_stage () =
  let s = Lazy.force fig7_setup in
  let c = E.Fig7_8.compare_at s ~target_yield:0.8 in
  (* The decoder (stage 1) is the cheap-delay stage: lowest R_i, and the
     optimiser should have sped exactly it up. *)
  Alcotest.(check bool) "decoder has lowest ri" true
    (c.E.Fig7_8.ri.(1) < c.E.Fig7_8.ri.(0) && c.E.Fig7_8.ri.(1) < c.E.Fig7_8.ri.(2));
  let b = c.E.Fig7_8.balanced and u = c.E.Fig7_8.unbalanced_best in
  Alcotest.(check bool) "decoder sped up" true
    (u.Spv_core.Balance.delays.(1) < b.Spv_core.Balance.delays.(1))

let table2 = lazy (E.Table2_3.compute E.Table2_3.Ensure_yield)

let test_table2_shape () =
  let t = Lazy.force table2 in
  let base = t.E.Table2_3.baseline and prop = t.E.Table2_3.proposed in
  Alcotest.(check bool) "baseline misses 80%" true
    (base.Spv_sizing.Global_opt.pipeline_yield < 0.8);
  Alcotest.(check bool) "proposed improves by >= 3 points" true
    (prop.Spv_sizing.Global_opt.pipeline_yield
    >= base.Spv_sizing.Global_opt.pipeline_yield +. 0.03);
  (* Small area penalty, as in the paper (2%). *)
  check_in_range "area penalty below 5%" ~lo:0.99 ~hi:1.05
    (prop.Spv_sizing.Global_opt.total_area
    /. base.Spv_sizing.Global_opt.total_area);
  (* The critical stage is c3540, unable to meet its budget. *)
  Alcotest.(check bool) "c3540 is the limiter" true
    (base.Spv_sizing.Global_opt.stage_yields.(0)
    < base.Spv_sizing.Global_opt.stage_yields.(1))

let test_table3_shape () =
  let t = E.Table2_3.compute E.Table2_3.Minimise_area in
  let base = t.E.Table2_3.baseline and prop = t.E.Table2_3.proposed in
  Alcotest.(check bool) "baseline meets 80%" true
    (base.Spv_sizing.Global_opt.pipeline_yield >= 0.8);
  Alcotest.(check bool) "yield held" true
    (prop.Spv_sizing.Global_opt.pipeline_yield >= 0.8);
  (* Meaningful area recovery (paper: 8.4%). *)
  Alcotest.(check bool) "area reduced by >= 4%" true
    (prop.Spv_sizing.Global_opt.total_area
    <= 0.96 *. base.Spv_sizing.Global_opt.total_area)

let test_gate_level_mc_confirms_table2 () =
  (* The strongest verification: full gate-level Monte-Carlo (every
     gate re-timed under sampled Vth/Leff, STA re-run per die) of the
     final sized Table II design. *)
  let t = Lazy.force table2 in
  let prop = t.E.Table2_3.proposed in
  let tech = E.Common.optimisation_tech in
  let ff = Spv_process.Flipflop.default tech in
  let rng = E.Common.rng () in
  let samples =
    Spv_circuit.Ssta.mc_pipeline_delays ~ff tech prop.Spv_sizing.Global_opt.nets
      rng ~n:3000
  in
  let mc_yield =
    Spv_stats.Descriptive.fraction_below samples
      ~threshold:t.E.Table2_3.t_target
  in
  (* The analytic product is conservative; gate-level MC adds
     multi-path effects, so allow a band around the analytic value. *)
  check_in_range "gate-level MC vs analytic"
    ~lo:(prop.Spv_sizing.Global_opt.pipeline_yield -. 0.06)
    ~hi:(prop.Spv_sizing.Global_opt.pipeline_yield +. 0.12)
    mc_yield

let test_mc_confirms_analytic_yields () =
  let t = Lazy.force table2 in
  (* The joint-model MC yield should confirm the product-formula yield
     within a few points (correlation only helps). *)
  Alcotest.(check bool) "MC at least the analytic estimate" true
    (t.E.Table2_3.mc_yield_proposed
    >= t.E.Table2_3.proposed.Spv_sizing.Global_opt.pipeline_yield -. 0.02)

let suite =
  [
    slow "fig2 model vs MC" test_fig2_model_matches_mc;
    slow "fig2 variance ordering" test_fig2_variance_ordering;
    slow "fig3 error trends" test_fig3_error_trends;
    slow "fig3 ordering ablation" test_fig3_ordering_ablation_runs;
    quick "fig4 curves" test_fig4_curves;
    quick "fig5 shapes" test_fig5_shapes;
    slow "table1 rows" test_table1_rows;
    slow "fig7 unbalancing helps" test_fig7_unbalancing_helps;
    slow "fig7 ri heuristic" test_fig7_ri_identifies_cheap_stage;
    slow "table2 shape" test_table2_shape;
    slow "table3 shape" test_table3_shape;
    slow "MC confirms yields" test_mc_confirms_analytic_yields;
    slow "gate-level MC confirms table2" test_gate_level_mc_confirms_table2;
  ]
