open Helpers
module Gr = Spv_sizing.Greedy
module L = Spv_sizing.Lagrangian
module Net = Spv_circuit.Netlist
module G = Spv_circuit.Generators

let tech = Spv_process.Tech.bptm70
let ff = Spv_process.Flipflop.default tech
let z = Spv_stats.Special.big_phi_inv 0.9457

let test_converges_on_loose_target () =
  let net = G.c432 () in
  let slow = L.relaxed_delay ~ff tech net ~z in
  let fast = L.minimum_achievable_delay ~ff tech net ~z in
  let t_target = fast +. (0.6 *. (slow -. fast)) in
  let r = Gr.size_stage ~ff tech net ~t_target ~z in
  Alcotest.(check bool) "converged" true r.Gr.converged;
  Alcotest.(check bool) "target met" true (r.Gr.stat_delay <= t_target *. 1.005);
  check_close ~rel:1e-9 "area consistent" (Net.area net) r.Gr.area

let test_monotone_improvement () =
  (* Greedy never makes the stat delay worse than all-minimum sizes. *)
  let net = G.alu_slice ~bits:4 () in
  let baseline = L.relaxed_delay ~ff tech net ~z in
  let r = Gr.size_stage ~ff tech net ~t_target:1.0 ~z in
  Alcotest.(check bool) "improved" true (r.Gr.stat_delay <= baseline);
  Alcotest.(check bool) "ran out of moves, not converged" false r.Gr.converged

let test_respects_bounds () =
  let options = { Gr.default_options with Gr.max_size = 3.0 } in
  let net = G.c432 () in
  ignore (Gr.size_stage ~options ~ff tech net ~t_target:400.0 ~z);
  Array.iter
    (fun i -> check_in_range "bounded" ~lo:1.0 ~hi:3.0 (Net.size net i))
    (Net.gate_ids net)

let test_comparison_contract () =
  let net = G.c432 () in
  let slow = L.relaxed_delay ~ff tech net ~z in
  let fast = L.minimum_achievable_delay ~ff tech net ~z in
  let t_target = fast +. (0.5 *. (slow -. fast)) in
  let greedy, lagr = Gr.compare_with_lagrangian ~ff tech net ~t_target ~z in
  (* The netlist carries the Lagrangian result afterwards. *)
  check_close ~rel:1e-9 "netlist holds LR sizes" lagr.L.area (Net.area net);
  (* Both met the same target here; both areas above the min-size area. *)
  Alcotest.(check bool) "LR converged" true lagr.L.converged;
  Alcotest.(check bool) "greedy sane area" true (greedy.Gr.area >= 371.0)

let test_lr_wins_on_tight_targets () =
  (* The reason LR exists: at aggressive targets greedy stalls. *)
  let net = G.c432 () in
  let fast = L.minimum_achievable_delay ~ff tech net ~z in
  let slow = L.relaxed_delay ~ff tech net ~z in
  let t_target = fast +. (0.15 *. (slow -. fast)) in
  let greedy, lagr = Gr.compare_with_lagrangian ~ff tech net ~t_target ~z in
  Alcotest.(check bool) "LR closes it" true lagr.L.converged;
  Alcotest.(check bool) "greedy does not" false greedy.Gr.converged

let suite =
  [
    quick "converges on loose target" test_converges_on_loose_target;
    quick "monotone improvement" test_monotone_improvement;
    quick "respects bounds" test_respects_bounds;
    quick "comparison contract" test_comparison_contract;
    quick "LR wins on tight targets" test_lr_wins_on_tight_targets;
  ]
