open Helpers
module V = Spv_core.Variability
module Tech = Spv_process.Tech

let random_only =
  let t = Tech.no_variation Tech.bptm70 in
  Tech.with_random_vth t ~sigma_mv:30.0

let inter_only =
  let t = Tech.no_variation Tech.bptm70 in
  Tech.with_inter_vth t ~sigma_mv:40.0

let test_depth_cancellation_random () =
  let depths = [| 4; 16 |] in
  let v = V.stage_sigma_mu_vs_depth random_only ~depths in
  (* Pure random: sigma/mu falls like 1/sqrt(depth) -> factor 2. *)
  check_in_range "1/sqrt law" ~lo:1.9 ~hi:2.1 (v.(0) /. v.(1))

let test_depth_flat_inter () =
  let depths = [| 4; 16 |] in
  let v = V.stage_sigma_mu_vs_depth inter_only ~depths in
  check_in_range "flat" ~lo:0.99 ~hi:1.01 (v.(0) /. v.(1))

let test_stage_count_reduces_variability () =
  let stage = Spv_stats.Gaussian.make ~mu:100.0 ~sigma:8.0 in
  let v =
    V.pipeline_sigma_mu_vs_stages ~stage ~rho:0.0 ~stage_counts:[| 2; 8; 32 |]
  in
  Alcotest.(check bool) "monotone decreasing" true (v.(0) > v.(1) && v.(1) > v.(2))

let test_correlation_weakens_stage_count_effect () =
  let stage = Spv_stats.Gaussian.make ~mu:100.0 ~sigma:8.0 in
  let counts = [| 2; 32 |] in
  let drop rho =
    let v = V.pipeline_sigma_mu_vs_stages ~stage ~rho ~stage_counts:counts in
    v.(0) /. v.(1)
  in
  Alcotest.(check bool) "uncorrelated drops more" true (drop 0.0 > drop 0.6)

let test_fixed_levels_crossover () =
  (* The paper's Fig. 5c: with only intra-die randomness, more stages
     means MORE pipeline variability; with dominant inter-die variation
     the trend flips. *)
  let counts = [| 2; 30 |] in
  let v_rand = V.fixed_total_levels random_only ~total_levels:120 ~stage_counts:counts in
  Alcotest.(check bool) "intra-only rises" true (v_rand.(1) > v_rand.(0));
  let v_inter =
    V.fixed_total_levels
      (Tech.with_inter_vth random_only ~sigma_mv:40.0)
      ~total_levels:120 ~stage_counts:counts
  in
  Alcotest.(check bool) "inter-dominated falls" true (v_inter.(1) < v_inter.(0))

let test_fixed_levels_validation () =
  check_raises_invalid "non-divisor" (fun () ->
      ignore
        (V.fixed_total_levels random_only ~total_levels:120 ~stage_counts:[| 7 |]))

let test_normalise () =
  let n = V.normalise [| 4.0; 2.0; 1.0 |] in
  check_float "first is 1" 1.0 n.(0);
  check_float "last" 0.25 n.(2);
  check_raises_invalid "empty" (fun () -> ignore (V.normalise [||]));
  check_raises_invalid "zero head" (fun () -> ignore (V.normalise [| 0.0; 1.0 |]))

let test_divisors () =
  Alcotest.(check (list int)) "divisors of 12" [ 1; 2; 3; 4; 6; 12 ] (V.divisors 12);
  Alcotest.(check (list int)) "divisors of 7" [ 1; 7 ] (V.divisors 7);
  check_raises_invalid "n=0" (fun () -> ignore (V.divisors 0))

let suite =
  [
    quick "depth cancellation (random)" test_depth_cancellation_random;
    quick "depth flat (inter)" test_depth_flat_inter;
    quick "stage count reduces sigma/mu" test_stage_count_reduces_variability;
    quick "correlation weakens max effect" test_correlation_weakens_stage_count_effect;
    quick "Fig 5c crossover" test_fixed_levels_crossover;
    quick "fixed levels validation" test_fixed_levels_validation;
    quick "normalise" test_normalise;
    quick "divisors" test_divisors;
  ]
