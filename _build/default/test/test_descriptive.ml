open Helpers
module D = Spv_stats.Descriptive

let data = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]

let test_mean () = check_float "mean" 5.0 (D.mean data)

let test_variance_std () =
  (* Sum of squared deviations = 32; 32/7 unbiased. *)
  check_close ~rel:1e-12 "variance" (32.0 /. 7.0) (D.variance data);
  check_close ~rel:1e-12 "std" (sqrt (32.0 /. 7.0)) (D.std data)

let test_min_max () =
  let lo, hi = D.min_max data in
  check_float "min" 2.0 lo;
  check_float "max" 9.0 hi

let test_quantiles () =
  check_float "median" 4.5 (D.median data);
  check_float "q0" 2.0 (D.quantile data ~p:0.0);
  check_float "q1" 9.0 (D.quantile data ~p:1.0);
  (* Type-7 interpolation: h = 0.25 * 7 = 1.75 -> between 4 and 4. *)
  check_float "q0.25" 4.0 (D.quantile data ~p:0.25)

let test_fraction_below () =
  check_float "below 4" 0.5 (D.fraction_below data ~threshold:4.0);
  check_float "below 1" 0.0 (D.fraction_below data ~threshold:1.0);
  check_float "below 9" 1.0 (D.fraction_below data ~threshold:9.0)

let test_skew_kurt_symmetric () =
  let rng = Spv_stats.Rng.create ~seed:30 in
  let xs = Array.init 100_000 (fun _ -> Spv_stats.Rng.gaussian rng) in
  check_in_range "skewness ~ 0" ~lo:(-0.03) ~hi:0.03 (D.skewness xs);
  check_in_range "kurtosis ~ 0" ~lo:(-0.06) ~hi:0.06 (D.kurtosis_excess xs)

let test_skew_positive () =
  (* Max of two iid normals is right-skewed. *)
  let rng = Spv_stats.Rng.create ~seed:31 in
  let xs =
    Array.init 50_000 (fun _ ->
        Float.max (Spv_stats.Rng.gaussian rng) (Spv_stats.Rng.gaussian rng))
  in
  Alcotest.(check bool) "max of normals right-skewed" true (D.skewness xs > 0.05)

let test_errors () =
  check_raises_invalid "empty mean" (fun () -> D.mean [||]);
  check_raises_invalid "variance of one" (fun () -> D.variance [| 1.0 |]);
  check_raises_invalid "quantile p>1" (fun () -> D.quantile data ~p:1.5)

let test_standard_error () =
  check_close ~rel:1e-12 "sem"
    (D.std data /. sqrt 8.0)
    (D.standard_error_of_mean data)

let prop_mean_bounds =
  prop "mean within min/max"
    QCheck2.Gen.(array_size (int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = D.mean xs in
      let lo, hi = D.min_max xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_quantile_monotone =
  prop "quantile monotone in p"
    QCheck2.Gen.(
      triple
        (array_size (int_range 2 50) (float_range (-100.) 100.))
        (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))
    (fun (xs, p1, p2) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      D.quantile xs ~p:lo <= D.quantile xs ~p:hi +. 1e-9)

let suite =
  [
    quick "mean" test_mean;
    quick "variance and std" test_variance_std;
    quick "min/max" test_min_max;
    quick "quantiles" test_quantiles;
    quick "fraction below" test_fraction_below;
    slow "gaussian skew/kurtosis" test_skew_kurt_symmetric;
    slow "max-of-normals skew" test_skew_positive;
    quick "error cases" test_errors;
    quick "standard error" test_standard_error;
    prop_mean_bounds;
    prop_quantile_monotone;
  ]
