test/test_netlist.ml: Alcotest Array Helpers List Printf Spv_circuit
