test/test_cell.ml: Alcotest Helpers List Spv_circuit
