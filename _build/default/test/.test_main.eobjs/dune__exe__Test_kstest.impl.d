test/test_kstest.ml: Alcotest Array Float Helpers Spv_stats
