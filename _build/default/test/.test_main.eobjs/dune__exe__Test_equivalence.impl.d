test/test_equivalence.ml: Alcotest Array Helpers Printf Spv_circuit Spv_process Spv_sizing Spv_stats
