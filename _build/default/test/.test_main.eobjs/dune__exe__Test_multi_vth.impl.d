test/test_multi_vth.ml: Alcotest Array Helpers Spv_circuit Spv_process Spv_sizing Spv_stats
