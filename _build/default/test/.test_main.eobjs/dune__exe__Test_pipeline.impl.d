test/test_pipeline.ml: Alcotest Array Helpers Printf Spv_circuit Spv_core Spv_process Spv_stats
