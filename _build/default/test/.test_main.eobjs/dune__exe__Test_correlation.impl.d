test/test_correlation.ml: Alcotest Array Helpers QCheck2 Spv_stats
