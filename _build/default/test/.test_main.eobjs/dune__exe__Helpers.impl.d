test/helpers.ml: Alcotest Float Printexc QCheck2 QCheck_alcotest
