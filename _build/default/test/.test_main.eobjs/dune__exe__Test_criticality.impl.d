test/test_criticality.ml: Alcotest Array Helpers Printf Spv_core Spv_stats
