test/test_adaptive.ml: Alcotest Array Helpers Spv_core Spv_process Spv_stats
