test/test_fmax.ml: Alcotest Array Helpers List Spv_core Spv_stats
