test/test_power.ml: Alcotest Array Helpers List Printf Spv_circuit Spv_process Spv_stats
