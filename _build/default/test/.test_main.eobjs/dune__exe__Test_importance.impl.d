test/test_importance.ml: Alcotest Array Helpers List Printf Spv_core Spv_stats
