test/test_hold.ml: Alcotest Array Float Helpers Spv_circuit Spv_core Spv_process Spv_stats
