test/test_spatial.ml: Alcotest Array Helpers Spv_process Spv_stats
