test/test_tech_nodes.ml: Alcotest Helpers List Spv_circuit Spv_experiments Spv_process Spv_stats
