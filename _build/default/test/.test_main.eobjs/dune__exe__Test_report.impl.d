test/test_report.ml: Alcotest Array Helpers List QCheck2 Spv_circuit Spv_process Spv_stats String
