test/test_skew.ml: Alcotest Array Helpers Spv_core Spv_process Spv_stats
