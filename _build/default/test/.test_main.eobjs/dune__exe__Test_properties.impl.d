test/test_properties.ml: Array Float Helpers List QCheck2 Spv_core Spv_process Spv_stats
