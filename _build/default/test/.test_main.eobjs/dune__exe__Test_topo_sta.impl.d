test/test_topo_sta.ml: Alcotest Array Helpers List Spv_circuit Spv_process
