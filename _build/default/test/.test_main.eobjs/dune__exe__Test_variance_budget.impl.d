test/test_variance_budget.ml: Alcotest Array Float Helpers Spv_core Spv_process Spv_stats
