test/test_descriptive.ml: Alcotest Array Float Helpers QCheck2 Spv_stats
