test/test_gaussian.ml: Alcotest Array Float Helpers List QCheck2 Spv_stats
