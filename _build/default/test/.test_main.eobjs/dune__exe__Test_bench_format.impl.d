test/test_bench_format.ml: Alcotest Array Filename Fun Helpers List Printf Spv_circuit Spv_process Spv_stats Sys
