test/test_balance.ml: Alcotest Array Helpers List Spv_core Spv_process
