test/test_sampling.ml: Alcotest Array Helpers Spv_core Spv_stats
