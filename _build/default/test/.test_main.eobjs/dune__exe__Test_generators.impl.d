test/test_generators.ml: Alcotest Array Helpers List Printf Spv_circuit
