test/test_gate_delay.ml: Alcotest Float Helpers List Spv_process Spv_stats
