test/test_flipflop_sample.ml: Alcotest Array Helpers Spv_process Spv_stats
