test/test_wire.ml: Alcotest Array Helpers Spv_circuit Spv_process Spv_sizing Spv_stats
