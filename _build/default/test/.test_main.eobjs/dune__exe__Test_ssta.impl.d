test/test_ssta.ml: Alcotest Array Float Helpers Spv_circuit Spv_process Spv_stats
