test/test_regression.ml: Alcotest Array Helpers List Spv_circuit Spv_core Spv_experiments Spv_process Spv_stats
