test/test_special.ml: Float Helpers List Printf QCheck2 Spv_stats
