test/test_partition.ml: Alcotest Array Helpers Spv_core Spv_process
