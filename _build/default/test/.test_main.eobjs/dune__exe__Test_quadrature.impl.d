test/test_quadrature.ml: Float Helpers List Spv_core Spv_stats
