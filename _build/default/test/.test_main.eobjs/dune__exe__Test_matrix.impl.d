test/test_matrix.ml: Alcotest Array Helpers Printf QCheck2 Spv_stats
