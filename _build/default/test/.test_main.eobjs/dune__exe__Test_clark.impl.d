test/test_clark.ml: Alcotest Array Float Helpers List Printf QCheck2 Spv_core Spv_stats
