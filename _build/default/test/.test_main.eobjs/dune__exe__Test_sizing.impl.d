test/test_sizing.ml: Alcotest Array Helpers Spv_circuit Spv_core Spv_process Spv_sizing Spv_stats
