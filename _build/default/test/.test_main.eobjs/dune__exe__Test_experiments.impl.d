test/test_experiments.ml: Alcotest Array Helpers Lazy List Spv_circuit Spv_core Spv_experiments Spv_process Spv_sizing Spv_stats
