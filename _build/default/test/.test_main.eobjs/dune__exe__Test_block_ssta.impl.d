test/test_block_ssta.ml: Alcotest Array Helpers List Spv_circuit Spv_core Spv_process Spv_stats
