test/test_design_space.ml: Alcotest Array Helpers List QCheck2 Spv_core Spv_process Spv_stats
