test/test_process.ml: Alcotest Array Helpers List Printf Spv_process Spv_stats
