test/test_variability.ml: Alcotest Array Helpers Spv_core Spv_process Spv_stats
