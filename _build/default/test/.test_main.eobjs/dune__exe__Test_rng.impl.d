test/test_rng.ml: Alcotest Array Helpers Printf Spv_stats
