test/test_corners.ml: Alcotest Helpers Spv_circuit Spv_process Spv_stats
