test/test_histogram.ml: Alcotest Array Helpers QCheck2 Spv_stats
