test/test_mvn.ml: Alcotest Array Helpers Spv_stats
