open Helpers
module Eq = Spv_circuit.Equivalence
module Net = Spv_circuit.Netlist
module B = Spv_circuit.Builder
module G = Spv_circuit.Generators
module Power = Spv_circuit.Power

let rng () = Spv_stats.Rng.create ~seed:240

(* --- Equivalence ------------------------------------------------------ *)

let test_self_equivalence () =
  let net = G.c432 () in
  Alcotest.(check bool) "compatible with itself" true (Eq.compatible net net);
  (match Eq.check net net (rng ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "self-check failed")

let test_sizing_preserves_function () =
  let net = G.alu_slice ~bits:4 () in
  let sized = Net.copy net in
  let tech = Spv_process.Tech.bptm70 in
  let z = Spv_stats.Special.big_phi_inv 0.95 in
  ignore (Spv_sizing.Lagrangian.size_stage tech sized ~t_target:400.0 ~z);
  match Eq.check net sized (rng ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "sizing changed the function"

let test_bench_roundtrip_equivalence () =
  let net = G.ripple_carry_adder ~bits:4 in
  let back = Spv_circuit.Bench_format.of_string (Spv_circuit.Bench_format.to_string net) in
  match Eq.check net back (rng ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "roundtrip changed the function"

let test_detects_difference () =
  let build gate =
    let b = B.create ~name:"g" in
    let x = B.input b "x" in
    let y = B.input b "y" in
    B.output b (gate b x y);
    B.finish b
  in
  let nand = build B.nand2 and nor = build B.nor2 in
  (match Eq.check nand nor (rng ()) with
  | Ok () -> Alcotest.fail "nand = nor?!"
  | Error v -> Alcotest.(check int) "counterexample arity" 2 (Array.length v));
  (* The counterexample really distinguishes them. *)
  ()

let test_input_permutation_handled () =
  (* Same function, inputs declared in a different order. *)
  let forward =
    let b = B.create ~name:"f" in
    let x = B.input b "x" in
    let y = B.input b "y" in
    B.output b (B.nand2 b x y);
    B.finish b
  in
  let reversed =
    let b = B.create ~name:"r" in
    let y = B.input b "y" in
    let x = B.input b "x" in
    B.output b (B.nand2 b x y);
    B.finish b
  in
  match Eq.check forward reversed (rng ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "label matching failed"

let test_incompatible_rejected () =
  let a = G.inverter_chain ~depth:2 () in
  let b = G.ripple_carry_adder ~bits:2 in
  Alcotest.(check bool) "incompatible" false (Eq.compatible a b);
  check_raises_invalid "check refuses" (fun () ->
      ignore (Eq.check a b (rng ())))

(* --- Switching activity ------------------------------------------------ *)

let test_activity_of_inverter () =
  (* An inverter toggles exactly when its input does: activity ~ 0.5
     under random vectors. *)
  let net = G.inverter_chain ~depth:1 () in
  let act = Power.estimated_activity net (rng ()) ~vectors:4000 in
  check_in_range "input activity" ~lo:0.46 ~hi:0.54 act.(0);
  check_in_range "inverter follows" ~lo:0.46 ~hi:0.54 act.(1)

let test_activity_of_and_tree () =
  (* The AND of many inputs is almost always 0: low activity. *)
  let b = B.create ~name:"and4" in
  let inputs = Array.init 4 (fun i -> B.input b (Printf.sprintf "i%d" i)) in
  let a1 = B.and2 b inputs.(0) inputs.(1) in
  let a2 = B.and2 b inputs.(2) inputs.(3) in
  let out = B.and2 b a1 a2 in
  B.output b out;
  let net = B.finish b in
  let act = Power.estimated_activity net (rng ()) ~vectors:6000 in
  (* P(out flips) = 2 p (1-p) with p = 1/16. *)
  check_in_range "and4 output activity" ~lo:0.08 ~hi:0.16 act.(out)

let test_activity_bounds () =
  let net = G.c432 () in
  let act = Power.estimated_activity net (rng ()) ~vectors:500 in
  Array.iter (fun a -> check_in_range "in [0,1]" ~lo:0.0 ~hi:1.0 a) act

let suite =
  [
    quick "self equivalence" test_self_equivalence;
    quick "sizing preserves function" test_sizing_preserves_function;
    quick "bench roundtrip equivalence" test_bench_roundtrip_equivalence;
    quick "detects difference" test_detects_difference;
    quick "input permutation" test_input_permutation_handled;
    quick "incompatible rejected" test_incompatible_rejected;
    quick "inverter activity" test_activity_of_inverter;
    quick "and-tree activity" test_activity_of_and_tree;
    quick "activity bounds" test_activity_bounds;
  ]
