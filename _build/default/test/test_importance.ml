open Helpers
module I = Spv_stats.Importance
module Mvn = Spv_stats.Mvn
module C = Spv_stats.Correlation
module Rng = Spv_stats.Rng

let test_single_gaussian_tail () =
  (* One dimension: P(X > mu + k sigma) has a closed form. *)
  let mvn = Mvn.create ~mus:[| 100.0 |] ~sigmas:[| 5.0 |] ~corr:(C.independent ~n:1) in
  List.iter
    (fun k ->
      let threshold = 100.0 +. (k *. 5.0) in
      let e = I.failure_above mvn (Rng.create ~seed:210) ~n:40_000 ~threshold in
      let exact = Spv_stats.Special.big_phi (-.k) in
      check_in_range
        (Printf.sprintf "tail at %g sigma" k)
        ~lo:(0.93 *. exact) ~hi:(1.07 *. exact) e.I.probability)
    [ 2.0; 3.0; 4.0; 5.0 ]

let test_deep_tail_beyond_plain_mc () =
  (* At 5 sigma (p ~ 2.9e-7) a 40k plain MC sees nothing; IS nails it. *)
  let mvn = Mvn.create ~mus:[| 0.0 |] ~sigmas:[| 1.0 |] ~corr:(C.independent ~n:1) in
  let plain = I.plain_failure_above mvn (Rng.create ~seed:211) ~n:40_000 ~threshold:5.0 in
  check_float "plain MC blind" 0.0 plain.I.probability;
  let is = I.failure_above mvn (Rng.create ~seed:212) ~n:40_000 ~threshold:5.0 in
  let exact = Spv_stats.Special.big_phi (-5.0) in
  check_in_range "IS sees it" ~lo:(0.9 *. exact) ~hi:(1.1 *. exact)
    is.I.probability

let test_unbiased_vs_plain_in_easy_regime () =
  (* Where plain MC works, both estimators agree. *)
  let mvn =
    Mvn.create ~mus:[| 10.0; 11.0; 9.5 |] ~sigmas:[| 1.0; 1.2; 0.8 |]
      ~corr:(C.uniform ~n:3 ~rho:0.4)
  in
  let threshold = 13.0 in
  let plain = I.plain_failure_above mvn (Rng.create ~seed:213) ~n:200_000 ~threshold in
  let is = I.failure_above mvn (Rng.create ~seed:214) ~n:50_000 ~threshold in
  check_in_range "agree"
    ~lo:(plain.I.probability -. (3.0 *. plain.I.std_error) -. (3.0 *. is.I.std_error))
    ~hi:(plain.I.probability +. (3.0 *. plain.I.std_error) +. (3.0 *. is.I.std_error))
    is.I.probability

let test_is_variance_advantage () =
  let mvn = Mvn.create ~mus:[| 0.0 |] ~sigmas:[| 1.0 |] ~corr:(C.independent ~n:1) in
  let threshold = 4.0 in
  let is = I.failure_above mvn (Rng.create ~seed:215) ~n:20_000 ~threshold in
  let plain = I.plain_failure_above mvn (Rng.create ~seed:216) ~n:20_000 ~threshold in
  (* Relative precision: IS standard error per unit probability is far
     smaller (plain has almost no hits at 4 sigma). *)
  let exact = Spv_stats.Special.big_phi (-4.0) in
  Alcotest.(check bool) "IS relatively tighter" true
    (is.I.std_error /. exact < 0.1
    && (plain.I.probability = 0.0 || plain.I.std_error /. exact > 0.5))

let test_effective_samples_diagnostic () =
  let mvn = Mvn.create ~mus:[| 0.0 |] ~sigmas:[| 1.0 |] ~corr:(C.independent ~n:1) in
  let good = I.failure_above mvn (Rng.create ~seed:217) ~n:10_000 ~threshold:4.0 in
  Alcotest.(check bool) "healthy ESS" true (good.I.effective_samples > 100.0);
  (* A terrible shift (pointing away from the failure region) collapses
     the diagnostic. *)
  let bad =
    I.failure_above ~z_shifts:[| [| -6.0 |] |] mvn (Rng.create ~seed:218)
      ~n:10_000 ~threshold:4.0
  in
  Alcotest.(check bool) "bad shift detected" true
    (bad.I.effective_samples < good.I.effective_samples)

let test_pipeline_integration () =
  (* Yield.failure_importance must match 1 - clark yield order of
     magnitude in a moderately rare regime, on a correlated pipeline. *)
  let stages =
    Array.init 4 (fun i ->
        Spv_core.Stage.of_moments ~mu:(100.0 +. float_of_int i) ~sigma:4.0 ())
  in
  let p =
    Spv_core.Pipeline.make stages ~corr:(C.uniform ~n:4 ~rho:0.3)
  in
  let t_target = 118.0 in
  let e = Spv_core.Yield.failure_importance p (Rng.create ~seed:219) ~n:60_000 ~t_target in
  (* Reference by brute force with a big plain MC. *)
  let plain =
    I.plain_failure_above (Spv_core.Pipeline.mvn p) (Rng.create ~seed:220)
      ~n:2_000_000 ~threshold:t_target
  in
  check_in_range "matches brute force"
    ~lo:(0.85 *. plain.I.probability) ~hi:(1.15 *. plain.I.probability)
    e.I.probability

let test_highly_correlated_pipeline () =
  (* Regression: with strongly correlated stages the dominant failure
     mode is the shared factor lifting every stage together; a
     component-at-the-barrier-others-at-mean proposal misses it by
     orders of magnitude.  The design-point mixture must track plain
     MC in the verifiable regime. *)
  let mvn =
    Mvn.create ~mus:[| 100.0; 101.0; 99.0; 100.5 |]
      ~sigmas:[| 8.0; 8.0; 8.0; 8.0 |]
      ~corr:(C.uniform ~n:4 ~rho:0.9)
  in
  let threshold = 118.0 in
  let plain = I.plain_failure_above mvn (Rng.create ~seed:221) ~n:1_000_000 ~threshold in
  let is = I.failure_above mvn (Rng.create ~seed:222) ~n:60_000 ~threshold in
  check_in_range "correlated tail matches"
    ~lo:(0.9 *. plain.I.probability) ~hi:(1.1 *. plain.I.probability)
    is.I.probability

let test_validation () =
  let mvn = Mvn.create ~mus:[| 0.0 |] ~sigmas:[| 1.0 |] ~corr:(C.independent ~n:1) in
  check_raises_invalid "n = 0" (fun () ->
      ignore (I.failure_above mvn (Rng.create ~seed:1) ~n:0 ~threshold:1.0));
  check_raises_invalid "shift dims" (fun () ->
      ignore
        (I.failure_above ~z_shifts:[| [| 1.0; 2.0 |] |] mvn (Rng.create ~seed:1)
           ~n:10 ~threshold:1.0))

let suite =
  [
    slow "single gaussian tails" test_single_gaussian_tail;
    slow "deep tail beyond plain MC" test_deep_tail_beyond_plain_mc;
    slow "unbiased vs plain" test_unbiased_vs_plain_in_easy_regime;
    slow "variance advantage" test_is_variance_advantage;
    quick "effective samples diagnostic" test_effective_samples_diagnostic;
    slow "pipeline integration" test_pipeline_integration;
    slow "highly correlated pipeline" test_highly_correlated_pipeline;
    quick "validation" test_validation;
  ]
