open Helpers
module Ff = Spv_process.Flipflop
module Sample = Spv_process.Sample
module Tech = Spv_process.Tech
module Gd = Spv_process.Gate_delay

(* --- Flipflop -------------------------------------------------------- *)

let test_default_ff () =
  let tech = Tech.bptm70 in
  let ff = Ff.default tech in
  check_close ~rel:1e-12 "clk-to-q" (4.0 *. tech.Tech.tau)
    ff.Ff.clk_to_q.Gd.nominal;
  check_close ~rel:1e-12 "setup" (2.0 *. tech.Tech.tau) ff.Ff.setup.Gd.nominal;
  check_close ~rel:1e-12 "overhead" (6.0 *. tech.Tech.tau) (Ff.nominal_overhead ff)

let test_ff_validation () =
  let tech = Tech.bptm70 in
  check_raises_invalid "negative tcq" (fun () ->
      Ff.make tech ~clk_to_q_ps:(-1.0) ~setup_ps:1.0 ~size:1.0);
  check_raises_invalid "zero size" (fun () ->
      Ff.make tech ~clk_to_q_ps:1.0 ~setup_ps:1.0 ~size:0.0)

let test_ff_overhead_composition () =
  let tech = Tech.bptm70 in
  let ff = Ff.make tech ~clk_to_q_ps:20.0 ~setup_ps:10.0 ~size:2.0 in
  let o = Ff.overhead ff in
  check_float "nominal" 30.0 o.Gd.nominal;
  (* Same locale: inter components add linearly. *)
  check_close ~rel:1e-12 "inter adds"
    (ff.Ff.clk_to_q.Gd.sigma_inter +. ff.Ff.setup.Gd.sigma_inter)
    o.Gd.sigma_inter

let test_ff_no_variation () =
  let ff = Ff.default (Tech.no_variation Tech.bptm70) in
  check_float "no sigma" 0.0 (Gd.total_sigma (Ff.overhead ff))

(* --- Sample ----------------------------------------------------------- *)

let test_sampler_basic () =
  let tech = Tech.bptm70 in
  let positions = Spv_process.Spatial.row_positions ~n:4 ~pitch:1.0 in
  let s = Sample.create tech ~positions in
  Alcotest.(check int) "locations" 4 (Sample.n_locations s);
  let rng = Spv_stats.Rng.create ~seed:100 in
  let w = Sample.draw s rng in
  Alcotest.(check int) "field per location" 4 (Array.length w.Sample.sys_field)

let test_world_shares_inter () =
  let tech = Tech.bptm70 in
  let positions = Spv_process.Spatial.row_positions ~n:2 ~pitch:1.0 in
  let s = Sample.create tech ~positions in
  let rng = Spv_stats.Rng.create ~seed:101 in
  (* The inter-die shift is identical for all devices of one world; we
     verify by zeroing the other components. *)
  let tech0 = Tech.no_variation tech in
  let tech0 = Tech.with_inter_vth tech0 ~sigma_mv:40.0 in
  let s0 = Sample.create tech0 ~positions in
  let w = Sample.draw s0 rng in
  let sh0 = Sample.shift_at s0 w ~location:0 ~size:1.0 rng in
  let sh1 = Sample.shift_at s0 w ~location:1 ~size:1.0 rng in
  check_float ~eps:1e-12 "same inter dvth" sh0.Spv_process.Variation.dvth
    sh1.Spv_process.Variation.dvth;
  ignore s

let test_delay_factor_mean () =
  let tech = Tech.bptm70 in
  let positions = Spv_process.Spatial.row_positions ~n:1 ~pitch:1.0 in
  let s = Sample.create tech ~positions in
  let rng = Spv_stats.Rng.create ~seed:102 in
  let xs =
    Array.init 20_000 (fun _ ->
        let w = Sample.draw s rng in
        Sample.delay_factor s w ~location:0 ~size:1.0 rng)
  in
  check_in_range "mean factor ~ 1" ~lo:0.99 ~hi:1.01
    (Spv_stats.Descriptive.mean xs);
  (* Combined relative sigma: inter + sys + rand in quadrature. *)
  let expected =
    sqrt
      ((Spv_process.Variation.rel_sigma_inter tech ** 2.0)
      +. (Spv_process.Variation.rel_sigma_sys tech ** 2.0)
      +. (Spv_process.Variation.rel_sigma_rand tech ~size:1.0 ** 2.0))
  in
  check_in_range "factor std" ~lo:(0.95 *. expected) ~hi:(1.05 *. expected)
    (Spv_stats.Descriptive.std xs)

let test_location_bounds () =
  let tech = Tech.bptm70 in
  let positions = Spv_process.Spatial.row_positions ~n:2 ~pitch:1.0 in
  let s = Sample.create tech ~positions in
  let rng = Spv_stats.Rng.create ~seed:103 in
  let w = Sample.draw s rng in
  check_raises_invalid "bad location" (fun () ->
      Sample.shift_at s w ~location:5 ~size:1.0 rng)

let suite =
  [
    quick "default flip-flop" test_default_ff;
    quick "flip-flop validation" test_ff_validation;
    quick "overhead composition" test_ff_overhead_composition;
    quick "no-variation flip-flop" test_ff_no_variation;
    quick "sampler basics" test_sampler_basic;
    quick "world shares inter" test_world_shares_inter;
    slow "delay factor moments" test_delay_factor_mean;
    quick "location bounds" test_location_bounds;
  ]
