open Helpers
module S = Spv_stats.Sampling
module Rng = Spv_stats.Rng
module D = Spv_stats.Descriptive

let test_antithetic_pairing () =
  let rng = Rng.create ~seed:190 in
  let xs = S.antithetic_gaussians rng ~n_pairs:500 in
  Alcotest.(check int) "length" 1000 (Array.length xs);
  for i = 0 to 499 do
    check_float ~eps:1e-15 "paired" (-.xs.(2 * i)) xs.((2 * i) + 1)
  done;
  (* Mean is exactly zero by construction. *)
  check_float ~eps:1e-12 "exact zero mean" 0.0 (D.mean xs)

let test_lhs_stratification () =
  let rng = Rng.create ~seed:191 in
  let n = 64 in
  let pts = S.latin_hypercube rng ~dims:3 ~n in
  Alcotest.(check int) "rows" n (Array.length pts);
  (* Each dimension hits every stratum exactly once. *)
  for d = 0 to 2 do
    let hit = Array.make n false in
    Array.iter
      (fun row ->
        let k = int_of_float (row.(d) *. float_of_int n) in
        Alcotest.(check bool) "stratum unvisited" false hit.(k);
        hit.(k) <- true)
      pts;
    Alcotest.(check bool) "all strata" true (Array.for_all (fun b -> b) hit)
  done

let test_lhs_gaussian_moments () =
  let rng = Rng.create ~seed:192 in
  let pts = S.latin_hypercube_gaussians rng ~dims:2 ~n:2000 in
  let col d = Array.map (fun r -> r.(d)) pts in
  (* Stratified normals: moments far tighter than sqrt(n) Monte-Carlo. *)
  check_in_range "mean" ~lo:(-0.005) ~hi:0.005 (D.mean (col 0));
  check_in_range "std" ~lo:0.99 ~hi:1.01 (D.std (col 1))

let test_mvn_lhs_preserves_structure () =
  let rho = 0.6 in
  let mvn =
    Spv_stats.Mvn.create ~mus:[| 10.0; 20.0 |] ~sigmas:[| 2.0; 3.0 |]
      ~corr:(Spv_stats.Correlation.uniform ~n:2 ~rho)
  in
  let rng = Rng.create ~seed:193 in
  let draws = S.mvn_lhs mvn rng ~n:4000 in
  let xs = Array.map (fun d -> d.(0)) draws in
  let ys = Array.map (fun d -> d.(1)) draws in
  check_in_range "mean x" ~lo:9.97 ~hi:10.03 (D.mean xs);
  check_in_range "std y" ~lo:2.9 ~hi:3.1 (D.std ys);
  check_in_range "rho" ~lo:(rho -. 0.03) ~hi:(rho +. 0.03)
    (Spv_stats.Correlation.sample_correlation xs ys)

let test_mvn_antithetic_mirror () =
  let mvn =
    Spv_stats.Mvn.create ~mus:[| 5.0; -3.0 |] ~sigmas:[| 1.0; 2.0 |]
      ~corr:(Spv_stats.Correlation.independent ~n:2)
  in
  let rng = Rng.create ~seed:194 in
  let draws = S.mvn_antithetic mvn rng ~n_pairs:100 in
  for i = 0 to 99 do
    let a = draws.(2 * i) and b = draws.((2 * i) + 1) in
    (* Pairs mirror through the mean vector. *)
    check_float ~eps:1e-9 "mirror x" 10.0 (a.(0) +. b.(0));
    check_float ~eps:1e-9 "mirror y" (-6.0) (a.(1) +. b.(1))
  done

let yield_fixture () =
  let stages =
    Array.init 5 (fun i ->
        Spv_core.Stage.of_moments ~mu:(100.0 +. float_of_int i) ~sigma:5.0 ())
  in
  Spv_core.Pipeline.make stages
    ~corr:(Spv_stats.Correlation.uniform ~n:5 ~rho:0.3)

let test_lhs_yield_unbiased () =
  let p = yield_fixture () in
  let t_target = 110.0 in
  let reference =
    Spv_core.Yield.monte_carlo p (Rng.create ~seed:195) ~n:300_000 ~t_target
  in
  let lhs = Spv_core.Yield.monte_carlo_lhs p (Rng.create ~seed:196) ~n:20_000 ~t_target in
  check_in_range "LHS agrees" ~lo:(reference -. 0.01) ~hi:(reference +. 0.01) lhs

let test_lhs_reduces_variance () =
  let p = yield_fixture () in
  let t_target = 110.0 in
  let n = 400 in
  let repeats = 60 in
  let spread estimator =
    let estimates =
      Array.init repeats (fun k ->
          estimator (Rng.create ~seed:(1000 + k)))
    in
    D.std estimates
  in
  let plain_spread =
    spread (fun rng -> Spv_core.Yield.monte_carlo p rng ~n ~t_target)
  in
  let lhs_spread =
    spread (fun rng -> Spv_core.Yield.monte_carlo_lhs p rng ~n ~t_target)
  in
  Alcotest.(check bool) "LHS tighter" true (lhs_spread < plain_spread)

let suite =
  [
    quick "antithetic pairing" test_antithetic_pairing;
    quick "lhs stratification" test_lhs_stratification;
    quick "lhs gaussian moments" test_lhs_gaussian_moments;
    slow "mvn lhs structure" test_mvn_lhs_preserves_structure;
    quick "mvn antithetic mirror" test_mvn_antithetic_mirror;
    slow "lhs yield unbiased" test_lhs_yield_unbiased;
    slow "lhs reduces variance" test_lhs_reduces_variance;
  ]
