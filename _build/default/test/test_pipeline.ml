open Helpers
module P = Spv_core.Pipeline
module Stage = Spv_core.Stage
module G = Spv_stats.Gaussian
module C = Spv_stats.Correlation
module Gd = Spv_process.Gate_delay

let stages_fixture () =
  Array.init 4 (fun i ->
      Stage.of_moments
        ~name:(Printf.sprintf "s%d" i)
        ~mu:(100.0 +. float_of_int i)
        ~sigma:5.0 ())

(* --- Stage ----------------------------------------------------------- *)

let test_stage_of_moments () =
  let s = Stage.of_moments ~mu:50.0 ~sigma:2.0 () in
  check_float "mu" 50.0 (Stage.mu s);
  check_float "sigma" 2.0 (Stage.sigma s);
  check_float "variability" 0.04 (Stage.variability s);
  check_raises_invalid "negative sigma" (fun () ->
      ignore (Stage.of_moments ~mu:1.0 ~sigma:(-1.0) ()))

let test_stage_of_circuit () =
  let tech = Spv_process.Tech.bptm70 in
  let ff = Spv_process.Flipflop.default tech in
  let net = Spv_circuit.Generators.inverter_chain ~depth:8 () in
  let s = Stage.of_circuit ~ff tech net in
  let g = Spv_circuit.Ssta.stage_gaussian ~ff tech net in
  check_close ~rel:1e-12 "matches ssta mu" (G.mu g) (Stage.mu s);
  check_close ~rel:1e-12 "matches ssta sigma" (G.sigma g) (Stage.sigma s);
  Alcotest.(check string) "named after the netlist" "invchain8" s.Stage.name

let test_stage_scaling () =
  let s = Stage.of_moments ~mu:100.0 ~sigma:4.0 () in
  let s2 = Stage.scale_delay s 1.5 in
  check_float "scaled mu" 150.0 (Stage.mu s2);
  check_float "scaled sigma" 6.0 (Stage.sigma s2)

let test_stage_yield_alone () =
  let s = Stage.of_moments ~mu:100.0 ~sigma:5.0 () in
  check_float ~eps:1e-9 "at mean" 0.5 (Stage.yield_alone s ~t_target:100.0);
  check_close ~rel:1e-6 "one sigma"
    (Spv_stats.Special.big_phi 1.0)
    (Stage.yield_alone s ~t_target:105.0)

(* --- Pipeline -------------------------------------------------------- *)

let test_make_validation () =
  let stages = stages_fixture () in
  check_raises_invalid "dim mismatch" (fun () ->
      ignore (P.make stages ~corr:(C.independent ~n:3)));
  check_raises_invalid "empty" (fun () ->
      ignore (P.make [||] ~corr:(C.independent ~n:1)))

let test_accessors () =
  let stages = stages_fixture () in
  let p = P.make stages ~corr:(C.independent ~n:4) in
  Alcotest.(check int) "n_stages" 4 (P.n_stages p);
  check_float "nominal delay" 103.0 (P.nominal_delay p);
  Alcotest.(check int) "slowest stage" 3 (P.slowest_stage p);
  check_float "jensen" 103.0 (P.jensen_lower_bound p)

let test_delay_distribution_above_jensen () =
  let stages = stages_fixture () in
  let p = P.make stages ~corr:(C.independent ~n:4) in
  let tp = P.delay_distribution p in
  Alcotest.(check bool) "mu_T > max mu_i" true (G.mu tp > 103.0)

let test_correlation_derivation () =
  (* Stages with only inter-die sigma must be perfectly correlated;
     only-random stages independent. *)
  let mk ~inter ~rand i =
    Stage.make
      ~name:(string_of_int i)
      ~position:(Spv_process.Spatial.position ~x:(float_of_int i) ~y:0.0)
      (Gd.make ~nominal:100.0 ~sigma_inter:inter ~sigma_sys:0.0 ~sigma_rand:rand)
  in
  let p_inter = P.of_stages (Array.init 3 (mk ~inter:5.0 ~rand:0.0)) in
  check_close ~rel:1e-9 "inter-only rho=1" 1.0
    (C.get (P.correlation p_inter) 0 2);
  let p_rand = P.of_stages (Array.init 3 (mk ~inter:0.0 ~rand:5.0)) in
  check_float "random-only rho=0" 0.0 (C.get (P.correlation p_rand) 0 2)

let test_systematic_decays_with_distance () =
  let mk i =
    Stage.make
      ~name:(string_of_int i)
      ~position:(Spv_process.Spatial.position ~x:(2.0 *. float_of_int i) ~y:0.0)
      (Gd.make ~nominal:100.0 ~sigma_inter:0.0 ~sigma_sys:4.0 ~sigma_rand:0.0)
  in
  let p = P.of_stages ~corr_length:2.0 (Array.init 3 mk) in
  let c = P.correlation p in
  check_close ~rel:1e-9 "adjacent" (exp (-1.0)) (C.get c 0 1);
  check_close ~rel:1e-9 "far" (exp (-2.0)) (C.get c 0 2);
  Alcotest.(check bool) "monotone decay" true (C.get c 0 1 > C.get c 0 2)

let test_of_circuits () =
  let tech = Spv_process.Tech.bptm70 in
  let ff = Spv_process.Flipflop.default tech in
  let nets = Spv_circuit.Generators.inverter_chain_pipeline ~stages:3 ~depth:5 () in
  let p = P.of_circuits ~ff tech nets in
  Alcotest.(check int) "stages" 3 (P.n_stages p);
  (* Identical circuits: identical stage distributions. *)
  check_close ~rel:1e-12 "equal stage mus" (Stage.mu (P.stage p 0))
    (Stage.mu (P.stage p 2));
  Alcotest.(check bool) "partially correlated" true
    (C.get (P.correlation p) 0 1 > 0.3 && C.get (P.correlation p) 0 1 < 1.0)

let test_with_stage_recomputes_correlation () =
  let mk sigma_sys i =
    Stage.make
      ~name:(string_of_int i)
      ~position:(Spv_process.Spatial.position ~x:(float_of_int i) ~y:0.0)
      (Gd.make ~nominal:100.0 ~sigma_inter:2.0 ~sigma_sys ~sigma_rand:1.0)
  in
  let p = P.of_stages (Array.init 2 (mk 3.0)) in
  let before = C.get (P.correlation p) 0 1 in
  (* Replace stage 1 with a random-dominated one: correlation drops. *)
  let p2 =
    P.with_stage p 1
      (Stage.make ~name:"new"
         ~position:(Spv_process.Spatial.position ~x:1.0 ~y:0.0)
         (Gd.make ~nominal:100.0 ~sigma_inter:0.5 ~sigma_sys:0.5 ~sigma_rand:8.0))
  in
  let after = C.get (P.correlation p2) 0 1 in
  Alcotest.(check bool) "correlation drops" true (after < before)

let test_mvn_consistency () =
  let stages = stages_fixture () in
  let p = P.make stages ~corr:(C.uniform ~n:4 ~rho:0.5) in
  let mvn = P.mvn p in
  check_float "marginal mean" 102.0 (Spv_stats.Mvn.mean mvn 2);
  check_close ~rel:1e-12 "covariance" (0.5 *. 25.0) (Spv_stats.Mvn.covariance mvn 0 1)

let test_map_stages () =
  let stages = stages_fixture () in
  let p = P.make stages ~corr:(C.independent ~n:4) in
  let p2 = P.map_stages p (fun s -> Stage.scale_delay s 2.0) in
  check_float "mapped nominal" 206.0 (P.nominal_delay p2);
  (* Original untouched. *)
  check_float "original nominal" 103.0 (P.nominal_delay p)

let suite =
  [
    quick "stage of_moments" test_stage_of_moments;
    quick "stage of_circuit" test_stage_of_circuit;
    quick "stage scaling" test_stage_scaling;
    quick "stage yield alone" test_stage_yield_alone;
    quick "pipeline validation" test_make_validation;
    quick "accessors" test_accessors;
    quick "mu_T above Jensen" test_delay_distribution_above_jensen;
    quick "correlation derivation" test_correlation_derivation;
    quick "systematic decay" test_systematic_decays_with_distance;
    quick "of_circuits" test_of_circuits;
    quick "with_stage recomputes" test_with_stage_recomputes_correlation;
    quick "mvn consistency" test_mvn_consistency;
    quick "map_stages" test_map_stages;
  ]
