open Helpers
module W = Spv_circuit.Wire
module Sta = Spv_circuit.Sta
module G = Spv_circuit.Generators
module B = Spv_circuit.Builder

let tech = Spv_process.Tech.bptm70
let model = W.default tech

let test_model_helpers () =
  check_close ~rel:1e-12 "length scales with fanout"
    (2.0 *. W.net_length model ~fanout:2)
    (W.net_length model ~fanout:4);
  (* Fanout 0 still gets one segment (the output stub). *)
  check_close ~rel:1e-12 "stub" (W.net_length model ~fanout:1)
    (W.net_length model ~fanout:0);
  check_close ~rel:1e-12 "cap = c * L"
    (model.W.c_per_unit *. W.net_length model ~fanout:3)
    (W.wire_cap model ~fanout:3);
  check_float "no_wires inert" 0.0 (W.wire_cap W.no_wires ~fanout:5)

let test_elmore_formula () =
  let fanout = 2 in
  let len = W.net_length model ~fanout in
  check_close ~rel:1e-12 "elmore"
    (model.W.r_per_unit *. len
    *. ((model.W.c_per_unit *. len /. 2.0) +. 3.0))
    (W.elmore_delay model ~fanout ~sink_cap:3.0);
  check_raises_invalid "negative sink" (fun () ->
      ignore (W.elmore_delay model ~fanout:1 ~sink_cap:(-1.0)))

let test_no_model_identical () =
  let net = G.c432 () in
  let plain = (Sta.run tech net).Sta.delay in
  let zero = (Sta.run ~wire:W.no_wires tech net).Sta.delay in
  check_close ~rel:1e-12 "zero model = no model" plain zero

let test_wires_slow_things_down () =
  let net = G.c432 () in
  let plain = (Sta.run tech net).Sta.delay in
  let wired = (Sta.run ~wire:model tech net).Sta.delay in
  Alcotest.(check bool) "wired slower" true (wired > plain);
  (* And not absurdly so at these parameters. *)
  check_in_range "sane overhead" ~lo:plain ~hi:(2.0 *. plain) wired

let test_fanout_penalty () =
  (* Same logical function, one driver with high fanout vs a chain:
     the high-fanout net pays a longer wire. *)
  let high_fanout k =
    let b = B.create ~name:"fo" in
    let a = B.input b "a" in
    let d = B.inv b a in
    for _ = 1 to k do
      B.output b (B.inv b d)
    done;
    B.finish b
  in
  let delay k =
    let net = high_fanout k in
    let sta = Sta.run ~wire:model tech net in
    (* Arrival at the first inverter (node 1) includes its net's
       Elmore delay. *)
    sta.Sta.arrival.(1)
  in
  Alcotest.(check bool) "more sinks, slower driver" true (delay 8 > delay 2)

let test_loads_include_wire_cap () =
  let net = G.inverter_chain ~depth:2 () in
  let bare = Sta.loads net ~output_load:4.0 in
  let wired = Sta.loads ~wire:model net ~output_load:4.0 in
  check_close ~rel:1e-12 "wire cap added"
    (bare.(1) +. W.wire_cap model ~fanout:1)
    wired.(1)

let test_upsizing_fights_wire_load () =
  (* With wires, upsizing a driver of a long net helps more than in
     the unloaded model. *)
  let b = B.create ~name:"drv" in
  let a = B.input b "a" in
  let d = B.inv b a in
  for _ = 1 to 8 do
    B.output b (B.inv b d)
  done;
  let net = B.finish b in
  let before = (Sta.run ~wire:model tech net).Sta.delay in
  Spv_circuit.Netlist.set_size net 1 4.0;
  let after = (Sta.run ~wire:model tech net).Sta.delay in
  Alcotest.(check bool) "upsizing helps" true (after < before)

let test_wire_aware_sizing_costs_area () =
  let z = Spv_stats.Special.big_phi_inv 0.9457 in
  let ff = Spv_process.Flipflop.default tech in
  let net = G.c432 () in
  let options =
    { Spv_sizing.Lagrangian.default_options with
      Spv_sizing.Lagrangian.wire = Some model }
  in
  (* Target set from the wire-aware minimum so both problems are
     feasible (wires only make the same target harder). *)
  let t_target =
    1.15
    *. Spv_sizing.Lagrangian.minimum_achievable_delay ~options ~ff tech net ~z
  in
  let bare = Spv_sizing.Lagrangian.size_stage ~ff tech net ~t_target ~z in
  let wired =
    Spv_sizing.Lagrangian.size_stage ~options ~ff tech (G.c432 ()) ~t_target ~z
  in
  Alcotest.(check bool) "both converge" true
    (bare.Spv_sizing.Lagrangian.converged
    && wired.Spv_sizing.Lagrangian.converged);
  Alcotest.(check bool) "wires cost area at the same target" true
    (wired.Spv_sizing.Lagrangian.area > bare.Spv_sizing.Lagrangian.area)

let suite =
  [
    quick "model helpers" test_model_helpers;
    quick "elmore formula" test_elmore_formula;
    quick "no model identical" test_no_model_identical;
    quick "wires slow things down" test_wires_slow_things_down;
    quick "fanout penalty" test_fanout_penalty;
    quick "loads include wire cap" test_loads_include_wire_cap;
    quick "upsizing fights wire load" test_upsizing_fights_wire_load;
    quick "wire-aware sizing costs area" test_wire_aware_sizing_costs_area;
  ]
