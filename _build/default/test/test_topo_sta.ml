open Helpers
module Net = Spv_circuit.Netlist
module B = Spv_circuit.Builder
module Topo = Spv_circuit.Topo
module Sta = Spv_circuit.Sta
module G = Spv_circuit.Generators

let tech = Spv_process.Tech.bptm70

(* --- Topo ------------------------------------------------------------ *)

let test_levels_chain () =
  let net = G.inverter_chain ~depth:5 () in
  let levels = Topo.levels net in
  Alcotest.(check int) "input level" 0 levels.(0);
  Alcotest.(check int) "last level" 5 levels.(5);
  Alcotest.(check int) "depth" 5 (Topo.depth net)

let test_levels_diamond () =
  let b = B.create ~name:"diamond" in
  let a = B.input b "a" in
  let l = B.inv b a in
  let r = B.inv b a in
  let m = B.nand2 b l r in
  B.output b m;
  let net = B.finish b in
  Alcotest.(check int) "depth" 2 (Topo.depth net);
  Alcotest.(check (list int)) "level 1 nodes" [ 1; 2 ] (Topo.nodes_at_level net 1)

let test_longest_paths () =
  let net = G.inverter_chain ~depth:4 () in
  let len = Topo.longest_path_lengths net in
  Alcotest.(check int) "end of chain" 4 len.(4)

let test_transitive_fanin () =
  let net = G.inverter_chain ~depth:4 () in
  (* Last gate's cone: 4 earlier nodes (input + 3 inverters). *)
  Alcotest.(check int) "cone size" 4 (Topo.transitive_fanin_count net 4)

let test_generated_depths () =
  List.iter
    (fun (net, expected) ->
      Alcotest.(check int)
        (Net.name net ^ " depth")
        expected (Topo.depth net))
    [ (G.c432 (), 17); (G.c1908 (), 40); (G.c2670 (), 32); (G.c3540 (), 47) ]

(* --- STA ------------------------------------------------------------- *)

let test_chain_delay_closed_form () =
  (* Uniform inverter chain: every inverter drives one same-size
     inverter (load g = 1) except the last, which drives output_load.
     delay = (depth-1) * tau * (p + 1) + tau * (p + load). *)
  let depth = 6 in
  let net = G.inverter_chain ~depth () in
  let output_load = 4.0 in
  let sta = Sta.run ~output_load tech net in
  let tau = tech.Spv_process.Tech.tau in
  let expected =
    (float_of_int (depth - 1) *. tau *. 2.0) +. (tau *. (1.0 +. output_load))
  in
  check_close ~rel:1e-12 "closed form" expected sta.Sta.delay;
  Alcotest.(check int) "critical path length" depth
    (List.length sta.Sta.critical_path)

let test_upsizing_final_gate_speeds_up () =
  let net = G.inverter_chain ~depth:4 () in
  let before = (Sta.run tech net).Sta.delay in
  (* The last inverter drives the fixed primary-output load; doubling
     it halves that stage's effort delay. *)
  Net.set_size net 4 2.0;
  let after = (Sta.run tech net).Sta.delay in
  Alcotest.(check bool) "faster" true (after < before)

let test_critical_path_is_slowest () =
  let b = B.create ~name:"twopaths" in
  let a = B.input b "a" in
  (* Slow path: 3 inverters; fast path: 1 inverter; both reconverge. *)
  let s1 = B.inv b a in
  let s2 = B.inv b s1 in
  let s3 = B.inv b s2 in
  let f1 = B.inv b a in
  let m = B.nand2 b s3 f1 in
  B.output b m;
  let net = B.finish b in
  let sta = Sta.run tech net in
  (* Critical path must go through the 3-inverter branch. *)
  Alcotest.(check int) "path length" 4 (List.length sta.Sta.critical_path);
  Alcotest.(check bool) "slow branch on path" true
    (List.mem 3 sta.Sta.critical_path)

let test_arrival_monotone_along_path () =
  let net = G.c432 () in
  let sta = Sta.run tech net in
  let rec check_path = function
    | [] | [ _ ] -> ()
    | x :: (y :: _ as rest) ->
        Alcotest.(check bool) "arrival increases" true
          (sta.Sta.arrival.(x) < sta.Sta.arrival.(y));
        check_path rest
  in
  check_path sta.Sta.critical_path;
  check_close ~rel:1e-12 "path delay sums to total" sta.Sta.delay
    (Sta.path_delay sta sta.Sta.critical_path)

let test_loads () =
  let net = G.inverter_chain ~depth:2 () in
  let loads = Sta.loads net ~output_load:4.0 in
  (* First inverter drives the second (inv cin = size = 1). *)
  check_float "internal load" 1.0 loads.(1);
  check_float "po load" 4.0 loads.(2)

let test_factors () =
  let net = G.inverter_chain ~depth:3 () in
  let base = (Sta.run tech net).Sta.delay in
  let factors = Array.make (Net.n_nodes net) 1.1 in
  let sta = Sta.run_with_factors tech net ~factors in
  check_close ~rel:1e-12 "uniform factor scales delay" (base *. 1.1)
    sta.Sta.delay;
  check_raises_invalid "wrong factor length" (fun () ->
      ignore (Sta.run_with_factors tech net ~factors:[| 1.0 |]))

let suite =
  [
    quick "levels of chain" test_levels_chain;
    quick "levels of diamond" test_levels_diamond;
    quick "longest paths" test_longest_paths;
    quick "transitive fanin" test_transitive_fanin;
    quick "generated benchmark depths" test_generated_depths;
    quick "chain delay closed form" test_chain_delay_closed_form;
    quick "upsizing speeds up" test_upsizing_final_gate_speeds_up;
    quick "critical path is slowest" test_critical_path_is_slowest;
    quick "arrival monotone" test_arrival_monotone_along_path;
    quick "loads" test_loads;
    quick "variation factors" test_factors;
  ]
