open Helpers
module Ds = Spv_core.Design_space

let t_target = 120.0
let yield = 0.8

let test_mu_t_upper_bound () =
  (* Phi^-1(0.8) ~ 0.8416. *)
  check_close ~rel:1e-6 "bound"
    (120.0 -. (5.0 *. Spv_stats.Special.big_phi_inv 0.8))
    (Ds.mu_t_upper_bound ~t_target ~yield ~sigma_t:5.0);
  (* Zero sigma: bound is the target itself. *)
  check_float "deterministic" 120.0 (Ds.mu_t_upper_bound ~t_target ~yield ~sigma_t:0.0)

let test_relaxed_bound () =
  let b = Ds.relaxed_sigma_bound ~t_target ~yield ~mu:100.0 in
  check_close ~rel:1e-9 "relaxed" (20.0 /. Spv_stats.Special.big_phi_inv 0.8) b;
  (* Stage meeting the bound exactly yields the target when all others
     pass with certainty. *)
  let g = Spv_stats.Gaussian.make ~mu:100.0 ~sigma:b in
  check_close ~rel:1e-9 "bound is tight" yield (Spv_stats.Gaussian.cdf g t_target)

let test_equality_bound_tightens_with_stages () =
  let b n = Ds.equality_sigma_bound ~t_target ~yield ~n_stages:n ~mu:100.0 in
  Alcotest.(check bool) "more stages, less sigma" true (b 2 > b 4 && b 4 > b 16);
  (* Single stage degenerates to the relaxed bound. *)
  check_close ~rel:1e-12 "n=1 equals relaxed"
    (Ds.relaxed_sigma_bound ~t_target ~yield ~mu:100.0)
    (b 1)

let test_equality_bound_consistency () =
  (* N stages each exactly at the eq. 12 bound deliver the target yield
     under independence. *)
  let n = 4 in
  let mu = 100.0 in
  let sigma = Ds.equality_sigma_bound ~t_target ~yield ~n_stages:n ~mu in
  let stages = Array.init n (fun _ -> Spv_core.Stage.of_moments ~mu ~sigma ()) in
  let p = Spv_core.Pipeline.make stages ~corr:(Spv_stats.Correlation.independent ~n) in
  check_close ~rel:1e-9 "achieves target" yield
    (Spv_core.Yield.independent_exact p ~t_target)

let test_realizable_sqrt_law () =
  let s = Ds.realizable_sigma ~mu_ref:10.0 ~sigma_ref:1.0 ~mu:40.0 in
  check_float "sqrt scaling" 2.0 s;
  check_raises_invalid "bad ref" (fun () ->
      ignore (Ds.realizable_sigma ~mu_ref:0.0 ~sigma_ref:1.0 ~mu:1.0))

let test_inverter_reference () =
  let tech = Spv_process.Tech.bptm70 in
  let small = Ds.inverter_reference tech ~size:1.0 in
  let big = Ds.inverter_reference tech ~size:8.0 in
  Alcotest.(check bool) "bigger is faster" true (big.Ds.mu < small.Ds.mu);
  Alcotest.(check bool) "bigger is steadier" true (big.Ds.sigma < small.Ds.sigma);
  (* random_only:false includes the correlated components. *)
  let full = Ds.inverter_reference ~random_only:false tech ~size:1.0 in
  Alcotest.(check bool) "full sigma larger" true (full.Ds.sigma > small.Ds.sigma)

let test_yield_domain () =
  check_raises_invalid "yield 0.4" (fun () ->
      ignore (Ds.relaxed_sigma_bound ~t_target ~yield:0.4 ~mu:100.0));
  check_raises_invalid "yield 1.0" (fun () ->
      ignore (Ds.equality_sigma_bound ~t_target ~yield:1.0 ~n_stages:2 ~mu:100.0))

let test_curves_structure () =
  let c = Ds.curves ~t_target ~yield ~stage_counts:[ 3; 9 ] ~n_points:20 () in
  Alcotest.(check int) "points" 20 (Array.length c.Ds.mus);
  Alcotest.(check int) "two equality curves" 2 (List.length c.Ds.equality);
  (* Relaxed bound dominates every equality bound pointwise. *)
  List.iter
    (fun (_, eq) ->
      Array.iteri
        (fun i v ->
          Alcotest.(check bool) "relaxed >= equality" true (c.Ds.relaxed.(i) >= v -. 1e-9))
        eq)
    c.Ds.equality;
  (* Realizable min-size curve sits above the max-size curve. *)
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "corridor ordering" true (v >= c.Ds.realizable_max.(i)))
    c.Ds.realizable_min

let test_admissible_and_realizable () =
  Alcotest.(check bool) "tight point admissible" true
    (Ds.admissible ~t_target ~yield ~n_stages:4 { Ds.mu = 100.0; sigma = 1.0 });
  Alcotest.(check bool) "too noisy not admissible" false
    (Ds.admissible ~t_target ~yield ~n_stages:4 { Ds.mu = 100.0; sigma = 50.0 });
  Alcotest.(check bool) "mu beyond target not admissible" false
    (Ds.admissible ~t_target ~yield ~n_stages:4 { Ds.mu = 125.0; sigma = 1.0 })

let prop_bounds_decrease_with_mu =
  prop "sigma budget shrinks as mu grows"
    QCheck2.Gen.(pair (float_range 10.0 110.0) (float_range 10.0 110.0))
    (fun (m1, m2) ->
      let b m = Ds.equality_sigma_bound ~t_target ~yield ~n_stages:4 ~mu:m in
      m1 = m2 || (m1 < m2) = (b m1 > b m2))

let suite =
  [
    quick "eq.10 bound" test_mu_t_upper_bound;
    quick "eq.11 relaxed bound" test_relaxed_bound;
    quick "eq.12 tightens with stages" test_equality_bound_tightens_with_stages;
    quick "eq.12 consistency with yield" test_equality_bound_consistency;
    quick "eq.13 sqrt law" test_realizable_sqrt_law;
    quick "inverter reference" test_inverter_reference;
    quick "yield domain" test_yield_domain;
    quick "curves structure" test_curves_structure;
    quick "admissible/realizable" test_admissible_and_realizable;
    prop_bounds_decrease_with_mu;
  ]
