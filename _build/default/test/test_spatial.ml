open Helpers
module Sp = Spv_process.Spatial
module Tech = Spv_process.Tech

let test_distance () =
  let a = Sp.position ~x:0.0 ~y:0.0 and b = Sp.position ~x:3.0 ~y:4.0 in
  check_float "3-4-5" 5.0 (Sp.distance a b);
  check_float "self" 0.0 (Sp.distance a a)

let test_row_positions () =
  let ps = Sp.row_positions ~n:4 ~pitch:2.5 in
  Alcotest.(check int) "count" 4 (Array.length ps);
  check_float "x of 3rd" 5.0 ps.(2).Sp.x;
  check_float "y zero" 0.0 ps.(2).Sp.y;
  check_raises_invalid "n=0" (fun () -> Sp.row_positions ~n:0 ~pitch:1.0)

let test_correlation_decay () =
  let t = Tech.bptm70 in
  let a = Sp.position ~x:0.0 ~y:0.0 in
  let near = Sp.position ~x:0.1 ~y:0.0 in
  let far = Sp.position ~x:10.0 ~y:0.0 in
  check_float ~eps:1e-12 "self corr" 1.0 (Sp.correlation t a a);
  Alcotest.(check bool) "decay" true
    (Sp.correlation t a near > Sp.correlation t a far);
  check_close ~rel:1e-12 "exp form"
    (exp (-10.0 /. t.Tech.corr_length))
    (Sp.correlation t a far)

let test_correlation_matrix_valid () =
  let t = Tech.bptm70 in
  let ps = Sp.row_positions ~n:6 ~pitch:1.0 in
  let m = Sp.correlation_matrix t ps in
  Alcotest.(check bool) "valid correlation matrix" true
    (Spv_stats.Correlation.is_valid m)

let test_field_sampler_statistics () =
  let t = Tech.bptm70 in
  let ps = Sp.row_positions ~n:3 ~pitch:1.0 in
  let fs = Sp.make_sampler t ps in
  let rng = Spv_stats.Rng.create ~seed:90 in
  let n = 30_000 in
  let draws = Array.init n (fun _ -> Sp.sample_field fs rng) in
  let col i = Array.map (fun d -> d.(i)) draws in
  (* Unit variance per location. *)
  check_in_range "std loc0" ~lo:0.98 ~hi:1.02 (Spv_stats.Descriptive.std (col 0));
  check_in_range "std loc2" ~lo:0.98 ~hi:1.02 (Spv_stats.Descriptive.std (col 2));
  (* Pairwise correlation matches the exponential model. *)
  let expected01 = exp (-1.0 /. t.Tech.corr_length) in
  check_in_range "corr(0,1)" ~lo:(expected01 -. 0.02) ~hi:(expected01 +. 0.02)
    (Spv_stats.Correlation.sample_correlation (col 0) (col 1));
  let expected02 = exp (-2.0 /. t.Tech.corr_length) in
  check_in_range "corr(0,2)" ~lo:(expected02 -. 0.02) ~hi:(expected02 +. 0.02)
    (Spv_stats.Correlation.sample_correlation (col 0) (col 2))

let suite =
  [
    quick "distance" test_distance;
    quick "row positions" test_row_positions;
    quick "correlation decay" test_correlation_decay;
    quick "correlation matrix validity" test_correlation_matrix_valid;
    slow "field sampler statistics" test_field_sampler_statistics;
  ]
