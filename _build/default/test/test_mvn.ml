open Helpers
module Mvn = Spv_stats.Mvn
module D = Spv_stats.Descriptive

let test_validation () =
  check_raises_invalid "sigma length" (fun () ->
      Mvn.create ~mus:[| 0.0; 0.0 |] ~sigmas:[| 1.0 |]
        ~corr:(Spv_stats.Correlation.independent ~n:2));
  check_raises_invalid "negative sigma" (fun () ->
      Mvn.create ~mus:[| 0.0 |] ~sigmas:[| -1.0 |]
        ~corr:(Spv_stats.Correlation.independent ~n:1))

let test_marginals () =
  let mvn =
    Mvn.create ~mus:[| 1.0; 2.0 |] ~sigmas:[| 0.5; 1.5 |]
      ~corr:(Spv_stats.Correlation.uniform ~n:2 ~rho:0.3)
  in
  Alcotest.(check int) "dim" 2 (Mvn.dim mvn);
  check_float "mean 1" 2.0 (Mvn.mean mvn 1);
  let g = Mvn.marginal mvn 0 in
  check_float "marginal sigma" 0.5 (Spv_stats.Gaussian.sigma g);
  check_close ~rel:1e-12 "covariance" (0.3 *. 0.5 *. 1.5) (Mvn.covariance mvn 0 1)

let test_sample_moments () =
  let rho = 0.7 in
  let mvn =
    Mvn.create ~mus:[| 10.0; -5.0 |] ~sigmas:[| 2.0; 3.0 |]
      ~corr:(Spv_stats.Correlation.uniform ~n:2 ~rho)
  in
  let rng = Spv_stats.Rng.create ~seed:60 in
  let draws = Mvn.sample_many mvn rng ~n:50_000 in
  let xs = Array.map (fun d -> d.(0)) draws in
  let ys = Array.map (fun d -> d.(1)) draws in
  check_in_range "mean x" ~lo:9.97 ~hi:10.03 (D.mean xs);
  check_in_range "mean y" ~lo:(-5.05) ~hi:(-4.95) (D.mean ys);
  check_in_range "std x" ~lo:1.97 ~hi:2.03 (D.std xs);
  check_in_range "std y" ~lo:2.95 ~hi:3.05 (D.std ys);
  check_in_range "rho" ~lo:0.68 ~hi:0.72
    (Spv_stats.Correlation.sample_correlation xs ys)

let test_perfect_correlation () =
  let mvn =
    Mvn.create ~mus:[| 0.0; 10.0 |] ~sigmas:[| 1.0; 1.0 |]
      ~corr:(Spv_stats.Correlation.perfectly_correlated ~n:2)
  in
  let rng = Spv_stats.Rng.create ~seed:61 in
  for _ = 1 to 100 do
    let d = Mvn.sample mvn rng in
    (* Same underlying draw shifted by the mean difference. *)
    check_float ~eps:1e-4 "rho=1 locks components" (d.(0) +. 10.0) d.(1)
  done

let test_zero_sigma () =
  let mvn =
    Mvn.create ~mus:[| 5.0; 1.0 |] ~sigmas:[| 0.0; 0.0 |]
      ~corr:(Spv_stats.Correlation.independent ~n:2)
  in
  let rng = Spv_stats.Rng.create ~seed:62 in
  let d = Mvn.sample mvn rng in
  check_float "deterministic x" 5.0 d.(0);
  check_float "deterministic y" 1.0 d.(1);
  check_float "max" 5.0 (Mvn.sample_max mvn rng)

let test_sample_max () =
  let mvn =
    Mvn.create ~mus:[| 0.0; 0.0; 100.0 |] ~sigmas:[| 1.0; 1.0; 1.0 |]
      ~corr:(Spv_stats.Correlation.independent ~n:3)
  in
  let rng = Spv_stats.Rng.create ~seed:63 in
  let m = Mvn.sample_max mvn rng in
  check_in_range "dominated max" ~lo:90.0 ~hi:110.0 m

let suite =
  [
    quick "validation" test_validation;
    quick "marginals" test_marginals;
    slow "sample moments" test_sample_moments;
    quick "perfect correlation" test_perfect_correlation;
    quick "zero sigma degenerate" test_zero_sigma;
    quick "sample max" test_sample_max;
  ]
