open Helpers
module H = Spv_stats.Histogram

let test_create_validation () =
  check_raises_invalid "lo >= hi" (fun () -> H.create ~lo:1.0 ~hi:1.0 ~bins:4);
  check_raises_invalid "no bins" (fun () -> H.create ~lo:0.0 ~hi:1.0 ~bins:0)

let test_binning () =
  let h = H.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  H.add h 0.5;
  H.add h 0.9;
  H.add h 5.0;
  H.add h 9.99;
  check_float "bin width" 1.0 (H.bin_width h);
  Alcotest.(check int) "bin 0" 2 (H.count h 0);
  Alcotest.(check int) "bin 5" 1 (H.count h 5);
  Alcotest.(check int) "bin 9" 1 (H.count h 9);
  Alcotest.(check int) "total" 4 (H.total h)

let test_out_of_range () =
  let h = H.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  H.add h (-0.1);
  H.add h 1.0;
  H.add h 2.0;
  Alcotest.(check int) "underflow" 1 (H.underflow h);
  Alcotest.(check int) "overflow" 2 (H.overflow h);
  Alcotest.(check int) "total includes both" 3 (H.total h)

let test_density_normalisation () =
  let rng = Spv_stats.Rng.create ~seed:40 in
  let xs = Array.init 20_000 (fun _ -> Spv_stats.Rng.gaussian rng) in
  let h = H.of_samples ~bins:40 xs in
  (* Densities integrate to ~1 over the sampled range. *)
  let integral = ref 0.0 in
  for i = 0 to H.bins h - 1 do
    integral := !integral +. (H.density h i *. H.bin_width h)
  done;
  check_in_range "density integrates to 1" ~lo:0.999 ~hi:1.001 !integral

let test_density_matches_pdf () =
  let rng = Spv_stats.Rng.create ~seed:41 in
  let g = Spv_stats.Gaussian.make ~mu:0.0 ~sigma:1.0 in
  let xs = Array.init 100_000 (fun _ -> Spv_stats.Gaussian.sample g rng) in
  let h = H.of_samples ~bins:30 xs in
  let center = H.bins h / 2 in
  let c = H.bin_center h center in
  check_in_range "central density near pdf"
    ~lo:(0.9 *. Spv_stats.Gaussian.pdf g c)
    ~hi:(1.1 *. Spv_stats.Gaussian.pdf g c)
    (H.density h center)

let test_mode_bin () =
  let h = H.create ~lo:0.0 ~hi:3.0 ~bins:3 in
  H.add_all h [| 0.5; 1.5; 1.6; 1.7; 2.5 |];
  Alcotest.(check int) "mode bin" 1 (H.mode_bin h)

let test_bin_centers () =
  let h = H.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  check_float "center 0" 1.0 (H.bin_center h 0);
  check_float "center 4" 9.0 (H.bin_center h 4);
  check_raises_invalid "center out of range" (fun () -> H.bin_center h 5)

let test_to_series () =
  let h = H.create ~lo:0.0 ~hi:2.0 ~bins:2 in
  H.add_all h [| 0.5; 0.6; 1.5 |];
  let s = H.to_series h in
  Alcotest.(check int) "series length" 2 (Array.length s);
  check_float "x0" 0.5 (fst s.(0));
  check_close ~rel:1e-12 "y0" (2.0 /. 3.0) (snd s.(0))

let prop_total_counts =
  prop "total = inserted"
    QCheck2.Gen.(array_size (int_range 0 200) (float_range (-2.0) 2.0))
    (fun xs ->
      let h = H.create ~lo:(-1.0) ~hi:1.0 ~bins:7 in
      H.add_all h xs;
      let in_bins = ref 0 in
      for i = 0 to H.bins h - 1 do
        in_bins := !in_bins + H.count h i
      done;
      H.total h = Array.length xs
      && !in_bins + H.underflow h + H.overflow h = H.total h)

let suite =
  [
    quick "create validation" test_create_validation;
    quick "binning" test_binning;
    quick "under/overflow" test_out_of_range;
    slow "density normalisation" test_density_normalisation;
    slow "density matches pdf" test_density_matches_pdf;
    quick "mode bin" test_mode_bin;
    quick "bin centers" test_bin_centers;
    quick "to_series" test_to_series;
    prop_total_counts;
  ]
