(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section as labelled plain-text data, then runs Bechamel
   micro-benchmarks of the core analysis kernels.

   Usage:
     main.exe                 run everything
     main.exe fig2 table1     run selected experiments
     main.exe --no-perf       skip the Bechamel section
     main.exe --list          list experiment ids *)

module E = Spv_experiments

let experiments =
  [
    ("fig2", "Fig. 2: MC vs analytic delay distributions", E.Fig2.run);
    ("fig3", "Fig. 3: Clark model error trends", E.Fig3.run);
    ("fig4", "Fig. 4: (mu, sigma) design space", E.Fig4.run);
    ("fig5", "Fig. 5: variability vs depth / stage count", E.Fig5.run);
    ("table1", "Table I: model vs MC across configurations", E.Table1.run);
    ("fig7", "Figs. 7-8: balanced vs unbalanced ALU-decoder", E.Fig7_8.run);
    ( "table2",
      "Table II: ensure yield with small area penalty",
      fun () ->
        E.Common.section
          "Table II: ensuring the 80% yield target with small area penalty";
        E.Table2_3.print_table (E.Table2_3.compute E.Table2_3.Ensure_yield) );
    ( "table3",
      "Table III: area reduction under a yield constraint",
      fun () ->
        E.Common.section "Table III: area reduction at the 80% yield target";
        E.Table2_3.print_table (E.Table2_3.compute E.Table2_3.Minimise_area) );
    ( "ablations",
      "Extensions: criticality, correlation length, sizer policy, leakage",
      E.Ablations.run );
  ]

(* --- Bechamel micro-benchmarks of the analysis kernels -------------- *)

let perf_tests () =
  let open Bechamel in
  let tech = E.Common.base_tech in
  let ff = Spv_process.Flipflop.default tech in
  let stages12 =
    Array.init 12 (fun i ->
        Spv_stats.Gaussian.make ~mu:(100.0 +. float_of_int i) ~sigma:5.0)
  in
  let corr12 = Spv_stats.Correlation.uniform ~n:12 ~rho:0.3 in
  let stage_objs =
    Array.init 12 (fun i ->
        Spv_core.Stage.of_moments ~mu:(100.0 +. float_of_int i) ~sigma:5.0
          ~name:(string_of_int i) ())
  in
  let pipeline = Spv_core.Pipeline.make stage_objs ~corr:corr12 in
  let c432 = Spv_circuit.Generators.c432 () in
  let chain = Spv_circuit.Generators.inverter_chain ~depth:10 () in
  let rng = Spv_stats.Rng.create ~seed:99 in
  [
    Test.make ~name:"clark_max12_corr"
      (Staged.stage (fun () ->
           ignore (Spv_core.Clark.max_n stages12 ~corr:corr12)));
    Test.make ~name:"yield_clark_gaussian"
      (Staged.stage (fun () ->
           ignore (Spv_core.Yield.clark_gaussian pipeline ~t_target:115.0)));
    Test.make ~name:"yield_independent_exact"
      (Staged.stage (fun () ->
           ignore (Spv_core.Yield.independent_exact pipeline ~t_target:115.0)));
    Test.make ~name:"pipeline_mc_100"
      (Staged.stage (fun () ->
           ignore (Spv_core.Yield.monte_carlo pipeline rng ~n:100 ~t_target:115.0)));
    Test.make ~name:"sta_c432"
      (Staged.stage (fun () -> ignore (Spv_circuit.Sta.run tech c432)));
    Test.make ~name:"ssta_stage_chain10"
      (Staged.stage (fun () ->
           ignore (Spv_circuit.Ssta.analyse_stage ~ff tech chain)));
    Test.make ~name:"big_phi_inv"
      (Staged.stage (fun () -> ignore (Spv_stats.Special.big_phi_inv 0.8)));
  ]

let run_perf () =
  let open Bechamel in
  E.Common.section "Micro-benchmarks (Bechamel): core analysis kernels";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let tests = Test.make_grouped ~name:"spv" (perf_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> Printf.sprintf "%12.1f ns/run" t
        | Some [] | None -> "     (no est.)"
      in
      Printf.printf "  %-28s %s\n" name ns)
    (List.sort compare rows)

let () =
  let argv = Array.to_list Sys.argv in
  let args = List.tl argv in
  if List.mem "--list" args then begin
    List.iter
      (fun (id, descr, _) -> Printf.printf "%-8s %s\n" id descr)
      experiments;
    exit 0
  end;
  let no_perf = List.mem "--no-perf" args in
  let selected = List.filter (fun a -> a <> "--no-perf") args in
  let to_run =
    if selected = [] then experiments
    else
      List.map
        (fun id ->
          match List.find_opt (fun (i, _, _) -> i = id) experiments with
          | Some e -> e
          | None ->
              Printf.eprintf "unknown experiment %S (try --list)\n" id;
              exit 2)
        selected
  in
  let t0 = Sys.time () in
  List.iter
    (fun (id, _descr, run) ->
      let t = Sys.time () in
      run ();
      Printf.printf "\n[%s done in %.1fs]\n" id (Sys.time () -. t))
    to_run;
  if not no_perf then run_perf ();
  Printf.printf "\nTotal bench time: %.1fs\n" (Sys.time () -. t0)
