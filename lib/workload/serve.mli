(** Sharded evaluation daemon over the sweep runner.

    [Serve] turns the one-shot {!Sweep} pipeline into a persistent
    service: schema-versioned JSONL requests arrive on stdin (or a
    Unix-domain socket), each carrying a {!Grid} scenario query plus a
    seed, parallelism knobs and an optional per-request deadline, and
    the daemon streams back the established sweep row schema — one
    [row] response line per scenario, one [done] summary line per
    request, structured [error] lines for anything that fails.

    {2 Request schema (version 1)}

    One flat JSON object per line:

    {v
    {"schema_version":1,"request_id":"q1","grid":"stages 100,6\n...",
     "seed":7,"jobs":2,"workers":2,"deadline_ms":5000,
     "mode":"flat","proposal":"legacy"}
    v}

    [schema_version], [request_id] and [grid] (a grid file as one
    string, {!Grid.of_string} syntax, circuits resolved by the
    daemon's lookup) are required; everything else is optional.
    [jobs] is the engine's trial-level parallelism (never changes
    bytes), [workers] shards independent (source, process) contexts
    across domains (never changes bytes either — see design notes),
    [deadline_ms] bounds the whole request.

    {2 Response schema (version 1)}

    Every response line is a flat wrapper tagged [kind]:

    - [{"schema_version":1,"kind":"row","request_id":"q1","row":{...}}]
      — [row] is exactly one {!Sweep.row_to_json} object
      (sweep schema, currently version {!Sweep.schema_version}).
    - [{"schema_version":1,"kind":"done","request_id":"q1","status":"ok",
       "code":0,"rows":120,"n_contexts":4,"cache_size":4,
       "cache_hits":0,"cache_misses":4,"cache_evictions":0}]
    - [{"schema_version":1,"kind":"error","request_id":"q1"|null,
       "status":"parse_error","code":3,"message":"..."}]

    Error [status]/[code] pairs mirror the CLI exit-code taxonomy of
    [Spv_robust.Errors] (parse 3, domain 6, internal 7, deadline 10);
    [request_id] is [null] only when the request line was too broken
    to recover it.  A failed request never kills the daemon, and a
    deadline produces a single [deadline_exceeded] error line instead
    of partial rows.

    {2 Determinism}

    Replay is exact: from a fresh daemon, a transcript of requests
    yields byte-identical response bytes regardless of [jobs] and
    [workers], and per-row bytes are independent of the cache state
    (cache hits replay the macro counter deltas recorded when the
    context was first built).  Cache bookkeeping runs serially in
    expansion order; only the per-context evaluation fans out. *)

val request_schema_version : int
val response_schema_version : int

(** LRU cache of evaluation contexts, keyed on
    (source fingerprint, process, mode) via {!scenario_key}.  The most
    recently used entry is kept at the front; inserting beyond
    [capacity] evicts the least recently used.  Counters are
    monotonic over the cache's lifetime. *)
module Cache : sig
  type entry = {
    ctx : Spv_engine.Engine.Ctx.t;
    macro_hits : int;  (** macro-table hits recorded when first built *)
    macro_misses : int;  (** misses (characterisations) at build time *)
  }

  type t

  val create : capacity:int -> t
  (** Raises [Invalid_argument] when [capacity <= 0]. *)

  val capacity : t -> int
  val length : t -> int
  val hits : t -> int
  val misses : t -> int
  val evictions : t -> int

  val find : t -> string -> entry option
  (** Probe; a hit moves the entry to the front and bumps [hits], a
      miss bumps [misses]. *)

  val add : t -> string -> entry -> unit
  (** Insert at the front (replacing any entry under the same key);
      evicts from the back when over capacity. *)

  val keys : t -> string list
  (** Most-recently-used first — exposed for tests. *)
end

val scenario_key :
  mode:Spv_engine.Engine.mode -> Grid.source -> Grid.process -> string
(** The cache key a (source, process, mode) triple resolves to.
    Circuit sources key on {!Spv_circuit.Macro.hash} (structure +
    sizes), moment sources on the exact [%.17g] stage moments and
    correlation, and the process override / engine mode are appended —
    two triples with equal keys build contexts with equal
    {!Spv_engine.Engine.Ctx.fingerprint}s. *)

type error = { status : string; code : int; message : string }
(** One structured failure: [status] is the kebab/snake-case
    constructor name ([parse_error], [domain_error],
    [internal_error], [deadline_exceeded]), [code] the matching CLI
    exit code (3, 6, 7, 10 — same values as
    [Spv_robust.Errors.exit_code], duplicated here because
    [Spv_robust] sits above this library). *)

type t
(** Daemon state: the context cache, the clock and the grid lookup.
    One value serves many requests (and many connections). *)

val create :
  ?clock:(unit -> float) ->
  ?capacity:int ->
  ?tech:Spv_process.Tech.t ->
  ?lookup:(string -> (Spv_circuit.Netlist.t, string) result) ->
  unit -> t
(** [clock] (default [Unix.gettimeofday]) is only consulted for
    deadlines — tests inject a fake clock to make deadline rows
    deterministic.  [capacity] (default 32) bounds the context cache.
    [lookup] (default {!Grid.builtin_lookup}) resolves [circuit]
    directives in request grids. *)

val cache : t -> Cache.t

val request_line :
  ?seed:int -> ?jobs:int -> ?workers:int -> ?deadline_ms:int ->
  ?mode:string -> ?proposal:string ->
  request_id:string -> grid:string -> unit -> string
(** Format a valid request line (no trailing newline) — the encoder
    matching {!handle_line}'s parser, used by the CLI smoke mode,
    tests and benchmarks. *)

val handle_line : t -> string -> string list
(** Process one request line and return the response lines (each one
    JSON object, no trailing newline): [row]* [done] on success, a
    single [error] otherwise.  Never raises; unparseable input,
    unknown schema versions, grid errors, deadlines and escaped
    exceptions all become [error] lines.  Empty (whitespace-only)
    lines yield [[]]. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Read request lines from the channel until EOF, writing each
    request's response lines (newline-terminated, flushed per
    request) — the stdin transport of [spv serve]. *)

val serve_socket : ?max_conns:int -> t -> path:string -> unit
(** Listen on a Unix-domain socket at [path] (unlinking any stale
    socket first) and serve each accepted connection sequentially
    with {!serve_channels}.  Connections share the daemon state, so
    the context cache stays warm across clients.  Stops after
    [max_conns] connections when given (tests/CI); loops forever
    otherwise. *)
