module Engine = Spv_engine.Engine

type source =
  | Moments of {
      label : string;
      stages : (float * float) array;
      rho : float;
    }
  | Circuit of { label : string; net : Spv_circuit.Netlist.t }

type process = { p_label : string; inter_vth_mv : float option }

type t = {
  sources : source list;
  processes : process list;
  targets : float array;
  methods : Engine.method_ list;
  n : int;
  shards : int;
}

let nominal = { p_label = "nominal"; inter_vth_mv = None }

let source_label = function
  | Moments { label; _ } -> label
  | Circuit { label; _ } -> label

let builtin_circuits =
  [
    ("c432", fun () -> Spv_circuit.Generators.c432 ());
    ("c1908", fun () -> Spv_circuit.Generators.c1908 ());
    ("c2670", fun () -> Spv_circuit.Generators.c2670 ());
    ("c3540", fun () -> Spv_circuit.Generators.c3540 ());
    ("rca8", fun () -> Spv_circuit.Generators.ripple_carry_adder ~bits:8);
    ("alu8", fun () -> Spv_circuit.Generators.alu_slice ~bits:8 ());
    ("dec4", fun () -> Spv_circuit.Generators.decoder ~select:4 ());
    ("chain10", fun () -> Spv_circuit.Generators.inverter_chain ~depth:10 ());
  ]

let builtin_lookup name =
  match List.assoc_opt name builtin_circuits with
  | Some f -> Ok (f ())
  | None ->
      Error
        (Printf.sprintf "unknown circuit %S (known: %s)" name
           (String.concat ", " (List.map fst builtin_circuits)))

let applicable_processes t = function
  | Moments _ -> 1
  | Circuit _ -> List.length t.processes

let n_scenarios t =
  let per_source =
    List.fold_left (fun acc s -> acc + applicable_processes t s) 0 t.sources
  in
  per_source * List.length t.methods * Array.length t.targets

let validate t =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* () = if t.sources = [] then fail "grid has no sources" else Ok () in
  let* () =
    if Array.length t.targets = 0 then fail "grid has no targets" else Ok ()
  in
  let* () = if t.methods = [] then fail "grid has no methods" else Ok () in
  let* () = if t.n <= 0 then fail "samples must be positive" else Ok () in
  let* () = if t.shards <= 0 then fail "shards must be positive" else Ok () in
  let* () =
    if Array.for_all Float.is_finite t.targets then Ok ()
    else fail "non-finite target"
  in
  let* () =
    match t.processes with
    | { inter_vth_mv = None; _ } :: _ -> Ok ()
    | _ -> fail "process list must start with the nominal process"
  in
  List.fold_left
    (fun acc s ->
      let* () = acc in
      match s with
      | Circuit _ -> Ok ()
      | Moments { label; stages; rho } ->
          if Array.length stages = 0 then fail "source %s: no stages" label
          else if
            not
              (Array.for_all
                 (fun (mu, sigma) ->
                   Float.is_finite mu && Float.is_finite sigma && sigma >= 0.0)
                 stages)
          then fail "source %s: stage moments must be finite, sigma >= 0" label
          else if not (Float.is_finite rho && rho >= -1.0 && rho <= 1.0) then
            fail "source %s: rho outside [-1, 1]" label
          else Ok ())
    (Ok ()) t.sources

let smoke () =
  {
    sources =
      [
        Moments
          { label = "moments1"; stages = Array.make 4 (100.0, 6.0); rho = 0.0 };
        Moments
          {
            label = "moments2";
            stages = [| (100.0, 6.0); (98.0, 5.0); (102.0, 7.0); (97.0, 4.0) |];
            rho = 0.3;
          };
        Circuit
          {
            label = "chain10";
            net = Spv_circuit.Generators.inverter_chain ~depth:10 ();
          };
      ];
    processes = [ nominal; { p_label = "vth60mv"; inter_vth_mv = Some 60.0 } ];
    targets = Array.init 10 (fun i -> 100.0 +. (5.0 *. float_of_int i));
    methods = [ Engine.Analytic_clark; Engine.Exact_independent; Engine.Mc ];
    n = 4096;
    shards = Engine.default_shards;
  }

(* ---- parsing -------------------------------------------------------- *)

type parse_error = { line : int option; message : string }

exception Parse_failure of parse_error

let parse_error_to_string e =
  match e.line with
  | Some n -> Printf.sprintf "line %d: %s" n e.message
  | None -> e.message

let fail_line lineno fmt =
  Printf.ksprintf
    (fun msg -> raise (Parse_failure { line = Some lineno; message = msg }))
    fmt

let tokens line =
  String.map (fun c -> if c = '\t' then ' ' else c) line
  |> String.split_on_char ' '
  |> List.filter (fun t -> t <> "")

let parse_float lineno what s =
  match float_of_string_opt s with
  | Some v when Float.is_finite v -> v
  | Some _ | None -> fail_line lineno "bad %s %S" what s

let parse_int lineno what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail_line lineno "bad %s %S" what s

let parse_pair lineno s =
  match String.split_on_char ',' s with
  | [ mu; sigma ] ->
      (parse_float lineno "stage mu" mu, parse_float lineno "stage sigma" sigma)
  | _ -> fail_line lineno "expected mu,sigma but got %S" s

let parse_targets lineno s =
  match String.split_on_char ':' s with
  | [ lo; hi; count ] ->
      let lo = parse_float lineno "target lo" lo in
      let hi = parse_float lineno "target hi" hi in
      let count = parse_int lineno "target count" count in
      if count <= 0 then fail_line lineno "target count must be positive";
      if count = 1 then [ lo ]
      else begin
        let step = (hi -. lo) /. float_of_int (count - 1) in
        List.init count (fun i -> lo +. (float_of_int i *. step))
      end
  | [ _ ] ->
      String.split_on_char ',' s
      |> List.map (fun v -> parse_float lineno "target" v)
  | _ -> fail_line lineno "expected lo:hi:count or a comma list, got %S" s

type pstate = {
  mutable p_sources : source list;  (* reversed *)
  mutable p_extra : process list;  (* reversed, non-nominal *)
  mutable p_targets : float list;  (* in order *)
  mutable p_methods : Engine.method_ list;  (* reversed *)
  mutable p_n : int;
  mutable p_shards : int;
  mutable p_rho : float;
  mutable p_moments : int;
}

let parse_directive ~lookup st lineno line =
  match tokens line with
  | [] -> ()
  | "circuit" :: rest -> (
      match rest with
      | [ name ] -> (
          match lookup name with
          | Ok net -> st.p_sources <- Circuit { label = name; net } :: st.p_sources
          | Error msg -> fail_line lineno "%s" msg)
      | _ -> fail_line lineno "circuit takes exactly one name")
  | "rho" :: rest -> (
      match rest with
      | [ v ] ->
          let rho = parse_float lineno "rho" v in
          if rho < -1.0 || rho > 1.0 then
            fail_line lineno "rho outside [-1, 1]";
          st.p_rho <- rho
      | _ -> fail_line lineno "rho takes exactly one value")
  | "stages" :: rest ->
      if rest = [] then fail_line lineno "stages needs at least one mu,sigma";
      st.p_moments <- st.p_moments + 1;
      let stages = Array.of_list (List.map (parse_pair lineno) rest) in
      st.p_sources <-
        Moments
          {
            label = Printf.sprintf "moments%d" st.p_moments;
            stages;
            rho = st.p_rho;
          }
        :: st.p_sources
  | "targets" :: rest -> (
      match rest with
      | [ spec ] -> st.p_targets <- st.p_targets @ parse_targets lineno spec
      | _ -> fail_line lineno "targets takes exactly one spec")
  | "method" :: rest -> (
      match rest with
      | [ names ] ->
          List.iter
            (fun name ->
              match Engine.method_of_string name with
              | Some m -> st.p_methods <- m :: st.p_methods
              | None ->
                  fail_line lineno "unknown method %S (known: %s)" name
                    (String.concat ", "
                       (List.map Engine.method_name Engine.all_methods)))
            (String.split_on_char ',' names)
      | _ -> fail_line lineno "method takes a comma-separated name list")
  | "inter_vth_mv" :: rest -> (
      match rest with
      | [ v ] ->
          let mv = parse_float lineno "inter_vth_mv" v in
          if mv < 0.0 then fail_line lineno "inter_vth_mv must be >= 0";
          let p_label = Printf.sprintf "vth%gmv" mv in
          if List.exists (fun p -> p.p_label = p_label) st.p_extra then
            fail_line lineno "duplicate process %s" p_label;
          st.p_extra <- { p_label; inter_vth_mv = Some mv } :: st.p_extra
      | _ -> fail_line lineno "inter_vth_mv takes exactly one value")
  | "samples" :: rest -> (
      match rest with
      | [ v ] ->
          let n = parse_int lineno "samples" v in
          if n <= 0 then fail_line lineno "samples must be positive";
          st.p_n <- n
      | _ -> fail_line lineno "samples takes exactly one value")
  | "shards" :: rest -> (
      match rest with
      | [ v ] ->
          let s = parse_int lineno "shards" v in
          if s <= 0 then fail_line lineno "shards must be positive";
          st.p_shards <- s
      | _ -> fail_line lineno "shards takes exactly one value")
  | keyword :: _ -> fail_line lineno "unknown directive %S" keyword

let of_string ?(lookup = builtin_lookup) text =
  let st =
    {
      p_sources = [];
      p_extra = [];
      p_targets = [];
      p_methods = [];
      p_n = 10_000;
      p_shards = Engine.default_shards;
      p_rho = 0.0;
      p_moments = 0;
    }
  in
  match
    String.split_on_char '\n' text
    |> List.iteri (fun i line ->
           let line =
             match String.index_opt line '#' with
             | None -> String.trim line
             | Some h -> String.trim (String.sub line 0 h)
           in
           parse_directive ~lookup st (i + 1) line)
  with
  | () ->
      let grid =
        {
          sources = List.rev st.p_sources;
          processes = nominal :: List.rev st.p_extra;
          targets = Array.of_list st.p_targets;
          methods =
            (match List.rev st.p_methods with
            | [] -> [ Engine.Analytic_clark ]
            | ms -> ms);
          n = st.p_n;
          shards = st.p_shards;
        }
      in
      (match validate grid with
      | Ok () -> Ok grid
      | Error message -> Error { line = None; message })
  | exception Parse_failure e -> Error e
