module Engine = Spv_engine.Engine
module Par = Spv_engine.Par
module Macro = Spv_circuit.Macro

let request_schema_version = 1
let response_schema_version = 1

(* ---- structured errors ---------------------------------------------- *)

(* [Spv_robust.Errors] owns the exit-code taxonomy, but it links
   against this library, so the daemon carries its own mirror of the
   few codes it can emit.  The robust-layer tests pin these values
   against [Errors.exit_code]. *)
type error = { status : string; code : int; message : string }

let parse_error message = { status = "parse_error"; code = 3; message }
let domain_error message = { status = "domain_error"; code = 6; message }
let internal_error message = { status = "internal_error"; code = 7; message }

let deadline_error budget_ms =
  {
    status = "deadline_exceeded";
    code = 10;
    message =
      Printf.sprintf "deadline exceeded in serve: budget %d ms spent"
        budget_ms;
  }

(* ---- LRU context cache ---------------------------------------------- *)

module Cache = struct
  type entry = {
    ctx : Engine.Ctx.t;
    macro_hits : int;
    macro_misses : int;
  }

  (* An assoc list kept most-recent-first.  Capacities are tens of
     entries (each holds a Cholesky factorisation and, for circuits,
     the SSTA analyses), so linear probes are noise next to one
     context build, let alone one evaluation. *)
  type t = {
    cap : int;
    mutable entries : (string * entry) list;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Serve.Cache.create: capacity <= 0";
    { cap = capacity; entries = []; hits = 0; misses = 0; evictions = 0 }

  let capacity t = t.cap
  let length t = List.length t.entries
  let hits t = t.hits
  let misses t = t.misses
  let evictions t = t.evictions
  let keys t = List.map fst t.entries

  let find t key =
    match List.assoc_opt key t.entries with
    | None ->
        t.misses <- t.misses + 1;
        None
    | Some e ->
        t.hits <- t.hits + 1;
        t.entries <- (key, e) :: List.remove_assoc key t.entries;
        Some e

  let add t key entry =
    let entries = (key, entry) :: List.remove_assoc key t.entries in
    let n = List.length entries in
    if n > t.cap then begin
      t.entries <- List.filteri (fun i _ -> i < t.cap) entries;
      t.evictions <- t.evictions + (n - t.cap)
    end
    else t.entries <- entries
end

let scenario_key ~(mode : Engine.mode) (source : Grid.source)
    (process : Grid.process) =
  let b = Buffer.create 128 in
  (match source with
  | Grid.Circuit { net; _ } ->
      Buffer.add_string b (Printf.sprintf "circuit:%016Lx" (Macro.hash net))
  | Grid.Moments { stages; rho; _ } ->
      Buffer.add_string b "moments:";
      Array.iter
        (fun (mu, sigma) ->
          Buffer.add_string b (Printf.sprintf "%.17g,%.17g;" mu sigma))
        stages;
      Buffer.add_string b (Printf.sprintf "rho=%.17g" rho));
  Buffer.add_char b '|';
  (match process.Grid.inter_vth_mv with
  | None -> Buffer.add_string b "nominal"
  | Some mv -> Buffer.add_string b (Printf.sprintf "vth=%.17g" mv));
  Buffer.add_char b '|';
  Buffer.add_string b (Engine.mode_name mode);
  Buffer.contents b

(* ---- daemon state --------------------------------------------------- *)

type t = {
  clock : unit -> float;
  cache : Cache.t;
  tech : Spv_process.Tech.t;
  lookup : string -> (Spv_circuit.Netlist.t, string) result;
}

let create ?(clock = Unix.gettimeofday) ?(capacity = 32)
    ?(tech = Spv_process.Tech.bptm70) ?(lookup = Grid.builtin_lookup) () =
  { clock; cache = Cache.create ~capacity; tech; lookup }

let cache t = t.cache

(* ---- minimal JSON (flat objects only) ------------------------------- *)

(* Requests are single-line flat objects of strings, numbers, booleans
   and null — nested containers are rejected.  Hand-rolled because the
   build carries no JSON library, and the daemon must not gain one. *)

type jvalue = Jstring of string | Jnumber of float | Jbool of bool | Jnull

exception Bad_json of string

let parse_object (s : string) : (string * jvalue) list =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json msg) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | Some c' ->
        fail (Printf.sprintf "expected %C at offset %d, found %C" c !pos c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
          (if !pos >= n then fail "unterminated escape";
           let e = s.[!pos] in
           incr pos;
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               pos := !pos + 4;
               let code =
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some c when c >= 0 -> c
                 | _ -> fail (Printf.sprintf "bad \\u escape %S" hex)
               in
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
           | e -> fail (Printf.sprintf "bad escape \\%c" e));
          go ()
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstring (parse_string ())
    | Some 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
          pos := !pos + 4;
          Jbool true
        end
        else fail "bad literal"
    | Some 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
          pos := !pos + 5;
          Jbool false
        end
        else fail "bad literal"
    | Some 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
          pos := !pos + 4;
          Jnull
        end
        else fail "bad literal"
    | Some c when c = '-' || (c >= '0' && c <= '9') ->
        let start = !pos in
        if c = '-' then incr pos;
        let digits () =
          while
            !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false)
          do
            incr pos
          done
        in
        digits ();
        if !pos < n && s.[!pos] = '.' then begin
          incr pos;
          digits ()
        end;
        if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
          incr pos;
          if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then incr pos;
          digits ()
        end;
        let tok = String.sub s start (!pos - start) in
        (match float_of_string_opt tok with
        | Some x -> Jnumber x
        | None -> fail (Printf.sprintf "bad number %S" tok))
    | Some c -> fail (Printf.sprintf "unexpected %C at offset %d" c !pos)
    | None -> fail "unexpected end of input"
  in
  expect '{';
  skip_ws ();
  let fields = ref [] in
  (match peek () with
  | Some '}' -> incr pos
  | _ ->
      let rec members () =
        skip_ws ();
        let key = parse_string () in
        expect ':';
        let v = parse_value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            members ()
        | Some '}' -> incr pos
        | Some c -> fail (Printf.sprintf "expected ',' or '}', found %C" c)
        | None -> fail "unterminated object"
      in
      members ());
  skip_ws ();
  if !pos <> n then fail (Printf.sprintf "trailing input at offset %d" !pos);
  List.rev !fields

(* ---- request parsing ------------------------------------------------ *)

type request = {
  request_id : string;
  grid : Grid.t;
  seed : int;
  jobs : int option;
  workers : int;
  deadline_ms : int option;
  mode : Engine.mode;
  proposal : Engine.proposal;
}

let ( let* ) = Result.bind

(* Returns the request id alongside any error so the error response
   can still be attributed whenever the line was parseable enough to
   carry one. *)
let parse_request t line : (request, string option * error) result =
  match parse_object line with
  | exception Bad_json msg -> Error (None, parse_error ("request: " ^ msg))
  | fields ->
      let find k = List.assoc_opt k fields in
      let rid =
        match find "request_id" with Some (Jstring s) -> Some s | _ -> None
      in
      let err e = Error (rid, e) in
      let int_field key ~min =
        match find key with
        | None -> Ok None
        | Some (Jnumber x) when Float.is_integer x && x >= float_of_int min ->
            Ok (Some (int_of_float x))
        | Some _ ->
            err
              (domain_error
                 (Printf.sprintf "invalid %s: expected an integer >= %d" key
                    min))
      in
      let* () =
        match find "schema_version" with
        | Some (Jnumber v) when v = float_of_int request_schema_version ->
            Ok ()
        | Some _ ->
            err
              (domain_error
                 (Printf.sprintf
                    "invalid schema_version: this daemon speaks version %d"
                    request_schema_version))
        | None -> err (domain_error "invalid request: missing schema_version")
      in
      let* request_id =
        match rid with
        | Some id -> Ok id
        | None ->
            err (domain_error "invalid request: missing string request_id")
      in
      let* grid_text =
        match find "grid" with
        | Some (Jstring g) -> Ok g
        | _ -> err (domain_error "invalid request: missing string grid")
      in
      let* grid =
        match Grid.of_string ~lookup:t.lookup grid_text with
        | Ok g -> Ok g
        | Error pe ->
            err (parse_error ("grid: " ^ Grid.parse_error_to_string pe))
      in
      let* seed = int_field "seed" ~min:0 in
      let seed = Option.value seed ~default:Engine.default_seed in
      let* jobs = int_field "jobs" ~min:1 in
      let* workers = int_field "workers" ~min:1 in
      let workers = Option.value workers ~default:1 in
      let* deadline_ms = int_field "deadline_ms" ~min:1 in
      let* mode =
        match find "mode" with
        | None -> Ok Engine.Flat
        | Some (Jstring "flat") -> Ok Engine.Flat
        | Some (Jstring ("hierarchical" | "hier")) -> Ok Engine.Hierarchical
        | Some _ ->
            err (domain_error "invalid mode: known: flat, hierarchical")
      in
      let* proposal =
        match find "proposal" with
        | None -> Ok Engine.Legacy
        | Some (Jstring p) -> (
            match Engine.proposal_of_string p with
            | Some p -> Ok p
            | None ->
                err
                  (domain_error
                     (Printf.sprintf "invalid proposal %S: known: legacy, cone"
                        p)))
        | Some _ -> err (domain_error "invalid proposal: expected a string")
      in
      Ok { request_id; grid; seed; jobs; workers; deadline_ms; mode; proposal }

(* ---- request encoder ------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let request_line ?seed ?jobs ?workers ?deadline_ms ?mode ?proposal ~request_id
    ~grid () =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema_version\":%d,\"request_id\":\"%s\""
       request_schema_version (json_escape request_id));
  let opt_int key = function
    | None -> ()
    | Some v -> Buffer.add_string b (Printf.sprintf ",\"%s\":%d" key v)
  in
  let opt_str key = function
    | None -> ()
    | Some v ->
        Buffer.add_string b
          (Printf.sprintf ",\"%s\":\"%s\"" key (json_escape v))
  in
  opt_int "seed" seed;
  opt_int "jobs" jobs;
  opt_int "workers" workers;
  opt_int "deadline_ms" deadline_ms;
  opt_str "mode" mode;
  opt_str "proposal" proposal;
  Buffer.add_string b
    (Printf.sprintf ",\"grid\":\"%s\"}" (json_escape grid));
  Buffer.contents b

(* ---- evaluation ----------------------------------------------------- *)

let groups_of_grid (g : Grid.t) =
  List.concat_map
    (fun source ->
      let processes =
        match source with
        | Grid.Moments _ -> [ Grid.nominal ]
        | Grid.Circuit _ -> g.Grid.processes
      in
      List.map (fun p -> (source, p)) processes)
    g.Grid.sources

(* One request: a serial cache pass in expansion order (probe, build
   misses, insert — hit/miss/eviction counters never depend on
   [workers]), then scenario-level fan-out over (source, process)
   groups via [Par.run].  Each group's rows come from [Sweep.run] on
   its singleton sub-grid with the resolved context injected, so the
   bytes per row match the one-shot sweep exactly; cache hits replay
   the macro counter deltas recorded at build time, keeping rows
   independent of cache state.  Raises [Sweep.Stopped] past the
   deadline — the caller maps it to one error line, so no partial
   output ever escapes. *)
let eval_request t (r : request) =
  let start = t.clock () in
  let should_stop =
    match r.deadline_ms with
    | None -> fun () -> false
    | Some ms ->
        fun () -> (t.clock () -. start) *. 1000.0 > float_of_int ms
  in
  let grid = r.grid in
  let groups = Array.of_list (groups_of_grid grid) in
  let resolved =
    Array.map
      (fun (source, process) ->
        if should_stop () then raise Sweep.Stopped;
        let key = scenario_key ~mode:r.mode source process in
        match Cache.find t.cache key with
        | Some e ->
            (source, process, e.Cache.ctx, e.Cache.macro_hits,
             e.Cache.macro_misses)
        | None ->
            let table =
              match r.mode with
              | Engine.Flat -> None
              | Engine.Hierarchical -> Some (Macro.Table.create ())
            in
            let ctx =
              Sweep.ctx_for ~mode:r.mode ?macro_table:table ~tech:t.tech
                source process
            in
            let mh, mm =
              match table with
              | None -> (0, 0)
              | Some tb -> (Macro.Table.hits tb, Macro.Table.misses tb)
            in
            Cache.add t.cache key
              { Cache.ctx; macro_hits = mh; macro_misses = mm };
            (source, process, ctx, mh, mm))
      groups
  in
  let tasks =
    Array.map
      (fun (source, process, ctx, mh, mm) () ->
        (* The singleton sub-grid inherits everything but the axes.
           Its context comes from the provider (already built with any
           process override applied), so the process entry here only
           labels rows — drop the override so the singleton list
           passes the nominal-first validation. *)
        let sub =
          {
            grid with
            Grid.sources = [ source ];
            Grid.processes = [ { process with Grid.inter_vth_mv = None } ];
          }
        in
        let res =
          Sweep.run ~mode:r.mode ~proposal:r.proposal ?jobs:r.jobs
            ~seed:r.seed ~tech:t.tech
            ~ctx_provider:(fun _ _ -> (ctx, (mh, mm)))
            ~should_stop sub
        in
        res.Sweep.rows)
      resolved
  in
  let results = Par.run ~jobs:r.workers tasks in
  let per_group =
    List.length grid.Grid.methods * Array.length grid.Grid.targets
  in
  let rows =
    Array.concat
      (Array.to_list
         (Array.mapi
            (fun gi group_rows ->
              Array.map
                (fun (row : Sweep.row) ->
                  let scenario =
                    {
                      row.Sweep.scenario with
                      Sweep.index =
                        (gi * per_group) + row.Sweep.scenario.Sweep.index;
                    }
                  in
                  { row with Sweep.scenario })
                group_rows)
            results))
  in
  (rows, Array.length groups)

(* ---- responses ------------------------------------------------------ *)

let row_json ~request_id row =
  Printf.sprintf
    "{\"schema_version\":%d,\"kind\":\"row\",\"request_id\":\"%s\",\"row\":%s}"
    response_schema_version (json_escape request_id) (Sweep.row_to_json row)

let done_json t ~request_id ~rows ~n_contexts =
  Printf.sprintf
    "{\"schema_version\":%d,\"kind\":\"done\",\"request_id\":\"%s\",\"status\":\"ok\",\"code\":0,\"rows\":%d,\"n_contexts\":%d,\"cache_size\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\"cache_evictions\":%d}"
    response_schema_version (json_escape request_id) rows n_contexts
    (Cache.length t.cache) (Cache.hits t.cache) (Cache.misses t.cache)
    (Cache.evictions t.cache)

let error_json ?request_id e =
  let rid =
    match request_id with
    | None -> "null"
    | Some r -> Printf.sprintf "\"%s\"" (json_escape r)
  in
  Printf.sprintf
    "{\"schema_version\":%d,\"kind\":\"error\",\"request_id\":%s,\"status\":\"%s\",\"code\":%d,\"message\":\"%s\"}"
    response_schema_version rid e.status e.code (json_escape e.message)

let is_blank line = String.trim line = ""

let handle_line t line =
  if is_blank line then []
  else
    match parse_request t line with
    | Error (rid, e) -> [ error_json ?request_id:rid e ]
    | Ok r -> (
        match eval_request t r with
        | rows, n_contexts ->
            let out =
              Array.to_list
                (Array.map (row_json ~request_id:r.request_id) rows)
            in
            out
            @ [
                done_json t ~request_id:r.request_id
                  ~rows:(Array.length rows) ~n_contexts;
              ]
        | exception Sweep.Stopped ->
            let budget_ms = Option.value r.deadline_ms ~default:0 in
            [
              error_json ~request_id:r.request_id (deadline_error budget_ms);
            ]
        | exception exn ->
            [
              error_json ~request_id:r.request_id
                (internal_error (Printexc.to_string exn));
            ])

(* ---- transports ----------------------------------------------------- *)

let serve_channels t ic oc =
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
        List.iter
          (fun resp ->
            Out_channel.output_string oc resp;
            Out_channel.output_char oc '\n')
          (handle_line t line);
        Out_channel.flush oc;
        loop ()
  in
  loop ()

let serve_socket ?max_conns t ~path =
  (* Socket setup failures (unwritable directory, stale non-socket
     file, path too long) are I/O errors on [path], not bugs: surface
     them as [Sys_error] so [Checked.protect] maps them to the
     [Io_error] exit code instead of leaking [Unix.Unix_error]. *)
  let io_error e fn =
    raise (Sys_error (Printf.sprintf "%s: %s (%s)" path (Unix.error_message e) fn))
  in
  (match Unix.unlink path with
  | () -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | exception Unix.Unix_error (e, fn, _) -> io_error e fn);
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      (match Unix.bind sock (Unix.ADDR_UNIX path) with
      | () -> ()
      | exception Unix.Unix_error (e, fn, _) -> io_error e fn);
      Unix.listen sock 8;
      let served = ref 0 in
      let continue () =
        match max_conns with None -> true | Some m -> !served < m
      in
      while continue () do
        let fd, _ = Unix.accept sock in
        incr served;
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> serve_channels t ic oc)
      done)
