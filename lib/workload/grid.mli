(** Declarative scenario grids for the batched sweep runner.

    A grid is the cross product

      sources x processes x methods x T_targets

    where a source is either a moments-level pipeline (stage (mu,
    sigma) pairs under a uniform correlation) or a gate-level circuit,
    and a process is a named variant of the technology's inter-die Vth
    sigma.  Moments sources carry no process dependence (their moments
    are given, not derived from a technology), so they are evaluated
    under the nominal process only; circuit sources are evaluated under
    every process variant.

    {2 Grid file format}

    One directive per line, [#] starts a comment:

    {v
    circuit c432              # builtin name or .bench path (via lookup)
    rho 0.3                   # uniform correlation for later `stages`
    stages 100,6 100,6 95,5   # moments source: one mu,sigma per stage
    targets 100,110,120       # explicit list (accumulates), or
    targets 100:140:9         # lo:hi:count, endpoints inclusive
    method clark,mc           # estimator names (accumulates)
    inter_vth_mv 60           # adds process variant "vth60mv"
    samples 20000             # fixed-n draw count (mc / importance)
    shards 8                  # RNG substreams per estimator run
    v} *)

type source =
  | Moments of {
      label : string;
      stages : (float * float) array;  (** (mu, sigma) per stage, ps *)
      rho : float;  (** uniform stage correlation *)
    }
  | Circuit of { label : string; net : Spv_circuit.Netlist.t }

type process = {
  p_label : string;
  inter_vth_mv : float option;
      (** [None] = nominal technology; [Some mv] overrides the
          inter-die Vth sigma via {!Spv_process.Tech.with_inter_vth} *)
}

type t = {
  sources : source list;
  processes : process list;  (** nominal is always first *)
  targets : float array;  (** T_target sweep, ps *)
  methods : Spv_engine.Engine.method_ list;
  n : int;  (** fixed-n sample count for mc / importance *)
  shards : int;
}

val nominal : process
(** The always-present baseline process (no override). *)

val source_label : source -> string

val builtin_circuits : (string * (unit -> Spv_circuit.Netlist.t)) list
(** The named benchmark circuits (c432, c1908, c2670, c3540, rca8,
    alu8, dec4, chain10) — the single table shared by the CLI and grid
    files. *)

val builtin_lookup : string -> (Spv_circuit.Netlist.t, string) result
(** Resolve a name against {!builtin_circuits} only (no file system). *)

val n_scenarios : t -> int
(** Total scenario count after expansion (moments sources count the
    nominal process only). *)

val validate : t -> (unit, string) result
(** Structural checks: at least one source / target / method, finite
    targets, positive [n] and [shards], stage moments finite with
    [sigma >= 0], [rho] in [-1, 1]. *)

val smoke : unit -> t
(** The built-in smoke grid (two moments sources, one circuit, two
    processes, three methods, ten targets — 120 scenarios), used by
    [spv sweep --smoke] and the determinism tests. *)

type parse_error = { line : int option; message : string }

val parse_error_to_string : parse_error -> string

val of_string :
  ?lookup:(string -> (Spv_circuit.Netlist.t, string) result) ->
  string -> (t, parse_error) result
(** Parse a grid file.  [lookup] resolves [circuit] directives
    (default {!builtin_lookup}; the CLI passes a resolver that also
    accepts .bench paths).  Errors carry the 1-based offending line.
    The parsed grid is already {!validate}d. *)
