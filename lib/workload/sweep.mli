(** Batched scenario-sweep runner with shared-context caching.

    Expands a {!Grid.t} into scenarios (sources x processes x methods
    x T_targets, in that nested order) and evaluates them through the
    unified engine with one {!Spv_engine.Engine.Ctx.t} per
    (source, process) pair — the Cholesky factorisation, Clark delay
    distribution and (for circuits) the SSTA stage analyses are built
    once and reused across every method and target.

    Determinism: every scenario's estimator runs with the caller's
    [seed] through the engine's shard machinery, so each row is
    bit-identical to the corresponding single-scenario engine call at
    the same [(seed, shards, n)] — and [jobs] never changes results,
    only wall-clock time.  For the [Mc] method all targets of a
    (source, process) pair share one sampling pass
    ({!Spv_engine.Engine.yield_targets}), which is itself bit-identical
    to per-target runs. *)

val schema_version : int
(** Version stamped into every JSONL row (currently 3; version 2 added
    [hier_bound], [macro_hits] and [macro_misses]; version 3 added
    [ess] and [proposal]). *)

type scenario = {
  index : int;  (** position in expansion order, 0-based *)
  source : string;
  process : string;
  method_ : Spv_engine.Engine.method_;
  t_target : float;
}

type row = {
  scenario : scenario;
  estimate : Spv_engine.Engine.estimate;  (** the yield estimate *)
  loss : float;
      (** yield loss with stable deep tails: closed forms route
          through [Engine.yield_loss]; [Mc]/[Adaptive_mc] use the
          integer-exact complement of their counts; [Importance]
          reports its failure probability directly *)
  macro_hits : int;
      (** macro-table block hits incurred building this row's context
          (0 in flat mode).  All rows sharing a (source, process)
          context report the same counters. *)
  macro_misses : int;
      (** blocks actually (re-)characterised for this row's context —
          over a process-override sweep this equals the number of
          blocks the override touched, everything else being hits *)
}

type result = {
  rows : row array;  (** in scenario order *)
  n_contexts : int;  (** distinct (source, process) contexts built *)
}

exception Stopped
(** Raised out of {!run} when its [should_stop] callback returns
    [true] — the request's deadline passed.  No partial result
    escapes: the caller gets the exception or the whole result. *)

val importance_row :
  Spv_engine.Engine.estimate -> Spv_engine.Engine.estimate * float
(** Turn a raw importance-sampling loss estimate into a (yield
    estimate, loss) row pair.  The loss is clamped to [[0, 1]] {e
    first} and the yield derived as [1 - loss] from the clamped value,
    so the pair is always consistent — a self-normalised-weight
    excursion can push the raw estimate marginally outside [[0, 1]],
    and clamping only the yield would ship [loss > 1] next to
    [yield = 0] in the same row. *)

val ctx_for :
  ?mode:Spv_engine.Engine.mode ->
  ?macro_table:Spv_circuit.Macro.Table.t ->
  tech:Spv_process.Tech.t -> Grid.source -> Grid.process ->
  Spv_engine.Engine.Ctx.t
(** The engine context a (source, process) pair resolves to — what
    {!run} builds once per pair.  Exposed so benchmarks and tests can
    reproduce the uncached per-scenario baseline.  [mode] (default
    [Flat]) and [macro_table] are forwarded to
    {!Spv_engine.Engine.Ctx.of_circuits}; moment sources ignore both. *)

val run :
  ?mode:Spv_engine.Engine.mode -> ?proposal:Spv_engine.Engine.proposal ->
  ?jobs:int -> ?seed:int ->
  ?tech:Spv_process.Tech.t ->
  ?ctx_provider:
    (Grid.source -> Grid.process -> Spv_engine.Engine.Ctx.t * (int * int)) ->
  ?should_stop:(unit -> bool) ->
  Grid.t -> result
(** Evaluate the grid (defaults: engine seed 42, {!Spv_process.Tech.bptm70}).
    [proposal] (default [Legacy]) selects the importance-sampling
    proposal family for [Importance] scenarios — [Cone_guided] uses the
    registered failure-cone provider when one is installed, and is
    resolved once per scenario before sampling so [jobs] byte-identity
    still holds.
    Under [~mode:Hierarchical] all circuit contexts share one macro
    table, so across the process axis each block is characterised once
    per distinct (block, process) pair — a process override
    re-characterises only the blocks it affects (asserted by the
    per-row counters).  Contexts are built serially regardless of
    [jobs], keeping the rows (counters included) byte-identical across
    [jobs].
    [ctx_provider], when given, replaces the internal context-building
    path entirely: it is called once per (source, process) pair in
    expansion order and returns the context plus the
    [(macro_hits, macro_misses)] deltas to stamp on that pair's rows —
    this is how the serve daemon injects its LRU-cached contexts.
    [should_stop] (default [fun () -> false]) is polled before each
    context build and before each per-target estimator call; when it
    returns [true], {!Stopped} is raised and no partial result
    escapes.
    Raises [Invalid_argument] when {!Grid.validate} rejects the
    grid. *)

val json_float : float -> string
(** JSON encoding of one float: finite values print with [%.17g] so
    they round-trip bit-exactly; NaN and infinities print as [null]
    (JSON has no non-finite numbers — a bare [nan] token would corrupt
    the line for every downstream parser).  Every float in every JSONL
    writer of this repository routes through this helper. *)

val row_to_json : row -> string
(** One JSON object (single line, no trailing newline): keys
    [schema_version, scenario, source, process, method, t_target,
    yield, std_error, n_samples, stop, loss, hier_bound, macro_hits,
    macro_misses, ess, proposal].  Every float field is number-or-null
    via {!json_float}; [hier_bound] is [null] for
    flat-mode rows; [ess] and [proposal] are [null] for
    non-importance rows, otherwise the effective sample size and the
    proposal actually used (["legacy"], ["cone"] or
    ["plain-fallback"]). *)

val to_jsonl : result -> string
(** All rows, newline-terminated — the [spv sweep] output format. *)

val stage_count_sweep :
  stage:Spv_stats.Gaussian.t -> rho:float -> stage_counts:int array ->
  float array
(** sigma/mu of the Clark max of N identical stages under uniform
    correlation [rho], per stage count — bit-identical to
    {!Spv_core.Variability.pipeline_sigma_mu_vs_stages} but computed
    from one {!Spv_core.Clark.prefix_maxes} recursion over the largest
    count instead of one Clark fold per count.

    The output is positional: [result.(i)] answers [stage_counts.(i)].
    Counts need not be sorted or distinct — each entry is an
    independent lookup into the shared prefix-max table, so duplicates
    yield (bit-)equal values and order is preserved.  Raises
    [Invalid_argument] only for an empty array or a count [<= 0]. *)
