module Engine = Spv_engine.Engine
module G = Spv_stats.Gaussian
module Stage = Spv_core.Stage
module Pipeline = Spv_core.Pipeline
module Macro = Spv_circuit.Macro

let schema_version = 3

type scenario = {
  index : int;
  source : string;
  process : string;
  method_ : Engine.method_;
  t_target : float;
}

type row = {
  scenario : scenario;
  estimate : Engine.estimate;
  loss : float;
  macro_hits : int;
  macro_misses : int;
}
type result = { rows : row array; n_contexts : int }

let clamp01 v = Float.max 0.0 (Float.min 1.0 v)

exception Stopped

(* The importance estimator measures the loss directly; the yield is
   derived.  Clamp the *loss* first and derive the yield from the
   clamped value so the pair stays consistent: a self-normalised-weight
   excursion (loss marginally above 1 or below 0) must never ship
   [loss > 1] next to [yield = 0] in the same row. *)
let importance_row (l : Engine.estimate) =
  let loss = clamp01 l.Engine.value in
  ({ l with Engine.value = 1.0 -. loss }, loss)

let ctx_for ?(mode = Engine.Flat) ?macro_table ~tech source
    (process : Grid.process) =
  match source with
  | Grid.Moments { stages; rho; _ } ->
      let n = Array.length stages in
      let sts =
        Array.mapi
          (fun i (mu, sigma) ->
            Stage.of_moments ~name:(Printf.sprintf "s%d" i) ~mu ~sigma ())
          stages
      in
      Engine.Ctx.of_pipeline
        (Pipeline.make sts ~corr:(Spv_stats.Correlation.uniform ~n ~rho))
  | Grid.Circuit { net; _ } ->
      let tech =
        match process.Grid.inter_vth_mv with
        | None -> tech
        | Some mv -> Spv_process.Tech.with_inter_vth tech ~sigma_mv:mv
      in
      Engine.Ctx.of_circuits ~mode ?macro_table tech [| net |]

(* Yield estimates plus stable losses for one (ctx, method) over the
   whole target sweep.  The loss source depends on the estimator
   class: closed forms re-evaluate through [Engine.yield_loss] (cheap,
   and the only way to keep a deep-tail loss nonzero); sampling
   estimators take the complement of their own counts, which is exact
   at Monte-Carlo resolution; importance sampling estimates the loss
   directly and the yield is derived from it (bit-identical to
   [Engine.yield], which computes [1 - p_fail] the same way). *)
let eval_method ?(should_stop = fun () -> false) ~jobs ~seed ~n ~shards
    ?proposal ctx method_ targets =
  let check () = if should_stop () then raise Stopped in
  match (method_ : Engine.method_) with
  | Mc ->
      check ();
      let estimates =
        Engine.yield_targets ~method_ ?jobs ~shards ~seed ~n ctx
          ~t_targets:targets
      in
      Array.map
        (fun (e : Engine.estimate) ->
          (e, Float.max 0.0 (1.0 -. e.Engine.value)))
        estimates
  | Adaptive_mc ->
      Array.map
        (fun t_target ->
          check ();
          let e = Engine.yield ~method_ ?jobs ~shards ~seed ctx ~t_target in
          (e, Float.max 0.0 (1.0 -. e.Engine.value)))
        targets
  | Importance ->
      Array.map
        (fun t_target ->
          check ();
          let l =
            Engine.yield_loss ~method_ ?proposal ?jobs ~shards ~seed ~n ctx
              ~t_target
          in
          importance_row l)
        targets
  | Analytic_clark | Exact_independent | Quadrature ->
      Array.map
        (fun t_target ->
          check ();
          let e = Engine.yield ~method_ ?jobs ~shards ~seed ~n ctx ~t_target in
          let l = Engine.yield_loss ~method_ ctx ~t_target in
          (e, l.Engine.value))
        targets

let run ?(mode = Engine.Flat) ?proposal ?jobs ?(seed = Engine.default_seed)
    ?(tech = Spv_process.Tech.bptm70) ?ctx_provider
    ?(should_stop = fun () -> false) (grid : Grid.t) =
  (match Grid.validate grid with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Sweep.run: " ^ msg));
  (* One macro table for the whole sweep: a process override only
     changes the characterisation fingerprint, so across the process
     axis each block is characterised once per distinct
     (block, process) pair and every further context probe is a hit.
     Contexts are built serially (jobs parallelises trials inside the
     engine, never context builds), so the per-context counter deltas
     below are schedule-independent and the JSONL stays byte-identical
     across [jobs].  A caller-supplied [ctx_provider] (the serve
     daemon's LRU cache) replaces this table wholesale and reports its
     own counter deltas. *)
  let provider =
    match ctx_provider with
    | Some p -> p
    | None ->
        let table =
          match mode with
          | Engine.Flat -> None
          | Engine.Hierarchical -> Some (Macro.Table.create ())
        in
        let counters () =
          match table with
          | None -> (0, 0)
          | Some t -> (Macro.Table.hits t, Macro.Table.misses t)
        in
        fun source process ->
          let hits0, misses0 = counters () in
          let ctx = ctx_for ~mode ?macro_table:table ~tech source process in
          let hits1, misses1 = counters () in
          (ctx, (hits1 - hits0, misses1 - misses0))
  in
  let rows = ref [] in
  let index = ref 0 in
  let n_contexts = ref 0 in
  List.iter
    (fun source ->
      let processes =
        match source with
        | Grid.Moments _ -> [ Grid.nominal ]
        | Grid.Circuit _ -> grid.Grid.processes
      in
      List.iter
        (fun process ->
          if should_stop () then raise Stopped;
          let ctx, (macro_hits, macro_misses) = provider source process in
          incr n_contexts;
          List.iter
            (fun method_ ->
              let evals =
                eval_method ~should_stop ~jobs ~seed ~n:grid.Grid.n
                  ~shards:grid.Grid.shards ?proposal ctx method_
                  grid.Grid.targets
              in
              Array.iteri
                (fun k (estimate, loss) ->
                  rows :=
                    {
                      scenario =
                        {
                          index = !index;
                          source = Grid.source_label source;
                          process = process.Grid.p_label;
                          method_;
                          t_target = grid.Grid.targets.(k);
                        };
                      estimate;
                      loss;
                      macro_hits;
                      macro_misses;
                    }
                    :: !rows;
                  incr index)
                evals)
            grid.Grid.methods)
        processes)
    grid.Grid.sources;
  { rows = Array.of_list (List.rev !rows); n_contexts = !n_contexts }

(* ---- JSONL ---------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no representation for non-finite numbers: [%.17g] would
   print [nan] or [inf] bare, corrupting the whole line for every
   downstream parser.  Every float in every JSON writer must go through
   this helper; the schema documents each float field as
   number-or-null. *)
let json_float x =
  if Float.is_finite x then Printf.sprintf "%.17g" x else "null"

let row_to_json r =
  let e = r.estimate in
  let hier_bound =
    match e.Engine.hier_bound with None -> "null" | Some b -> json_float b
  in
  let ess =
    match e.Engine.ess with None -> "null" | Some s -> json_float s
  in
  let proposal =
    match e.Engine.proposal with
    | None -> "null"
    | Some p -> Printf.sprintf "\"%s\"" (Engine.proposal_used_name p)
  in
  Printf.sprintf
    "{\"schema_version\":%d,\"scenario\":%d,\"source\":\"%s\",\"process\":\"%s\",\"method\":\"%s\",\"t_target\":%s,\"yield\":%s,\"std_error\":%s,\"n_samples\":%d,\"stop\":\"%s\",\"loss\":%s,\"hier_bound\":%s,\"macro_hits\":%d,\"macro_misses\":%d,\"ess\":%s,\"proposal\":%s}"
    schema_version r.scenario.index
    (json_escape r.scenario.source)
    (json_escape r.scenario.process)
    (Engine.method_name r.scenario.method_)
    (json_float r.scenario.t_target)
    (json_float e.Engine.value)
    (json_float e.Engine.std_error)
    e.Engine.n_samples
    (Engine.stop_reason_name e.Engine.stop)
    (json_float r.loss) hier_bound r.macro_hits r.macro_misses ess proposal

let to_jsonl result =
  let buf = Buffer.create (Array.length result.rows * 160) in
  Array.iter
    (fun r ->
      Buffer.add_string buf (row_to_json r);
      Buffer.add_char buf '\n')
    result.rows;
  Buffer.contents buf

(* The output is positional — [result.(i)] answers [stage_counts.(i)]
   — so duplicate or unsorted counts are well-defined (each entry is
   an independent lookup into one shared prefix-max table), not an
   error.  Only empty and non-positive inputs are rejected. *)
let stage_count_sweep ~stage ~rho ~stage_counts =
  if Array.length stage_counts = 0 then
    invalid_arg "Sweep.stage_count_sweep: no stage counts";
  Array.iter
    (fun n ->
      if n <= 0 then invalid_arg "Sweep.stage_count_sweep: stage count <= 0")
    stage_counts;
  let n_max = Array.fold_left max 1 stage_counts in
  let gs = Array.make n_max stage in
  let corr = Spv_stats.Correlation.uniform ~n:n_max ~rho in
  let prefixes = Spv_core.Clark.prefix_maxes gs ~corr in
  Array.map
    (fun n ->
      let tp = prefixes.(n - 1) in
      G.sigma tp /. G.mu tp)
    stage_counts
