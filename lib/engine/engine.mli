(** Unified statistical-timing engine.

    One entry point for every delay/yield question the library
    answers.  Three pieces:

    - {!Ctx}: an immutable evaluation context built once per
      pipeline/netlist array, caching what every estimator would
      otherwise re-derive per call — the Clark delay distribution, the
      stage-delay MVN factorisation, the independence flag and (for
      gate-level contexts) the nominal STA results, critical paths,
      gate-size snapshots and linearised delay-factor sensitivities;
    - a first-class estimator taxonomy ({!method_}): every method
      returns the same {!estimate} record (value, standard error,
      sample count, method tag, stop reason);
    - deterministic domain-parallel Monte-Carlo: trials are drawn on a
      fixed number of {e shards}, each with its own RNG stream split
      from one seed ({!Spv_stats.Rng.split}), and per-shard partial
      results are merged in fixed shard order (integer success counts
      exactly; means/variances by Welford accumulation per shard and
      Chan's parallel merge).  Shards are scheduled over [jobs]
      domains by {!Par.run}, and because shard state never depends on
      the schedule, results are bit-for-bit identical for any [jobs]
      given the same [(seed, shards)].

    All sampling loops in the library live here; the legacy
    [Yield.monte_carlo*], [Ssta.mc_*], [Adaptive.mc_yield_with_abb],
    [Mc] and [Importance.failure_above] paths are thin sequential
    shims over the same single-trial kernels. *)

(** {1 Evaluation modes} *)

type mode =
  | Flat  (** per-stage critical-path SSTA over the whole netlist *)
  | Hierarchical
      (** per-stage composition of pre-characterised block macros
          ({!Spv_circuit.Macro}): each stage is partitioned into level
          bands, each band reduced once to a canonical first-order
          macro, and the stage delay is the series composition of the
          band macros.  Macros are memoised in a {!Spv_circuit.Macro.Table}
          keyed on (block structure+sizes hash, process fingerprint), so
          repeated analyses — process sweeps, sizing probes — only pay
          for blocks that actually changed.  Every estimate on a
          hierarchical context carries the closed-form gap to the flat
          reference model as {!estimate.hier_bound}. *)

val mode_name : mode -> string
(** ["flat"] / ["hierarchical"]. *)

(** {1 Evaluation contexts} *)

module Ctx : sig
  type t
  (** Immutable evaluation context.  Safe to share across domains. *)

  val of_pipeline : Spv_core.Pipeline.t -> t
  (** Context for a moment-level pipeline (stage Gaussians +
      correlation).  Gate-level estimators are unavailable on such a
      context and raise [Invalid_argument]. *)

  val of_circuits :
    ?mode:mode -> ?macro_table:Spv_circuit.Macro.Table.t ->
    ?block_gates:int -> ?output_load:float -> ?pitch:float ->
    ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
    Spv_circuit.Netlist.t array -> t
  (** Gate-level context: runs analytic SSTA once per netlist (stages
      laid out in a row at [pitch], default 1.0, die units) and caches
      the nominal STA results alongside the derived pipeline.
      Equivalent pipeline to {!Spv_core.Pipeline.of_circuits}.  Raises
      [Invalid_argument] on an empty netlist array.

      [mode] (default {!Flat}) selects the stage-delay model.  Under
      {!Hierarchical} each stage is decomposed into blocks of roughly
      [block_gates] gates (default
      {!Spv_circuit.Macro.default_block_gates}) whose macros are
      characterised through [macro_table] (a fresh table when absent —
      pass a shared one to reuse characterisations across contexts,
      e.g. over a sweep).  The flat per-stage analyses are still
      computed (memoised in the same table) as the reference model that
      prices {!estimate.hier_bound}; nominal-STA accessors and
      gate-level Monte-Carlo always use the flat netlists, so only the
      moment-level model (pipeline, Clark distribution, MVN) differs
      between modes. *)

  val pipeline : t -> Spv_core.Pipeline.t
  val n_stages : t -> int

  val delay_distribution : t -> Spv_stats.Gaussian.t
  (** Cached Clark-iterated max over the stages (the paper's
      (mu_T, sigma_T)). *)

  val mvn : t -> Spv_stats.Mvn.t
  (** Cached joint stage-delay sampler (Cholesky factorisation done at
      context build). *)

  val nearly_independent : t -> bool
  (** Cached: true when every off-diagonal stage correlation is (near)
      zero, i.e. eq. 8 is exact. *)

  val gate_level : t -> bool
  (** True when the context was built by {!of_circuits}. *)

  val mode : t -> mode
  (** The evaluation mode the context was built under.  Moments-only
      contexts report {!Flat}. *)

  val macro_table : t -> Spv_circuit.Macro.Table.t option
  (** The macro table a hierarchical context characterises through
      (shared, live — its hit/miss counters keep advancing as the
      context is refreshed).  [None] for flat contexts. *)

  val flat_reference : t -> Spv_core.Pipeline.t option
  (** The flat reference pipeline a hierarchical context prices its
      error bound against — built from exactly the per-stage analyses a
      {!Flat} context of the same inputs would hold.  [None] for flat
      contexts. *)

  val n_blocks : t -> int -> int
  (** Number of macro blocks stage [i] decomposes into (1 for a flat
      context: the whole stage).  Gate-level contexts only. *)

  val stage_macros : t -> int -> Spv_circuit.Macro.t array
  (** The characterised block macros of one stage, in composition
      (level-band) order.  Hierarchical gate-level contexts only;
      raises [Invalid_argument] on a flat context. *)

  val nominal_sta : t -> int -> Spv_circuit.Sta.result
  (** Cached nominal STA of one stage.  Gate-level contexts only. *)

  val critical_path : t -> int -> int list
  (** Cached nominal critical path of one stage (input to output).
      Gate-level contexts only. *)

  val gate_sizes : t -> int -> float array
  (** Snapshot of one stage's gate sizes at context build (fresh
      array).  Gate-level contexts only. *)

  val stage_revision : t -> int -> int
  (** Monotone per-stage refresh counter: 0 at context build, bumped by
      one each time {!refresh_stage} (or {!refresh_block}, which
      delegates to it) re-analyses the stage.  Derived caches — the
      sizing layer's sensitivity enclosures — key on
      [(stage, revision)] so a refresh invalidates exactly the stale
      entries.  Gate-level contexts only. *)

  val delay_sensitivities : t -> float * float
  (** Cached linearised delay-factor coefficients [(s_vth, s_leff)] of
      the technology: the sensitivities in
      [delay_factor = 1 + s_vth dVth + s_leff dLeff/Leff].  Gate-level
      contexts only. *)

  val tech : t -> Spv_process.Tech.t
  (** The technology the context was built with.  Gate-level only. *)

  val netlist : t -> int -> Spv_circuit.Netlist.t
  (** One stage's netlist (shared, not copied — treat as read-only).
      Gate-level contexts only; raises [Invalid_argument] out of
      range. *)

  val output_load : t -> float
  (** Primary-output load the context's STA uses.  Gate-level only. *)

  val pitch : t -> float
  (** Stage-to-stage die pitch of the context's layout.  Gate-level
      only. *)

  val flipflop : t -> Spv_process.Flipflop.t option
  (** The flip-flop whose overhead each stage pays, if any.  Gate-level
      only. *)

  val with_prune : t -> bool array array -> t
  (** [with_prune ctx masks] returns a context whose gate-level
      Monte-Carlo samplers skip gates masked [false] (one mask entry
      per node per stage).  Masks come from the static-criticality pass
      in [Spv_analysis]: when every dropped gate provably never sets
      its stage delay, gate-level estimates are unchanged bit-for-bit
      (masked trials consume the identical RNG stream and only skip
      arithmetic).  Analytic/MVN estimators are unaffected.  Raises
      [Invalid_argument] on mask shape mismatch, a stage whose every
      primary output is masked, or a moments-only context. *)

  val without_prune : t -> t
  (** Drop any installed prune masks. *)

  val prune_masks : t -> bool array array option
  (** The installed prune masks (fresh copy), if any.  [None] for
      moments-only contexts and unpruned gate-level contexts. *)

  val stage_delay_model : t -> int -> Spv_process.Gate_delay.t
  (** The decomposed delay model of one stage. *)

  val stat_delay : t -> stage:int -> z:float -> float
  (** [mu + z sigma] of one stage's delay — the sizing layer's
      statistical-delay objective. *)

  val refresh_stage : t -> int -> t
  (** [refresh_stage ctx i] re-runs SSTA on stage [i]'s netlist
      (picking up mutated gate sizes) and rebuilds the derived caches;
      the other stages' analyses are reused.  This is what makes the
      sizer's inner loop cheap: one stage re-analysed per probe
      instead of the whole pipeline.  On a hierarchical context the
      stage is re-probed through the macro table, so blocks the resize
      did not touch are cache hits and only changed blocks are
      re-characterised.  Exactly stage [i]'s prune mask is dropped
      (replaced by an all-true mask); the other stages' masks — still
      sound, their netlists unchanged — are kept.  Gate-level contexts
      only; raises [Invalid_argument] out of range. *)

  val fingerprint : t -> string
  (** Canonical fingerprint of everything the estimators read from the
      context.  Gate-level contexts encode the characterisation
      fingerprint ({!Spv_circuit.Macro.Table.fingerprint}: technology
      parameters, boundary load, flip-flop overhead), the layout pitch
      and the per-stage structure+sizes hashes
      ({!Spv_circuit.Macro.hash}); moments-level contexts encode the
      per-stage delay decompositions, die positions and the full
      correlation matrix as exact ([%.17g]) float bits.  The evaluation
      mode prefixes both.  Two contexts with equal fingerprints answer
      every estimator query identically, so a long-running service
      (the [Spv_workload.Serve] daemon) can key its context cache on
      the inputs alone and prove cache hits sound by comparing
      fingerprints.
      Recomputed per call (the sizes part must track mutation); cheap
      integer/hash work, no re-analysis. *)

  val refresh_block : t -> stage:int -> block:int -> t
  (** [refresh_block ctx ~stage ~block] is {!refresh_stage} with the
      caller's assertion that the resize was confined to one macro
      block; the other blocks of the stage are verified unchanged by
      re-hashing (cheap integer work) and [Invalid_argument] is raised
      if any of them — or the band structure itself — changed.  On the
      macro-table side the unchanged blocks then hit the cache, so the
      refresh re-characterises exactly one block.  On a flat context
      the whole stage is one block: [block] must be [0] and the call
      degenerates to [refresh_stage ctx stage]. *)
end

(** {1 Estimator taxonomy} *)

type method_ =
  | Analytic_clark  (** eq. 9: Clark Gaussian CDF (closed form) *)
  | Exact_independent  (** eq. 8: per-stage CDF product (closed form) *)
  | Mc  (** fixed-[n] Monte-Carlo on the stage-delay MVN *)
  | Adaptive_mc  (** Monte-Carlo with relative-standard-error early stop *)
  | Importance  (** mean-shifted mixture importance sampling (tails) *)
  | Quadrature
      (** 1-D Gauss–Legendre over the inter-die variable of conditional
          Clark yields (the ABB machinery with zero bias range);
          degenerates to [Analytic_clark] for moment-built pipelines *)

type stop_reason =
  | Closed_form  (** no sampling involved *)
  | Converged  (** relative standard error reached its target *)
  | Sample_cap  (** sample budget exhausted before convergence *)
  | Fixed_n  (** caller asked for exactly [n] samples *)

type proposal =
  | Legacy
      (** the built-in per-stage mean-shift mixture (PR 2 behaviour):
          one mode per stage that can cross the barrier, crossing depth
          capped at 6 marginal sigmas *)
  | Cone_guided
      (** analyzer-derived failure-cone proposal: shifts along the
          dominant cones' design points (uncapped depth), mixture
          weights from the static criticality bounds.  Requires the
          provider installed by [Spv_analysis.Cones.install_engine_proposal];
          falls back to [Legacy] when absent or when no cone
          dominates. *)

(** What the importance estimator actually sampled with (reported in
    {!estimate.proposal}; the request may degrade, never silently). *)
type proposal_used =
  | Prop_legacy  (** legacy per-stage mean-shift mixture *)
  | Prop_cone of int  (** cone-guided mixture with [n] modes *)
  | Prop_plain
      (** body target — every candidate shift norm below
          [Spv_stats.Importance.body_shift_threshold] — so the
          estimator ran {e plain} Monte-Carlo and says so instead of
          reporting importance-grade output that is not
          (DESIGN §8's importance-at-body contract) *)

type estimate = {
  value : float;
  std_error : float;  (** 0 for closed forms *)
  n_samples : int;  (** 0 for closed forms *)
  method_ : method_;
  stop : stop_reason;
  hier_bound : float option;
      (** Hierarchical contexts only ([None] on flat): the absolute gap
          between the flat reference model and the macro-composed model
          the estimator evaluated, measured in the estimator's own
          closed-form family (Clark CDF/SF for [Analytic_clark] and the
          sampling methods, the independent product for
          [Exact_independent], quadrature for [Quadrature], Clark mu
          for {!delay_mean}).  For closed forms the reported value
          differs from its flat counterpart by exactly this gap;
          sampling estimators add their own noise, which callers cover
          with the usual [z *. std_error] allowance. *)
  ess : float option;
      (** [Importance] only ([None] elsewhere): effective sample size
          of the self-normalised importance weights,
          [(sum w)^2 / sum w^2] over all [n] draws (for the
          [Prop_plain] fallback: the failing-trial count, which is the
          same formula on 0/1 weights).  Tiny values mean the proposal
          is poorly placed. *)
  proposal : proposal_used option;
      (** [Importance] only: the proposal actually sampled with. *)
}

val method_name : method_ -> string
val method_of_string : string -> method_ option
val all_methods : method_ list
val stop_reason_name : stop_reason -> string

val proposal_name : proposal -> string
(** ["legacy"] / ["cone"]. *)

val proposal_of_string : string -> proposal option

val proposal_used_name : proposal_used -> string
(** ["legacy"] / ["cone"] / ["plain-fallback"]. *)

val pp_estimate : Format.formatter -> estimate -> unit

val recommended : Ctx.t -> method_
(** The paper's recommended closed form for this context:
    [Exact_independent] when the stages are (near) independent,
    [Analytic_clark] otherwise. *)

(** {1 Debug-mode postconditions}

    [Spv_analysis.Bounds.install_engine_check] registers an
    interval-bound oracle here (a function pointer, so the engine does
    not depend on the analysis layer).  When debug checks are enabled —
    [set_debug_checks true], or the [SPV_DEBUG_BOUNDS] environment
    variable set to anything but [""]/["0"] at startup — every
    {!yield} ([t_target] passed as [Some]) and {!delay_mean}
    ([t_target = None]) result is handed to the registered check and a
    violated bound raises [Failure] with the oracle's message. *)

type check = Ctx.t -> t_target:float option -> estimate -> (unit, string) result

val register_estimate_check : check -> unit
(** Install the postcondition oracle, replacing every previously
    registered or added one. *)

val add_estimate_check : check -> unit
(** Append a further oracle; all registered checks run in order and
    the first violation raises.  [Spv_analysis.Affine_sta] uses this
    to stack the affine-envelope check on top of the interval one. *)

type proposal_provider =
  Ctx.t -> t_target:float -> (float array array * float array) option
(** Maps a context and target to an importance-sampling proposal:
    whitened mixture shifts in the stage-MVN's Cholesky basis (each of
    dimension [Mvn.dim]) plus unnormalised positive mixture weights.
    [None] means no failure cone dominates — the estimator then uses
    its legacy mixture. *)

val register_proposal_provider : proposal_provider -> unit
(** Install the [Cone_guided] proposal builder (replacing any previous
    one) — the same function-pointer pattern as the estimate checks,
    used by [Spv_analysis.Cones.install_engine_proposal] so the engine
    does not depend on the analysis layer. *)

val proposal_provider_installed : unit -> bool

val set_debug_checks : bool -> unit
(** Enable/disable running the registered oracle. *)

val debug_checks_enabled : unit -> bool

(** {1 Estimators}

    Common optional arguments: [jobs] (worker domains; default
    {!Par.default_jobs}) only affects wall-clock time, never results;
    [shards] (independent RNG substreams; default 8) and [seed]
    (default 42) fully determine every random draw.  [Invalid_argument]
    is raised on non-positive [jobs]/[shards]/[n], non-finite
    [t_target], or a gate-level estimator applied to a moments-only
    context. *)

val default_shards : int
(** 8 — the default RNG substream count. *)

val default_seed : int
(** 42 — the default master seed. *)

val yield :
  ?method_:method_ -> ?proposal:proposal -> ?jobs:int -> ?shards:int ->
  ?seed:int -> ?n:int -> ?batch:int -> ?min_samples:int ->
  ?rel_se_target:float -> ?max_samples:int -> Ctx.t -> t_target:float ->
  estimate
(** [P{pipeline delay <= t_target}] by the chosen method (default
    [Adaptive_mc]).  [n] (default 10_000) applies to [Mc] and
    [Importance]; [batch] (round size, default 1024),
    [min_samples] (1000), [rel_se_target] (0.01) and [max_samples]
    (1_000_000) apply to [Adaptive_mc].  [proposal] (default
    [Legacy]) selects the [Importance] mixture construction; ignored
    by every other method.  Proposals are resolved once before
    sampling starts, so [jobs] still never changes results. *)

val yield_targets :
  ?method_:method_ -> ?proposal:proposal -> ?jobs:int -> ?shards:int ->
  ?seed:int -> ?n:int -> ?batch:int -> ?min_samples:int ->
  ?rel_se_target:float -> ?max_samples:int -> Ctx.t ->
  t_targets:float array -> estimate array
(** {!yield} over a whole [t_target] sweep, one estimate per target
    (same defaults).  For [Mc] with more than one target the sampling
    pass is shared: each trial draws one pipeline delay and updates
    every target's counter, so a sweep costs one Monte-Carlo run yet
    each returned estimate is bit-identical to the single-target
    {!yield} at the same [(seed, shards, n)].  Other methods evaluate
    per target (closed forms are cheap; adaptive runs stop on
    per-target criteria and cannot share draws without changing their
    results).  Raises [Invalid_argument] on an empty target array. *)

val yield_loss :
  ?method_:method_ -> ?proposal:proposal -> ?jobs:int -> ?shards:int ->
  ?seed:int -> ?n:int -> ?batch:int -> ?min_samples:int ->
  ?rel_se_target:float -> ?max_samples:int -> Ctx.t -> t_target:float ->
  estimate
(** [P{pipeline delay > t_target}], reported with full relative
    precision deep in the tail where [1. -. (yield ...).value] cancels
    to 0 (closed forms route through {!Spv_stats.Gaussian.sf} /
    [Yield.independent_exact_loss]; [Importance] reports its estimated
    failure probability directly; [Mc]/[Adaptive_mc] count failing
    trials, so their loss is the integer-exact complement of the
    corresponding yield estimate).  Same parameters and defaults as
    {!yield}.  Debug-mode bounds oracles are not applied (they check
    yield, not loss, semantics). *)

val delay_mean :
  ?method_:method_ -> ?jobs:int -> ?shards:int -> ?seed:int -> ?n:int ->
  ?batch:int -> ?min_samples:int -> ?rel_se_target:float ->
  ?max_samples:int -> Ctx.t -> estimate
(** Mean pipeline delay.  Methods: [Analytic_clark] (Clark mu, closed
    form), [Mc] (fixed [n]) or [Adaptive_mc] (default); other methods
    raise [Invalid_argument]. *)

val sample_delays :
  ?jobs:int -> ?shards:int -> ?seed:int -> Ctx.t -> n:int -> float array
(** [n] pipeline-delay draws from the stage-delay MVN (for histograms
    and moment checks).  Sample order is deterministic given
    [(seed, shards)] and independent of [jobs]. *)

val gate_level_delays :
  ?exact:bool -> ?jobs:int -> ?shards:int -> ?seed:int -> Ctx.t -> n:int ->
  float array
(** [n] gate-level Monte-Carlo pipeline delays: per trial, sample a
    variation world, re-run STA with per-gate delay factors
    ([exact] uses the alpha-power law directly instead of its
    linearisation), take the max stage delay.  Gate-level contexts
    only. *)

val gate_level_stage_samples :
  ?exact:bool -> ?jobs:int -> ?shards:int -> ?seed:int -> Ctx.t -> n:int ->
  float array array
(** Same sampling scheme, returning the per-stage delay matrix
    [stage][trial] (used to measure empirical stage correlations).
    Gate-level contexts only. *)

val abb_mc_yield :
  ?policy:Spv_core.Adaptive.policy -> ?jobs:int -> ?shards:int -> ?seed:int ->
  Ctx.t -> n:int -> t_target:float -> estimate
(** Monte-Carlo verification of the adaptive-body-bias yield (method
    tag [Mc]): per trial, sample the die's inter-die corner, apply the
    clamped cancellation policy, sample residual stage delays. *)
