let default_jobs () =
  match Sys.getenv_opt "SPV_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let run ~jobs tasks =
  if jobs <= 0 then invalid_arg "Par.run: jobs <= 0";
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let jobs = min jobs n in
    if jobs = 1 then Array.map (fun f -> f ()) tasks
    else begin
      (* Round-robin static assignment: worker [w] runs tasks
         w, w+jobs, w+2*jobs, ...  Result slots are disjoint, so the
         only synchronisation needed is the joins themselves. *)
      let results = Array.make n None in
      let worker w () =
        let i = ref w in
        while !i < n do
          results.(!i) <- Some (tasks.(!i) ());
          i := !i + jobs
        done
      in
      let helpers =
        Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1)))
      in
      let failure = ref None in
      let note f =
        match f () with
        | () -> ()
        | exception e -> if !failure = None then failure := Some e
      in
      note (worker 0);
      Array.iter (fun d -> note (fun () -> Domain.join d)) helpers;
      (match !failure with Some e -> raise e | None -> ());
      Array.map (function Some v -> v | None -> assert false) results
    end
  end
