module G = Spv_stats.Gaussian
module Rng = Spv_stats.Rng
module Mvn = Spv_stats.Mvn
module Pipeline = Spv_core.Pipeline
module Stage = Spv_core.Stage
module Ssta = Spv_circuit.Ssta
module Netlist = Spv_circuit.Netlist
module Macro = Spv_circuit.Macro

(* ---- evaluation modes ------------------------------------------------ *)

type mode = Flat | Hierarchical

let mode_name = function Flat -> "flat" | Hierarchical -> "hierarchical"

(* ---- evaluation contexts -------------------------------------------- *)

module Ctx = struct
  (* Block-granular state of a hierarchical context.  [h_flat] is the
     flat reference model (memoised per-stage critical-path analyses),
     kept so every estimate can report the model gap between the two
     evaluations as its error bound. *)
  type hier = {
    h_table : Macro.Table.t;
    h_fp : string;
    h_block_gates : int option;
    h_blocks : Macro.block array array;
    h_macros : Macro.t array array;
    h_flat : Pipeline.t;
    h_flat_dist : G.t;
  }

  type gate = {
    tech : Spv_process.Tech.t;
    nets : Netlist.t array;
    output_load : float;
    pitch : float;
    ff : Spv_process.Flipflop.t option;
    analyses : Ssta.stage_analysis array;
    sizes : float array array;
    s_vth : float;
    s_leff : float;
    prune : bool array array option;
    revisions : int array;
        (* per-stage refresh counters: bumped by [refresh_stage] so
           derived caches (the sizing layer's sensitivity enclosures)
           can key on [(stage, revision)] and drop stale entries *)
    hier : hier option;
  }

  type t = {
    pipeline : Pipeline.t;
    dist : G.t;
    mvn : Mvn.t;
    independent : bool;
    gate : gate option;
  }

  let finish ?gate pipeline =
    {
      pipeline;
      dist = Pipeline.delay_distribution pipeline;
      mvn = Pipeline.mvn pipeline;
      independent = Spv_core.Yield.nearly_independent pipeline;
      gate;
    }

  let of_pipeline pipeline = finish pipeline

  (* Apply [f] once per distinct physical array element; repeated
     stages (identical netlist instantiated many times) share the
     result.  Quadratic in distinct elements, which stays tiny. *)
  let memo_by_identity f xs =
    let seen = ref [] in
    Array.map
      (fun x ->
        match List.find_opt (fun (x', _) -> x' == x) !seen with
        | Some (_, y) -> y
        | None ->
            let y = f x in
            seen := (x, y) :: !seen;
            y)
      xs

  let flat_stages ~positions analyses nets =
    Array.mapi
      (fun i net ->
        Stage.make ~name:(Netlist.name net) ~position:positions.(i)
          analyses.(i).Ssta.total)
      nets

  let of_circuits ?(mode = Flat) ?macro_table ?block_gates
      ?(output_load = 4.0) ?(pitch = 1.0) ?ff tech nets =
    if Array.length nets = 0 then
      invalid_arg "Engine.Ctx.of_circuits: no stages";
    let positions =
      Spv_process.Spatial.row_positions ~n:(Array.length nets) ~pitch
    in
    let corr_length = tech.Spv_process.Tech.corr_length in
    let analyses, pipeline, hier =
      match mode with
      | Flat ->
          let analyses =
            Array.map
              (fun net -> Ssta.analyse_stage ~output_load ?ff tech net)
              nets
          in
          let pipeline =
            Pipeline.of_stages ~corr_length
              (flat_stages ~positions analyses nets)
          in
          (analyses, pipeline, None)
      | Hierarchical ->
          let table =
            match macro_table with
            | Some t -> t
            | None -> Macro.Table.create ()
          in
          let fp = Macro.Table.fingerprint ~output_load ?ff tech in
          (* Hash each distinct physical netlist once per build: a
             pipeline instantiating one block RTL many times (the
             hierarchical sweet spot) would otherwise re-hash the same
             size array per stage. *)
          let stage_keys = memo_by_identity (Macro.Table.stage_hash table) nets in
          let entries =
            Array.mapi
              (fun i net ->
                Macro.Table.stage table ~fp ~stage_key:stage_keys.(i)
                  ?target_gates:block_gates ~output_load tech net)
              nets
          in
          let analyses =
            Array.mapi
              (fun i net ->
                Macro.Table.flat_analysis table ~fp ~stage_key:stage_keys.(i)
                  ~output_load ?ff tech net)
              nets
          in
          let hier_stages =
            Array.mapi
              (fun i net ->
                let comb = entries.(i).Macro.Table.se_delay in
                let total =
                  match ff with
                  | None -> comb
                  | Some ff ->
                      Spv_process.Gate_delay.add comb
                        (Spv_process.Flipflop.overhead ff)
                in
                Stage.make ~name:(Netlist.name net) ~position:positions.(i)
                  total)
              nets
          in
          let pipeline = Pipeline.of_stages ~corr_length hier_stages in
          let h_flat =
            Pipeline.of_stages ~corr_length
              (flat_stages ~positions analyses nets)
          in
          let hier =
            {
              h_table = table;
              h_fp = fp;
              h_block_gates = block_gates;
              h_blocks = Array.map (fun e -> e.Macro.Table.se_blocks) entries;
              h_macros = Array.map (fun e -> e.Macro.Table.se_macros) entries;
              h_flat;
              h_flat_dist = Pipeline.delay_distribution h_flat;
            }
          in
          (analyses, pipeline, Some hier)
    in
    finish
      ~gate:
        {
          tech;
          nets;
          output_load;
          pitch;
          ff;
          analyses;
          sizes = memo_by_identity Netlist.sizes_snapshot nets;
          s_vth = Spv_process.Tech.delay_sensitivity_vth tech;
          s_leff = Spv_process.Tech.delay_sensitivity_leff tech;
          prune = None;
          revisions = Array.make (Array.length nets) 0;
          hier;
        }
      pipeline

  let pipeline t = t.pipeline
  let n_stages t = Pipeline.n_stages t.pipeline
  let delay_distribution t = t.dist
  let mvn t = t.mvn
  let nearly_independent t = t.independent
  let gate_level t = t.gate <> None

  let hier_of t =
    match t.gate with Some { hier = Some h; _ } -> Some h | _ -> None

  let mode t = match hier_of t with Some _ -> Hierarchical | None -> Flat
  let macro_table t = Option.map (fun h -> h.h_table) (hier_of t)
  let flat_reference t = Option.map (fun h -> h.h_flat) (hier_of t)

  let require_gate ~where t =
    match t.gate with
    | Some g -> g
    | None ->
        invalid_arg (where ^ ": context has no netlists (built from moments)")

  let check_stage ~where t i =
    if i < 0 || i >= n_stages t then invalid_arg (where ^ ": stage out of range")

  let nominal_sta t i =
    let g = require_gate ~where:"Engine.Ctx.nominal_sta" t in
    check_stage ~where:"Engine.Ctx.nominal_sta" t i;
    g.analyses.(i).Ssta.nominal

  let critical_path t i =
    (nominal_sta t i).Spv_circuit.Sta.critical_path

  let gate_sizes t i =
    let g = require_gate ~where:"Engine.Ctx.gate_sizes" t in
    check_stage ~where:"Engine.Ctx.gate_sizes" t i;
    Array.copy g.sizes.(i)

  let stage_revision t i =
    let g = require_gate ~where:"Engine.Ctx.stage_revision" t in
    check_stage ~where:"Engine.Ctx.stage_revision" t i;
    g.revisions.(i)

  let delay_sensitivities t =
    let g = require_gate ~where:"Engine.Ctx.delay_sensitivities" t in
    (g.s_vth, g.s_leff)

  let tech t = (require_gate ~where:"Engine.Ctx.tech" t).tech
  let output_load t = (require_gate ~where:"Engine.Ctx.output_load" t).output_load
  let pitch t = (require_gate ~where:"Engine.Ctx.pitch" t).pitch
  let flipflop t = (require_gate ~where:"Engine.Ctx.flipflop" t).ff

  let netlist t i =
    let g = require_gate ~where:"Engine.Ctx.netlist" t in
    check_stage ~where:"Engine.Ctx.netlist" t i;
    g.nets.(i)

  let prune_masks t =
    match t.gate with
    | None -> None
    | Some g -> Option.map (Array.map Array.copy) g.prune

  let with_prune t masks =
    let where = "Engine.Ctx.with_prune" in
    let g = require_gate ~where t in
    if Array.length masks <> Array.length g.nets then
      invalid_arg (where ^ ": one mask per stage required");
    Array.iteri
      (fun i mask ->
        let net = g.nets.(i) in
        if Array.length mask <> Netlist.n_nodes net then
          invalid_arg (where ^ ": mask length <> node count");
        if not (Array.exists (fun o -> mask.(o)) (Netlist.outputs net)) then
          invalid_arg (where ^ ": stage with every output masked"))
      masks;
    { t with gate = Some { g with prune = Some (Array.map Array.copy masks) } }

  let without_prune t =
    match t.gate with
    | None | Some { prune = None; _ } -> t
    | Some g -> { t with gate = Some { g with prune = None } }

  let stage_delay_model t i =
    check_stage ~where:"Engine.Ctx.stage_delay_model" t i;
    (Pipeline.stage t.pipeline i).Stage.delay

  let stat_delay t ~stage ~z =
    check_stage ~where:"Engine.Ctx.stat_delay" t stage;
    let g = Stage.gaussian (Pipeline.stage t.pipeline stage) in
    G.mu g +. (z *. G.sigma g)

  let n_blocks t i =
    check_stage ~where:"Engine.Ctx.n_blocks" t i;
    ignore (require_gate ~where:"Engine.Ctx.n_blocks" t);
    match hier_of t with
    | None -> 1 (* a flat stage is one block *)
    | Some h -> Array.length h.h_blocks.(i)

  let stage_macros t i =
    check_stage ~where:"Engine.Ctx.stage_macros" t i;
    ignore (require_gate ~where:"Engine.Ctx.stage_macros" t);
    match hier_of t with
    | None -> invalid_arg "Engine.Ctx.stage_macros: flat context"
    | Some h -> Array.copy h.h_macros.(i)

  (* Gate sizes of stage [i] changed: exactly that stage's criticality
     mask is stale.  Replace it with an all-true (prune-nothing) mask
     and keep the still-sound masks of the other stages. *)
  let drop_stage_mask g i =
    match g.prune with
    | None -> None
    | Some masks ->
        let masks = Array.map Array.copy masks in
        masks.(i) <- Array.make (Array.length masks.(i)) true;
        Some masks

  let refreshed_flat_analysis g i =
    match g.hier with
    | None ->
        Ssta.analyse_stage ~output_load:g.output_load ?ff:g.ff g.tech
          g.nets.(i)
    | Some h ->
        Macro.Table.flat_analysis h.h_table ~fp:h.h_fp
          ~output_load:g.output_load ?ff:g.ff g.tech g.nets.(i)

  let refresh_stage t i =
    let g = require_gate ~where:"Engine.Ctx.refresh_stage" t in
    check_stage ~where:"Engine.Ctx.refresh_stage" t i;
    let a = refreshed_flat_analysis g i in
    let analyses = Array.copy g.analyses in
    analyses.(i) <- a;
    let sizes = Array.copy g.sizes in
    sizes.(i) <- Netlist.sizes_snapshot g.nets.(i);
    let old_stage = Pipeline.stage t.pipeline i in
    let remake total =
      Stage.make ~name:old_stage.Stage.name ~position:old_stage.Stage.position
        total
    in
    let prune = drop_stage_mask g i in
    let revisions = Array.copy g.revisions in
    revisions.(i) <- revisions.(i) + 1;
    match g.hier with
    | None ->
        let pipeline = Pipeline.with_stage t.pipeline i (remake a.Ssta.total) in
        finish ~gate:{ g with analyses; sizes; prune; revisions } pipeline
    | Some h ->
        (* Re-probe the macro table under the stage's new sizes: bands
           whose gates are untouched hit the cache, so only the blocks
           a resize actually reached are re-characterised. *)
        let entry =
          Macro.Table.stage h.h_table ~fp:h.h_fp
            ?target_gates:h.h_block_gates ~output_load:g.output_load g.tech
            g.nets.(i)
        in
        let comb = entry.Macro.Table.se_delay in
        let total =
          match g.ff with
          | None -> comb
          | Some ff ->
              Spv_process.Gate_delay.add comb
                (Spv_process.Flipflop.overhead ff)
        in
        let pipeline = Pipeline.with_stage t.pipeline i (remake total) in
        let h_blocks = Array.copy h.h_blocks in
        h_blocks.(i) <- entry.Macro.Table.se_blocks;
        let h_macros = Array.copy h.h_macros in
        h_macros.(i) <- entry.Macro.Table.se_macros;
        let flat_stage = Pipeline.stage h.h_flat i in
        let h_flat =
          Pipeline.with_stage h.h_flat i
            (Stage.make ~name:flat_stage.Stage.name
               ~position:flat_stage.Stage.position a.Ssta.total)
        in
        let hier =
          {
            h with
            h_blocks;
            h_macros;
            h_flat;
            h_flat_dist = Pipeline.delay_distribution h_flat;
          }
        in
        finish
          ~gate:{ g with analyses; sizes; prune; revisions; hier = Some hier }
          pipeline

  (* Canonical fingerprint of everything the estimators read from a
     context.  Gate-level: the characterisation fingerprint (tech,
     boundary load, flip-flop) plus the per-stage structure+sizes
     hashes; moments-level: the stage delay decompositions, positions
     and the full correlation matrix, all as exact float bits.  Two
     contexts with equal fingerprints answer every estimator query
     identically, which is what lets a long-running service key a
     context cache on the inputs alone. *)
  let fingerprint t =
    let b = Buffer.create 256 in
    let f x = Buffer.add_string b (Printf.sprintf "%.17g;" x) in
    Buffer.add_string b (mode_name (mode t));
    Buffer.add_char b '|';
    (match t.gate with
    | Some g ->
        Buffer.add_string b
          (Macro.Table.fingerprint ~output_load:g.output_load ?ff:g.ff g.tech);
        Buffer.add_char b '|';
        f g.pitch;
        Array.iter
          (fun net ->
            Buffer.add_string b (Printf.sprintf "%016Lx;" (Macro.hash net)))
          g.nets
    | None ->
        Buffer.add_string b "moments|";
        Array.iter
          (fun st ->
            let d = st.Stage.delay in
            f d.Spv_process.Gate_delay.nominal;
            f d.Spv_process.Gate_delay.sigma_inter;
            f d.Spv_process.Gate_delay.sigma_sys;
            f d.Spv_process.Gate_delay.sigma_rand;
            f st.Stage.position.Spv_process.Spatial.x;
            f st.Stage.position.Spv_process.Spatial.y)
          (Pipeline.stages t.pipeline);
        Buffer.add_char b '|';
        let corr = Pipeline.correlation t.pipeline in
        let n = Pipeline.n_stages t.pipeline in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            f (Spv_stats.Correlation.get corr i j)
          done
        done);
    Buffer.contents b

  let refresh_block t ~stage ~block =
    let where = "Engine.Ctx.refresh_block" in
    let g = require_gate ~where t in
    check_stage ~where t stage;
    (match hier_of t with
    | None ->
        if block <> 0 then
          invalid_arg (where ^ ": flat stages have exactly one block (0)")
    | Some h ->
        let blocks = h.h_blocks.(stage) in
        if block < 0 || block >= Array.length blocks then
          invalid_arg (where ^ ": block out of range");
        (* Contract: the resize is confined to [block].  Verify by
           re-hashing the other bands against their characterised
           sub-netlists — cheap integer work, no re-analysis. *)
        let fresh = Macro.partition ?target_gates:h.h_block_gates g.nets.(stage) in
        if Array.length fresh <> Array.length blocks then
          invalid_arg (where ^ ": band structure changed");
        Array.iteri
          (fun j fb ->
            if
              j <> block
              && not
                   (Int64.equal
                      (Macro.hash fb.Macro.b_net)
                      (Macro.hash blocks.(j).Macro.b_net))
            then
              invalid_arg
                (Printf.sprintf
                   "%s: block %d also changed; refresh it too (or use \
                    refresh_stage)"
                   where j))
          fresh);
    refresh_stage t stage
end

(* ---- estimator taxonomy --------------------------------------------- *)

type method_ =
  | Analytic_clark
  | Exact_independent
  | Mc
  | Adaptive_mc
  | Importance
  | Quadrature

type stop_reason = Closed_form | Converged | Sample_cap | Fixed_n

type proposal = Legacy | Cone_guided

type proposal_used =
  | Prop_legacy
  | Prop_cone of int
  | Prop_plain

type estimate = {
  value : float;
  std_error : float;
  n_samples : int;
  method_ : method_;
  stop : stop_reason;
  hier_bound : float option;
  ess : float option;
  proposal : proposal_used option;
}

let method_name = function
  | Analytic_clark -> "clark"
  | Exact_independent -> "independent"
  | Mc -> "mc"
  | Adaptive_mc -> "adaptive"
  | Importance -> "importance"
  | Quadrature -> "quadrature"

let all_methods =
  [ Analytic_clark; Exact_independent; Mc; Adaptive_mc; Importance; Quadrature ]

let method_of_string s =
  List.find_opt (fun m -> method_name m = s) all_methods

let stop_reason_name = function
  | Closed_form -> "closed-form"
  | Converged -> "converged"
  | Sample_cap -> "sample-cap"
  | Fixed_n -> "fixed-n"

let proposal_name = function Legacy -> "legacy" | Cone_guided -> "cone"

let proposal_of_string = function
  | "legacy" -> Some Legacy
  | "cone" -> Some Cone_guided
  | _ -> None

let proposal_used_name = function
  | Prop_legacy -> "legacy"
  | Prop_cone _ -> "cone"
  | Prop_plain -> "plain-fallback"

let pp_estimate ppf e =
  (if e.stop = Closed_form then
     Format.fprintf ppf "%.6f (%s, %s)" e.value (method_name e.method_)
       (stop_reason_name e.stop)
   else
     Format.fprintf ppf "%.6f +- %.2g (%s, n=%d, %s)" e.value e.std_error
       (method_name e.method_) e.n_samples (stop_reason_name e.stop));
  (match e.proposal with
  | None -> ()
  | Some (Prop_cone m) -> Format.fprintf ppf " [cone, %d mode%s]" m
      (if m = 1 then "" else "s")
  | Some p -> Format.fprintf ppf " [%s]" (proposal_used_name p));
  (match e.ess with
  | None -> ()
  | Some s -> Format.fprintf ppf " [ess=%.1f]" s);
  match e.hier_bound with
  | None -> ()
  | Some b -> Format.fprintf ppf " [|flat-hier| <= %.3g]" b

let recommended ctx =
  if Ctx.nearly_independent ctx then Exact_independent else Analytic_clark

(* ---- debug-mode postconditions --------------------------------------- *)

(* [Spv_analysis.Bounds] registers interval-bound oracles here (a
   function pointer avoids a dependency cycle: analysis depends on the
   engine, not vice versa).  Checks only run when debug mode is on. *)

type check = Ctx.t -> t_target:float option -> estimate -> (unit, string) result

(* Checks run in registration order; [register_estimate_check] keeps
   its historical replace-the-oracle semantics (it resets the whole
   list), [add_estimate_check] appends. *)
let estimate_checks : check list ref = ref []

let debug_checks =
  ref
    (match Sys.getenv_opt "SPV_DEBUG_BOUNDS" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let set_debug_checks b = debug_checks := b
let debug_checks_enabled () = !debug_checks
let register_estimate_check f = estimate_checks := [ f ]
let add_estimate_check f = estimate_checks := !estimate_checks @ [ f ]

(* ---- analyzer-derived importance proposals --------------------------- *)

(* [Spv_analysis.Cones] registers its failure-cone proposal builder
   here — the same function-pointer pattern as the estimate checks, so
   the engine keeps not depending on the analysis layer.  The provider
   maps (ctx, t_target) to whitened mixture shifts in the stage-MVN's
   Cholesky basis plus unnormalised mixture weights; [None] means no
   cone dominates and the estimator falls back to the legacy
   per-stage mean-shift mixture. *)

type proposal_provider =
  Ctx.t -> t_target:float -> (float array array * float array) option

let proposal_provider : proposal_provider option ref = ref None
let register_proposal_provider f = proposal_provider := Some f
let proposal_provider_installed () = !proposal_provider <> None

let postcondition ~where ctx ~t_target e =
  (if !debug_checks then
     List.iter
       (fun f ->
         match f ctx ~t_target e with
         | Ok () -> ()
         | Error msg ->
             failwith
               (Printf.sprintf "%s: bounds postcondition violated: %s" where
                  msg))
       !estimate_checks);
  e

(* ---- deterministic shard-parallel cores ------------------------------ *)

(* Every sampling estimator draws on [shards] independent RNG streams
   split from one seed.  Shard results are merged in fixed shard order,
   and shard state never depends on which domain ran the shard, so the
   outcome is a pure function of (seed, shards, estimator parameters)
   — [jobs] only changes wall-clock time. *)

let default_shards = 8
let default_seed = 42

let check_positive ~where name v =
  if v <= 0 then
    invalid_arg (Printf.sprintf "%s: %s must be positive" where name)

let resolve_jobs ~where jobs =
  let jobs = match jobs with Some j -> j | None -> Par.default_jobs () in
  check_positive ~where "jobs" jobs;
  jobs

let shard_streams ~seed ~shards = Rng.split (Rng.create ~seed) shards

let shard_counts n shards =
  Array.init shards (fun i ->
      (n / shards) + if i < n mod shards then 1 else 0)

(* Streaming moments: Welford accumulation per shard, Chan's parallel
   merge across shards (applied in fixed shard order). *)
type moments = { mutable m_n : int; mutable m_mean : float; mutable m_m2 : float }

let moments_create () = { m_n = 0; m_mean = 0.0; m_m2 = 0.0 }

let moments_add m x =
  m.m_n <- m.m_n + 1;
  let d = x -. m.m_mean in
  m.m_mean <- m.m_mean +. (d /. float_of_int m.m_n);
  m.m_m2 <- m.m_m2 +. (d *. (x -. m.m_mean))

let moments_merge (n1, mean1, m2a) (n2, mean2, m2b) =
  if n2 = 0 then (n1, mean1, m2a)
  else if n1 = 0 then (n2, mean2, m2b)
  else begin
    let n = n1 + n2 in
    let d = mean2 -. mean1 in
    let fn1 = float_of_int n1 and fn2 = float_of_int n2 in
    let fn = float_of_int n in
    (n, mean1 +. (d *. fn2 /. fn), m2a +. m2b +. (d *. d *. fn1 *. fn2 /. fn))
  end

let mean_se (n, mean, m2) =
  let se =
    if n >= 2 then sqrt (m2 /. float_of_int (n - 1) /. float_of_int n)
    else infinity
  in
  (mean, se)

let count_task trials counts i () =
  let t = trials.(i) in
  let s = ref 0 in
  for _ = 1 to counts.(i) do
    if t () then incr s
  done;
  !s

let bernoulli_fixed ~jobs ~shards ~seed ~n ~make_trial =
  let trials = Array.map make_trial (shard_streams ~seed ~shards) in
  let counts = shard_counts n shards in
  let tasks = Array.init shards (count_task trials counts) in
  Array.fold_left ( + ) 0 (Par.run ~jobs tasks)

(* Multi-threshold Bernoulli: one sample stream, one success counter
   per target.  Each trial draws exactly one sample (same draws as a
   single-target [bernoulli_fixed] whose trial is [sample () <= t]),
   so per-target counts are bit-identical to separate single-target
   runs at the same (seed, shards, n) — a T_target sweep pays for the
   sampling once. *)
let bernoulli_fixed_multi ~jobs ~shards ~seed ~n ~make_sample ~targets =
  let samplers = Array.map make_sample (shard_streams ~seed ~shards) in
  let counts = shard_counts n shards in
  let nt = Array.length targets in
  let tasks =
    Array.init shards (fun i () ->
        let s = samplers.(i) in
        let succ = Array.make nt 0 in
        for _ = 1 to counts.(i) do
          let x = s () in
          for k = 0 to nt - 1 do
            if x <= targets.(k) then succ.(k) <- succ.(k) + 1
          done
        done;
        succ)
  in
  let per_shard = Par.run ~jobs tasks in
  Array.init nt (fun k ->
      Array.fold_left (fun acc succ -> acc + succ.(k)) 0 per_shard)

let bernoulli_adaptive ~jobs ~shards ~seed ~batch ~min_samples ~rel_se_target
    ~max_samples ~make_trial =
  let trials = Array.map make_trial (shard_streams ~seed ~shards) in
  let successes = ref 0 and drawn = ref 0 in
  let stop = ref None in
  while !stop = None do
    let round = min batch (max_samples - !drawn) in
    let counts = shard_counts round shards in
    let tasks = Array.init shards (count_task trials counts) in
    Array.iter (fun s -> successes := !successes + s) (Par.run ~jobs tasks);
    drawn := !drawn + round;
    let fn = float_of_int !drawn in
    let p = float_of_int !successes /. fn in
    let se = sqrt (Float.max 0.0 (p *. (1.0 -. p)) /. fn) in
    if !drawn >= min_samples && p > 0.0 && se /. p <= rel_se_target then
      stop := Some Converged
    else if !drawn >= max_samples then stop := Some Sample_cap
  done;
  let stop = match !stop with Some s -> s | None -> assert false in
  (!successes, !drawn, stop)

let moments_fixed ~jobs ~shards ~seed ~n ~make_trial =
  let trials = Array.map make_trial (shard_streams ~seed ~shards) in
  let counts = shard_counts n shards in
  let tasks =
    Array.init shards (fun i () ->
        let t = trials.(i) in
        let m = moments_create () in
        for _ = 1 to counts.(i) do
          moments_add m (t ())
        done;
        (m.m_n, m.m_mean, m.m_m2))
  in
  Array.fold_left moments_merge (0, 0.0, 0.0) (Par.run ~jobs tasks)

let moments_adaptive ~jobs ~shards ~seed ~batch ~min_samples ~rel_se_target
    ~max_samples ~make_trial =
  let trials = Array.map make_trial (shard_streams ~seed ~shards) in
  let accs = Array.init shards (fun _ -> moments_create ()) in
  let drawn = ref 0 in
  let merged = ref (0, 0.0, 0.0) in
  let stop = ref None in
  while !stop = None do
    let round = min batch (max_samples - !drawn) in
    let counts = shard_counts round shards in
    let tasks =
      Array.init shards (fun i () ->
          let t = trials.(i) and m = accs.(i) in
          for _ = 1 to counts.(i) do
            moments_add m (t ())
          done;
          (m.m_n, m.m_mean, m.m_m2))
    in
    let snaps = Par.run ~jobs tasks in
    drawn := !drawn + round;
    merged := Array.fold_left moments_merge (0, 0.0, 0.0) snaps;
    let mean, se = mean_se !merged in
    if
      !drawn >= min_samples
      && Float.abs mean > 0.0
      && se /. Float.abs mean <= rel_se_target
    then stop := Some Converged
    else if !drawn >= max_samples then stop := Some Sample_cap
  done;
  let stop = match !stop with Some s -> s | None -> assert false in
  (!merged, stop)

let fill_fixed ~jobs ~shards ~seed ~n ~make_trial =
  let trials = Array.map make_trial (shard_streams ~seed ~shards) in
  let counts = shard_counts n shards in
  let offsets = Array.make shards 0 in
  for i = 1 to shards - 1 do
    offsets.(i) <- offsets.(i - 1) + counts.(i - 1)
  done;
  let out = Array.make n 0.0 in
  let tasks =
    Array.init shards (fun i () ->
        let t = trials.(i) in
        for k = offsets.(i) to offsets.(i) + counts.(i) - 1 do
          out.(k) <- t ()
        done)
  in
  ignore (Par.run ~jobs tasks : unit array);
  out

(* ---- estimators ------------------------------------------------------ *)

let closed ~method_ value =
  {
    value;
    std_error = 0.0;
    n_samples = 0;
    method_;
    stop = Closed_form;
    hier_bound = None;
    ess = None;
    proposal = None;
  }

(* One importance-sampling run shared by yield and loss: resolves the
   proposal (analyzer cones when requested and available, the legacy
   per-stage mixture otherwise), detects body targets — max whitened
   shift below [Importance.body_shift_threshold], where mean-shifting
   is statistically inert — and falls back to plain Monte-Carlo with
   the explicit [Prop_plain] marker instead of silently degrading
   (DESIGN §8).  Returns the failure probability side; ESS is the
   self-normalised weight diagnostic (sum w)^2 / sum w^2 computed from
   the merged shard moments. *)
let importance_loss ~where ~proposal ~jobs ~shards ~seed ~n ctx ~t_target =
  let jobs = resolve_jobs ~where jobs in
  check_positive ~where "n" n;
  let mvn = Ctx.mvn ctx in
  let cone_shifts =
    match proposal with
    | Legacy -> None
    | Cone_guided -> (
        match !proposal_provider with
        | None -> None
        | Some f -> f ctx ~t_target)
  in
  let plan =
    match cone_shifts with
    | Some (shifts, alphas) ->
        Spv_stats.Importance.plan ~z_shifts:shifts ~z_alphas:alphas mvn
          ~threshold:t_target
    | None -> Spv_stats.Importance.plan mvn ~threshold:t_target
  in
  if
    Spv_stats.Importance.max_shift_norm plan
    < Spv_stats.Importance.body_shift_threshold
  then begin
    (* Body target: every useful shift is ~0, so reweighted sampling
       is plain sampling with extra variance in the bookkeeping.  Run
       the plain Bernoulli estimator and say so. *)
    let make_trial rng () = Mvn.sample_max mvn rng > t_target in
    let fails = bernoulli_fixed ~jobs ~shards ~seed ~n ~make_trial in
    let p = float_of_int fails /. float_of_int n in
    let se = sqrt (Float.max 0.0 (p *. (1.0 -. p)) /. float_of_int n) in
    (p, se, float_of_int fails, Prop_plain)
  end
  else begin
    let make_trial rng () = Spv_stats.Importance.draw_weight plan rng in
    let n_run, mean, m2 = moments_fixed ~jobs ~shards ~seed ~n ~make_trial in
    let p_fail, se = mean_se (n_run, mean, m2) in
    let se = if Float.is_finite se then se else 0.0 in
    let fn = float_of_int n_run in
    let sum = fn *. mean in
    let sum_sq = m2 +. (fn *. mean *. mean) in
    let ess = if sum_sq > 0.0 then sum *. sum /. sum_sq else 0.0 in
    let used =
      match cone_shifts with
      | Some (shifts, _) -> Prop_cone (Array.length shifts)
      | None -> Prop_legacy
    in
    (p_fail, se, ess, used)
  end

let cdf0 g t = if G.sigma g = 0.0 then (if G.mu g <= t then 1.0 else 0.0) else G.cdf g t
let sf0 g t = if G.sigma g = 0.0 then (if G.mu g <= t then 0.0 else 1.0) else G.sf g t
let clark_yield ctx ~t_target = cdf0 (Ctx.delay_distribution ctx) t_target

(* ---- flat-vs-hierarchical error bounds ------------------------------- *)

(* In hierarchical mode the estimate carries the model gap between the
   context's flat reference (memoised critical-path analyses) and the
   macro-composed model it actually evaluated, measured in the same
   closed-form family as the estimator: the Clark Gaussian for clark
   and the sampling methods (which draw from that model's MVN), the
   independent product for the exact-independent method, quadrature for
   quadrature.  For closed forms the reported flat and hierarchical
   values differ by exactly this gap, so the bound is tight by
   construction; sampling estimators add their own noise on top, which
   callers account for with a z * std_error allowance. *)

let abb_closed_policy = { Spv_core.Adaptive.range = 0.0 }

let hier_gap ~flat_value ~hier_value =
  Some (Float.abs (flat_value -. hier_value))

let hier_bound_yield ctx ~method_ ~t_target =
  match Ctx.hier_of ctx with
  | None -> None
  | Some h -> (
      match method_ with
      | Exact_independent ->
          hier_gap
            ~flat_value:
              (Spv_core.Yield.independent_exact h.Ctx.h_flat ~t_target)
            ~hier_value:
              (Spv_core.Yield.independent_exact (Ctx.pipeline ctx) ~t_target)
      | Quadrature ->
          hier_gap
            ~flat_value:
              (Spv_core.Adaptive.yield_with_abb ~policy:abb_closed_policy
                 h.Ctx.h_flat ~t_target)
            ~hier_value:
              (Spv_core.Adaptive.yield_with_abb ~policy:abb_closed_policy
                 (Ctx.pipeline ctx) ~t_target)
      | Analytic_clark | Mc | Adaptive_mc | Importance ->
          hier_gap
            ~flat_value:(cdf0 h.Ctx.h_flat_dist t_target)
            ~hier_value:(cdf0 (Ctx.delay_distribution ctx) t_target))

let hier_bound_loss ctx ~method_ ~t_target =
  match Ctx.hier_of ctx with
  | None -> None
  | Some h -> (
      match method_ with
      | Exact_independent ->
          hier_gap
            ~flat_value:
              (Spv_core.Yield.independent_exact_loss h.Ctx.h_flat ~t_target)
            ~hier_value:
              (Spv_core.Yield.independent_exact_loss (Ctx.pipeline ctx)
                 ~t_target)
      | Quadrature ->
          hier_gap
            ~flat_value:
              (Spv_core.Adaptive.loss_with_abb ~policy:abb_closed_policy
                 h.Ctx.h_flat ~t_target)
            ~hier_value:
              (Spv_core.Adaptive.loss_with_abb ~policy:abb_closed_policy
                 (Ctx.pipeline ctx) ~t_target)
      | Analytic_clark | Mc | Adaptive_mc | Importance ->
          hier_gap
            ~flat_value:(sf0 h.Ctx.h_flat_dist t_target)
            ~hier_value:(sf0 (Ctx.delay_distribution ctx) t_target))

let hier_bound_mean ctx =
  match Ctx.hier_of ctx with
  | None -> None
  | Some h ->
      hier_gap
        ~flat_value:(G.mu h.Ctx.h_flat_dist)
        ~hier_value:(G.mu (Ctx.delay_distribution ctx))

let attach_yield_bound ctx ~method_ ~t_target e =
  { e with hier_bound = hier_bound_yield ctx ~method_ ~t_target }

let attach_loss_bound ctx ~method_ ~t_target e =
  { e with hier_bound = hier_bound_loss ctx ~method_ ~t_target }

let attach_mean_bound ctx e = { e with hier_bound = hier_bound_mean ctx }

let check_target ~where t_target =
  if not (Float.is_finite t_target) then
    invalid_arg (where ^ ": non-finite t_target")

let yield ?(method_ = Adaptive_mc) ?(proposal = Legacy) ?jobs
    ?(shards = default_shards) ?(seed = default_seed) ?(n = 10_000)
    ?(batch = 1024) ?(min_samples = 1000) ?(rel_se_target = 0.01)
    ?(max_samples = 1_000_000) ctx ~t_target =
  let where = "Engine.yield" in
  check_target ~where t_target;
  check_positive ~where "shards" shards;
  postcondition ~where ctx ~t_target:(Some t_target)
  @@ attach_yield_bound ctx ~method_ ~t_target
  @@
  match method_ with
  | Analytic_clark -> closed ~method_ (clark_yield ctx ~t_target)
  | Exact_independent ->
      closed ~method_
        (Spv_core.Yield.independent_exact (Ctx.pipeline ctx) ~t_target)
  | Quadrature ->
      closed ~method_
        (Spv_core.Adaptive.yield_with_abb
           ~policy:{ Spv_core.Adaptive.range = 0.0 } (Ctx.pipeline ctx)
           ~t_target)
  | Mc ->
      let jobs = resolve_jobs ~where jobs in
      check_positive ~where "n" n;
      let mvn = Ctx.mvn ctx in
      let make_trial rng () = Mvn.sample_max mvn rng <= t_target in
      let successes = bernoulli_fixed ~jobs ~shards ~seed ~n ~make_trial in
      let p = float_of_int successes /. float_of_int n in
      let se = sqrt (Float.max 0.0 (p *. (1.0 -. p)) /. float_of_int n) in
      { value = p; std_error = se; n_samples = n; method_; stop = Fixed_n;
        hier_bound = None; ess = None; proposal = None }
  | Adaptive_mc ->
      let jobs = resolve_jobs ~where jobs in
      check_positive ~where "batch" batch;
      check_positive ~where "min_samples" min_samples;
      check_positive ~where "max_samples" max_samples;
      if not (rel_se_target > 0.0) then
        invalid_arg (where ^ ": rel_se_target must be positive");
      let mvn = Ctx.mvn ctx in
      let make_trial rng () = Mvn.sample_max mvn rng <= t_target in
      let successes, drawn, stop =
        bernoulli_adaptive ~jobs ~shards ~seed ~batch ~min_samples
          ~rel_se_target ~max_samples ~make_trial
      in
      let p = float_of_int successes /. float_of_int drawn in
      let se = sqrt (Float.max 0.0 (p *. (1.0 -. p)) /. float_of_int drawn) in
      { value = p; std_error = se; n_samples = drawn; method_; stop;
        hier_bound = None; ess = None; proposal = None }
  | Importance ->
      let p_fail, se, ess, used =
        importance_loss ~where ~proposal ~jobs ~shards ~seed ~n ctx ~t_target
      in
      {
        value = Float.max 0.0 (Float.min 1.0 (1.0 -. p_fail));
        std_error = se;
        n_samples = n;
        method_;
        stop = Fixed_n;
        hier_bound = None;
        ess = Some ess;
        proposal = Some used;
      }

let yield_targets ?(method_ = Adaptive_mc) ?proposal ?jobs
    ?(shards = default_shards) ?(seed = default_seed) ?(n = 10_000) ?batch
    ?min_samples ?rel_se_target ?max_samples ctx ~t_targets =
  let where = "Engine.yield_targets" in
  if Array.length t_targets = 0 then invalid_arg (where ^ ": no targets");
  Array.iter (check_target ~where) t_targets;
  match method_ with
  | Mc when Array.length t_targets > 1 ->
      let jobs = resolve_jobs ~where jobs in
      check_positive ~where "shards" shards;
      check_positive ~where "n" n;
      let mvn = Ctx.mvn ctx in
      let make_sample rng () = Mvn.sample_max mvn rng in
      let successes =
        bernoulli_fixed_multi ~jobs ~shards ~seed ~n ~make_sample
          ~targets:t_targets
      in
      Array.mapi
        (fun k s ->
          let p = float_of_int s /. float_of_int n in
          let se = sqrt (Float.max 0.0 (p *. (1.0 -. p)) /. float_of_int n) in
          postcondition ~where ctx ~t_target:(Some t_targets.(k))
            {
              value = p;
              std_error = se;
              n_samples = n;
              method_;
              stop = Fixed_n;
              hier_bound =
                hier_bound_yield ctx ~method_ ~t_target:t_targets.(k);
              ess = None;
              proposal = None;
            })
        successes
  | _ ->
      Array.map
        (fun t_target ->
          yield ~method_ ?proposal ?jobs ~shards ~seed ~n ?batch ?min_samples
            ?rel_se_target ?max_samples ctx ~t_target)
        t_targets

let clark_loss ctx ~t_target =
  let g = Ctx.delay_distribution ctx in
  if G.sigma g = 0.0 then if G.mu g <= t_target then 0.0 else 1.0
  else G.sf g t_target

let yield_loss ?(method_ = Adaptive_mc) ?(proposal = Legacy) ?jobs
    ?(shards = default_shards) ?(seed = default_seed) ?(n = 10_000)
    ?(batch = 1024) ?(min_samples = 1000) ?(rel_se_target = 0.01)
    ?(max_samples = 1_000_000) ctx ~t_target =
  let where = "Engine.yield_loss" in
  check_target ~where t_target;
  check_positive ~where "shards" shards;
  (* No [postcondition] here: registered oracles check *yield*
     semantics (interval bounds on P_D) and would falsely fire on a
     loss value. *)
  attach_loss_bound ctx ~method_ ~t_target
  @@
  match method_ with
  | Analytic_clark -> closed ~method_ (clark_loss ctx ~t_target)
  | Exact_independent ->
      closed ~method_
        (Spv_core.Yield.independent_exact_loss (Ctx.pipeline ctx) ~t_target)
  | Quadrature ->
      closed ~method_
        (Spv_core.Adaptive.loss_with_abb
           ~policy:{ Spv_core.Adaptive.range = 0.0 } (Ctx.pipeline ctx)
           ~t_target)
  | Mc ->
      let jobs = resolve_jobs ~where jobs in
      check_positive ~where "n" n;
      let mvn = Ctx.mvn ctx in
      let make_trial rng () = Mvn.sample_max mvn rng > t_target in
      let fails = bernoulli_fixed ~jobs ~shards ~seed ~n ~make_trial in
      let p = float_of_int fails /. float_of_int n in
      let se = sqrt (Float.max 0.0 (p *. (1.0 -. p)) /. float_of_int n) in
      { value = p; std_error = se; n_samples = n; method_; stop = Fixed_n;
        hier_bound = None; ess = None; proposal = None }
  | Adaptive_mc ->
      let jobs = resolve_jobs ~where jobs in
      check_positive ~where "batch" batch;
      check_positive ~where "min_samples" min_samples;
      check_positive ~where "max_samples" max_samples;
      if not (rel_se_target > 0.0) then
        invalid_arg (where ^ ": rel_se_target must be positive");
      let mvn = Ctx.mvn ctx in
      let make_trial rng () = Mvn.sample_max mvn rng > t_target in
      let fails, drawn, stop =
        bernoulli_adaptive ~jobs ~shards ~seed ~batch ~min_samples
          ~rel_se_target ~max_samples ~make_trial
      in
      let p = float_of_int fails /. float_of_int drawn in
      let se = sqrt (Float.max 0.0 (p *. (1.0 -. p)) /. float_of_int drawn) in
      { value = p; std_error = se; n_samples = drawn; method_; stop;
        hier_bound = None; ess = None; proposal = None }
  | Importance ->
      let p_fail, se, ess, used =
        importance_loss ~where ~proposal ~jobs ~shards ~seed ~n ctx ~t_target
      in
      {
        value = Float.max 0.0 (Float.min 1.0 p_fail);
        std_error = se;
        n_samples = n;
        method_;
        stop = Fixed_n;
        hier_bound = None;
        ess = Some ess;
        proposal = Some used;
      }

let delay_mean ?(method_ = Adaptive_mc) ?jobs ?(shards = default_shards)
    ?(seed = default_seed) ?(n = 10_000) ?(batch = 1024) ?(min_samples = 1000)
    ?(rel_se_target = 0.01) ?(max_samples = 1_000_000) ctx =
  let where = "Engine.delay_mean" in
  check_positive ~where "shards" shards;
  postcondition ~where ctx ~t_target:None
  @@ attach_mean_bound ctx
  @@
  match method_ with
  | Analytic_clark -> closed ~method_ (G.mu (Ctx.delay_distribution ctx))
  | Mc ->
      let jobs = resolve_jobs ~where jobs in
      check_positive ~where "n" n;
      let mvn = Ctx.mvn ctx in
      let make_trial rng () = Mvn.sample_max mvn rng in
      let merged = moments_fixed ~jobs ~shards ~seed ~n ~make_trial in
      let mean, se = mean_se merged in
      let se = if Float.is_finite se then se else 0.0 in
      { value = mean; std_error = se; n_samples = n; method_; stop = Fixed_n;
        hier_bound = None; ess = None; proposal = None }
  | Adaptive_mc ->
      let jobs = resolve_jobs ~where jobs in
      check_positive ~where "batch" batch;
      check_positive ~where "min_samples" min_samples;
      check_positive ~where "max_samples" max_samples;
      if not (rel_se_target > 0.0) then
        invalid_arg (where ^ ": rel_se_target must be positive");
      let mvn = Ctx.mvn ctx in
      let make_trial rng () = Mvn.sample_max mvn rng in
      let merged, stop =
        moments_adaptive ~jobs ~shards ~seed ~batch ~min_samples
          ~rel_se_target ~max_samples ~make_trial
      in
      let (drawn, _, _) = merged in
      let mean, se = mean_se merged in
      let se = if Float.is_finite se then se else 0.0 in
      { value = mean; std_error = se; n_samples = drawn; method_; stop;
        hier_bound = None; ess = None; proposal = None }
  | (Exact_independent | Importance | Quadrature) as m ->
      invalid_arg
        (Printf.sprintf "%s: method %s unsupported (use clark, mc or adaptive)"
           where (method_name m))

let sample_delays ?jobs ?(shards = default_shards) ?(seed = default_seed) ctx
    ~n =
  let where = "Engine.sample_delays" in
  let jobs = resolve_jobs ~where jobs in
  check_positive ~where "shards" shards;
  check_positive ~where "n" n;
  let mvn = Ctx.mvn ctx in
  let make_trial rng () = Mvn.sample_max mvn rng in
  fill_fixed ~jobs ~shards ~seed ~n ~make_trial

let gate_sampler ~where ?exact ctx =
  let g = Ctx.require_gate ~where ctx in
  fun () ->
    Ssta.sampler ~output_load:g.Ctx.output_load ?exact ~pitch:g.Ctx.pitch
      ?ff:g.Ctx.ff ?active:g.Ctx.prune g.Ctx.tech g.Ctx.nets

let gate_level_delays ?exact ?jobs ?(shards = default_shards)
    ?(seed = default_seed) ctx ~n =
  let where = "Engine.gate_level_delays" in
  let jobs = resolve_jobs ~where jobs in
  check_positive ~where "shards" shards;
  check_positive ~where "n" n;
  let fresh_sampler = gate_sampler ~where ?exact ctx in
  let make_trial rng =
    let smp = fresh_sampler () in
    fun () -> Ssta.draw_pipeline_delay smp rng
  in
  fill_fixed ~jobs ~shards ~seed ~n ~make_trial

let gate_level_stage_samples ?exact ?jobs ?(shards = default_shards)
    ?(seed = default_seed) ctx ~n =
  let where = "Engine.gate_level_stage_samples" in
  let jobs = resolve_jobs ~where jobs in
  check_positive ~where "shards" shards;
  check_positive ~where "n" n;
  let fresh_sampler = gate_sampler ~where ?exact ctx in
  let stages = Ctx.n_stages ctx in
  let out = Array.init stages (fun _ -> Array.make n 0.0) in
  let streams = shard_streams ~seed ~shards in
  let counts = shard_counts n shards in
  let offsets = Array.make shards 0 in
  for i = 1 to shards - 1 do
    offsets.(i) <- offsets.(i - 1) + counts.(i - 1)
  done;
  let tasks =
    Array.init shards (fun i () ->
        let smp = fresh_sampler () and rng = streams.(i) in
        for k = offsets.(i) to offsets.(i) + counts.(i) - 1 do
          let delays = Ssta.draw_stage_delays smp rng in
          for s = 0 to stages - 1 do
            out.(s).(k) <- delays.(s)
          done
        done)
  in
  ignore (Par.run ~jobs tasks : unit array);
  out

let abb_mc_yield ?policy ?jobs ?(shards = default_shards)
    ?(seed = default_seed) ctx ~n ~t_target =
  let where = "Engine.abb_mc_yield" in
  check_target ~where t_target;
  let jobs = resolve_jobs ~where jobs in
  check_positive ~where "shards" shards;
  check_positive ~where "n" n;
  let sm = Spv_core.Adaptive.sampler ?policy (Ctx.pipeline ctx) in
  let make_trial rng () = Spv_core.Adaptive.sample_delay sm rng <= t_target in
  let successes = bernoulli_fixed ~jobs ~shards ~seed ~n ~make_trial in
  let p = float_of_int successes /. float_of_int n in
  let se = sqrt (Float.max 0.0 (p *. (1.0 -. p)) /. float_of_int n) in
  {
    value = p;
    std_error = se;
    n_samples = n;
    method_ = Mc;
    stop = Fixed_n;
    hier_bound = None;
    ess = None;
    proposal = None;
  }
