(** Deterministic fork/join over OCaml 5 domains.

    A tiny static scheduler: [run ~jobs tasks] executes every task
    exactly once, on at most [jobs] domains, and returns the results in
    task order.  Task assignment is static (round-robin), so which
    domain runs which task is a pure function of [(jobs, n_tasks)] —
    but, more importantly, each task owns its state and its result
    slot, so the {e results} never depend on [jobs] at all.  The
    engine exploits this: its Monte-Carlo shards are tasks, hence
    [jobs = 1] and [jobs = 4] are bit-for-bit identical. *)

val default_jobs : unit -> int
(** Worker count used when a caller does not say: the [SPV_JOBS]
    environment variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val run : jobs:int -> (unit -> 'a) array -> 'a array
(** [run ~jobs tasks] runs every task once and returns their results
    in task order.  [jobs <= 1] runs sequentially on the calling
    domain (no spawns); otherwise [min jobs (Array.length tasks) - 1]
    helper domains are spawned.  If any task raises, all domains are
    still joined and the first exception (in task order: calling
    domain first, then helpers) is re-raised.  Raises
    [Invalid_argument] when [jobs <= 0]. *)
