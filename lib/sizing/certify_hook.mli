(** Sizing-result certificate hook — the always-on sizer exit
    criterion.

    Mirrors the engine's [SPV_DEBUG_BOUNDS] postcondition pattern: the
    analysis layer registers a certificate oracle here (a function
    pointer, so sizing does not depend on analysis).  The hook is
    {e enabled by default}; setting the [SPV_CERTIFY_SIZING]
    environment variable to [""]/["0"] at startup (or calling
    [set_enabled false]) opts out globally, and the sizers'
    [?certify:false] argument opts out for a single call.  When
    enabled, every {!Lagrangian.size_stage} / {!Greedy.size_stage}
    report is handed to the oracle before being returned.  A refuted
    certificate raises
    [Failure "<where>: sizing certificate refuted: <msg>"].

    [Spv_analysis.Certify.install_sizing_check] registers the
    eq. 10–13 design-space membership check. *)

type check =
  where:string ->
  t_target:float ->
  z:float ->
  converged:bool ->
  mu:float ->
  sigma:float ->
  (unit, string) result
(** [mu]/[sigma] describe the achieved stage-delay Gaussian; [z] is
    the sizer's yield quantile; [converged] is the sizer's own
    verdict (oracles typically skip unconverged reports — the sizer
    already signals failure through them). *)

val register : check -> unit
(** Install (or replace) the certificate oracle. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val postcondition :
  where:string ->
  t_target:float ->
  z:float ->
  converged:bool ->
  mu:float ->
  sigma:float ->
  unit
(** Run the registered oracle when enabled; raises [Failure] on a
    refuted certificate.  Called by the sizers on every report. *)
