(** Sensitivity-pruning hook for the sizers.

    Mirrors {!Certify_hook}: the analysis layer registers function
    pointers here ([Spv_analysis.Dominance.install_sizing_prune]), so
    sizing never depends on analysis.  Two providers:

    - a {e move pruner} consulted by {!Greedy.size_stage} before each
      candidate sweep — it may mark moves whose certified sensitivity
      enclosure proves they can never be the accepted move, and the
      sizer then skips their trial SSTA evaluations;
    - a {e yield-skip} test consulted by {!Global_opt.ensure_yield}
      before each stage tightening probe — it may prove, from a
      certified yield upper bound over the whole sizing box, that the
      probe cannot be accepted, and the optimiser then skips the
      snapshot / re-size / refresh / restore round trip.

    Both providers are required to be {e result-transparent}: pruning
    only ever skips work the concrete sizer would have rejected, so
    reports are byte-identical with the hook installed or not.  With
    the [SPV_DEBUG_SENSITIVITY] environment variable set (anything but
    [""]/["0"]), {!Greedy.size_stage} re-evaluates the full unpruned
    move set after each sweep and raises [Failure] if the accepted
    move differs — the same debug-oracle pattern as the engine's
    [SPV_DEBUG_BOUNDS].

    The {!stats} counters let benchmarks and CI observe how much work
    pruning saved without perturbing the sizer reports themselves. *)

type move = {
  mv_node : int;  (** the gate being upsized *)
  mv_from : float;  (** current size *)
  mv_to : float;  (** proposed size (> [mv_from]) *)
  mv_darea : float;  (** area cost of the move *)
}

type prune_env = {
  pe_tech : Spv_process.Tech.t;
  pe_net : Spv_circuit.Netlist.t;
  pe_output_load : float;
  pe_ff : Spv_process.Flipflop.t option;
  pe_z : float;  (** the sizer's statistical-delay quantile *)
}

type yield_skip_env = {
  ye_ctx : Spv_engine.Engine.Ctx.t;
  ye_stage : int;
  ye_t_target : float;
  ye_current : float;  (** pipeline yield the probe must strictly beat *)
  ye_independent : bool;  (** true = independent product, false = Clark *)
  ye_min_size : float;
  ye_max_size : float;
}

val register_move_prune : (prune_env -> move list -> bool array) -> unit
(** The returned array is parallel to the move list; [true] means the
    move is certified to never be accepted and may be skipped. *)

val register_yield_skip : (yield_skip_env -> bool) -> unit
(** [true] means the stage probe is certified to be rejected. *)

val move_prune : unit -> (prune_env -> move list -> bool array) option
val yield_skip : unit -> (yield_skip_env -> bool) option
(** [None] when no provider is registered or pruning is disabled. *)

val set_enabled : bool -> unit
(** Gate both providers without unregistering them (benchmarks toggle
    this to compare pruned vs unpruned runs).  Default: enabled. *)

val is_enabled : unit -> bool

val debug_cross_check : unit -> bool
(** True when [SPV_DEBUG_SENSITIVITY] was set at startup (anything but
    [""]/["0"]) or forced via {!set_debug_cross_check}. *)

val set_debug_cross_check : bool -> unit

(** Work counters, reset with {!reset_stats}.  Kept here — not in the
    sizer reports — so pruning cannot perturb report equality. *)
type stats = {
  mutable moves_evaluated : int;  (** trial SSTA evaluations run *)
  mutable moves_pruned : int;  (** trial evaluations skipped *)
  mutable probes_run : int;  (** global-sizer stage probes run *)
  mutable probes_skipped : int;  (** stage probes skipped *)
}

val stats : stats
val reset_stats : unit -> unit
