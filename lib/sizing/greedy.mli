(** TILOS-style greedy sensitivity sizing — the classic baseline the
    Lagrangian sizer is measured against.

    Starting from minimum sizes, repeatedly upsize the gate on the
    statistical critical path with the best delay-per-area sensitivity
    (evaluated by trial: bump the gate, re-run timing) until the target
    [mu + z sigma <= t_target] is met or no move helps.  Monotone and
    robust, and competitive on loose targets — but greedy: single-gate
    moves cannot make the coordinated multi-gate changes aggressive
    targets need, so it stalls (converged = false) where the Lagrangian
    relaxation still closes the constraint. *)

type options = {
  min_size : float;
  max_size : float;
  step : float;  (** multiplicative upsize factor per move (default 1.3) *)
  max_moves : int;  (** default 2000 *)
  output_load : float;
}

val default_options : options

type report = {
  moves : int;
  converged : bool;
  achieved : Spv_process.Gate_delay.t;
  stat_delay : float;
  area : float;
}

val size_stage :
  ?options:options -> ?ff:Spv_process.Flipflop.t -> ?certify:bool ->
  Spv_process.Tech.t -> Spv_circuit.Netlist.t -> t_target:float -> z:float ->
  report
(** Size in place (resets to minimum sizes first, like the LR sizer).

    When a {!Sens_hook} move pruner is installed, candidate moves whose
    certified sensitivity enclosure proves they cannot be accepted are
    skipped without a trial SSTA evaluation; the accepted moves — and
    hence the report — are identical either way (asserted under
    [SPV_DEBUG_SENSITIVITY]).  [certify] (default [true]) gates the
    {!Certify_hook} exit-criterion check for this call. *)

val compare_with_lagrangian :
  ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t -> Spv_circuit.Netlist.t ->
  t_target:float -> z:float -> report * Lagrangian.report
(** Run both sizers on copies of the same problem (the netlist is left
    with the Lagrangian result, matching that sizer's contract). *)
