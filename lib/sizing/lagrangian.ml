module Net = Spv_circuit.Netlist
module Sta = Spv_circuit.Sta
module Cell = Spv_circuit.Cell
module Gd = Spv_process.Gate_delay

type options = {
  min_size : float;
  max_size : float;
  max_iterations : int;
  tolerance : float;
  theta_fraction : float;
  output_load : float;
  wire : Spv_circuit.Wire.model option;
}

let default_options =
  {
    min_size = 1.0;
    max_size = 16.0;
    max_iterations = 120;
    tolerance = 5e-3;
    theta_fraction = 0.05;
    output_load = 4.0;
    wire = None;
  }

type report = {
  iterations : int;
  converged : bool;
  achieved : Gd.t;
  stat_delay : float;
  area : float;
  lambda : float;
}

let analyse ?options ?ff tech net =
  let options = Option.value options ~default:default_options in
  match options.wire with
  | None ->
      (Spv_circuit.Ssta.analyse_stage ~output_load:options.output_load ?ff tech
         net)
        .Spv_circuit.Ssta.total
  | Some wire ->
      (* Wire-aware: compose the decomposition along the wire-aware
         critical path (wire delay carries the same relative process
         sensitivity as the gate driving it - first order). *)
      let sta = Sta.run ~output_load:options.output_load ~wire tech net in
      let comb =
        List.fold_left
          (fun acc i ->
            let d = sta.Sta.gate_delays.(i) in
            Gd.add acc
              (Gd.of_nominal tech ~nominal:d ~size:(Net.size net i)))
          Gd.zero sta.Sta.critical_path
      in
      (match ff with
      | None -> comb
      | Some ff -> Gd.add comb (Spv_process.Flipflop.overhead ff))

let statistical_delay ?options ?ff tech net ~z =
  let total = analyse ?options ?ff tech net in
  total.Gd.nominal +. (z *. Gd.total_sigma total)

(* Backward pass: required times and slacks given an STA result.  The
   required time at every primary output is the overall delay, so the
   global critical path has zero slack. *)
let slacks net (sta : Sta.result) =
  let n = Net.n_nodes net in
  let required = Array.make n infinity in
  Array.iter (fun o -> required.(o) <- sta.Sta.delay) (Net.outputs net);
  for i = n - 1 downto 0 do
    List.iter
      (fun j ->
        let candidate = required.(j) -. sta.Sta.gate_delays.(j) in
        if candidate < required.(i) then required.(i) <- candidate)
      (Net.fanouts net i)
  done;
  Array.init n (fun i ->
      if required.(i) = infinity then infinity
      else required.(i) -. sta.Sta.arrival.(i))

let size_stage ?options ?ff ?(certify = true) tech net ~t_target ~z =
  let opts = Option.value options ~default:default_options in
  if t_target <= 0.0 then invalid_arg "Lagrangian.size_stage: t_target <= 0";
  let gate_ids = Net.gate_ids net in
  (* Fresh start from minimum sizes keeps runs deterministic and
     reproducible regardless of the netlist's previous state. *)
  Array.iter (fun i -> Net.set_size net i opts.min_size) gate_ids;
  let tau = tech.Spv_process.Tech.tau in
  let stat () = statistical_delay ~options:opts ?ff tech net ~z in
  let best_sizes = ref (Net.sizes_snapshot net) in
  let best_feasible = ref None in
  let best_delay = ref (stat ()) in
  let lambda = ref 1.0 in
  let iterations = ref 0 in
  let is_output = Array.make (Net.n_nodes net) false in
  Array.iter (fun o -> is_output.(o) <- true) (Net.outputs net);
  let clamp x = Float.max opts.min_size (Float.min opts.max_size x) in
  (try
     for iter = 1 to opts.max_iterations do
       iterations := iter;
       let sta = Sta.run ~output_load:opts.output_load ?wire:opts.wire tech net in
       let slack = slacks net sta in
       let theta = Float.max (opts.theta_fraction *. sta.Sta.delay) 1e-9 in
       let weight i =
         if slack.(i) = infinity then 0.0 else exp (-.slack.(i) /. theta)
       in
       (* Gauss-Seidel coordinate pass in reverse topological order:
          loads of downstream gates are already refreshed when their
          drivers update. *)
       for k = Array.length gate_ids - 1 downto 0 do
         let i = gate_ids.(k) in
         match Net.node net i with
         | Net.Primary_input _ -> ()
         | Net.Gate { kind; fanin } ->
             let area_coeff = Cell.area_per_size kind in
             let g_i = Cell.logical_effort kind in
             let fanin_pressure =
               Array.fold_left
                 (fun acc f ->
                   if Net.is_gate net f then
                     acc +. (weight f *. g_i /. Net.size net f)
                   else acc)
                 0.0 fanin
             in
             (* Refresh this gate's load under current fanout sizes. *)
             let load =
               List.fold_left
                 (fun acc j ->
                   match Net.node net j with
                   | Net.Gate { kind = kj; _ } ->
                       acc +. Cell.input_cap kj ~size:(Net.size net j)
                   | Net.Primary_input _ -> acc)
                 (if is_output.(i) then opts.output_load else 0.0)
                 (Net.fanouts net i)
             in
             let numerator = !lambda *. tau *. weight i *. load in
             let denominator =
               area_coeff +. (!lambda *. tau *. fanin_pressure)
             in
             let x_star =
               if numerator <= 0.0 then opts.min_size
               else sqrt (numerator /. denominator)
             in
             let x_new = clamp (0.5 *. (Net.size net i +. x_star)) in
             Net.set_size net i x_new
       done;
       let d = stat () in
       let area = Net.area net in
       (match !best_feasible with
       | Some (_, best_area) when d <= t_target && area < best_area ->
           best_feasible := Some (Net.sizes_snapshot net, area)
       | None when d <= t_target ->
           best_feasible := Some (Net.sizes_snapshot net, area)
       | _ -> ());
       if d < !best_delay then begin
         best_delay := d;
         best_sizes := Net.sizes_snapshot net
       end;
       (* Multiplicative subgradient on the dual variable. *)
       let ratio = d /. t_target in
       let factor = Float.max 0.5 (Float.min 2.0 (ratio *. ratio)) in
       lambda := Float.max 1e-6 (Float.min 1e9 (!lambda *. factor));
       if
         abs_float (d -. t_target) /. t_target < opts.tolerance
         && !best_feasible <> None && iter > 10
       then raise Exit
     done
   with Exit -> ());
  (match !best_feasible with
  | Some (sizes, _) -> Net.restore_sizes net sizes
  | None -> Net.restore_sizes net !best_sizes);
  let achieved = analyse ~options:opts ?ff tech net in
  let stat_delay = achieved.Gd.nominal +. (z *. Gd.total_sigma achieved) in
  let converged = stat_delay <= t_target *. (1.0 +. opts.tolerance) in
  let g = Gd.to_gaussian achieved in
  if certify then
    Certify_hook.postcondition ~where:"Lagrangian.size_stage" ~t_target ~z
      ~converged ~mu:g.Spv_stats.Gaussian.mu ~sigma:g.Spv_stats.Gaussian.sigma;
  {
    iterations = !iterations;
    converged;
    achieved;
    stat_delay;
    area = Net.area net;
    lambda = !lambda;
  }

let minimum_achievable_delay ?options ?ff tech net ~z =
  let snapshot = Net.sizes_snapshot net in
  let opts = Option.value options ~default:default_options in
  (* An unreachable target drives the sizer to its fastest design. *)
  let tiny = 1e-3 in
  let report = size_stage ~options:opts ?ff tech net ~t_target:tiny ~z in
  Net.restore_sizes net snapshot;
  report.stat_delay

let relaxed_delay ?options ?ff tech net ~z =
  let opts = Option.value options ~default:default_options in
  let snapshot = Net.sizes_snapshot net in
  Array.iter
    (fun i -> Net.set_size net i opts.min_size)
    (Net.gate_ids net);
  let d = statistical_delay ~options:opts ?ff tech net ~z in
  Net.restore_sizes net snapshot;
  d
