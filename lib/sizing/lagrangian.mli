(** Gate sizing under a statistical delay constraint — a
    Lagrangian-relaxation reimplementation in the spirit of Choi et al.
    (DAC 2004), the per-stage sizer the paper uses as its inner loop.

    Problem: minimise [sum_i area_i * x_i] subject to
    [mu(x) + z * sigma(x) <= t_target] and [l <= x_i <= u], where
    (mu, sigma) is the statistical delay of the stage's critical region
    and [z = Phi^-1(stage yield target)].

    Method: iterate a fixed-lambda coordinate relaxation with a
    subgradient lambda update.  For the Lagrangian
    [L = sum a_i x_i + lambda (D(x) - T)], the stationarity condition
    for a gate weighted by its timing criticality [w_i] gives

    [x_i = sqrt (lambda * tau * w_i * load_i
                 / (a_i + lambda * tau * sum_{f in fanin} w_f g_i / x_f))]

    where criticality weights [w_i = exp(-slack_i / theta)] smooth the
    discrete critical path (a pure critical-path formulation oscillates).
    Lambda follows a multiplicative subgradient update.  All updates
    mutate the netlist's sizes in place. *)

type options = {
  min_size : float;  (** lower bound l (default 1.0) *)
  max_size : float;  (** upper bound u (default 16.0) *)
  max_iterations : int;  (** default 120 *)
  tolerance : float;  (** relative constraint tolerance (default 5e-3) *)
  theta_fraction : float;
      (** criticality temperature as a fraction of current delay
          (default 0.05) *)
  output_load : float;  (** load on primary outputs (default 4.0) *)
  wire : Spv_circuit.Wire.model option;
      (** RC interconnect model; [None] (default) reproduces the
          paper's gate-only formulation *)
}

val default_options : options

type report = {
  iterations : int;
  converged : bool;  (** constraint met within tolerance at finish *)
  achieved : Spv_process.Gate_delay.t;  (** stage delay after sizing *)
  stat_delay : float;  (** mu + z sigma after sizing *)
  area : float;
  lambda : float;
}

val statistical_delay :
  ?options:options -> ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
  Spv_circuit.Netlist.t -> z:float -> float
(** Current [mu + z * sigma] of the stage (analytic SSTA). *)

val size_stage :
  ?options:options -> ?ff:Spv_process.Flipflop.t -> ?certify:bool ->
  Spv_process.Tech.t -> Spv_circuit.Netlist.t -> t_target:float -> z:float ->
  report
(** Size the netlist in place for [mu + z sigma <= t_target] with
    minimum area.  If the target is unreachable even at maximum sizes,
    returns [converged = false] with the best effort found.  [certify]
    (default [true]) gates the {!Certify_hook} exit-criterion check
    for this call. *)

val minimum_achievable_delay :
  ?options:options -> ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
  Spv_circuit.Netlist.t -> z:float -> float
(** Statistical delay when the sizer is pushed as fast as it will go
    (sizes restored afterwards). *)

val relaxed_delay :
  ?options:options -> ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
  Spv_circuit.Netlist.t -> z:float -> float
(** Statistical delay with every gate at minimum size (sizes restored
    afterwards) — the slow end of the area-delay curve. *)
