module Net = Spv_circuit.Netlist
module Yield = Spv_core.Yield
module Balance = Spv_core.Balance
module Engine = Spv_engine.Engine

let log_src = Logs.Src.create "spv.global_opt" ~doc:"Fig. 9 global optimiser"

module Log = (val Logs.src_log log_src : Logs.LOG)

type yield_model = Independent | Clark_gaussian

type result = {
  nets : Net.t array;
  pipeline : Spv_core.Pipeline.t;
  stage_targets : float array;
  stage_areas : float array;
  stage_yields : float array;
  total_area : float;
  pipeline_yield : float;
  order : int array;
}

let ctx_of ?options ?ff ~pitch tech nets =
  let output_load =
    (Option.value options ~default:Lagrangian.default_options)
      .Lagrangian.output_load
  in
  Engine.Ctx.of_circuits ~output_load ~pitch ?ff tech nets

let method_of = function
  | Independent -> Engine.Exact_independent
  | Clark_gaussian -> Engine.Analytic_clark

let eval_yield yield_model ctx ~t_target =
  (Engine.yield ~method_:(method_of yield_model) ctx ~t_target).Engine.value

let build_result ~yield_model ctx nets ~targets ~t_target ~order =
  let pipeline = Engine.Ctx.pipeline ctx in
  {
    nets;
    pipeline;
    stage_targets = Array.copy targets;
    stage_areas = Array.map Net.area nets;
    stage_yields = Yield.stage_yields pipeline ~t_target;
    total_area = Array.fold_left (fun acc n -> acc +. Net.area n) 0.0 nets;
    pipeline_yield = eval_yield yield_model ctx ~t_target;
    order = Array.copy order;
  }

let per_stage_z ~yield_target ~n =
  Spv_stats.Special.big_phi_inv
    (Yield.per_stage_yield_target ~yield:yield_target ~n_stages:n)

let individually_optimised_ctx ?options ?ff ?(pitch = 1.0)
    ?(yield_model = Independent) tech nets ~t_target ~yield_target =
  let n = Array.length nets in
  if n = 0 then invalid_arg "Global_opt: no stages";
  let nets = Array.map Net.copy nets in
  let z = per_stage_z ~yield_target ~n in
  Array.iter
    (fun net -> ignore (Lagrangian.size_stage ?options ?ff tech net ~t_target ~z))
    nets;
  let targets = Array.make n t_target in
  let order = Array.init n (fun i -> i) in
  let ctx = ctx_of ?options ?ff ~pitch tech nets in
  (build_result ~yield_model ctx nets ~targets ~t_target ~order, ctx)

let individually_optimised ?options ?ff ?pitch ?yield_model tech nets ~t_target
    ~yield_target =
  fst
    (individually_optimised_ctx ?options ?ff ?pitch ?yield_model tech nets
       ~t_target ~yield_target)

(* Slope order (eq. 14) from per-stage area-delay curves evaluated at
   each stage's current nominal delay. *)
let ri_order ?options ?ff tech nets ~z ~ascending =
  let n = Array.length nets in
  let ri =
    Array.map
      (fun net ->
        let model = Area_delay.stage_model ?options ?ff ~n_points:7 tech net ~z in
        let current = (Lagrangian.statistical_delay ?options ?ff tech net ~z) in
        let lo, hi = Balance.delay_bounds model in
        let at = Float.max lo (Float.min hi current) in
        Balance.ri model ~delay:at)
      nets
  in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j -> if ascending then compare ri.(i) ri.(j) else compare ri.(j) ri.(i))
    order;
  order

let ensure_yield_ctx ?options ?ff ?(pitch = 1.0) ?(max_rounds = 25)
    ?(tighten = 0.03) ?(yield_model = Independent) tech nets ~t_target
    ~yield_target =
  let base, ctx0 =
    individually_optimised_ctx ?options ?ff ~pitch ~yield_model tech nets
      ~t_target ~yield_target
  in
  let n = Array.length base.nets in
  let z = per_stage_z ~yield_target ~n in
  let nets = base.nets in
  let targets = Array.copy base.stage_targets in
  let min_achievable =
    Array.map
      (fun net -> Lagrangian.minimum_achievable_delay ?options ?ff tech net ~z)
      nets
  in
  let order = ri_order ?options ?ff tech nets ~z ~ascending:true in
  (* The context is refreshed one stage at a time as the optimiser
     mutates gate sizes: each yield probe re-analyses only the touched
     stage instead of rebuilding the whole pipeline. *)
  let ctx = ref ctx0 in
  let refresh s = ctx := Engine.Ctx.refresh_stage !ctx s in
  let pipeline_yield () = eval_yield yield_model !ctx ~t_target in
  let sizing_opts = Option.value options ~default:Lagrangian.default_options in
  (* A rejected probe restores the snapshot and refreshes, leaving the
     context equivalent to never having probed — so a certified proof
     that the probe's yield cannot clear [current +. 1e-9] lets us
     skip the whole snapshot / re-size / refresh round trip without
     changing the result.  The 5e-10 margin keeps the certified test
     strictly inside the concrete acceptance threshold. *)
  let probe_certified_rejected ~current s =
    match Sens_hook.yield_skip () with
    | None -> false
    | Some skip ->
        skip
          {
            Sens_hook.ye_ctx = !ctx;
            ye_stage = s;
            ye_t_target = t_target;
            ye_current = current;
            ye_independent = (yield_model = Independent);
            ye_min_size = sizing_opts.Lagrangian.min_size;
            ye_max_size = sizing_opts.Lagrangian.max_size;
          }
  in
  let rec rounds remaining =
    if remaining = 0 then ()
    else begin
      let current = pipeline_yield () in
      if current >= yield_target then ()
      else begin
        (* One pass over stages, cheapest delay first; accept the first
           move that improves the pipeline yield. *)
        let improved = ref false in
        Array.iter
          (fun s ->
            if not !improved then begin
              let candidate = targets.(s) *. (1.0 -. tighten) in
              if candidate > min_achievable.(s) then begin
                if probe_certified_rejected ~current s then
                  Sens_hook.stats.Sens_hook.probes_skipped <-
                    Sens_hook.stats.Sens_hook.probes_skipped + 1
                else begin
                  Sens_hook.stats.Sens_hook.probes_run <-
                    Sens_hook.stats.Sens_hook.probes_run + 1;
                  let snapshot = Net.sizes_snapshot nets.(s) in
                  ignore
                    (Lagrangian.size_stage ?options ?ff tech nets.(s)
                       ~t_target:candidate ~z);
                  refresh s;
                  let trial = pipeline_yield () in
                  if trial > current +. 1e-9 then begin
                    Log.debug (fun m ->
                        m "tighten stage %d to %.1f ps: yield %.4f -> %.4f" s
                          candidate current trial);
                    targets.(s) <- candidate;
                    improved := true
                  end
                  else begin
                    Net.restore_sizes nets.(s) snapshot;
                    refresh s
                  end
                end
              end
            end)
          order;
        if !improved then rounds (remaining - 1)
      end
    end
  in
  rounds max_rounds;
  (build_result ~yield_model !ctx nets ~targets ~t_target ~order, !ctx)

let ensure_yield ?options ?ff ?pitch ?max_rounds ?tighten ?yield_model tech
    nets ~t_target ~yield_target =
  fst
    (ensure_yield_ctx ?options ?ff ?pitch ?max_rounds ?tighten ?yield_model
       tech nets ~t_target ~yield_target)

let minimise_area ?options ?ff ?(pitch = 1.0) ?(max_rounds = 25) ?(relax = 0.015)
    ?(yield_model = Independent) tech nets ~t_target ~yield_target =
  let ensured, ctx0 =
    ensure_yield_ctx ?options ?ff ~pitch ~max_rounds ~yield_model tech nets
      ~t_target ~yield_target
  in
  let n = Array.length ensured.nets in
  let z = per_stage_z ~yield_target ~n in
  let nets = ensured.nets in
  let targets = Array.copy ensured.stage_targets in
  let min_achievable =
    Array.map
      (fun net -> Lagrangian.minimum_achievable_delay ?options ?ff tech net ~z)
      nets
  in
  let order = ri_order ?options ?ff tech nets ~z ~ascending:false in
  let tighten_step = 0.015 in
  let ctx = ref ctx0 in
  let refresh s = ctx := Engine.Ctx.refresh_stage !ctx s in
  let current_yield () = eval_yield yield_model !ctx ~t_target in
  let total_area () =
    Array.fold_left (fun acc net -> acc +. Net.area net) 0.0 nets
  in
  (* A move relaxes one stage (big area saving, yield drop) and, if the
     yield target breaks, buys the yield back by tightening the other
     stages (small area cost each), cheapest-delay first, cycling until
     the target is met or every stage is maxed out — the Fig. 8 area
     exchange in reverse. *)
  let try_move s_relax ~with_recovery =
    let snapshots = Array.map Net.sizes_snapshot nets in
    let saved_targets = Array.copy targets in
    let area_before = total_area () in
    let touched = ref [] in
    let resize s target =
      ignore
        (Lagrangian.size_stage ?options ?ff tech nets.(s) ~t_target:target ~z);
      refresh s;
      if not (List.mem s !touched) then touched := s :: !touched
    in
    let relaxed = targets.(s_relax) *. (1.0 +. relax) in
    resize s_relax relaxed;
    targets.(s_relax) <- relaxed;
    let tighten_candidates =
      Array.of_list
        (List.filter (fun s -> s <> s_relax)
           (List.rev (Array.to_list order)))
    in
    let rec recover steps cursor =
      if current_yield () >= yield_target then true
      else if (not with_recovery) || steps = 0 then false
      else begin
        (* Find the next stage (cyclically) that can still tighten. *)
        let m = Array.length tighten_candidates in
        let rec next attempts k =
          if attempts = 0 then None
          else
            let st = tighten_candidates.(k mod m) in
            let candidate = targets.(st) *. (1.0 -. tighten_step) in
            if candidate > min_achievable.(st) then Some (st, candidate, k)
            else next (attempts - 1) (k + 1)
        in
        match next m cursor with
        | None -> false
        | Some (st, candidate, k) ->
            resize st candidate;
            targets.(st) <- candidate;
            recover (steps - 1) (k + 1)
      end
    in
    let ok = recover 12 0 in
    if ok && total_area () < area_before -. 1e-6 then begin
      Log.debug (fun m ->
          m "relax stage %d to %.1f ps: area %.1f -> %.1f" s_relax
            targets.(s_relax) area_before (total_area ()));
      true
    end
    else begin
      Array.iteri (fun i net -> Net.restore_sizes net snapshots.(i)) nets;
      Array.blit saved_targets 0 targets 0 n;
      List.iter refresh !touched;
      false
    end
  in
  let rec rounds remaining =
    if remaining = 0 then ()
    else begin
      let improved = ref false in
      (* Pure relaxations first (free wins when slack exists), then
         relax+recover exchanges. *)
      Array.iter
        (fun s -> if try_move s ~with_recovery:false then improved := true)
        order;
      Array.iter
        (fun s -> if try_move s ~with_recovery:true then improved := true)
        order;
      if !improved then rounds (remaining - 1)
    end
  in
  rounds max_rounds;
  build_result ~yield_model !ctx nets ~targets ~t_target ~order
