type check =
  where:string ->
  t_target:float ->
  z:float ->
  converged:bool ->
  mu:float ->
  sigma:float ->
  (unit, string) result

let checker : check option ref = ref None

let enabled =
  ref
    (match Sys.getenv_opt "SPV_CERTIFY_SIZING" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let set_enabled b = enabled := b
let is_enabled () = !enabled
let register f = checker := Some f

let postcondition ~where ~t_target ~z ~converged ~mu ~sigma =
  if !enabled then
    match !checker with
    | None -> ()
    | Some f -> (
        match f ~where ~t_target ~z ~converged ~mu ~sigma with
        | Ok () -> ()
        | Error msg ->
            failwith
              (Printf.sprintf "%s: sizing certificate refuted: %s" where msg))
