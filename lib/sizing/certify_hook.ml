type check =
  where:string ->
  t_target:float ->
  z:float ->
  converged:bool ->
  mu:float ->
  sigma:float ->
  (unit, string) result

let checker : check option ref = ref None

(* Always-on sizer exit criterion (the ROADMAP promotion of the old
   opt-in hook): SPV_CERTIFY_SIZING=""/"0" opts out, anything else —
   including unset — leaves it enabled.  Callers that need to skip a
   single run use the sizers' [?certify:false] escape hatch instead. *)
let enabled =
  ref
    (match Sys.getenv_opt "SPV_CERTIFY_SIZING" with
    | Some "" | Some "0" -> false
    | None | Some _ -> true)

let set_enabled b = enabled := b
let is_enabled () = !enabled
let register f = checker := Some f

let postcondition ~where ~t_target ~z ~converged ~mu ~sigma =
  if !enabled then
    match !checker with
    | None -> ()
    | Some f -> (
        match f ~where ~t_target ~z ~converged ~mu ~sigma with
        | Ok () -> ()
        | Error msg ->
            failwith
              (Printf.sprintf "%s: sizing certificate refuted: %s" where msg))
