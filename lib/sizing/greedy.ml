module Net = Spv_circuit.Netlist
module Sta = Spv_circuit.Sta
module Cell = Spv_circuit.Cell
module Gd = Spv_process.Gate_delay

type options = {
  min_size : float;
  max_size : float;
  step : float;
  max_moves : int;
  output_load : float;
}

let default_options =
  { min_size = 1.0; max_size = 16.0; step = 1.3; max_moves = 2000;
    output_load = 4.0 }

type report = {
  moves : int;
  converged : bool;
  achieved : Gd.t;
  stat_delay : float;
  area : float;
}

let stat_delay_of ~options ?ff tech net ~z =
  let ctx =
    Spv_engine.Engine.Ctx.of_circuits ~output_load:options.output_load ?ff tech
      [| net |]
  in
  ( Spv_engine.Engine.Ctx.stage_delay_model ctx 0,
    Spv_engine.Engine.Ctx.stat_delay ctx ~stage:0 ~z )

let size_stage ?options ?ff ?(certify = true) tech net ~t_target ~z =
  let options = Option.value options ~default:default_options in
  if t_target <= 0.0 then invalid_arg "Greedy.size_stage: t_target <= 0";
  Array.iter (fun i -> Net.set_size net i options.min_size) (Net.gate_ids net);
  let moves = ref 0 in
  let current = ref (snd (stat_delay_of ~options ?ff tech net ~z)) in
  let progress = ref true in
  while !current > t_target && !progress && !moves < options.max_moves do
    progress := false;
    (* Candidates: gates on the current nominal critical path, plus
       their gate fanins — upsizing a critical gate loads its (also
       critical) driver, so sometimes the useful move is one level
       back. *)
    let sta = Sta.run ~output_load:options.output_load tech net in
    let candidates =
      let seen = Hashtbl.create 64 in
      List.iter
        (fun i ->
          Hashtbl.replace seen i ();
          match Net.node net i with
          | Net.Gate { fanin; _ } ->
              Array.iter
                (fun f -> if Net.is_gate net f then Hashtbl.replace seen f ())
                fanin
          | Net.Primary_input _ -> ())
        sta.Sta.critical_path;
      Hashtbl.fold (fun i () acc -> i :: acc) seen []
    in
    let move_list =
      List.filter_map
        (fun i ->
          let size = Net.size net i in
          let bigger = Float.min options.max_size (size *. options.step) in
          if bigger > size +. 1e-12 then
            let darea =
              (match Net.node net i with
              | Net.Gate { kind; _ } -> Cell.area_per_size kind
              | Net.Primary_input _ -> 0.0)
              *. (bigger -. size)
            in
            Some
              {
                Sens_hook.mv_node = i;
                mv_from = size;
                mv_to = bigger;
                mv_darea = darea;
              }
          else None)
        candidates
    in
    (* The accepted move is the maximum-gain improving move (first
       among exact gain ties, in candidate order) — evaluating a
       subset containing it yields the identical choice, which is what
       the sensitivity pruner certifies for the moves it drops. *)
    let eval_moves ~count keep =
      let best : (int * float * float) option ref = ref None in
      List.iteri
        (fun k mv ->
          if keep.(k) then begin
            if count then
              Sens_hook.stats.Sens_hook.moves_evaluated <-
                Sens_hook.stats.Sens_hook.moves_evaluated + 1;
            let i = mv.Sens_hook.mv_node in
            Net.set_size net i mv.Sens_hook.mv_to;
            let _, trial = stat_delay_of ~options ?ff tech net ~z in
            Net.set_size net i mv.Sens_hook.mv_from;
            let gain =
              (!current -. trial) /. Float.max mv.Sens_hook.mv_darea 1e-9
            in
            match !best with
            | Some (_, best_gain, _) when gain <= best_gain -> ()
            | _ ->
                if trial < !current then
                  best := Some (i, gain, mv.Sens_hook.mv_to)
          end)
        move_list;
      !best
    in
    let n_moves = List.length move_list in
    let keep_all = Array.make n_moves true in
    let keep =
      match Sens_hook.move_prune () with
      | None -> keep_all
      | Some prune ->
          let env =
            {
              Sens_hook.pe_tech = tech;
              pe_net = net;
              pe_output_load = options.output_load;
              pe_ff = ff;
              pe_z = z;
            }
          in
          let pruned = prune env move_list in
          let keep = Array.map not pruned in
          Array.iter
            (fun p ->
              if p then
                Sens_hook.stats.Sens_hook.moves_pruned <-
                  Sens_hook.stats.Sens_hook.moves_pruned + 1)
            pruned;
          keep
    in
    let best = ref (eval_moves ~count:true keep) in
    if Sens_hook.debug_cross_check () && keep <> keep_all then begin
      let best_all = eval_moves ~count:false keep_all in
      if !best <> best_all then
        failwith
          "Greedy.size_stage: SPV_DEBUG_SENSITIVITY: pruned move selection \
           diverged from the full move set"
    end;
    (match !best with
    | Some (i, _, bigger) ->
        Net.set_size net i bigger;
        current := snd (stat_delay_of ~options ?ff tech net ~z);
        incr moves;
        progress := true
    | None -> ())
  done;
  let achieved, stat_delay = stat_delay_of ~options ?ff tech net ~z in
  let converged = stat_delay <= t_target *. 1.005 in
  let g = Gd.to_gaussian achieved in
  if certify then
    Certify_hook.postcondition ~where:"Greedy.size_stage" ~t_target ~z
      ~converged ~mu:g.Spv_stats.Gaussian.mu ~sigma:g.Spv_stats.Gaussian.sigma;
  {
    moves = !moves;
    converged;
    achieved;
    stat_delay;
    area = Net.area net;
  }

let compare_with_lagrangian ?ff tech net ~t_target ~z =
  let copy = Net.copy net in
  let greedy = size_stage ?ff tech copy ~t_target ~z in
  let lagrangian = Lagrangian.size_stage ?ff tech net ~t_target ~z in
  (greedy, lagrangian)
