type move = {
  mv_node : int;
  mv_from : float;
  mv_to : float;
  mv_darea : float;
}

type prune_env = {
  pe_tech : Spv_process.Tech.t;
  pe_net : Spv_circuit.Netlist.t;
  pe_output_load : float;
  pe_ff : Spv_process.Flipflop.t option;
  pe_z : float;
}

type yield_skip_env = {
  ye_ctx : Spv_engine.Engine.Ctx.t;
  ye_stage : int;
  ye_t_target : float;
  ye_current : float;
  ye_independent : bool;
  ye_min_size : float;
  ye_max_size : float;
}

let move_pruner : (prune_env -> move list -> bool array) option ref = ref None
let yield_skipper : (yield_skip_env -> bool) option ref = ref None
let enabled = ref true
let set_enabled b = enabled := b
let is_enabled () = !enabled
let register_move_prune f = move_pruner := Some f
let register_yield_skip f = yield_skipper := Some f
let move_prune () = if !enabled then !move_pruner else None
let yield_skip () = if !enabled then !yield_skipper else None

let debug =
  ref
    (match Sys.getenv_opt "SPV_DEBUG_SENSITIVITY" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let debug_cross_check () = !debug
let set_debug_cross_check b = debug := b

type stats = {
  mutable moves_evaluated : int;
  mutable moves_pruned : int;
  mutable probes_run : int;
  mutable probes_skipped : int;
}

let stats =
  { moves_evaluated = 0; moves_pruned = 0; probes_run = 0; probes_skipped = 0 }

let reset_stats () =
  stats.moves_evaluated <- 0;
  stats.moves_pruned <- 0;
  stats.probes_run <- 0;
  stats.probes_skipped <- 0
