type symbol =
  | Factor of int
  | Vth_inter
  | Leff_inter
  | Sys of int
  | Rand of { stage : int; node : int }

let symbol_to_string = function
  | Factor j -> Printf.sprintf "factor[%d]" j
  | Vth_inter -> "vth_inter"
  | Leff_inter -> "leff_inter"
  | Sys j -> Printf.sprintf "sys[%d]" j
  | Rand { stage; node } ->
      if node < 0 then Printf.sprintf "rand[%d.ff]" stage
      else Printf.sprintf "rand[%d.%d]" stage node

let class_name = function
  | Factor _ -> "factor"
  | Vth_inter -> "vth_inter"
  | Leff_inter -> "leff_inter"
  | Sys _ -> "systematic"
  | Rand _ -> "random"

type t = {
  center : float;
  terms : (symbol * float) array;
  rem : Interval.t;
  events : int;
}

let check_coeff c =
  if Float.is_nan c then invalid_arg "Affine: NaN coefficient"

let const c =
  if Float.is_nan c then invalid_arg "Affine.const: NaN";
  { center = c; terms = [||]; rem = Interval.point 0.0; events = 0 }

(* Terms stay sorted by symbol (structural order) so merges are linear
   and shared symbols always line up. *)
let normalise terms =
  let terms =
    List.filter (fun (_, c) -> check_coeff c; c <> 0.0) terms
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) terms in
  let rec merge = function
    | (s1, c1) :: (s2, c2) :: rest when s1 = s2 ->
        merge ((s1, c1 +. c2) :: rest)
    | kv :: rest -> kv :: merge rest
    | [] -> []
  in
  Array.of_list (List.filter (fun (_, c) -> c <> 0.0) (merge sorted))

let make ?(events = 0) ~center ~terms ~rem () =
  if Float.is_nan center then invalid_arg "Affine.make: NaN center";
  if events < 0 then invalid_arg "Affine.make: negative events";
  { center; terms = normalise terms; rem; events }

let center t = t.center
let rem t = t.rem
let n_terms t = Array.length t.terms
let events t = t.events

let coeff t s =
  match Array.find_opt (fun (s', _) -> s' = s) t.terms with
  | Some (_, c) -> c
  | None -> 0.0

(* Linear-time merge of two sorted term arrays; [fb] maps the second
   operand's coefficients (so [sub] and the relu composition reuse it). *)
let merge_terms ?(fb = Fun.id) a b =
  let la = Array.length a and lb = Array.length b in
  let out = ref [] and i = ref 0 and j = ref 0 in
  let push s c = if c <> 0.0 then out := (s, c) :: !out in
  while !i < la || !j < lb do
    if !j >= lb then begin
      let s, c = a.(!i) in
      push s c; incr i
    end
    else if !i >= la then begin
      let s, c = b.(!j) in
      push s (fb c); incr j
    end
    else
      let sa, ca = a.(!i) and sb, cb = b.(!j) in
      let cmp = compare sa sb in
      if cmp < 0 then begin push sa ca; incr i end
      else if cmp > 0 then begin push sb (fb cb); incr j end
      else begin
        push sa (ca +. fb cb);
        incr i; incr j
      end
  done;
  Array.of_list (List.rev !out)

(* Event counts add under every composition: the union bound tolerates
   the double counting of shared history (it only over-budgets). *)
let add a b =
  {
    center = a.center +. b.center;
    terms = merge_terms a.terms b.terms;
    rem = Interval.add a.rem b.rem;
    events = a.events + b.events;
  }

let add_const t c =
  if Float.is_nan c then invalid_arg "Affine.add_const: NaN";
  { t with center = t.center +. c }

let scale t s =
  if not (Float.is_finite s) then
    invalid_arg "Affine.scale: non-finite factor";
  {
    center = t.center *. s;
    terms =
      (if s = 0.0 then [||]
       else Array.map (fun (sym, c) -> (sym, c *. s)) t.terms);
    rem = Interval.mul t.rem (Interval.point s);
    events = t.events;
  }

let sub a b =
  {
    center = a.center -. b.center;
    terms = merge_terms ~fb:Float.neg a.terms b.terms;
    rem = Interval.add a.rem (Interval.neg b.rem);
    events = a.events + b.events;
  }

let linear_radius t =
  Array.fold_left (fun acc (_, c) -> acc +. Float.abs c) 0.0 t.terms

let sigma t =
  sqrt (Array.fold_left (fun acc (_, c) -> acc +. (c *. c)) 0.0 t.terms)

let check_k ~where k =
  if not (Float.is_finite k && k > 0.0) then
    invalid_arg (where ^ ": k must be finite and positive")

let range ~k t =
  check_k ~where:"Affine.range" k;
  let span = k *. linear_radius t in
  Interval.add (Interval.sym span) (Interval.shift t.rem t.center)

let concentration ~k t =
  check_k ~where:"Affine.concentration" k;
  let span = k *. sigma t in
  Interval.add (Interval.sym span) (Interval.shift t.rem t.center)

let escape_probability ~k t =
  check_k ~where:"Affine.escape_probability" k;
  float_of_int (n_terms t + t.events + 1)
  *. 2.0
  *. Spv_stats.Special.big_phi (-.k)

let absorb_dust ~k ~eps t =
  check_k ~where:"Affine.absorb_dust" k;
  if not (Float.is_finite eps && eps >= 0.0) then
    invalid_arg "Affine.absorb_dust: eps must be finite and non-negative";
  let keep, dust =
    List.partition (fun (_, c) -> Float.abs c > eps) (Array.to_list t.terms)
  in
  if dust = [] then t
  else
    let span =
      List.fold_left (fun acc (_, c) -> acc +. (k *. Float.abs c)) 0.0 dust
    in
    {
      t with
      terms = Array.of_list keep;
      rem = Interval.add t.rem (Interval.sym span);
      (* Each absorbed symbol's box can still fail; keep its escape
         budget by charging one concentration event per absorbed term. *)
      events = t.events + List.length dust;
    }

(* Phi((x - m) / s), degenerating to the step function at s = 0. *)
let phi_at ~mu ~sigma x =
  if sigma > 0.0 then Spv_stats.Special.big_phi ((x -. mu) /. sigma)
  else if x >= mu then 1.0
  else 0.0

let clamp01 p = Float.max 0.0 (Float.min 1.0 p)

let cdf_bounds ~k t x =
  check_k ~where:"Affine.cdf_bounds" k;
  if Float.is_nan x then invalid_arg "Affine.cdf_bounds: NaN threshold";
  let s = sigma t in
  let esc = escape_probability ~k t in
  (* value <= center + L + rem.hi, so P{value <= x} >= P{center + L +
     rem.hi <= x} minus the mass where the box (hence the remainder
     bound) fails; symmetrically above. *)
  let lo = phi_at ~mu:(t.center +. Interval.hi t.rem) ~sigma:s x -. esc in
  let hi = phi_at ~mu:(t.center +. Interval.lo t.rem) ~sigma:s x +. esc in
  Interval.make ~lo:(clamp01 lo) ~hi:(clamp01 hi)

let mean_interval t = Interval.shift t.rem t.center

(* max(x, y) with the remainders separated from the linear parts.

   Write x = X + r_x, y = Y + r_y with X, Y purely affine-linear and
   r_x in R_x, r_y in R_y.  Then

     max(x, y) in max(X, Y) + [min bounds, max bounds of r_x / r_y],

   so the result's remainder takes a hull-style bound instead of the
   sum — remainders do not pile up across a deep netlist's max chain.

   max(X, Y) itself is Y + relu(D) with D = X - Y purely linear, and
   relu is over-approximated by its chord on D's range [a, b]
   (a < 0 < b): relu(v) = lam (v - a) + e with lam = b/(b-a) and the
   Chebyshev error e in [ab/(b-a), 0] (the chord touches relu at both
   ends and overshoots most at v = 0).  The chord interval is the
   +-k sigma concentration band of D rather than its +-k L1 radius —
   D is an exact Gaussian, so this costs one probabilistic event
   (counted in [events], budgeted by {!escape_probability}) and is
   dramatically tighter when many independent symbols partially
   cancel.

   The early dominance tests use the full hard ranges (box hypothesis
   only, no event): when one operand dominates everywhere it is
   returned exactly. *)
let max2 ~k x y =
  check_k ~where:"Affine.max2" k;
  let d = sub x y in
  let dr = range ~k d in
  if Interval.lo dr >= 0.0 then x
  else if Interval.hi dr <= 0.0 then y
  else if
    not (Float.is_finite (Interval.lo dr) && Float.is_finite (Interval.hi dr))
  then
    (* Degenerate operand (device-cutoff remainder): fall back to the
       interval hull — correlation is lost but soundness is kept. *)
    {
      center = 0.0;
      terms = [||];
      rem = Interval.hull (range ~k x) (range ~k y);
      events = x.events + y.events;
    }
  else begin
    (* Chord band of the linear difference D: +-k sigma, one event. *)
    let half = k *. Float.min (sigma d) (linear_radius d) in
    let a = d.center -. half and b = d.center +. half in
    let events = x.events + y.events + 1 in
    let rxl = Interval.lo x.rem and rxh = Interval.hi x.rem in
    let ryl = Interval.lo y.rem and ryh = Interval.hi y.rem in
    if a >= 0.0 then
      (* X dominates Y on the event: result is X, with y's remainder
         able to intrude from above only by r_y - a. *)
      { x with rem = Interval.make ~lo:rxl ~hi:(Float.max rxh (ryh -. a)); events }
    else if b <= 0.0 then
      { y with rem = Interval.make ~lo:ryl ~hi:(Float.max ryh (rxh +. b)); events }
    else
      let lam = b /. (b -. a) in
      let rem_hull =
        Interval.make ~lo:(Float.min rxl ryl) ~hi:(Float.max rxh ryh)
      in
      let cheb = Interval.make ~lo:(a *. b /. (b -. a)) ~hi:0.0 in
      {
        center = y.center +. (lam *. (d.center -. a));
        terms = merge_terms ~fb:(fun c -> lam *. c) y.terms d.terms;
        rem = Interval.add rem_hull cheb;
        events;
      }
  end

let max_many ~k = function
  | [||] -> invalid_arg "Affine.max_many: empty"
  | ts -> Array.fold_left (max2 ~k) ts.(0) ts

let eval_interval t eps =
  let v =
    Array.fold_left (fun acc (s, c) -> acc +. (c *. eps s)) t.center t.terms
  in
  Interval.shift t.rem v

let attribution t =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun (s, c) ->
      let key = class_name s in
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (prev +. (c *. c)))
    t.terms;
  Hashtbl.fold (fun key ss acc -> (key, sqrt ss) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let dominant ?(n = 5) t =
  let by_mag = Array.copy t.terms in
  Array.sort (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a)) by_mag;
  Array.to_list (Array.sub by_mag 0 (min n (Array.length by_mag)))

let pp ppf t =
  Format.fprintf ppf "%g" t.center;
  Array.iter
    (fun (s, c) ->
      Format.fprintf ppf " %s %g*%s"
        (if c >= 0.0 then "+" else "-")
        (Float.abs c) (symbol_to_string s))
    t.terms;
  if Interval.width t.rem > 0.0 || Interval.lo t.rem <> 0.0 then
    Format.fprintf ppf " + %a" Interval.pp t.rem
