module Engine = Spv_engine.Engine
module G = Spv_stats.Gaussian
module Gd = Spv_process.Gate_delay
module Variation = Spv_process.Variation
module Netlist = Spv_circuit.Netlist
module Sta = Spv_circuit.Sta

type stage_bound = {
  model : Interval.t;
  sta : Interval.t option;
  total : Interval.t;
}

type t = {
  k : float;
  stages : stage_bound array;
  delay : Interval.t;
  mean : Interval.t;
  marginals : G.t array;
}

let check_k ~where k =
  if not (Float.is_finite k && k > 0.0) then
    invalid_arg (where ^ ": k must be finite and positive")

(* The delay factor is monotone increasing in both shift components
   (a higher Vth or a longer channel only ever slows a gate), so the
   two extreme corners of the +-k sigma box are exact extrema.  The
   hull of the linearised and exact alpha-power factors covers both
   sampler modes. *)
let gate_factor_interval ~k (tech : Spv_process.Tech.t) ~size =
  check_k ~where:"Bounds.gate_factor_interval" k;
  if not (size > 0.0) then
    invalid_arg "Bounds.gate_factor_interval: size must be positive";
  let dvth =
    k
    *. (tech.sigma_vth_inter +. tech.sigma_vth_sys
       +. (tech.sigma_vth_rand /. sqrt size))
  in
  let dleff = k *. (tech.sigma_leff_rel_inter +. tech.sigma_leff_rel_sys) in
  let corner s =
    { Variation.dvth = s *. dvth; dleff_rel = s *. dleff }
  in
  let lo_c = corner (-1.0) and hi_c = corner 1.0 in
  let lo =
    Float.min
      (Variation.delay_factor_linear tech lo_c)
      (Variation.delay_factor_exact tech lo_c)
  in
  let hi =
    Float.max
      (Variation.delay_factor_linear tech hi_c)
      (Variation.delay_factor_exact tech hi_c)
  in
  Interval.make ~lo ~hi

(* +-k sigma span of a component-decomposed delay.  The components are
   summed linearly (not in quadrature): a box world can push all three
   the same way at once, and the linear sum also dominates the
   quadrature total sigma used by the Gaussian marginals. *)
let model_interval ~k (gd : Gd.t) =
  let span = k *. (gd.sigma_inter +. gd.sigma_sys +. gd.sigma_rand) in
  Interval.make ~lo:(gd.nominal -. span) ~hi:(gd.nominal +. span)

(* Corner STA: per-gate factor bounds, then one all-lo and one all-hi
   run.  Arrival times are max-plus expressions with non-negative
   coefficients in the factors, hence monotone, so the two corner runs
   bracket every in-box world. *)
let corner_factors ~k tech net =
  let n = Netlist.n_nodes net in
  let f_lo = Array.make n 1.0 and f_hi = Array.make n 1.0 in
  Array.iter
    (fun i ->
      let fi = gate_factor_interval ~k tech ~size:(Netlist.size net i) in
      f_lo.(i) <- Interval.lo fi;
      f_hi.(i) <- Interval.hi fi)
    (Netlist.gate_ids net);
  (f_lo, f_hi)

let corner_sta ~k tech ~output_load net =
  let f_lo, f_hi = corner_factors ~k tech net in
  let lo = (Sta.run_with_factors ~output_load tech net ~factors:f_lo).Sta.delay
  and hi =
    (Sta.run_with_factors ~output_load tech net ~factors:f_hi).Sta.delay
  in
  Interval.make ~lo ~hi

let ff_interval ~k tech = function
  | None -> Interval.point 0.0
  | Some ff ->
      let nominal = Spv_process.Flipflop.nominal_overhead ff in
      Interval.scale (gate_factor_interval ~k tech ~size:2.0) nominal

let mean_envelope marginals =
  let n = Array.length marginals in
  let mu_max = Array.fold_left (fun m g -> Float.max m (G.mu g)) neg_infinity
      marginals
  and sigma_max =
    Array.fold_left (fun m g -> Float.max m (G.sigma g)) 0.0 marginals
  in
  (* Jensen below; the Gaussian union bound
     E[max] <= max mu + sigma_max sqrt(2 ln n) above (any dependence). *)
  let above =
    if n <= 1 then 0.0 else sigma_max *. sqrt (2.0 *. log (float_of_int n))
  in
  Interval.make ~lo:mu_max ~hi:(mu_max +. above)

let of_ctx ?(k = 6.0) ctx =
  check_k ~where:"Bounds.of_ctx" k;
  let pipeline = Engine.Ctx.pipeline ctx in
  let marginals = Spv_core.Pipeline.stage_gaussians pipeline in
  let n = Engine.Ctx.n_stages ctx in
  let gate = Engine.Ctx.gate_level ctx in
  let stages =
    Array.init n (fun i ->
        let model = model_interval ~k (Engine.Ctx.stage_delay_model ctx i) in
        let sta =
          if not gate then None
          else
            let tech = Engine.Ctx.tech ctx in
            let comb =
              corner_sta ~k tech
                ~output_load:(Engine.Ctx.output_load ctx)
                (Engine.Ctx.netlist ctx i)
            in
            Some
              (Interval.add comb (ff_interval ~k tech (Engine.Ctx.flipflop ctx)))
        in
        let total =
          match sta with None -> model | Some s -> Interval.hull model s
        in
        { model; sta; total })
  in
  {
    k;
    stages;
    delay = Interval.max_many (Array.map (fun s -> s.total) stages);
    mean = mean_envelope marginals;
    marginals;
  }

let yield_bounds t ~t_target =
  if Float.is_nan t_target then
    invalid_arg "Bounds.yield_bounds: NaN t_target";
  let miss_sum = ref 0.0 and min_phi = ref 1.0 in
  Array.iter
    (fun g ->
      let phi = G.cdf g t_target in
      miss_sum := !miss_sum +. (1.0 -. phi);
      min_phi := Float.min !min_phi phi)
    t.marginals;
  (* lo <= hi holds mathematically (1 - sum_j (1 - phi_j) <= phi_g for
     every g), but on a single-stage pipeline the union lower is
     1 - (1 - phi) and the round trip can land one ulp above min_phi. *)
  Interval.make
    ~lo:(Float.min (Float.max 0.0 (1.0 -. !miss_sum)) !min_phi)
    ~hi:!min_phi

(* ---- estimate checking ---------------------------------------------- *)

type verdict =
  | Pass of { bound : Interval.t; slack : float }
  | Fail of { bound : Interval.t; slack : float; value : float; excess : float }

let verdict_ok = function Pass _ -> true | Fail _ -> false

let sampling_slack (e : Engine.estimate) =
  match e.stop with
  | Engine.Closed_form -> 0.0
  | Engine.Converged | Engine.Sample_cap | Engine.Fixed_n ->
      6.0 *. e.std_error

let default_yield_slack (e : Engine.estimate) =
  let analytic =
    match e.method_ with
    | Engine.Exact_independent -> 1e-9
    | Engine.Analytic_clark | Engine.Quadrature -> 0.02
    | Engine.Mc | Engine.Adaptive_mc | Engine.Importance -> 1e-9
  in
  analytic +. sampling_slack e

let default_mean_slack t (e : Engine.estimate) =
  let sigma_max =
    Array.fold_left (fun m g -> Float.max m (G.sigma g)) 0.0 t.marginals
  in
  (0.01 *. sigma_max) +. 1e-9 +. sampling_slack e

let judge ~bound ~slack value =
  if Interval.contains ~slack bound value then Pass { bound; slack }
  else
    let excess =
      if value > Interval.hi bound then value -. Interval.hi bound
      else Interval.lo bound -. value
    in
    Fail { bound; slack; value; excess }

let check ?slack ?t_target t (e : Engine.estimate) =
  match t_target with
  | Some t_target ->
      let bound = yield_bounds t ~t_target in
      let slack =
        match slack with Some s -> s | None -> default_yield_slack e
      in
      judge ~bound ~slack e.value
  | None ->
      let slack =
        match slack with Some s -> s | None -> default_mean_slack t e
      in
      judge ~bound:t.mean ~slack e.value

(* ---- report ---------------------------------------------------------- *)

let interval_data prefix i =
  [
    (prefix ^ "_lo", Report.Num (Interval.lo i));
    (prefix ^ "_hi", Report.Num (Interval.hi i));
  ]

let findings t =
  let stage_findings =
    Array.to_list t.stages
    |> List.mapi (fun i sb ->
           let data =
             interval_data "total" sb.total
             @ interval_data "model" sb.model
             @ (match sb.sta with
               | None -> []
               | Some s -> interval_data "sta" s)
             @ [ ("width", Report.Num (Interval.width sb.total)) ]
           in
           if Interval.is_finite sb.total then
             Report.finding ~location:(Report.Stage i) ~data ~pass:"bounds"
               "stage delay interval"
           else
             Report.finding ~severity:Report.Error
               ~location:(Report.Stage i) ~data ~pass:"bounds"
               "degenerate stage bound: the variation box crosses the \
                device cutoff (overdrive <= 0); lower k or the sigmas")
  in
  let pipeline_finding =
    let data =
      interval_data "delay" t.delay
      @ interval_data "mean" t.mean
      @ [ ("k", Report.Num t.k) ]
    in
    if Interval.is_finite t.delay then
      Report.finding ~data ~pass:"bounds" "pipeline delay interval"
    else
      Report.finding ~severity:Report.Error ~data ~pass:"bounds"
        "degenerate pipeline bound"
  in
  stage_findings @ [ pipeline_finding ]

(* ---- engine hook ----------------------------------------------------- *)

let describe_fail ~what = function
  | Pass _ -> assert false
  | Fail { bound; slack; value; excess } ->
      Printf.sprintf "%s %.9g outside %s (slack %.3g, excess %.3g)" what value
        (Interval.to_string bound) slack excess

let engine_check ctx ~t_target (e : Engine.estimate) =
  let b = of_ctx ctx in
  let what =
    match t_target with None -> "delay mean" | Some _ -> "yield"
  in
  match check ?t_target b e with
  | Pass _ -> Ok ()
  | Fail _ as v ->
      Error
        (Printf.sprintf "%s [%s]" (describe_fail ~what v)
           (Engine.method_name e.method_))

let install_engine_check () = Engine.register_estimate_check engine_check
