(** Reconvergent-fanout and correlation-structure detection.

    The engine's closed forms lean on two approximations whose error is
    governed by netlist/pipeline {e structure}:

    - the path-based stage model treats the critical path as one chain,
      ignoring the correlation (and max-pressure) that reconvergent
      fanout creates between near-critical paths;
    - Clark's iterated max treats each partial max as Gaussian, which
      is least true when stage means are nearly tied (the max of tied
      Gaussians is maximally skewed) and when the fold order matters.

    This pass flags both, with per-stage risk scores. *)

type stem = {
  stem : int;  (** node id where the paths diverge *)
  branches : int;  (** gate fanouts of the stem *)
  reconvergence_count : int;  (** nodes reached by >= 2 distinct paths *)
  max_paths : float;  (** largest path multiplicity (saturating count) *)
}

val stems : Spv_circuit.Netlist.t -> stem list
(** Every multi-fanout node whose branches reconverge somewhere
    downstream, by per-stem path-count propagation (exact for counts
    below 1e15, saturating above). *)

val tie_scores : Spv_core.Pipeline.t -> float array
(** Per stage [i]: [2 Phi(-|mu_i - mu_l| / a_il)] against the
    slowest other stage [l], where [a_il] is the standard deviation of
    [X_i - X_l] under the pipeline's correlation.  1.0 means exactly
    tied (worst case for the Gaussian-max approximation), near 0 means
    the pair is almost surely ordered.  A single-stage pipeline scores
    [\[| 0 |\]]. *)

type order_spread = {
  mu_spread : float;  (** max - min Clark mean over fold orders *)
  sigma_spread : float;  (** max - min Clark sigma over fold orders *)
}

val order_sensitivity : Spv_core.Pipeline.t -> order_spread
(** Spread of the Clark result across the three fold orders
    ([Increasing_mean], [Decreasing_mean], [As_given]) — a direct
    measure of the iterated approximation's ambiguity. *)

val netlist_findings :
  ?stage:int -> Spv_circuit.Netlist.t -> Report.finding list
(** Reconvergence findings for one stage's netlist
    ([pass = "reconvergence"]).  Warns when reconvergent regions cover
    more than a quarter of the gates. *)

val pipeline_findings : Spv_core.Pipeline.t -> Report.finding list
(** Tie/skew and order-sensitivity findings
    ([pass = "correlation"]). *)
