(** Certified sensitivity analysis: guaranteed enclosures of the
    derivatives of stage delay mean/sigma — and of the pipeline's
    Gaussian yield through the Clark max — with respect to one sizing
    knob (a gate's size, or its Vth-driven delay factor), over a
    declared box of the design space.

    The domain is forward-mode interval AD: every quantity carries a
    {e dual} [(v, d)] of intervals, [v] enclosing the quantity's value
    and [d] enclosing its derivative with respect to the knob, for
    {e every} design in the box.  Operations mirror the concrete timing
    model operation by operation ({!Spv_circuit.Sta.run},
    {!Spv_circuit.Ssta.analyse_stage}, {!Spv_core.Clark.max_n},
    {!Spv_stats.Special.big_phi}/[upper_tail]), so on a degenerate
    (point) box the value side reproduces the concrete floats bit for
    bit and on a real box both sides are sound by construction.

    Max junctions are where derivative soundness is earned: when the
    competing arrival enclosures are strictly disjoint over the box the
    dominating operand is propagated exactly; when they overlap, the
    traced critical path may switch inside the box, the competing
    accumulations are hulled, and the result is {e decertified} — its
    [deriv] is reported as the full line, which is trivially sound.
    The same discipline covers the Clark fold order (sorted by stage
    mean) and the Clark degenerate branches.  A {!enclosure} with
    [certified = true] therefore guarantees: the quantity is a smooth
    function of the knob over the whole box, [deriv] encloses its
    derivative everywhere in the box, and hence every central finite
    difference with a stencil inside the box lies in [deriv] (mean
    value theorem).  Monotone-sign certificates ({!monotone_sign}) and
    the sizer's dominance pruning ({!Dominance}) are read directly off
    certified enclosures. *)

(** Interval duals — exposed for tests and for {!Dominance}. *)
module Dual : sig
  type t = private { v : Interval.t; d : Interval.t }

  exception Unbounded of string
  (** Raised when an operation cannot bound the result (division by an
      interval containing zero, square root pinned at zero).  Callers
      of the pass never see it: {!stage} and the yield entry points
      catch it and return decertified enclosures. *)

  val make : v:Interval.t -> d:Interval.t -> t
  val const : float -> t
  (** Point value, zero derivative. *)

  val var : Interval.t -> t
  (** The differentiated knob itself: value [box], derivative 1. *)

  val v : t -> Interval.t
  val d : t -> Interval.t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val scale : t -> float -> t
  (** Multiply by a finite constant (either sign). *)

  val shift : t -> float -> t
  (** Add a finite constant. *)

  val neg : t -> t
  val sqrt_ : t -> t
  val relu : t -> t
  (** [Float.max x 0.0] — continuous clamp; the derivative hulls the
      two branch derivatives when the value interval straddles 0. *)

  val clamp_pm1 : t -> t
  (** [Float.max (-1.) (Float.min 1. x)] — the correlation clamp. *)

  val big_phi : t -> t
  val upper_tail : t -> t
  val hull : t -> t -> t
end

(** The differentiated knob, identified by a node id of the stage's
    netlist.  [Size] is the gate's drive strength (the eq. 10-13
    design variable); [Factor] is the gate's multiplicative delay
    factor as applied by {!Spv_circuit.Sta.run_with_factors} — the
    linearised Vth knob: [factor = 1 + s_vth dVth], so a derivative
    with respect to [Factor] times [s_vth] is the Vth sensitivity. *)
type param = Size of int | Factor of int

type enclosure = {
  value : Interval.t;  (** encloses the quantity over the whole box *)
  deriv : Interval.t;
      (** encloses d(quantity)/d(knob) over the whole box; the full
          line when not certified *)
  certified : bool;
      (** true when the quantity is provably smooth in the knob over
          the box, so [deriv] contains every central finite difference
          with a stencil inside the box *)
}

type stage_sens = {
  s_param : param;
  s_box : Interval.t;  (** the knob's declared range *)
  s_nominal : enclosure;  (** nominal stage delay ({!Spv_circuit.Sta.run}) *)
  s_mu : enclosure;  (** SSTA total nominal (adds the flip-flop) *)
  s_sigma : enclosure;  (** SSTA total sigma (inter/sys/rand + FF) *)
}

val stage :
  ?output_load:float -> ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
  Spv_circuit.Netlist.t -> param:param -> box:Interval.t -> stage_sens
(** Stage-level pass: one forward sweep of the netlist in interval
    duals.  [box] must contain the knob's current value (the gate's
    size for [Size], 1.0 for [Factor]); every other gate is held at
    its current size.  [output_load] defaults to 4.0, matching
    {!Spv_circuit.Sta.run}.  Raises [Invalid_argument] when the node
    is not a gate or the box misses the current value. *)

val stat : z:float -> stage_sens -> enclosure
(** [mu + z sigma] — the sizing layer's statistical-delay objective;
    certified when both moments are. *)

type sign = Increasing | Decreasing
(** Certified monotone direction of a quantity in the knob. *)

val monotone_sign : enclosure -> sign option
(** [Some _] exactly when the enclosure is certified and its
    derivative interval excludes zero. *)

(** Pipeline yield model being differentiated — must match the
    estimator whose result the caller reasons about. *)
type yield_model = Clark | Independent_product

(** Memoised stage propagations keyed on
    [(stage, Engine.Ctx.stage_revision, param, box)]: a
    {!Spv_engine.Engine.Ctx.refresh_stage} (or [refresh_block], which
    delegates to it) bumps the stage's revision and thereby invalidates
    exactly that stage's entries. *)
module Cache : sig
  type t

  val create : unit -> t
  val hits : t -> int
  val misses : t -> int
end

val ctx_stage :
  ?cache:Cache.t -> Spv_engine.Engine.Ctx.t -> stage:int -> param:param ->
  box:Interval.t -> stage_sens
(** {!stage} on one stage of a gate-level engine context (its
    technology, flip-flop and output load), memoised through [cache]
    when given. *)

val ctx_yield :
  ?cache:Cache.t -> Spv_engine.Engine.Ctx.t -> model:yield_model ->
  stage:int -> param:param -> box:Interval.t -> t_target:float -> enclosure
(** Derivative enclosure of the pipeline yield [P{delay <= t_target}]
    with respect to one knob of one stage, every other stage held at
    its cached moments.  [Clark] mirrors
    {!Spv_core.Pipeline.delay_distribution} (spatial correlations, the
    mean-sorted Clark fold) followed by the Gaussian CDF;
    [Independent_product] mirrors the per-stage CDF product.  The
    enclosure is decertified whenever the fold order, a Clark
    degenerate branch, or the stage's own critical path is not decided
    over the box.  Gate-level contexts only. *)

val ctx_yield_loss :
  ?cache:Cache.t -> Spv_engine.Engine.Ctx.t -> model:yield_model ->
  stage:int -> param:param -> box:Interval.t -> t_target:float -> enclosure
(** Same propagation reported as the loss [P{delay > t_target}]
    through {!Spv_stats.Special.upper_tail} (full relative precision in
    the tail). *)

val stage_moments_over_box :
  ?output_load:float -> ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
  Spv_circuit.Netlist.t -> lo:float -> hi:float ->
  (Interval.t * Interval.t) * bool
(** Value-only enclosure [((mu, sigma), decided)] of a stage's SSTA
    moments when {e every} gate ranges over [\[lo, hi\]] — the whole
    sizing design box.  [decided] is false when the critical path can
    switch inside the box (the enclosure is then a hull over competing
    paths, still sound).  Feeds the global sizer's certified
    stage-skip. *)

val yield_upper_bound_over_box :
  Spv_engine.Engine.Ctx.t -> model:yield_model -> stage:int ->
  lo:float -> hi:float -> t_target:float -> float option
(** Certified upper bound on the pipeline yield over {e every} sizing
    of stage [stage] inside [\[lo, hi\]]^gates (other stages fixed at
    their cached moments), or [None] when no finite certified bound
    exists (undecided fold order, degenerate branches).  This is the
    global sizer's prune test: when the bound cannot beat the current
    yield, re-sizing the stage provably cannot be accepted. *)
