(** The analyzer driver: run every pass over one evaluation context
    and aggregate the findings.

    Passes (see the per-module docs):
    - ["bounds"] — interval delay bounds ({!Bounds});
    - ["affine"] — correlation-aware affine (zonotope) enclosures
      nested inside the interval bounds, with width ratios and
      per-symbol-class sensitivity attributions ({!Affine_sta});
    - ["reconvergence"] — reconvergent-fanout detection, gate-level
      contexts only ({!Structure.netlist_findings});
    - ["correlation"] — tie/skew and Clark-order risk
      ({!Structure.pipeline_findings});
    - ["criticality"] — static criticality and prunability, gate-level
      contexts only ({!Static_criticality});
    - ["cones"] — failure-cone criticality: per-stage (and, gate-level
      only, per-gate) criticality probability bounds, the statistical
      slack form with sensitivity attribution (with a [t_target]), and
      the ranked dominant failure cones whose shift directions drive
      the engine's [Cone_guided] importance proposal ({!Cones});
    - ["sensitivity"] — certified derivative enclosures of stage
      mu/sigma (and, with a [t_target], the Clark pipeline yield) with
      respect to critical-path gate sizes over a relative design box,
      with monotone-sign certificates ({!Sensitivity}, {!Dominance});
      gate-level contexts only, degrades to a [Warn] otherwise;
    - ["bounds-check"] — with a [t_target], the closed-form engine
      estimators (clark / independent / quadrature) are evaluated and
      asserted against the Fréchet yield bounds; a violation is an
      [Error] finding;
    - ["affine-check"] — the same estimates asserted against the
      affine yield envelope ({!Affine_sta.check});
    - ["hier"] — opt-in ([~hier:true]): the context's stages are
      decomposed into block macros ({!Spv_circuit.Macro}) and the
      macro-composed model is compared against the flat reference —
      per-stage block counts and moment gaps, plus the pipeline-level
      Clark yield (or mean, without a [t_target]) with its
      [hier_bound].  Reported as data, never asserted against the
      flat certificates: a macro-model value outside a flat bound is
      the documented model gap, not an analysis error. *)

type result = {
  report : Report.t;  (** sorted findings of every pass *)
  bounds : Bounds.t;
  affine : Affine_sta.t;
  criticality : Static_criticality.t array option;  (** per stage; gate-level only *)
  cones : Cones.t;  (** failure-cone criticality pass *)
  sensitivity : Dominance.t;  (** certified derivative enclosures pass *)
}

val run :
  ?k:float -> ?t_target:float -> ?hier:bool -> Spv_engine.Engine.Ctx.t ->
  result
(** Raises [Invalid_argument] on invalid [k] and [Failure] via the
    engine only if engine debug checks are enabled and violated.
    [hier] (default false) adds the ["hier"] pass; on a flat
    gate-level context it builds the hierarchical twin itself, on a
    hierarchical context it reuses it, and on a moments-only context
    it degrades to a [Warn] finding. *)
