(** Affine (zonotope) delay forms — the correlation-aware abstract
    domain of the analyzer.

    A form [c + sum_j a_j eps_j + r] stands for a delay-like quantity:
    [c] is the center, each named noise symbol [eps_j] is an
    {e independent} standard normal shared across every form built from
    the same context (this is what carries inter-die and spatial
    correlation through [max] and [+]), and [r] ranges over the
    interval remainder [rem], which soundly absorbs whatever the
    operations cannot keep affine (the alpha-power linearisation gap,
    the Chebyshev error of [max]).

    Soundness contract (the {e box hypothesis}): every enclosure
    produced here holds for all noise vectors with [|eps_j| <= k] for
    each symbol — the same bounded-variation hypothesis as {!Bounds} —
    and the probabilistic enclosures additionally quantify the escape
    mass outside that box ({!escape_probability}).

    Symbols are independent by construction: correlated physical
    quantities (the spatial systematic field, the stage-delay MVN) are
    expressed in their Cholesky basis, mirroring exactly how the
    engine's samplers draw them.  Variances therefore add in
    quadrature ({!sigma}) — the entire tightening over the interval
    domain comes from this. *)

type symbol =
  | Factor of int
      (** [j]-th Cholesky factor of the stage-delay MVN (model-level
          forms; see [Spv_stats.Mvn.cholesky_row]). *)
  | Vth_inter  (** shared inter-die threshold-voltage draw *)
  | Leff_inter  (** shared inter-die channel-length draw *)
  | Sys of int
      (** [j]-th independent driver of the spatial systematic field
          (Cholesky basis of the stage-position correlation). *)
  | Rand of { stage : int; node : int }
      (** per-gate random (RDF) draw; [node = -1] is the stage's
          flip-flop. *)

val symbol_to_string : symbol -> string

val class_name : symbol -> string
(** Attribution bucket: ["factor"], ["vth_inter"], ["leff_inter"],
    ["systematic"] or ["random"]. *)

type t = private {
  center : float;
  terms : (symbol * float) array;
      (** sorted by symbol, no zero and no duplicate coefficients *)
  rem : Interval.t;  (** interval remainder; always contains 0 or not —
                         whatever the construction proved *)
  events : int;
      (** number of probabilistic concentration events the remainder
          bound additionally relies on (one per chord-composed [max]);
          each holds except with probability [2 Phi(-k)] and is
          budgeted by {!escape_probability} *)
}

val const : float -> t
(** Exact constant: no symbols, remainder [\[0, 0\]].  Raises on NaN. *)

val make :
  ?events:int -> center:float -> terms:(symbol * float) list ->
  rem:Interval.t -> unit -> t
(** Normalises the term list (sorts, merges duplicates, drops zeros).
    [events] defaults to 0.  Raises [Invalid_argument] on NaN center
    or coefficient, or negative [events]. *)

val center : t -> float
val rem : t -> Interval.t
val n_terms : t -> int
val events : t -> int
val coeff : t -> symbol -> float
(** 0 when the symbol is absent. *)

val add : t -> t -> t
val add_const : t -> float -> t

val scale : t -> float -> t
(** Scale by any finite factor (negative allowed — the remainder is
    reflected through {!Interval.mul}).  Raises on NaN/infinite. *)

val sub : t -> t -> t

val linear_radius : t -> float
(** [sum_j |a_j|] — the worst-case (L1) half-width of the linear part
    per unit of [k]. *)

val sigma : t -> float
(** Gaussian standard deviation [sqrt (sum_j a_j^2)] of the linear
    part (symbols are independent standard normals). *)

val range : k:float -> t -> Interval.t
(** Hard enclosure under the box hypothesis:
    [center +- k * linear_radius + rem].  Never escapes while every
    [|eps_j| <= k]. *)

val concentration : k:float -> t -> Interval.t
(** Probabilistic enclosure [center +- k * sigma + rem]: holds except
    with probability at most {!escape_probability}.  This is the
    quadrature-vs-L1 tightening over {!range} (and over the interval
    domain). *)

val escape_probability : k:float -> t -> float
(** Union-bound escape mass of {!concentration}:
    [(n_terms + events + 1) * 2 * Phi(-k)] — each symbol may leave its
    box, each chord event may fail, and the Gaussian linear part may
    leave its [+-k sigma] band. *)

val absorb_dust : k:float -> eps:float -> t -> t
(** Move every linear term with [|coefficient| <= eps] into the
    interval remainder, widened by [+- k |coefficient|] — an exact
    transfer under the box hypothesis — and charge one concentration
    event per absorbed term so {!escape_probability} still budgets its
    box.  This rescues probability statements about near-cancelled
    differences of structurally equal forms: two sums of the same
    terms composed in different association order cancel to
    floating-point dust rather than to the empty term list, and a dust
    coefficient would otherwise send {!cdf_bounds} down the Gaussian
    branch — turning an exact tie's step function into a spurious
    [Phi(0) = 1/2].  Callers pick [eps] relative to the {e operand}
    scale of the subtraction (the form itself cannot distinguish dust
    from a genuinely tiny quantity).  Raises [Invalid_argument] on
    invalid [k] or a negative/non-finite [eps]. *)

val cdf_bounds : k:float -> t -> float -> Interval.t
(** [cdf_bounds ~k t x] encloses [P{value <= x}]: the linear part is
    exactly Gaussian, the remainder shifts the threshold both ways,
    and the box-escape mass widens each side.  Clamped to [0, 1]. *)

val mean_interval : t -> Interval.t
(** [center + rem] — encloses the conditional mean given the box
    (the linear part has zero mean, symmetrically truncated).  Callers
    must widen by a tail term before using it unconditionally (see
    {!Affine_sta}). *)

val max2 : k:float -> t -> t -> t
(** Sound affine [max].  When the sign of the difference is decided
    over the hard box ranges, the dominating operand is returned
    exactly.  Otherwise the remainders are separated from the linear
    parts — the result's remainder is a hull-style combination of the
    operands' remainders, not their sum — and
    [max(X, Y) = Y + relu(X - Y)] over the purely linear parts is
    over-approximated by the chord of [relu] on the difference's
    [+-k sigma] concentration band [\[a, b\]] — slope [b/(b-a)] — with
    the captured Chebyshev error [\[ab/(b-a), 0\]] added to the
    remainder and one concentration event charged to {!events}.
    Shared-symbol correlations are preserved throughout.  Degenerate
    (non-finite) ranges fall back to the interval hull of the
    operands' ranges. *)

val max_many : k:float -> t array -> t
(** Left fold of {!max2}.  Raises on an empty array. *)

val eval_interval : t -> (symbol -> float) -> Interval.t
(** Value enclosure at one concrete noise assignment:
    [center + sum_j a_j eps_j + rem].  Test oracle for per-world
    soundness; for forms with [events > 0] it holds on the
    intersection of the box with the chord events (almost every
    Gaussian draw at practical [k]). *)

val attribution : t -> (string * float) list
(** Per-class sigma contributions [sqrt (sum of squared coefficients)]
    grouped by {!class_name}, largest first. *)

val dominant : ?n:int -> t -> (symbol * float) list
(** The [n] (default 5) largest-|coefficient| symbols, largest first. *)

val pp : Format.formatter -> t -> unit
