(** Shared diagnostic framework for the analyzer passes.

    Every pass emits {!finding}s: pass name, severity, location in the
    design, a human-readable message and a structured payload (numbers
    the CLI's JSON output preserves exactly).  A {!t} aggregates the
    findings of one analyzer run. *)

type severity = Info | Warn | Error

type location =
  | Pipeline  (** the whole pipeline / whole-model scope *)
  | Stage of int
  | Node of { stage : int; node : int }

type value = Num of float | Int of int | Text of string | Flag of bool

type finding = {
  pass : string;  (** e.g. ["bounds"], ["reconvergence"], ["criticality"] *)
  severity : severity;
  location : location;
  message : string;
  data : (string * value) list;  (** structured payload, key order kept *)
}

type t = { findings : finding list }

val finding :
  ?severity:severity -> ?location:location -> ?data:(string * value) list ->
  pass:string -> string -> finding
(** Defaults: [Info], [Pipeline], empty payload. *)

val empty : t
val of_findings : finding list -> t
val concat : t list -> t
val count : t -> severity -> int
val has_errors : t -> bool

val sorted : t -> t
(** Stable order: severity (errors first), then pass name, then
    location (pipeline, stage, node). *)

val severity_name : severity -> string

val to_text : t -> string
(** One line per finding:
    [severity pass location: message (k=v, ...)]. *)

val schema_version : int
(** Version of the JSON document layout emitted by {!to_json}; bumped
    on structural changes so consumers can pin on it. *)

val to_json : t -> string
(** Self-contained JSON document: [{"schema_version": n, "findings":
    \[...\], "counts": {...}}].  Non-finite numbers are emitted as
    JSON strings (["inf"], ["-inf"], ["nan"]) so the document always
    parses. *)
