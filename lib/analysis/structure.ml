module Netlist = Spv_circuit.Netlist
module Pipeline = Spv_core.Pipeline
module Clark = Spv_core.Clark
module G = Spv_stats.Gaussian
module Correlation = Spv_stats.Correlation
module Special = Spv_stats.Special

type stem = {
  stem : int;
  branches : int;
  reconvergence_count : int;
  max_paths : float;
}

(* Per-stem path-count propagation: node ids are topological, so one
   forward scan accumulates the number of distinct stem-to-node paths.
   Counts are floats and saturate instead of overflowing. *)
let stem_of net s =
  let n = Netlist.n_nodes net in
  let paths = Array.make n 0.0 in
  paths.(s) <- 1.0;
  let reconv = ref 0 and max_paths = ref 1.0 in
  for i = s + 1 to n - 1 do
    match Netlist.node net i with
    | Netlist.Primary_input _ -> ()
    | Netlist.Gate { fanin; _ } ->
        let c = Array.fold_left (fun acc f -> acc +. paths.(f)) 0.0 fanin in
        paths.(i) <- c;
        if c >= 2.0 then begin
          incr reconv;
          if c > !max_paths then max_paths := c
        end
  done;
  let branches =
    List.length
      (List.filter (fun j -> Netlist.is_gate net j) (Netlist.fanouts net s))
  in
  { stem = s; branches; reconvergence_count = !reconv; max_paths = !max_paths }

let stems net =
  let n = Netlist.n_nodes net in
  let acc = ref [] in
  for s = n - 1 downto 0 do
    let gate_fanouts =
      List.filter (fun j -> Netlist.is_gate net j) (Netlist.fanouts net s)
    in
    if List.length gate_fanouts >= 2 then begin
      let st = stem_of net s in
      if st.reconvergence_count > 0 then acc := st :: !acc
    end
  done;
  !acc

(* Union of all reconvergence nodes across stems (gates reached by >= 2
   paths from at least one stem). *)
let reconvergent_region net sts =
  let n = Netlist.n_nodes net in
  let mark = Array.make n false in
  List.iter
    (fun st ->
      let paths = Array.make n 0.0 in
      paths.(st.stem) <- 1.0;
      for i = st.stem + 1 to n - 1 do
        match Netlist.node net i with
        | Netlist.Primary_input _ -> ()
        | Netlist.Gate { fanin; _ } ->
            let c =
              Array.fold_left (fun acc f -> acc +. paths.(f)) 0.0 fanin
            in
            paths.(i) <- c;
            if c >= 2.0 then mark.(i) <- true
      done)
    sts;
  Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 mark

let tie_scores pipeline =
  let gs = Pipeline.stage_gaussians pipeline in
  let corr = Pipeline.correlation pipeline in
  let n = Array.length gs in
  if n <= 1 then Array.make n 0.0
  else
    Array.init n (fun i ->
        (* Slowest other stage: the pairing that decides whether stage
           [i] can contend for the max. *)
        let l = ref (if i = 0 then 1 else 0) in
        for j = 0 to n - 1 do
          if j <> i && G.mu gs.(j) > G.mu gs.(!l) then l := j
        done;
        let l = !l in
        let si = G.sigma gs.(i) and sl = G.sigma gs.(l) in
        let rho = Correlation.get corr i l in
        let a2 = (si *. si) +. (sl *. sl) -. (2.0 *. rho *. si *. sl) in
        let a = sqrt (Float.max 0.0 a2) in
        let dmu = Float.abs (G.mu gs.(i) -. G.mu gs.(l)) in
        if a <= 0.0 then if dmu = 0.0 then 1.0 else 0.0
        else 2.0 *. Special.big_phi (-.dmu /. a))

type order_spread = { mu_spread : float; sigma_spread : float }

let order_sensitivity pipeline =
  let dists =
    List.map
      (fun order -> Pipeline.delay_distribution ~order pipeline)
      [ Clark.Increasing_mean; Clark.Decreasing_mean; Clark.As_given ]
  in
  let spread f =
    let vs = List.map f dists in
    List.fold_left Float.max neg_infinity vs
    -. List.fold_left Float.min infinity vs
  in
  { mu_spread = spread G.mu; sigma_spread = spread G.sigma }

(* ---- findings -------------------------------------------------------- *)

let pass_reconv = "reconvergence"
let pass_corr = "correlation"

let netlist_findings ?stage net =
  let location =
    match stage with None -> Report.Pipeline | Some s -> Report.Stage s
  in
  let node_location node =
    match stage with
    | None -> Report.Pipeline
    | Some s -> Report.Node { stage = s; node }
  in
  let sts = stems net in
  let region = reconvergent_region net sts in
  let n_gates = Netlist.n_gates net in
  let frac = if n_gates = 0 then 0.0 else float_of_int region /. float_of_int n_gates in
  let summary =
    Report.finding ~location ~pass:pass_reconv
      ~data:
        [
          ("stems", Report.Int (List.length sts));
          ("reconvergent_gates", Report.Int region);
          ("gates", Report.Int n_gates);
          ("fraction", Report.Num frac);
        ]
      "reconvergent-fanout summary"
  in
  let worst =
    let by_size =
      List.stable_sort
        (fun a b -> compare b.reconvergence_count a.reconvergence_count)
        sts
    in
    List.filteri (fun i _ -> i < 5) by_size
    |> List.map (fun st ->
           Report.finding ~location:(node_location st.stem) ~pass:pass_reconv
             ~data:
               [
                 ("branches", Report.Int st.branches);
                 ("reconvergences", Report.Int st.reconvergence_count);
                 ("max_paths", Report.Num st.max_paths);
               ]
             "reconvergent stem")
  in
  let warn =
    if frac > 0.25 then
      [
        Report.finding ~severity:Report.Warn ~location ~pass:pass_reconv
          ~data:[ ("fraction", Report.Num frac) ]
          "over a quarter of the gates sit on reconvergent paths: the \
           path-based stage model ignores the correlation between \
           near-critical paths here, so treat analytic stage sigmas with \
           care (prefer MC cross-checks)";
      ]
    else []
  in
  (summary :: worst) @ warn

let pipeline_findings pipeline =
  let gs = Pipeline.stage_gaussians pipeline in
  let n = Array.length gs in
  let scores = tie_scores pipeline in
  let worst_tie = Array.fold_left Float.max 0.0 scores in
  let tie_warns =
    scores
    |> Array.to_list
    |> List.mapi (fun i s -> (i, s))
    |> List.filter (fun (_, s) -> n > 1 && s >= 0.5)
    |> List.map (fun (i, s) ->
           Report.finding ~severity:Report.Warn ~location:(Report.Stage i)
             ~pass:pass_corr
             ~data:[ ("tie_score", Report.Num s) ]
             "stage mean nearly tied with the slowest contender: the max \
              of tied Gaussians is maximally skewed, so the Clark \
              Gaussian approximation is least trustworthy here")
  in
  let spread = order_sensitivity pipeline in
  let sigma_t = G.sigma (Pipeline.delay_distribution pipeline) in
  let rel s = if sigma_t > 0.0 then s /. sigma_t else 0.0 in
  let order_finding =
    let data =
      [
        ("mu_spread", Report.Num spread.mu_spread);
        ("sigma_spread", Report.Num spread.sigma_spread);
        ("sigma_total", Report.Num sigma_t);
      ]
    in
    if rel spread.mu_spread > 0.05 || rel spread.sigma_spread > 0.05 then
      Report.finding ~severity:Report.Warn ~pass:pass_corr ~data
        "Clark fold-order changes the result by more than 5% of sigma: \
         the iterated pairwise reduction is ambiguous on this pipeline"
    else Report.finding ~pass:pass_corr ~data "Clark fold-order spread"
  in
  let corr = Pipeline.correlation pipeline in
  let max_rho = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      max_rho := Float.max !max_rho (Float.abs (Correlation.get corr i j))
    done
  done;
  let structure_finding =
    Report.finding ~pass:pass_corr
      ~data:
        [
          ("stages", Report.Int n);
          ("max_abs_rho", Report.Num !max_rho);
          ("worst_tie_score", Report.Num worst_tie);
          ( "nearly_independent",
            Report.Flag (Spv_core.Yield.nearly_independent pipeline) );
        ]
      "stage correlation structure"
  in
  (structure_finding :: order_finding :: tie_warns) @ []
