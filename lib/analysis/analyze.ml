module Engine = Spv_engine.Engine

type result = {
  report : Report.t;
  bounds : Bounds.t;
  affine : Affine_sta.t;
  criticality : Static_criticality.t array option;
  cones : Cones.t;
  sensitivity : Dominance.t;
}

let verdict_findings ~pass ~what ~t_target checks =
  List.map
    (fun (label, verdict, (e : Engine.estimate)) ->
      let base_data =
        [
          ("method", Report.Text label);
          ("value", Report.Num e.value);
          ("t_target", Report.Num t_target);
        ]
      in
      match verdict with
      | Bounds.Pass { bound; slack } ->
          Report.finding ~pass
            ~data:
              (base_data
              @ [
                  ("lo", Report.Num (Interval.lo bound));
                  ("hi", Report.Num (Interval.hi bound));
                  ("slack", Report.Num slack);
                ])
            (Printf.sprintf "estimate within %s" what)
      | Bounds.Fail { bound; slack; excess; _ } ->
          Report.finding ~severity:Report.Error ~pass
            ~data:
              (base_data
              @ [
                  ("lo", Report.Num (Interval.lo bound));
                  ("hi", Report.Num (Interval.hi bound));
                  ("slack", Report.Num slack);
                  ("excess", Report.Num excess);
                ])
            (Printf.sprintf "estimate OUTSIDE %s" what))
    checks

let estimate_findings ~ctx bounds affine ~t_target =
  let estimates =
    List.map
      (fun method_ ->
        (Engine.method_name method_, Engine.yield ~method_ ctx ~t_target))
      [ Engine.Analytic_clark; Engine.Exact_independent; Engine.Quadrature ]
  in
  let against ~pass ~what check =
    verdict_findings ~pass ~what ~t_target
      (List.map (fun (label, e) -> (label, check e, e)) estimates)
  in
  against ~pass:"bounds-check" ~what:"Fréchet yield bounds"
    (Bounds.check ~t_target bounds)
  @ against ~pass:"affine-check" ~what:"affine yield envelope"
      (Affine_sta.check ~t_target affine)

(* The hierarchical pass deliberately runs on its own context and
   reports gaps as data instead of re-running the bounds/affine checks
   against the macro model: those checks certify the flat analyses,
   and a macro-model value sitting outside a flat certificate is the
   expected model gap, not an analysis error. *)
let hier_findings ?t_target ctx =
  let pass = "hier" in
  if not (Engine.Ctx.gate_level ctx) then
    [
      Report.finding ~severity:Report.Warn ~pass
        "hierarchical pass skipped: moments-only context has no netlists";
    ]
  else
    let hctx =
      match Engine.Ctx.mode ctx with
      | Engine.Hierarchical -> ctx
      | Engine.Flat ->
          let n = Engine.Ctx.n_stages ctx in
          let nets = Array.init n (Engine.Ctx.netlist ctx) in
          Engine.Ctx.of_circuits ~mode:Engine.Hierarchical
            ~output_load:(Engine.Ctx.output_load ctx)
            ~pitch:(Engine.Ctx.pitch ctx)
            ?ff:(Engine.Ctx.flipflop ctx)
            (Engine.Ctx.tech ctx) nets
    in
    let flat =
      match Engine.Ctx.flat_reference hctx with
      | Some p -> p
      | None -> assert false (* hctx is hierarchical by construction *)
    in
    let module P = Spv_core.Pipeline in
    let module St = Spv_core.Stage in
    let module G = Spv_stats.Gaussian in
    let stage_findings =
      List.init (Engine.Ctx.n_stages hctx) (fun i ->
          let h = St.gaussian (P.stage (Engine.Ctx.pipeline hctx) i) in
          let f = St.gaussian (P.stage flat i) in
          Report.finding ~pass
            ~data:
              [
                ("stage", Report.Num (float_of_int i));
                ("blocks", Report.Num (float_of_int (Engine.Ctx.n_blocks hctx i)));
                ("mu_gap", Report.Num (Float.abs (G.mu h -. G.mu f)));
                ("sigma_gap", Report.Num (Float.abs (G.sigma h -. G.sigma f)));
              ]
            (Printf.sprintf "stage %d composed from %d block macro(s)" i
               (Engine.Ctx.n_blocks hctx i)))
    in
    let pipeline_finding =
      match t_target with
      | None ->
          let e = Engine.delay_mean ~method_:Engine.Analytic_clark hctx in
          Report.finding ~pass
            ~data:
              [
                ("mean", Report.Num e.Engine.value);
                ( "hier_bound",
                  Report.Num (Option.value ~default:0.0 e.Engine.hier_bound) );
              ]
            "hierarchical mean delay vs flat reference"
      | Some t_target ->
          let e = Engine.yield ~method_:Engine.Analytic_clark hctx ~t_target in
          Report.finding ~pass
            ~data:
              [
                ("yield", Report.Num e.Engine.value);
                ("t_target", Report.Num t_target);
                ( "hier_bound",
                  Report.Num (Option.value ~default:0.0 e.Engine.hier_bound) );
              ]
            "hierarchical clark yield vs flat reference"
    in
    stage_findings @ [ pipeline_finding ]

let run ?k ?t_target ?(hier = false) ctx =
  let bounds = Bounds.of_ctx ?k ctx in
  let affine = Affine_sta.of_ctx ?k ctx in
  let gate = Engine.Ctx.gate_level ctx in
  let n = Engine.Ctx.n_stages ctx in
  let bounds_findings = Bounds.findings bounds in
  let affine_findings = Affine_sta.findings ?t_target affine in
  let pipeline_findings =
    Structure.pipeline_findings (Engine.Ctx.pipeline ctx)
  in
  let reconv_findings =
    if not gate then []
    else
      List.concat
        (List.init n (fun i ->
             Structure.netlist_findings ~stage:i (Engine.Ctx.netlist ctx i)))
  in
  let criticality =
    if not gate then None
    else
      Some
        (Array.init n (fun i ->
             Static_criticality.analyse ?k
               ~output_load:(Engine.Ctx.output_load ctx)
               (Engine.Ctx.tech ctx) (Engine.Ctx.netlist ctx i)))
  in
  let crit_findings =
    match criticality with
    | None -> []
    | Some cs ->
        List.concat
          (List.mapi
             (fun i c -> Static_criticality.findings ~stage:i c)
             (Array.to_list cs))
  in
  let cones = Cones.analyse ?k ?t_target ctx in
  let cone_findings = Cones.findings cones in
  let sensitivity = Dominance.analyse ?t_target ctx in
  let sens_findings = Dominance.findings sensitivity in
  let check_findings =
    match t_target with
    | None -> []
    | Some t_target -> estimate_findings ~ctx bounds affine ~t_target
  in
  let hier_findings =
    if not hier then [] else hier_findings ?t_target ctx
  in
  let report =
    Report.sorted
      (Report.of_findings
         (bounds_findings @ affine_findings @ pipeline_findings
        @ reconv_findings @ crit_findings @ cone_findings @ sens_findings
        @ check_findings @ hier_findings))
  in
  { report; bounds; affine; criticality; cones; sensitivity }
