module Engine = Spv_engine.Engine

type result = {
  report : Report.t;
  bounds : Bounds.t;
  affine : Affine_sta.t;
  criticality : Criticality.t array option;
}

let verdict_findings ~pass ~what ~t_target checks =
  List.map
    (fun (label, verdict, (e : Engine.estimate)) ->
      let base_data =
        [
          ("method", Report.Text label);
          ("value", Report.Num e.value);
          ("t_target", Report.Num t_target);
        ]
      in
      match verdict with
      | Bounds.Pass { bound; slack } ->
          Report.finding ~pass
            ~data:
              (base_data
              @ [
                  ("lo", Report.Num (Interval.lo bound));
                  ("hi", Report.Num (Interval.hi bound));
                  ("slack", Report.Num slack);
                ])
            (Printf.sprintf "estimate within %s" what)
      | Bounds.Fail { bound; slack; excess; _ } ->
          Report.finding ~severity:Report.Error ~pass
            ~data:
              (base_data
              @ [
                  ("lo", Report.Num (Interval.lo bound));
                  ("hi", Report.Num (Interval.hi bound));
                  ("slack", Report.Num slack);
                  ("excess", Report.Num excess);
                ])
            (Printf.sprintf "estimate OUTSIDE %s" what))
    checks

let estimate_findings ~ctx bounds affine ~t_target =
  let estimates =
    List.map
      (fun method_ ->
        (Engine.method_name method_, Engine.yield ~method_ ctx ~t_target))
      [ Engine.Analytic_clark; Engine.Exact_independent; Engine.Quadrature ]
  in
  let against ~pass ~what check =
    verdict_findings ~pass ~what ~t_target
      (List.map (fun (label, e) -> (label, check e, e)) estimates)
  in
  against ~pass:"bounds-check" ~what:"Fréchet yield bounds"
    (Bounds.check ~t_target bounds)
  @ against ~pass:"affine-check" ~what:"affine yield envelope"
      (Affine_sta.check ~t_target affine)

let run ?k ?t_target ctx =
  let bounds = Bounds.of_ctx ?k ctx in
  let affine = Affine_sta.of_ctx ?k ctx in
  let gate = Engine.Ctx.gate_level ctx in
  let n = Engine.Ctx.n_stages ctx in
  let bounds_findings = Bounds.findings bounds in
  let affine_findings = Affine_sta.findings ?t_target affine in
  let pipeline_findings =
    Structure.pipeline_findings (Engine.Ctx.pipeline ctx)
  in
  let reconv_findings =
    if not gate then []
    else
      List.concat
        (List.init n (fun i ->
             Structure.netlist_findings ~stage:i (Engine.Ctx.netlist ctx i)))
  in
  let criticality =
    if not gate then None
    else
      Some
        (Array.init n (fun i ->
             Criticality.analyse ?k
               ~output_load:(Engine.Ctx.output_load ctx)
               (Engine.Ctx.tech ctx) (Engine.Ctx.netlist ctx i)))
  in
  let crit_findings =
    match criticality with
    | None -> []
    | Some cs ->
        List.concat
          (List.mapi
             (fun i c -> Criticality.findings ~stage:i c)
             (Array.to_list cs))
  in
  let check_findings =
    match t_target with
    | None -> []
    | Some t_target -> estimate_findings ~ctx bounds affine ~t_target
  in
  let report =
    Report.sorted
      (Report.of_findings
         (bounds_findings @ affine_findings @ pipeline_findings
        @ reconv_findings @ crit_findings @ check_findings))
  in
  { report; bounds; affine; criticality }
