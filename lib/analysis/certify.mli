(** Static sizing certificates: sound membership checks of a sizing
    result against the paper's eq. 10–13 design space at a target
    yield.

    Given the achieved per-stage delay Gaussians [(mu_i, sigma_i)] and
    a [(t_target, yield)] goal, the checker decides one of three
    verdicts without sampling:

    - {b Refuted}: some stage's marginal yield
      [Phi((T - mu_i)/sigma_i)] is below the pipeline target.  By the
      Fréchet upper bound [P{max <= T} <= min_i Phi_i] this refutes
      the design under {e any} stage dependence — the refuting stage
      is the structured counterexample.
    - {b Proved}: either the dependence-free Fréchet lower bound
      [1 - sum_i (1 - Phi_i)] reaches the target, or — when every
      pairwise stage correlation is nonnegative — the independence
      product [prod_i Phi_i] does (Slepian's inequality makes the
      product a lower bound under positive dependence).
    - {b Inconclusive}: neither side is decided; the certificate
      neither proves nor refutes.

    Per stage the checker also reports the eq. 11 (relaxed) and eq. 12
    (equality-allocation) sigma caps and eq. 12 admissibility, plus
    the eq. 10 mean cap for the pipeline. *)

type status = Proved | Refuted | Inconclusive

val status_name : status -> string

type stage_check = {
  stage : int;
  point : Spv_core.Design_space.point;  (** achieved (mu, sigma) *)
  stage_yield : float;  (** [Phi((T - mu)/sigma)]; step function at sigma 0 *)
  required_yield : float;  (** eq. 12 allocation [yield^(1/n)] *)
  sigma_cap_equality : float;  (** eq. 12 sigma bound at this mu *)
  sigma_cap_relaxed : float;  (** eq. 11 sigma bound at this mu *)
  admissible : bool;  (** eq. 12 membership ([Design_space.admissible]) *)
}

type t = {
  t_target : float;
  yield : float;
  n_stages : int;
  stages : stage_check array;
  product_yield : float;  (** [prod_i Phi_i] (eq. 8 closed form) *)
  min_yield : float;  (** Fréchet upper bound on the true yield *)
  frechet_lo : float;  (** dependence-free lower bound [1 - sum (1-Phi_i)] *)
  mu_t_cap : float;
      (** eq. 10 mean cap [T - sigma_T Phi^-1(yield)], with the
          largest stage sigma standing in for [sigma_T] (informational
          — never drives a refutation) *)
  nonneg_correlation : bool;
      (** true when every pairwise stage correlation is >= 0, enabling
          the Slepian prove path *)
  status : status;
  counterexample : stage_check option;  (** the refuting stage, if any *)
}

val of_points :
  ?nonneg_correlation:bool -> t_target:float -> yield:float ->
  Spv_core.Design_space.point array -> t
(** Certificate over explicit stage Gaussians.  [nonneg_correlation]
    defaults to [false] (the Slepian path needs evidence of positive
    dependence; without it only the dependence-free bounds are used).
    Raises [Invalid_argument] on an empty array, non-finite inputs,
    negative sigma, non-positive [t_target], or [yield] outside
    (0.5, 1). *)

val of_ctx :
  ?t_target:float -> yield:float -> Spv_engine.Engine.Ctx.t -> t
(** Certificate of a context's achieved stage Gaussians.
    [t_target] defaults to the context's Clark mean plus three Clark
    sigmas.  Positive dependence is read off the context's stage
    correlation matrix. *)

type solution = {
  sol_t_target : float;
  sol_yield : float;
  points : Spv_core.Design_space.point array;
}

val parse_solution : string -> (solution, string) result
(** Parse a solution file (contents, not path).  Line format:
    [t_target <float>], [yield <float>], [stage <i> <mu> <sigma>];
    [#] starts a comment; blank lines ignored.  Stage indices must be
    exactly [0 .. n-1] (any order).  Returns [Error msg] on malformed
    input. *)

val findings : t -> Report.finding list
(** Pass ["certify"]: one pipeline finding with the verdict and
    bounds, one per-stage finding with the achieved point, its yield
    and sigma caps ([Error] severity on a refuting stage — the
    structured counterexample — [Warn] on an eq. 12 inadmissible but
    not refuting stage). *)

val sizing_check :
  where:string -> t_target:float -> z:float -> converged:bool ->
  mu:float -> sigma:float -> (unit, string) result
(** Single-stage certificate for the sizing hook: the achieved stage
    must reach its allocated yield [Phi(z)], i.e.
    [mu + z sigma <= t_target (1 + tol)] with the sizers' convergence
    tolerance ([tol = 1e-2]).  Unconverged reports and non-positive
    [z] are skipped ([Ok ()]) — the sizer already signals failure. *)

val install_sizing_check : unit -> unit
(** Register {!sizing_check} as the [Spv_sizing.Certify_hook] oracle
    (enabled by [SPV_CERTIFY_SIZING] or
    [Spv_sizing.Certify_hook.set_enabled]). *)
