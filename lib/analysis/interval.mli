(** Closed real intervals — the abstract domain of the bounds pass.

    An interval [\[lo, hi\]] stands for "every concrete value this
    quantity can take (under the analyzer's bounded-variation
    hypothesis) lies between [lo] and [hi]".  Operations are the exact
    interval-arithmetic counterparts of the concrete ones used by the
    timing model (sum along a path, max over fanins/stages, scaling by
    a non-negative nominal delay), so propagation is sound by
    construction. *)

type t = private { lo : float; hi : float }

val make : lo:float -> hi:float -> t
(** Raises [Invalid_argument] when [lo > hi] or either end is NaN.
    Infinite endpoints are allowed (degenerate bounds are represented,
    then reported by the passes). *)

val point : float -> t
(** The singleton [\[x, x\]].  Raises on NaN. *)

val lo : t -> float
val hi : t -> float
val width : t -> float

val add : t -> t -> t
val scale : t -> float -> t
(** Scale by a non-negative factor; raises on negative. *)

val shift : t -> float -> t
(** Translate both endpoints. *)

val neg : t -> t
(** [\[-hi, -lo\]]. *)

val sym : float -> t
(** [sym r] is the symmetric interval [\[-|r|, |r|\]].  Raises on NaN. *)

val mul : t -> t -> t
(** Exact interval product (all four endpoint products, min/max) —
    needed when an affine remainder is scaled by an interval
    coefficient.  Sound for mixed-sign operands, unlike {!scale}. *)

val max2 : t -> t -> t
(** Interval max: [\[max lo lo', max hi hi'\]]. *)

val max_many : t array -> t
(** Raises on an empty array. *)

val hull : t -> t -> t
(** Smallest interval containing both. *)

val contains : ?slack:float -> t -> float -> bool
(** [contains i x]: [lo - slack <= x <= hi + slack] (default slack 0).
    NaN is never contained. *)

val is_finite : t -> bool
val mem_all : ?slack:float -> t -> float array -> int
(** Number of array entries {e outside} the (slack-widened) interval. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
