module Engine = Spv_engine.Engine
module Net = Spv_circuit.Netlist
module Sta = Spv_circuit.Sta
module Hook = Spv_sizing.Sens_hook
module I = Interval

let fp_margin = 1e-5

(* Certified stat-delay change of one move over its own size box:
   [Some (delta, value_width)] when the enclosure is certified, [None]
   when decertified (undecided critical path) or the pass aborts. *)
let move_cert (env : Hook.prune_env) (mv : Hook.move) =
  match
    Sensitivity.stage ~output_load:env.Hook.pe_output_load ?ff:env.Hook.pe_ff
      env.Hook.pe_tech env.Hook.pe_net
      ~param:(Sensitivity.Size mv.Hook.mv_node)
      ~box:(I.make ~lo:mv.Hook.mv_from ~hi:mv.Hook.mv_to)
  with
  | s ->
      let st = Sensitivity.stat ~z:env.Hook.pe_z s in
      if st.Sensitivity.certified && I.is_finite st.Sensitivity.deriv then
        let delta =
          I.mul st.Sensitivity.deriv
            (I.point (mv.Hook.mv_to -. mv.Hook.mv_from))
        in
        Some (delta, I.width st.Sensitivity.value)
      else None
  | exception _ -> None

let prune_moves env moves =
  let moves_a = Array.of_list moves in
  let n = Array.length moves_a in
  let certs = Array.map (move_cert env) moves_a in
  let prune = Array.make n false in
  (* No-op and certified-harmful moves fail the sizer's strict
     improvement test [trial < current]. *)
  Array.iteri
    (fun k c ->
      match c with
      | Some (delta, value_width) ->
          if value_width = 0.0 || I.lo delta >= fp_margin then
            prune.(k) <- true
      | None -> ())
    certs;
  (* Dominance: the accepted move is the maximum-gain improving move,
     so any certified move whose gain upper bound sits strictly below
     a kept move's positive gain lower bound can never be accepted.
     Margins are the stat-delay margin scaled by each move's own area
     denominator — the sizer's gain normalisation. *)
  let denom k = Float.max moves_a.(k).Hook.mv_darea 1e-9 in
  let gain_lo k delta = (-.I.hi delta -. fp_margin) /. denom k in
  let gain_hi k delta = (-.I.lo delta +. fp_margin) /. denom k in
  let best = ref None in
  Array.iteri
    (fun k c ->
      match c with
      | Some (delta, _) when not prune.(k) ->
          let gl = gain_lo k delta in
          if gl > 0.0 then
            (match !best with
            | Some (_, g) when g >= gl -> ()
            | _ -> best := Some (k, gl))
      | _ -> ())
    certs;
  (match !best with
  | None -> ()
  | Some (j, gl) ->
      Array.iteri
        (fun k c ->
          match c with
          | Some (delta, _) when k <> j && not prune.(k) ->
              if gain_hi k delta < gl then prune.(k) <- true
          | _ -> ())
        certs);
  prune

(* The probe acceptance test is [trial > current +. 1e-9]; requiring
   the certified upper bound to sit at or below [current +. 5e-10]
   leaves half the acceptance headroom to absorb the ulp-level gap
   between the interval mirror and the concrete estimator. *)
let yield_skip (e : Hook.yield_skip_env) =
  let model =
    if e.Hook.ye_independent then Sensitivity.Independent_product
    else Sensitivity.Clark
  in
  match
    Sensitivity.yield_upper_bound_over_box e.Hook.ye_ctx ~model
      ~stage:e.Hook.ye_stage ~lo:e.Hook.ye_min_size ~hi:e.Hook.ye_max_size
      ~t_target:e.Hook.ye_t_target
  with
  | Some upper -> upper <= e.Hook.ye_current +. 5e-10
  | None -> false
  | exception _ -> false

let install_sizing_prune () =
  Hook.register_move_prune prune_moves;
  Hook.register_yield_skip yield_skip

type gate_cert = {
  gc_stage : int;
  gc_node : int;
  gc_size : float;
  gc_box : I.t;
  gc_mu : Sensitivity.enclosure;
  gc_sigma : Sensitivity.enclosure;
  gc_yield : Sensitivity.enclosure option;
}

type t = { gate_level : bool; certs : gate_cert list }

let take k l =
  let rec go k = function
    | x :: rest when k > 0 -> x :: go (k - 1) rest
    | _ -> []
  in
  go k l

let analyse ?(k = 4) ?(box_factor = 1.3) ?t_target ctx =
  if k < 1 then invalid_arg "Dominance.analyse: k < 1";
  if not (box_factor > 1.0) then
    invalid_arg "Dominance.analyse: box_factor <= 1";
  if not (Engine.Ctx.gate_level ctx) then { gate_level = false; certs = [] }
  else begin
    let n = Engine.Ctx.n_stages ctx in
    let cache = Sensitivity.Cache.create () in
    let certs =
      List.concat
        (List.init n (fun i ->
             let net = Engine.Ctx.netlist ctx i in
             let sta =
               Sta.run ~output_load:(Engine.Ctx.output_load ctx)
                 (Engine.Ctx.tech ctx) net
             in
             let knobs =
               take k
                 (List.filter (fun g -> Net.is_gate net g)
                    sta.Sta.critical_path)
             in
             List.map
               (fun g ->
                 let size = Net.size net g in
                 let box =
                   I.make ~lo:(size /. box_factor) ~hi:(size *. box_factor)
                 in
                 let s =
                   Sensitivity.ctx_stage ~cache ctx ~stage:i
                     ~param:(Sensitivity.Size g) ~box
                 in
                 let gc_yield =
                   Option.map
                     (fun t_target ->
                       Sensitivity.ctx_yield ~cache ctx
                         ~model:Sensitivity.Clark ~stage:i
                         ~param:(Sensitivity.Size g) ~box ~t_target)
                     t_target
                 in
                 {
                   gc_stage = i;
                   gc_node = g;
                   gc_size = size;
                   gc_box = box;
                   gc_mu = s.Sensitivity.s_mu;
                   gc_sigma = s.Sensitivity.s_sigma;
                   gc_yield;
                 })
               knobs))
    in
    { gate_level = true; certs }
  end

let sign_word = function
  | Some Sensitivity.Increasing -> "increasing"
  | Some Sensitivity.Decreasing -> "decreasing"
  | None -> "mixed-sign"

let findings t =
  let pass = "sensitivity" in
  if not t.gate_level then
    [
      Report.finding ~severity:Report.Warn ~pass
        "sensitivity pass skipped: moments-only context has no netlists";
    ]
  else
    let enc_data name (e : Sensitivity.enclosure) =
      [
        (name ^ "_lo", Report.Num (I.lo e.Sensitivity.deriv));
        (name ^ "_hi", Report.Num (I.hi e.Sensitivity.deriv));
        (name ^ "_certified", Report.Num (if e.Sensitivity.certified then 1.0 else 0.0));
      ]
    in
    let per_knob =
      List.map
        (fun c ->
          let data =
            [
              ("stage", Report.Num (float_of_int c.gc_stage));
              ("node", Report.Num (float_of_int c.gc_node));
              ("size", Report.Num c.gc_size);
              ("box_lo", Report.Num (I.lo c.gc_box));
              ("box_hi", Report.Num (I.hi c.gc_box));
            ]
            @ enc_data "dmu" c.gc_mu
            @ enc_data "dsigma" c.gc_sigma
            @ (match c.gc_yield with
              | None -> []
              | Some y -> enc_data "dyield" y)
          in
          let certified = c.gc_mu.Sensitivity.certified in
          Report.finding ~pass ~data
            (Printf.sprintf
               "stage %d gate %d: d(mu)/d(size) %s over [%.3g, %.3g]%s"
               c.gc_stage c.gc_node
               (if certified then
                  sign_word (Sensitivity.monotone_sign c.gc_mu)
                else "uncertified (critical path may switch)")
               (I.lo c.gc_box) (I.hi c.gc_box)
               (match c.gc_yield with
               | Some y when y.Sensitivity.certified -> "; yield derivative certified"
               | _ -> "")))
        t.certs
    in
    let n = List.length t.certs in
    let n_cert =
      List.length
        (List.filter (fun c -> c.gc_mu.Sensitivity.certified) t.certs)
    in
    let n_mono =
      List.length
        (List.filter
           (fun c -> Sensitivity.monotone_sign c.gc_mu <> None)
           t.certs)
    in
    Report.finding ~pass
      ~data:
        [
          ("knobs", Report.Num (float_of_int n));
          ("certified", Report.Num (float_of_int n_cert));
          ("monotone", Report.Num (float_of_int n_mono));
        ]
      (Printf.sprintf
         "sensitivity: %d/%d size knobs certified over the design box, %d \
          monotone"
         n_cert n n_mono)
    :: per_knob
