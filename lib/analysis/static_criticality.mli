(** Static criticality: which gates can {e ever} set a stage's delay
    under the interval bounds — and the prune masks that let the
    engine's gate-level Monte-Carlo skip the rest.

    Soundness argument (per stage, all worlds restricted to the
    [±k sigma] box):

    - [through_hi g] = hi-corner arrival at [g] plus the hi-corner
      longest gate-path from [g] to any primary output.  Both terms are
      monotone in the per-gate factors, so [through_hi g] dominates the
      length of the longest output-bound path through [g] in every
      in-box world;
    - [lo_delay] = the all-lo-corner STA delay, a lower bound on the
      stage delay in every in-box world;
    - a gate with [through_hi g < lo_delay] therefore never lies on a
      critical path: masking it cannot change the stage delay, and
      because the sampler consumes the identical RNG stream either way,
      pruned Monte-Carlo results are bit-for-bit identical whenever no
      draw escapes the box (probability [<= 2 Phi(-k)] per component
      draw — ~2e-9 at the default k = 6). *)

type t = {
  levels : int array;  (** logic level per node *)
  lo_sta : Spv_circuit.Sta.result;  (** all-lo-corner STA *)
  hi_sta : Spv_circuit.Sta.result;  (** all-hi-corner STA *)
  through_hi : float array;
      (** per node: upper bound on the longest output-bound path through
          it; [neg_infinity] for nodes that reach no output *)
  lo_delay : float;
  active : bool array;  (** per node; inputs always active *)
  n_gates : int;
  n_active_gates : int;
}

val analyse :
  ?k:float -> ?output_load:float -> Spv_process.Tech.t ->
  Spv_circuit.Netlist.t -> t
(** Levelise, run the two corner STAs, extract the possibly-critical
    cone.  [k] defaults to 6.0, [output_load] to 4.0 (the engine's
    default).  Raises [Invalid_argument] on invalid [k]. *)

val active_mask : t -> bool array
(** Fresh copy of the per-node activity mask. *)

val cone : t -> int list
(** Ids of the possibly-critical gates, ascending. *)

val prunable_fraction : t -> float
(** Fraction of gates proven never-critical (0 when the netlist has no
    gates). *)

val masks_for_ctx :
  ?k:float -> Spv_engine.Engine.Ctx.t -> bool array array
(** One activity mask per stage, using the context's own technology,
    netlists and output load.  Gate-level contexts only. *)

val prune_ctx : ?k:float -> Spv_engine.Engine.Ctx.t -> Spv_engine.Engine.Ctx.t
(** [Engine.Ctx.with_prune ctx (masks_for_ctx ctx)]: the context with
    statically non-critical gates masked out of gate-level sampling. *)

val findings : ?stage:int -> t -> Report.finding list
(** Criticality findings ([pass = "criticality"]): cone size, prunable
    fraction, depth, corner delays. *)
