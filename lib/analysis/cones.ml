module Engine = Spv_engine.Engine
module Mvn = Spv_stats.Mvn
module Special = Spv_stats.Special
module Netlist = Spv_circuit.Netlist
module Sta = Spv_circuit.Sta

(* Failure-cone criticality analysis.

   Everything here is derived from the affine forms of {!Affine_sta} —
   the exact models of what the engine's samplers draw — so every
   probability below is a guaranteed enclosure, not an estimate:

   - stage criticality: {stage s sets the pipeline delay}
     = intersection over j <> s of {X_j <= X_s}.  Both bounds are
     exact Gaussian statements, because every pairwise difference of
     model forms is purely affine (no chord remainder): the lower
     bound is the union bound on the complement,
     1 - sum_j P{X_j > X_s}, the upper bound is P{X_c <= X_s} for the
     reference (largest-mean other) stage c.  Chord-max forms are
     deliberately kept out of these events: at k = 6 the relu chord
     overshoots the true max by O(k sigma), which would make any
     max-form-based lower bound vacuous;

   - gate criticality (within a stage): the stage delay is exactly
     the max over input-to-output gate paths of the path's delay sum,
     and each path sum is an affine form with no chord remainder.  So
     when the stage has at most [path_cap] paths, the lower bound is
     again a union bound over near-exact events: P{g critical}
     >= 1 - sum over paths q avoiding g of P{sum_q > path_g}, with
     path_g the best nominal path through g.  Stages with more paths
     fall back to reading the chord-max stage form against path_g —
     sound, but usually vacuous at k = 6 (see the stage note above).
     The upper bound is the probability that the chord-max
     through-form of g reaches the exact form of the nominal critical
     path, intersected with {!Static_criticality}'s corner proof: a
     gate proven never critical inside the +-k box can only be
     critical on the escape mass of the box, so its upper bound is
     clamped to the stage form's escape budget. *)

let check_k ~where k =
  if not (Float.is_finite k && k > 0.0) then
    invalid_arg (where ^ ": k must be finite and positive")

let default_threshold = 0.05

(* ---- stage-level criticality (model forms, Factor basis) ------------- *)

type stage_crit = {
  sc_stage : int;
  sc_crit : Interval.t;
  sc_depth : float option;
}

let prob_interval iv =
  Interval.make
    ~lo:(Float.max 0.0 (Interval.lo iv))
    ~hi:(Float.min 1.0 (Interval.hi iv))

(* Cancellation floor for a difference of two forms: anything below
   this in the difference is floating-point dust from the subtraction,
   not model content (structurally equal sums composed in different
   association order cancel to ~ulp-sized coefficients, never to
   exactly zero). *)
let dust_eps a b =
  let scale f = Float.abs (Affine.center f) +. Affine.sigma f in
  1e-9 *. Float.max 1.0 (Float.max (scale a) (scale b))

(* P{a > b} for two purely affine forms: their difference is an exact
   Gaussian, so this is a plain Phi evaluation (step function when the
   forms are proportional or tied — including ties up to cancellation
   dust, where Phi(mu/sigma) of two dust quantities would be
   garbage). *)
let prob_exceeds a b =
  let d = Affine.sub a b in
  let mu = Affine.center d and sigma = Affine.sigma d in
  let eps = dust_eps a b in
  if sigma > eps then Special.big_phi (mu /. sigma)
  else if mu > eps then 1.0
  else 0.0

let stage_criticalities mvn ~model_forms ~t_target =
  let n = Array.length model_forms in
  (* Reference stage: largest marginal mean; for the reference itself,
     the runner-up. *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b -> compare (Mvn.mean mvn b, a) (Mvn.mean mvn a, b))
    order;
  let best = order.(0) in
  let second = if n > 1 then order.(1) else best in
  Array.init n (fun s ->
      let form = model_forms.(s) in
      let lower =
        if n = 1 then 1.0
        else
          let miss = ref 0.0 in
          for j = 0 to n - 1 do
            if j <> s then miss := !miss +. prob_exceeds model_forms.(j) form
          done;
          Float.max 0.0 (1.0 -. !miss)
      in
      let upper =
        if n = 1 then 1.0
        else
          let c = if s = best then second else best in
          1.0 -. prob_exceeds model_forms.(c) form
      in
      let depth =
        match t_target with
        | None -> None
        | Some t ->
            let g = Mvn.marginal mvn s in
            let sigma = Spv_stats.Gaussian.sigma g in
            if sigma > 0.0 then
              Some ((t -. Spv_stats.Gaussian.mu g) /. sigma)
            else None
      in
      {
        sc_stage = s;
        sc_crit = Interval.make ~lo:(Float.min lower upper) ~hi:upper;
        sc_depth = depth;
      })

(* ---- gate-level criticality (one stage) ------------------------------ *)

(* Mirrors Affine_sta.stage_sta_form but keeps the whole DAG of forms:
   forward arrival forms, backward continuation ("down") forms, and
   the exact affine sums along the best *nominal* path through each
   gate.  Nodes are in topological order by construction of
   [Netlist.make]. *)
type stage_gates = {
  sg_bounds : Interval.t array;  (** per node; [0,0] for inputs and
                                     gates reaching no output *)
  sg_reaches : bool array;  (** reaches a primary output *)
  sg_escape : float;  (** escape budget of the stage's chord-max form *)
}

(* Stages with at most this many input-to-output gate paths get the
   tight path-union gate criticality lower bound; larger stages fall
   back to the (usually vacuous) chord-max bound. *)
let path_cap = 1024

let gate_criticalities ~k ctx ~sys_row ~stage =
  let tech = Engine.Ctx.tech ctx in
  let net = Engine.Ctx.netlist ctx stage in
  let nominal = Engine.Ctx.nominal_sta ctx stage in
  let n = Netlist.n_nodes net in
  let zero = Affine.const 0.0 in
  let gate_form = Array.make n zero in
  let arrival = Array.make n zero in
  (* Exact affine sum along the best nominal input-to-node path. *)
  let up_path = Array.make n zero in
  for i = 0 to n - 1 do
    match Netlist.node net i with
    | Netlist.Primary_input _ -> ()
    | Netlist.Gate { fanin; _ } ->
        let factor =
          Affine_sta.stage_factor_form ~k tech ~sys_row ~stage ~node:i
            ~size:(Netlist.size net i)
        in
        gate_form.(i) <- Affine.scale factor nominal.Sta.gate_delays.(i);
        let latest =
          Array.fold_left
            (fun acc f -> Affine.max2 ~k acc arrival.(f))
            zero fanin
        in
        arrival.(i) <- Affine.add latest gate_form.(i);
        let best_pred =
          Array.fold_left
            (fun acc f ->
              match acc with
              | None -> Some f
              | Some b ->
                  if nominal.Sta.arrival.(f) > nominal.Sta.arrival.(b) then
                    Some f
                  else acc)
            None fanin
        in
        let base =
          match best_pred with
          | Some p when nominal.Sta.arrival.(p) > 0.0 -> up_path.(p)
          | _ -> zero
        in
        up_path.(i) <- Affine.add base gate_form.(i)
  done;
  let outputs = Netlist.outputs net in
  let is_output = Array.make n false in
  Array.iter (fun o -> is_output.(o) <- true) outputs;
  let d_form = Affine.max_many ~k (Array.map (fun o -> arrival.(o)) outputs) in
  (* Backward: chord-max continuation forms, nominal best continuation
     (exact affine sum) and output reachability. *)
  let reaches = Array.make n false in
  let down = Array.make n zero in
  let down_nom = Array.make n neg_infinity in
  let down_path = Array.make n zero in
  for i = n - 1 downto 0 do
    let cands = ref (if is_output.(i) then [ zero ] else []) in
    if is_output.(i) then begin
      reaches.(i) <- true;
      down_nom.(i) <- 0.0;
      down_path.(i) <- zero
    end;
    List.iter
      (fun g ->
        if Netlist.is_gate net g && reaches.(g) then begin
          cands := Affine.add gate_form.(g) down.(g) :: !cands;
          reaches.(i) <- true;
          let via = nominal.Sta.gate_delays.(g) +. down_nom.(g) in
          if via > down_nom.(i) then begin
            down_nom.(i) <- via;
            down_path.(i) <- Affine.add gate_form.(g) down_path.(g)
          end
        end)
      (Netlist.fanouts net i);
    match !cands with
    | [] -> ()
    | cs -> down.(i) <- Affine.max_many ~k (Array.of_list cs)
  done;
  (* Exact affine form of the nominal critical path — the upper
     bound's reference: every critical gate's through-value reaches at
     least this path's length. *)
  let ref_path =
    List.fold_left
      (fun acc g -> Affine.add acc gate_form.(g))
      zero nominal.Sta.critical_path
  in
  let escape = Affine.escape_probability ~k d_form in
  let static = Static_criticality.analyse ~k ~output_load:(Engine.Ctx.output_load ctx) tech net in
  (* Path enumeration for the union-bound lower (see the module note):
     a full path starts at a gate with no gate fanin and ends at an
     output gate.  Positive gate delays mean the stage max is always
     attained on a full path, so the enumeration covers the max
     exactly.  Counts saturate at [path_cap + 1]. *)
  let paths =
    let count = Array.make n 0 in
    let sat a b = if a + b > path_cap + 1 then path_cap + 1 else a + b in
    for i = 0 to n - 1 do
      match Netlist.node net i with
      | Netlist.Primary_input _ -> ()
      | Netlist.Gate { fanin; _ } ->
          let c =
            Array.fold_left
              (fun acc f ->
                if Netlist.is_gate net f then sat acc count.(f) else acc)
              0 fanin
          in
          count.(i) <- (if c = 0 then 1 else c)
    done;
    let total =
      Array.fold_left
        (fun acc o -> if Netlist.is_gate net o then sat acc count.(o) else acc)
        0 outputs
    in
    if total > path_cap then None
    else begin
      let acc = ref [] in
      (* Suffix enumeration from each output backward over gate fanins. *)
      let rec go suffix i =
        let suffix = i :: suffix in
        let gate_fanin =
          match Netlist.node net i with
          | Netlist.Gate { fanin; _ } ->
              Array.to_list
                (Array.of_seq
                   (Seq.filter (Netlist.is_gate net) (Array.to_seq fanin)))
          | Netlist.Primary_input _ -> []
        in
        match gate_fanin with
        | [] ->
            let form =
              List.fold_left
                (fun f g -> Affine.add f gate_form.(g))
                (Affine.const 0.0) suffix
            in
            let members = Array.make n false in
            List.iter (fun g -> members.(g) <- true) suffix;
            acc := (form, members) :: !acc
        | fs -> List.iter (go suffix) fs
      in
      Array.iter (fun o -> if Netlist.is_gate net o then go [] o) outputs;
      Some !acc
    end
  in
  (* Difference of two forms with the subtraction's cancellation dust
     absorbed into the remainder: keeps an exact tie (same path sum
     composed in different association order) on the step-function
     branch of [cdf_bounds] instead of a spurious Phi(0) = 1/2. *)
  let diff a b = Affine.absorb_dust ~k ~eps:(dust_eps a b) (Affine.sub a b) in
  (* Upper side of P{a > b} through the sound cdf enclosure (remainder
     and escape mass included). *)
  let exceed_hi a b =
    1.0 -. Float.max 0.0 (Interval.lo (Affine.cdf_bounds ~k (diff a b) 0.0))
  in
  let bounds =
    Array.init n (fun i ->
        if (not (Netlist.is_gate net i)) || not reaches.(i) then
          Interval.point 0.0
        else begin
          let through = Affine.add arrival.(i) down.(i) in
          let path = Affine.add up_path.(i) down_path.(i) in
          let lower =
            match paths with
            | Some qs when static.Static_criticality.active.(i) ->
                let miss = ref 0.0 in
                List.iter
                  (fun (form, members) ->
                    if not members.(i) then
                      miss := !miss +. exceed_hi form path)
                  qs;
                Float.max 0.0 (1.0 -. !miss)
            | _ ->
                Float.max 0.0
                  (Interval.lo (Affine.cdf_bounds ~k (diff d_form path) 0.0))
          in
          let upper =
            Float.min 1.0
              (Interval.hi (Affine.cdf_bounds ~k (diff ref_path through) 0.0))
          in
          (* Corner-proof intersection: a statically pruned gate can
             only be critical outside the +-k box. *)
          let upper =
            if static.Static_criticality.active.(i) then upper
            else Float.min upper (Float.min 1.0 escape)
          in
          Interval.make ~lo:(Float.min lower upper) ~hi:upper
        end)
  in
  { sg_bounds = bounds; sg_reaches = reaches; sg_escape = escape }

(* ---- dominant failure cones ------------------------------------------ *)

type cone = {
  cn_stage : int;
  cn_stem : int;
  cn_gates : int array;
  cn_gate_crit : Interval.t;
  cn_crit : Interval.t;
  cn_shift : float array;
  cn_depth : float option;
}

(* Forward reachability from the stem, restricted to gates that still
   reach an output: the cone's member set. *)
let cone_gates net ~reaches ~stem =
  let n = Netlist.n_nodes net in
  let seen = Array.make n false in
  let acc = ref [] in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      if Netlist.is_gate net i && reaches.(i) then acc := i :: !acc;
      List.iter go (Netlist.fanouts net i)
    end
  in
  go stem;
  Array.of_list (List.sort compare !acc)

let frechet_and a b =
  prob_interval
    (Interval.make
       ~lo:(Float.max 0.0 (Interval.lo a +. Interval.lo b -. 1.0))
       ~hi:(Float.min (Interval.hi a) (Interval.hi b)))

(* Unit shift direction of one stage in the whitened (Cholesky/Factor)
   noise basis: row_s / sigma_s has norm 1 and is the direction of the
   minimal-norm design point for {X_s = t}. *)
let stage_unit_shift mvn s =
  let row = Mvn.cholesky_row mvn s in
  let sigma = Spv_stats.Gaussian.sigma (Mvn.marginal mvn s) in
  if sigma > 0.0 then Some (Array.map (fun l -> l /. sigma) row) else None

let rank_cones cones =
  let score c =
    ( Interval.lo c.cn_crit,
      Interval.lo c.cn_gate_crit,
      Interval.hi c.cn_crit )
  in
  List.sort
    (fun a b ->
      match compare (score b) (score a) with
      | 0 -> compare (a.cn_stage, a.cn_stem) (b.cn_stage, b.cn_stem)
      | c -> c)
    cones

(* ---- the pass -------------------------------------------------------- *)

type t = {
  co_k : float;
  co_threshold : float;
  co_t_target : float option;
  co_stages : stage_crit array;
  co_gates : stage_gates array option;
  co_slack : Affine.t option;
  co_cones : cone list;
}

let analyse ?(k = 6.0) ?(threshold = default_threshold) ?t_target ctx =
  let where = "Cones.analyse" in
  check_k ~where k;
  if not (Float.is_finite threshold && threshold >= 0.0 && threshold <= 1.0)
  then invalid_arg (where ^ ": threshold must be a probability");
  (match t_target with
  | Some t when not (Float.is_finite t) ->
      invalid_arg (where ^ ": non-finite t_target")
  | _ -> ());
  let mvn = Engine.Ctx.mvn ctx in
  let n = Engine.Ctx.n_stages ctx in
  let model_forms = Array.init n (Affine_sta.model_form mvn) in
  let pipe_model = Affine.max_many ~k model_forms in
  let stages = stage_criticalities mvn ~model_forms ~t_target in
  let slack =
    Option.map (fun t -> Affine.sub (Affine.const t) pipe_model) t_target
  in
  let gates, cones =
    if not (Engine.Ctx.gate_level ctx) then (None, [])
    else begin
      let rows = Affine_sta.spatial_rows ctx in
      let per_stage =
        Array.init n (fun s ->
            gate_criticalities ~k ctx ~sys_row:rows.(s) ~stage:s)
      in
      let cones = ref [] in
      for s = 0 to n - 1 do
        let net = Engine.Ctx.netlist ctx s in
        let sg = per_stage.(s) in
        let shift = stage_unit_shift mvn s in
        List.iter
          (fun (stem : Structure.stem) ->
            let members =
              cone_gates net ~reaches:sg.sg_reaches ~stem:stem.Structure.stem
            in
            if Array.length members > 0 then begin
              (* P{some member gate is critical for the stage}: at
                 least the best single member, at most the sum. *)
              let lo, hi =
                Array.fold_left
                  (fun (lo, hi) g ->
                    let b = sg.sg_bounds.(g) in
                    (Float.max lo (Interval.lo b), hi +. Interval.hi b))
                  (0.0, 0.0) members
              in
              let gate_crit =
                Interval.make ~lo:(Float.min lo 1.0) ~hi:(Float.min hi 1.0)
              in
              let crit = frechet_and stages.(s).sc_crit gate_crit in
              match shift with
              | None -> ()
              | Some u ->
                  cones :=
                    {
                      cn_stage = s;
                      cn_stem = stem.Structure.stem;
                      cn_gates = members;
                      cn_gate_crit = gate_crit;
                      cn_crit = crit;
                      cn_shift = u;
                      cn_depth = stages.(s).sc_depth;
                    }
                    :: !cones
            end)
          (Structure.stems net)
      done;
      (Some per_stage, rank_cones !cones)
    end
  in
  {
    co_k = k;
    co_threshold = threshold;
    co_t_target = t_target;
    co_stages = stages;
    co_gates = gates;
    co_slack = slack;
    co_cones = cones;
  }

let dominant_cones t =
  List.filter (fun c -> Interval.lo c.cn_crit >= t.co_threshold) t.co_cones

let gate_bounds t ~stage =
  match t.co_gates with
  | None -> None
  | Some per_stage -> Some (Array.copy per_stage.(stage).sg_bounds)

let slack_attribution t =
  match t.co_slack with None -> [] | Some s -> Affine.attribution s

(* ---- analyzer-derived importance proposal ---------------------------- *)

(* The engine-facing fast path: stage-level criticality only (no
   netlist traversal), because proposal construction sits on the
   sampling hot path.  A stage dominates when its criticality lower
   bound clears the threshold; the mixture then has one mode per stage
   that can cross the barrier, shifted to its *uncapped* design point
   (depth (t - mu_s) / sigma_s along row_s / sigma_s — the legacy
   mixture caps this depth at 6, which strands deep-tail proposals
   short of the barrier; see DESIGN §10), weighted by criticality x
   marginal exceedance.  [None] — no dominating stage — tells the
   engine to keep its legacy mixture. *)
let proposal ?(k = 6.0) ?(threshold = default_threshold) ctx ~t_target =
  check_k ~where:"Cones.proposal" k;
  if not (Float.is_finite t_target) then
    invalid_arg "Cones.proposal: non-finite t_target";
  let mvn = Engine.Ctx.mvn ctx in
  let n = Mvn.dim mvn in
  let model_forms = Array.init n (Affine_sta.model_form mvn) in
  let stages =
    stage_criticalities mvn ~model_forms ~t_target:(Some t_target)
  in
  let dominates =
    Array.exists (fun s -> Interval.lo s.sc_crit >= threshold) stages
  in
  if not dominates then None
  else begin
    let shifts = ref [] and alphas = ref [] in
    for s = n - 1 downto 0 do
      match (stage_unit_shift mvn s, stages.(s).sc_depth) with
      | Some u, Some depth when depth > 0.0 ->
          shifts := Array.map (fun c -> c *. depth) u :: !shifts;
          (* Criticality-weighted marginal exceedance, floored so that
             no mode and no alpha degenerates to an exact zero. *)
          let crit = Float.max (Interval.lo stages.(s).sc_crit) 1e-3 in
          let tail = Float.max (Special.upper_tail depth) 1e-300 in
          alphas := (crit *. tail) :: !alphas
      | _ -> ()
    done;
    match !shifts with
    | [] ->
        (* Barrier at or below every stage mean: a body target.  Hand
           the engine an explicit zero shift so its body detection
           reports the plain-MC fallback. *)
        Some ([| Array.make n 0.0 |], [| 1.0 |])
    | ss -> Some (Array.of_list ss, Array.of_list !alphas)
  end

let install_engine_proposal () =
  Engine.register_proposal_provider (fun ctx ~t_target ->
      proposal ctx ~t_target)

(* ---- findings -------------------------------------------------------- *)

let findings t =
  let num v = Report.Num v in
  let stage_findings =
    Array.to_list t.co_stages
    |> List.map (fun s ->
           let data =
             [
               ("crit_lower", num (Interval.lo s.sc_crit));
               ("crit_upper", num (Interval.hi s.sc_crit));
             ]
             @
             match s.sc_depth with
             | None -> []
             | Some d -> [ ("tail_depth", num d) ]
           in
           let severity =
             if Interval.is_finite s.sc_crit then Report.Info else Report.Error
           in
           Report.finding ~severity ~location:(Report.Stage s.sc_stage)
             ~pass:"cones" ~data "stage criticality bounds")
  in
  let cone_findings =
    let dom = dominant_cones t in
    List.filteri (fun i _ -> i < 5) (rank_cones dom)
    |> List.map (fun c ->
           Report.finding ~severity:Report.Warn
             ~location:(Report.Node { stage = c.cn_stage; node = c.cn_stem })
             ~pass:"cones"
             ~data:
               [
                 ("gates", Report.Int (Array.length c.cn_gates));
                 ("crit_lower", num (Interval.lo c.cn_crit));
                 ("crit_upper", num (Interval.hi c.cn_crit));
                 ("gate_crit_lower", num (Interval.lo c.cn_gate_crit));
                 ("gate_crit_upper", num (Interval.hi c.cn_gate_crit));
               ]
             "dominant failure cone at reconvergent stem")
  in
  let slack_findings =
    match (t.co_slack, t.co_t_target) with
    | Some slack, Some target ->
        let nominal = Affine.center slack in
        let sigma = Affine.sigma slack in
        let attrib =
          List.map
            (fun (cls, s) -> ("sigma_" ^ cls, num s))
            (Affine.attribution slack)
        in
        let severity = if nominal < 0.0 then Report.Warn else Report.Info in
        [
          Report.finding ~severity ~pass:"cones"
            ~data:
              ([
                 ("t_target", num target);
                 ("nominal_slack", num nominal);
                 ("slack_sigma", num sigma);
               ]
              @ attrib)
            "statistical slack to T_target";
        ]
    | _ -> []
  in
  let summary =
    let dom = dominant_cones t in
    Report.finding ~pass:"cones"
      ~data:
        [
          ("stages", Report.Int (Array.length t.co_stages));
          ("cones", Report.Int (List.length t.co_cones));
          ("dominant_cones", Report.Int (List.length dom));
          ("threshold", num t.co_threshold);
        ]
      "failure-cone criticality summary"
  in
  (summary :: slack_findings) @ stage_findings @ cone_findings
