(** Interval abstract domain over pipeline/netlist delays, and the
    machine-checkable oracle it yields for every [Spv_engine] estimate.

    Concretisation: fix [k] (default 6) and restrict every variation
    component to its [±k sigma] box — inter-die and systematic Vth/Leff
    shifts, the unit-variance spatial field, and each device's random
    component (sigma scaled by [1/sqrt size]).  Within that box:

    - each gate's delay factor is bounded by evaluating both the
      linearised and the exact alpha-power factor at the two extreme
      corners (the factor is monotone in each shift component, so
      corners are exact extrema — the hull of the two model variants
      covers whichever the sampler uses);
    - stage delay bounds follow from two corner STA runs (arrival
      times are monotone in the per-gate factors) plus the flip-flop
      overhead interval, hulled with the [±k sigma] span of the
      analytic stage-delay model so both the gate-level sampler and
      the moment-level MVN marginals are covered;
    - the pipeline delay bound is the interval max over stages.

    Two families of checks come out:

    - {b sample bounds} — any stage/pipeline delay drawn inside the box
      lies inside its interval (violations outside the box have
      probability [<= 2 Phi(-k)] per component draw, ~2e-9 at k = 6);
    - {b estimate bounds} — exact probabilistic envelopes that hold for
      {e any} dependence structure over the model marginals: Fréchet
      bounds on the yield [P(max <= t)] and the
      Jensen / Gaussian-union-bound envelope on the mean delay.
      {!check} asserts an [Engine] estimate against these (with an
      explicit tolerance for Clark's approximation error and sampling
      noise). *)

type stage_bound = {
  model : Interval.t;  (** +-k sigma span of the analytic stage model *)
  sta : Interval.t option;  (** corner-STA bound (gate-level contexts) *)
  total : Interval.t;  (** hull of the two *)
}

type t = {
  k : float;
  stages : stage_bound array;
  delay : Interval.t;  (** bound on the pipeline delay max_i SD_i *)
  mean : Interval.t;  (** envelope on E\[pipeline delay\] *)
  marginals : Spv_stats.Gaussian.t array;  (** model stage marginals *)
}

val of_ctx : ?k:float -> Spv_engine.Engine.Ctx.t -> t
(** Derive all bounds for a context.  [k] (default 6.0) must be finite
    and positive; raises [Invalid_argument] otherwise. *)

val gate_factor_interval :
  k:float -> Spv_process.Tech.t -> size:float -> Interval.t
(** Delay-factor bound for one device of the given size under the
    [±k sigma] box (exposed for tests). *)

val corner_factors :
  k:float -> Spv_process.Tech.t -> Spv_circuit.Netlist.t ->
  float array * float array
(** Per-node [(lo, hi)] delay-factor corner arrays for one netlist
    (1.0 at input nodes) — the inputs to the two corner STA runs.
    Shared with the criticality pass. *)

val yield_bounds : t -> t_target:float -> Interval.t
(** Exact Fréchet bounds on [P(max_i SD_i <= t)] from the model
    marginals: [\[max 0 (1 - sum_i (1 - Phi_i)), min_i Phi_i\]].
    Valid for every dependence structure, hence for every estimator. *)

(** {1 Estimate checking} *)

type verdict =
  | Pass of { bound : Interval.t; slack : float }
  | Fail of { bound : Interval.t; slack : float; value : float; excess : float }

val verdict_ok : verdict -> bool

val check :
  ?slack:float -> ?t_target:float -> t -> Spv_engine.Engine.estimate ->
  verdict
(** Assert one engine estimate against its bound.  With [t_target] the
    estimate is a yield and is checked against {!yield_bounds};
    without, it is a delay mean checked against the mean envelope.
    [slack] overrides the default tolerance: [6 x std_error] plus an
    analytic-approximation allowance (0.02 absolute for Clark-family
    yield closed forms, [0.01 x max sigma] for means; the independent
    product form is exact and gets essentially zero). *)

val findings : t -> Report.finding list
(** Per-stage and pipeline bound findings ([pass = "bounds"]); any
    non-finite interval (the variation box crossing the device cutoff,
    e.g. an absurd [k]) is reported at [Error] severity. *)

val install_engine_check : unit -> unit
(** Register {!check} as the engine's debug-mode postcondition (see
    [Spv_engine.Engine.register_estimate_check]).  Idempotent. *)
