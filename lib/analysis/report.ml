type severity = Info | Warn | Error

type location =
  | Pipeline
  | Stage of int
  | Node of { stage : int; node : int }

type value = Num of float | Int of int | Text of string | Flag of bool

type finding = {
  pass : string;
  severity : severity;
  location : location;
  message : string;
  data : (string * value) list;
}

type t = { findings : finding list }

let finding ?(severity = Info) ?(location = Pipeline) ?(data = []) ~pass
    message =
  { pass; severity; location; message; data }

let empty = { findings = [] }
let of_findings findings = { findings }
let concat ts = { findings = List.concat_map (fun t -> t.findings) ts }

let count t sev =
  List.length (List.filter (fun f -> f.severity = sev) t.findings)

let has_errors t = List.exists (fun f -> f.severity = Error) t.findings
let severity_rank = function Error -> 0 | Warn -> 1 | Info -> 2

let location_rank = function
  | Pipeline -> (-1, -1)
  | Stage s -> (s, -1)
  | Node { stage; node } -> (stage, node)

let sorted t =
  let cmp a b =
    let c = compare (severity_rank a.severity) (severity_rank b.severity) in
    if c <> 0 then c
    else
      let c = compare a.pass b.pass in
      if c <> 0 then c
      else compare (location_rank a.location) (location_rank b.location)
  in
  { findings = List.stable_sort cmp t.findings }

let severity_name = function
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let location_name = function
  | Pipeline -> "pipeline"
  | Stage s -> Printf.sprintf "stage %d" s
  | Node { stage; node } -> Printf.sprintf "stage %d node %d" stage node

let value_text = function
  | Num x -> Printf.sprintf "%g" x
  | Int i -> string_of_int i
  | Text s -> s
  | Flag b -> string_of_bool b

let to_text t =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%-5s %-13s %s: %s"
           (severity_name f.severity)
           f.pass
           (location_name f.location)
           f.message);
      (match f.data with
      | [] -> ()
      | data ->
          Buffer.add_string buf
            (Printf.sprintf " (%s)"
               (String.concat ", "
                  (List.map
                     (fun (k, v) -> Printf.sprintf "%s=%s" k (value_text v))
                     data))));
      Buffer.add_char buf '\n')
    t.findings;
  Buffer.contents buf

(* Minimal JSON emission (the repo carries no JSON dependency). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = Printf.sprintf "\"%s\"" (json_escape s)

let json_float x =
  if Float.is_finite x then Printf.sprintf "%.17g" x
  else if Float.is_nan x then json_string "nan"
  else if x > 0.0 then json_string "inf"
  else json_string "-inf"

let json_value = function
  | Num x -> json_float x
  | Int i -> string_of_int i
  | Text s -> json_string s
  | Flag b -> string_of_bool b

let json_location = function
  | Pipeline -> {|{"kind": "pipeline"}|}
  | Stage s -> Printf.sprintf {|{"kind": "stage", "stage": %d}|} s
  | Node { stage; node } ->
      Printf.sprintf {|{"kind": "node", "stage": %d, "node": %d}|} stage node

let json_finding f =
  let data =
    String.concat ", "
      (List.map (fun (k, v) -> json_string k ^ ": " ^ json_value v) f.data)
  in
  Printf.sprintf
    {|{"pass": %s, "severity": %s, "location": %s, "message": %s, "data": {%s}}|}
    (json_string f.pass)
    (json_string (severity_name f.severity))
    (json_location f.location)
    (json_string f.message)
    data

(* Bump on any structural change to the JSON document (new top-level
   fields, renamed keys): consumers pin on this, not on the CLI
   version.  2 = schema_version field added alongside the affine
   pass.  3 = cones pass (failure-cone criticality, statistical slack,
   dominant-cone rankings) added to every analyze document.  4 =
   sensitivity pass (certified derivative enclosures and dominance
   certificates over the sizing design box) added to every analyze
   document. *)
let schema_version = 4

let to_json t =
  let findings = String.concat ",\n    " (List.map json_finding t.findings) in
  Printf.sprintf
    {|{
  "schema_version": %d,
  "findings": [
    %s
  ],
  "counts": {"error": %d, "warn": %d, "info": %d}
}
|}
    schema_version findings (count t Error) (count t Warn) (count t Info)
