(** Deprecated alias of {!Static_criticality}.

    The name [Criticality] used to be carried by two unrelated modules:
    this gate-level prune-mask prover and the stage-criticality
    heuristic now called [Spv_core.Stage_criticality].  Use
    {!Static_criticality} directly; this alias only keeps the old path
    compiling and will be removed. *)

include module type of struct
  include Static_criticality
end
