(** Failure-cone criticality analysis: static criticality
    probabilities, statistical slack, and the analyzer-derived
    importance-sampling proposal.

    Everything is computed from the affine/zonotope delay forms of
    {!Affine_sta} — the exact models of what the engine's samplers
    draw — so every probability is a {e guaranteed enclosure}, not an
    estimate:

    - {b stage criticality} [P{stage s sets the pipeline delay}]: the
      event is the intersection over [j <> s] of [{X_j <= X_s}], and
      every pairwise difference of model forms is purely affine — an
      exact Gaussian — so both bounds are exact probability
      statements: below, the union bound on the complement
      [1 - sum_j P{X_j > X_s}]; above, [P{X_c <= X_s}] against the
      reference (largest-mean other) stage [c], a superset of the
      criticality event;
    - {b gate criticality} (within its stage) [P{gate g lies on a
      critical path}]: the stage delay is exactly the max over
      input-to-output gate paths of the path's delay sum, and each
      path sum is purely affine.  For stages with at most 1024 such
      paths the lower bound is the union bound over near-exact events,
      [1 - sum over paths q avoiding g of P{sum_q > path_g}] with
      [path_g] the best {e nominal} path through [g]; larger stages
      fall back to reading the chord-max stage form against [path_g]
      (sound, usually vacuous at [k = 6]).  The upper bound is the
      probability that the chord-max through-form of [g] reaches the
      exact form of the nominal critical path — intersected with
      {!Static_criticality}'s corner proof (a gate proven
      never-critical inside the [+-k] box can only be critical on the
      escape mass).  Every pairwise comparison absorbs the
      subtraction's cancellation dust ({!Affine.absorb_dust}), so a
      gate on the reference path reads as a sure tie rather than a
      spurious coin flip;
    - {b statistical slack}: the signed margin [T_target - D] as an
      affine form over the shared noise symbols, with per-symbol and
      per-class sensitivity attribution;
    - {b dominant failure cones}: sub-DAGs rooted at the reconvergent
      stems of {!Structure}, restricted to output-reaching gates,
      ranked by the Fréchet combination of stage and member-gate
      criticality bounds.  Each carries the unit shift direction of
      its stage in the whitened (Cholesky) noise basis — the
      direction the {!proposal} mixture shifts the sampler along. *)

val default_threshold : float
(** 0.05 — criticality lower bound above which a stage/cone counts as
    dominant. *)

type stage_crit = {
  sc_stage : int;
  sc_crit : Interval.t;  (** enclosure of P{stage sets pipeline delay} *)
  sc_depth : float option;
      (** uncapped whitened crossing depth [(t - mu_s) / sigma_s] to
          the target ([None] without a target or for a deterministic
          stage) *)
}

type stage_gates = {
  sg_bounds : Interval.t array;
      (** per node: enclosure of P{node lies on a critical path of its
          stage}; [\[0, 0\]] for primary inputs and for gates that
          reach no primary output *)
  sg_reaches : bool array;  (** node reaches a primary output *)
  sg_escape : float;
      (** escape budget of the stage's chord-max delay form — the
          clamp applied to statically pruned gates *)
}

type cone = {
  cn_stage : int;
  cn_stem : int;  (** reconvergent stem node id *)
  cn_gates : int array;  (** member gate ids, ascending *)
  cn_gate_crit : Interval.t;
      (** P{some member gate is critical for the stage}: at least the
          best single member's lower bound, at most the member sum *)
  cn_crit : Interval.t;
      (** P{the cone contains a pipeline-critical gate}: Fréchet
          combination of the stage and member bounds *)
  cn_shift : float array;
      (** unit shift direction in the whitened Cholesky (Factor)
          basis, one coefficient per stage *)
  cn_depth : float option;  (** the stage's {!stage_crit.sc_depth} *)
}

type t = {
  co_k : float;
  co_threshold : float;
  co_t_target : float option;
  co_stages : stage_crit array;
  co_gates : stage_gates array option;  (** gate-level contexts only *)
  co_slack : Affine.t option;  (** [T_target - D] form, with a target *)
  co_cones : cone list;  (** ranked, most critical first *)
}

val analyse : ?k:float -> ?threshold:float -> ?t_target:float ->
  Spv_engine.Engine.Ctx.t -> t
(** Run the pass.  [k] (default 6.0) is the box/concentration
    parameter shared with {!Affine_sta}; [threshold] (default
    {!default_threshold}) the dominance cut; [t_target] enables the
    slack form and tail depths.  Stage-level results are always
    computed; per-gate bounds and cones only for gate-level contexts.
    Raises [Invalid_argument] on invalid [k], a [threshold] outside
    [\[0, 1\]], or a non-finite [t_target]. *)

val dominant_cones : t -> cone list
(** The ranked cones whose criticality lower bound clears the
    threshold. *)

val gate_bounds : t -> stage:int -> Interval.t array option
(** Fresh copy of one stage's per-node criticality enclosures ([None]
    for moments-only contexts). *)

val slack_attribution : t -> (string * float) list
(** Per-symbol-class sigma contributions of the slack form (empty
    without a target). *)

val proposal :
  ?k:float -> ?threshold:float -> Spv_engine.Engine.Ctx.t ->
  t_target:float -> (float array array * float array) option
(** The engine-facing proposal builder (stage-level only — no netlist
    traversal, it sits on the sampling hot path).  [None] when no
    stage's criticality lower bound clears [threshold]: the engine
    keeps its legacy mixture.  Otherwise one whitened mixture mode per
    stage that can cross the barrier, shifted to its {e uncapped}
    design point (the legacy mixture caps crossing depth at 6 marginal
    sigmas, stranding deep-tail proposals short of the barrier), with
    unnormalised weights criticality x marginal exceedance.  A barrier
    at or below every stage mean returns one zero shift, which the
    engine's body detection turns into the explicit plain-MC
    fallback. *)

val install_engine_proposal : unit -> unit
(** Register {!proposal} (with default [k] and [threshold]) as the
    engine's [Cone_guided] provider via
    [Spv_engine.Engine.register_proposal_provider]. *)

val findings : t -> Report.finding list
(** Pass ["cones"]: a pipeline summary, the statistical-slack form
    with attribution (warns on negative nominal slack), per-stage
    criticality bounds, and the top dominant cones (warnings, located
    at their stems). *)
