(** Affine-form propagation through netlists and across pipe stages —
    the correlation-aware refinement of {!Bounds}.

    Where {!Bounds} pushes intervals, this pass pushes {!Affine} forms
    over one shared symbol set per context: the two inter-die draws,
    the Cholesky basis of the spatial systematic field (one [Sys j]
    per stage position) and one fresh [Rand] symbol per device — at
    the model level, the Cholesky basis of the stage-delay MVN
    ([Factor j]).  These bases mirror bit-for-bit how the engine's
    samplers draw their worlds, so the forms are exact affine models
    of the sampled quantities up to the relu-chord error of [max]
    (Chebyshev remainder; see {!Affine.max2}).  The gate-level forms
    model the {e linearised}-factor sampler
    ([Engine.gate_level_delays ~exact:false], the same first-order
    model the analytic SSTA moments use); the exact alpha-power
    sampler is covered through the intersection with {!Bounds}, whose
    corner factors hull both models (see {!stage_factor_form} for the
    standalone exact-remainder variant).

    Every shipped enclosure is intersected with its {!Bounds}
    counterpart, so nesting inside the interval results holds by
    construction; the probabilistic content (the escape mass of the
    [+-k sigma] concentration step) is quantified in {!t.escape}.
    Width ratios vs. the interval domain are reported per stage and
    for the pipeline. *)

type stage = {
  model_form : Affine.t;  (** exact affine form of the stage-delay MVN *)
  sta_form : Affine.t option;
      (** gate-level arrival form: netlist levelisation with per-gate
          affine delay factors plus the flip-flop overhead *)
  model_conc : Interval.t;  (** concentration enclosure of [model_form] *)
  sta_conc : Interval.t option;
  enclosure : Interval.t;
      (** hull of the concentrations, intersected with the interval
          stage bound — the shipped stage enclosure *)
  width_ratio : float;
      (** width(enclosure) / width(interval bound); <= 1 by
          construction (1.0 when both are degenerate) *)
}

type t = {
  k : float;
  bounds : Bounds.t;  (** the interval baseline everything nests in *)
  stages : stage array;
  pipe_model : Affine.t;  (** affine form of [max_i SD_i], model level *)
  pipe_sta : Affine.t option;  (** same over the gate-level stage forms *)
  delay : Interval.t;  (** pipeline delay enclosure, inside [bounds.delay] *)
  delay_ratio : float;
  mean : Interval.t;  (** mean-delay envelope, inside [bounds.mean] *)
  escape : float;
      (** total escape-probability budget of the probabilistic
          enclosures (union bound over symbols + the Gaussian band) *)
}

val of_ctx : ?k:float -> Spv_engine.Engine.Ctx.t -> t
(** Build every form and enclosure for a context.  [k] defaults to
    6.0; raises [Invalid_argument] when not finite positive. *)

val stage_factor_form :
  ?exact_rem:bool -> k:float -> Spv_process.Tech.t -> sys_row:float array ->
  stage:int -> node:int -> size:float -> Affine.t
(** Affine delay factor of one device: linear sensitivities over the
    shared symbols.  By default ([exact_rem = false]) the remainder is
    exactly 0 — the form {e is} the linearised-factor model.  With
    [~exact_rem:true] the remainder bounds the exact alpha-power
    model's linearisation gap over the [+-k] box (computed at the box
    corners in [(u, l)] space, where the gap is linear in [l] and
    convex in [u]; degenerate — infinite — when the box reaches device
    cutoff), making the form a standalone enclosure of the exact
    sampler.  [sys_row] is the stage's row of the spatial-correlation
    Cholesky factor.  Exposed for tests. *)

val model_form : Spv_stats.Mvn.t -> int -> Affine.t
(** Exact affine form of one stage's delay in the MVN's Cholesky
    ([Factor]) basis: center = marginal mean, coefficients = the
    stage's Cholesky row, remainder 0.  This is {e the} model the
    engine's samplers draw from, so probabilities computed from these
    forms are exact Gaussian statements about the sampled worlds. *)

val spatial_rows : Spv_engine.Engine.Ctx.t -> float array array
(** Rows of the Cholesky factor of the stage-position spatial
    correlation — the [Sys] basis of the gate-level forms, matching
    the sampler's field bit-for-bit.  Gate-level contexts only. *)

val yield_bounds : t -> t_target:float -> Interval.t
(** Yield envelope from the pipeline forms' {!Affine.cdf_bounds},
    hulled over the model/gate-level variants and intersected with the
    Fréchet bounds — never wider than {!Bounds.yield_bounds}. *)

val check :
  ?slack:float -> ?t_target:float -> t -> Spv_engine.Engine.estimate ->
  Bounds.verdict
(** Assert one engine estimate against the affine envelopes, with the
    same default slack policy as {!Bounds.check}.  The independent
    product closed form is delegated to {!Bounds.check}: under
    correlation it estimates a different functional than the true
    yield and only its Fréchet membership is guaranteed. *)

val findings : ?t_target:float -> t -> Report.finding list
(** Pass ["affine"]: per-stage and pipeline enclosures with width
    ratios, the yield envelope (when [t_target] is given), and
    per-symbol-class sensitivity attributions of the pipeline forms.
    Non-finite enclosures (device cutoff inside the box) are [Error]
    findings. *)

val install_engine_check : unit -> unit
(** Append {!check} to the engine's debug-mode postcondition list via
    [Spv_engine.Engine.add_estimate_check] — runs alongside the
    interval oracle installed by {!Bounds.install_engine_check}. *)
