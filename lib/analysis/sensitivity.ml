(* Certified forward-mode sensitivity analysis over sizing boxes.

   Every quantity is carried as a dual (v, d) of intervals: [v]
   encloses the quantity and [d] its derivative with respect to one
   scalar knob, for every design in the declared box.  The propagation
   below mirrors the concrete timing stack operation by operation —
   the same float expressions, in the same association order, as
   [Sta.run_internal], [Ssta.analyse_stage], [Gd.of_nominal]/[Gd.add],
   [Clark.max_n] and the engine's [cdf0]/[sf0] — so that on a point
   box the value side reproduces the concrete floats bit for bit.
   That bit-exactness is what lets the dominance layer prune sizer
   moves while provably reproducing byte-identical sizer reports: a
   pruned move's concrete trial value lies inside an interval the
   pruner has already compared.

   Soundness at non-smooth points: the max junctions of STA, the
   Clark fold order (sorted by stage mean), the Clark degenerate
   branches, and the sigma = 0 CDF steps are all *decided* over the
   box or the result is flagged ambiguous.  Ambiguity decertifies the
   derivative (reported as the full line — trivially sound) while the
   value side stays a finite sound hull.  Note the interval arithmetic
   here is not outward-rounded: enclosures are exact up to one ulp per
   operation, which is why the finite-difference oracles compare with
   a small documented slack. *)

module I = Interval
module Net = Spv_circuit.Netlist
module Cell = Spv_circuit.Cell
module Sp = Spv_stats.Special
module G = Spv_stats.Gaussian
module Correlation = Spv_stats.Correlation
module Gd = Spv_process.Gate_delay
module Variation = Spv_process.Variation
module Tech = Spv_process.Tech
module Flipflop = Spv_process.Flipflop
module Spatial = Spv_process.Spatial
module Stage = Spv_core.Stage
module Pipeline = Spv_core.Pipeline
module Ctx = Spv_engine.Engine.Ctx

(* ---- interval duals -------------------------------------------------- *)

module Dual = struct
  type t = { v : I.t; d : I.t }

  exception Unbounded of string

  let iv lo hi = I.make ~lo ~hi

  (* Endpoint images of a monotone map can invert by an ulp near a
     flat extremum; order defensively rather than raise. *)
  let ordered a b = if a <= b then iv a b else iv b a
  let make ~v ~d = { v; d }
  let const x = { v = I.point x; d = I.point 0.0 }
  let var box = { v = box; d = I.point 1.0 }
  let v t = t.v
  let d t = t.d
  let isub a b = iv (I.lo a -. I.hi b) (I.hi a -. I.lo b)

  let idiv a b =
    if not (I.lo b > 0.0 || I.hi b < 0.0) then
      raise (Unbounded "division by an interval containing zero");
    let q1 = I.lo a /. I.lo b and q2 = I.lo a /. I.hi b in
    let q3 = I.hi a /. I.lo b and q4 = I.hi a /. I.hi b in
    if Float.is_nan q1 || Float.is_nan q2 || Float.is_nan q3 || Float.is_nan q4
    then raise (Unbounded "indeterminate quotient (inf/inf)");
    iv
      (Float.min (Float.min q1 q2) (Float.min q3 q4))
      (Float.max (Float.max q1 q2) (Float.max q3 q4))

  let add a b = { v = I.add a.v b.v; d = I.add a.d b.d }
  let sub a b = { v = isub a.v b.v; d = isub a.d b.d }

  let mul a b =
    { v = I.mul a.v b.v; d = I.add (I.mul a.v b.d) (I.mul b.v a.d) }

  let div a b =
    let v = idiv a.v b.v in
    let num = I.add (I.mul a.d b.v) (I.neg (I.mul a.v b.d)) in
    { v; d = idiv num (I.mul b.v b.v) }

  let scale a c =
    if not (Float.is_finite c) then invalid_arg "Dual.scale: non-finite";
    let k = I.point c in
    { v = I.mul a.v k; d = I.mul a.d k }

  let shift a c =
    if not (Float.is_finite c) then invalid_arg "Dual.shift: non-finite";
    { a with v = I.shift a.v c }

  let neg a = { v = I.neg a.v; d = I.neg a.d }

  let sqrt_ a =
    let vlo = I.lo a.v and vhi = I.hi a.v in
    if vlo < 0.0 then raise (Unbounded "sqrt of a possibly-negative interval");
    if vlo = 0.0 then
      if vhi = 0.0 && I.lo a.d = 0.0 && I.hi a.d = 0.0 then const 0.0
      else raise (Unbounded "sqrt derivative unbounded at zero")
    else
      let v = iv (sqrt vlo) (sqrt vhi) in
      { v; d = idiv a.d (iv (2.0 *. sqrt vlo) (2.0 *. sqrt vhi)) }

  let relu a =
    let vlo = I.lo a.v and vhi = I.hi a.v in
    let v = iv (Float.max vlo 0.0) (Float.max vhi 0.0) in
    let d =
      if vlo >= 0.0 then a.d
      else if vhi <= 0.0 then I.point 0.0
      else I.hull a.d (I.point 0.0)
    in
    { v; d }

  let clamp_pm1 a =
    let c x = Float.max (-1.0) (Float.min 1.0 x) in
    let vlo = I.lo a.v and vhi = I.hi a.v in
    let v = iv (c vlo) (c vhi) in
    let d =
      if vlo >= -1.0 && vhi <= 1.0 then a.d
      else if vlo >= 1.0 || vhi <= -1.0 then I.point 0.0
      else I.hull a.d (I.point 0.0)
    in
    { v; d }

  (* Range of the standard normal density over an argument interval:
     unimodal with peak at 0. *)
  let iphi x =
    let pl = Sp.phi (I.lo x) and ph = Sp.phi (I.hi x) in
    let top =
      if I.lo x <= 0.0 && I.hi x >= 0.0 then Sp.phi 0.0 else Float.max pl ph
    in
    iv (Float.min pl ph) top

  let big_phi a =
    { v = ordered (Sp.big_phi (I.lo a.v)) (Sp.big_phi (I.hi a.v));
      d = I.mul (iphi a.v) a.d }

  let upper_tail a =
    { v = ordered (Sp.upper_tail (I.hi a.v)) (Sp.upper_tail (I.lo a.v));
      d = I.mul (I.neg (iphi a.v)) a.d }

  (* phi itself, as a dual: phi'(x) = -x phi(x).  Hidden by the mli. *)
  let pdf_phi a =
    { v = iphi a.v; d = I.mul (I.neg (I.mul a.v (iphi a.v))) a.d }

  let hull a b = { v = I.hull a.v b.v; d = I.hull a.d b.d }
end

type param = Size of int | Factor of int

type enclosure = { value : I.t; deriv : I.t; certified : bool }

type stage_sens = {
  s_param : param;
  s_box : I.t;
  s_nominal : enclosure;
  s_mu : enclosure;
  s_sigma : enclosure;
}

let full_line = I.make ~lo:neg_infinity ~hi:infinity
let unit_iv = I.make ~lo:0.0 ~hi:1.0
let nonneg = I.make ~lo:0.0 ~hi:infinity

let enclose ~certified (x : Dual.t) =
  { value = Dual.v x;
    deriv = (if certified then Dual.d x else full_line);
    certified }

let decert_nonneg = { value = nonneg; deriv = full_line; certified = false }
let decert_unit = { value = unit_iv; deriv = full_line; certified = false }

(* ---- stage propagation ----------------------------------------------- *)

(* Per-node state of the interval STA/SSTA sweep.  [arr] is the
   arrival enclosure; [psi]/[pss]/[psr] accumulate the traced path's
   sigma components exactly as [Ssta.analyse_stage]'s Gd.add fold does
   (inter and sys linearly, rand by stepwise quadrature).  [nid] keeps
   the concrete node identity so that comparing a node with itself is
   always decided; it turns to -1 after an ambiguous merge. *)
type acc = {
  nid : int;
  arr : Dual.t;
  psi : Dual.t;
  pss : Dual.t;
  psr : Dual.t;
  amb : bool;
}

let pi_acc nid =
  let z = Dual.const 0.0 in
  { nid; arr = z; psi = z; pss = z; psr = z; amb = false }

(* One step of the concrete first-index-wins argmax
   ([if arrival f > arrival best then switch]), lifted to intervals:
   switch only when the challenger is strictly larger everywhere, keep
   only when it is no larger anywhere (which covers exact ties — the
   concrete fold keeps the earlier operand), and otherwise merge: the
   winner is unknown, so hull the path accumulators, take the
   pointwise max for the arrival value, and mark the path ambiguous. *)
let join best f =
  if f.nid >= 0 && f.nid = best.nid then best
  else if I.lo (Dual.v f.arr) > I.hi (Dual.v best.arr) then f
  else if I.hi (Dual.v f.arr) <= I.lo (Dual.v best.arr) then best
  else
    {
      nid = -1;
      arr =
        Dual.make
          ~v:(I.max2 (Dual.v best.arr) (Dual.v f.arr))
          ~d:(I.hull (Dual.d best.arr) (Dual.d f.arr));
      psi = Dual.hull best.psi f.psi;
      pss = Dual.hull best.pss f.pss;
      psr = Dual.hull best.psr f.psr;
      amb = true;
    }

type stage_duals = {
  sd_sta : Dual.t;  (* Sta.run delay (pre-flip-flop) *)
  sd_mu : Dual.t;  (* SSTA total nominal *)
  sd_si : Dual.t;
  sd_ss : Dual.t;
  sd_sigma : Dual.t;  (* Gd.total_sigma of the total *)
  sd_amb : bool;  (* critical path not decided over the box *)
}

let propagate ?(output_load = 4.0) ?ff (tech : Tech.t) net ~size_of ~factor_of
    =
  let n = Net.n_nodes net in
  (* Loads, mirroring [Sta.loads] (the engine path carries no wire
     model): fanout input caps plus the primary-output load. *)
  let is_output = Array.make n false in
  Array.iter (fun o -> is_output.(o) <- true) (Net.outputs net);
  let loads = Array.make n (Dual.const 0.0) in
  for i = 0 to n - 1 do
    let fanout_cap =
      List.fold_left
        (fun cap j ->
          match Net.node net j with
          | Net.Gate { kind; _ } ->
              Dual.add cap (Dual.scale (size_of j) (Cell.logical_effort kind))
          | Net.Primary_input _ -> cap)
        (Dual.const 0.0) (Net.fanouts net i)
    in
    loads.(i) <-
      Dual.shift fanout_cap (if is_output.(i) then output_load else 0.0)
  done;
  let rel_i = Variation.rel_sigma_inter tech in
  let rel_s = Variation.rel_sigma_sys tech in
  let rand_c = Tech.delay_sensitivity_vth tech *. tech.Tech.sigma_vth_rand in
  let accs = Array.make n (pi_acc (-2)) in
  for i = 0 to n - 1 do
    match Net.node net i with
    | Net.Primary_input _ -> accs.(i) <- pi_acc i
    | Net.Gate { kind; fanin } ->
        let best =
          if Array.length fanin = 0 then pi_acc (-3)
          else begin
            let b = ref accs.(fanin.(0)) in
            for k = 1 to Array.length fanin - 1 do
              b := join !b accs.(fanin.(k))
            done;
            !b
          end
        in
        let size = size_of i in
        let gd =
          Dual.scale
            (Dual.shift (Dual.div loads.(i) size) (Cell.parasitic kind))
            tech.Tech.tau
        in
        let gd =
          match factor_of i with None -> gd | Some f -> Dual.mul gd f
        in
        let arr = Dual.add best.arr gd in
        let psi = Dual.add best.psi (Dual.scale gd rel_i) in
        let pss = Dual.add best.pss (Dual.scale gd rel_s) in
        let srg = Dual.mul gd (Dual.div (Dual.const rand_c) (Dual.sqrt_ size)) in
        let psr =
          Dual.sqrt_ (Dual.add (Dual.mul best.psr best.psr) (Dual.mul srg srg))
        in
        accs.(i) <- { nid = i; arr; psi; pss; psr; amb = best.amb }
  done;
  let outs = Net.outputs net in
  let b = ref accs.(outs.(0)) in
  Array.iter (fun o -> b := join !b accs.(o)) outs;
  let bo = !b in
  let mu_t, si_t, ss_t, sr_t =
    match ff with
    | None -> (bo.arr, bo.psi, bo.pss, bo.psr)
    | Some ff ->
        let ov = Flipflop.overhead ff in
        ( Dual.shift bo.arr ov.Gd.nominal,
          Dual.shift bo.psi ov.Gd.sigma_inter,
          Dual.shift bo.pss ov.Gd.sigma_sys,
          Dual.sqrt_
            (Dual.shift
               (Dual.mul bo.psr bo.psr)
               (ov.Gd.sigma_rand *. ov.Gd.sigma_rand)) )
  in
  let sigma_t =
    Dual.sqrt_
      (Dual.add
         (Dual.add (Dual.mul si_t si_t) (Dual.mul ss_t ss_t))
         (Dual.mul sr_t sr_t))
  in
  {
    sd_sta = bo.arr;
    sd_mu = mu_t;
    sd_si = si_t;
    sd_ss = ss_t;
    sd_sigma = sigma_t;
    sd_amb = bo.amb;
  }

(* ---- knob plumbing --------------------------------------------------- *)

let knob_node = function Size g -> g | Factor g -> g

let check_param net ~param ~box ~where =
  let g = knob_node param in
  if g < 0 || g >= Net.n_nodes net || not (Net.is_gate net g) then
    invalid_arg (where ^ ": the knob must name a gate");
  if not (I.is_finite box) then invalid_arg (where ^ ": box must be finite");
  match param with
  | Size _ ->
      if I.lo box <= 0.0 then
        invalid_arg (where ^ ": size box must be strictly positive");
      if not (I.contains box (Net.size net g)) then
        invalid_arg (where ^ ": box must contain the gate's current size")
  | Factor _ ->
      if not (I.contains box 1.0) then
        invalid_arg (where ^ ": box must contain the nominal factor 1.0")

let knob_funs net ~param ~box =
  let g = knob_node param in
  match param with
  | Size _ ->
      ( (fun i -> if i = g then Dual.var box else Dual.const (Net.size net i)),
        fun _ -> None )
  | Factor _ ->
      ( (fun i -> Dual.const (Net.size net i)),
        fun i -> if i = g then Some (Dual.var box) else None )

let sens_of_duals ~param ~box sd =
  {
    s_param = param;
    s_box = box;
    s_nominal = enclose ~certified:true sd.sd_sta;
    s_mu = enclose ~certified:true sd.sd_mu;
    s_sigma = enclose ~certified:(not sd.sd_amb) sd.sd_sigma;
  }

let stage ?(output_load = 4.0) ?ff tech net ~param ~box =
  check_param net ~param ~box ~where:"Sensitivity.stage";
  let size_of, factor_of = knob_funs net ~param ~box in
  match propagate ~output_load ?ff tech net ~size_of ~factor_of with
  | sd -> sens_of_duals ~param ~box sd
  | exception Dual.Unbounded _ ->
      {
        s_param = param;
        s_box = box;
        s_nominal = decert_nonneg;
        s_mu = decert_nonneg;
        s_sigma = decert_nonneg;
      }

let stat ~z s =
  let zc = I.point z in
  let value = I.add s.s_mu.value (I.mul zc s.s_sigma.value) in
  let certified = s.s_mu.certified && s.s_sigma.certified in
  let deriv =
    if certified then I.add s.s_mu.deriv (I.mul zc s.s_sigma.deriv)
    else full_line
  in
  { value; deriv; certified }

type sign = Increasing | Decreasing

let monotone_sign e =
  if not e.certified then None
  else if I.lo e.deriv > 0.0 then Some Increasing
  else if I.hi e.deriv < 0.0 then Some Decreasing
  else None

let stage_moments_over_box ?(output_load = 4.0) ?ff tech net ~lo ~hi =
  if (not (Float.is_finite lo && Float.is_finite hi)) || lo <= 0.0 || lo > hi
  then invalid_arg "Sensitivity.stage_moments_over_box: bad size range";
  let box = I.make ~lo ~hi in
  let size_of _ = Dual.make ~v:box ~d:(I.point 0.0) in
  match propagate ~output_load ?ff tech net ~size_of ~factor_of:(fun _ -> None)
  with
  | sd -> ((Dual.v sd.sd_mu, Dual.v sd.sd_sigma), not sd.sd_amb)
  | exception Dual.Unbounded _ -> ((nonneg, nonneg), false)

(* ---- memoisation ----------------------------------------------------- *)

module Cache = struct
  (* Looked up only through [Hashtbl]'s structural equality, never
     projected. *)
  type key = {
    k_stage : int;
    k_rev : int;  (* Engine.Ctx.stage_revision at lookup time *)
    k_param : int;  (* 2*node (Size) / 2*node+1 (Factor) *)
    k_lo : int64;  (* box endpoints, exact bit patterns *)
    k_hi : int64;
  }
  [@@warning "-69"]

  type t = {
    tbl : (key, stage_duals option) Hashtbl.t;
    mutable n_hits : int;
    mutable n_misses : int;
  }

  let create () = { tbl = Hashtbl.create 64; n_hits = 0; n_misses = 0 }
  let hits t = t.n_hits
  let misses t = t.n_misses
end

let param_tag = function Size g -> 2 * g | Factor g -> (2 * g) + 1

let ctx_stage_duals ?cache ctx ~stage:st ~param ~box ~where =
  if not (Ctx.gate_level ctx) then
    invalid_arg (where ^ ": gate-level contexts only");
  let net = Ctx.netlist ctx st in
  check_param net ~param ~box ~where;
  let compute () =
    let size_of, factor_of = knob_funs net ~param ~box in
    match
      propagate ~output_load:(Ctx.output_load ctx) ?ff:(Ctx.flipflop ctx)
        (Ctx.tech ctx) net ~size_of ~factor_of
    with
    | sd -> Some sd
    | exception Dual.Unbounded _ -> None
  in
  match cache with
  | None -> compute ()
  | Some c -> (
      let key =
        Cache.
          {
            k_stage = st;
            k_rev = Ctx.stage_revision ctx st;
            k_param = param_tag param;
            k_lo = Int64.bits_of_float (I.lo box);
            k_hi = Int64.bits_of_float (I.hi box);
          }
      in
      match Hashtbl.find_opt c.Cache.tbl key with
      | Some e ->
          c.Cache.n_hits <- c.Cache.n_hits + 1;
          e
      | None ->
          c.Cache.n_misses <- c.Cache.n_misses + 1;
          let e = compute () in
          Hashtbl.add c.Cache.tbl key e;
          e)

let ctx_stage ?cache ctx ~stage:st ~param ~box =
  match ctx_stage_duals ?cache ctx ~stage:st ~param ~box
          ~where:"Sensitivity.ctx_stage"
  with
  | Some sd -> sens_of_duals ~param ~box sd
  | None ->
      {
        s_param = param;
        s_box = box;
        s_nominal = decert_nonneg;
        s_mu = decert_nonneg;
        s_sigma = decert_nonneg;
      }

(* ---- yield through the Clark fold ------------------------------------ *)

type yield_model = Clark | Independent_product

exception Undecided

type g_dual = { gmu : Dual.t; gsig : Dual.t }
type comp_dual = { dsi : Dual.t; dss : Dual.t; dsig : Dual.t }

let comp_of_gd (gd : Gd.t) =
  {
    dsi = Dual.const gd.Gd.sigma_inter;
    dss = Dual.const gd.Gd.sigma_sys;
    dsig = Dual.const (Gd.total_sigma gd);
  }

(* Mirror of [Gd.correlation].  The sigma = 0 short-circuit must be
   decided over the box; a sigma interval touching zero without being
   identically zero cannot be certified. *)
let gd_correlation_dual a b ~sys_rho =
  let zero c = I.hi (Dual.v c.dsig) = 0.0 in
  let positive c = I.lo (Dual.v c.dsig) > 0.0 in
  if zero a || zero b then Dual.const 0.0
  else if not (positive a && positive b) then
    raise (Dual.Unbounded "correlation: sigma sign undecided over the box")
  else
    let cov =
      Dual.add (Dual.mul a.dsi b.dsi)
        (Dual.mul (Dual.scale a.dss sys_rho) b.dss)
    in
    Dual.clamp_pm1 (Dual.div cov (Dual.mul a.dsig b.dsig))

let degenerate_a = 1e-12 (* Clark.degenerate_a *)

type m_dual = { m_mean : Dual.t; m_var : Dual.t; m_alpha : Dual.t }

let hull_m a b =
  {
    m_mean = Dual.hull a.m_mean b.m_mean;
    m_var = Dual.hull a.m_var b.m_var;
    m_alpha = Dual.hull a.m_alpha b.m_alpha;
  }

(* Clark degenerate branch: the max is whichever input has the larger
   mean; the concrete tie ([mu1 >= mu2]) goes to the first input. *)
let degenerate_m ~amb g1 g2 =
  let d1 () =
    { m_mean = g1.gmu; m_var = Dual.mul g1.gsig g1.gsig;
      m_alpha = Dual.const 0.0 }
  in
  let d2 () =
    { m_mean = g2.gmu; m_var = Dual.mul g2.gsig g2.gsig;
      m_alpha = Dual.const 0.0 }
  in
  if I.lo (Dual.v g1.gmu) >= I.hi (Dual.v g2.gmu) then d1 ()
  else if I.hi (Dual.v g1.gmu) < I.lo (Dual.v g2.gmu) then d2 ()
  else begin
    amb := true;
    hull_m (d1 ()) (d2 ())
  end

let normal_m g1 g2 ~a =
  let mu1 = g1.gmu and s1 = g1.gsig in
  let mu2 = g2.gmu and s2 = g2.gsig in
  let alpha = Dual.div (Dual.sub mu1 mu2) a in
  let cdf = Dual.big_phi alpha in
  let cdf' = Dual.big_phi (Dual.neg alpha) in
  let pdf = Dual.pdf_phi alpha in
  let mean =
    Dual.add (Dual.add (Dual.mul mu1 cdf) (Dual.mul mu2 cdf')) (Dual.mul a pdf)
  in
  let second =
    Dual.add
      (Dual.add
         (Dual.mul (Dual.add (Dual.mul mu1 mu1) (Dual.mul s1 s1)) cdf)
         (Dual.mul (Dual.add (Dual.mul mu2 mu2) (Dual.mul s2 s2)) cdf'))
      (Dual.mul (Dual.mul (Dual.add mu1 mu2) a) pdf)
  in
  let variance = Dual.relu (Dual.sub second (Dual.mul mean mean)) in
  { m_mean = mean; m_var = variance; m_alpha = alpha }

let max2_moments_dual ~amb g1 g2 ~rho =
  let s1 = g1.gsig and s2 = g2.gsig in
  let a2 =
    Dual.sub
      (Dual.add (Dual.mul s1 s1) (Dual.mul s2 s2))
      (Dual.mul (Dual.mul (Dual.scale rho 2.0) s1) s2)
  in
  let a2c = Dual.relu a2 in
  let sa_lo = sqrt (I.lo (Dual.v a2c)) and sa_hi = sqrt (I.hi (Dual.v a2c)) in
  if sa_hi < degenerate_a then degenerate_m ~amb g1 g2
  else if sa_lo >= degenerate_a then normal_m g1 g2 ~a:(Dual.sqrt_ a2c)
  else begin
    (* The branch [a < degenerate_a] can flip inside the box: hull a
       sound evaluation of each side. *)
    amb := true;
    let v_lo = degenerate_a *. degenerate_a in
    let v_hi = Float.max (I.hi (Dual.v a2c)) v_lo in
    let a_cl =
      Dual.sqrt_ (Dual.make ~v:(I.make ~lo:v_lo ~hi:v_hi) ~d:(Dual.d a2c))
    in
    hull_m (normal_m g1 g2 ~a:a_cl) (degenerate_m ~amb g1 g2)
  end

let correlation_with_max_dual ~amb ~s1 ~s2 ~r1 ~r2 m =
  let vv = Dual.v m.m_var in
  let sd_lo = sqrt (I.lo vv) and sd_hi = sqrt (I.hi vv) in
  let formula sd =
    let cdf = Dual.big_phi m.m_alpha in
    let cdf' = Dual.big_phi (Dual.neg m.m_alpha) in
    Dual.clamp_pm1
      (Dual.div
         (Dual.add
            (Dual.mul (Dual.mul s1 r1) cdf)
            (Dual.mul (Dual.mul s2 r2) cdf'))
         sd)
  in
  if sd_hi < degenerate_a then Dual.const 0.0
  else if sd_lo >= degenerate_a then formula (Dual.sqrt_ m.m_var)
  else begin
    amb := true;
    let v_lo = degenerate_a *. degenerate_a in
    let v_hi = Float.max (I.hi vv) v_lo in
    Dual.hull (Dual.const 0.0)
      (formula
         (Dual.sqrt_ (Dual.make ~v:(I.make ~lo:v_lo ~hi:v_hi) ~d:(Dual.d m.m_var))))
  end

(* Mirrors the engine's [cdf0] (step below sigma = 0, Gaussian CDF
   otherwise) — also exactly the per-stage factor of
   [Yield.independent_exact]. *)
let cdf0_dual ~amb g ~t =
  let sv = Dual.v g.gsig in
  if I.hi sv = 0.0 then begin
    let mv = Dual.v g.gmu in
    if I.hi mv <= t then Dual.const 1.0
    else if I.lo mv > t then Dual.const 0.0
    else begin
      amb := true;
      Dual.make ~v:unit_iv ~d:(I.point 0.0)
    end
  end
  else if I.lo sv > 0.0 then
    Dual.big_phi (Dual.div (Dual.sub (Dual.const t) g.gmu) g.gsig)
  else raise (Dual.Unbounded "sigma sign undecided at the CDF")

let sf0_dual ~amb g ~t =
  let sv = Dual.v g.gsig in
  if I.hi sv = 0.0 then begin
    let mv = Dual.v g.gmu in
    if I.hi mv <= t then Dual.const 0.0
    else if I.lo mv > t then Dual.const 1.0
    else begin
      amb := true;
      Dual.make ~v:unit_iv ~d:(I.point 0.0)
    end
  end
  else if I.lo sv > 0.0 then
    Dual.upper_tail (Dual.div (Dual.sub (Dual.const t) g.gmu) g.gsig)
  else raise (Dual.Unbounded "sigma sign undecided at the tail")

(* Dynamic consistency guard: the differentiated stage's cached
   concrete moments must lie inside the propagated enclosures (they
   do whenever the context reflects the netlist's current sizes and
   no prune mask is active; otherwise certification would be built on
   a model the concrete estimator is not using). *)
let guard_moments p ~stage:s ~sd =
  let g = Stage.gaussian (Pipeline.stage p s) in
  if
    not
      (I.contains (Dual.v sd.sd_mu) (G.mu g)
      && I.contains (Dual.v sd.sd_sigma) (G.sigma g))
  then raise Undecided

let clark_fold_dual ctx ~stage:s ~sd =
  let p = Ctx.pipeline ctx in
  let n = Pipeline.n_stages p in
  guard_moments p ~stage:s ~sd;
  let amb = ref sd.sd_amb in
  let mus = Array.init n (fun j -> G.mu (Stage.gaussian (Pipeline.stage p j))) in
  (* The Clark fold visits stages sorted by mean.  The permutation is
     constant over the box only when the differentiated stage's mean
     interval is strictly disjoint from every other stage's mean. *)
  let m_iv = Dual.v sd.sd_mu in
  for j = 0 to n - 1 do
    if j <> s && not (I.hi m_iv < mus.(j) || I.lo m_iv > mus.(j)) then
      raise Undecided
  done;
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare mus.(i) mus.(j)) idx;
  let gdual j =
    if j = s then { gmu = sd.sd_mu; gsig = sd.sd_sigma }
    else
      let g = Stage.gaussian (Pipeline.stage p j) in
      { gmu = Dual.const (G.mu g); gsig = Dual.const (G.sigma g) }
  in
  let corr = Pipeline.correlation p in
  let corr_length = (Ctx.tech ctx).Tech.corr_length in
  let comp_of k =
    if k = s then { dsi = sd.sd_si; dss = sd.sd_ss; dsig = sd.sd_sigma }
    else comp_of_gd (Pipeline.stage p k).Stage.delay
  in
  let corr_d i j =
    if i = j then Dual.const 1.0
    else if i = s || j = s then begin
      (* [Correlation.of_function] stores f(min, max); mirror the same
         argument order so point boxes reproduce the matrix bits. *)
      let a = min i j and b = max i j in
      let sys_rho =
        exp
          (-.Spatial.distance (Pipeline.stage p a).Stage.position
              (Pipeline.stage p b).Stage.position
           /. corr_length)
      in
      gd_correlation_dual (comp_of a) (comp_of b) ~sys_rho
    end
    else Dual.const (Correlation.get corr i j)
  in
  let current = ref (gdual idx.(0)) in
  let cwc = Array.init n (fun k -> corr_d idx.(0) idx.(k)) in
  for step = 1 to n - 1 do
    let j = idx.(step) in
    let g2 = gdual j in
    let rho = cwc.(step) in
    let m = max2_moments_dual ~amb !current g2 ~rho in
    let s1 = !current.gsig and s2 = g2.gsig in
    for k = step + 1 to n - 1 do
      cwc.(k) <-
        correlation_with_max_dual ~amb ~s1 ~s2 ~r1:cwc.(k)
          ~r2:(corr_d j idx.(k)) m
    done;
    current := { gmu = m.m_mean; gsig = Dual.sqrt_ m.m_var }
  done;
  (!current, amb)

let independent_fold_dual ctx ~stage:s ~sd ~t_target ~tail =
  let p = Ctx.pipeline ctx in
  let n = Pipeline.n_stages p in
  guard_moments p ~stage:s ~sd;
  let amb = ref sd.sd_amb in
  let acc = ref (Dual.const 1.0) in
  for j = 0 to n - 1 do
    let g =
      if j = s then { gmu = sd.sd_mu; gsig = sd.sd_sigma }
      else
        let g = Stage.gaussian (Pipeline.stage p j) in
        { gmu = Dual.const (G.mu g); gsig = Dual.const (G.sigma g) }
    in
    acc := Dual.mul !acc (cdf0_dual ~amb g ~t:t_target)
  done;
  let y = !acc in
  let y = if tail then Dual.sub (Dual.const 1.0) y else y in
  (y, amb)

let clamp_unit ivl =
  let lo = Float.max 0.0 (I.lo ivl) and hi = Float.min 1.0 (I.hi ivl) in
  if lo <= hi then I.make ~lo ~hi else unit_iv

let yield_enclosure ctx ~model ~stage:s ~sd ~t_target ~tail =
  let y, amb =
    match model with
    | Independent_product -> independent_fold_dual ctx ~stage:s ~sd ~t_target ~tail
    | Clark ->
        let dist, amb = clark_fold_dual ctx ~stage:s ~sd in
        let y =
          if tail then sf0_dual ~amb dist ~t:t_target
          else cdf0_dual ~amb dist ~t:t_target
        in
        (y, amb)
  in
  let certified = not !amb in
  {
    value = clamp_unit (Dual.v y);
    deriv = (if certified then Dual.d y else full_line);
    certified;
  }

let check_t_target ~where t =
  if not (Float.is_finite t) then invalid_arg (where ^ ": non-finite t_target")

let ctx_yield_gen ?cache ctx ~model ~stage:s ~param ~box ~t_target ~tail ~where
    =
  check_t_target ~where t_target;
  match ctx_stage_duals ?cache ctx ~stage:s ~param ~box ~where with
  | None -> decert_unit
  | Some sd -> (
      try yield_enclosure ctx ~model ~stage:s ~sd ~t_target ~tail with
      | Dual.Unbounded _ | Undecided -> decert_unit)

let ctx_yield ?cache ctx ~model ~stage ~param ~box ~t_target =
  ctx_yield_gen ?cache ctx ~model ~stage ~param ~box ~t_target ~tail:false
    ~where:"Sensitivity.ctx_yield"

let ctx_yield_loss ?cache ctx ~model ~stage ~param ~box ~t_target =
  ctx_yield_gen ?cache ctx ~model ~stage ~param ~box ~t_target ~tail:true
    ~where:"Sensitivity.ctx_yield_loss"

let yield_upper_bound_over_box ctx ~model ~stage:s ~lo ~hi ~t_target =
  let where = "Sensitivity.yield_upper_bound_over_box" in
  check_t_target ~where t_target;
  if not (Ctx.gate_level ctx) then
    invalid_arg (where ^ ": gate-level contexts only");
  if (not (Float.is_finite lo && Float.is_finite hi)) || lo <= 0.0 || lo > hi
  then invalid_arg (where ^ ": bad size range");
  let net = Ctx.netlist ctx s in
  let box = I.make ~lo ~hi in
  let size_of _ = Dual.make ~v:box ~d:(I.point 0.0) in
  match
    propagate ~output_load:(Ctx.output_load ctx) ?ff:(Ctx.flipflop ctx)
      (Ctx.tech ctx) net ~size_of ~factor_of:(fun _ -> None)
  with
  | exception Dual.Unbounded _ -> None
  | sd -> (
      (* Ambiguity (a path switch inside the box) only decertifies the
         derivative; the value hulls remain sound, so the upper bound
         survives it.  Undecided fold order or degenerate straddles
         abort: the value would then depend on a permutation we cannot
         fix. *)
      try
        let e = yield_enclosure ctx ~model ~stage:s ~sd ~t_target ~tail:false in
        Some (I.hi e.value)
      with Dual.Unbounded _ | Undecided -> None)
