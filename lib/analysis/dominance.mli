(** Dominance certificates over the sizing design space, and the
    analyzer's ["sensitivity"] pass.

    Everything here is read off {!Sensitivity} enclosures, so every
    prune decision is {e certified}: a move is dropped only when its
    enclosure proves the concrete sizer would reject it, and the
    sizer's accepted solution is byte-identical with pruning on or off
    (asserted under [SPV_DEBUG_SENSITIVITY]).

    Greedy move pruning (registered through
    {!Spv_sizing.Sens_hook.register_move_prune}) uses three rules, for
    a candidate upsize of one gate from [s] to [s'] with
    [delta = deriv * (s' - s)] the certified enclosure of the
    statistical-delay change:

    - {e no-op}: the stat-delay value enclosure over [\[s, s'\]] has
      width zero — the move provably does not change the objective, so
      the sizer's strict-improvement test rejects it;
    - {e harmful}: [lo delta >= margin] — the move provably increases
      the objective;
    - {e dominated}: some kept move [j]'s certified cost-normalised
      gain lower bound is positive and strictly exceeds move [i]'s
      gain upper bound (gain = [-delta / max darea 1e-9], the sizer's
      own figure of merit) — [i] can never be the accepted
      maximum-gain move while [j] is present.

    The margin ([1e-5] ps of stat delay, scaled by the move's area
    denominator for gains) keeps every comparison strictly clear of
    floating-point noise between the interval mirror and the concrete
    evaluation.

    The global sizer's stage skip (registered through
    {!Spv_sizing.Sens_hook.register_yield_skip}) evaluates
    {!Sensitivity.yield_upper_bound_over_box} over the whole sizing
    box of the probed stage: when even the certified upper bound
    cannot clear the acceptance threshold, the probe is provably
    rejected and is skipped. *)

val fp_margin : float
(** The stat-delay margin (ps) separating certified comparisons from
    floating-point noise. *)

val prune_moves :
  Spv_sizing.Sens_hook.prune_env -> Spv_sizing.Sens_hook.move list ->
  bool array
(** The greedy move pruner; exposed for tests. [true] = certified
    never-accepted. *)

val yield_skip : Spv_sizing.Sens_hook.yield_skip_env -> bool
(** The global-sizer probe skip test; exposed for tests. *)

val install_sizing_prune : unit -> unit
(** Register {!prune_moves} and {!yield_skip} with
    {!Spv_sizing.Sens_hook}. *)

(** {2 The analyzer pass} *)

type gate_cert = {
  gc_stage : int;
  gc_node : int;
  gc_size : float;  (** current size (box centre up to the factor) *)
  gc_box : Interval.t;  (** declared size box for the certificates *)
  gc_mu : Sensitivity.enclosure;  (** d(stage mu)/d(size) *)
  gc_sigma : Sensitivity.enclosure;  (** d(stage sigma)/d(size) *)
  gc_yield : Sensitivity.enclosure option;
      (** d(pipeline Clark yield)/d(size), with a [t_target] *)
}

type t = { gate_level : bool; certs : gate_cert list }

val analyse :
  ?k:int -> ?box_factor:float -> ?t_target:float ->
  Spv_engine.Engine.Ctx.t -> t
(** Certify up to [k] (default 4) critical-path gates per stage over
    the relative size box [\[size / box_factor, size * box_factor\]]
    (default factor 1.3, the greedy sizer's step).  Moments-only
    contexts yield [gate_level = false] and no certificates. *)

val findings : t -> Report.finding list
(** The ["sensitivity"] pass: one finding per certified knob (with the
    derivative enclosures as data) plus a summary finding; a [Warn]
    on moments-only contexts. *)
