type t = { lo : float; hi : float }

let make ~lo ~hi =
  if Float.is_nan lo || Float.is_nan hi then
    invalid_arg "Interval.make: NaN endpoint";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let point x = make ~lo:x ~hi:x
let lo i = i.lo
let hi i = i.hi
let width i = i.hi -. i.lo
let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }

let scale i k =
  if Float.is_nan k || k < 0.0 then
    invalid_arg "Interval.scale: negative or NaN factor";
  { lo = i.lo *. k; hi = i.hi *. k }

let shift i d = { lo = i.lo +. d; hi = i.hi +. d }
let neg i = { lo = -.i.hi; hi = -.i.lo }

let sym r =
  if Float.is_nan r then invalid_arg "Interval.sym: NaN radius";
  let r = Float.abs r in
  { lo = -.r; hi = r }

let mul a b =
  let p1 = a.lo *. b.lo and p2 = a.lo *. b.hi in
  let p3 = a.hi *. b.lo and p4 = a.hi *. b.hi in
  (* 0 * inf = NaN under IEEE but the interval-arithmetic convention
     (IEEE 1788) is 0 * inf = 0: the zero endpoint is attained, the
     infinite one is an open bound. *)
  let corner p = if Float.is_nan p then 0.0 else p in
  let p1 = corner p1 and p2 = corner p2 and p3 = corner p3 and p4 = corner p4 in
  {
    lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
    hi = Float.max (Float.max p1 p2) (Float.max p3 p4);
  }
let max2 a b = { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }

let max_many = function
  | [||] -> invalid_arg "Interval.max_many: empty"
  | is -> Array.fold_left max2 is.(0) is

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let contains ?(slack = 0.0) i x =
  (not (Float.is_nan x)) && x >= i.lo -. slack && x <= i.hi +. slack

let is_finite i = Float.is_finite i.lo && Float.is_finite i.hi

let mem_all ?slack i xs =
  Array.fold_left
    (fun acc x -> if contains ?slack i x then acc else acc + 1)
    0 xs

let pp ppf i = Format.fprintf ppf "[%g, %g]" i.lo i.hi
let to_string i = Format.asprintf "%a" pp i
