module Netlist = Spv_circuit.Netlist
module Sta = Spv_circuit.Sta
module Topo = Spv_circuit.Topo
module Engine = Spv_engine.Engine

type t = {
  levels : int array;
  lo_sta : Sta.result;
  hi_sta : Sta.result;
  through_hi : float array;
  lo_delay : float;
  active : bool array;
  n_gates : int;
  n_active_gates : int;
}

let analyse ?(k = 6.0) ?(output_load = 4.0) tech net =
  let n = Netlist.n_nodes net in
  let levels = Topo.levels net in
  let f_lo, f_hi = Bounds.corner_factors ~k tech net in
  let lo_sta = Sta.run_with_factors ~output_load tech net ~factors:f_lo in
  let hi_sta = Sta.run_with_factors ~output_load tech net ~factors:f_hi in
  (* Backward pass over the hi corner: longest remaining gate-path to
     any primary output.  neg_infinity marks nodes that reach none. *)
  let down = Array.make n neg_infinity in
  Array.iter (fun o -> down.(o) <- 0.0) (Netlist.outputs net);
  for i = n - 1 downto 0 do
    List.iter
      (fun g ->
        if Netlist.is_gate net g then
          let via = hi_sta.Sta.gate_delays.(g) +. down.(g) in
          if via > down.(i) then down.(i) <- via)
      (Netlist.fanouts net i)
  done;
  let through_hi =
    Array.init n (fun i -> hi_sta.Sta.arrival.(i) +. down.(i))
  in
  let lo_delay = lo_sta.Sta.delay in
  (* Conservative float margin: only prune when the hi-side bound is
     clearly below the lo-side delay. *)
  let margin = 1e-9 +. (1e-12 *. Float.abs lo_delay) in
  let active =
    Array.init n (fun i ->
        if not (Netlist.is_gate net i) then true
        else through_hi.(i) >= lo_delay -. margin)
  in
  let n_gates = Netlist.n_gates net in
  let n_active_gates =
    Array.fold_left
      (fun acc i -> if active.(i) then acc + 1 else acc)
      0 (Netlist.gate_ids net)
  in
  { levels; lo_sta; hi_sta; through_hi; lo_delay; active; n_gates;
    n_active_gates }

let active_mask t = Array.copy t.active

let cone t =
  let acc = ref [] in
  (* Gates only: inputs are level 0, gates are level >= 1. *)
  for i = Array.length t.active - 1 downto 0 do
    if t.active.(i) && t.levels.(i) > 0 then acc := i :: !acc
  done;
  !acc

let prunable_fraction t =
  if t.n_gates = 0 then 0.0
  else float_of_int (t.n_gates - t.n_active_gates) /. float_of_int t.n_gates

let masks_for_ctx ?k ctx =
  let tech = Engine.Ctx.tech ctx in
  let output_load = Engine.Ctx.output_load ctx in
  Array.init (Engine.Ctx.n_stages ctx) (fun i ->
      active_mask (analyse ?k ~output_load tech (Engine.Ctx.netlist ctx i)))

let prune_ctx ?k ctx = Engine.Ctx.with_prune ctx (masks_for_ctx ?k ctx)

let findings ?stage t =
  let location =
    match stage with None -> Report.Pipeline | Some s -> Report.Stage s
  in
  let depth = Array.fold_left max 0 t.levels in
  [
    Report.finding ~location ~pass:"criticality"
      ~data:
        [
          ("gates", Report.Int t.n_gates);
          ("possibly_critical", Report.Int t.n_active_gates);
          ("prunable_fraction", Report.Num (prunable_fraction t));
          ("depth", Report.Int depth);
          ("lo_delay", Report.Num t.lo_delay);
          ("hi_delay", Report.Num t.hi_sta.Sta.delay);
        ]
      "static criticality cone";
  ]
