module Ds = Spv_core.Design_space
module Special = Spv_stats.Special
module Engine = Spv_engine.Engine

type status = Proved | Refuted | Inconclusive

let status_name = function
  | Proved -> "proved"
  | Refuted -> "refuted"
  | Inconclusive -> "inconclusive"

type stage_check = {
  stage : int;
  point : Ds.point;
  stage_yield : float;
  required_yield : float;
  sigma_cap_equality : float;
  sigma_cap_relaxed : float;
  admissible : bool;
}

type t = {
  t_target : float;
  yield : float;
  n_stages : int;
  stages : stage_check array;
  product_yield : float;
  min_yield : float;
  frechet_lo : float;
  mu_t_cap : float;
  nonneg_correlation : bool;
  status : status;
  counterexample : stage_check option;
}

let stage_yield ~t_target (p : Ds.point) =
  if p.Ds.sigma > 0.0 then
    Special.big_phi ((t_target -. p.Ds.mu) /. p.Ds.sigma)
  else if p.Ds.mu <= t_target then 1.0
  else 0.0

let validate ~t_target ~yield points =
  if Array.length points = 0 then invalid_arg "Certify: no stages";
  if not (Float.is_finite t_target && t_target > 0.0) then
    invalid_arg "Certify: t_target must be finite and positive";
  if not (Float.is_finite yield && yield > 0.5 && yield < 1.0) then
    invalid_arg "Certify: yield must lie in (0.5, 1)";
  Array.iteri
    (fun i (p : Ds.point) ->
      if not (Float.is_finite p.Ds.mu) then
        invalid_arg (Printf.sprintf "Certify: stage %d: non-finite mu" i);
      if not (Float.is_finite p.Ds.sigma && p.Ds.sigma >= 0.0) then
        invalid_arg
          (Printf.sprintf "Certify: stage %d: sigma must be finite >= 0" i))
    points

let of_points ?(nonneg_correlation = false) ~t_target ~yield points =
  validate ~t_target ~yield points;
  let n = Array.length points in
  let required_yield = yield ** (1.0 /. float_of_int n) in
  let stages =
    Array.mapi
      (fun i (p : Ds.point) ->
        {
          stage = i;
          point = p;
          stage_yield = stage_yield ~t_target p;
          required_yield;
          sigma_cap_equality =
            Ds.equality_sigma_bound ~t_target ~yield ~n_stages:n ~mu:p.Ds.mu;
          sigma_cap_relaxed = Ds.relaxed_sigma_bound ~t_target ~yield ~mu:p.Ds.mu;
          admissible = Ds.admissible ~t_target ~yield ~n_stages:n p;
        })
      points
  in
  let product_yield =
    Array.fold_left (fun acc s -> acc *. s.stage_yield) 1.0 stages
  in
  let min_yield =
    Array.fold_left (fun acc s -> Float.min acc s.stage_yield) 1.0 stages
  in
  let frechet_lo =
    Float.max 0.0
      (1.0
      -. Array.fold_left (fun acc s -> acc +. (1.0 -. s.stage_yield)) 0.0 stages
      )
  in
  let sigma_max =
    Array.fold_left (fun acc (p : Ds.point) -> Float.max acc p.Ds.sigma) 0.0
      points
  in
  let mu_t_cap = Ds.mu_t_upper_bound ~t_target ~yield ~sigma_t:sigma_max in
  let status, counterexample =
    if min_yield < yield then
      (* Fréchet upper bound: the true yield is at most the worst
         stage's marginal yield, under any dependence. *)
      let worst =
        Array.fold_left
          (fun acc s -> if s.stage_yield < acc.stage_yield then s else acc)
          stages.(0) stages
      in
      (Refuted, Some worst)
    else if frechet_lo >= yield then (Proved, None)
    else if nonneg_correlation && product_yield >= yield then
      (* Slepian: nonnegative stage correlations make the independence
         product a lower bound on the joint probability. *)
      (Proved, None)
    else (Inconclusive, None)
  in
  {
    t_target;
    yield;
    n_stages = n;
    stages;
    product_yield;
    min_yield;
    frechet_lo;
    mu_t_cap;
    nonneg_correlation;
    status;
    counterexample;
  }

let nonneg_correlation_of ctx =
  let pipe = Engine.Ctx.pipeline ctx in
  let corr = Spv_core.Pipeline.correlation pipe in
  let n = Spv_core.Pipeline.n_stages pipe in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Spv_stats.Correlation.get corr i j < -1e-9 then ok := false
    done
  done;
  !ok

let of_ctx ?t_target ~yield ctx =
  let d = Engine.Ctx.delay_distribution ctx in
  let t_target =
    match t_target with
    | Some t -> t
    | None ->
        d.Spv_stats.Gaussian.mu +. (3.0 *. d.Spv_stats.Gaussian.sigma)
  in
  let points =
    Array.map
      (fun (g : Spv_stats.Gaussian.t) ->
        { Ds.mu = g.Spv_stats.Gaussian.mu; Ds.sigma = g.Spv_stats.Gaussian.sigma })
      (Spv_core.Pipeline.stage_gaussians (Engine.Ctx.pipeline ctx))
  in
  of_points ~nonneg_correlation:(nonneg_correlation_of ctx) ~t_target ~yield
    points

(* {2 Solution files} *)

type solution = {
  sol_t_target : float;
  sol_yield : float;
  points : Ds.point array;
}

let parse_float ~line ~what s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f -> Ok f
  | _ -> Error (Printf.sprintf "line %d: %s: not a finite number: %S" line what s)

let parse_solution text =
  let ( let* ) = Result.bind in
  let t_target = ref None and yield = ref None in
  let stages : (int * Ds.point) list ref = ref [] in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let ln = i + 1 in
      let body =
        match String.index_opt raw '#' with
        | Some p -> String.sub raw 0 p
        | None -> raw
      in
      let tokens =
        String.split_on_char ' ' body
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      in
      match tokens with
      | [] -> ()
      | [ "t_target"; v ] -> (
          match parse_float ~line:ln ~what:"t_target" v with
          | Ok f when f > 0.0 -> t_target := Some f
          | Ok _ -> fail (Printf.sprintf "line %d: t_target must be > 0" ln)
          | Error e -> fail e)
      | [ "yield"; v ] -> (
          match parse_float ~line:ln ~what:"yield" v with
          | Ok f when f > 0.5 && f < 1.0 -> yield := Some f
          | Ok _ -> fail (Printf.sprintf "line %d: yield must lie in (0.5, 1)" ln)
          | Error e -> fail e)
      | [ "stage"; si; smu; ssigma ] -> (
          match int_of_string_opt si with
          | None -> fail (Printf.sprintf "line %d: stage index: %S" ln si)
          | Some idx when idx < 0 ->
              fail (Printf.sprintf "line %d: stage index: %S" ln si)
          | Some idx -> (
              match
                let* mu = parse_float ~line:ln ~what:"mu" smu in
                let* sigma = parse_float ~line:ln ~what:"sigma" ssigma in
                if sigma < 0.0 then
                  Error (Printf.sprintf "line %d: sigma must be >= 0" ln)
                else Ok { Ds.mu; Ds.sigma }
              with
              | Ok p ->
                  if List.mem_assoc idx !stages then
                    fail (Printf.sprintf "line %d: duplicate stage %d" ln idx)
                  else stages := (idx, p) :: !stages
              | Error e -> fail e))
      | w :: _ ->
          fail
            (Printf.sprintf
               "line %d: unknown directive %S (expected t_target / yield / \
                stage)"
               ln w))
    lines;
  match !err with
  | Some e -> Error e
  | None -> (
      match (!t_target, !yield, !stages) with
      | None, _, _ -> Error "missing t_target line"
      | _, None, _ -> Error "missing yield line"
      | _, _, [] -> Error "no stage lines"
      | Some t, Some y, pairs ->
          let n = List.length pairs in
          let points = Array.make n { Ds.mu = 0.0; Ds.sigma = 0.0 } in
          let seen = Array.make n false in
          let bad = ref None in
          List.iter
            (fun (idx, p) ->
              if idx >= n then
                bad :=
                  Some
                    (Printf.sprintf
                       "stage indices must be contiguous 0..%d (got %d)" (n - 1)
                       idx)
              else begin
                points.(idx) <- p;
                seen.(idx) <- true
              end)
            pairs;
          (match !bad with
          | Some e -> Error e
          | None ->
              if Array.for_all Fun.id seen then
                Ok { sol_t_target = t; sol_yield = y; points }
              else Error "stage indices must be contiguous 0..n-1"))

(* {2 Findings} *)

let findings t =
  let open Report in
  let pipeline =
    let message =
      match t.status with
      | Proved -> "sizing certificate proved: design space membership holds"
      | Refuted -> "sizing certificate refuted"
      | Inconclusive ->
          "sizing certificate inconclusive: bounds do not decide the target"
    in
    finding ~pass:"certify"
      ~severity:(match t.status with Refuted -> Error | _ -> Info)
      ~data:
        [
          ("status", Text (status_name t.status));
          ("t_target", Num t.t_target);
          ("yield_target", Num t.yield);
          ("n_stages", Int t.n_stages);
          ("product_yield", Num t.product_yield);
          ("frechet_lower", Num t.frechet_lo);
          ("frechet_upper", Num t.min_yield);
          ("mu_t_cap", Num t.mu_t_cap);
          ("nonneg_correlation", Flag t.nonneg_correlation);
        ]
      message
  in
  let dependence =
    if t.nonneg_correlation then []
    else
      [
        finding ~pass:"certify" ~severity:Warn
          "stage correlations not known nonnegative: Slepian prove path \
           disabled, only dependence-free bounds used";
      ]
  in
  let stage_findings =
    Array.to_list
      (Array.map
         (fun s ->
           let refuting =
             match t.counterexample with
             | Some c -> c.stage = s.stage
             | None -> false
           in
           let severity =
             if refuting then Error
             else if not s.admissible then Warn
             else Info
           in
           let message =
             if refuting then
               Printf.sprintf
                 "counterexample: stage yield %.6f below pipeline target %.6f"
                 s.stage_yield t.yield
             else if not s.admissible then
               "outside the eq. 12 equal-allocation design space"
             else "inside the eq. 12 design space"
           in
           finding ~pass:"certify" ~severity ~location:(Stage s.stage)
             ~data:
               [
                 ("mu", Num s.point.Ds.mu);
                 ("sigma", Num s.point.Ds.sigma);
                 ("stage_yield", Num s.stage_yield);
                 ("required_yield", Num s.required_yield);
                 ("sigma_cap_equality", Num s.sigma_cap_equality);
                 ("sigma_cap_relaxed", Num s.sigma_cap_relaxed);
                 ("sigma_excess", Num (s.point.Ds.sigma -. s.sigma_cap_equality));
                 ("admissible", Flag s.admissible);
               ]
             message)
         t.stages)
  in
  (pipeline :: dependence) @ stage_findings

(* {2 Sizing hook} *)

let sizing_tolerance = 1e-2

let sizing_check ~where:_ ~t_target ~z ~converged ~mu ~sigma =
  if (not converged) || z <= 0.0 then Ok ()
  else
    let stat = mu +. (z *. sigma) in
    if stat <= t_target *. (1.0 +. sizing_tolerance) then Ok ()
    else
      Error
        (Printf.sprintf
           "stage (mu=%.6g, sigma=%.6g) misses its yield allocation: mu + z \
            sigma = %.6g > t_target %.6g (z = %.3g)"
           mu sigma stat t_target z)

let install_sizing_check () = Spv_sizing.Certify_hook.register sizing_check
