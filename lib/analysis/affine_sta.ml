module Engine = Spv_engine.Engine
module G = Spv_stats.Gaussian
module Mvn = Spv_stats.Mvn
module Matrix = Spv_stats.Matrix
module Tech = Spv_process.Tech
module Spatial = Spv_process.Spatial
module Netlist = Spv_circuit.Netlist
module Sta = Spv_circuit.Sta

type stage = {
  model_form : Affine.t;
  sta_form : Affine.t option;
  model_conc : Interval.t;
  sta_conc : Interval.t option;
  enclosure : Interval.t;
  width_ratio : float;
}

type t = {
  k : float;
  bounds : Bounds.t;
  stages : stage array;
  pipe_model : Affine.t;
  pipe_sta : Affine.t option;
  delay : Interval.t;
  delay_ratio : float;
  mean : Interval.t;
  escape : float;
}

let check_k ~where k =
  if not (Float.is_finite k && k > 0.0) then
    invalid_arg (where ^ ": k must be finite and positive")

(* Both operands are sound enclosures of the same quantity (the
   interval one surely under the box hypothesis, the affine one up to
   its escape mass), so their intersection is too — this is what makes
   nesting inside the interval results hold by construction.  A
   numerically disjoint pair (impossible up to the escape slop) falls
   back to the interval answer. *)
let intersect affine interval =
  let lo = Float.max (Interval.lo affine) (Interval.lo interval)
  and hi = Float.min (Interval.hi affine) (Interval.hi interval) in
  if lo <= hi then Interval.make ~lo ~hi else interval

let width_ratio ~tight ~wide =
  let wt = Interval.width tight and ww = Interval.width wide in
  if Float.is_finite wt && Float.is_finite ww && ww > 0.0 then wt /. ww
  else 1.0

(* ---- model-level forms (the stage-delay MVN in its Cholesky basis) -- *)

let model_form mvn i =
  let row = Mvn.cholesky_row mvn i in
  let terms = ref [] in
  Array.iteri
    (fun j c -> if c <> 0.0 then terms := (Affine.Factor j, c) :: !terms)
    row;
  Affine.make ~center:(Mvn.mean mvn i) ~terms:!terms ~rem:(Interval.point 0.0)
    ()

(* ---- gate-level forms ----------------------------------------------- *)

(* Linearisation gap of the exact alpha-power factor over the box, in
   (u, l) coordinates with u = dvth + coupling * dleff (the overdrive
   shift) and l = dleff:

     h(u, l) = (1 + l) g(u) - (1 + s_v u + l),
     g(u) = (Vgt0 / (Vgt0 - u))^alpha,

   where the affine linear part equals 1 + s_v u + l pointwise.  h is
   linear in l and convex in u (g is convex while 1 + l >= 0), so its
   maximum over the box sits at one of the four corners; g's tangent
   at 0 gives the rigorous floor h >= s_v * u * l >= -s_v U1 L1.  The
   bound degenerates to an infinite interval when the box reaches
   device cutoff (u >= Vgt0) or channel-length pinch (l <= -1),
   mirroring the exact model's own singularities. *)
let linearisation_gap ~k (tech : Tech.t) ~sys_l1 ~size =
  let sv = Tech.delay_sensitivity_vth tech in
  let v1 =
    k
    *. (tech.sigma_vth_inter
       +. (tech.sigma_vth_sys *. sys_l1)
       +. (tech.sigma_vth_rand /. sqrt size))
  in
  let l1 =
    k *. (tech.sigma_leff_rel_inter +. (tech.sigma_leff_rel_sys *. sys_l1))
  in
  let u1 = v1 +. (Float.abs tech.vth_leff_coupling *. l1) in
  let vgt0 = tech.vdd -. tech.vth0 in
  let lo = if l1 < 1.0 then -.(sv *. u1 *. l1) else neg_infinity in
  let hi =
    if u1 < vgt0 && l1 < 1.0 then
      List.fold_left
        (fun acc (u, l) ->
          let g = Spv_process.Alpha_power.delay_factor tech ~dvth:u
              ~dleff_rel:0.0
          in
          Float.max acc (((1.0 +. l) *. g) -. (1.0 +. (sv *. u) +. l)))
        0.0
        [ (u1, l1); (u1, -.l1); (-.u1, l1); (-.u1, -.l1) ]
    else infinity
  in
  Interval.make ~lo ~hi

(* By default the gate-level forms model the {e linearised}-factor
   sampler — the one [Engine.gate_level_delays ~exact:false] and the
   analytic SSTA moments use — for which the affine linear part is the
   factor {e exactly} (rem = 0).  The exact alpha-power sampler is
   covered through the final intersection with {!Bounds}, whose corner
   factors hull both models.  Passing [~exact_rem:true] instead
   charges every gate the alpha-power linearisation gap over the box,
   making the form a standalone enclosure of the exact sampler too —
   at the cost of a remainder that dwarfs the linear part at large k
   (the gap grows like [(1 - u/Vgt0)^-alpha]). *)
let stage_factor_form ?(exact_rem = false) ~k (tech : Tech.t) ~sys_row ~stage
    ~node ~size =
  check_k ~where:"Affine_sta.stage_factor_form" k;
  if not (size > 0.0) then
    invalid_arg "Affine_sta.stage_factor_form: size must be positive";
  let sv = Tech.delay_sensitivity_vth tech in
  let sl = Tech.delay_sensitivity_leff tech in
  (* One spatial field value drives both systematic shifts, so the
     per-driver coefficient combines them linearly (cf.
     Variation.rel_sigma_sys). *)
  let sys_coeff =
    (sv *. tech.sigma_vth_sys) +. (sl *. tech.sigma_leff_rel_sys)
  in
  let terms = ref [] in
  let push s c = if c <> 0.0 then terms := (s, c) :: !terms in
  push Affine.Vth_inter (sv *. tech.sigma_vth_inter);
  push Affine.Leff_inter (sl *. tech.sigma_leff_rel_inter);
  Array.iteri (fun j lj -> push (Affine.Sys j) (sys_coeff *. lj)) sys_row;
  push (Affine.Rand { stage; node }) (sv *. tech.sigma_vth_rand /. sqrt size);
  let rem =
    if exact_rem then
      let sys_l1 =
        Array.fold_left (fun acc lj -> acc +. Float.abs lj) 0.0 sys_row
      in
      linearisation_gap ~k tech ~sys_l1 ~size
    else Interval.point 0.0
  in
  Affine.make ~center:1.0 ~terms:!terms ~rem ()

(* The sampler's spatial field is L z with L the Cholesky factor of
   the stage-position correlation (Spatial.make_sampler); rebuilding
   the same factor here makes the Sys basis match it bit-for-bit. *)
let spatial_rows ctx =
  let n = Engine.Ctx.n_stages ctx in
  let tech = Engine.Ctx.tech ctx in
  let positions =
    Spatial.row_positions ~n ~pitch:(Engine.Ctx.pitch ctx)
  in
  let chol = Matrix.cholesky_psd (Spatial.correlation_matrix tech positions) in
  Array.init n (fun i -> Array.init n (fun j -> Matrix.get chol i j))

(* Affine levelisation: mirrors Sta.run_with_factors — arrival(i) =
   max(0, max over fanins) + d_i * factor_i with d_i the nominal gate
   delay (loads over the full netlist), then the max over primary
   outputs, plus the flip-flop overhead sampled with size 2.0. *)
let stage_sta_form ~k ctx ~sys_row ~stage =
  let tech = Engine.Ctx.tech ctx in
  let net = Engine.Ctx.netlist ctx stage in
  let nominal = Engine.Ctx.nominal_sta ctx stage in
  let n = Netlist.n_nodes net in
  let zero = Affine.const 0.0 in
  let arrival = Array.make n zero in
  for i = 0 to n - 1 do
    match Netlist.node net i with
    | Netlist.Primary_input _ -> ()
    | Netlist.Gate { fanin; _ } ->
        let factor =
          stage_factor_form ~k tech ~sys_row ~stage ~node:i
            ~size:(Netlist.size net i)
        in
        let gate = Affine.scale factor nominal.Sta.gate_delays.(i) in
        let latest =
          Array.fold_left
            (fun acc f -> Affine.max2 ~k acc arrival.(f))
            zero fanin
        in
        arrival.(i) <- Affine.add latest gate
  done;
  let comb =
    Affine.max_many ~k
      (Array.map (fun o -> arrival.(o)) (Netlist.outputs net))
  in
  match Engine.Ctx.flipflop ctx with
  | None -> comb
  | Some ff ->
      let factor =
        stage_factor_form ~k tech ~sys_row ~stage ~node:(-1) ~size:2.0
      in
      Affine.add comb
        (Affine.scale factor (Spv_process.Flipflop.nominal_overhead ff))

(* ---- assembling the enclosures -------------------------------------- *)

(* Coarse tail allowance for unconditional-mean envelopes: outside the
   box (mass <= escape) the form equality fails, so the conditional
   mean interval is widened by a Cauchy–Schwarz term computed from the
   model marginals' second moments.  Negligible at k = 6 (sqrt(esc) ~
   1e-4), and calibrated on the model world — the exact-model gate
   sampler's far tail is heavier (see DESIGN); the final envelope is
   intersected with the interval one either way. *)
let mean_tail_slack ~escape marginals form =
  let s2 =
    Array.fold_left
      (fun acc g ->
        let mu = G.mu g and s = G.sigma g in
        acc +. (mu *. mu) +. (s *. s))
      0.0 marginals
  in
  (Affine.sigma form +. Float.abs (Affine.center form) +. sqrt s2)
  *. sqrt (Float.min 1.0 escape)

let mean_envelope ~escape marginals form =
  let base = Affine.mean_interval form in
  let slack = mean_tail_slack ~escape marginals form in
  if Float.is_finite slack && Interval.is_finite base then
    Interval.make
      ~lo:(Interval.lo base -. slack)
      ~hi:(Interval.hi base +. slack)
  else Interval.make ~lo:neg_infinity ~hi:infinity

let of_ctx ?(k = 6.0) ctx =
  check_k ~where:"Affine_sta.of_ctx" k;
  let bounds = Bounds.of_ctx ~k ctx in
  let n = Engine.Ctx.n_stages ctx in
  let mvn = Engine.Ctx.mvn ctx in
  let gate = Engine.Ctx.gate_level ctx in
  let model_forms = Array.init n (model_form mvn) in
  let sta_forms =
    if not gate then None
    else
      let rows = spatial_rows ctx in
      Some
        (Array.init n (fun i ->
             stage_sta_form ~k ctx ~sys_row:rows.(i) ~stage:i))
  in
  let stages =
    Array.init n (fun i ->
        let mf = model_forms.(i) in
        let sf = Option.map (fun fs -> fs.(i)) sta_forms in
        let model_conc = Affine.concentration ~k mf in
        let sta_conc = Option.map (Affine.concentration ~k) sf in
        let raw =
          match sta_conc with
          | None -> model_conc
          | Some s -> Interval.hull model_conc s
        in
        let total = bounds.Bounds.stages.(i).Bounds.total in
        let enclosure = intersect raw total in
        {
          model_form = mf;
          sta_form = sf;
          model_conc;
          sta_conc;
          enclosure;
          width_ratio = width_ratio ~tight:enclosure ~wide:total;
        })
  in
  let pipe_model = Affine.max_many ~k model_forms in
  let pipe_sta = Option.map (Affine.max_many ~k) sta_forms in
  let delay_raw =
    let m = Affine.concentration ~k pipe_model in
    match pipe_sta with
    | None -> m
    | Some f -> Interval.hull m (Affine.concentration ~k f)
  in
  let delay = intersect delay_raw bounds.Bounds.delay in
  let escape =
    let e = Affine.escape_probability ~k pipe_model in
    match pipe_sta with
    | None -> e
    | Some f -> Float.max e (Affine.escape_probability ~k f)
  in
  let mean_raw =
    let m = mean_envelope ~escape bounds.Bounds.marginals pipe_model in
    match pipe_sta with
    | None -> m
    | Some f ->
        Interval.hull m (mean_envelope ~escape bounds.Bounds.marginals f)
  in
  {
    k;
    bounds;
    stages;
    pipe_model;
    pipe_sta;
    delay;
    delay_ratio = width_ratio ~tight:delay ~wide:bounds.Bounds.delay;
    mean = intersect mean_raw bounds.Bounds.mean;
    escape;
  }

let yield_bounds t ~t_target =
  if Float.is_nan t_target then
    invalid_arg "Affine_sta.yield_bounds: NaN t_target";
  let ym = Affine.cdf_bounds ~k:t.k t.pipe_model t_target in
  let raw =
    match t.pipe_sta with
    | None -> ym
    | Some f -> Interval.hull ym (Affine.cdf_bounds ~k:t.k f t_target)
  in
  intersect raw (Bounds.yield_bounds t.bounds ~t_target)

(* ---- estimate checking (same slack policy as Bounds.check) ----------- *)

let sampling_slack (e : Engine.estimate) =
  match e.stop with
  | Engine.Closed_form -> 0.0
  | Engine.Converged | Engine.Sample_cap | Engine.Fixed_n ->
      6.0 *. e.std_error

let default_yield_slack (e : Engine.estimate) =
  let analytic =
    match e.method_ with
    | Engine.Analytic_clark | Engine.Quadrature -> 0.02
    | Engine.Exact_independent | Engine.Mc | Engine.Adaptive_mc
    | Engine.Importance ->
        1e-9
  in
  analytic +. sampling_slack e

let default_mean_slack t (e : Engine.estimate) =
  let sigma_max =
    Array.fold_left
      (fun m g -> Float.max m (G.sigma g))
      0.0 t.bounds.Bounds.marginals
  in
  (0.01 *. sigma_max) +. 1e-9 +. sampling_slack e

let judge ~bound ~slack value : Bounds.verdict =
  if Interval.contains ~slack bound value then Bounds.Pass { bound; slack }
  else
    let excess =
      if value > Interval.hi bound then value -. Interval.hi bound
      else Interval.lo bound -. value
    in
    Bounds.Fail { bound; slack; value; excess }

let check ?slack ?t_target t (e : Engine.estimate) =
  match t_target with
  | Some t_target when e.Engine.method_ = Engine.Exact_independent ->
      (* The per-stage product is the exact yield only under
         independence; under correlation it can legitimately sit
         anywhere inside the Fréchet band but outside the affine
         envelope of the true yield. *)
      Bounds.check ?slack ~t_target t.bounds e
  | Some t_target ->
      let bound = yield_bounds t ~t_target in
      let slack =
        match slack with Some s -> s | None -> default_yield_slack e
      in
      judge ~bound ~slack e.Engine.value
  | None ->
      let slack =
        match slack with Some s -> s | None -> default_mean_slack t e
      in
      judge ~bound:t.mean ~slack e.Engine.value

(* ---- report ---------------------------------------------------------- *)

let interval_data prefix i =
  [
    (prefix ^ "_lo", Report.Num (Interval.lo i));
    (prefix ^ "_hi", Report.Num (Interval.hi i));
  ]

let sensitivity_finding ~what form =
  let data =
    List.map (fun (cls, s) -> (cls, Report.Num s)) (Affine.attribution form)
    @ [
        ("sigma", Report.Num (Affine.sigma form));
        ("rem_width", Report.Num (Interval.width (Affine.rem form)));
        ("n_symbols", Report.Int (Affine.n_terms form));
      ]
  in
  Report.finding ~pass:"affine" ~data
    (Printf.sprintf "pipeline delay sensitivity (%s form)" what)

let findings ?t_target t =
  let stage_findings =
    Array.to_list t.stages
    |> List.mapi (fun i s ->
           let data =
             interval_data "enclosure" s.enclosure
             @ [ ("width_ratio", Report.Num s.width_ratio) ]
             @ interval_data "model_conc" s.model_conc
             @
             match s.sta_conc with
             | None -> []
             | Some c -> interval_data "sta_conc" c
           in
           if Interval.is_finite s.enclosure then
             Report.finding ~location:(Report.Stage i) ~data ~pass:"affine"
               "stage delay affine enclosure"
           else
             Report.finding ~severity:Report.Error
               ~location:(Report.Stage i) ~data ~pass:"affine"
               "degenerate affine stage enclosure: the variation box \
                crosses the device cutoff; lower k or the sigmas")
  in
  let pipeline_finding =
    let data =
      interval_data "delay" t.delay
      @ interval_data "mean" t.mean
      @ [
          ("width_ratio", Report.Num t.delay_ratio);
          ("escape", Report.Num t.escape);
          ("k", Report.Num t.k);
        ]
    in
    if Interval.is_finite t.delay then
      Report.finding ~data ~pass:"affine" "pipeline delay affine enclosure"
    else
      Report.finding ~severity:Report.Error ~data ~pass:"affine"
        "degenerate affine pipeline enclosure"
  in
  let yield_finding =
    match t_target with
    | None -> []
    | Some t_target ->
        let y = yield_bounds t ~t_target in
        let frechet = Bounds.yield_bounds t.bounds ~t_target in
        [
          Report.finding ~pass:"affine"
            ~data:
              (interval_data "yield" y
              @ interval_data "frechet" frechet
              @ [
                  ("t_target", Report.Num t_target);
                  ( "width_ratio",
                    Report.Num (width_ratio ~tight:y ~wide:frechet) );
                ])
            "pipeline yield affine envelope";
        ]
  in
  let sensitivity =
    sensitivity_finding ~what:"model" t.pipe_model
    ::
    (match t.pipe_sta with
    | None -> []
    | Some f -> [ sensitivity_finding ~what:"gate-level" f ])
  in
  stage_findings @ [ pipeline_finding ] @ yield_finding @ sensitivity

(* ---- engine hook ----------------------------------------------------- *)

let engine_check ctx ~t_target (e : Engine.estimate) =
  let a = of_ctx ctx in
  let what =
    match t_target with None -> "delay mean" | Some _ -> "yield"
  in
  match check ?t_target a e with
  | Bounds.Pass _ -> Ok ()
  | Bounds.Fail { bound; slack; value; excess } ->
      Error
        (Printf.sprintf
           "%s %.9g outside affine envelope %s (slack %.3g, excess %.3g) [%s]"
           what value (Interval.to_string bound) slack excess
           (Engine.method_name e.Engine.method_))

let install_engine_check () = Engine.add_estimate_check engine_check
