let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty array")

type sample_error = Empty_sample | Non_finite_sample of int

let sample_error_to_string = function
  | Empty_sample -> "empty sample"
  | Non_finite_sample i ->
      Printf.sprintf "non-finite value at sample index %d" i

let validate_samples a =
  if Array.length a = 0 then Error Empty_sample
  else begin
    let bad = ref (-1) in
    Array.iteri
      (fun i x -> if !bad < 0 && not (Float.is_finite x) then bad := i)
      a;
    if !bad >= 0 then Error (Non_finite_sample !bad) else Ok ()
  end

let mean a =
  check_nonempty "Descriptive.mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

(* Two-pass algorithm: numerically stable for the tight sigma/mu ratios
   (~1e-2) this library works with. *)
let variance a =
  let n = Array.length a in
  if n < 2 then invalid_arg "Descriptive.variance: need >= 2 samples";
  let m = mean a in
  let acc = Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0.0 a in
  acc /. float_of_int (n - 1)

let std a = sqrt (variance a)

let min_max a =
  check_nonempty "Descriptive.min_max" a;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0))
    a

let quantile a ~p =
  check_nonempty "Descriptive.quantile" a;
  if p < 0.0 || p > 1.0 then invalid_arg "Descriptive.quantile: p outside [0,1]";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let h = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor h) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median a = quantile a ~p:0.5

let central_moment a k =
  let m = mean a in
  Array.fold_left (fun s x -> s +. ((x -. m) ** float_of_int k)) 0.0 a
  /. float_of_int (Array.length a)

let skewness a =
  if Array.length a < 3 then invalid_arg "Descriptive.skewness: need >= 3";
  let m2 = central_moment a 2 in
  if m2 = 0.0 then invalid_arg "Descriptive.skewness: zero variance";
  central_moment a 3 /. (m2 ** 1.5)

let kurtosis_excess a =
  if Array.length a < 4 then invalid_arg "Descriptive.kurtosis_excess: need >= 4";
  let m2 = central_moment a 2 in
  if m2 = 0.0 then invalid_arg "Descriptive.kurtosis_excess: zero variance";
  (central_moment a 4 /. (m2 *. m2)) -. 3.0

let fraction_below a ~threshold =
  check_nonempty "Descriptive.fraction_below" a;
  let hits = Array.fold_left (fun c x -> if x <= threshold then c + 1 else c) 0 a in
  float_of_int hits /. float_of_int (Array.length a)

let standard_error_of_mean a = std a /. sqrt (float_of_int (Array.length a))

let summary a =
  let lo, hi = min_max a in
  Printf.sprintf "n=%d mean=%.4g std=%.4g min=%.4g max=%.4g"
    (Array.length a) (mean a) (std a) lo hi
