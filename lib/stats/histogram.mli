(** Fixed-width binned histograms (Fig. 2 / Fig. 7 style outputs). *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Empty histogram over [\[lo, hi)] with [bins] equal-width bins.
    Requires [lo < hi] and [bins > 0]. *)

val of_samples : ?bins:int -> float array -> t
(** Histogram spanning the sample range (slightly widened); default 50
    bins. Raises [Invalid_argument] on an empty or
    NaN/infinity-containing array. *)

val of_samples_checked :
  ?bins:int -> float array -> (t, Descriptive.sample_error) result
(** Non-raising variant of {!of_samples}: a degenerate sample is a
    typed error. *)

val add : t -> float -> unit
(** Insert one observation.  Values outside the range are counted in
    the under/overflow totals, not in any bin; non-finite values are
    counted in {!rejected} and never binned. *)

val add_all : t -> float array -> unit

val bins : t -> int
val count : t -> int -> int
val total : t -> int
(** Total observations inserted, including under/overflow. *)

val underflow : t -> int
val overflow : t -> int

val rejected : t -> int
(** Non-finite observations passed to {!add} (never binned, not part
    of {!total}). *)

val bin_center : t -> int -> float
val bin_width : t -> float

val density : t -> int -> float
(** Empirical probability density of a bin: count / (total * width);
    comparable directly against an analytic pdf. *)

val frequency : t -> int -> float
(** count / total. *)

val mode_bin : t -> int
(** Index of the fullest bin (leftmost on ties). Requires >= 1 inserted
    in-range observation. *)

val to_series : t -> (float * float) array
(** (bin center, density) pairs for plotting/printing. *)

val pp_ascii : ?width:int -> Format.formatter -> t -> unit
(** ASCII bar rendering, for the bench harness output. *)
