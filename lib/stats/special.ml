(* The error function is evaluated through the regularised lower
   incomplete gamma function P(1/2, x^2): a power series for small
   arguments and a continued fraction (modified Lentz) for large ones.
   This reaches near machine precision, which matters because the Clark
   recursion and the yield inversions repeatedly compose [big_phi] and
   [big_phi_inv]. *)

let gamma_half = sqrt Float.pi

(* Series for P(a, x) with a = 1/2, valid for x < a + 1. *)
let gammp_half_series x =
  let a = 0.5 in
  let rec loop ap sum del =
    if abs_float del < abs_float sum *. 1e-16 then sum
    else
      let ap = ap +. 1.0 in
      let del = del *. x /. ap in
      loop ap (sum +. del) del
  in
  let sum = loop a (1.0 /. a) (1.0 /. a) in
  sum *. exp ((-.x) +. (a *. log x)) /. gamma_half

(* Continued fraction for Q(a, x) with a = 1/2, valid for x >= a + 1. *)
let gammq_half_cf x =
  let a = 0.5 in
  let fpmin = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. fpmin) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let continue = ref true in
  while !continue && !i <= 200 do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if abs_float !d < fpmin then d := fpmin;
    c := !b +. (an /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if abs_float (del -. 1.0) < 1e-16 then continue := false;
    incr i
  done;
  exp ((-.x) +. (a *. log x)) *. !h /. gamma_half

let erf x =
  if x = 0.0 then 0.0
  else
    let z = x *. x in
    let v =
      if z < 1.5 then gammp_half_series z else 1.0 -. gammq_half_cf z
    in
    if x > 0.0 then v else -.v

let erfc_pos x =
  let z = x *. x in
  if z = 0.0 then 1.0
  else if z < 1.5 then 1.0 -. gammp_half_series z
  else gammq_half_cf z

let erfc x = if x < 0.0 then 2.0 -. erfc_pos (-.x) else erfc_pos x

let sqrt2 = sqrt 2.0

let phi x = exp (-0.5 *. x *. x) /. sqrt (2.0 *. Float.pi)

let big_phi x = 0.5 *. erfc (-.x /. sqrt2)

(* Stable survival function: [1. -. big_phi x] cancels catastrophically
   once big_phi rounds to 1 (x >~ 8), silently reporting a zero tail.
   erfc_pos keeps full relative precision out to the underflow limit of
   the double range (x ~ 38), through the same continued fraction the
   Mills-ratio expansion in [log_big_phi] backs onto. *)
let upper_tail x = 0.5 *. erfc (x /. sqrt2)

let log_big_phi x =
  if x > -8.0 then log (big_phi x)
  else
    (* Asymptotic expansion of the Mills ratio for the deep left tail:
       Phi(x) ~ phi(x)/(-x) * (1 - 1/x^2 + 3/x^4 - ...). *)
    let z = x *. x in
    let series = 1.0 -. (1.0 /. z) +. (3.0 /. (z *. z)) -. (15.0 /. (z *. z *. z)) in
    (-0.5 *. z) -. log (-.x) -. (0.5 *. log (2.0 *. Float.pi)) +. log series

(* Acklam's inverse-normal rational approximation, then one Halley step
   against our high-accuracy [big_phi]. *)
let big_phi_inv_raw p =
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let tail_num q =
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
    +. c.(5)
  in
  let tail_den q =
    ((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0
  in
  if p < p_low then
    let q = sqrt (-2.0 *. log p) in
    tail_num q /. tail_den q
  else if p <= 1.0 -. p_low then
    let q = p -. 0.5 in
    let r = q *. q in
    let num =
      ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
       *. r
      +. a.(5))
      *. q
    in
    let den =
      (((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
      *. r
      +. 1.0
    in
    num /. den
  else
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.(tail_num q /. tail_den q)

let big_phi_inv p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Special.big_phi_inv: p must lie in (0, 1)";
  let x = big_phi_inv_raw p in
  (* One Halley step: corrects the 1e-9 raw error to ~1e-13. *)
  let e = big_phi x -. p in
  let u = e /. phi x in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))

let normal_cdf ~mu ~sigma x =
  assert (sigma >= 0.0);
  if sigma = 0.0 then if x >= mu then 1.0 else 0.0
  else big_phi ((x -. mu) /. sigma)

let normal_pdf ~mu ~sigma x =
  assert (sigma > 0.0);
  phi ((x -. mu) /. sigma) /. sigma

let normal_quantile ~mu ~sigma ~p =
  assert (sigma >= 0.0);
  mu +. (sigma *. big_phi_inv p)
