(** Small dense matrices — enough linear algebra for correlated
    Gaussian sampling (Cholesky) and least-squares fits. *)

type t

val create : rows:int -> cols:int -> t
(** Zero matrix. *)

val identity : int -> t
val of_arrays : float array array -> t
(** Row-major copy; all rows must have equal length. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val transpose : t -> t
val mul : t -> t -> t
val mat_vec : t -> float array -> float array
val scale : t -> float -> t
val add : t -> t -> t

val is_symmetric : ?eps:float -> t -> bool

val cholesky : t -> t
(** Lower-triangular [l] with [l * l^T = a] for a symmetric positive
    definite [a].  Raises [Failure] if [a] is not (numerically)
    positive definite. *)

val cholesky_psd : ?jitter:float -> t -> t
(** Cholesky that tolerates positive *semi*-definite inputs (needed for
    perfectly-correlated stage delays, rho = 1) by adding a tiny
    diagonal jitter on failure. *)

val sym_eig : ?max_sweeps:int -> t -> float array * t
(** Eigendecomposition of a symmetric matrix by cyclic Jacobi
    rotations: [(lambda, v)] with [a = v * diag lambda * v^T] and the
    i-th eigenvector in column i of [v].  Eigenvalues are unsorted.
    Raises [Invalid_argument] for a non-square or non-symmetric
    input. *)

val solve_lower : t -> float array -> float array
(** Forward substitution [l x = b] with lower-triangular [l]. *)

val solve_upper : t -> float array -> float array
(** Back substitution [u x = b] with upper-triangular [u]. *)

val solve_spd : t -> float array -> float array
(** Solve [a x = b] for symmetric positive definite [a] via Cholesky. *)

val least_squares : t -> float array -> float array
(** Minimise ||a x - b|| via normal equations (small systems only). *)

val pp : Format.formatter -> t -> unit
