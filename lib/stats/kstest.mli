(** One-sample Kolmogorov–Smirnov test.

    Quantifies the paper's working assumption that the max of Gaussian
    stage delays is itself approximately Gaussian (Section 2.4). *)

type result = {
  statistic : float;  (** sup |F_emp - F_ref| *)
  p_value : float;    (** asymptotic Kolmogorov p-value *)
  n : int;
}

val against_cdf : float array -> cdf:(float -> float) -> result
(** KS distance of a sample against an arbitrary reference CDF.
    Raises [Invalid_argument] on an empty or NaN/infinity-containing
    sample, whose order statistics are meaningless. *)

val against_gaussian : float array -> Gaussian.t -> result

val against_cdf_checked :
  float array -> cdf:(float -> float) ->
  (result, Descriptive.sample_error) Stdlib.result
(** Non-raising variant: a degenerate sample is a typed error. *)

val against_gaussian_checked :
  float array ->
  Gaussian.t ->
  (result, Descriptive.sample_error) Stdlib.result

val kolmogorov_sf : float -> float
(** Survival function Q_KS(lambda) = 2 sum_{k>=1} (-1)^{k-1}
    exp(-2 k^2 lambda^2). *)
