type t = { r : int; c : int; data : float array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: non-positive dims";
  { r = rows; c = cols; data = Array.make (rows * cols) 0.0 }

let rows t = t.r
let cols t = t.c
let get t i j = t.data.((i * t.c) + j)
let set t i j v = t.data.((i * t.c) + j) <- v

let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      set m i j (f i j)
    done
  done;
  m

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1.0 else 0.0)

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Matrix.of_arrays: empty";
  let cols = Array.length a.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> cols then invalid_arg "Matrix.of_arrays: ragged")
    a;
  init ~rows ~cols (fun i j -> a.(i).(j))

let copy t = { t with data = Array.copy t.data }
let transpose t = init ~rows:t.c ~cols:t.r (fun i j -> get t j i)

let mul a b =
  if a.c <> b.r then invalid_arg "Matrix.mul: dimension mismatch";
  init ~rows:a.r ~cols:b.c (fun i j ->
      let acc = ref 0.0 in
      for k = 0 to a.c - 1 do
        acc := !acc +. (get a i k *. get b k j)
      done;
      !acc)

let mat_vec a x =
  if a.c <> Array.length x then invalid_arg "Matrix.mat_vec: dimension mismatch";
  Array.init a.r (fun i ->
      let acc = ref 0.0 in
      for j = 0 to a.c - 1 do
        acc := !acc +. (get a i j *. x.(j))
      done;
      !acc)

let scale a k = init ~rows:a.r ~cols:a.c (fun i j -> k *. get a i j)

let add a b =
  if a.r <> b.r || a.c <> b.c then invalid_arg "Matrix.add: dimension mismatch";
  init ~rows:a.r ~cols:a.c (fun i j -> get a i j +. get b i j)

let is_symmetric ?(eps = 1e-10) t =
  t.r = t.c
  &&
  let ok = ref true in
  for i = 0 to t.r - 1 do
    for j = i + 1 to t.c - 1 do
      if abs_float (get t i j -. get t j i) > eps then ok := false
    done
  done;
  !ok

let cholesky a =
  if a.r <> a.c then invalid_arg "Matrix.cholesky: not square";
  let n = a.r in
  let l = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref (get a i j) in
      for k = 0 to j - 1 do
        s := !s -. (get l i k *. get l j k)
      done;
      if i = j then begin
        if !s <= 0.0 then failwith "Matrix.cholesky: not positive definite";
        set l i j (sqrt !s)
      end
      else set l i j (!s /. get l j j)
    done
  done;
  l

let cholesky_psd ?(jitter = 1e-10) a =
  try cholesky a
  with Failure _ ->
    let n = a.r in
    (* Scale the jitter to the largest diagonal entry so it stays
       negligible relative to the actual variances. *)
    let dmax = ref 0.0 in
    for i = 0 to n - 1 do
      dmax := Float.max !dmax (abs_float (get a i i))
    done;
    (* Only a genuinely semi-definite matrix should pass: cap the
       total jitter at 1e-6 of the diagonal scale so an indefinite
       input still fails. *)
    let rec attempt eps tries =
      if tries = 0 then failwith "Matrix.cholesky_psd: not PSD even with jitter"
      else
        let bumped =
          init ~rows:n ~cols:n (fun i j ->
              if i = j then get a i j +. eps else get a i j)
        in
        try cholesky bumped with Failure _ -> attempt (eps *. 100.0) (tries - 1)
    in
    attempt (jitter *. Float.max !dmax 1.0) 3

let sym_eig ?(max_sweeps = 64) a =
  if a.r <> a.c then invalid_arg "Matrix.sym_eig: not square";
  if not (is_symmetric ~eps:1e-8 a) then
    invalid_arg "Matrix.sym_eig: not symmetric";
  let n = a.r in
  let m = copy a in
  let v = identity n in
  (* Cyclic Jacobi: rotate away each off-diagonal entry in turn until
     the off-diagonal mass is negligible against the diagonal. *)
  let off_norm () =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        s := !s +. (2.0 *. get m i j *. get m i j)
      done
    done;
    sqrt !s
  in
  let diag_scale () =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := Float.max !s (abs_float (get m i i))
    done;
    Float.max !s 1.0
  in
  let sweep = ref 0 in
  while !sweep < max_sweeps && off_norm () > 1e-12 *. diag_scale () do
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = get m p q in
        if abs_float apq > 1e-300 then begin
          let app = get m p p and aqq = get m q q in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let sign = if theta >= 0.0 then 1.0 else -1.0 in
            sign /. (abs_float theta +. sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          for k = 0 to n - 1 do
            let mkp = get m k p and mkq = get m k q in
            set m k p ((c *. mkp) -. (s *. mkq));
            set m k q ((s *. mkp) +. (c *. mkq))
          done;
          for k = 0 to n - 1 do
            let mpk = get m p k and mqk = get m q k in
            set m p k ((c *. mpk) -. (s *. mqk));
            set m q k ((s *. mpk) +. (c *. mqk))
          done;
          for k = 0 to n - 1 do
            let vkp = get v k p and vkq = get v k q in
            set v k p ((c *. vkp) -. (s *. vkq));
            set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done;
    incr sweep
  done;
  (Array.init n (fun i -> get m i i), v)

let solve_lower l b =
  let n = l.r in
  if Array.length b <> n then invalid_arg "Matrix.solve_lower: bad rhs";
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for j = 0 to i - 1 do
      s := !s -. (get l i j *. x.(j))
    done;
    x.(i) <- !s /. get l i i
  done;
  x

let solve_upper u b =
  let n = u.r in
  if Array.length b <> n then invalid_arg "Matrix.solve_upper: bad rhs";
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref b.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (get u i j *. x.(j))
    done;
    x.(i) <- !s /. get u i i
  done;
  x

let solve_spd a b =
  let l = cholesky a in
  solve_upper (transpose l) (solve_lower l b)

let least_squares a b =
  let at = transpose a in
  let ata = mul at a in
  let atb = mat_vec at b in
  solve_spd ata atb

let pp fmt t =
  for i = 0 to t.r - 1 do
    for j = 0 to t.c - 1 do
      Format.fprintf fmt "%10.4g " (get t i j)
    done;
    Format.pp_print_newline fmt ()
  done
