type estimate = {
  probability : float;
  std_error : float;
  effective_samples : float;
}

let summarise values =
  let n = Array.length values in
  let mean = Descriptive.mean values in
  let variance = if n >= 2 then Descriptive.variance values else 0.0 in
  let std_error = sqrt (variance /. float_of_int n) in
  (* Effective sample size of the nonzero weights. *)
  let sum = Array.fold_left ( +. ) 0.0 values in
  let sum_sq = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 values in
  let effective = if sum_sq = 0.0 then 0.0 else sum *. sum /. sum_sq in
  { probability = mean; std_error; effective_samples = effective }

(* One shift per component: the minimal-norm z with component j at the
   barrier (the mode's "design point").  For x_j = mu_j + row_j(L).z,
   the smallest-|z| crossing is z* = row_j(L) (T - mu_j) / sigma_j^2 —
   under correlation it naturally drags the correlated components up
   too, which is exactly the dominant joint failure configuration the
   naive "others stay at their means" shift misses.  Crossing depth is
   capped at 6 sigma so a far barrier keeps a sane proposal. *)
let default_mixture mvn ~threshold =
  let d = Mvn.dim mvn in
  let shifts = ref [] in
  let weights = ref [] in
  for j = 0 to d - 1 do
    let g = Mvn.marginal mvn j in
    let mu = Gaussian.mu g and sigma = Gaussian.sigma g in
    if sigma > 0.0 then begin
      let depth = Float.max 0.0 (Float.min 6.0 ((threshold -. mu) /. sigma)) in
      if depth > 0.0 then begin
        let row = Mvn.cholesky_row mvn j in
        let scale = depth /. sigma in
        shifts := Array.map (fun l -> l *. scale) row :: !shifts;
        (* Marginal exceedance as the mode weight (floored so no mode
           is starved). *)
        let p = 1.0 -. Gaussian.cdf g threshold in
        weights := Float.max p 1e-12 :: !weights
      end
    end
  done;
  match !shifts with
  | [] ->
      (* Every component already sits at or above the barrier: plain
         sampling is fine; use a zero shift. *)
      ([| Array.make d 0.0 |], [| 1.0 |])
  | ss ->
      let shifts = Array.of_list ss in
      let ws = Array.of_list !weights in
      let total = Array.fold_left ( +. ) 0.0 ws in
      (shifts, Array.map (fun w -> w /. total) ws)

let mixture_weight ~shifts ~alphas z =
  (* w(z) = phi(z) / sum_j alpha_j phi(z - theta_j)
          = 1 / sum_j alpha_j exp(theta_j . z - |theta_j|^2 / 2). *)
  let denom = ref 0.0 in
  Array.iteri
    (fun j theta ->
      let dot = ref 0.0 and sq = ref 0.0 in
      Array.iteri
        (fun i t ->
          dot := !dot +. (t *. z.(i));
          sq := !sq +. (t *. t))
        theta;
      denom := !denom +. (alphas.(j) *. exp (!dot -. (!sq /. 2.0))))
    shifts;
  if !denom <= 0.0 then 0.0 else 1.0 /. !denom

(* ---- single-trial sampler kernel ------------------------------------ *)

type plan = {
  p_mvn : Mvn.t;
  p_threshold : float;
  p_shifts : float array array;
  p_alphas : float array;
  p_cumulative : float array;
}

(* Below this whitened-shift norm the proposal is statistically
   indistinguishable from plain sampling (the likelihood ratio stays
   within e^{0.5^2/2} ~ 13% of 1 on typical draws): the target sits in
   the body and mean-shifting buys nothing.  Callers should detect
   this via [max_shift_norm] and fall back to plain Monte-Carlo with
   an explicit marker instead of silently reporting importance-grade
   output (DESIGN §8's importance-at-body contract limit). *)
let body_shift_threshold = 0.5

let plan ?z_shifts ?z_alphas mvn ~threshold =
  let d = Mvn.dim mvn in
  let shifts, alphas =
    match z_shifts with
    | Some ss ->
        if Array.length ss = 0 then
          invalid_arg "Importance.plan: empty shift set";
        Array.iter
          (fun s ->
            if Array.length s <> d then
              invalid_arg "Importance.plan: shift dimension mismatch")
          ss;
        let k = Array.length ss in
        let alphas =
          match z_alphas with
          | None -> Array.make k (1.0 /. float_of_int k)
          | Some ws ->
              if Array.length ws <> k then
                invalid_arg "Importance.plan: alpha/shift length mismatch";
              let total =
                Array.fold_left
                  (fun acc w ->
                    if not (w > 0.0) || not (Float.is_finite w) then
                      invalid_arg
                        "Importance.plan: alphas must be finite positive";
                    acc +. w)
                  0.0 ws
              in
              Array.map (fun w -> w /. total) ws
        in
        (ss, alphas)
    | None ->
        if z_alphas <> None then
          invalid_arg "Importance.plan: z_alphas requires z_shifts";
        default_mixture mvn ~threshold
  in
  let cumulative =
    let acc = ref 0.0 in
    Array.map
      (fun a ->
        acc := !acc +. a;
        !acc)
      alphas
  in
  {
    p_mvn = mvn;
    p_threshold = threshold;
    p_shifts = shifts;
    p_alphas = alphas;
    p_cumulative = cumulative;
  }

let max_shift_norm p =
  Array.fold_left
    (fun acc shift ->
      let sq = Array.fold_left (fun s t -> s +. (t *. t)) 0.0 shift in
      Float.max acc (sqrt sq))
    0.0 p.p_shifts

let n_modes p = Array.length p.p_shifts

let draw_weight p rng =
  let k = Array.length p.p_shifts in
  let pick_mode u =
    let rec go j =
      if j >= k - 1 || u < p.p_cumulative.(j) then j else go (j + 1)
    in
    go 0
  in
  let j = pick_mode (Rng.float rng) in
  let d = Mvn.dim p.p_mvn in
  let z = Array.init d (fun i -> p.p_shifts.(j).(i) +. Rng.gaussian rng) in
  let x = Mvn.transform p.p_mvn z in
  let worst = Array.fold_left Float.max neg_infinity x in
  if worst > p.p_threshold then
    mixture_weight ~shifts:p.p_shifts ~alphas:p.p_alphas z
  else 0.0

let failure_above ?z_shifts mvn rng ~n ~threshold =
  if n <= 0 then invalid_arg "Importance.failure_above: n <= 0";
  let p = plan ?z_shifts mvn ~threshold in
  summarise (Array.init n (fun _ -> draw_weight p rng))

let plain_failure_above mvn rng ~n ~threshold =
  if n <= 0 then invalid_arg "Importance.plain_failure_above: n <= 0";
  let values =
    Array.init n (fun _ ->
        if Mvn.sample_max mvn rng > threshold then 1.0 else 0.0)
  in
  summarise values
