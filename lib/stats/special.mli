(** Special functions for the standard normal distribution.

    All of the paper's analytics are built on the standard normal pdf
    [phi], cdf [big_phi] and quantile [big_phi_inv]; these are
    implemented from scratch (no external numerics dependency). *)

val erf : float -> float
(** Error function, |abs error| < 1.5e-7 (Abramowitz–Stegun 7.1.26). *)

val erfc : float -> float
(** Complementary error function, accurate in the tails. *)

val phi : float -> float
(** Standard normal probability density. *)

val big_phi : float -> float
(** Standard normal cumulative distribution function. *)

val big_phi_inv : float -> float
(** Quantile function of the standard normal.  Acklam's rational
    approximation refined with one Halley step (|abs error| < 1e-9 over
    (0,1)).  Raises [Invalid_argument] outside (0, 1). *)

val log_big_phi : float -> float
(** [log (big_phi x)], numerically stable for very negative [x]. *)

val upper_tail : float -> float
(** [P{X > x} = 1 - big_phi x], computed through [erfc_pos] so
    high-sigma tails keep full relative precision: [upper_tail 8.0]
    is ~6.2e-16 where the naive [1. -. big_phi 8.0] rounds to 0.
    Underflows to 0 only past x ~ 38. *)

val normal_cdf : mu:float -> sigma:float -> float -> float
(** CDF of N(mu, sigma) at a point. [sigma = 0] degenerates to a step. *)

val normal_pdf : mu:float -> sigma:float -> float -> float
(** Density of N(mu, sigma) at a point. Requires [sigma > 0]. *)

val normal_quantile : mu:float -> sigma:float -> p:float -> float
(** Quantile of N(mu, sigma). Requires [p] in (0,1) and [sigma >= 0]. *)
