type report = {
  probability : float;
  std_error : float;
  samples : int;
  converged : bool;
  hit_cap : bool;
}

let rel_std_error ~p ~se =
  if se = 0.0 then 0.0 else if p <= 0.0 then infinity else se /. p

let estimate_probability ?(batch = 1024) ?(min_samples = 1_000)
    ?(rel_se_target = 0.01) ?(max_samples = 1_000_000) trial =
  if batch <= 0 then invalid_arg "Mc.estimate_probability: batch <= 0";
  if min_samples <= 0 then
    invalid_arg "Mc.estimate_probability: min_samples <= 0";
  if max_samples <= 0 then
    invalid_arg "Mc.estimate_probability: max_samples <= 0";
  if not (Float.is_finite rel_se_target && rel_se_target > 0.0) then
    invalid_arg "Mc.estimate_probability: rel_se_target must be finite > 0";
  let successes = ref 0 and n = ref 0 in
  let moments () =
    let fn = float_of_int !n in
    let p = float_of_int !successes /. fn in
    let se = sqrt (Float.max (p *. (1.0 -. p)) 0.0 /. fn) in
    (p, se)
  in
  let done_ = ref false and converged = ref false in
  while not !done_ do
    let take = Stdlib.min batch (max_samples - !n) in
    for _ = 1 to take do
      if trial () then incr successes
    done;
    n := !n + take;
    let p, se = moments () in
    (* A run of all-failures (p = 0) can never satisfy a relative
       criterion; only the cap stops it. *)
    if !n >= min_samples && p > 0.0 && rel_std_error ~p ~se <= rel_se_target
    then begin
      converged := true;
      done_ := true
    end
    else if !n >= max_samples then done_ := true
  done;
  let p, se = moments () in
  {
    probability = p;
    std_error = se;
    samples = !n;
    converged = !converged;
    hit_cap = (not !converged) && !n >= max_samples;
  }

let pp fmt r =
  Format.fprintf fmt "p=%.6g +- %.2g (n=%d, %s)" r.probability r.std_error
    r.samples
    (if r.converged then "converged"
     else if r.hit_cap then "budget exhausted"
     else "stopped")
