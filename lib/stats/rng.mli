(** Deterministic pseudo-random number generation.

    The generator is xoshiro256++ seeded through splitmix64, which gives
    high-quality 64-bit streams with a tiny state.  Every stochastic
    function in the library takes an explicit generator so that all
    experiments are reproducible from a fixed seed. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed].
    Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent snapshot of the current state. *)

val split : t -> int -> t array
(** [split rng n] derives [n] generators from [rng], advancing [rng].
    Each child's four state words come from four independent 64-bit
    parent draws, each mixed through one splitmix64 step (the xoshiro
    authors' recommended seeding), so children carry the parent's full
    256 bits of entropy and the streams are (statistically) independent
    of the parent and of each other.  The result is a pure function of
    the parent's state: equal parent states and equal [n] yield
    bit-identical stream arrays — the basis for the engine's
    deterministic domain-parallel Monte-Carlo.  Requires [n > 0]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform draw in [0, 1) with 53-bit resolution. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform draw in [\[lo, hi)]. Requires [lo <= hi]. *)

val int : t -> bound:int -> int
(** Uniform integer in [\[0, bound)] by masked rejection sampling (no
    modulo bias, any [bound] up to [max_int]).  Raises
    [Invalid_argument] unless [bound > 0]. *)

val gaussian : t -> float
(** Standard normal draw (Marsaglia polar method, both antithetic
    values used). *)

val gaussian_mu_sigma : t -> mu:float -> sigma:float -> float
(** Normal draw with mean [mu] and standard deviation [sigma >= 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
