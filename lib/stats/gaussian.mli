(** Scalar Gaussian distributions N(mu, sigma).

    The paper models every stage delay as a Gaussian; this module is the
    shared value type for them. *)

type t = private { mu : float; sigma : float }
(** Invariant: [sigma >= 0].  A zero-sigma value is a deterministic
    delay, which the bounds in Section 2.5 of the paper need. *)

val make : mu:float -> sigma:float -> t
(** Raises [Invalid_argument] if [sigma < 0] or either value is not
    finite. *)

val mu : t -> float
val sigma : t -> float

val variance : t -> float

val variability : t -> float
(** sigma/mu ratio — the paper's measure of delay variability (Fig. 5).
    Requires [mu <> 0]. *)

val cdf : t -> float -> float
(** [cdf g x] = Pr{X <= x}. *)

val sf : t -> float -> float
(** Survival function [Pr{X > x}], computed through
    {!Special.upper_tail} so deep upper tails keep full relative
    precision where [1. -. cdf g x] would cancel to 0 (x beyond
    ~8 sigma).  [sigma = 0] degenerates to a step. *)

val pdf : t -> float -> float
(** Density at a point; requires [sigma > 0]. *)

val quantile : t -> p:float -> float
(** Value [x] with [cdf g x = p]; requires [p] in (0,1). *)

val sample : t -> Rng.t -> float

val add : t -> t -> rho:float -> t
(** Distribution of the sum of two jointly Gaussian variables with
    correlation [rho] (exact). *)

val scale : t -> float -> t
(** [scale g k] is the distribution of [k * X] for [k >= 0]. *)

val shift : t -> float -> t
(** [shift g c] is the distribution of [X + c]. *)

val sum_correlated : t array -> rho:(int -> int -> float) -> t
(** Sum of jointly Gaussian variables given a pairwise correlation
    function (exact mean and variance). *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
