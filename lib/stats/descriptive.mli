(** Descriptive statistics over float arrays (Monte-Carlo post-processing). *)

type sample_error = Empty_sample | Non_finite_sample of int
(** Structural defects of a sample array, for the modules
    ({!Kstest}, {!Histogram}) whose statistics are meaningless on
    empty or NaN/infinity-containing data.
    [Non_finite_sample i] carries the first offending index. *)

val sample_error_to_string : sample_error -> string

val validate_samples : float array -> (unit, sample_error) result
(** [Ok ()] iff the array is non-empty and every entry is finite. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator). Requires length >= 2. *)

val std : float array -> float
(** Unbiased sample standard deviation. *)

val min_max : float array -> float * float
(** Smallest and largest element. Requires a non-empty array. *)

val quantile : float array -> p:float -> float
(** Empirical quantile with linear interpolation (type-7).  [p] in
    [0, 1].  Sorts a copy; O(n log n). *)

val median : float array -> float

val skewness : float array -> float
(** Sample skewness (g1). Requires length >= 3 and non-zero variance. *)

val kurtosis_excess : float array -> float
(** Sample excess kurtosis (g2). Requires length >= 4 and non-zero
    variance. *)

val fraction_below : float array -> threshold:float -> float
(** Empirical Pr{X <= threshold} — the Monte-Carlo yield estimator. *)

val standard_error_of_mean : float array -> float

val summary : float array -> string
(** One-line human-readable summary (n, mean, std, min, max). *)
