type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable spare : float;
  mutable has_spare : bool;
}

(* splitmix64: used only to expand the user seed into 256 bits of
   well-mixed state, as recommended by the xoshiro authors. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; spare = 0.0; has_spare = false }

let copy t = { t with s0 = t.s0 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t n =
  if n <= 0 then invalid_arg "Rng.split: n <= 0";
  (* Each child state word comes from its own 64-bit parent draw mixed
     through one splitmix64 step, so children receive 256 independent
     parent bits.  (An earlier version funnelled the whole child state
     through a single Int64.to_int seed, silently dropping the top bit
     and collapsing the keyspace to 63 bits.) *)
  Array.init n (fun _ ->
      let word () = splitmix64 (ref (bits64 t)) in
      let s0 = word () in
      let s1 = word () in
      let s2 = word () in
      let s3 = word () in
      if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
        (* xoshiro forbids the all-zero state; unreachable in practice
           (probability 2^-256) but cheap to rule out. *)
        create ~seed:1
      else { s0; s1; s2; s3; spare = 0.0; has_spare = false })

let float t =
  (* 53 high bits scaled into [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling to avoid modulo bias: draw under the smallest
     all-ones mask covering [bound - 1] and reject overshoots.  The
     mask is grown as (2^k - 1) values directly — the earlier
     power-of-two loop [mask lsl 1] wrapped negative for bounds above
     2^61 and never terminated.  [grow] cannot overflow: it stops at
     max_int (all 62 value bits set), which covers every valid bound. *)
  let rec grow m = if m >= bound - 1 then m else grow ((m lsl 1) lor 1) in
  let mask = if bound = 1 then 0 else grow 1 in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (bits64 t) 0x7FFFFFFFFFFFFFFFL) land mask in
    if v < bound then v else draw ()
  in
  draw ()

let gaussian t =
  if t.has_spare then begin
    t.has_spare <- false;
    t.spare
  end
  else begin
    (* Marsaglia polar method. *)
    let rec loop () =
      let u = (2.0 *. float t) -. 1.0 in
      let v = (2.0 *. float t) -. 1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || s = 0.0 then loop ()
      else begin
        let m = sqrt (-2.0 *. log s /. s) in
        t.spare <- v *. m;
        t.has_spare <- true;
        u *. m
      end
    in
    loop ()
  end

let gaussian_mu_sigma t ~mu ~sigma =
  assert (sigma >= 0.0);
  mu +. (sigma *. gaussian t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
