type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable spare : float;
  mutable has_spare : bool;
}

(* splitmix64: used only to expand the user seed into 256 bits of
   well-mixed state, as recommended by the xoshiro authors. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; spare = 0.0; has_spare = false }

let copy t = { t with s0 = t.s0 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t n =
  if n <= 0 then invalid_arg "Rng.split: n <= 0";
  (* Distinct-seed mixing: each child seed is an independent 63-bit
     draw from the parent, expanded into 256 bits of state through
     splitmix64 (the xoshiro authors' recommended seeding), so child
     streams are decorrelated from the parent and from each other. *)
  Array.init n (fun _ ->
      let seed = Int64.to_int (bits64 t) in
      create ~seed)

let float t =
  (* 53 high bits scaled into [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t ~bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let mask = ref 1 in
  while !mask < bound do
    mask := !mask lsl 1
  done;
  let mask = !mask - 1 in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (bits64 t) 0x7FFFFFFFFFFFFFFFL) land mask in
    if v < bound then v else draw ()
  in
  draw ()

let gaussian t =
  if t.has_spare then begin
    t.has_spare <- false;
    t.spare
  end
  else begin
    (* Marsaglia polar method. *)
    let rec loop () =
      let u = (2.0 *. float t) -. 1.0 in
      let v = (2.0 *. float t) -. 1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || s = 0.0 then loop ()
      else begin
        let m = sqrt (-2.0 *. log s /. s) in
        t.spare <- v *. m;
        t.has_spare <- true;
        u *. m
      end
    in
    loop ()
  end

let gaussian_mu_sigma t ~mu ~sigma =
  assert (sigma >= 0.0);
  mu +. (sigma *. gaussian t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
