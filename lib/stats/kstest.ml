type result = { statistic : float; p_value : float; n : int }

let kolmogorov_sf lambda =
  if lambda <= 0.0 then 1.0
  else begin
    let sum = ref 0.0 in
    let term = ref infinity in
    let k = ref 1 in
    while abs_float !term > 1e-12 && !k <= 100 do
      let fk = float_of_int !k in
      term :=
        2.0
        *. (if !k mod 2 = 1 then 1.0 else -1.0)
        *. exp (-2.0 *. fk *. fk *. lambda *. lambda);
      sum := !sum +. !term;
      incr k
    done;
    Float.max 0.0 (Float.min 1.0 !sum)
  end

let against_cdf samples ~cdf =
  (match Descriptive.validate_samples samples with
  | Ok () -> ()
  | Error e ->
      invalid_arg
        ("Kstest.against_cdf: " ^ Descriptive.sample_error_to_string e));
  let n = Array.length samples in
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let d = ref 0.0 in
  for i = 0 to n - 1 do
    let f = cdf sorted.(i) in
    let emp_hi = float_of_int (i + 1) /. float_of_int n in
    let emp_lo = float_of_int i /. float_of_int n in
    d := Float.max !d (Float.max (abs_float (emp_hi -. f)) (abs_float (f -. emp_lo)))
  done;
  let sqrt_n = sqrt (float_of_int n) in
  (* Stephens' finite-sample correction. *)
  let lambda = (sqrt_n +. 0.12 +. (0.11 /. sqrt_n)) *. !d in
  { statistic = !d; p_value = kolmogorov_sf lambda; n }

let against_gaussian samples g = against_cdf samples ~cdf:(Gaussian.cdf g)

let against_cdf_checked samples ~cdf =
  match Descriptive.validate_samples samples with
  | Ok () -> Ok (against_cdf samples ~cdf)
  | Error e -> Error e

let against_gaussian_checked samples g =
  against_cdf_checked samples ~cdf:(Gaussian.cdf g)
