(** Importance sampling for rare-event probabilities of multivariate
    normals.

    Plain Monte-Carlo needs ~100/p samples to see a probability p; a
    4-sigma yield-loss tail (p ~ 3e-5) is out of reach.  Mean-shifted
    importance sampling moves the sampling distribution into the
    failure region and reweights:

    the sampler is a {e mixture} of mean shifts, one per component
    (each failure mode "component i crosses the barrier" gets a shift
    towards its most-likely failure point, weighted by its marginal
    exceedance probability), and every draw is reweighted by the exact
    density ratio [phi(z) / sum_j alpha_j phi(z - theta_j)].  Unbiased
    for any shift set; the mixture keeps the weight variance bounded
    when several stages can fail. *)

type estimate = {
  probability : float;
  std_error : float;  (** standard error of the estimator *)
  effective_samples : float;
      (** n / (1 + cv^2) of the weights inside the failure region — a
          diagnostic: tiny values mean the shift is poorly placed *)
}

type plan
(** Immutable single-trial sampler: the mixture of mean shifts and
    their weights, built once per (mvn, threshold).  Safe to share
    across domains; pair with one {!Rng.t} per domain. *)

val plan :
  ?z_shifts:float array array -> ?z_alphas:float array -> Mvn.t ->
  threshold:float -> plan
(** Build the mixture plan.  [z_shifts] (one whitened shift per
    mixture component) defaults to the automatic per-stage
    construction described above; [z_alphas] (unnormalised positive
    mixture weights, one per explicit shift) defaults to equal
    weights.  Raises [Invalid_argument] on an empty or
    dimension-mismatched shift set, a length-mismatched or
    non-positive alpha set, or [z_alphas] without [z_shifts]. *)

val body_shift_threshold : float
(** 0.5 — the documented whitened-shift norm below which a mean-shift
    proposal is statistically indistinguishable from plain sampling.
    Estimators should treat a plan whose {!max_shift_norm} is below
    this as a {e body} target and fall back to plain Monte-Carlo with
    an explicit marker (DESIGN §8). *)

val max_shift_norm : plan -> float
(** Largest L2 norm over the plan's whitened mixture shifts (0 for the
    degenerate every-component-past-the-barrier plan). *)

val n_modes : plan -> int
(** Number of mixture components. *)

val draw_weight : plan -> Rng.t -> float
(** One importance-sampling trial: the reweighted failure indicator
    (0 when the draw does not fail).  The mean of these values over
    many trials estimates P{max_i X_i > threshold}. *)

val failure_above :
  ?z_shifts:float array array -> Mvn.t -> Rng.t -> n:int -> threshold:float ->
  estimate
(** P{max_i X_i > threshold} (the pipeline's yield-loss event) — a
    thin sequential shim over {!plan}/{!draw_weight}.  Deprecated: new
    code should use [Spv_engine.Engine.yield ~method_:Importance]. *)

val plain_failure_above : Mvn.t -> Rng.t -> n:int -> threshold:float -> estimate
(** The unshifted estimator, for comparison (std_error computed the
    same way). *)
