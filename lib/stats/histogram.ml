type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable inserted : int;
  mutable under : int;
  mutable over : int;
  mutable rejected : int;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: lo >= hi";
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  {
    lo;
    hi;
    counts = Array.make bins 0;
    inserted = 0;
    under = 0;
    over = 0;
    rejected = 0;
  }

let of_samples ?(bins = 50) samples =
  (match Descriptive.validate_samples samples with
  | Ok () -> ()
  | Error e ->
      invalid_arg
        ("Histogram.of_samples: " ^ Descriptive.sample_error_to_string e));
  let lo, hi = Descriptive.min_max samples in
  let pad = Float.max ((hi -. lo) *. 0.01) 1e-9 in
  let h = create ~lo:(lo -. pad) ~hi:(hi +. pad) ~bins in
  Array.iter
    (fun x ->
      let nbins = Array.length h.counts in
      let idx =
        int_of_float (float_of_int nbins *. (x -. h.lo) /. (h.hi -. h.lo))
      in
      let idx = Stdlib.max 0 (Stdlib.min (nbins - 1) idx) in
      h.counts.(idx) <- h.counts.(idx) + 1;
      h.inserted <- h.inserted + 1)
    samples;
  h

let add t x =
  (* A NaN would otherwise fall through every comparison and be binned
     at a garbage index — count it separately instead. *)
  if not (Float.is_finite x) then t.rejected <- t.rejected + 1
  else begin
    t.inserted <- t.inserted + 1;
    if x < t.lo then t.under <- t.under + 1
    else if x >= t.hi then t.over <- t.over + 1
    else begin
    let nbins = Array.length t.counts in
      let idx =
        int_of_float (float_of_int nbins *. (x -. t.lo) /. (t.hi -. t.lo))
      in
      let idx = Stdlib.min (nbins - 1) idx in
      t.counts.(idx) <- t.counts.(idx) + 1
    end
  end

let add_all t = Array.iter (add t)

let of_samples_checked ?bins samples =
  match Descriptive.validate_samples samples with
  | Ok () -> Ok (of_samples ?bins samples)
  | Error e -> Error e
let bins t = Array.length t.counts

let count t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram.count: bad index";
  t.counts.(i)

let total t = t.inserted
let underflow t = t.under
let overflow t = t.over
let rejected t = t.rejected
let bin_width t = (t.hi -. t.lo) /. float_of_int (bins t)

let bin_center t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram.bin_center: bad index";
  t.lo +. ((float_of_int i +. 0.5) *. bin_width t)

let density t i =
  if t.inserted = 0 then 0.0
  else float_of_int (count t i) /. (float_of_int t.inserted *. bin_width t)

let frequency t i =
  if t.inserted = 0 then 0.0
  else float_of_int (count t i) /. float_of_int t.inserted

let mode_bin t =
  if t.inserted - t.under - t.over <= 0 then
    invalid_arg "Histogram.mode_bin: no in-range observations";
  let best = ref 0 in
  for i = 1 to bins t - 1 do
    if t.counts.(i) > t.counts.(!best) then best := i
  done;
  !best

let to_series t = Array.init (bins t) (fun i -> (bin_center t i, density t i))

let pp_ascii ?(width = 50) fmt t =
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  for i = 0 to bins t - 1 do
    let bar = t.counts.(i) * width / peak in
    Format.fprintf fmt "%10.2f | %s %d@."
      (bin_center t i)
      (String.make bar '#')
      t.counts.(i)
  done
