(** Sequential Monte-Carlo probability estimation with a convergence
    contract.

    Fixed-[n] estimators cannot tell the caller whether the answer is
    trustworthy; this runs Bernoulli trials in batches until the
    relative standard error of the estimate reaches a target or a hard
    sample cap is hit, and reports which of the two happened. *)

type report = {
  probability : float;  (** point estimate p̂ = successes / samples *)
  std_error : float;  (** binomial standard error sqrt(p̂(1-p̂)/n) *)
  samples : int;  (** trials actually consumed *)
  converged : bool;  (** relative-SE target reached before the cap *)
  hit_cap : bool;  (** stopped by [max_samples] without converging *)
}

val estimate_probability :
  ?batch:int ->
  ?min_samples:int ->
  ?rel_se_target:float ->
  ?max_samples:int ->
  (unit -> bool) ->
  report
(** [estimate_probability trial] runs [trial] in batches (default 1024)
    until either at least [min_samples] (default 1000) trials have run
    {e and} [std_error / probability <= rel_se_target] (default 0.01),
    or [max_samples] (default 1_000_000) trials are consumed.  An
    all-failure run can never meet a relative criterion and stops at
    the cap with [converged = false].  Raises [Invalid_argument] on
    non-positive budgets or a non-finite/non-positive target. *)

val rel_std_error : p:float -> se:float -> float
(** [se / p]; 0 when [se] is 0, infinite when [p] is 0 with [se > 0]. *)

val pp : Format.formatter -> report -> unit
