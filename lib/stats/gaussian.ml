type t = { mu : float; sigma : float }

let make ~mu ~sigma =
  if not (Float.is_finite mu && Float.is_finite sigma) then
    invalid_arg "Gaussian.make: non-finite parameter";
  if sigma < 0.0 then invalid_arg "Gaussian.make: sigma < 0";
  { mu; sigma }

let mu t = t.mu
let sigma t = t.sigma
let variance t = t.sigma *. t.sigma

let variability t =
  if t.mu = 0.0 then invalid_arg "Gaussian.variability: mu = 0";
  t.sigma /. t.mu

let cdf t x = Special.normal_cdf ~mu:t.mu ~sigma:t.sigma x

let sf t x =
  if t.sigma = 0.0 then if x >= t.mu then 0.0 else 1.0
  else Special.upper_tail ((x -. t.mu) /. t.sigma)
let pdf t x = Special.normal_pdf ~mu:t.mu ~sigma:t.sigma x
let quantile t ~p = Special.normal_quantile ~mu:t.mu ~sigma:t.sigma ~p
let sample t rng = Rng.gaussian_mu_sigma rng ~mu:t.mu ~sigma:t.sigma

let add a b ~rho =
  assert (rho >= -1.0 && rho <= 1.0);
  let var =
    variance a +. variance b +. (2.0 *. rho *. a.sigma *. b.sigma)
  in
  (* Rounding can push a tiny negative variance; clamp. *)
  make ~mu:(a.mu +. b.mu) ~sigma:(sqrt (Float.max var 0.0))

let scale t k =
  if k < 0.0 then invalid_arg "Gaussian.scale: negative factor";
  make ~mu:(t.mu *. k) ~sigma:(t.sigma *. k)

let shift t c = make ~mu:(t.mu +. c) ~sigma:t.sigma

let sum_correlated gs ~rho =
  let n = Array.length gs in
  let mu = Array.fold_left (fun acc g -> acc +. g.mu) 0.0 gs in
  let var = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let r = if i = j then 1.0 else rho i j in
      var := !var +. (r *. gs.(i).sigma *. gs.(j).sigma)
    done
  done;
  make ~mu ~sigma:(sqrt (Float.max !var 0.0))

let equal ?(eps = 1e-12) a b =
  abs_float (a.mu -. b.mu) <= eps && abs_float (a.sigma -. b.sigma) <= eps

let pp fmt t = Format.fprintf fmt "N(%g, %g)" t.mu t.sigma
