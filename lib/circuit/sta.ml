type result = {
  arrival : float array;
  gate_delays : float array;
  delay : float;
  critical_output : int;
  critical_path : int list;
}

let loads ?wire net ~output_load =
  let n = Netlist.n_nodes net in
  let loads = Array.make n 0.0 in
  let is_output = Array.make n false in
  Array.iter (fun o -> is_output.(o) <- true) (Netlist.outputs net);
  for i = 0 to n - 1 do
    let fanouts = Netlist.fanouts net i in
    let fanout_cap =
      List.fold_left
        (fun acc j ->
          match Netlist.node net j with
          | Netlist.Gate { kind; _ } ->
              acc +. Cell.input_cap kind ~size:(Netlist.size net j)
          | Netlist.Primary_input _ -> acc)
        0.0 fanouts
    in
    let po_cap = if is_output.(i) then output_load else 0.0 in
    let wire_cap =
      match wire with
      | None -> 0.0
      | Some m ->
          if fanouts = [] && po_cap = 0.0 then 0.0
          else Wire.wire_cap m ~fanout:(List.length fanouts)
    in
    loads.(i) <- fanout_cap +. po_cap +. wire_cap
  done;
  loads

let run_internal ~output_load ?wire ?active (tech : Spv_process.Tech.t) net
    ~factors =
  let n = Netlist.n_nodes net in
  let loads = loads ?wire net ~output_load in
  let arrival = Array.make n 0.0 in
  let gate_delays = Array.make n 0.0 in
  let is_active i = match active with None -> true | Some m -> m.(i) in
  for i = 0 to n - 1 do
    match Netlist.node net i with
    | Netlist.Primary_input _ -> ()
    | Netlist.Gate _ when not (is_active i) ->
        (* Statically non-critical gate: its arrival stays 0, exactly as
           if the node were an input.  Loads (and hence the delays of
           every active gate) are computed over the full netlist, so an
           active gate's delay is bit-identical to the unmasked run. *)
        ()
    | Netlist.Gate { kind; fanin } ->
        let gate_d =
          tech.tau
          *. (Cell.parasitic kind +. (loads.(i) /. Netlist.size net i))
        in
        let d =
          match wire with
          | None -> gate_d
          | Some m ->
              (* Elmore delay of the output net towards the worst sink;
                 the gate-input caps are the sink load, the wire cap is
                 already charged through [loads]. *)
              let fanouts = Netlist.fanouts net i in
              let sink_cap =
                loads.(i) -. Wire.wire_cap m ~fanout:(List.length fanouts)
              in
              gate_d
              +. Wire.elmore_delay m
                   ~fanout:(List.length fanouts)
                   ~sink_cap:(Float.max 0.0 sink_cap)
        in
        let d =
          match factors with None -> d | Some f -> d *. f.(i)
        in
        gate_delays.(i) <- d;
        let latest =
          Array.fold_left (fun acc f -> Float.max acc arrival.(f)) 0.0 fanin
        in
        arrival.(i) <- latest +. d
  done;
  let critical_output =
    Array.fold_left
      (fun best o -> if arrival.(o) > arrival.(best) then o else best)
      (Netlist.outputs net).(0)
      (Netlist.outputs net)
  in
  (* Trace the critical path back through the latest-arriving fanins. *)
  let rec trace i acc =
    match Netlist.node net i with
    | Netlist.Primary_input _ -> acc
    | Netlist.Gate { fanin; _ } ->
        let pred =
          Array.fold_left
            (fun best f ->
              match best with
              | None -> Some f
              | Some b -> if arrival.(f) > arrival.(b) then Some f else best)
            None fanin
        in
        let acc = i :: acc in
        (match pred with
        | None -> acc
        | Some p -> trace p acc)
  in
  let critical_path =
    match Netlist.node net critical_output with
    | Netlist.Gate _ -> trace critical_output []
    | Netlist.Primary_input _ -> []
  in
  {
    arrival;
    gate_delays;
    delay = arrival.(critical_output);
    critical_output;
    critical_path;
  }

let run ?(output_load = 4.0) ?wire tech net =
  run_internal ~output_load ?wire tech net ~factors:None

let run_with_factors ?(output_load = 4.0) ?wire ?active tech net ~factors =
  if Array.length factors <> Netlist.n_nodes net then
    invalid_arg "Sta.run_with_factors: factors length mismatch";
  (match active with
  | Some m when Array.length m <> Netlist.n_nodes net ->
      invalid_arg "Sta.run_with_factors: active mask length mismatch"
  | _ -> ());
  run_internal ~output_load ?wire ?active tech net ~factors:(Some factors)

let path_delay result path =
  List.fold_left (fun acc i -> acc +. result.gate_delays.(i)) 0.0 path

type min_result = {
  min_arrival : float array;
  min_delay : float;
  shortest_output : int;
  shortest_path : int list;
}

let run_min ?(output_load = 4.0) (tech : Spv_process.Tech.t) net =
  let n = Netlist.n_nodes net in
  let loads = loads net ~output_load in
  let min_arrival = Array.make n 0.0 in
  let gate_delays = Array.make n 0.0 in
  for i = 0 to n - 1 do
    match Netlist.node net i with
    | Netlist.Primary_input _ -> ()
    | Netlist.Gate { kind; fanin } ->
        let d =
          tech.Spv_process.Tech.tau
          *. (Cell.parasitic kind +. (loads.(i) /. Netlist.size net i))
        in
        gate_delays.(i) <- d;
        let earliest =
          Array.fold_left
            (fun acc f -> Float.min acc min_arrival.(f))
            infinity fanin
        in
        min_arrival.(i) <- earliest +. d
  done;
  let shortest_output =
    Array.fold_left
      (fun best o -> if min_arrival.(o) < min_arrival.(best) then o else best)
      (Netlist.outputs net).(0)
      (Netlist.outputs net)
  in
  let rec trace i acc =
    match Netlist.node net i with
    | Netlist.Primary_input _ -> acc
    | Netlist.Gate { fanin; _ } ->
        let pred =
          Array.fold_left
            (fun best f ->
              match best with
              | None -> Some f
              | Some b -> if min_arrival.(f) < min_arrival.(b) then Some f else best)
            None fanin
        in
        let acc = i :: acc in
        (match pred with None -> acc | Some p -> trace p acc)
  in
  let shortest_path =
    match Netlist.node net shortest_output with
    | Netlist.Gate _ -> trace shortest_output []
    | Netlist.Primary_input _ -> []
  in
  { min_arrival; min_delay = min_arrival.(shortest_output); shortest_output;
    shortest_path }
