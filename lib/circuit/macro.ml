module Gd = Spv_process.Gate_delay

type t = { label : string; n_gates : int; delay : Canonical.t }
type block = { b_index : int; b_net : Netlist.t; b_gates : int array }

let default_block_gates = 2048

(* ---- hashing --------------------------------------------------------- *)

(* FNV-1a, 64-bit.  The hashes only key in-memory memo tables (they are
   never persisted), but collisions would silently reuse a wrong macro,
   so the full structure is folded in rather than a lossy summary. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L
let mix h x = Int64.mul (Int64.logxor h x) fnv_prime
let mix_int h i = mix h (Int64.of_int i)

let mix_string h s =
  let h = ref (mix_int h (String.length s)) in
  String.iter (fun c -> h := mix_int !h (Char.code c)) s;
  !h

let kind_code = function
  | Cell.Inv -> 0
  | Cell.Buf -> 1
  | Cell.Nand2 -> 2
  | Cell.Nand3 -> 3
  | Cell.Nand4 -> 4
  | Cell.Nor2 -> 5
  | Cell.Nor3 -> 6
  | Cell.Nor4 -> 7
  | Cell.And2 -> 8
  | Cell.Or2 -> 9
  | Cell.Xor2 -> 10
  | Cell.Xnor2 -> 11
  | Cell.Aoi21 -> 12
  | Cell.Oai21 -> 13
  | Cell.Mux2 -> 14

let structure_hash net =
  let n = Netlist.n_nodes net in
  let h = ref (mix_int fnv_offset n) in
  for i = 0 to n - 1 do
    match Netlist.node net i with
    | Netlist.Primary_input name -> h := mix_string (mix_int !h (-1)) name
    | Netlist.Gate { kind; fanin } ->
        h := mix_int !h (kind_code kind);
        Array.iter (fun f -> h := mix_int !h f) fanin
  done;
  Array.iter (fun o -> h := mix_int (mix_int !h (-2)) o) (Netlist.outputs net);
  !h

let sizes_hash net =
  let n = Netlist.n_nodes net in
  let h = ref (mix_int fnv_offset n) in
  for i = 0 to n - 1 do
    if Netlist.is_gate net i then
      h := mix !h (Int64.bits_of_float (Netlist.size net i))
  done;
  !h

let combine a b = mix (mix fnv_offset a) b
let hash net = combine (structure_hash net) (sizes_hash net)

(* ---- level-band partition -------------------------------------------- *)

(* The structure-only half of a partition: which band each node falls
   in and which gates are exposed outputs of their band.  Depends only
   on the netlist structure and the band grain — never on drive sizes —
   so the memo table caches it per (structure, target_gates) and a
   resize re-materialises only the bands it touched. *)
type plan = {
  pl_n_bands : int;
  pl_band_of_node : int array;  (* -1 for primary inputs *)
  pl_exposed : bool array;
  pl_members : int array array;  (* parent gate ids per band, ascending *)
}

let plan ?(target_gates = default_block_gates) net =
  if target_gates <= 0 then
    invalid_arg "Macro.partition: target_gates must be positive";
  if Netlist.n_gates net = 0 then invalid_arg "Macro.partition: no gates";
  let n = Netlist.n_nodes net in
  let levels = Topo.levels net in
  let depth = Array.fold_left max 0 levels in
  (* Gates per level (level 0 is inputs only). *)
  let per_level = Array.make (depth + 1) 0 in
  for i = 0 to n - 1 do
    if Netlist.is_gate net i then
      per_level.(levels.(i)) <- per_level.(levels.(i)) + 1
  done;
  (* Greedy contiguous grouping: close a band once it reaches the
     target.  [band_of_level.(l)] maps level l >= 1 to its band. *)
  let band_of_level = Array.make (depth + 1) 0 in
  let band = ref 0 and in_band = ref 0 in
  for l = 1 to depth do
    if !in_band >= target_gates then begin
      incr band;
      in_band := 0
    end;
    band_of_level.(l) <- !band;
    in_band := !in_band + per_level.(l)
  done;
  let n_bands = !band + 1 in
  let band_of_node = Array.make n (-1) in
  for i = 0 to n - 1 do
    if levels.(i) > 0 then band_of_node.(i) <- band_of_level.(levels.(i))
  done;
  (* Which gates feed a later band (or are parent outputs)?  Those are
     the exposed outputs of their own band. *)
  let exposed = Array.make n false in
  for i = 0 to n - 1 do
    match Netlist.node net i with
    | Netlist.Primary_input _ -> ()
    | Netlist.Gate { fanin; _ } ->
        Array.iter
          (fun f ->
            if Netlist.is_gate net f && band_of_node.(f) <> band_of_node.(i)
            then exposed.(f) <- true)
          fanin
  done;
  Array.iter
    (fun o -> if Netlist.is_gate net o then exposed.(o) <- true)
    (Netlist.outputs net);
  let members = Array.make n_bands [] in
  for i = n - 1 downto 0 do
    let b = band_of_node.(i) in
    if b >= 0 then members.(b) <- i :: members.(b)
  done;
  {
    pl_n_bands = n_bands;
    pl_band_of_node = band_of_node;
    pl_exposed = exposed;
    pl_members = Array.map Array.of_list members;
  }

let materialise_band net pl b =
  let n = Netlist.n_nodes net in
  let band_of_node i = pl.pl_band_of_node.(i) in
  let exposed = pl.pl_exposed in
  (* Members: gates of band [b]; boundary: any fanin outside it. *)
  let member i = Netlist.is_gate net i && band_of_node i = b in
    let needed = Array.make n false in
    let gates = ref [] in
    for i = n - 1 downto 0 do
      if member i then begin
        gates := i :: !gates;
        needed.(i) <- true;
        match Netlist.node net i with
        | Netlist.Gate { fanin; _ } ->
            Array.iter (fun f -> needed.(f) <- true) fanin
        | Netlist.Primary_input _ -> assert false
      end
    done;
    let gates = Array.of_list !gates in
    (* Local ids in ascending parent order keep the DAG property. *)
    let local = Array.make n (-1) in
    let count = ref 0 in
    for i = 0 to n - 1 do
      if needed.(i) then begin
        local.(i) <- !count;
        incr count
      end
    done;
    let nodes =
      Array.make !count (Netlist.Primary_input "")
    in
    let sizes = Array.make !count 1.0 in
    for i = 0 to n - 1 do
      if needed.(i) then begin
        let li = local.(i) in
        (if member i then
           match Netlist.node net i with
           | Netlist.Gate { kind; fanin } ->
               nodes.(li) <-
                 Netlist.Gate
                   { kind; fanin = Array.map (fun f -> local.(f)) fanin }
           | Netlist.Primary_input _ -> assert false
         else
           (* Cut fanin (parent input or earlier-band gate): a fresh
              primary input named by parent id, deterministically. *)
           nodes.(li) <- Netlist.Primary_input (Printf.sprintf "n%d" i));
        sizes.(li) <- (if Netlist.is_gate net i then Netlist.size net i else 1.0)
      end
    done;
    let outputs = ref [] in
    for i = n - 1 downto 0 do
      if member i && exposed.(i) then outputs := local.(i) :: !outputs
    done;
    (if !outputs = [] then
       (* A band of dangling gates (no consumer anywhere): expose its
          in-band sinks so the block still has a well-defined delay. *)
       let consumed = Array.make n false in
       Array.iter
         (fun i ->
           match Netlist.node net i with
           | Netlist.Gate { fanin; _ } ->
               Array.iter
                 (fun f -> if member f then consumed.(f) <- true)
                 fanin
           | Netlist.Primary_input _ -> ())
         gates;
       for i = n - 1 downto 0 do
         if member i && not consumed.(i) then outputs := local.(i) :: !outputs
       done);
    let b_net =
      Netlist.make
        ~name:(Printf.sprintf "%s.band%d" (Netlist.name net) b)
        ~nodes ~outputs:(Array.of_list !outputs) ~sizes
    in
  { b_index = b; b_net; b_gates = gates }

let partition ?target_gates net =
  let pl = plan ?target_gates net in
  Array.init pl.pl_n_bands (materialise_band net pl)

(* ---- characterisation and composition -------------------------------- *)

let characterise ?(output_load = 4.0) tech net =
  let r = Block_ssta.run ~output_load tech net in
  {
    label = Netlist.name net;
    n_gates = Netlist.n_gates net;
    delay = r.Block_ssta.output;
  }

let series a b =
  {
    label = a.label ^ "+" ^ b.label;
    n_gates = a.n_gates + b.n_gates;
    delay = Canonical.add a.delay b.delay;
  }

let merge a b =
  {
    label = a.label ^ "|" ^ b.label;
    n_gates = a.n_gates + b.n_gates;
    delay = Canonical.max a.delay b.delay;
  }

let stage_delay ?ff macros =
  if Array.length macros = 0 then invalid_arg "Macro.stage_delay: no macros";
  let total = ref macros.(0) in
  for i = 1 to Array.length macros - 1 do
    total := series !total macros.(i)
  done;
  let comb = Canonical.to_gate_delay (!total).delay in
  match ff with
  | None -> comb
  | Some ff -> Gd.add comb (Spv_process.Flipflop.overhead ff)

(* ---- memo table ------------------------------------------------------ *)

module Table = struct
  type macro = t

  type stage_entry = {
    se_blocks : block array;
    se_macros : macro array;
    se_delay : Gd.t;
  }

  type key = int64 * string

  type t = {
    blocks_tbl : (key, macro) Hashtbl.t;
    stages_tbl : (key, stage_entry) Hashtbl.t;
    flat_tbl : (key, Ssta.stage_analysis) Hashtbl.t;
    (* Band plans keyed on (structure_hash, target_gates): partitioning
       reads only the structure, so a resize never invalidates a plan
       and a stage-entry miss skips straight to per-band probes. *)
    plans_tbl : (int64, plan) Hashtbl.t;
    (* Band-level cache: (structure, grain, band index, member sizes)
       fully determine the materialised sub-netlist bit for bit, so a
       hit reuses both the block record and its macro without
       re-materialising anything. *)
    bands_tbl : (key, block * macro) Hashtbl.t;
    (* Physical-identity cache for the structure hash only — structure
       is immutable after [Netlist.make], so identity implies equality;
       sizes are re-hashed on every probe. *)
    mutable struct_cache : (Netlist.t * int64) list;
    mutable hits : int;
    mutable misses : int;
  }

  let create () =
    {
      blocks_tbl = Hashtbl.create 64;
      stages_tbl = Hashtbl.create 64;
      flat_tbl = Hashtbl.create 64;
      plans_tbl = Hashtbl.create 64;
      bands_tbl = Hashtbl.create 64;
      struct_cache = [];
      hits = 0;
      misses = 0;
    }

  let hits t = t.hits
  let misses t = t.misses

  let reset_counters t =
    t.hits <- 0;
    t.misses <- 0

  let fingerprint ?(output_load = 4.0) ?ff tech =
    let b = Buffer.create 256 in
    let f x = Buffer.add_string b (Printf.sprintf "%.17g;" x) in
    let t = tech in
    Buffer.add_string b (t.Spv_process.Tech.name ^ ";");
    f t.Spv_process.Tech.vdd;
    f t.Spv_process.Tech.vth0;
    f t.Spv_process.Tech.alpha;
    f t.Spv_process.Tech.tau;
    f t.Spv_process.Tech.leff0;
    f t.Spv_process.Tech.sigma_vth_inter;
    f t.Spv_process.Tech.sigma_vth_rand;
    f t.Spv_process.Tech.sigma_vth_sys;
    f t.Spv_process.Tech.sigma_leff_rel_inter;
    f t.Spv_process.Tech.sigma_leff_rel_sys;
    f t.Spv_process.Tech.vth_leff_coupling;
    f t.Spv_process.Tech.corr_length;
    f output_load;
    (match ff with
    | None -> Buffer.add_string b "noff"
    | Some ff ->
        let g (d : Gd.t) =
          f d.Gd.nominal;
          f d.Gd.sigma_inter;
          f d.Gd.sigma_sys;
          f d.Gd.sigma_rand
        in
        g ff.Spv_process.Flipflop.clk_to_q;
        g ff.Spv_process.Flipflop.setup);
    Buffer.contents b

  let stage_hash t net =
    let sh =
      match List.find_opt (fun (n, _) -> n == net) t.struct_cache with
      | Some (_, sh) -> sh
      | None ->
          let sh = structure_hash net in
          t.struct_cache <- (net, sh) :: t.struct_cache;
          sh
    in
    combine sh (sizes_hash net)

  let block_macro t ~fp ~output_load tech block =
    let key = (hash block.b_net, fp) in
    match Hashtbl.find_opt t.blocks_tbl key with
    | Some m ->
        t.hits <- t.hits + 1;
        m
    | None ->
        t.misses <- t.misses + 1;
        let m = characterise ~output_load tech block.b_net in
        Hashtbl.replace t.blocks_tbl key m;
        m

  let compose_blocks macros =
    let total = ref macros.(0) in
    for i = 1 to Array.length macros - 1 do
      total := series !total macros.(i)
    done;
    Canonical.to_gate_delay (!total).delay

  let structure_hash_of t net =
    match List.find_opt (fun (n, _) -> n == net) t.struct_cache with
    | Some (_, sh) -> sh
    | None ->
        let sh = structure_hash net in
        t.struct_cache <- (net, sh) :: t.struct_cache;
        sh

  let plan_for t ~target_gates net =
    let pk = mix_int (mix fnv_offset (structure_hash_of t net)) target_gates in
    match Hashtbl.find_opt t.plans_tbl pk with
    | Some pl -> pl
    | None ->
        let pl = plan ~target_gates net in
        Hashtbl.replace t.plans_tbl pk pl;
        pl

  (* FNV over the member gates' current drive sizes: together with the
     (structure, grain, index) prefix this pins the materialised band
     bit for bit. *)
  let band_key ~struct_h ~target_gates ~index net members =
    let h = mix_int (mix fnv_offset struct_h) target_gates in
    let h = mix_int h index in
    let h = ref (mix_int h (Array.length members)) in
    Array.iter
      (fun g -> h := mix !h (Int64.bits_of_float (Netlist.size net g)))
      members;
    !h

  let banded_block t ~fp ~struct_h ~target_gates ~output_load tech net pl b =
    let key =
      (band_key ~struct_h ~target_gates ~index:b net pl.pl_members.(b), fp)
    in
    match Hashtbl.find_opt t.bands_tbl key with
    | Some (block, m) ->
        t.hits <- t.hits + 1;
        (block, m)
    | None ->
        t.misses <- t.misses + 1;
        let block = materialise_band net pl b in
        let m = characterise ~output_load tech block.b_net in
        Hashtbl.replace t.bands_tbl key (block, m);
        (block, m)

  let stage t ~fp ?stage_key ?(target_gates = default_block_gates)
      ~output_load tech net =
    let k_hash =
      match stage_key with Some k -> k | None -> stage_hash t net
    in
    let key = (k_hash, fp) in
    match Hashtbl.find_opt t.stages_tbl key with
    | Some e ->
        t.hits <- t.hits + Array.length e.se_macros;
        e
    | None ->
        let struct_h = structure_hash_of t net in
        let pl = plan_for t ~target_gates net in
        let pairs =
          Array.init pl.pl_n_bands
            (banded_block t ~fp ~struct_h ~target_gates ~output_load tech net
               pl)
        in
        let se_blocks = Array.map fst pairs in
        let se_macros = Array.map snd pairs in
        let e = { se_blocks; se_macros; se_delay = compose_blocks se_macros } in
        Hashtbl.replace t.stages_tbl key e;
        e

  let flat_analysis t ~fp ?stage_key ~output_load ?ff tech net =
    let k_hash =
      match stage_key with Some k -> k | None -> stage_hash t net
    in
    let key = (k_hash, fp) in
    match Hashtbl.find_opt t.flat_tbl key with
    | Some a -> a
    | None ->
        let a = Ssta.analyse_stage ~output_load ?ff tech net in
        Hashtbl.replace t.flat_tbl key a;
        a
end
