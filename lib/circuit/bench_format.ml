let signal_name net id =
  match Netlist.node net id with
  | Netlist.Primary_input label -> label
  | Netlist.Gate _ -> Printf.sprintf "n%d" id

let to_string net =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Netlist.name net));
  Array.iter
    (fun id ->
      Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (signal_name net id)))
    (Netlist.input_ids net);
  Array.iter
    (fun id ->
      match Netlist.node net id with
      | Netlist.Primary_input _ -> ()
      | Netlist.Gate { kind; fanin } ->
          let args =
            String.concat ", "
              (Array.to_list (Array.map (signal_name net) fanin))
          in
          let size = Netlist.size net id in
          let annot =
            if abs_float (size -. 1.0) < 1e-12 then ""
            else Printf.sprintf " [size=%g]" size
          in
          Buffer.add_string buf
            (Printf.sprintf "%s = %s(%s)%s\n" (signal_name net id)
               (String.uppercase_ascii (Cell.name kind))
               args annot))
    (Netlist.gate_ids net);
  Array.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "OUTPUT(%s)\n" (signal_name net id)))
    (Netlist.outputs net);
  Buffer.contents buf

(* ---- parsing -------------------------------------------------------- *)

type statement =
  | St_input of string
  | St_output of string
  | St_def of { signal : string; cell : string; args : string list; size : float }

type parse_error = { line : int option; message : string }

exception Parse_failure of parse_error

let parse_error_to_string e =
  match e.line with
  | Some n -> Printf.sprintf "line %d: %s" n e.message
  | None -> e.message

let fail_line lineno fmt =
  Printf.ksprintf
    (fun msg -> raise (Parse_failure { line = Some lineno; message = msg }))
    fmt

let fail_global fmt =
  Printf.ksprintf
    (fun msg -> raise (Parse_failure { line = None; message = msg }))
    fmt

let strip s = String.trim s

let parse_paren_form lineno keyword line =
  (* "KEYWORD(name)" *)
  let prefix = keyword ^ "(" in
  if String.length line <= String.length prefix then
    fail_line lineno "malformed %s statement" keyword
  else begin
    let inner =
      String.sub line (String.length prefix)
        (String.length line - String.length prefix)
    in
    match String.index_opt inner ')' with
    | None -> fail_line lineno "missing ')' in %s statement" keyword
    | Some close ->
        let rest =
          strip (String.sub inner (close + 1) (String.length inner - close - 1))
        in
        if rest <> "" then
          fail_line lineno "trailing garbage %S after %s statement" rest keyword;
        strip (String.sub inner 0 close)
  end

let parse_def lineno line =
  match String.index_opt line '=' with
  | None -> fail_line lineno "expected '=' in definition"
  | Some eq ->
      let signal = strip (String.sub line 0 eq) in
      if signal = "" then fail_line lineno "empty signal name";
      let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
      (* Optional trailing "[size=...]". *)
      let rhs, size =
        match String.index_opt rhs '[' with
        | None -> (rhs, 1.0)
        | Some bopen ->
            let annot = String.sub rhs bopen (String.length rhs - bopen) in
            let rhs = strip (String.sub rhs 0 bopen) in
            let annot = strip annot in
            let ok =
              String.length annot > 7
              && String.sub annot 0 6 = "[size="
              && annot.[String.length annot - 1] = ']'
            in
            if not ok then fail_line lineno "malformed size annotation %S" annot;
            let v = String.sub annot 6 (String.length annot - 7) in
            (match float_of_string_opt v with
            | Some size when size > 0.0 -> (rhs, size)
            | Some _ | None -> fail_line lineno "bad size value %S" v)
      in
      (match String.index_opt rhs '(' with
      | None -> fail_line lineno "expected CELL(args) on right-hand side"
      | Some popen ->
          let cell = strip (String.sub rhs 0 popen) in
          let rest = String.sub rhs (popen + 1) (String.length rhs - popen - 1) in
          (match String.index_opt rest ')' with
          | None -> fail_line lineno "missing ')'"
          | Some pclose ->
              let tail =
                strip
                  (String.sub rest (pclose + 1)
                     (String.length rest - pclose - 1))
              in
              if tail <> "" then
                fail_line lineno "trailing garbage %S after definition" tail;
              let args_str = String.sub rest 0 pclose in
              let args =
                if strip args_str = "" then []
                else List.map strip (String.split_on_char ',' args_str)
              in
              if List.exists (fun a -> a = "") args then
                fail_line lineno "empty argument";
              St_def { signal; cell; args; size }))

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | None -> strip line
    | Some h -> strip (String.sub line 0 h)
  in
  if line = "" then None
  else begin
    let upper = String.uppercase_ascii line in
    if String.length upper >= 6 && String.sub upper 0 6 = "INPUT(" then
      Some (St_input (parse_paren_form lineno "INPUT" line))
    else if String.length upper >= 7 && String.sub upper 0 7 = "OUTPUT(" then
      Some (St_output (parse_paren_form lineno "OUTPUT" line))
    else Some (parse_def lineno line)
  end

let resolve_cell lineno name ~arity =
  let lower = String.lowercase_ascii name in
  let candidates =
    match lower with
    | "not" -> [ "inv" ]
    | "buff" -> [ "buf" ]
    | "nand" | "nor" | "and" | "or" ->
        [ lower ^ string_of_int arity; lower ^ "2" ]
    | other -> [ other ]
  in
  let rec try_candidates = function
    | [] -> fail_line lineno "unknown cell %S (arity %d)" name arity
    | c :: rest -> (
        match Cell.of_name c with
        | cell -> cell
        | exception Invalid_argument _ -> try_candidates rest)
  in
  try_candidates candidates

let statements_exn text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, parse_line (i + 1) line))
  |> List.filter_map (fun (lineno, st) ->
         Option.map (fun st -> (lineno, st)) st)

let statements_of_string text =
  match statements_exn text with
  | sts -> Ok sts
  | exception Parse_failure e -> Error e

let of_statements ~name statements =
  let defs : (string, int * string * string list * float) Hashtbl.t =
    Hashtbl.create 64
  in
  let inputs = ref [] and outputs = ref [] in
  List.iter
    (fun (lineno, st) ->
      match st with
      | St_input signal ->
          if Hashtbl.mem defs signal || List.mem signal !inputs then
            fail_line lineno "duplicate definition of %S" signal;
          inputs := signal :: !inputs
      | St_output signal -> outputs := signal :: !outputs
      | St_def { signal; cell; args; size } ->
          if Hashtbl.mem defs signal || List.mem signal !inputs then
            fail_line lineno "duplicate definition of %S" signal;
          Hashtbl.add defs signal (lineno, cell, args, size))
    statements;
  let inputs = List.rev !inputs and outputs = List.rev !outputs in
  let b = Builder.create ~name in
  let ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun signal -> Hashtbl.add ids signal (Builder.input b signal)) inputs;
  (* DFS with an explicit visiting set for cycle detection. *)
  let visiting : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec resolve ?from signal =
    match Hashtbl.find_opt ids signal with
    | Some id -> id
    | None -> (
        match Hashtbl.find_opt defs signal with
        | None -> (
            match from with
            | Some lineno -> fail_line lineno "undefined signal %S" signal
            | None -> fail_global "undefined signal %S" signal)
        | Some (lineno, cell, args, size) ->
            if Hashtbl.mem visiting signal then
              fail_line lineno "combinational cycle through %S" signal;
            Hashtbl.add visiting signal ();
            let fanin = List.map (resolve ~from:lineno) args in
            Hashtbl.remove visiting signal;
            let kind = resolve_cell lineno cell ~arity:(List.length args) in
            let id = Builder.gate ~size b kind fanin in
            Hashtbl.add ids signal id;
            id)
  in
  (* Resolve every definition (not only output cones) so dangling
     definitions are caught by validation rather than dropped.
     Definition order (not hash order) drives id assignment, so a
     printed netlist parses back to bit-identical node numbering —
     what makes filed fuzz repros byte-stable. *)
  let in_def_order =
    List.sort
      (fun (_, (la, _, _, _)) (_, (lb, _, _, _)) -> compare la lb)
      (Hashtbl.fold (fun s d acc -> (s, d) :: acc) defs [])
  in
  List.iter (fun (signal, _) -> ignore (resolve signal)) in_def_order;
  if outputs = [] then fail_global "no OUTPUT statements";
  List.iter
    (fun signal ->
      match Hashtbl.find_opt ids signal with
      | Some id -> Builder.output b id
      | None -> fail_global "undefined output signal %S" signal)
    outputs;
  Builder.finish b

let of_string_result ?(name = "netlist") text =
  match of_statements ~name (statements_exn text) with
  | net -> Ok net
  | exception Parse_failure e -> Error e
  | exception Invalid_argument msg ->
      (* Builder/Netlist validation failures surface as parse errors of
         the text that produced them. *)
      Error { line = None; message = msg }

let of_string ?name text =
  match of_string_result ?name text with
  | Ok net -> net
  | Error e -> failwith (parse_error_to_string e)

let write_file path net =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string net))

let read_text path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_file_result path =
  match read_text path with
  | exception Sys_error msg -> Error { line = None; message = msg }
  | text ->
      of_string_result
        ~name:(Filename.remove_extension (Filename.basename path))
        text

let read_file path =
  match read_file_result path with
  | Ok net -> net
  | Error e -> failwith (parse_error_to_string e)

(* Structural comparison via interned recursive signatures. *)
let signatures net =
  let n = Netlist.n_nodes net in
  let sig_of = Array.make n "" in
  for i = 0 to n - 1 do
    sig_of.(i) <-
      (match Netlist.node net i with
      | Netlist.Primary_input label -> "in:" ^ label
      | Netlist.Gate { kind; fanin } ->
          Printf.sprintf "%s[%g](%s)" (Cell.name kind) (Netlist.size net i)
            (String.concat ","
               (Array.to_list
                  (Array.map (fun f -> string_of_int (Hashtbl.hash sig_of.(f))) fanin))))
  done;
  Array.map (fun o -> sig_of.(o)) (Netlist.outputs net)

let roundtrip_equal a b =
  Netlist.n_nodes a = Netlist.n_nodes b
  && Array.length (Netlist.outputs a) = Array.length (Netlist.outputs b)
  && signatures a = signatures b
