(** Weight-attenuated random netlist generation for differential
    fuzzing (Verismith-style).

    The generator grows a pipeline of structured DAG stages level by
    level.  Every growth decision — add another level, add another
    gate to the current level, take a long-range (reconvergent) fanin —
    is a biased coin whose probability is the configured base rate
    multiplied by [attenuation^level], so expected depth, width and
    reconvergence stay finite without hard truncation dominating the
    shape.  Hard caps ([max_depth], [max_gates], [max_stages]) still
    bound the worst case, so no run is unbounded.

    Everything is driven by an explicit {!Spv_stats.Rng.t}: equal
    generator states produce bit-identical netlists, which is what
    makes fuzz findings replayable from a seed alone.

    Gate sizes are quantized to multiples of 1/4 so that `.bench`
    round-trips ({!Bench_format.to_string}'s [%g] size annotations)
    are exact — a filed repro case re-parses to the bit-identical
    circuit. *)

type config = {
  max_stages : int;  (** pipeline stages drawn in [1 .. max_stages] *)
  max_gates : int;  (** hard per-stage gate cap *)
  max_depth : int;  (** hard per-stage logic-level cap *)
  min_inputs : int;
  max_inputs : int;
  grow_p : float;  (** base probability of adding one more level *)
  width_p : float;  (** base probability of widening the current level *)
  reconv_p : float;
      (** base probability that a non-pinned fanin reaches back past the
          previous level (reconvergent, long-range) *)
  attenuation : float;
      (** per-level decay factor in (0, 1) applied to the three
          probabilities above *)
  max_size : float;  (** gate drive sizes drawn in [1/4 .. max_size] *)
}

val default_config : config
(** 3 stages, 80 gates, 12 levels, 2–6 inputs, grow 0.9 / width 0.85 /
    reconv 0.35, attenuation 0.8, sizes up to 4x. *)

val validate_config : config -> unit
(** Raises [Invalid_argument] on nonsensical caps or probabilities. *)

val quantize_size : config -> float -> float
(** Clamp to [1/4, max_size] and round to the nearest multiple of 1/4
    (the size grid every generated or mutated gate lives on). *)

val promote_dangling : Netlist.t -> Netlist.t
(** Append any fanout-free non-output gate to the output list (the
    lint-validity repair every generator/mutation step ends with;
    exposed for the shrinker). *)

val generate_stage : ?config:config -> ?name:string -> Spv_stats.Rng.t -> Netlist.t
(** One attenuated random stage.  Deterministic in the generator
    state; every gate either has fanout or is an output. *)

val generate : ?config:config -> Spv_stats.Rng.t -> Netlist.t array
(** A random pipeline: stage count in [1 .. max_stages], then one
    {!generate_stage} per stage. *)

(** {1 Semantics-preserving mutations}

    Each mutation maps a valid pipeline to a valid pipeline (all
    netlist invariants re-validated through {!Netlist.make}); the
    estimators' contracts must survive all of them. *)

type mutation =
  | Resize  (** re-draw the drive size of a few random gates *)
  | Split_stage
      (** cut one stage at a level boundary into two pipeline stages,
          the cut wires becoming stage-boundary inputs/outputs *)
  | Merge_stages
      (** fuse two adjacent stages, wiring the first stage's outputs
          into the second's former primary inputs *)
  | Swap_stages
      (** exchange two stage positions — a correlation-structure
          perturbation: stage logic is unchanged but the spatial
          (distance-based) correlation between stages is not *)

val mutation_name : mutation -> string
val all_mutations : mutation list

val mutate :
  ?config:config -> Spv_stats.Rng.t -> Netlist.t array -> Netlist.t array
(** Apply one randomly chosen applicable mutation.  Falls back to
    [Resize] when the drawn mutation does not apply (e.g.
    [Merge_stages] on a single-stage pipeline).  Deterministic in the
    generator state; input array is not modified. *)

val split_stage : Netlist.t -> at_level:int -> (Netlist.t * Netlist.t) option
(** Cut one netlist at the given level boundary
    ([1 <= at_level < depth]); [None] when the cut would leave either
    side without gates.  Exposed for tests and the shrinker. *)

val merge_stages : Netlist.t -> Netlist.t -> Netlist.t
(** Fuse two stages ([second]'s primary input j is driven by
    [first]'s output [j mod n_outputs]). *)

(** {1 Process-scenario fuzzing} *)

type process = {
  inter_vth_mv : float option;  (** inter-die Vth sigma override, mV *)
  random_vth_mv : float option;  (** intra-die random Vth sigma, mV *)
  sys_vth_mv : float option;  (** intra-die systematic Vth sigma, mV *)
  leff_rel_inter : float option;  (** inter-die relative Leff sigma *)
}
(** A process-scenario override: [None] keeps the technology's value.
    All sampled values stay within lint-legal ranges (Vth sigmas in
    [0, 80] mV, relative Leff sigma in [0, 0.15]). *)

val nominal_process : process
(** No overrides. *)

val random_process : Spv_stats.Rng.t -> process
(** Each knob overridden with probability 1/2.  Values are quantized
    to 0.1 mV (resp. 1e-3) so they print/parse exactly with [%g]. *)

val apply_process : Spv_process.Tech.t -> process -> Spv_process.Tech.t

val process_to_string : process -> string
(** Compact one-line form, e.g. ["inter=55.3 sys=12.4"]; ["nominal"]
    when nothing is overridden.  Round-trips through
    {!process_of_string}. *)

val process_of_string : string -> (process, string) result
