(** Netlist generators for the paper's workloads.

    - inverter chains and chain pipelines (Figs. 2, 3, 5, Table I);
    - a ripple-carry ALU and an address decoder (the 3-stage
      ALU–decoder pipeline of Figs. 6–8);
    - ISCAS85-scale synthetic benchmarks (Table II/III).  The real
      ISCAS85 netlists are not redistributable inside this repository,
      so [c432 .. c3540] generate deterministic pseudo-random
      structured logic with each benchmark's published primary-input
      count, gate count and logic depth — the properties the sizing
      experiments actually depend on. *)

val inverter_chain : ?name:string -> ?size:float -> depth:int -> unit -> Netlist.t
(** A chain of [depth] inverters (the paper's canonical stage). *)

val inverter_chain_pipeline :
  ?size:float -> stages:int -> depth:int -> unit -> Netlist.t array
(** [stages] identical inverter-chain stage netlists. *)

val variable_depth_pipeline :
  ?size:float -> depths:int array -> unit -> Netlist.t array
(** One inverter-chain stage per entry of [depths] (Table I's "5 x *"
    configuration). *)

val ripple_carry_adder : bits:int -> Netlist.t
(** [bits]-bit ripple-carry adder: inputs a0..a(n-1), b0..b(n-1), cin;
    outputs sum bits and carry out. *)

val kogge_stone_adder : bits:int -> Netlist.t
(** [bits]-bit parallel-prefix (Kogge-Stone) adder: logic depth
    O(log bits) at O(bits log bits) gates — the fast/expensive
    counterpart of {!ripple_carry_adder} for area-delay studies.
    Inputs a0.., b0.., cin; outputs sum bits then carry out. *)

val array_multiplier : bits:int -> Netlist.t
(** [bits] x [bits] unsigned array multiplier (AND partial products +
    ripple reduction rows); outputs the 2*[bits] product bits.  A
    deep, wide stage for pipeline experiments. *)

val alu_slice : ?name:string -> bits:int -> unit -> Netlist.t
(** [bits]-bit ALU: ripple add plus AND/OR/XOR, op-selected through a
    mux tree (2 op-code inputs). *)

val decoder : ?input_buffer_depth:int -> select:int -> unit -> Netlist.t
(** [select]-to-2^[select] line decoder built from inverter/and trees.
    [input_buffer_depth] (default 0, must be even to preserve polarity)
    prepends a buffer chain to every select input — the address
    buffering a real decoder stage carries, and the knob that brings
    its logic depth up to its pipeline neighbours'. *)

val alu_decoder_stages : bits:int -> Netlist.t array
(** The paper's Fig. 6 three-stage pipeline: ALU part I, decoder,
    ALU part II.  The decoder's select inputs are buffered so all three
    stages have comparable logic depth (the paper's stages are all
    depth 4); without that no common balanced stage delay exists. *)

val random_logic :
  name:string -> inputs:int -> gates:int -> depth:int -> seed:int -> Netlist.t
(** Structured pseudo-random DAG: exactly [gates] gates arranged in
    [depth] levels (every gate keeps one fanin in the previous level,
    so the level structure — and hence the logic depth — is exact).
    Deterministic in [seed]. Requires [gates >= depth >= 1],
    [inputs >= 2]. *)

val random_logic_with :
  rng:Spv_stats.Rng.t ->
  name:string -> inputs:int -> gates:int -> depth:int -> Netlist.t
(** [random_logic] drawing from a caller-supplied splitmix64 stream
    instead of a private [seed]-derived one, so several generations
    can share one coherently split RNG (see {!iscas_pipeline}). *)

type iscas_profile = {
  bench_name : string;
  n_inputs : int;
  n_gates : int;
  logic_depth : int;
}

val iscas_profiles : iscas_profile list
(** Published characteristics of the four benchmarks used in
    Tables II/III. *)

val c432 : unit -> Netlist.t
val c1908 : unit -> Netlist.t
(** The paper's tables print "c1980"; the actual ISCAS85 benchmark is
    c1908 and we follow the latter. *)

val c2670 : unit -> Netlist.t
val c3540 : unit -> Netlist.t

val iscas_pipeline : unit -> Netlist.t array
(** The Table II/III 4-stage pipeline: c3540, c2670, c1908, c432 —
    with {e depth-equalised} variants (published gate counts, logic
    depths compressed to 38/32/33/30).  A real 4-stage pipeline is
    retimed so all stages can target one clock period; the raw
    benchmarks' depth spread (17..47) leaves no common feasible delay
    target, which would make the paper's experiment vacuous.  c3540
    keeps the largest depth so it remains the yield-limiting stage, as
    in the paper. *)
