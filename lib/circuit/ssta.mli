(** Statistical static timing analysis over netlists.

    Two complementary engines:

    - {b analytic}: compose decomposed per-gate delay Gaussians along
      the nominal critical path (plus flip-flop overhead) into a
      per-stage {!Spv_process.Gate_delay.t} — this is what the paper
      feeds its pipeline model with (their SPICE-extracted mu_i,
      sigma_i);
    - {b Monte-Carlo}: sample whole-die variation worlds, re-run STA
      with per-gate delay factors and collect stage or pipeline delay
      samples — this is the paper's verification reference. *)

type stage_analysis = {
  comb : Spv_process.Gate_delay.t;  (** combinational critical path *)
  total : Spv_process.Gate_delay.t;  (** comb + clk-to-Q + setup *)
  nominal : Sta.result;
}

val analyse_stage :
  ?output_load:float -> ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
  Netlist.t -> stage_analysis
(** Analytic per-stage delay decomposition. Flip-flop overhead is
    included when [ff] is given. *)

val stage_gaussian :
  ?output_load:float -> ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
  Netlist.t -> Spv_stats.Gaussian.t
(** Convenience: total stage delay as N(mu, sigma). *)

(** {2 Single-trial sampler kernel}

    The sampler is the one place gate-level Monte-Carlo trials are
    drawn; all loops (sequential shims below, and the domain-parallel
    loops in [Spv_engine.Engine]) are built on it.  Construction
    pre-computes the die layout, the spatial-correlation factorisation
    and per-stage scratch buffers so a trial only draws variation and
    re-runs STA. *)

type sampler
(** Cached per-trial state.  Holds mutable scratch: use one sampler per
    domain/shard; a single sampler must not be shared by concurrent
    draws. *)

val sampler :
  ?output_load:float -> ?exact:bool -> ?pitch:float ->
  ?ff:Spv_process.Flipflop.t -> ?active:bool array array ->
  Spv_process.Tech.t -> Netlist.t array -> sampler
(** Build a sampler for a pipeline of stages laid out in a row at
    [pitch] (default 1.0) die units.  Raises [Invalid_argument] on an
    empty stage array.

    [active] (one [bool] per node per stage) masks statically
    non-critical gates out of each trial's STA, as computed by
    {!Spv_analysis}'s criticality pass.  A masked trial draws exactly
    the same random numbers as an unmasked one (the per-gate random
    component is still consumed for masked gates), so when the mask only
    drops gates that can never set the stage delay the sampled delays
    are unchanged bit-for-bit — masking only skips delay-factor and
    arrival arithmetic.  Raises [Invalid_argument] on mask shape
    mismatch. *)

val sampler_stages : sampler -> int
(** Number of pipeline stages the sampler draws. *)

val draw_stage_delays : sampler -> Spv_stats.Rng.t -> float array
(** One Monte-Carlo trial: per-stage delays (fresh array). *)

val draw_pipeline_delay : sampler -> Spv_stats.Rng.t -> float
(** One Monte-Carlo trial: the pipeline delay
    [max_i (Tcq + comb_i + Tsetup)]. *)

(** {2 Legacy array-returning shims}

    Thin sequential wrappers over the sampler kernel, kept for
    backwards compatibility.  Deprecated: new code should use
    [Spv_engine.Engine.gate_level_delays] (deterministic, parallel) or
    the sampler kernel directly. *)

val mc_stage_delays :
  ?output_load:float -> ?exact:bool -> ?ff:Spv_process.Flipflop.t ->
  Spv_process.Tech.t -> Netlist.t -> Spv_stats.Rng.t -> n:int -> float array
(** [n] Monte-Carlo samples of one stage's delay (the stage sits at a
    single die location). *)

val mc_pipeline_delays :
  ?output_load:float -> ?exact:bool -> ?pitch:float ->
  ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t -> Netlist.t array ->
  Spv_stats.Rng.t -> n:int -> float array
(** [n] Monte-Carlo samples of the pipeline delay
    [max_i (Tcq + comb_i + Tsetup)].  Stages are laid out in a row at
    [pitch] (default 1.0) die units, so their systematic components are
    spatially correlated; the inter-die component is shared. *)

val mc_per_stage_samples :
  ?output_load:float -> ?exact:bool -> ?pitch:float ->
  ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t -> Netlist.t array ->
  Spv_stats.Rng.t -> n:int -> float array array
(** Same sampling scheme, but returns the per-stage delay matrix
    [stage][trial] (used to measure empirical stage correlations). *)
