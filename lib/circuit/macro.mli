(** Timing macros: pre-characterised sub-netlist abstractions.

    A macro reduces a combinational (sub-)netlist to a single
    {!Canonical} arrival form — mean, sigma and a sensitivity vector
    over the shared noise-symbol basis (the inter-die and systematic
    standard normals, plus an aggregated independent component).  The
    basis is the same one [Spv_analysis.Affine] names [Vth_inter] /
    [Sys] / [Rand], so macro sensitivities compose with the affine
    domain's symbols one-to-one.

    {b Decomposition.}  [partition] cuts a netlist into contiguous
    {e level bands}: block [k] holds the gates whose logic level falls
    in the band's range, and every fanin crossing the band boundary is
    materialised as a fresh primary input of the block.  Band
    boundaries depend only on the netlist structure (never on sizes),
    so a resize perturbs exactly the blocks whose gates changed.

    {b Characterisation.}  [characterise] runs {!Block_ssta} over the
    block — per-gate canonical forms folded with the canonical Clark
    [max] — and keeps the resulting output form.  Block outputs drive
    the fixed [output_load] boundary load; the real fanout load of the
    next band is {e not} seen.  This keeps blocks self-contained (and
    hence memoisable per (hash, process) key) at the cost of a modelled
    boundary-load gap, which the engine reports as the flat-vs-
    hierarchical error bound.

    {b Composition.}  [series] is {!Canonical.add} — exact in the
    shared basis, so inter-block correlation through the global
    parameters is preserved.  [merge] is the canonical Clark
    {!Canonical.max}, the same operator {!Block_ssta} folds arrivals
    with.  A stage delay is the series composition of its band macros
    (sum of per-band maxes): a path-coverage over-approximation of the
    all-paths max, reported honestly via the error bound rather than
    hidden. *)

type t = {
  label : string;
  n_gates : int;  (** gates abstracted by this macro *)
  delay : Canonical.t;
      (** combinational delay form: canonical max over the block's
          exposed outputs *)
}

type block = {
  b_index : int;  (** position of the band, input side first *)
  b_net : Netlist.t;  (** materialised sub-netlist (cut fanins are inputs) *)
  b_gates : int array;  (** parent gate ids in this band, ascending *)
}

val default_block_gates : int
(** Target gate count per band (the partition grain), 2048. *)

val partition : ?target_gates:int -> Netlist.t -> block array
(** Level-band decomposition.  Deterministic; bands are contiguous
    level ranges chosen so each holds roughly [target_gates] gates
    (at least one level per band).  Every gate lands in exactly one
    band.  Raises [Invalid_argument] if the netlist has no gates or
    [target_gates <= 0]. *)

val structure_hash : Netlist.t -> int64
(** 64-bit FNV-1a over the netlist structure: node kinds, fanins,
    names of primary inputs and the output list — everything except
    drive sizes.  Structure is immutable after construction, so this
    may be cached by physical identity. *)

val sizes_hash : Netlist.t -> int64
(** FNV-1a over the float bits of the current drive sizes. *)

val hash : Netlist.t -> int64
(** [combine (structure_hash net) (sizes_hash net)] — the memoisation
    key component for the netlist's current sized state. *)

val characterise :
  ?output_load:float -> Spv_process.Tech.t -> Netlist.t -> t
(** Reduce a (sub-)netlist to a macro via {!Block_ssta.run}. *)

val series : t -> t -> t
(** Series composition ({!Canonical.add}): exact in the shared basis. *)

val merge : t -> t -> t
(** Parallel merge: the canonical Clark {!Canonical.max}. *)

val stage_delay :
  ?ff:Spv_process.Flipflop.t -> t array -> Spv_process.Gate_delay.t
(** Series-compose the band macros of one stage and add the flip-flop
    overhead when given.  Raises [Invalid_argument] on an empty
    array. *)

(** Memoisation table shared across evaluation contexts.

    Keys pair a netlist hash with a {e fingerprint} of everything else
    characterisation reads (technology parameters, boundary load,
    flip-flop overhead), so one table can serve a whole process-
    override sweep: a scenario re-characterises only the blocks whose
    (hash, fingerprint) key is new.  [hits]/[misses] count block-macro
    demands: a memoised whole-stage entry counts one hit per block it
    reuses.  Tables are mutated only while contexts are being built
    (single-threaded); estimator evaluation never touches them, so
    worker-domain counts cannot change any byte of a sweep's output. *)
module Table : sig
  type macro = t

  type stage_entry = {
    se_blocks : block array;
    se_macros : macro array;
    se_delay : Spv_process.Gate_delay.t;
        (** series-composed combinational delay, no flip-flop *)
  }

  type t

  val create : unit -> t
  val hits : t -> int
  val misses : t -> int
  val reset_counters : t -> unit

  val fingerprint :
    ?output_load:float -> ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t ->
    string
  (** Canonical encoding of every parameter a characterisation (or a
      flat stage analysis) depends on besides the netlist itself. *)

  val stage_hash : t -> Netlist.t -> int64
  (** {!hash} with the structure part cached by physical identity
      (sound: netlist structure is immutable; sizes are re-hashed on
      every call). *)

  val block_macro :
    t -> fp:string -> output_load:float -> Spv_process.Tech.t -> block ->
    macro
  (** Memoised {!characterise} of one block, counting a hit or miss. *)

  val stage :
    t -> fp:string -> ?stage_key:int64 -> ?target_gates:int ->
    output_load:float -> Spv_process.Tech.t -> Netlist.t -> stage_entry
  (** Memoised partition + characterisation of a whole stage netlist
      under its current sizes.  A stage-level hit reuses every block
      macro of the entry (counted as block hits); a miss reuses the
      cached structure-only band plan and probes each band under its
      current member sizes, so only the bands a resize actually
      touched are re-materialised and re-characterised.  [stage_key]
      short-circuits {!stage_hash} when the caller already computed it
      (e.g. once per distinct physical netlist of a pipeline). *)

  val flat_analysis :
    t -> fp:string -> ?stage_key:int64 -> output_load:float ->
    ?ff:Spv_process.Flipflop.t -> Spv_process.Tech.t -> Netlist.t ->
    Ssta.stage_analysis
  (** Memoised {!Ssta.analyse_stage} keyed on the same (hash,
      fingerprint) pair — the flat reference model a hierarchical
      context reports its error bound against.  Not counted in
      [hits]/[misses].  [stage_key] as in {!stage}. *)
end
