(** Deterministic static timing analysis.

    Gate delay follows the logical-effort model
    [tau * (p + load / size)], with [load] the sum of fanout input
    capacitances (plus [output_load] for primary-output drivers, in
    minimum-inverter-cap units).  Arrival times propagate in topological
    order; the critical path is traced back from the latest output. *)

type result = {
  arrival : float array;  (** per node, ps; primary inputs are 0 *)
  gate_delays : float array;  (** per node, ps; 0 for inputs *)
  delay : float;  (** max arrival over primary outputs *)
  critical_output : int;
  critical_path : int list;  (** gate ids, input side first *)
}

val loads : ?wire:Wire.model -> Netlist.t -> output_load:float -> float array
(** Capacitive load per node under current sizes (gate input caps,
    plus net wire capacitance when a wire model is given). *)

val run :
  ?output_load:float -> ?wire:Wire.model -> Spv_process.Tech.t -> Netlist.t ->
  result
(** Nominal timing. [output_load] defaults to 4.0 (an FO4-ish
    flip-flop input).  With [wire], each gate additionally pays its
    output net's Elmore delay. *)

val run_with_factors :
  ?output_load:float -> ?wire:Wire.model -> ?active:bool array ->
  Spv_process.Tech.t -> Netlist.t -> factors:float array -> result
(** Timing with a per-node multiplicative delay factor (Monte-Carlo
    variation samples). [factors] must have one entry per node; entries
    for input nodes are ignored.

    With [active] (one flag per node), gates whose flag is [false] are
    skipped: their arrival and delay stay 0, as if they were inputs.
    Loads are still computed over the full netlist, so active gates see
    bit-identical delays.  Intended for statically non-critical gates
    proven (e.g. by {!Spv_analysis}) never to set the stage delay: when
    the mask only drops such gates, [delay] is unchanged bit-for-bit. *)

val path_delay : result -> int list -> float
(** Sum of gate delays along a node list. *)

type min_result = {
  min_arrival : float array;  (** per node: earliest possible arrival *)
  min_delay : float;  (** min over primary outputs of their earliest arrival *)
  shortest_output : int;
  shortest_path : int list;  (** gate ids of the fastest input-to-output path *)
}

val run_min : ?output_load:float -> Spv_process.Tech.t -> Netlist.t -> min_result
(** Shortest-path (early-mode) timing: the race-path delay that a hold
    check compares against the clk-to-Q + hold window. *)
