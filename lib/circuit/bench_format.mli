(** ISCAS `.bench`-style netlist text format.

    Grammar (one statement per line, `#` comments):
    {v
    INPUT(a)
    OUTPUT(n5)
    n3 = NAND2(a, b)        # cell names as in Cell.of_name, upper/lower
    n4 = INV(n3) [size=2.5] # optional drive annotation
    v}

    Cells are resolved through {!Cell.of_name} (case-insensitive);
    `NAND`/`NOR`/`AND`/`OR` without an arity suffix resolve by fanin
    count.  Statements may appear in any order — the reader
    topologically sorts them — but combinational cycles are rejected. *)

val to_string : Netlist.t -> string
(** Render a netlist (stable: inputs, then gates in id order with
    non-default sizes annotated, then outputs). *)

type statement =
  | St_input of string
  | St_output of string
  | St_def of { signal : string; cell : string; args : string list; size : float }
      (** One parsed `.bench` line (comments and blanks dropped). *)

type parse_error = { line : int option; message : string }
(** [line] is 1-based; [None] for whole-file problems (I/O failures,
    missing outputs, netlist-level validation). *)

val parse_error_to_string : parse_error -> string

val statements_of_string :
  string -> ((int * statement) list, parse_error) result
(** Tokenise into (line number, statement) pairs without building the
    netlist — the raw form consumed by structural linting, which can
    describe problems (cycles, multiple drivers) a {!Netlist.t} cannot
    represent. *)

val of_string_result : ?name:string -> string -> (Netlist.t, parse_error) result
(** Parse; all syntax errors, unknown cells, undefined signals, arity
    mismatches, duplicate definitions and combinational cycles are
    reported as [Error] with a line number where one is known.  Gate
    ids follow definition order (fanins first), so text printed by
    {!to_string} parses back to bit-identical node numbering — the
    byte-stability filed fuzz repro cases rely on. *)

val of_string : ?name:string -> string -> Netlist.t
(** Parse. Raises [Failure] with a line-numbered message on syntax
    errors, unknown cells, undefined signals, arity mismatches,
    duplicate definitions or cycles. *)

val write_file : string -> Netlist.t -> unit

val read_file_result : string -> (Netlist.t, parse_error) result
(** Like {!of_string_result} for a file; I/O failures ([Sys_error])
    are captured as [Error] rather than raised. *)

val read_file : string -> Netlist.t
(** [read_file path] names the netlist after the file's basename.
    Raises [Failure] on parse {e and} I/O errors. *)

val roundtrip_equal : Netlist.t -> Netlist.t -> bool
(** Structural equality (same nodes, fanins, sizes, outputs) up to node
    renumbering induced by topological order — used by tests. *)
