module Rng = Spv_stats.Rng
module Tech = Spv_process.Tech

type config = {
  max_stages : int;
  max_gates : int;
  max_depth : int;
  min_inputs : int;
  max_inputs : int;
  grow_p : float;
  width_p : float;
  reconv_p : float;
  attenuation : float;
  max_size : float;
}

let default_config =
  {
    max_stages = 3;
    max_gates = 80;
    max_depth = 12;
    min_inputs = 2;
    max_inputs = 6;
    grow_p = 0.9;
    width_p = 0.85;
    reconv_p = 0.35;
    attenuation = 0.8;
    max_size = 4.0;
  }

let validate_config c =
  let fail msg = invalid_arg ("Fuzz.config: " ^ msg) in
  if c.max_stages < 1 then fail "max_stages < 1";
  if c.max_gates < 1 then fail "max_gates < 1";
  if c.max_depth < 1 then fail "max_depth < 1";
  if c.min_inputs < 2 then fail "min_inputs < 2";
  if c.max_inputs < c.min_inputs then fail "max_inputs < min_inputs";
  let prob name p =
    if not (Float.is_finite p) || p < 0.0 || p > 1.0 then
      fail (name ^ " outside [0, 1]")
  in
  prob "grow_p" c.grow_p;
  prob "width_p" c.width_p;
  prob "reconv_p" c.reconv_p;
  if not (Float.is_finite c.attenuation) || c.attenuation <= 0.0
     || c.attenuation > 1.0
  then fail "attenuation outside (0, 1]";
  if not (Float.is_finite c.max_size) || c.max_size < 0.25 then
    fail "max_size < 0.25"

(* Sizes live on a 1/4 grid so the %g size annotations of
   Bench_format.to_string round-trip to the bit-identical float. *)
let quantize_size c v =
  let v = Float.round (v *. 4.0) /. 4.0 in
  Float.max 0.25 (Float.min c.max_size v)

(* Gate-kind mix: the ISCAS-like blend of Generators plus the
   remaining library cells, so fuzzing exercises every arity. *)
let kind_table =
  [|
    (Cell.Nand2, 0.22); (Cell.Nor2, 0.14); (Cell.Inv, 0.12); (Cell.And2, 0.08);
    (Cell.Or2, 0.07); (Cell.Nand3, 0.08); (Cell.Nor3, 0.05); (Cell.Xor2, 0.06);
    (Cell.Xnor2, 0.04); (Cell.Aoi21, 0.05); (Cell.Oai21, 0.04);
    (Cell.Mux2, 0.03); (Cell.Buf, 0.02);
  |]

let pick_kind rng =
  let u = Rng.float rng in
  let rec go i acc =
    if i >= Array.length kind_table - 1 then fst kind_table.(i)
    else
      let k, w = kind_table.(i) in
      let acc = acc +. w in
      if u < acc then k else go (i + 1) acc
  in
  go 0 0.0

(* Gates with no fanout that are not outputs would be dangling logic
   (a lint error); promote them to outputs. *)
let promote_dangling net =
  let extra = ref [] in
  Array.iter
    (fun id ->
      if Netlist.fanouts net id = []
         && not (Array.exists (fun o -> o = id) (Netlist.outputs net))
      then extra := id :: !extra)
    (Netlist.gate_ids net);
  if !extra = [] then net
  else
    Netlist.make ~name:(Netlist.name net)
      ~nodes:(Array.init (Netlist.n_nodes net) (Netlist.node net))
      ~outputs:
        (Array.append (Netlist.outputs net) (Array.of_list (List.rev !extra)))
      ~sizes:(Netlist.sizes_snapshot net)

let generate_stage ?(config = default_config) ?(name = "fuzz") rng =
  validate_config config;
  let att l = config.attenuation ** float_of_int l in
  let n_inputs =
    config.min_inputs
    + Rng.int rng ~bound:(config.max_inputs - config.min_inputs + 1)
  in
  let b = Builder.create ~name in
  let pis =
    Array.init n_inputs (fun i -> Builder.input b (Printf.sprintf "i%d" i))
  in
  (* [levels] holds the node ids per committed level, most recent
     first; [all] is the flat pool for long-range (reconvergent)
     fanins. *)
  let levels = ref [ pis ] in
  let all = ref (Array.copy pis) in
  let total = ref 0 in
  let level = ref 0 in
  let continue_growing () =
    !level < config.max_depth
    && !total < config.max_gates
    && (!level = 0 || Rng.float rng < config.grow_p *. att !level)
  in
  while continue_growing () do
    incr level;
    let l = !level in
    let prev = List.hd !levels in
    let pool = !all in
    let this_level = ref [] in
    let add_gate () =
      let kind = pick_kind rng in
      let arity = Cell.arity kind in
      (* One fanin pinned to the previous level keeps the levelisation
         exact; the rest stay local unless the (attenuated)
         reconvergence coin sends them far back. *)
      let first = prev.(Rng.int rng ~bound:(Array.length prev)) in
      let rest =
        List.init (arity - 1) (fun _ ->
            if Rng.float rng < config.reconv_p *. att l then
              pool.(Rng.int rng ~bound:(Array.length pool))
            else prev.(Rng.int rng ~bound:(Array.length prev)))
      in
      let size =
        quantize_size config (Rng.uniform rng ~lo:0.25 ~hi:config.max_size)
      in
      let id = Builder.gate ~size b kind (first :: rest) in
      this_level := id :: !this_level;
      incr total
    in
    add_gate ();
    while
      !total < config.max_gates && Rng.float rng < config.width_p *. att l
    do
      add_gate ()
    done;
    let committed = Array.of_list (List.rev !this_level) in
    levels := committed :: !levels;
    all := Array.append !all committed
  done;
  Array.iter (fun id -> Builder.output b id) (List.hd !levels);
  promote_dangling (Builder.finish b)

let generate ?(config = default_config) rng =
  validate_config config;
  let n_stages = 1 + Rng.int rng ~bound:config.max_stages in
  (* Explicit sequencing: Array.init's evaluation order is unspecified
     and determinism here is the whole point. *)
  let first = generate_stage ~config ~name:"fz0" rng in
  let stages = Array.make n_stages first in
  for i = 1 to n_stages - 1 do
    stages.(i) <-
      generate_stage ~config ~name:(Printf.sprintf "fz%d" i) rng
  done;
  stages

(* ---- mutations ------------------------------------------------------ *)

type mutation = Resize | Split_stage | Merge_stages | Swap_stages

let mutation_name = function
  | Resize -> "resize"
  | Split_stage -> "split-stage"
  | Merge_stages -> "merge-stages"
  | Swap_stages -> "swap-stages"

let all_mutations = [ Resize; Split_stage; Merge_stages; Swap_stages ]

let split_stage net ~at_level =
  let lv = Topo.levels net in
  let depth = Topo.depth net in
  if at_level < 1 || at_level >= depth then None
  else begin
    let n = Netlist.n_nodes net in
    let sizes = Netlist.sizes_snapshot net in
    let in_first i = lv.(i) <= at_level in
    (* Boundary: first-part nodes a second-part gate reads — they
       become the first part's outputs and the second part's primary
       inputs. *)
    let boundary = Array.make n false in
    for i = 0 to n - 1 do
      if not (in_first i) then
        match Netlist.node net i with
        | Netlist.Gate { fanin; _ } ->
            Array.iter
              (fun f -> if in_first f then boundary.(f) <- true)
              fanin
        | Netlist.Primary_input _ -> assert false (* inputs are level 0 *)
    done;
    (* First part: nodes with level <= at_level, ids compacted in
       order (fanins always reference lower levels, so order holds). *)
    let map1 = Array.make n (-1) in
    let nodes1 = ref [] and sizes1 = ref [] and outs1 = ref [] in
    let c1 = ref 0 in
    for i = 0 to n - 1 do
      if in_first i then begin
        map1.(i) <- !c1;
        incr c1;
        let node =
          match Netlist.node net i with
          | Netlist.Primary_input _ as p -> p
          | Netlist.Gate { kind; fanin } ->
              Netlist.Gate { kind; fanin = Array.map (fun f -> map1.(f)) fanin }
        in
        nodes1 := node :: !nodes1;
        sizes1 := sizes.(i) :: !sizes1;
        if
          boundary.(i)
          || Array.exists (fun o -> o = i) (Netlist.outputs net)
        then outs1 := map1.(i) :: !outs1
      end
    done;
    (* Second part: one fresh primary input per boundary node, then
       the remaining gates remapped. *)
    let map2 = Array.make n (-1) in
    let nodes2 = ref [] and sizes2 = ref [] in
    let c2 = ref 0 in
    for i = 0 to n - 1 do
      if boundary.(i) then begin
        map2.(i) <- !c2;
        incr c2;
        nodes2 := Netlist.Primary_input (Printf.sprintf "b%d" i) :: !nodes2;
        sizes2 := 1.0 :: !sizes2
      end
    done;
    for i = 0 to n - 1 do
      if not (in_first i) then begin
        map2.(i) <- !c2;
        incr c2;
        (match Netlist.node net i with
        | Netlist.Gate { kind; fanin } ->
            nodes2 :=
              Netlist.Gate { kind; fanin = Array.map (fun f -> map2.(f)) fanin }
              :: !nodes2
        | Netlist.Primary_input _ -> assert false);
        sizes2 := sizes.(i) :: !sizes2
      end
    done;
    let outs2 =
      Array.of_list
        (List.filter_map
           (fun o -> if in_first o then None else Some map2.(o))
           (Array.to_list (Netlist.outputs net)))
    in
    let has_gate nodes =
      List.exists
        (function Netlist.Gate _ -> true | Netlist.Primary_input _ -> false)
        nodes
    in
    if
      !outs1 = [] || Array.length outs2 = 0
      || not (has_gate !nodes1)
      || not (has_gate !nodes2)
    then None
    else
      let name = Netlist.name net in
      let first =
        Netlist.make ~name:(name ^ ".a")
          ~nodes:(Array.of_list (List.rev !nodes1))
          ~outputs:(Array.of_list (List.rev !outs1))
          ~sizes:(Array.of_list (List.rev !sizes1))
      in
      let second =
        Netlist.make ~name:(name ^ ".b")
          ~nodes:(Array.of_list (List.rev !nodes2))
          ~outputs:outs2
          ~sizes:(Array.of_list (List.rev !sizes2))
      in
      Some (promote_dangling first, promote_dangling second)
  end

let merge_stages a b =
  let na = Netlist.n_nodes a and nb = Netlist.n_nodes b in
  let a_sizes = Netlist.sizes_snapshot a in
  let b_sizes = Netlist.sizes_snapshot b in
  let outs_a = Netlist.outputs a in
  (* b's j-th primary input is driven by a's output (j mod n_out). *)
  let mapb = Array.make nb (-1) in
  Array.iteri
    (fun j id -> mapb.(id) <- outs_a.(j mod Array.length outs_a))
    (Netlist.input_ids b);
  let nodes = ref [] and sizes = ref [] in
  for i = 0 to na - 1 do
    nodes := Netlist.node a i :: !nodes;
    sizes := a_sizes.(i) :: !sizes
  done;
  let c = ref na in
  for i = 0 to nb - 1 do
    match Netlist.node b i with
    | Netlist.Primary_input _ -> ()
    | Netlist.Gate { kind; fanin } ->
        mapb.(i) <- !c;
        incr c;
        nodes :=
          Netlist.Gate { kind; fanin = Array.map (fun f -> mapb.(f)) fanin }
          :: !nodes;
        sizes := b_sizes.(i) :: !sizes
  done;
  let outputs = Array.map (fun o -> mapb.(o)) (Netlist.outputs b) in
  promote_dangling
    (Netlist.make
       ~name:(Netlist.name a ^ "+" ^ Netlist.name b)
       ~nodes:(Array.of_list (List.rev !nodes))
       ~outputs
       ~sizes:(Array.of_list (List.rev !sizes)))

let resize config rng nets =
  let s = Rng.int rng ~bound:(Array.length nets) in
  let net = nets.(s) in
  let gids = Netlist.gate_ids net in
  let k = 1 + Rng.int rng ~bound:(Stdlib.min 4 (Array.length gids)) in
  let factors = [| 0.5; 0.8; 1.25; 2.0 |] in
  for _ = 1 to k do
    let g = gids.(Rng.int rng ~bound:(Array.length gids)) in
    let f = factors.(Rng.int rng ~bound:(Array.length factors)) in
    Netlist.set_size net g (quantize_size config (Netlist.size net g *. f))
  done;
  nets

let mutate ?(config = default_config) rng nets =
  if Array.length nets = 0 then invalid_arg "Fuzz.mutate: empty pipeline";
  let nets = Array.map Netlist.copy nets in
  let splice s (x, y) =
    Array.concat
      [
        Array.sub nets 0 s; [| x; y |];
        Array.sub nets (s + 1) (Array.length nets - s - 1);
      ]
  in
  match List.nth all_mutations (Rng.int rng ~bound:(List.length all_mutations))
  with
  | Resize -> resize config rng nets
  | Swap_stages when Array.length nets >= 2 ->
      let i = Rng.int rng ~bound:(Array.length nets) in
      let j = Rng.int rng ~bound:(Array.length nets - 1) in
      let j = if j >= i then j + 1 else j in
      let tmp = nets.(i) in
      nets.(i) <- nets.(j);
      nets.(j) <- tmp;
      nets
  | Merge_stages when Array.length nets >= 2 ->
      let s = Rng.int rng ~bound:(Array.length nets - 1) in
      Array.concat
        [
          Array.sub nets 0 s;
          [| merge_stages nets.(s) nets.(s + 1) |];
          Array.sub nets (s + 2) (Array.length nets - s - 2);
        ]
  | Split_stage -> (
      let s = Rng.int rng ~bound:(Array.length nets) in
      let depth = Topo.depth nets.(s) in
      if depth < 2 then resize config rng nets
      else
        let at_level = 1 + Rng.int rng ~bound:(depth - 1) in
        match split_stage nets.(s) ~at_level with
        | Some parts -> splice s parts
        | None -> resize config rng nets)
  | Swap_stages | Merge_stages -> resize config rng nets

(* ---- process-scenario fuzzing --------------------------------------- *)

type process = {
  inter_vth_mv : float option;
  random_vth_mv : float option;
  sys_vth_mv : float option;
  leff_rel_inter : float option;
}

let nominal_process =
  {
    inter_vth_mv = None;
    random_vth_mv = None;
    sys_vth_mv = None;
    leff_rel_inter = None;
  }

(* Overrides are quantized so %g printing round-trips exactly. *)
let q_mv v = Float.round (v *. 10.0) /. 10.0
let q_rel v = Float.round (v *. 1000.0) /. 1000.0

let random_process rng =
  let maybe q lo hi =
    if Rng.float rng < 0.5 then Some (q (Rng.uniform rng ~lo ~hi)) else None
  in
  (* Explicit sequencing: record-field evaluation order is
     unspecified, and the draw order is part of the replay contract. *)
  let inter_vth_mv = maybe q_mv 0.0 80.0 in
  let random_vth_mv = maybe q_mv 0.0 80.0 in
  let sys_vth_mv = maybe q_mv 0.0 80.0 in
  let leff_rel_inter = maybe q_rel 0.0 0.15 in
  { inter_vth_mv; random_vth_mv; sys_vth_mv; leff_rel_inter }

let apply_process tech p =
  let t =
    match p.inter_vth_mv with
    | None -> tech
    | Some mv -> Tech.with_inter_vth tech ~sigma_mv:mv
  in
  let t =
    match p.random_vth_mv with
    | None -> t
    | Some mv -> Tech.with_random_vth t ~sigma_mv:mv
  in
  let t =
    match p.sys_vth_mv with
    | None -> t
    | Some mv -> Tech.with_sys_vth t ~sigma_mv:mv
  in
  match p.leff_rel_inter with
  | None -> t
  | Some r -> { t with Tech.sigma_leff_rel_inter = r }

let process_to_string p =
  let parts =
    List.filter_map
      (fun (k, v) -> Option.map (fun x -> Printf.sprintf "%s=%g" k x) v)
      [
        ("inter", p.inter_vth_mv); ("random", p.random_vth_mv);
        ("sys", p.sys_vth_mv); ("leff", p.leff_rel_inter);
      ]
  in
  match parts with [] -> "nominal" | _ -> String.concat " " parts

let process_of_string s =
  let s = String.trim s in
  if s = "nominal" || s = "" then Ok nominal_process
  else
    let parse_part acc part =
      match acc with
      | Error _ as e -> e
      | Ok p -> (
          match String.index_opt part '=' with
          | None -> Error (Printf.sprintf "malformed override %S" part)
          | Some i -> (
              let key = String.sub part 0 i in
              let v = String.sub part (i + 1) (String.length part - i - 1) in
              match float_of_string_opt v with
              | None -> Error (Printf.sprintf "bad float %S" v)
              | Some f when not (Float.is_finite f) ->
                  Error (Printf.sprintf "non-finite override %S" part)
              | Some f -> (
                  match key with
                  | "inter" -> Ok { p with inter_vth_mv = Some f }
                  | "random" -> Ok { p with random_vth_mv = Some f }
                  | "sys" -> Ok { p with sys_vth_mv = Some f }
                  | "leff" -> Ok { p with leff_rel_inter = Some f }
                  | _ -> Error (Printf.sprintf "unknown override %S" key))))
    in
    List.fold_left parse_part (Ok nominal_process)
      (List.filter (fun x -> x <> "") (String.split_on_char ' ' s))
