module Gd = Spv_process.Gate_delay
module Variation = Spv_process.Variation

type stage_analysis = {
  comb : Gd.t;
  total : Gd.t;
  nominal : Sta.result;
}

let analyse_stage ?(output_load = 4.0) ?ff tech net =
  let nominal = Sta.run ~output_load tech net in
  let comb =
    List.fold_left
      (fun acc i ->
        let d = nominal.Sta.gate_delays.(i) in
        Gd.add acc (Gd.of_nominal tech ~nominal:d ~size:(Netlist.size net i)))
      Gd.zero nominal.Sta.critical_path
  in
  let total =
    match ff with
    | None -> comb
    | Some ff -> Gd.add comb (Spv_process.Flipflop.overhead ff)
  in
  { comb; total; nominal }

let stage_gaussian ?output_load ?ff tech net =
  Gd.to_gaussian (analyse_stage ?output_load ?ff tech net).total

(* Per-trial machinery shared by the stage and pipeline samplers: one
   delay factor per node from (inter + systematic at the stage's
   location + fresh per-gate random). *)
let fill_factors ?(exact = false) ?active tech net ~inter ~sys_field rng
    factors =
  let f_of shift =
    if exact then Variation.delay_factor_exact tech shift
    else Variation.delay_factor_linear tech shift
  in
  Array.iter
    (fun i ->
      (* The per-gate random component is drawn even for masked gates so
         the RNG stream stays aligned with the unmasked run: pruning may
         only skip arithmetic, never change what any surviving gate
         samples. *)
      let rand = Variation.sample_rand tech ~size:(Netlist.size net i) rng in
      match active with
      | Some m when not m.(i) -> ()
      | _ ->
          let sys = Variation.sample_sys_scaled tech ~field:sys_field in
          let shift = Variation.(add_shift inter (add_shift sys rand)) in
          factors.(i) <- f_of shift)
    (Netlist.gate_ids net)

let ff_overhead_sample ?(exact = false) tech ff ~inter ~sys_field rng =
  match ff with
  | None -> 0.0
  | Some ff ->
      let nominal = Spv_process.Flipflop.nominal_overhead ff in
      let rand = Variation.sample_rand tech ~size:2.0 rng in
      let sys = Variation.sample_sys_scaled tech ~field:sys_field in
      let shift = Variation.(add_shift inter (add_shift sys rand)) in
      let f =
        if exact then Variation.delay_factor_exact tech shift
        else Variation.delay_factor_linear tech shift
      in
      nominal *. f

(* ---- single-trial sampler kernel ------------------------------------ *)

type sampler = {
  s_tech : Spv_process.Tech.t;
  s_nets : Netlist.t array;
  s_output_load : float;
  s_exact : bool;
  s_ff : Spv_process.Flipflop.t option;
  s_spatial : Spv_process.Sample.t;
  s_factors : float array array;
  s_delays : float array;
  s_active : bool array array option;
}

let sampler ?(output_load = 4.0) ?(exact = false) ?(pitch = 1.0) ?ff ?active
    tech nets =
  let n_stages = Array.length nets in
  if n_stages = 0 then invalid_arg "Ssta.sampler: no stages";
  (match active with
  | None -> ()
  | Some masks ->
      if Array.length masks <> n_stages then
        invalid_arg "Ssta.sampler: one active mask per stage required";
      Array.iteri
        (fun st m ->
          if Array.length m <> Netlist.n_nodes nets.(st) then
            invalid_arg "Ssta.sampler: active mask length mismatch")
        masks);
  let positions = Spv_process.Spatial.row_positions ~n:n_stages ~pitch in
  {
    s_tech = tech;
    s_nets = nets;
    s_output_load = output_load;
    s_exact = exact;
    s_ff = ff;
    s_spatial = Spv_process.Sample.create tech ~positions;
    s_factors = Array.map (fun net -> Array.make (Netlist.n_nodes net) 1.0) nets;
    s_delays = Array.make n_stages 0.0;
    s_active = active;
  }

let sampler_stages s = Array.length s.s_nets

let draw_stage_delays_into s rng out =
  let world = Spv_process.Sample.draw s.s_spatial rng in
  let inter = world.Spv_process.Sample.inter in
  for st = 0 to Array.length s.s_nets - 1 do
    let sys_field = world.Spv_process.Sample.sys_field.(st) in
    let active =
      match s.s_active with None -> None | Some masks -> Some masks.(st)
    in
    fill_factors ~exact:s.s_exact ?active s.s_tech s.s_nets.(st) ~inter
      ~sys_field rng s.s_factors.(st);
    let sta =
      Sta.run_with_factors ~output_load:s.s_output_load ?active s.s_tech
        s.s_nets.(st) ~factors:s.s_factors.(st)
    in
    out.(st) <-
      sta.Sta.delay
      +. ff_overhead_sample ~exact:s.s_exact s.s_tech s.s_ff ~inter ~sys_field
           rng
  done

let draw_stage_delays s rng =
  let out = Array.make (Array.length s.s_nets) 0.0 in
  draw_stage_delays_into s rng out;
  out

let draw_pipeline_delay s rng =
  draw_stage_delays_into s rng s.s_delays;
  Array.fold_left Float.max neg_infinity s.s_delays

(* ---- legacy array-returning shims ----------------------------------- *)

let mc_stage_delays ?output_load ?exact ?ff tech net rng ~n =
  if n <= 0 then invalid_arg "Ssta.mc_stage_delays: n <= 0";
  let s = sampler ?output_load ?exact ?ff tech [| net |] in
  Array.init n (fun _ -> draw_pipeline_delay s rng)

let mc_per_stage_samples ?output_load ?exact ?pitch ?ff tech nets rng ~n =
  if Array.length nets = 0 then
    invalid_arg "Ssta.mc_per_stage_samples: no stages";
  if n <= 0 then invalid_arg "Ssta.mc_per_stage_samples: n <= 0";
  let s = sampler ?output_load ?exact ?pitch ?ff tech nets in
  let samples = Array.make_matrix (Array.length nets) n 0.0 in
  let out = Array.make (Array.length nets) 0.0 in
  for trial = 0 to n - 1 do
    draw_stage_delays_into s rng out;
    Array.iteri (fun st d -> samples.(st).(trial) <- d) out
  done;
  samples

let mc_pipeline_delays ?output_load ?exact ?pitch ?ff tech nets rng ~n =
  if Array.length nets = 0 then
    invalid_arg "Ssta.mc_pipeline_delays: no stages";
  if n <= 0 then invalid_arg "Ssta.mc_pipeline_delays: n <= 0";
  let s = sampler ?output_load ?exact ?pitch ?ff tech nets in
  Array.init n (fun _ -> draw_pipeline_delay s rng)
