module Rng = Spv_stats.Rng

let inverter_chain ?name ?(size = 1.0) ~depth () =
  if depth <= 0 then invalid_arg "Generators.inverter_chain: depth <= 0";
  let name =
    match name with Some n -> n | None -> Printf.sprintf "invchain%d" depth
  in
  let b = Builder.create ~name in
  let input = Builder.input b "a" in
  let rec extend node remaining =
    if remaining = 0 then node
    else extend (Builder.inv ~size b node) (remaining - 1)
  in
  let last = extend input depth in
  Builder.output b last;
  Builder.finish b

let inverter_chain_pipeline ?(size = 1.0) ~stages ~depth () =
  if stages <= 0 then invalid_arg "Generators.inverter_chain_pipeline: stages <= 0";
  Array.init stages (fun i ->
      inverter_chain ~name:(Printf.sprintf "stage%d_invchain%d" i depth) ~size
        ~depth ())

let variable_depth_pipeline ?(size = 1.0) ~depths () =
  if Array.length depths = 0 then
    invalid_arg "Generators.variable_depth_pipeline: no stages";
  Array.mapi
    (fun i depth ->
      inverter_chain ~name:(Printf.sprintf "stage%d_invchain%d" i depth) ~size
        ~depth ())
    depths

(* Full adder on top of 2-input cells:
   sum  = (a xor b) xor cin
   cout = nand (nand (a, b), nand (a xor b, cin))  -- the standard
   inverting-majority realisation. *)
let full_adder b ~a ~bb ~cin =
  let axb = Builder.xor2 b a bb in
  let sum = Builder.xor2 b axb cin in
  let n1 = Builder.nand2 b a bb in
  let n2 = Builder.nand2 b axb cin in
  let cout = Builder.nand2 b n1 n2 in
  (sum, cout)

let ripple_carry_adder ~bits =
  if bits <= 0 then invalid_arg "Generators.ripple_carry_adder: bits <= 0";
  let b = Builder.create ~name:(Printf.sprintf "rca%d" bits) in
  let a = Array.init bits (fun i -> Builder.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init bits (fun i -> Builder.input b (Printf.sprintf "b%d" i)) in
  let cin = Builder.input b "cin" in
  let carry = ref cin in
  for i = 0 to bits - 1 do
    let sum, cout = full_adder b ~a:a.(i) ~bb:bv.(i) ~cin:!carry in
    Builder.output b sum;
    carry := cout
  done;
  Builder.output b !carry;
  Builder.finish b

(* Kogge-Stone parallel-prefix adder.  Prefix pairs combine as
   (G, P) = (G_hi or (P_hi and G_lo), P_hi and P_lo); the carry into
   bit i+1 is G_[i:0] or (P_[i:0] and cin). *)
let kogge_stone_adder ~bits =
  if bits <= 0 then invalid_arg "Generators.kogge_stone_adder: bits <= 0";
  let b = Builder.create ~name:(Printf.sprintf "ks%d" bits) in
  let a = Array.init bits (fun i -> Builder.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init bits (fun i -> Builder.input b (Printf.sprintf "b%d" i)) in
  let cin = Builder.input b "cin" in
  let g = Array.init bits (fun i -> Builder.and2 b a.(i) bv.(i)) in
  let p = Array.init bits (fun i -> Builder.xor2 b a.(i) bv.(i)) in
  let gs = ref (Array.copy g) and ps = ref (Array.copy p) in
  let dist = ref 1 in
  while !dist < bits do
    let g' = Array.copy !gs and p' = Array.copy !ps in
    for i = !dist to bits - 1 do
      let lo = i - !dist in
      let t = Builder.and2 b !ps.(i) !gs.(lo) in
      g'.(i) <- Builder.or2 b !gs.(i) t;
      p'.(i) <- Builder.and2 b !ps.(i) !ps.(lo)
    done;
    gs := g';
    ps := p';
    dist := !dist * 2
  done;
  (* Carries: c0 = cin; c_{i+1} = G_[i:0] or (P_[i:0] and cin). *)
  let carries = Array.make (bits + 1) cin in
  for i = 0 to bits - 1 do
    let through = Builder.and2 b !ps.(i) cin in
    carries.(i + 1) <- Builder.or2 b !gs.(i) through
  done;
  for i = 0 to bits - 1 do
    Builder.output b (Builder.xor2 b p.(i) carries.(i))
  done;
  Builder.output b carries.(bits);
  Builder.finish b

(* Array multiplier by carry-save column compression: AND partial
   products land in weight columns; columns reduce 3->2 with full
   adders (2->2 with half adders), carries ripple into the next
   column. *)
let array_multiplier ~bits =
  if bits <= 0 then invalid_arg "Generators.array_multiplier: bits <= 0";
  let b = Builder.create ~name:(Printf.sprintf "mul%d" bits) in
  let a = Array.init bits (fun i -> Builder.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init bits (fun i -> Builder.input b (Printf.sprintf "b%d" i)) in
  let width = 2 * bits in
  let cols = Array.make width [] in
  for i = 0 to bits - 1 do
    for j = 0 to bits - 1 do
      let w = i + j in
      cols.(w) <- Builder.and2 b a.(i) bv.(j) :: cols.(w)
    done
  done;
  for w = 0 to width - 1 do
    let rec compress () =
      match cols.(w) with
      | x :: y :: z :: rest ->
          let sum, cout = full_adder b ~a:x ~bb:y ~cin:z in
          cols.(w) <- sum :: rest;
          if w + 1 < width then cols.(w + 1) <- cout :: cols.(w + 1);
          compress ()
      | [ x; y ] ->
          let sum = Builder.xor2 b x y in
          let cout = Builder.and2 b x y in
          cols.(w) <- [ sum ];
          if w + 1 < width then cols.(w + 1) <- cout :: cols.(w + 1);
          compress ()
      | [ _ ] | [] -> ()
    in
    compress ();
    match cols.(w) with
    | [ bit ] -> Builder.output b bit
    | [] ->
        (* Only the top column can be empty (no carry generated); emit
           a constant zero as a nor of an input with itself's inverse
           is overkill - reuse an AND of complementary literals. *)
        let inv = Builder.inv b a.(0) in
        Builder.output b (Builder.and2 b a.(0) inv)
    | _ -> assert false
  done;
  Builder.finish b

let alu_slice ?name ~bits () =
  if bits <= 0 then invalid_arg "Generators.alu_slice: bits <= 0";
  let name =
    match name with Some n -> n | None -> Printf.sprintf "alu%d" bits
  in
  let b = Builder.create ~name in
  let a = Array.init bits (fun i -> Builder.input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init bits (fun i -> Builder.input b (Printf.sprintf "b%d" i)) in
  let cin = Builder.input b "cin" in
  let op0 = Builder.input b "op0" in
  let op1 = Builder.input b "op1" in
  let carry = ref cin in
  for i = 0 to bits - 1 do
    let sum, cout = full_adder b ~a:a.(i) ~bb:bv.(i) ~cin:!carry in
    carry := cout;
    let land_ = Builder.and2 b a.(i) bv.(i) in
    let lor_ = Builder.or2 b a.(i) bv.(i) in
    let l_xor = Builder.xor2 b a.(i) bv.(i) in
    (* op1 op0: 00 -> add, 01 -> and, 10 -> or, 11 -> xor *)
    let lo = Builder.mux2 b ~sel:op0 ~a:sum ~b:land_ in
    let hi = Builder.mux2 b ~sel:op0 ~a:lor_ ~b:l_xor in
    let out = Builder.mux2 b ~sel:op1 ~a:lo ~b:hi in
    Builder.output b out
  done;
  Builder.output b !carry;
  Builder.finish b

let decoder ?(input_buffer_depth = 0) ~select () =
  if select <= 0 || select > 8 then
    invalid_arg "Generators.decoder: select out of range";
  if input_buffer_depth < 0 || input_buffer_depth mod 2 <> 0 then
    invalid_arg "Generators.decoder: input_buffer_depth must be even and >= 0";
  let b = Builder.create ~name:(Printf.sprintf "dec%dto%d" select (1 lsl select)) in
  let buffer_chain node =
    let rec go node remaining =
      if remaining = 0 then node else go (Builder.inv b node) (remaining - 1)
    in
    go node input_buffer_depth
  in
  let sel =
    Array.init select (fun i ->
        buffer_chain (Builder.input b (Printf.sprintf "s%d" i)))
  in
  let nsel = Array.map (fun s -> Builder.inv b s) sel in
  for code = 0 to (1 lsl select) - 1 do
    (* AND tree over the literals of this minterm. *)
    let literals =
      Array.to_list
        (Array.init select (fun bit ->
             if code land (1 lsl bit) <> 0 then sel.(bit) else nsel.(bit)))
    in
    let rec tree = function
      | [] -> assert false
      | [ x ] -> x
      | x :: y :: rest -> tree (Builder.and2 b x y :: rest)
    in
    Builder.output b (tree literals)
  done;
  Builder.finish b

let alu_decoder_stages ~bits =
  let alu1 = alu_slice ~name:"alu_part1" ~bits () in
  (* Match the decoder's depth to the ALU stages (see .mli). *)
  let pad = (Topo.depth alu1 + 2) / 2 * 2 in
  [|
    alu1;
    decoder ~input_buffer_depth:(Stdlib.max 0 pad) ~select:4 ();
    alu_slice ~name:"alu_part2" ~bits ();
  |]

(* Gate-kind mix loosely matching ISCAS85 statistics. *)
let kind_table =
  [|
    (Cell.Nand2, 0.30); (Cell.Nor2, 0.20); (Cell.Inv, 0.16); (Cell.And2, 0.08);
    (Cell.Or2, 0.06); (Cell.Nand3, 0.07); (Cell.Nor3, 0.04); (Cell.Xor2, 0.04);
    (Cell.Aoi21, 0.03); (Cell.Oai21, 0.02)
  |]

let pick_kind rng =
  let u = Rng.float rng in
  let rec go i acc =
    if i >= Array.length kind_table - 1 then fst kind_table.(i)
    else
      let k, w = kind_table.(i) in
      let acc = acc +. w in
      if u < acc then k else go (i + 1) acc
  in
  go 0 0.0

let random_logic_with ~rng ~name ~inputs ~gates ~depth =
  if inputs < 2 then invalid_arg "Generators.random_logic: inputs < 2";
  if depth < 1 then invalid_arg "Generators.random_logic: depth < 1";
  if gates < depth then invalid_arg "Generators.random_logic: gates < depth";
  let b = Builder.create ~name in
  let pis =
    Array.init inputs (fun i -> Builder.input b (Printf.sprintf "i%d" i))
  in
  (* Gates per level: geometric taper (wide near the inputs, narrowing
     towards the outputs), with at least one gate per level. *)
  let weights =
    Array.init depth (fun l -> exp (-1.5 *. float_of_int l /. float_of_int depth))
  in
  let wsum = Array.fold_left ( +. ) 0.0 weights in
  let counts =
    Array.map
      (fun w -> Stdlib.max 1 (int_of_float (float_of_int gates *. w /. wsum)))
      weights
  in
  (* Adjust rounding so the total is exactly [gates]. *)
  let fix_total () =
    let total = Array.fold_left ( + ) 0 counts in
    let diff = gates - total in
    if diff > 0 then counts.(0) <- counts.(0) + diff
    else begin
      let remaining = ref (-diff) in
      let l = ref 0 in
      while !remaining > 0 do
        if counts.(!l) > 1 then begin
          counts.(!l) <- counts.(!l) - 1;
          decr remaining
        end;
        l := (!l + 1) mod depth
      done
    end
  in
  fix_total ();
  let level_nodes = Array.make (depth + 1) [||] in
  level_nodes.(0) <- pis;
  for l = 1 to depth do
    let prev = level_nodes.(l - 1) in
    (* Candidate fanins from earlier levels, geometrically biased
       towards recent levels. *)
    let pick_earlier () =
      let rec back l' =
        if l' <= 0 then 0
        else if Rng.float rng < 0.55 then l' - 1
        else back (l' - 1)
      in
      let lvl = back (l - 1) in
      let pool = level_nodes.(lvl) in
      pool.(Rng.int rng ~bound:(Array.length pool))
    in
    let make_gate _ =
      let kind = pick_kind rng in
      let arity = Cell.arity kind in
      (* One fanin pinned to the previous level keeps the levelisation
         exact, so the generated circuit has the requested depth. *)
      let first = prev.(Rng.int rng ~bound:(Array.length prev)) in
      let rest = List.init (arity - 1) (fun _ -> pick_earlier ()) in
      Builder.gate b kind (first :: rest)
    in
    level_nodes.(l) <- Array.init counts.(l - 1) make_gate
  done;
  (* Last-level gates are outputs; a second pass below also promotes
     any other fanout-free gate, since dangling logic is illegal. *)
  Array.iter (fun id -> Builder.output b id) level_nodes.(depth);
  let provisional = Builder.finish b in
  (* Nodes with no fanout that are not yet outputs become outputs too
     (dangling logic is illegal in a real netlist). *)
  let extra_outputs = ref [] in
  Array.iter
    (fun id ->
      if Netlist.fanouts provisional id = []
         && not (Array.exists (fun o -> o = id) (Netlist.outputs provisional))
      then extra_outputs := id :: !extra_outputs)
    (Netlist.gate_ids provisional);
  if !extra_outputs = [] then provisional
  else
    Netlist.make ~name
      ~nodes:(Array.init (Netlist.n_nodes provisional) (Netlist.node provisional))
      ~outputs:
        (Array.append (Netlist.outputs provisional)
           (Array.of_list !extra_outputs))
      ~sizes:(Netlist.sizes_snapshot provisional)

let random_logic ~name ~inputs ~gates ~depth ~seed =
  random_logic_with ~rng:(Rng.create ~seed) ~name ~inputs ~gates ~depth

type iscas_profile = {
  bench_name : string;
  n_inputs : int;
  n_gates : int;
  logic_depth : int;
}

let iscas_profiles =
  [
    { bench_name = "c432"; n_inputs = 36; n_gates = 160; logic_depth = 17 };
    { bench_name = "c1908"; n_inputs = 33; n_gates = 880; logic_depth = 40 };
    { bench_name = "c2670"; n_inputs = 157; n_gates = 1193; logic_depth = 32 };
    { bench_name = "c3540"; n_inputs = 50; n_gates = 1669; logic_depth = 47 };
  ]

let of_profile seed p =
  random_logic ~name:p.bench_name ~inputs:p.n_inputs ~gates:p.n_gates
    ~depth:p.logic_depth ~seed

let find_profile name =
  List.find (fun p -> p.bench_name = name) iscas_profiles

let c432 () = of_profile 432 (find_profile "c432")
let c1908 () = of_profile 1908 (find_profile "c1908")
let c2670 () = of_profile 2670 (find_profile "c2670")
let c3540 () = of_profile 3540 (find_profile "c3540")

(* Depth-equalised pipeline variants: published gate counts, depths
   compressed towards a common clock target as retiming would do.
   c3540 keeps the largest depth so it stays the critical stage. *)
let pipeline_depths =
  [ ("c3540", 38); ("c2670", 32); ("c1908", 33); ("c432", 30) ]

let iscas_pipeline_seed = 85

let iscas_pipeline () =
  (* One splitmix64-derived stream per stage (not ad-hoc seed hashing),
     so fuzz mutations of these clones replay bit-identically. *)
  let streams =
    Rng.split (Rng.create ~seed:iscas_pipeline_seed)
      (List.length pipeline_depths)
  in
  Array.of_list
    (List.mapi
       (fun i (name, depth) ->
         let p = find_profile name in
         random_logic_with ~rng:streams.(i) ~name:p.bench_name
           ~inputs:p.n_inputs ~gates:p.n_gates ~depth)
       pipeline_depths)
