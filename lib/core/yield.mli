(** Yield estimation (Section 2.3): the probability that the pipeline
    meets a target delay, [P_D = Pr{max_i SD_i <= T_target}]. *)

val independent_exact : Pipeline.t -> t_target:float -> float
(** Eq. 8: [prod_i Phi((T - mu_i) / sigma_i)].  Exact when the stage
    delays are independent; ignores the pipeline's correlation matrix. *)

val clark_gaussian : ?order:Clark.order -> Pipeline.t -> t_target:float -> float
(** Eq. 9: approximate the overall delay as Gaussian with the
    Clark-estimated (mu_T, sigma_T) and evaluate
    [Phi((T - mu_T) / sigma_T)].  Valid for correlated stages. *)

val nearly_independent : Pipeline.t -> bool
(** True when every off-diagonal stage correlation is (near) zero, in
    which case eq. 8 is exact. *)

val estimate : Pipeline.t -> t_target:float -> float
(** The paper's recommended estimator: [independent_exact] when all
    off-diagonal correlations are (near) zero, [clark_gaussian]
    otherwise. *)

val independent_exact_loss : Pipeline.t -> t_target:float -> float
(** Yield loss [1 - independent_exact], computed as
    [-expm1(sum_i log Phi_i)] with stable per-stage log-CDFs so the
    loss keeps full relative precision deep in the tail (where the
    naive complement of a yield that rounds to 1 reports 0). *)

val clark_gaussian_loss :
  ?order:Clark.order -> Pipeline.t -> t_target:float -> float
(** Yield loss [1 - clark_gaussian] through the stable survival
    function {!Spv_stats.Gaussian.sf} — nonzero out to ~38 sigma. *)

val loss : Pipeline.t -> t_target:float -> float
(** Stable complement of {!estimate}: [independent_exact_loss] when
    the stages are (near) independent, [clark_gaussian_loss]
    otherwise. *)

val target_delay_for_yield : ?order:Clark.order -> Pipeline.t -> yield:float -> float
(** Smallest T with [clark_gaussian >= yield]:
    [mu_T + sigma_T * Phi^-1(yield)].  Requires yield in (0,1). *)

val per_stage_yield_target : yield:float -> n_stages:int -> float
(** Eq. 12's per-stage budget under independence and equal stages:
    [yield ** (1 / n_stages)] — e.g. 0.80^(1/3) = 0.9283 in the
    paper's 3-stage example. *)

val stage_yields : Pipeline.t -> t_target:float -> float array
(** Per-stage standalone yields [Phi((T - mu_i)/sigma_i)]. *)

(** The [monte_carlo*] functions below are thin sequential shims over
    {!Spv_stats.Mvn.sample_max}, kept as references and for backwards
    compatibility.  Deprecated: new code should use
    [Spv_engine.Engine.yield] / [Spv_engine.Engine.sample_delays]
    (deterministic, domain-parallel, common [estimate] record). *)

val monte_carlo :
  Pipeline.t -> Spv_stats.Rng.t -> n:int -> t_target:float -> float
(** Empirical yield from [n] joint stage-delay draws. *)

val monte_carlo_adaptive :
  ?batch:int -> ?min_samples:int -> ?rel_se_target:float ->
  ?max_samples:int -> Pipeline.t -> Spv_stats.Rng.t -> t_target:float ->
  Spv_stats.Mc.report
(** Empirical yield with a relative-standard-error early stop and a
    hard sample cap (defaults as in {!Spv_stats.Mc}): the report says
    whether the estimate converged or merely exhausted its budget.
    Raises [Invalid_argument] on a non-finite [t_target]. *)

val monte_carlo_distribution :
  Pipeline.t -> Spv_stats.Rng.t -> n:int -> float array
(** Raw pipeline-delay samples (for histograms and moment checks). *)

val monte_carlo_lhs :
  Pipeline.t -> Spv_stats.Rng.t -> n:int -> t_target:float -> float
(** Yield with Latin-hypercube-stratified stage draws
    ({!Spv_stats.Sampling.mvn_lhs}): same estimand as {!monte_carlo}
    with markedly lower variance at equal [n]. *)

val wilson_interval : successes:int -> trials:int -> confidence:float ->
  float * float
(** Wilson score interval for a Monte-Carlo yield estimate — the
    honest error bar to print next to [monte_carlo] results.
    [confidence] in (0,1), e.g. 0.95. *)

val failure_importance :
  Pipeline.t -> Spv_stats.Rng.t -> n:int -> t_target:float ->
  Spv_stats.Importance.estimate
(** Rare-event yield loss [1 - yield] by mean-shifted importance
    sampling — usable deep in the tail (e.g. 4-sigma targets) where
    {!monte_carlo} sees no failures at any affordable [n]. *)
