(** Stage criticality and yield sensitivities.

    Section 3.2 of the paper argues that a balanced pipeline is fragile
    because {e every} stage is (probabilistically) critical, while an
    unbalanced one concentrates criticality.  This module quantifies
    that argument:

    - {!probabilities}: Pr{stage i is the slowest} per stage;
    - {!entropy}: the Shannon entropy of that distribution — maximal
      for a perfectly balanced pipeline, 0 when one stage dominates;
    - {!yield_gradient_mu}: d(yield)/d(mu_i), the first-order payoff of
      speeding each stage up, which is what the eq. 14 exchange
      ultimately trades against area. *)

val probabilities :
  ?n:int -> Pipeline.t -> Spv_stats.Rng.t -> float array
(** Monte-Carlo estimate of Pr{SD_i = max_j SD_j} ([n] joint draws,
    default 20000).  Sums to 1 (ties broken towards the lowest index,
    a null event for continuous stages). *)

val probabilities_analytic_independent : Pipeline.t -> float array
(** For independent stages, exactly
    Pr{i critical} = int phi_i(t) prod_{j<>i} Phi_j(t) dt by
    quadrature.  Ignores the correlation matrix. *)

val entropy : float array -> float
(** Shannon entropy (nats) of a criticality distribution; zero terms
    are skipped. Requires non-negative entries. *)

val yield_gradient_mu :
  Pipeline.t -> t_target:float -> float array
(** d P_D / d mu_i under the independent-product model (eq. 8):
    [-phi_i(T) * prod_{j<>i} Phi_j(T)].  Negative: increasing a stage
    mean always hurts.  The magnitudes rank stages by how much yield a
    unit of mean-delay reduction buys — the statistical version of the
    paper's "which stage should get the area". *)

val most_critical : float array -> int
(** Index of the largest entry. *)
