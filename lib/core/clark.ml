module G = Spv_stats.Gaussian
module Special = Spv_stats.Special

type moments = { mean : float; variance : float; a : float; alpha : float }

(* Below this threshold the two variables are numerically identical up
   to an almost-sure ordering, and the Clark formulas hit 0/0. *)
let degenerate_a = 1e-12

let max2_moments g1 g2 ~rho =
  if rho < -1.0 || rho > 1.0 then invalid_arg "Clark.max2_moments: bad rho";
  let mu1 = G.mu g1 and s1 = G.sigma g1 in
  let mu2 = G.mu g2 and s2 = G.sigma g2 in
  let a2 = (s1 *. s1) +. (s2 *. s2) -. (2.0 *. rho *. s1 *. s2) in
  let a = sqrt (Float.max a2 0.0) in
  if a < degenerate_a then begin
    (* X1 - X2 is (almost) deterministic: the max is whichever variable
       has the larger mean (either, when equal). *)
    if mu1 >= mu2 then { mean = mu1; variance = s1 *. s1; a; alpha = 0.0 }
    else { mean = mu2; variance = s2 *. s2; a; alpha = 0.0 }
  end
  else begin
    let alpha = (mu1 -. mu2) /. a in
    let cdf = Special.big_phi alpha in
    let cdf' = Special.big_phi (-.alpha) in
    let pdf = Special.phi alpha in
    let mean = (mu1 *. cdf) +. (mu2 *. cdf') +. (a *. pdf) in
    let second =
      (((mu1 *. mu1) +. (s1 *. s1)) *. cdf)
      +. (((mu2 *. mu2) +. (s2 *. s2)) *. cdf')
      +. ((mu1 +. mu2) *. a *. pdf)
    in
    let variance = Float.max (second -. (mean *. mean)) 0.0 in
    { mean; variance; a; alpha }
  end

let max2 g1 g2 ~rho =
  let m = max2_moments g1 g2 ~rho in
  G.make ~mu:m.mean ~sigma:(sqrt m.variance)

let correlation_with_max ~s1 ~s2 ~r1 ~r2 m =
  let sd = sqrt m.variance in
  if sd < degenerate_a then 0.0
  else begin
    let cdf = Special.big_phi m.alpha in
    let cdf' = Special.big_phi (-.m.alpha) in
    let r = ((s1 *. r1 *. cdf) +. (s2 *. r2 *. cdf')) /. sd in
    Float.max (-1.0) (Float.min 1.0 r)
  end

type order = Increasing_mean | Decreasing_mean | As_given

let ordered_indices order gs =
  let n = Array.length gs in
  let idx = Array.init n (fun i -> i) in
  (match order with
  | As_given -> ()
  | Increasing_mean ->
      Array.sort (fun i j -> compare (G.mu gs.(i)) (G.mu gs.(j))) idx
  | Decreasing_mean ->
      Array.sort (fun i j -> compare (G.mu gs.(j)) (G.mu gs.(i))) idx);
  idx

let max_n ?(order = Increasing_mean) gs ~corr =
  let n = Array.length gs in
  if n = 0 then invalid_arg "Clark.max_n: empty";
  if Spv_stats.Matrix.rows corr <> n then
    invalid_arg "Clark.max_n: correlation dimension mismatch";
  let idx = ordered_indices order gs in
  (* Fold variables into the running max, tracking the correlation of
     the running max with every not-yet-folded variable (eq. 6). *)
  let current = ref gs.(idx.(0)) in
  let corr_with_current =
    Array.init n (fun k -> Spv_stats.Correlation.get corr idx.(0) idx.(k))
  in
  for step = 1 to n - 1 do
    let j = idx.(step) in
    let g2 = gs.(j) in
    let rho = corr_with_current.(step) in
    let m = max2_moments !current g2 ~rho in
    let s1 = G.sigma !current and s2 = G.sigma g2 in
    for k = step + 1 to n - 1 do
      let r1 = corr_with_current.(k) in
      let r2 = Spv_stats.Correlation.get corr j idx.(k) in
      corr_with_current.(k) <- correlation_with_max ~s1 ~s2 ~r1 ~r2 m
    done;
    current := G.make ~mu:m.mean ~sigma:(sqrt m.variance)
  done;
  !current

let max_n_independent ?order gs =
  max_n ?order gs ~corr:(Spv_stats.Correlation.independent ~n:(Array.length gs))

let prefix_maxes gs ~corr =
  let n = Array.length gs in
  if n = 0 then invalid_arg "Clark.prefix_maxes: empty";
  if Spv_stats.Matrix.rows corr <> n then
    invalid_arg "Clark.prefix_maxes: correlation dimension mismatch";
  (* The As_given fold already passes through every prefix max: after
     step k the running max is exactly the fold of gs[0..k], and its
     tracked correlations only ever read the leading (k+1)x(k+1) block
     of [corr].  Recording the running state gives all n prefixes in
     one recursion instead of one recursion per prefix. *)
  let out = Array.make n gs.(0) in
  let current = ref gs.(0) in
  let corr_with_current =
    Array.init n (fun k -> Spv_stats.Correlation.get corr 0 k)
  in
  for step = 1 to n - 1 do
    let g2 = gs.(step) in
    let rho = corr_with_current.(step) in
    let m = max2_moments !current g2 ~rho in
    let s1 = G.sigma !current and s2 = G.sigma g2 in
    for k = step + 1 to n - 1 do
      let r1 = corr_with_current.(k) in
      let r2 = Spv_stats.Correlation.get corr step k in
      corr_with_current.(k) <- correlation_with_max ~s1 ~s2 ~r1 ~r2 m
    done;
    current := G.make ~mu:m.mean ~sigma:(sqrt m.variance);
    out.(step) <- !current
  done;
  out

let exact_max_cdf_independent gs t =
  Array.fold_left (fun acc g -> acc *. G.cdf g t) 1.0 gs

let exact_max_moments_independent gs =
  if Array.length gs = 0 then
    invalid_arg "Clark.exact_max_moments_independent: empty";
  let lo =
    Array.fold_left (fun acc g -> Float.min acc (G.mu g -. (10.0 *. G.sigma g))) infinity gs
  in
  let hi =
    Array.fold_left (fun acc g -> Float.max acc (G.mu g +. (10.0 *. G.sigma g))) neg_infinity gs
  in
  (* Density of the max: f(t) = sum_i pdf_i(t) prod_{j<>i} cdf_j(t).
     Zero-sigma components act as step functions; exclude them from the
     density sum but keep their indicator in the product. *)
  let f t =
    let acc = ref 0.0 in
    Array.iteri
      (fun i gi ->
        if G.sigma gi > 0.0 then begin
          let prod = ref (G.pdf gi t) in
          Array.iteri (fun j gj -> if j <> i then prod := !prod *. G.cdf gj t) gs;
          acc := !acc +. !prod
        end)
      gs;
    !acc
  in
  let integrate h =
    (* Composite 32-point Gauss-Legendre over 64 panels: smooth
       integrand, near machine precision. *)
    let panels = 64 in
    let acc = ref 0.0 in
    let w = (hi -. lo) /. float_of_int panels in
    for i = 0 to panels - 1 do
      let a = lo +. (float_of_int i *. w) in
      acc := !acc +. Spv_stats.Quadrature.gauss_legendre_32 ~f:h ~lo:a ~hi:(a +. w)
    done;
    !acc
  in
  let m1 = integrate (fun t -> t *. f t) in
  let m2 = integrate (fun t -> t *. t *. f t) in
  (m1, sqrt (Float.max (m2 -. (m1 *. m1)) 0.0))
