(** Deprecated alias of {!Stage_criticality}.

    The name [Criticality] used to be carried by two unrelated modules:
    this stage-criticality heuristic (Pr{stage i is slowest}, entropy,
    yield gradients) and the gate-level prune-mask prover now called
    [Spv_analysis.Static_criticality].  Use {!Stage_criticality}
    directly; this alias only keeps the old path compiling and will be
    removed. *)

include module type of struct
  include Stage_criticality
end
