(** Adaptive body bias (ABB): post-silicon, per-die yield recovery.

    A die can sense its own global process corner (the inter-die shift
    every stage shares) and apply a body bias that moves every gate's
    Vth, multiplying all delays by a bounded factor: forward bias
    rescues slow dies, reverse bias cools fast ones (Tschanz et al.'s
    classic result).  Within this library's model the policy

    [c(I) = clamp(1 - r_I * I, 1 - range, 1 + range)]

    cancels the shared inter-die delay shift up to the bias range
    ([r_I] = the pipeline's average relative inter-die sigma, [I] the
    die's standard-normal inter-die variable).  The conditional
    pipeline delay given [I] is still a Gaussian max (systematic +
    random parts remain), so the ABB yield is a 1-D quadrature over
    [I] of Clark yields — exact within the model.

    Requires decomposed stages ({!Pipeline.of_stages} /
    {!Pipeline.of_circuits}); a pipeline built from bare moments has no
    inter-die component for ABB to sense, and the result degenerates to
    the ordinary yield. *)

type policy = {
  range : float;
      (** maximum relative delay correction, e.g. 0.1 = +-10% (0
          disables ABB) *)
}

val yield_with_abb : ?policy:policy -> Pipeline.t -> t_target:float -> float
(** Yield when every die applies the clamped cancellation policy.
    Default range 0.10. *)

val loss_with_abb : ?policy:policy -> Pipeline.t -> t_target:float -> float
(** Yield loss under the same policy, integrating the conditional
    survival function directly (via {!Spv_stats.Gaussian.sf}) so a
    deep-tail loss is not lost to [1. -. yield] cancellation.  With
    [range = 0.0] this is the plain quadrature yield loss. *)

val yield_gain : ?policy:policy -> Pipeline.t -> t_target:float -> float
(** [yield_with_abb - clark_gaussian yield]; >= 0 up to quadrature
    noise whenever an inter-die component exists. *)

type sampler
(** Immutable single-trial sampler for the biased pipeline delay: the
    decomposition and residual MVN factorisation, built once per
    (policy, pipeline).  Safe to share across domains; pair with one
    {!Spv_stats.Rng.t} per domain. *)

val sampler : ?policy:policy -> Pipeline.t -> sampler
(** Build the sampler.  Default range 0.10; raises [Invalid_argument]
    on a negative range. *)

val sample_delay : sampler -> Spv_stats.Rng.t -> float
(** One Monte-Carlo trial of the ABB-corrected pipeline delay (samples
    I, applies the correction, samples the residual stage delays). *)

val mc_yield_with_abb :
  ?policy:policy -> Pipeline.t -> Spv_stats.Rng.t -> n:int -> t_target:float ->
  float
(** Monte-Carlo of the same policy — a thin sequential shim over
    {!sampler}/{!sample_delay}, the verification path.  Deprecated:
    new code should use [Spv_engine.Engine.abb_mc_yield]
    (deterministic, parallel). *)

val leakage_overhead :
  ?policy:policy -> Spv_process.Tech.t -> Pipeline.t -> float
(** Expected die leakage multiplier induced by the bias policy
    (forward bias on slow dies burns leakage, reverse bias on fast dies
    recovers it): [E_I exp(-dVth(I) / (n vT))] with
    [dVth = (c - 1) / S_vth].  1.0 when ABB is disabled. *)
